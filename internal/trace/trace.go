// Package trace provides a low-overhead execution trace for the simulator:
// a fixed-capacity ring of structured events the machine emits at squashes,
// memory requests, cleanups, and commits. It exists for debuggability — the
// first question about any speculative-execution simulator is "what exactly
// happened around that squash?" — and is off (nil tracer) by default.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindFetchRedirect Kind = iota
	KindLoadIssue
	KindLoadComplete
	KindLoadDropped
	KindSquash
	KindMemOrderSquash
	KindCleanupInval
	KindCleanupRestore
	KindCommit
	KindHalt
	// KindSpecWindow marks the close of a speculative-install exposure
	// window (commit or cleanup of a load that filled a cache line);
	// Arg is the window length in cycles, Cycle its end.
	KindSpecWindow
)

func (k Kind) String() string {
	names := [...]string{
		"fetch-redirect", "load-issue", "load-complete", "load-dropped",
		"squash", "mem-order-squash", "cleanup-inval", "cleanup-restore",
		"commit", "halt", "spec-window",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one trace record. Fields beyond Cycle and Kind are
// kind-dependent; unused ones are zero.
type Event struct {
	Cycle arch.Cycle
	Kind  Kind
	Seq   uint64        // instruction sequence number
	PC    arch.Addr     // program counter
	Line  arch.LineAddr // cache line, for memory events
	Arg   uint64        // kind-specific (squashed count, latency, ...)
}

// String renders one event.
func (e Event) String() string {
	return fmt.Sprintf("%8d %-16s seq=%-6d pc=%-6v line=%-10v arg=%d",
		e.Cycle, e.Kind, e.Seq, e.PC, e.Line, e.Arg)
}

// Ring is a fixed-capacity event ring buffer. The zero value is unusable;
// call NewRing. Not safe for concurrent use (the simulator is
// single-threaded).
type Ring struct {
	buf   []Event
	next  int
	total uint64
}

// NewRing creates a ring holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		//simlint:allow errdiscipline -- construction-time capacity validation; a bad config is a programmer error caught before any simulation runs
		panic("trace: capacity must be positive")
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit records an event, evicting the oldest once full.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		//simlint:allow hotalloc -- guarded by len < cap of the preallocated ring storage, so this append never grows; steady state overwrites in place
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were emitted over the ring's lifetime.
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, cap(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns the retained events of the given kind, in chronological
// order. The result is sized exactly from a counting pass over the ring, so
// filtering never pays append's repeated grow-and-copy churn.
func (r *Ring) Filter(k Kind) []Event {
	n := 0
	for i := range r.buf {
		if r.buf[i].Kind == k {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	if len(r.buf) < cap(r.buf) {
		for i := range r.buf {
			if r.buf[i].Kind == k {
				out = append(out, r.buf[i])
			}
		}
		return out
	}
	for i := r.next; i < len(r.buf); i++ {
		if r.buf[i].Kind == k {
			out = append(out, r.buf[i])
		}
	}
	for i := 0; i < r.next; i++ {
		if r.buf[i].Kind == k {
			out = append(out, r.buf[i])
		}
	}
	return out
}

// Last returns the newest n retained events in chronological order (all of
// them when n exceeds the retained count, nil when n <= 0).
func (r *Ring) Last(n int) []Event {
	if n > len(r.buf) {
		n = len(r.buf)
	}
	if n <= 0 {
		return nil
	}
	out := make([]Event, 0, n)
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf[len(r.buf)-n:]...)
	}
	// Newest event sits just before r.next; take the n events ending there.
	start := (r.next - n + cap(r.buf)) % cap(r.buf)
	if start < r.next {
		return append(out, r.buf[start:r.next]...)
	}
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:r.next]...)
}

// WriteTo dumps the retained events.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
