// Package invisispec implements the Redo baseline the paper compares
// against: InvisiSpec (Yan et al., MICRO 2018) in its "Futuristic" variant,
// which treats every load as unsafe until it can no longer be squashed by
// any cause — i.e. until it reaches the head of the ROB. This matches the
// threat model the paper evaluates under (Section 5.1, InvisiSpec-Future).
//
// A speculative load is issued *invisibly*: it returns data without
// changing any cache state. When the load reaches the ROB head it performs
// the second, "update" access, writing the buffered data into the caches
// and checking memory consistency with the L2/directory. Loads whose
// invisible access was served beyond the L1 need a blocking *validation*
// (retirement waits for the round trip, "on the critical path before
// load-retirement", Section 2.3.1); invisible L1 hits were already
// coherence-tracked locally and retire with a fire-and-forget *exposure*.
//
// Two modes reproduce the paper's Section 6.5 discussion:
//
//   - Initial: the data propagates to dependent instructions only at the
//     load's visibility point (the simulation behavior behind the paper's
//     initial 67.5% estimate).
//   - Revised: the data propagates to dependents as soon as the invisible
//     load returns it (the authors' corrected implementation, ~15%).
package invisispec

import (
	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/memsys"
)

// Mode selects the Initial or Revised modeling choice.
type Mode int

// Modes.
const (
	Initial Mode = iota
	Revised
)

func (m Mode) String() string {
	if m == Initial {
		return "invisispec-initial"
	}
	return "invisispec-revised"
}

// Stats counts InvisiSpec-specific work.
type Stats struct {
	InvisibleLoads uint64
	Updates        uint64
	Validations    uint64 // blocking updates (invisible access went past L1)
	Exposures      uint64 // non-blocking updates (invisible L1 hits)
}

// Policy is the Redo baseline (implements cpu.Policy).
type Policy struct {
	mode Mode

	Stats Stats
}

// New returns an InvisiSpec policy in the given mode.
func New(mode Mode) *Policy { return &Policy{mode: mode} }

// Name implements cpu.Policy.
func (p *Policy) Name() string { return p.mode.String() }

// Mode implements cpu.Policy: speculative loads are invisible.
func (p *Policy) Mode(m *cpu.Machine, e *cpu.LQEntry, spec bool) cpu.LoadMode {
	if spec {
		return cpu.LoadInvisible
	}
	return cpu.LoadNormal
}

// DeferWakeupUntilVisible implements cpu.Policy: the Initial/Revised split.
func (p *Policy) DeferWakeupUntilVisible() bool { return p.mode == Initial }

// OnLoadUnsquashable implements cpu.Policy. Under the Futuristic threat
// model the visibility point is the ROB head, so the update is launched
// from OnLoadNearCommit, not here.
func (p *Policy) OnLoadUnsquashable(m *cpu.Machine, e *cpu.LQEntry) {}

// OnLoadNearCommit implements cpu.Policy: as the load enters the commit
// window it launches its update, so back-to-back validations overlap the
// way gem5's commit pipeline overlaps them.
func (p *Policy) OnLoadNearCommit(m *cpu.Machine, e *cpu.LQEntry) {
	if e.IssuedMode != cpu.LoadInvisible || e.Forwarded || !e.Issued || e.UpdateLaunched {
		return
	}
	now := m.Now()
	e.UpdateLaunched = true
	p.Stats.Updates++
	lat := m.Hierarchy().CommitUpdate(m.CoreID(), e.Line, now)
	if e.Level == memsys.LevelL1 {
		// Exposure: fire and forget; retirement proceeds.
		p.Stats.Exposures++
		e.UpdateDoneAt = now
	} else {
		// Validation: the line was invisibly fetched past the L1, so
		// consistency must be re-checked before the load may retire
		// ("on the critical path before load-retirement",
		// Section 2.3.1).
		p.Stats.Validations++
		e.UpdateDoneAt = now + lat
	}
	if p.mode == Initial {
		// Dependents see the value only at the visibility point.
		m.ScheduleLoadWake(e, e.UpdateDoneAt)
	}
}

// CommitWait implements cpu.Policy: hold retirement for an unfinished
// validation.
func (p *Policy) CommitWait(m *cpu.Machine, e *cpu.LQEntry) arch.Cycle {
	if !e.UpdateLaunched {
		// The load reached the head before the window scan saw it.
		p.OnLoadNearCommit(m, e)
	}
	if e.UpdateDoneAt > m.Now() {
		return e.UpdateDoneAt - m.Now()
	}
	return 0
}

// OnLoadCommitted implements cpu.Policy.
func (p *Policy) OnLoadCommitted(m *cpu.Machine, e *cpu.LQEntry) {
	if e.IssuedMode == cpu.LoadInvisible {
		p.Stats.InvisibleLoads++
	}
}

// OnSquash implements cpu.Policy: invisible loads left no trace, so a
// squash costs nothing beyond the pipeline refill.
func (p *Policy) OnSquash(*cpu.Machine, []cpu.SquashedLoad) cpu.SquashCost {
	return cpu.SquashCost{}
}

// DropSquashedInflight implements cpu.Policy: nothing to drop — invisible
// loads never fill.
func (p *Policy) DropSquashedInflight() bool { return false }
