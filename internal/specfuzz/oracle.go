package specfuzz

import (
	"fmt"
	"strconv"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/obs"
	"repro/sim"
)

// TimingThreshold is the per-slot probe-latency difference (in cycles)
// that counts as observable. An L1 hit and an L2 hit are ≥ 5 cycles apart
// on the paper's configuration and a DRAM miss is ~100 cycles slower, so 4
// cycles separates every real residency difference from pipeline jitter.
const TimingThreshold = 4

// gadgetMaxCycles bounds one gadget run; a single-round gadget finishes in
// well under a million cycles, so hitting this means the program hung.
const gadgetMaxCycles = arch.Cycle(20_000_000)

// Observation is what the attacker sees after one gadget run: the probe
// latency vector (timing mode) or the hierarchy tag snapshot (state mode).
type Observation struct {
	Probe []uint64
	Snap  memsys.Snapshot
}

// runOnce executes one gadget program to completion under a freshly built
// policy instance and collects its observation.
func runOnce(s GadgetSpec, secret int, cfg sim.Config, mode BuildMode) (Observation, error) {
	pol, hcfg, err := sim.BuildPolicy(cfg)
	if err != nil {
		return Observation{}, err
	}
	g := GeometryOf(hcfg)
	prog, err := BuildProgram(s, secret, mode, g)
	if err != nil {
		return Observation{}, err
	}
	mcfg := cpu.DefaultConfig()
	mcfg.MaxCycles = gadgetMaxCycles
	h := memsys.New(hcfg)
	m := cpu.New(mcfg, prog, h, pol)
	m.Run(0)
	if !m.Halted() {
		return Observation{}, fmt.Errorf("specfuzz: gadget %s (%s, secret=%d, %s) did not halt within %d cycles",
			s.ID, cfg.Policy, secret, mode, uint64(gadgetMaxCycles))
	}
	var obs Observation
	if mode == ModeTiming {
		n := ProbeSlots(s, g)
		obs.Probe = make([]uint64, n)
		for k := 0; k < n; k++ {
			obs.Probe[k] = m.Memory().Read64(addrRes + arch.Addr(k*8))
		}
		return obs, nil
	}
	obs.Snap = m.SnapshotHierarchy()
	return obs, nil
}

// Verdict is the oracle's answer for one (gadget, policy) cell: did any
// secret-dependent difference survive the defense, and through which
// channel. It is the cell's Aux payload, so it round-trips through the
// campaign cache as JSON.
type Verdict struct {
	Gadget string `json:"gadget"`
	Policy string `json:"policy"`

	// ProbeA/ProbeB are the raw per-slot probe latencies (cycles) of the
	// two timing-mode runs.
	ProbeA []uint64 `json:"probe_a"`
	ProbeB []uint64 `json:"probe_b"`
	// TimingSlots lists the probe slots whose latency differs by at
	// least TimingThreshold cycles between the runs.
	TimingSlots []int `json:"timing_slots,omitempty"`
	// MaxTimingDelta is the largest per-slot latency difference, in
	// cycles.
	MaxTimingDelta uint64 `json:"max_timing_delta"`

	// StateDiffs renders every tag-state difference between the two
	// state-mode hierarchy snapshots.
	StateDiffs []string `json:"state_diffs,omitempty"`

	// Leak reports that at least one channel observed a secret-dependent
	// difference; Channels names them ("timing", "state").
	Leak     bool     `json:"leak"`
	Channels []string `json:"channels,omitempty"`
}

// RunPair executes the full differential pair for one gadget under one
// policy: two timing-mode runs (secret=A, secret=B) compared slot-by-slot,
// and two state-mode runs compared snapshot-to-snapshot. cfg carries the
// policy under test and the hierarchy seed; both runs of a pair use the
// same seed, so replacement and CEASER randomness are identical and any
// surviving difference is attributable to the secret alone.
func RunPair(s GadgetSpec, cfg sim.Config) (Verdict, error) {
	return RunPairTraced(s, cfg, nil)
}

// RunPairTraced is RunPair with oracle-phase tracing: one root span per
// (gadget, policy, seed) pair with children timing-a / timing-b /
// state-a / state-b / compare, keyed on content so the span stream is
// deterministic. A nil tracer is RunPair exactly (no spans, no
// allocations for them).
func RunPairTraced(s GadgetSpec, cfg sim.Config, tr *obs.Tracer) (Verdict, error) {
	v := Verdict{Gadget: s.ID, Policy: string(cfg.Policy)}

	var root *obs.Span
	if tr != nil {
		root = tr.Trace("oracle:"+s.ID+"/"+string(cfg.Policy),
			fmt.Sprintf("oracle/%s/%s/seed=%d", s.ID, cfg.Policy, cfg.Seed))
		defer root.End()
	}
	phase := func(name string, f func() error) error {
		sp := root.Child(name)
		err := f()
		if sp != nil {
			sp.SetAttr("ok", strconv.FormatBool(err == nil))
		}
		sp.End()
		return err
	}

	var ta, tb, sa, sb Observation
	if err := phase("timing-a", func() (err error) {
		ta, err = runOnce(s, s.SecretA, cfg, ModeTiming)
		return
	}); err != nil {
		return v, err
	}
	if err := phase("timing-b", func() (err error) {
		tb, err = runOnce(s, s.SecretB, cfg, ModeTiming)
		return
	}); err != nil {
		return v, err
	}
	if err := phase("state-a", func() (err error) {
		sa, err = runOnce(s, s.SecretA, cfg, ModeState)
		return
	}); err != nil {
		return v, err
	}
	if err := phase("state-b", func() (err error) {
		sb, err = runOnce(s, s.SecretB, cfg, ModeState)
		return
	}); err != nil {
		return v, err
	}

	cmp := root.Child("compare")
	v.ProbeA, v.ProbeB = ta.Probe, tb.Probe
	for k := range ta.Probe {
		var d uint64
		if ta.Probe[k] > tb.Probe[k] {
			d = ta.Probe[k] - tb.Probe[k]
		} else {
			d = tb.Probe[k] - ta.Probe[k]
		}
		if d > v.MaxTimingDelta {
			v.MaxTimingDelta = d
		}
		if d >= TimingThreshold {
			v.TimingSlots = append(v.TimingSlots, k)
		}
	}
	for _, d := range sa.Snap.Diff(sb.Snap) {
		v.StateDiffs = append(v.StateDiffs, d.String())
	}

	if len(v.TimingSlots) > 0 {
		v.Leak = true
		v.Channels = append(v.Channels, "timing")
	}
	if len(v.StateDiffs) > 0 {
		v.Leak = true
		v.Channels = append(v.Channels, "state")
	}
	if cmp != nil {
		cmp.SetAttr("leak", strconv.FormatBool(v.Leak))
	}
	cmp.End()
	return v, nil
}
