package cache

import "repro/internal/metrics"

// AttachMetrics binds the cache's counters into reg under the given name
// prefix ("l1d", "l2", ...). The hot path keeps its plain struct-field
// increments; the registry reads the fields at snapshot time.
func (c *Cache) AttachMetrics(reg *metrics.Registry, prefix string) {
	s := &c.Stats
	reg.BindCounter(prefix+".accesses", &s.Accesses)
	reg.BindCounter(prefix+".hits", &s.Hits)
	reg.BindCounter(prefix+".misses", &s.Misses)
	reg.BindCounter(prefix+".installs", &s.Installs)
	reg.BindCounter(prefix+".evictions", &s.Evictions)
	reg.BindCounter(prefix+".writebacks", &s.Writebacks)
	reg.BindCounter(prefix+".invals", &s.Invals)
	reg.BindCounter(prefix+".restores", &s.Restores)
}

// AttachMetrics binds the MSHR's counters and occupancy gauge into reg
// under the given prefix.
func (m *MSHR) AttachMetrics(reg *metrics.Registry, prefix string) {
	reg.BindCounter(prefix+".allocs", &m.Stats.Allocs)
	reg.BindCounter(prefix+".merges", &m.Stats.Merges)
	reg.BindCounter(prefix+".full", &m.Stats.Full)
	reg.BindCounter(prefix+".dropped", &m.Stats.Dropped)
	reg.BindCounter(prefix+".squashes", &m.Stats.Squashes)
	reg.GaugeFunc(prefix+".occupancy", func() float64 { return float64(m.Len()) })
}
