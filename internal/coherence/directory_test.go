package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/xrand"
)

const line = arch.LineAddr(0x1000)

func TestFirstReaderGetsExclusive(t *testing.T) {
	d := NewDirectory(4)
	g := d.GetS(0, line)
	if g.State != arch.Exclusive || g.Source != SrcMemory || g.RemoteOwned {
		t.Fatalf("grant %+v", g)
	}
	if st := d.State(0, line); st != arch.Exclusive {
		t.Fatalf("state %v", st)
	}
}

func TestSecondReaderDowngradesOwner(t *testing.T) {
	d := NewDirectory(4)
	d.GetS(0, line)
	g := d.GetS(1, line)
	if g.State != arch.Shared || !g.RemoteOwned || g.Source != SrcRemote {
		t.Fatalf("grant %+v", g)
	}
	if len(g.Downgrades) != 1 || g.Downgrades[0] != 0 {
		t.Fatalf("downgrades %v", g.Downgrades)
	}
	if d.State(0, line) != arch.Shared || d.State(1, line) != arch.Shared {
		t.Fatal("both cores must be S after downgrade")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestThirdReaderJustShares(t *testing.T) {
	d := NewDirectory(4)
	d.GetS(0, line)
	d.GetS(1, line)
	g := d.GetS(2, line)
	if g.State != arch.Shared || g.RemoteOwned || len(g.Downgrades) != 0 {
		t.Fatalf("grant %+v", g)
	}
}

func TestGetSSafeFailsOnRemoteOwner(t *testing.T) {
	d := NewDirectory(4)
	d.GetX(0, line) // core 0 takes M
	g, ok := d.GetSSafe(1, line)
	if ok {
		t.Fatal("GetS-Safe must fail against a remote M owner")
	}
	if !g.RemoteOwned {
		t.Fatal("failure must report remote ownership")
	}
	// Crucially: no state change happened.
	if d.State(0, line) != arch.Modified {
		t.Fatal("GetS-Safe failure must not downgrade the owner")
	}
	if d.State(1, line) != arch.Invalid {
		t.Fatal("GetS-Safe failure must not grant the requester anything")
	}
	if d.Stats.GetSSafeFail != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
	// Retry as plain GetS on the correct path succeeds.
	g2 := d.GetS(1, line)
	if g2.State != arch.Shared || len(g2.Downgrades) != 1 {
		t.Fatalf("retry grant %+v", g2)
	}
}

func TestGetSSafeSucceedsWhenNotRemoteOwned(t *testing.T) {
	d := NewDirectory(4)
	// Unowned line.
	if _, ok := d.GetSSafe(1, line); !ok {
		t.Fatal("GetS-Safe must succeed on an unowned line")
	}
	// Shared line.
	d.GetS(2, line)
	if _, ok := d.GetSSafe(3, line); !ok {
		t.Fatal("GetS-Safe must succeed on a shared line")
	}
	// Locally owned line.
	d2 := NewDirectory(2)
	d2.GetX(0, line)
	if g, ok := d2.GetSSafe(0, line); !ok || g.State != arch.Modified {
		t.Fatalf("GetS-Safe on own M line: (%+v, %v)", g, ok)
	}
}

func TestGetXInvalidatesEveryone(t *testing.T) {
	d := NewDirectory(4)
	d.GetS(0, line)
	d.GetS(1, line)
	d.GetS(2, line)
	g := d.GetX(3, line)
	if g.State != arch.Modified {
		t.Fatalf("grant %+v", g)
	}
	if len(g.Invalidates) != 3 {
		t.Fatalf("invalidates %v", g.Invalidates)
	}
	for c := 0; c < 3; c++ {
		if d.State(c, line) != arch.Invalid {
			t.Fatalf("core %d not invalidated", c)
		}
	}
	if d.State(3, line) != arch.Modified {
		t.Fatal("writer must be M")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestGetXOnRemoteModified(t *testing.T) {
	d := NewDirectory(2)
	d.GetX(0, line)
	g := d.GetX(1, line)
	if len(g.Invalidates) != 1 || g.Invalidates[0] != 0 || !g.RemoteOwned {
		t.Fatalf("grant %+v", g)
	}
	if d.Stats.Writebacks != 1 {
		t.Fatalf("dirty transfer must count a writeback: %+v", d.Stats)
	}
}

func TestEvictAndGC(t *testing.T) {
	d := NewDirectory(2)
	d.GetS(0, line)
	d.GetS(1, line)
	d.Evict(0, line, false)
	if d.State(0, line) != arch.Invalid || d.State(1, line) != arch.Shared {
		t.Fatal("evict removed the wrong sharer")
	}
	d.Evict(1, line, false)
	if d.Lines() != 0 {
		t.Fatal("empty entry must be garbage collected")
	}
	// Dirty owner eviction counts a writeback.
	d.GetX(0, line)
	d.Evict(0, line, true)
	if d.Stats.Writebacks != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
	// Eviction of an untracked line is a no-op.
	d.Evict(0, arch.LineAddr(0x9999), false)
}

func TestFlushInvalidatesAllHolders(t *testing.T) {
	d := NewDirectory(4)
	d.GetS(0, line)
	d.GetS(1, line)
	holders := d.Flush(line)
	if len(holders) != 2 {
		t.Fatalf("holders %v", holders)
	}
	if d.Lines() != 0 {
		t.Fatal("flushed line must be untracked")
	}
	if d.Flush(line) != nil {
		t.Fatal("double flush must return nil")
	}
	// Flush of an M line counts the writeback.
	d.GetX(2, line)
	holders = d.Flush(line)
	if len(holders) != 1 || holders[0] != 2 {
		t.Fatalf("holders %v", holders)
	}
	if d.Stats.Writebacks != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
}

func TestDowngradeOfDirtyOwnerWritesBack(t *testing.T) {
	d := NewDirectory(2)
	d.GetX(0, line)
	d.GetS(1, line)
	if d.Stats.Writebacks != 1 {
		t.Fatalf("M->S downgrade must write back: %+v", d.Stats)
	}
}

func TestBadCorePanics(t *testing.T) {
	d := NewDirectory(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.GetS(2, line)
}

func TestBadCoreCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDirectory(65)
}

// Property: under any random sequence of GetS/GetX/Evict/Flush operations,
// the single-writer-multiple-reader invariant holds.
func TestProtocolInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		d := NewDirectory(4)
		lines := []arch.LineAddr{1, 2, 3}
		for i := 0; i < 300; i++ {
			core := r.Intn(4)
			l := lines[r.Intn(len(lines))]
			switch r.Intn(5) {
			case 0, 1:
				d.GetS(core, l)
			case 2:
				d.GetX(core, l)
			case 3:
				d.Evict(core, l, r.Bool(0.5))
			case 4:
				if r.Bool(0.2) {
					d.Flush(l)
				} else {
					d.GetSSafe(core, l)
				}
			}
			if err := d.Check(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: GetS-Safe never mutates directory state when it fails.
func TestGetSSafeFailureIsPure(t *testing.T) {
	d := NewDirectory(2)
	d.GetX(0, line)
	before := d.State(0, line)
	for i := 0; i < 10; i++ {
		if _, ok := d.GetSSafe(1, line); ok {
			t.Fatal("should keep failing")
		}
	}
	if d.State(0, line) != before {
		t.Fatal("failed GetS-Safe mutated state")
	}
}
