package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/faultinject"
	"repro/sim"
)

// Cache is the content-addressed on-disk result store. Each entry is one
// JSON file named <key>.json under a two-hex-character shard directory
// (<dir>/ab/abcdef....json), so even large campaigns keep directory sizes
// reasonable. Writes go through a temp file + rename, so a cache is never
// left with a torn entry after a crash or an interrupt, and every entry
// carries a content checksum verified on read — a corrupt entry (bit rot,
// hand edit, torn write that still renamed) is a logged miss, never a
// crash or a silently wrong result.
type Cache struct {
	dir string

	// Warn, when non-nil, receives one line per detected corrupt entry.
	Warn func(msg string)
	// Faults injects read/write faults for chaos tests (nil = disabled).
	Faults *faultinject.Injector

	corrupt atomic.Int64
}

// Entry is the on-disk record: the job's identity metadata plus its full
// measurement, self-describing enough for `campaign export` to rebuild a
// report without re-expanding the original grid.
type Entry struct {
	Key      string     `json:"key"`
	Schema   int        `json:"schema"`
	Workload string     `json:"workload"`
	Policy   sim.Policy `json:"policy"`
	Variant  string     `json:"variant,omitempty"`
	Seed     uint64     `json:"seed"`
	// Kind is the cell kind ("" = plain simulation); Aux is a custom
	// kind's opaque result payload. Both are covered by the checksum.
	Kind   CellKind        `json:"kind,omitempty"`
	Aux    json.RawMessage `json:"aux,omitempty"`
	Result sim.Result      `json:"result"`
	// Summary is the cell's headline derived metrics, duplicated out of
	// Result so `jq .summary` and the simscope inspector can read a cell
	// without knowing the Result schema. The full counter snapshot lives
	// in Result.Metrics.
	Summary map[string]float64 `json:"summary,omitempty"`
	// Sum is the entry's content checksum: hex sha256 of the entry's
	// canonical JSON with Sum itself blank. Verified on every read.
	Sum string `json:"sum,omitempty"`
}

// checksum computes the entry's content checksum (over its canonical JSON
// with the Sum field blank).
func checksum(e Entry) (string, error) {
	e.Sum = ""
	blob, err := json.Marshal(e)
	if err != nil {
		return "", fmt.Errorf("campaign: checksumming cache entry: %w", err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:]), nil
}

// Summarize extracts the headline per-cell metrics stored in Entry.Summary.
func Summarize(res sim.Result) map[string]float64 {
	return map[string]float64{
		"ipc":            res.IPC,
		"cycles":         float64(res.Cycles),
		"squash_pki":     res.SquashPKI,
		"l1_miss_rate":   res.L1MissRate,
		"mispredict":     res.MispredictRate,
		"traffic_total":  float64(res.Traffic.Total()),
		"wait_per_sq":    res.WaitPerSquash,
		"cleanup_per_sq": res.CleanupPerSquash,
	}
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Verify re-derives the entry's checksum and reports whether it matches.
// Entries written before SchemaVersion 4 have no Sum, but those fail the
// schema check first, so an empty Sum here means tampering. The fabric
// verifies every entry that crosses a process boundary this way — a
// remote peer's entry is trusted only after its bytes re-hash clean.
func (e Entry) Verify() bool {
	want, err := checksum(e)
	return err == nil && e.Sum == want
}

// verify is the package-internal spelling of Entry.Verify.
func verify(e Entry) bool { return e.Verify() }

// noteCorrupt counts and reports a corrupt entry.
func (c *Cache) noteCorrupt(path, why string) {
	c.corrupt.Add(1)
	if c.Warn != nil {
		c.Warn(fmt.Sprintf("corrupt cache entry %s (%s): treating as miss", path, why))
	}
}

// CorruptReads returns how many corrupt entries reads have detected.
func (c *Cache) CorruptReads() int64 { return c.corrupt.Load() }

// Get returns the cached entry for key, with ok=false on a miss. A
// corrupt entry — unparseable bytes, a checksum mismatch, an entry filed
// under the wrong key — is logged via Warn and counts as a miss, so the
// job is simply re-simulated and rewritten; corruption never crashes a
// campaign or serves a wrong result.
func (c *Cache) Get(key string) (Entry, bool) {
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, false
	}
	switch k := c.Faults.Check(faultinject.SiteCacheRead); k {
	case faultinject.KindError:
		return Entry{}, false // injected read error: a plain miss
	case faultinject.KindCorrupt:
		data = c.Faults.Mutate(k, data)
	default:
		// KindNone and kinds scheduled for other sites: read proceeds.
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		c.noteCorrupt(path, "unparseable")
		return Entry{}, false
	}
	if e.Schema != SchemaVersion {
		return Entry{}, false // foreign schema: a miss, not corruption
	}
	if e.Key != key {
		c.noteCorrupt(path, "key mismatch")
		return Entry{}, false
	}
	if !verify(e) {
		c.noteCorrupt(path, "checksum mismatch")
		return Entry{}, false
	}
	return e, true
}

// NewEntry builds the checksummed cache entry for a finished job — the
// canonical on-disk (and on-wire) representation of one cell's outcome.
// The fabric sends these between workers and the coordinator; both sides
// re-verify the checksum before trusting the bytes.
func NewEntry(job Job, res sim.Result, aux json.RawMessage) (Entry, error) {
	key, err := job.Key()
	if err != nil {
		return Entry{}, err
	}
	rc := job.Config.Resolved()
	e := Entry{
		Key:      key,
		Schema:   SchemaVersion,
		Workload: job.Workload,
		Policy:   rc.Policy,
		Variant:  job.Variant,
		Seed:     rc.Seed,
		Kind:     job.Kind,
		Aux:      aux,
		Result:   res,
	}
	if job.Kind == KindSim {
		e.Summary = Summarize(res)
	}
	if e.Sum, err = checksum(e); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// Put stores the result of job under its key. aux is a custom cell kind's
// opaque payload (nil for plain simulation cells).
func (c *Cache) Put(job Job, res sim.Result, aux json.RawMessage) error {
	e, err := NewEntry(job, res, aux)
	if err != nil {
		return err
	}
	return c.PutEntry(e)
}

// PutEntry stores an already-built entry under its own key. The entry is
// re-verified first: a caller holding a corrupt entry (a damaged wire
// payload, a doctored file) gets an error instead of poisoning the store.
func (c *Cache) PutEntry(e Entry) error {
	if e.Schema != SchemaVersion {
		return fmt.Errorf("campaign: cache put %s: schema %d, want %d", e.Key, e.Schema, SchemaVersion)
	}
	if len(e.Key) < 2 || !e.Verify() {
		return fmt.Errorf("campaign: cache put %s: entry fails checksum verification", e.Key)
	}
	key := e.Key
	data, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: encoding cache entry: %w", err)
	}
	switch k := c.Faults.Check(faultinject.SiteCacheWrite); k {
	case faultinject.KindError:
		return fmt.Errorf("campaign: cache write %s: %w", key, faultinject.ErrInjected)
	case faultinject.KindCorrupt, faultinject.KindTruncate:
		// Persist damaged bytes through the normal atomic path: the torn
		// entry must be caught by the read-side checksum, not by luck.
		data = c.Faults.Mutate(k, data)
	default:
		// KindNone and kinds scheduled for other sites: write proceeds.
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("campaign: cache shard: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	return nil
}

// Entries returns every cached entry, sorted by (workload, policy,
// variant, seed) for deterministic export output.
func (c *Cache) Entries() ([]Entry, error) {
	var entries []Entry
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != c.dir && d.Name() == quarantineDirName {
				return filepath.SkipDir // panic dumps, not result entries
			}
			return nil
		}
		if !strings.HasSuffix(path, ".json") {
			return nil
		}
		if filepath.Dir(path) == c.dir {
			return nil // manifest files live at the root
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil || e.Schema != SchemaVersion {
			return nil // skip torn/foreign files
		}
		if !verify(e) {
			c.noteCorrupt(path, "checksum mismatch")
			return nil
		}
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: scanning cache: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.Seed < b.Seed
	})
	return entries, nil
}

// Len returns the number of cached entries.
func (c *Cache) Len() (int, error) {
	entries, err := c.Entries()
	if err != nil {
		return 0, err
	}
	return len(entries), nil
}
