package campaign

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Flaw is one damaged file found by Fsck.
type Flaw struct {
	Path   string `json:"path"`
	Reason string `json:"reason"`
}

// FsckReport is the result of a cache-directory integrity scan.
type FsckReport struct {
	Dir string

	Scanned int    // entry files examined
	OK      int    // current-schema entries that verified clean
	Foreign int    // valid entries from other schema versions (kept)
	Corrupt []Flaw // unparseable / checksum-mismatched / misfiled entries
	Orphans []Flaw // leftover temp files from interrupted writes

	ManifestOK      bool // journal present and header readable
	ManifestRecords int
	ManifestDropped int // torn journal lines

	// Deep cross-check results (Fsck with Deep set): the journal and the
	// entry store describe the same campaign from two sides, and a crash
	// between cache.Put and Manifest.Append (or a lost Put) lets them
	// drift. Both directions are recoverable — the engine re-simulates a
	// missing entry and re-journals an unjournaled one — but drift means
	// resume estimates and `campaign status` counts lie, so -deep makes
	// it visible.
	Deep        bool
	MissingData []Flaw // done journal rows whose cache entry is absent/unusable
	Unjournaled []Flaw // verified cache entries with no journal row

	// GCOrphans marks an interrupted eviction: a gc-intent marker is
	// present (gc crashed between publishing its victim list and deleting
	// the marker), and these are the marker plus any listed entries still
	// on disk. Prune finishes the eviction the dead gc started.
	GCOrphans []Flaw

	Pruned []string // removed by -prune
}

// Clean reports whether the scan found nothing to repair. A missing or
// rebuilt manifest is not dirt — the engine reconstructs it — but corrupt
// or orphaned entry files are, and so is journal/store drift found by a
// deep scan.
func (r *FsckReport) Clean() bool {
	return len(r.Corrupt) == 0 && len(r.Orphans) == 0 &&
		len(r.MissingData) == 0 && len(r.Unjournaled) == 0 &&
		len(r.GCOrphans) == 0
}

// String renders the operator-facing summary `campaign fsck` prints.
func (r *FsckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsck %s: %d entr(ies) scanned, %d ok", r.Dir, r.Scanned, r.OK)
	if r.Foreign > 0 {
		fmt.Fprintf(&b, ", %d foreign-schema (kept)", r.Foreign)
	}
	fmt.Fprintf(&b, ", %d corrupt, %d orphan(s)", len(r.Corrupt), len(r.Orphans))
	if r.ManifestOK {
		fmt.Fprintf(&b, "; manifest: %d record(s)", r.ManifestRecords)
		if r.ManifestDropped > 0 {
			fmt.Fprintf(&b, ", %d torn line(s) dropped", r.ManifestDropped)
		}
	} else {
		b.WriteString("; manifest: absent or rebuilt")
	}
	for _, f := range r.Corrupt {
		fmt.Fprintf(&b, "\n  corrupt: %s (%s)", f.Path, f.Reason)
	}
	for _, f := range r.Orphans {
		fmt.Fprintf(&b, "\n  orphan:  %s (%s)", f.Path, f.Reason)
	}
	for _, f := range r.MissingData {
		fmt.Fprintf(&b, "\n  missing: %s (%s)", f.Path, f.Reason)
	}
	for _, f := range r.Unjournaled {
		fmt.Fprintf(&b, "\n  unjournaled: %s (%s)", f.Path, f.Reason)
	}
	for _, f := range r.GCOrphans {
		fmt.Fprintf(&b, "\n  gc-orphan: %s (%s)", f.Path, f.Reason)
	}
	for _, p := range r.Pruned {
		fmt.Fprintf(&b, "\n  pruned:  %s", p)
	}
	return b.String()
}

// isTempFile matches the temp names Cache.Put and Manifest.Save create
// (".<key>.tmp-*" / ".manifest.tmp-*"): after a crash between create and
// rename these linger as orphans.
func isTempFile(name string) bool {
	return strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-")
}

// FsckOptions selects what a cache scan checks and repairs.
type FsckOptions struct {
	// Prune deletes corrupt entries and orphans, removes unjournaled
	// entries, and resets done journal rows with no backing entry to
	// pending — every repair makes the affected cell simply re-simulate.
	Prune bool
	// Deep cross-checks manifest journal rows against the entry store in
	// both directions (requires a readable manifest; silently skipped
	// otherwise, since a rebuilt manifest has nothing to disagree with).
	Deep bool
}

// Fsck scans a cache directory for corruption the way reads would detect
// it — unparseable entries, checksum mismatches, entries filed under the
// wrong key or shard, temp-file orphans, torn manifest lines — and
// reports everything found. With prune set, corrupt entries and orphans
// are deleted (they will simply re-simulate); valid entries from other
// schema versions are reported but never pruned.
func Fsck(dir string, prune bool) (*FsckReport, error) {
	return FsckWith(dir, FsckOptions{Prune: prune})
}

// FsckWith is Fsck with the full option set (see FsckOptions).
func FsckWith(dir string, opts FsckOptions) (*FsckReport, error) {
	rep := &FsckReport{Dir: dir, Deep: opts.Deep}
	verified := make(map[string]string) // entry key -> path, current schema only
	if _, err := os.Stat(dir); err != nil {
		return nil, fmt.Errorf("campaign: fsck: %w", err)
	}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != dir && d.Name() == quarantineDirName {
				return filepath.SkipDir // diagnostic dumps, not entries
			}
			return nil
		}
		name := d.Name()
		if isTempFile(name) {
			rep.Orphans = append(rep.Orphans, Flaw{Path: path, Reason: "interrupted atomic write"})
			return nil
		}
		if filepath.Dir(path) == dir {
			return nil // manifest files live at the root, checked below
		}
		if !strings.HasSuffix(name, ".json") {
			return nil
		}
		rep.Scanned++
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil {
			rep.Corrupt = append(rep.Corrupt, Flaw{Path: path, Reason: fmt.Sprintf("unparseable: %v", err)})
			return nil
		}
		if e.Schema != SchemaVersion {
			rep.Foreign++
			return nil
		}
		if len(e.Key) < 2 || name != e.Key+".json" || filepath.Base(filepath.Dir(path)) != e.Key[:2] {
			rep.Corrupt = append(rep.Corrupt, Flaw{Path: path, Reason: fmt.Sprintf("misfiled: entry key %s", e.Key)})
			return nil
		}
		if !verify(e) {
			rep.Corrupt = append(rep.Corrupt, Flaw{Path: path, Reason: "checksum mismatch"})
			return nil
		}
		rep.OK++
		verified[e.Key] = path
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: fsck: %w", err)
	}
	sortFlaws(rep.Corrupt)
	sortFlaws(rep.Orphans)

	m, manifestOK := LoadManifest(dir)
	if manifestOK {
		rep.ManifestOK = true
		rep.ManifestRecords = len(m.Jobs)
		rep.ManifestDropped = m.Dropped()
	}

	// An eviction marker means a gc died between publishing its victim
	// list and retiring the marker. The marker plus every listed entry
	// still on disk are the gc-race orphans; prune finishes the eviction.
	var gcVictimKeys []string // listed keys whose entry survives, for prune
	if data, err := os.ReadFile(GCIntentPath(dir)); err == nil {
		var intent gcIntent
		if err := json.Unmarshal(data, &intent); err != nil {
			rep.GCOrphans = append(rep.GCOrphans, Flaw{
				Path:   GCIntentPath(dir),
				Reason: fmt.Sprintf("unparseable gc intent marker: %v", err),
			})
		} else {
			rep.GCOrphans = append(rep.GCOrphans, Flaw{
				Path:   GCIntentPath(dir),
				Reason: fmt.Sprintf("interrupted gc (%d cell(s) marked for eviction)", len(intent.Keys)),
			})
			for _, key := range intent.Keys {
				if len(key) < 2 {
					continue
				}
				path := filepath.Join(dir, key[:2], key+".json")
				if _, err := os.Stat(path); err == nil {
					rep.GCOrphans = append(rep.GCOrphans, Flaw{
						Path:   path,
						Reason: "marked for eviction by an interrupted gc",
					})
					gcVictimKeys = append(gcVictimKeys, key)
				}
			}
		}
		sortFlaws(rep.GCOrphans[1:]) // keep the marker's own flaw first
	}

	var missingKeys []string // done rows to reset on prune
	if opts.Deep && manifestOK {
		for _, key := range sortedKeys(m.Jobs) {
			rec := m.Jobs[key]
			if rec.Status != StatusDone {
				continue
			}
			if _, ok := verified[key]; !ok {
				rep.MissingData = append(rep.MissingData, Flaw{
					Path:   key,
					Reason: fmt.Sprintf("journal says %s/%s is done but no verified cache entry backs it", rec.Workload, rec.Policy),
				})
				missingKeys = append(missingKeys, key)
			}
		}
		for _, key := range sortedKeys(verified) {
			if _, ok := m.Jobs[key]; !ok {
				rep.Unjournaled = append(rep.Unjournaled, Flaw{
					Path:   verified[key],
					Reason: fmt.Sprintf("cache entry %s has no journal row", key),
				})
			}
		}
		sortFlaws(rep.MissingData)
		sortFlaws(rep.Unjournaled)
	}

	if opts.Prune {
		// GCOrphans last: the marker (its first flaw) must outlive the
		// listed entries, so a prune interrupted mid-repair is itself
		// resumable the same way.
		for _, list := range [][]Flaw{rep.Corrupt, rep.Orphans, rep.Unjournaled} {
			for _, f := range list {
				if err := os.Remove(f.Path); err != nil {
					return rep, fmt.Errorf("campaign: fsck prune: %w", err)
				}
				rep.Pruned = append(rep.Pruned, f.Path)
			}
		}
		for i := len(rep.GCOrphans) - 1; i >= 0; i-- {
			f := rep.GCOrphans[i]
			if err := os.Remove(f.Path); err != nil && !os.IsNotExist(err) {
				return rep, fmt.Errorf("campaign: fsck prune: %w", err)
			}
			rep.Pruned = append(rep.Pruned, f.Path)
		}
		demote := missingKeys
		if manifestOK {
			// Evicted cells' done rows lie the same way missing-data rows
			// do; demote them alongside.
			for _, key := range gcVictimKeys {
				if rec, ok := m.Jobs[key]; ok && rec.Status == StatusDone {
					demote = append(demote, key)
				}
			}
		}
		if len(demote) > 0 {
			// A done row with no backing entry lies to resume estimates;
			// demote it to pending so the cell honestly re-simulates.
			for _, key := range demote {
				m.Jobs[key].Status = StatusPending
				m.Jobs[key].Cached = false
				rep.Pruned = append(rep.Pruned, "journal:"+key)
			}
			if err := m.Save(); err != nil {
				return rep, fmt.Errorf("campaign: fsck prune: %w", err)
			}
		}
		sort.Strings(rep.Pruned)
	}
	return rep, nil
}

// sortedKeys returns a map's keys in sorted order, for deterministic
// flaw listings.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortFlaws(flaws []Flaw) {
	sort.Slice(flaws, func(i, j int) bool { return flaws[i].Path < flaws[j].Path })
}
