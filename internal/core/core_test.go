package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/testprog"
)

func runScenario(t *testing.T, pol cpu.Policy, progName string) (*cpu.Machine, *memsys.Hierarchy) {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	var hcfg memsys.Config
	if _, ok := pol.(*CleanupSpec); ok {
		hcfg = HierarchyConfig(testprog.SmallConfig())
	} else {
		hcfg = testprog.SmallConfig()
	}
	// The scenarios rely on deterministic LRU eviction during warmup;
	// random replacement is covered by its own tests and benches.
	hcfg.L1.Repl = cache.ReplLRU
	h := memsys.New(hcfg)
	var prog = testprog.WrongPathExecuted()
	if progName == "inflight" {
		prog = testprog.WrongPathInflight()
	}
	m := cpu.New(cfg, prog, h, pol)
	m.Run(0)
	m.DrainMemory()
	if !m.Halted() {
		t.Fatal("program did not halt")
	}
	if m.Stats.Squashes == 0 {
		t.Fatal("scenario produced no squash")
	}
	return m, h
}

func TestCleanupInvalidatesTransientInstall(t *testing.T) {
	p := New()
	m, h := runScenario(t, p, "executed")
	wrong := testprog.AddrWrong.Line()
	if _, hit := h.L1(0).Probe(wrong); hit {
		t.Fatal("transient install survived cleanup in L1")
	}
	if p.Stats.InvalidationsL1 == 0 {
		t.Fatalf("no L1 invalidations: %+v", p.Stats)
	}
	_ = m
}

func TestCleanupRestoresEvictedVictim(t *testing.T) {
	p := New()
	_, h := runScenario(t, p, "executed")
	// Both victims must be resident again after cleanup.
	for _, a := range []arch.Addr{testprog.AddrVictim1, testprog.AddrVictim2} {
		if _, hit := h.L1(0).Probe(a.Line()); !hit {
			t.Fatalf("victim %v not restored", a)
		}
	}
	if p.Stats.Restores == 0 {
		t.Fatalf("no restores recorded: %+v", p.Stats)
	}
}

func TestNonSecureLeavesTransientState(t *testing.T) {
	// Contrast: the same scenario under the non-secure baseline keeps the
	// transient install and loses a victim.
	_, h := runScenario(t, cpu.NonSecure{}, "executed")
	wrong := testprog.AddrWrong.Line()
	if _, hit := h.L1(0).Probe(wrong); !hit {
		t.Fatal("expected the transient install to survive under non-secure")
	}
	v1Hit := func() bool { _, ok := h.L1(0).Probe(testprog.AddrVictim1.Line()); return ok }()
	v2Hit := func() bool { _, ok := h.L1(0).Probe(testprog.AddrVictim2.Line()); return ok }()
	if v1Hit && v2Hit {
		t.Fatal("expected one victim to have been evicted under non-secure")
	}
}

func TestInflightSquashedFillIsDropped(t *testing.T) {
	p := New()
	m, h := runScenario(t, p, "inflight")
	cold := testprog.AddrCold.Line()
	if h.ProbeLevel(0, cold) != memsys.LevelMem {
		t.Fatal("in-flight transient fill landed despite the squash")
	}
	if m.Stats.SquashedInflight == 0 {
		t.Fatalf("stats: %+v", m.Stats)
	}
	if p.Stats.DroppedInflight == 0 {
		t.Fatalf("policy stats: %+v", p.Stats)
	}
	if h.Stats.DroppedFills == 0 {
		t.Fatalf("hierarchy stats: %+v", h.Stats)
	}
}

func TestNonSecureLandsInflightFill(t *testing.T) {
	_, h := runScenario(t, cpu.NonSecure{}, "inflight")
	cold := testprog.AddrCold.Line()
	if h.ProbeLevel(0, cold) == memsys.LevelMem {
		t.Fatal("non-secure should let the wrong-path fill land")
	}
}

func TestCleanupStallAccounted(t *testing.T) {
	p := New()
	m, _ := runScenario(t, p, "executed")
	if m.Stats.CleanupOpCycles == 0 {
		t.Fatalf("cleanup ops should cost cycles: %+v", m.Stats)
	}
}

func TestCleanupFreeSquashCostsNothing(t *testing.T) {
	p := New()
	m, _ := runScenario(t, p, "inflight")
	// The only squashed load was in flight: no cleanup operations.
	if p.Stats.ExecutedCleaned != 0 {
		t.Fatalf("expected zero executed cleanups: %+v", p.Stats)
	}
	if m.Stats.CleanupOpCycles != 0 {
		t.Fatalf("inflight-only squash must not charge cleanup ops: %+v", m.Stats)
	}
}

func TestConstantTimeCleanupPads(t *testing.T) {
	p := NewWithConfig(Config{UseGetSSafe: true, ConstantTimeCleanup: 50})
	m, _ := runScenario(t, p, "inflight")
	per := float64(m.Stats.CleanupOpCycles) / float64(m.Stats.Squashes)
	if per < 50 {
		t.Fatalf("constant-time pad not applied: %.1f cycles/squash", per)
	}
}

func TestDisableRestoreAblation(t *testing.T) {
	// The naive invalidation-only design (Section 2.4.1): the transient
	// line is removed but the victim stays missing — the Prime+Probe
	// residue the full design eliminates.
	p := NewWithConfig(Config{UseGetSSafe: true, DisableRestore: true})
	_, h := runScenario(t, p, "executed")
	if _, hit := h.L1(0).Probe(testprog.AddrWrong.Line()); hit {
		t.Fatal("invalidation should still happen")
	}
	v1Hit := func() bool { _, ok := h.L1(0).Probe(testprog.AddrVictim1.Line()); return ok }()
	v2Hit := func() bool { _, ok := h.L1(0).Probe(testprog.AddrVictim2.Line()); return ok }()
	if v1Hit && v2Hit {
		t.Fatal("with restore disabled a victim must stay evicted")
	}
}

func TestHierarchyConfigKnobs(t *testing.T) {
	hcfg := HierarchyConfig(memsys.DefaultConfig(1))
	if !hcfg.RandomizeL2 || !hcfg.ProtectSpecWindow {
		t.Fatal("CleanupSpec hierarchy must randomize L2 and protect the window")
	}
	h := memsys.New(hcfg)
	if h.L2Indexer() == nil {
		t.Fatal("L2 must use the CEASER indexer")
	}
	if h.L2RT() != 10 {
		t.Fatalf("L2 RT %d, want 10 (8 + 2 encryption)", h.L2RT())
	}
}

func TestStorageOverheadUnder1KB(t *testing.T) {
	// Section 6.6: 32 LQ + 64 L1-MSHR + 64 L2-MSHR entries < 1 KB/core.
	bits := StorageBitsPerCore(32, 64, 64)
	if bytes := bits / 8; bytes >= 1024 {
		t.Fatalf("SEFE storage %d bytes, paper promises < 1KB", bytes)
	}
}

func TestSafeGetSDelayAndRetry(t *testing.T) {
	// A speculative load to a line owned M by another core must be
	// delayed (no transient downgrade) and retried once unsquashable.
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	hcfg := HierarchyConfig(testprog.SmallConfig())
	hcfg.NumCores = 2
	h := memsys.New(hcfg)
	// Core 1 dirties the flag's line.
	remote := arch.Addr(0x7000)
	h.Store(1, remote.Line(), 0)

	// Program: a slow, correctly-predicted branch keeps a younger
	// correct-path load speculative; that load targets the remote-owned
	// line, so its first attempt (GetS-Safe) must fail without touching
	// the remote copy and the retry happens after resolution.
	prog := remoteLoadProgram(remote)
	p := New()
	m := cpu.New(cfg, prog, h, p)
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if h.Stats.SafeGetSDelays == 0 {
		t.Fatalf("expected GetS-Safe delays: %+v", h.Stats)
	}
	// After the correct-path retry the remote copy is downgraded.
	if h.L1(1).State(remote.Line()) != arch.Shared {
		t.Fatalf("remote state %v, want S after correct-path GetS", h.L1(1).State(remote.Line()))
	}
	if m.Stats.LoadDelayStalls == 0 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

// remoteLoadProgram: a cold-miss branch condition (slow, actually taken and
// predicted taken) with a speculative load to the remote-owned line on the
// predicted (and correct) path.
func remoteLoadProgram(remote arch.Addr) *isa.Program {
	b := isa.NewBuilder("remote-load")
	flag := arch.Addr(0x9000)
	b.InitData(flag, 1)
	b.Li(3, int64(flag))
	b.Load(4, 3, 0) // slow: cold miss
	// Correctly predicted (not taken both ways): the fall-through load
	// stays on the correct path but is speculative until resolution.
	b.Br(isa.CondEQ, 4, 0, "skip")
	b.Li(5, int64(remote))
	b.Load(6, 5, 0) // speculative until the branch resolves
	b.Halt()
	b.Label("skip")
	b.Halt()
	return b.Build()
}

func TestWindowExtensionAccounting(t *testing.T) {
	// A load that stays speculative for several hundred cycles (branch
	// condition from DRAM) must send keep-alive messages; the paper
	// bounds these at <2% of traffic overall.
	p := New()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	hcfg := HierarchyConfig(testprog.SmallConfig())
	hcfg.L1.Repl = cache.ReplLRU
	h := memsys.New(hcfg)
	// Correct-path speculative load under a slow branch (the
	// remote-load shape without the remote part).
	b := isa.NewBuilder("window-ext")
	flag := arch.Addr(0x9000)
	b.InitData(flag, 1)
	b.Li(3, int64(flag))
	b.Load(4, 3, 0) // ~110-cycle resolution
	b.Br(isa.CondEQ, 4, 0, "skip")
	b.Li(5, 0xA000)
	b.Load(6, 5, 0) // issues early, commits only after the branch resolves...
	b.Halt()
	b.Label("skip")
	b.Halt()
	m := cpu.New(cfg, b.Build(), h, p)
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if p.Stats.LoadsObserved == 0 {
		t.Fatal("no loads observed")
	}
	// The flag load itself commits ~110+ cycles after issue only if it
	// was held up; here the *speculative* load r6 commits after the
	// branch resolves (~110 cycles after its own issue), so at least
	// one extension fires when the period is exceeded. With a 200-cycle
	// period and ~110-cycle windows this program may legitimately send
	// zero; assert the rate is sane rather than nonzero.
	if rate := p.ExtensionRate(); rate > 0.5 {
		t.Fatalf("implausible extension rate %.2f", rate)
	}
}

func TestWindowExtensionsFireOnLongSpeculation(t *testing.T) {
	// Force a speculation window longer than the 200-cycle period: the
	// branch condition needs TWO dependent memory round trips.
	p := New()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2_000_000
	hcfg := HierarchyConfig(testprog.SmallConfig())
	hcfg.L1.Repl = cache.ReplLRU
	h := memsys.New(hcfg)
	b := isa.NewBuilder("long-window")
	ptr := arch.Addr(0x9000)
	b.InitData(ptr, 0xA000)
	b.InitData(0xA000, 1)
	b.Li(3, int64(ptr))
	b.Load(4, 3, 0) // ~110 cycles: pointer
	b.Load(4, 4, 0) // ~110 more: value (chain)
	b.Br(isa.CondEQ, 4, 0, "skip")
	b.Li(5, 0xB000)
	b.Load(6, 5, 0) // speculative for > 200 cycles
	b.Halt()
	b.Label("skip")
	b.Halt()
	m := cpu.New(cfg, b.Build(), h, p)
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if p.Stats.WindowExtensions == 0 {
		t.Fatal("a >200-cycle speculation window must send an extension")
	}
}

func TestConstantTimeCleanupIsInvariant(t *testing.T) {
	// Section 4(b)'s hardening: with padding, a squash that needed real
	// cleanup ops and a squash that needed none charge the same stall,
	// removing the cleanup-duration channel.
	const pad = 60
	stall := func(scenario string) float64 {
		p := NewWithConfig(Config{UseGetSSafe: true, ConstantTimeCleanup: pad})
		m, _ := runScenario(t, p, scenario)
		return float64(m.Stats.CleanupOpCycles) / float64(m.Stats.Squashes)
	}
	withOps := stall("executed")
	withoutOps := stall("inflight")
	if withOps != withoutOps || withOps != pad {
		t.Fatalf("constant-time stall differs: %v vs %v (want %d)", withOps, withoutOps, pad)
	}
}
