package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// ChromeEvent is one trace-event-format record (the JSON the Chrome
// tracing UI and Perfetto load). Ph is the event phase: "X" complete,
// "i" instant, "C" counter, "M" metadata. Ts and Dur are in microseconds;
// the exporter maps one simulated cycle to one microsecond so cycle
// arithmetic survives the viewer round trip unscaled.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	// The trace-event spec requires heterogeneous args; this export is a
	// viewer artifact, never journaled, checksummed, or re-read.
	Args map[string]any `json:"args,omitempty"` //simlint:allow wireenc -- Chrome trace viewer schema; write-only export, not a journal
}

// chromeTraceFile is the JSON Object Format of the trace-event spec.
type chromeTraceFile struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Track (thread) ids within one exported process.
const (
	TidLoads = iota + 1
	TidSquashes
	TidCleanups
	TidWindows
	TidCommits
)

// trackNames labels the fixed tracks (indexed by tid; 0 unused).
var trackNames = [...]string{"", "loads", "squashes", "cleanups", "exposed-windows", "commits"}

// CounterSeries is one derived counter track: a value per sample, aligned
// with the Samples slice handed to ExportChromeTrace (typically built with
// Rates or RatioDeltas).
type CounterSeries struct {
	Name   string
	Values []float64
}

// ChromeTraceOpts configures one exported process (one run / one policy).
type ChromeTraceOpts struct {
	// Process labels the process track ("cleanupspec/astar"). Exports of
	// several policies into separate files can be diffed side by side in
	// Perfetto by loading both.
	Process string
	// Pid distinguishes processes when several runs are merged into one
	// file (per-policy tracks). Defaults to 1.
	Pid int
	// Events is the run's structured event trace (trace.Ring.Events()).
	Events []trace.Event
	// Samples, when non-empty, adds counter tracks for every gauge in the
	// series.
	Samples []Sample
	// Counters adds caller-derived counter tracks (IPC, squash rate, miss
	// rate), each aligned with Samples.
	Counters []CounterSeries
}

// BuildChromeEvents converts one run's trace ring and interval samples
// into trace-event records. Loads become complete ("X") events by pairing
// each load-issue with its load-complete on the same sequence number;
// speculation windows (KindSpecWindow, Arg = length) become complete
// events on their own track; cleanup restores carry their latency as the
// duration; everything else becomes an instant.
func BuildChromeEvents(opts ChromeTraceOpts) []ChromeEvent {
	pid := opts.Pid
	if pid == 0 {
		pid = 1
	}
	var out []ChromeEvent
	meta := func(name string, tid int, args map[string]any) {
		out = append(out, ChromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args})
	}
	meta("process_name", 0, map[string]any{"name": opts.Process})
	for tid, name := range trackNames {
		if tid > 0 {
			meta("thread_name", tid, map[string]any{"name": name})
		}
	}

	// Pair load-issue with load-complete by sequence number. The ring is
	// chronological, so an open issue is completed by the next matching
	// complete event.
	openIssue := make(map[uint64]trace.Event)
	instant := func(e trace.Event, tid int, name string, args map[string]any) {
		out = append(out, ChromeEvent{
			Name: name, Ph: "i", Ts: uint64(e.Cycle), Pid: pid, Tid: tid,
			S: "t", Cat: e.Kind.String(), Args: args,
		})
	}
	for _, e := range opts.Events {
		switch e.Kind {
		case trace.KindLoadIssue:
			openIssue[e.Seq] = e
		case trace.KindLoadComplete:
			iss, ok := openIssue[e.Seq]
			if !ok {
				// Completion of a load whose issue predates the ring.
				instant(e, TidLoads, "load-complete", map[string]any{"seq": e.Seq, "line": uint64(e.Line)})
				continue
			}
			delete(openIssue, e.Seq)
			out = append(out, ChromeEvent{
				//simlint:allow cyclemath -- the trace ring preserves emission order: a load's completion event never precedes its issue event
				Name: "load", Ph: "X", Ts: uint64(iss.Cycle), Dur: uint64(e.Cycle - iss.Cycle),
				Pid: pid, Tid: TidLoads, Cat: "load",
				Args: map[string]any{"seq": e.Seq, "pc": uint64(iss.PC), "line": uint64(e.Line)},
			})
		case trace.KindLoadDropped:
			instant(e, TidCleanups, "fill-dropped", map[string]any{"seq": e.Seq, "line": uint64(e.Line)})
		case trace.KindSquash:
			instant(e, TidSquashes, "squash", map[string]any{"seq": e.Seq, "pc": uint64(e.PC)})
		case trace.KindMemOrderSquash:
			instant(e, TidSquashes, "mem-order-squash", map[string]any{"seq": e.Seq, "pc": uint64(e.PC)})
		case trace.KindFetchRedirect:
			instant(e, TidSquashes, "fetch-redirect", map[string]any{"pc": uint64(e.PC), "squashed_loads": e.Arg})
		case trace.KindCleanupInval:
			instant(e, TidCleanups, "cleanup-inval", map[string]any{"line": uint64(e.Line)})
		case trace.KindCleanupRestore:
			out = append(out, ChromeEvent{
				Name: "cleanup-restore", Ph: "X", Ts: uint64(e.Cycle), Dur: e.Arg,
				Pid: pid, Tid: TidCleanups, Cat: "cleanup",
				Args: map[string]any{"line": uint64(e.Line)},
			})
		case trace.KindSpecWindow:
			start := uint64(e.Cycle) - e.Arg
			out = append(out, ChromeEvent{
				Name: "exposed-window", Ph: "X", Ts: start, Dur: e.Arg,
				Pid: pid, Tid: TidWindows, Cat: "window",
				Args: map[string]any{"seq": e.Seq, "line": uint64(e.Line)},
			})
		case trace.KindCommit:
			instant(e, TidCommits, "commit", map[string]any{"seq": e.Seq, "pc": uint64(e.PC)})
		case trace.KindHalt:
			instant(e, TidCommits, "halt", map[string]any{"seq": e.Seq})
		default:
			instant(e, TidCommits, e.Kind.String(), map[string]any{"seq": e.Seq, "arg": e.Arg})
		}
	}
	// Loads still in flight at the end of the trace window, in sequence
	// order so the export is byte-stable for a deterministic run.
	inflight := make([]trace.Event, 0, len(openIssue))
	for _, iss := range openIssue {
		inflight = append(inflight, iss)
	}
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].Seq < inflight[j].Seq })
	for _, iss := range inflight {
		instant(iss, TidLoads, "load-inflight", map[string]any{"seq": iss.Seq, "line": uint64(iss.Line)})
	}

	// Counter tracks: gauges from the samples, plus caller-derived series.
	for _, name := range gaugeNames(opts.Samples) {
		for _, s := range opts.Samples {
			out = append(out, ChromeEvent{
				Name: name, Ph: "C", Ts: s.Cycle, Pid: pid,
				Args: map[string]any{"value": s.Gauges[name]},
			})
		}
	}
	for _, cs := range opts.Counters {
		for i, s := range opts.Samples {
			if i >= len(cs.Values) {
				break
			}
			out = append(out, ChromeEvent{
				Name: cs.Name, Ph: "C", Ts: s.Cycle, Pid: pid,
				Args: map[string]any{"value": cs.Values[i]},
			})
		}
	}
	return out
}

// ExportChromeTrace writes the run as trace-event JSON (object form, with
// displayTimeUnit set so one cycle reads as one microsecond).
func ExportChromeTrace(w io.Writer, opts ChromeTraceOpts) error {
	return ExportChromeTraceMulti(w, []ChromeTraceOpts{opts})
}

// ExportChromeTraceMulti merges several runs into one trace file, one
// process per run (distinct pids), so per-policy squash/cleanup/window
// tracks sit side by side in the Perfetto UI. Unset Pids are assigned
// 1, 2, ... in slice order.
func ExportChromeTraceMulti(w io.Writer, runs []ChromeTraceOpts) error {
	var events []ChromeEvent
	for i, opts := range runs {
		if opts.Pid == 0 {
			opts.Pid = i + 1
		}
		events = append(events, BuildChromeEvents(opts)...)
	}
	return WriteChromeEvents(w, events)
}

// WriteChromeEvents wraps pre-built events in the trace-event JSON Object
// Format and writes them out. It is the shared serialization tail for
// every Chrome-trace exporter in the repository (simulator tracks here,
// campaign spans in internal/obs), so all of them stay loadable by the
// same Perfetto/chrome://tracing drag-and-drop.
func WriteChromeEvents(w io.Writer, events []ChromeEvent) error {
	file := chromeTraceFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(file); err != nil {
		return fmt.Errorf("metrics: writing chrome trace: %w", err)
	}
	return nil
}

func gaugeNames(samples []Sample) []string {
	if len(samples) == 0 {
		return nil
	}
	return sortedKeys(samples[0].Gauges)
}
