package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
)

// FuzzDifferentialCleanupSpec lets the fuzzer hunt for program seeds where
// the out-of-order machine under CleanupSpec diverges from the sequential
// interpreter. `go test` runs the seed corpus; `go test -fuzz=Fuzz...`
// explores further.
func FuzzDifferentialCleanupSpec(f *testing.F) {
	for seed := uint64(1); seed <= 8; seed++ {
		f.Add(seed, uint8(12), uint8(64))
	}
	f.Fuzz(func(t *testing.T, seed uint64, segments, windowWords uint8) {
		segs := int(segments%40) + 1
		words := 1 << (windowWords % 8) // 1..128 words
		prog := isa.RandomProgram(seed, isa.GenConfig{
			Segments: segs, MemWindowWords: words, Calls: true, Loops: true,
		})
		ref := isa.NewInterp(prog)
		if ref.Run(3_000_000) >= 3_000_000 {
			t.Skip("generator degenerated into a very long program")
		}
		h := memsys.New(HierarchyConfig(memsys.DefaultConfig(1)))
		ccfg := cpu.DefaultConfig()
		ccfg.MaxCycles = 30_000_000
		m := cpu.New(ccfg, prog, h, New())
		m.Run(0)
		if !m.Halted() {
			t.Fatalf("machine did not halt (seed %d segs %d words %d)", seed, segs, words)
		}
		for r := isa.Reg(1); r < isa.NumRegs; r++ {
			if m.Reg(r) != ref.Reg(r) {
				t.Fatalf("r%d = %#x, interpreter says %#x (seed %d segs %d words %d)",
					r, m.Reg(r), ref.Reg(r), seed, segs, words)
			}
		}
	})
}
