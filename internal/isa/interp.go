package isa

import (
	"fmt"

	"repro/internal/arch"
)

// Interp is a sequential, in-order reference interpreter for the ISA. It
// executes programs with no speculation, no caches, and no timing — just
// architectural semantics. The CPU test suite runs random programs on both
// the out-of-order machine and this interpreter and requires identical
// architectural results: the strongest evidence that speculation, squashes,
// store forwarding, and cleanup never corrupt architectural state.
//
// RdCycle is the one instruction whose value is timing-dependent; the
// interpreter returns a deterministic counter for it, and differential
// tests must not branch on or store rdcycle results (the random program
// generator guarantees that).
type Interp struct {
	prog *Program
	mem  *Memory
	regs [NumRegs]uint64
	pc   arch.Addr
	// rdcycleCounter stands in for the cycle counter.
	rdcycleCounter uint64
	// Executed counts committed instructions.
	Executed uint64
	halted   bool
}

// NewInterp creates an interpreter with memory initialized from the
// program.
func NewInterp(p *Program) *Interp {
	m := NewMemory()
	m.LoadProgram(p)
	return &Interp{prog: p, mem: m, pc: p.Entry}
}

// Memory exposes the interpreter's functional memory.
func (it *Interp) Memory() *Memory { return it.mem }

// Reg returns the architectural value of register r.
func (it *Interp) Reg(r Reg) uint64 { return it.regs[r] }

// Halted reports whether a halt executed.
func (it *Interp) Halted() bool { return it.halted }

// Step executes one instruction. It returns false once halted.
func (it *Interp) Step() bool {
	if it.halted {
		return false
	}
	in := it.prog.Fetch(it.pc)
	next := it.pc + 1
	write := func(rd Reg, v uint64) {
		if rd != 0 {
			it.regs[rd] = v
		}
	}
	switch in.Op {
	case OpNop, OpFence:
		// no architectural effect
	case OpALU:
		write(in.Rd, in.EvalALU(it.regs[in.Rs1], it.regs[in.Rs2]))
	case OpLoad:
		addr := (it.regs[in.Rs1] + uint64(in.Imm)) &^ 7
		write(in.Rd, it.mem.Read64(arch.Addr(addr)))
	case OpStore:
		addr := (it.regs[in.Rs1] + uint64(in.Imm)) &^ 7
		it.mem.Write64(arch.Addr(addr), it.regs[in.Rs2])
	case OpBranch:
		if in.Cond.Eval(it.regs[in.Rs1], it.regs[in.Rs2]) {
			next = in.Target
		}
	case OpJump:
		next = in.Target
	case OpCall:
		write(LinkReg, uint64(it.pc+1))
		next = in.Target
	case OpRet:
		next = arch.Addr(it.regs[in.Rs1])
	case OpCLFlush:
		// no architectural effect (cache-only)
	case OpRdCycle:
		it.rdcycleCounter += 16
		write(in.Rd, it.rdcycleCounter)
	case OpHalt:
		it.halted = true
		it.Executed++
		return false
	default:
		//simlint:allow errdiscipline -- oracle invariant: the reference interpreter must execute every op the assembler emits
		panic(fmt.Sprintf("isa: interpreter cannot execute %v", in.Op))
	}
	it.Executed++
	it.pc = next
	return true
}

// Run executes at most maxInstructions (0 = until halt). It returns the
// number executed.
func (it *Interp) Run(maxInstructions uint64) uint64 {
	for !it.halted && (maxInstructions == 0 || it.Executed < maxInstructions) {
		if !it.Step() {
			break
		}
	}
	return it.Executed
}

// Regs returns a copy of the architectural register file.
func (it *Interp) Regs() [NumRegs]uint64 { return it.regs }
