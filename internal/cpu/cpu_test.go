package cpu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/trace"
)

func newMachine(t *testing.T, prog *isa.Program, pol Policy) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxCycles = 2_000_000
	h := memsys.New(memsys.DefaultConfig(1))
	return New(cfg, prog, h, pol)
}

func TestALUChain(t *testing.T) {
	b := isa.NewBuilder("alu")
	b.Li(1, 5)
	b.Li(2, 7)
	b.Add(3, 1, 2)
	b.AluI(isa.AluMul, 4, 3, 3) // r4 = 12*3 = 36
	b.Alu(isa.AluSub, 5, 4, 1)  // r5 = 31
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if got := m.Reg(5); got != 31 {
		t.Fatalf("r5 = %d, want 31", got)
	}
	if m.Stats.Committed != 6 {
		t.Fatalf("committed %d, want 6", m.Stats.Committed)
	}
}

func TestRegisterZeroIsHardwired(t *testing.T) {
	b := isa.NewBuilder("r0")
	b.Li(0, 99) // write discarded
	b.AddI(1, 0, 3)
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if m.Reg(0) != 0 || m.Reg(1) != 3 {
		t.Fatalf("r0=%d r1=%d", m.Reg(0), m.Reg(1))
	}
}

func TestLoopCommitsExactCount(t *testing.T) {
	b := isa.NewBuilder("loop")
	b.Li(1, 10)
	b.Label("loop")
	b.AddI(1, 1, -1)
	b.Br(isa.CondNE, 1, 0, "loop")
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	// 1 li + 10*(add+br) + halt = 22.
	if m.Stats.Committed != 22 {
		t.Fatalf("committed %d, want 22", m.Stats.Committed)
	}
	if m.Reg(1) != 0 {
		t.Fatalf("r1 = %d", m.Reg(1))
	}
}

func TestStoreLoadThroughMemory(t *testing.T) {
	b := isa.NewBuilder("mem")
	b.Li(1, 0x1000)
	b.Li(2, 42)
	b.Store(1, 0, 2)
	b.Fence()
	b.Load(3, 1, 0)
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if m.Reg(3) != 42 {
		t.Fatalf("r3 = %d, want 42", m.Reg(3))
	}
	if m.Memory().Read64(0x1000) != 42 {
		t.Fatal("store did not reach memory")
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	b := isa.NewBuilder("fwd")
	b.Li(1, 0x2000)
	b.Li(2, 7)
	b.Store(1, 0, 2)
	b.Load(3, 1, 0) // must forward 7 from the SQ
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if m.Reg(3) != 7 {
		t.Fatalf("r3 = %d, want 7", m.Reg(3))
	}
}

func TestLoadWaitsForUnknownStoreAddress(t *testing.T) {
	// The store's address depends on a slow load; the younger load to the
	// same address must wait and then see the stored value.
	b := isa.NewBuilder("disamb")
	b.InitData(0x1000, 0x3000) // pointer
	b.Li(1, 0x1000)
	b.Load(2, 1, 0) // r2 = 0x3000 (slow: cold miss)
	b.Li(3, 55)
	b.Store(2, 0, 3) // mem[0x3000] = 55, address late
	b.Li(4, 0x3000)
	b.Load(5, 4, 0) // must not bypass the store
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if m.Reg(5) != 55 {
		t.Fatalf("r5 = %d, want 55", m.Reg(5))
	}
}

func TestCallRet(t *testing.T) {
	b := isa.NewBuilder("call")
	b.Li(1, 1)
	b.Call("fn")
	b.AddI(2, 2, 100) // after return
	b.Halt()
	b.Label("fn")
	b.AddI(2, 1, 10) // r2 = 11
	b.Ret()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if m.Reg(2) != 111 {
		t.Fatalf("r2 = %d, want 111", m.Reg(2))
	}
}

func TestRdCycleOrdersAroundLoads(t *testing.T) {
	// Timing a cold load vs a hot load must show a big difference: this
	// is the primitive the Spectre PoC's probe phase uses.
	b := isa.NewBuilder("timing")
	b.Li(1, 0x8000)
	b.RdCycle(10)
	b.Load(2, 1, 0) // cold: memory latency
	b.RdCycle(11)
	b.Load(3, 1, 0) // hot: L1 hit
	b.RdCycle(12)
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	cold := m.Reg(11) - m.Reg(10)
	hot := m.Reg(12) - m.Reg(11)
	if cold < 100 {
		t.Fatalf("cold load took %d cycles; want >= memory latency", cold)
	}
	if hot >= cold/2 {
		t.Fatalf("hot load (%d) not clearly faster than cold (%d)", hot, cold)
	}
}

// mispredictProgram builds the canonical squash scenario: a branch whose
// condition depends on a slow load is actually taken but predicted
// not-taken (cold counters), so the fall-through — a wrong-path load — is
// fetched and executed transiently.
//
//	load r2, [0x1000]        ; = 1, cold miss (slow)
//	br NE r2, r0 -> correct  ; actual: taken; initial prediction: not taken
//	load r4, [0x3000]        ; wrong-path load
//	halt
//	correct: load r3, [0x2000] ; correct path
//	halt
func mispredictProgram() *isa.Program {
	b := isa.NewBuilder("mispredict")
	b.InitData(0x1000, 1)
	b.Li(1, 0x1000)
	b.Load(2, 1, 0)
	b.Br(isa.CondNE, 2, 0, "correct")
	b.Li(6, 0x3000)
	b.Load(4, 6, 0)
	b.Halt()
	b.Label("correct")
	b.Li(5, 0x2000)
	b.Load(3, 5, 0)
	b.Halt()
	return b.Build()
}

func TestMispredictSquashesWrongPath(t *testing.T) {
	m := newMachine(t, mispredictProgram(), nil)
	m.Run(0)
	if m.Stats.Squashes != 1 {
		t.Fatalf("squashes = %d, want 1", m.Stats.Squashes)
	}
	if m.Stats.Mispredicts != 1 {
		t.Fatalf("mispredicts = %d", m.Stats.Mispredicts)
	}
	// The wrong-path result must never become architectural.
	if m.Reg(4) != 0 {
		t.Fatalf("wrong-path load committed: r4 = %d", m.Reg(4))
	}
	// Correct path ran.
	if m.Stats.LoadsCommitted != 2 {
		t.Fatalf("loads committed %d, want 2", m.Stats.LoadsCommitted)
	}
	if m.Stats.SquashedLoads == 0 {
		t.Fatal("the wrong-path load must be counted as squashed")
	}
}

func TestNonSecureRetainsWrongPathInstall(t *testing.T) {
	// Under the non-secure baseline, the wrong-path line stays in the
	// cache after the squash — the vulnerability CleanupSpec removes.
	m := newMachine(t, mispredictProgram(), NonSecure{})
	m.Run(0)
	wrongLine := arch.Addr(0x3000).Line()
	if m.Hierarchy().ProbeLevel(0, wrongLine) == memsys.LevelMem {
		t.Fatal("non-secure baseline should retain the wrong-path install")
	}
}

func TestSquashRestoresRAT(t *testing.T) {
	// After the squash, r4's rename must roll back so the correct path
	// sees the committed value.
	b := isa.NewBuilder("rat")
	b.InitData(0x1000, 1)
	b.Li(4, 77) // committed value of r4
	b.Li(1, 0x1000)
	b.Load(2, 1, 0)
	b.Br(isa.CondNE, 2, 0, "correct") // taken; predicted not-taken
	b.Li(4, 999)                      // wrong-path overwrite, must not leak into r5
	b.Nop()
	b.Nop()
	b.Halt()
	b.Label("correct")
	b.AddI(5, 4, 1) // r5 = 78 on the correct path
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if m.Stats.Squashes == 0 {
		t.Fatal("scenario must squash")
	}
	if m.Reg(5) != 78 {
		t.Fatalf("r5 = %d, want 78 (RAT not restored?)", m.Reg(5))
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	b := isa.NewBuilder("learn")
	b.Li(1, 200)
	b.Label("loop")
	b.AddI(1, 1, -1)
	b.Br(isa.CondNE, 1, 0, "loop")
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	// A 200-iteration loop must mispredict only during local-history
	// warmup (one miss per fresh history pattern, ~11 bits) plus exits.
	if m.Stats.Mispredicts > 20 {
		t.Fatalf("%d mispredicts on a simple loop", m.Stats.Mispredicts)
	}
}

func TestFenceBlocksYoungerLoads(t *testing.T) {
	b := isa.NewBuilder("fence")
	b.Li(1, 0x4000)
	b.RdCycle(10)
	b.Fence()
	b.Load(2, 1, 0)
	b.RdCycle(11)
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if m.Reg(11) <= m.Reg(10) {
		t.Fatal("rdcycle ordering broken")
	}
	if !m.Halted() {
		t.Fatal("fence deadlocked the pipeline")
	}
}

func TestCLFlushEvictsLine(t *testing.T) {
	b := isa.NewBuilder("clflush")
	b.Li(1, 0x5000)
	b.Load(2, 1, 0) // install
	b.CLFlush(1, 0)
	b.Halt()
	m := newMachine(t, b.Build(), nil)
	m.Run(0)
	if m.Hierarchy().ProbeLevel(0, arch.Addr(0x5000).Line()) != memsys.LevelMem {
		t.Fatal("clflush did not evict the line")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		m := newMachine(t, mispredictProgram(), nil)
		return m.Run(0)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic runs:\n%+v\n%+v", a, b)
	}
}

func TestTracerCapturesSquashStory(t *testing.T) {
	m := newMachine(t, mispredictProgram(), nil)
	ring := trace.NewRing(256)
	m.AttachTracer(ring)
	m.Run(0)
	if len(ring.Filter(trace.KindSquash)) != 1 {
		t.Fatalf("squash events: %d", len(ring.Filter(trace.KindSquash)))
	}
	if len(ring.Filter(trace.KindFetchRedirect)) != 1 {
		t.Fatal("missing fetch-redirect event")
	}
	if len(ring.Filter(trace.KindLoadIssue)) == 0 || len(ring.Filter(trace.KindLoadComplete)) == 0 {
		t.Fatal("missing load events")
	}
	if len(ring.Filter(trace.KindHalt)) != 1 {
		t.Fatal("missing halt event")
	}
	// Events must be in non-decreasing cycle order.
	evs := ring.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Cycle < evs[i-1].Cycle {
			t.Fatalf("trace out of order at %d: %v then %v", i, evs[i-1], evs[i])
		}
	}
}

func TestTracerDetachedCostsNothingVisible(t *testing.T) {
	// Just exercise the nil-tracer path end to end.
	m := newMachine(t, mispredictProgram(), nil)
	m.AttachTracer(nil)
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
}
