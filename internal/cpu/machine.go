// Package cpu implements the cycle-stepped out-of-order core of the paper's
// Table 4: 192-entry ROB, 32-entry load and store queues, a tournament
// branch predictor with BTB and RAS, 4-wide fetch/issue/commit, and — the
// part that matters for CleanupSpec — full wrong-path execution: fetch
// follows the predicted path, speculative loads really access and modify
// the cache hierarchy, and a mispredicted branch squashes the wrong path
// and hands the squashed loads to the active security policy.
package cpu

import (
	"repro/internal/arch"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Level re-exports memsys.Level for policy implementations.
type Level = memsys.Level

// SEFEInfo re-exports the cache SEFE for policy implementations.
type SEFEInfo = cache.SEFE

// Config configures the core.
type Config struct {
	ROBSize     int
	LQSize      int
	SQSize      int
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	// RedirectPenalty is the front-end refill delay after any squash —
	// the fetch-to-execute depth of the pipeline — paid by secure and
	// non-secure configurations alike. A policy's inflight-wait stall
	// overlaps with it (the paper's Section 2.4: cleanup overhead is
	// partly hidden by the pipeline drain incurred in any case).
	RedirectPenalty arch.Cycle
	Branch          branch.Config
	CoreID          int
	// ThreadID is the hardware thread within the core (SMT); it selects
	// the L1 way partition and the speculative-install identity. Two
	// Machines with the same CoreID, different ThreadIDs, and a shared
	// Hierarchy form an SMT pair (drive them in lockstep with Step).
	ThreadID int
	// MaxCycles aborts a runaway simulation (0 = no limit).
	MaxCycles arch.Cycle
	// WatchdogWindow is the forward-progress watchdog: when no
	// instruction commits for this many cycles, Run stops and records a
	// structured LivelockError (see Livelock / LivelockErr) naming the
	// stalled structure with queue-occupancy snapshots. 0 disables the
	// watchdog.
	WatchdogWindow arch.Cycle
}

// DefaultConfig returns the paper's Table 4 core.
func DefaultConfig() Config {
	return Config{
		ROBSize:         192,
		LQSize:          32,
		SQSize:          32,
		FetchWidth:      4,
		IssueWidth:      4,
		CommitWidth:     4,
		RedirectPenalty: 16,
		Branch:          branch.DefaultConfig(),
		WatchdogWindow:  200_000,
	}
}

// robState is an instruction's execution state.
type robState uint8

const (
	stDispatched robState = iota
	stIssued
	stDone
)

type consumer struct {
	slot int32
	seq  uint64
	src  uint8 // 1 or 2
}

// ROBEntry is one reorder-buffer slot.
type ROBEntry struct {
	valid bool
	seq   uint64
	pc    arch.Addr
	inst  isa.Inst
	state robState

	src1Ready, src2Ready bool
	src1Val, src2Val     uint64
	pendSrcs             int8
	result               uint64
	hasRd                bool
	oldRat               int32
	oldRatSeq            uint64 // seq of the previous producer (staleness check)
	consumers            []consumer

	// Control-flow bookkeeping.
	isCtrl     bool
	predTaken  bool
	predTarget arch.Addr
	predState  branch.PredState
	snapshot   branch.Snapshot
	hasPred    bool

	// Memory bookkeeping.
	lqIdx int32
	sqIdx int32

	doneAt       arch.Cycle
	wakeDeferred bool // value ready but dependents not yet woken
	mispredicted bool // resolved against its prediction
}

// LQEntry is one load-queue slot. Policies read and annotate it.
type LQEntry struct {
	valid   bool
	slot    int32
	Seq     uint64
	PC      arch.Addr
	Addr    arch.Addr
	Line    arch.LineAddr
	HasAddr bool

	Issued    bool
	Forwarded bool
	Completed bool
	Level     Level
	SEFE      SEFEInfo
	FillOrder uint64
	Value     uint64

	IssuedAt arch.Cycle
	DoneAt   arch.Cycle

	// IssuedMode is the LoadMode the load was actually issued with.
	IssuedMode LoadMode

	// Policy scratch state.
	Visible        bool // no older unresolved control flow
	UpdateLaunched bool
	UpdateDoneAt   arch.Cycle
	DelayedSafe    bool // GetS-Safe failed; waiting to be unsquashable
	ValuePredicted bool // completed with a predicted value, not yet validated

	txn *memsys.Txn
}

type sqEntry struct {
	valid      bool
	slot       int32
	seq        uint64
	addr       arch.Addr
	value      uint64
	addrReady  bool
	valueReady bool
}

// Stats counts core events.
type Stats struct {
	//simlint:allow metricscomplete -- Cycles is only materialized when Run returns; the live value is published as the cpu.cycles CounterFunc
	Cycles    uint64
	Committed uint64
	Fetched   uint64

	LoadsCommitted       uint64
	StoresCommitted      uint64
	BranchesResolved     uint64
	Mispredicts          uint64
	BranchesCommitted    uint64
	MispredictsCommitted uint64

	Squashes         uint64
	MemOrderSquashes uint64
	ValueMispredicts uint64
	SquashedInsts    uint64
	SquashedLoads    uint64
	SquashedLoadNI   uint64 // not issued (or store-forwarded)
	SquashedLoadL1H  uint64
	SquashedLoadL2H  uint64
	SquashedLoadL2M  uint64
	SquashedInflight uint64 // issued, data not yet back: fill dropped
	SquashedExecuted uint64 // completed with fills: needs cleanup ops

	InflightWaitCycles arch.Cycle
	CleanupOpCycles    arch.Cycle

	LoadDelayStalls uint64 // loads held by LoadDelayed / GetS-Safe
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// fetchSlot is one pre-decoded instruction waiting for dispatch.
type fetchSlot struct {
	pc        arch.Addr
	inst      isa.Inst
	predTaken bool
	predNext  arch.Addr
	predState branch.PredState
	snapshot  branch.Snapshot
	hasPred   bool
}

// Machine is one simulated core bound to a program and a hierarchy.
type Machine struct {
	cfg  Config
	prog *isa.Program
	mem  *isa.Memory
	hier *memsys.Hierarchy
	bp   *branch.Predictor
	pol  Policy

	now    arch.Cycle
	halted bool

	rob      []ROBEntry
	robHead  int32
	robTail  int32
	robCount int32

	lq      []LQEntry
	lqHead  int32
	lqTail  int32
	lqCount int32

	sq      []sqEntry
	sqHead  int32
	sqTail  int32
	sqCount int32

	rat  [isa.NumRegs]int32
	regs [isa.NumRegs]uint64

	fetchPC         arch.Addr
	fetchBuf        []fetchSlot
	fetchHead       int // dispatch-consumed prefix of fetchBuf; compacted in fetch
	fetchStallUntil arch.Cycle
	fetchHalted     bool // a halt was fetched; only a squash resumes fetch

	seqGen uint64

	readyQ    seqHeap   // slots ready to begin execution
	doneQ     eventHeap // scheduled completions
	wakeQ     eventHeap // deferred dependent wakeups
	memRetry  []int32   // LQ indices blocked on issue conditions
	fenceSeqs []uint64  // uncommitted fences, ascending
	ctrlSeqs  []uint64  // unresolved squashable control insts, ascending

	lastCommitCycle arch.Cycle
	cycleBase       arch.Cycle
	committedBase   uint64

	stallFrom arch.Cycle // injected commit stall (0 = none); see InjectCommitStall
	livelock  *LivelockError

	tracer  *trace.Ring
	sampler *metrics.Sampler
	hists   machineHists

	Stats Stats
}

// machineHists holds the core's registered histograms; all nil when the
// machine is uninstrumented, so each observation site costs one nil check.
type machineHists struct {
	// loadToSquash is the issue-to-squash distance in cycles of squashed
	// loads that actually reached the memory system.
	loadToSquash *metrics.Histogram
	// exposedWindow is how long a speculative cache install stayed exposed
	// before its window closed (commit, or the squash that cleaned it).
	exposedWindow *metrics.Histogram
}

// New creates a machine. The memory image is initialized from the program.
func New(cfg Config, prog *isa.Program, hier *memsys.Hierarchy, pol Policy) *Machine {
	if cfg.ROBSize <= 0 || cfg.LQSize <= 0 || cfg.SQSize <= 0 {
		//simlint:allow errdiscipline -- construction-time queue-size validation; a bad config is a programmer error caught before any simulation runs
		panic("cpu: bad queue sizes")
	}
	if pol == nil {
		pol = NonSecure{}
	}
	m := &Machine{
		cfg:     cfg,
		prog:    prog,
		mem:     isa.NewMemory(),
		hier:    hier,
		bp:      branch.New(cfg.Branch),
		pol:     pol,
		rob:     make([]ROBEntry, cfg.ROBSize),
		lq:      make([]LQEntry, cfg.LQSize),
		sq:      make([]sqEntry, cfg.SQSize),
		fetchPC: prog.Entry,
	}
	m.mem.LoadProgram(prog)
	for i := range m.rat {
		m.rat[i] = -1
	}
	return m
}

// Hierarchy returns the machine's memory system (for policies).
func (m *Machine) Hierarchy() *memsys.Hierarchy { return m.hier }

// SnapshotHierarchy drains in-flight memory transactions and captures the
// hierarchy's observable tag-array state — the attacker-observer probe the
// specfuzz differential oracle compares across secret values. Draining
// first makes the capture deterministic: fills of squashed loads either
// land (non-secure) or have been dropped (CleanupSpec) before the tags are
// read, never "still in flight".
func (m *Machine) SnapshotHierarchy() memsys.Snapshot {
	m.DrainMemory()
	return m.hier.Snapshot()
}

// Memory returns the functional data memory.
func (m *Machine) Memory() *isa.Memory { return m.mem }

// Now returns the current cycle.
func (m *Machine) Now() arch.Cycle { return m.now }

// CoreID returns the core's id in the hierarchy.
func (m *Machine) CoreID() int { return m.cfg.CoreID }

// ThreadID returns the hardware-thread id within the core.
func (m *Machine) ThreadID() int { return m.cfg.ThreadID }

// OwnerID returns the SMT installer identity (core, thread folded).
func (m *Machine) OwnerID() int { return memsys.SMTID(m.cfg.CoreID, m.cfg.ThreadID) }

// waiterID tags a load sequence number with the thread so MSHR waiter ids
// from SMT siblings sharing the hierarchy never collide.
func (m *Machine) waiterID(seq uint64) uint64 { return seq<<6 | uint64(m.cfg.ThreadID) }

// Step advances the machine by exactly one cycle. SMT harnesses drive two
// machines sharing a hierarchy in lockstep with alternating Step calls
// (the shared hierarchy's Tick is idempotent per cycle).
func (m *Machine) Step() {
	if !m.halted {
		m.step()
	}
}

// Predictor exposes the branch predictor (tests and stats).
func (m *Machine) Predictor() *branch.Predictor { return m.bp }

// Halted reports whether the program committed a halt.
func (m *Machine) Halted() bool { return m.halted }

// AttachTracer starts recording structured events into r (nil detaches).
// Tracing costs one nil-check per event site when detached.
func (m *Machine) AttachTracer(r *trace.Ring) { m.tracer = r }

// AttachMetrics registers the core's counters and histograms into reg.
// Every Stats field is bound by pointer — the hot path keeps its plain
// `Stats.Field++` — and the cycle count is published as a function so the
// registry always sees the current measurement-window-relative cycle
// (Stats.Cycles itself is only materialized when Run returns).
func (m *Machine) AttachMetrics(reg *metrics.Registry) {
	s := &m.Stats
	reg.CounterFunc("cpu.cycles", func() uint64 { return m.windowCycles() })
	reg.BindCounter("cpu.committed", &s.Committed)
	reg.BindCounter("cpu.fetched", &s.Fetched)
	reg.BindCounter("cpu.loads_committed", &s.LoadsCommitted)
	reg.BindCounter("cpu.stores_committed", &s.StoresCommitted)
	reg.BindCounter("cpu.branches_resolved", &s.BranchesResolved)
	reg.BindCounter("cpu.branches_committed", &s.BranchesCommitted)
	reg.BindCounter("cpu.mispredicts", &s.Mispredicts)
	reg.BindCounter("cpu.mispredicts_committed", &s.MispredictsCommitted)
	reg.BindCounter("cpu.squashes", &s.Squashes)
	reg.BindCounter("cpu.mem_order_squashes", &s.MemOrderSquashes)
	reg.BindCounter("cpu.value_mispredicts", &s.ValueMispredicts)
	reg.BindCounter("cpu.squashed_insts", &s.SquashedInsts)
	reg.BindCounter("cpu.squashed_loads", &s.SquashedLoads)
	reg.BindCounter("cpu.squashed_load_ni", &s.SquashedLoadNI)
	reg.BindCounter("cpu.squashed_load_l1h", &s.SquashedLoadL1H)
	reg.BindCounter("cpu.squashed_load_l2h", &s.SquashedLoadL2H)
	reg.BindCounter("cpu.squashed_load_l2m", &s.SquashedLoadL2M)
	reg.BindCounter("cpu.squashed_inflight", &s.SquashedInflight)
	reg.BindCounter("cpu.squashed_executed", &s.SquashedExecuted)
	reg.CounterFunc("cpu.inflight_wait_cycles", func() uint64 { return uint64(s.InflightWaitCycles) })
	reg.CounterFunc("cpu.cleanup_op_cycles", func() uint64 { return uint64(s.CleanupOpCycles) })
	reg.BindCounter("cpu.load_delay_stalls", &s.LoadDelayStalls)
	reg.GaugeFunc("cpu.rob_occupancy", func() float64 { return float64(m.robCount) })
	reg.GaugeFunc("cpu.lq_occupancy", func() float64 { return float64(m.lqCount) })
	m.hists.loadToSquash = reg.Histogram("cpu.load_to_squash_cycles")
	m.hists.exposedWindow = reg.Histogram("cpu.exposed_window_cycles")
}

// AttachSampler starts interval sampling: the sampler's Tick runs once per
// simulated cycle with the measurement-window-relative cycle number. The
// caller flushes it after Run (nil detaches).
func (m *Machine) AttachSampler(s *metrics.Sampler) { m.sampler = s }

// emit records a trace event if a tracer is attached.
func (m *Machine) emit(k trace.Kind, seq uint64, pc arch.Addr, line arch.LineAddr, arg uint64) {
	if m.tracer != nil {
		m.tracer.Emit(trace.Event{Cycle: m.now, Kind: k, Seq: seq, PC: pc, Line: line, Arg: arg})
	}
}

// ResetStats zeroes the core's statistics so that a measurement window can
// exclude warmup (the simulated-time and committed-instruction baselines
// shift; architectural and cache state are untouched). The caller usually
// also resets the hierarchy's stats.
func (m *Machine) ResetStats() {
	m.cycleBase = m.now
	m.committedBase += m.Stats.Committed
	m.Stats = Stats{}
}

// windowCycles returns the simulated cycles elapsed in the current
// measurement window. cycleBase is only ever captured from m.now (which
// is monotone), so the subtraction cannot wrap; the guard makes that
// invariant local and provable instead of implicit.
func (m *Machine) windowCycles() uint64 {
	if m.now < m.cycleBase {
		return 0
	}
	return uint64(m.now - m.cycleBase)
}

// Run simulates until the program halts, maxInstructions commit (within the
// current measurement window), or the cycle limit is reached. It returns
// the stats snapshot.
func (m *Machine) Run(maxInstructions uint64) Stats {
	limit := m.cfg.MaxCycles
	watchdog := m.cfg.WatchdogWindow
	m.livelock = nil
	for !m.halted && (maxInstructions == 0 || m.Stats.Committed < maxInstructions) {
		if limit != 0 && m.now >= limit {
			break
		}
		m.step()
		// Wrap-safe watchdog: comparing against the sum instead of
		// subtracting means a (model-bug) lastCommitCycle ahead of now
		// reads as "no stall" rather than an instant ~1.8e19-cycle stall.
		if watchdog != 0 && m.now > m.lastCommitCycle+watchdog {
			// Forward-progress watchdog: a commit stall this long is a
			// model bug or an injected livelock. Diagnose and stop
			// instead of burning to MaxCycles.
			m.livelock = m.diagnoseLivelock(watchdog)
			break
		}
	}
	m.Stats.Cycles = m.windowCycles()
	return m.Stats
}

// DrainMemory advances simulated time until no memory transactions remain
// in flight. Tests and attack harnesses call it after Run so that fills of
// squashed in-flight loads either land (non-secure) or are dropped
// (CleanupSpec) before cache state is inspected.
func (m *Machine) DrainMemory() {
	for m.hier.PendingLen() > 0 {
		m.now++
		m.hier.Tick(m.now)
	}
}

// step advances one cycle.
func (m *Machine) step() {
	m.now++
	m.hier.Tick(m.now)
	m.processWakes()
	m.processCompletions()
	m.commit()
	m.issue()
	m.retryMem()
	m.dispatch()
	m.fetch()
	if m.sampler != nil {
		// Sample at end of cycle so the snapshot reflects this cycle's
		// commits; the cycle number is window-relative, matching the
		// Stats.Cycles the run ultimately reports.
		m.sampler.Tick(m.windowCycles())
	}
}

// --- sequence helpers ---

func (m *Machine) nextSeq() uint64 {
	m.seqGen++
	return m.seqGen
}

// hasOlderUnresolvedCtrl reports whether any squashable control-flow
// instruction older than seq is still unresolved.
func (m *Machine) hasOlderUnresolvedCtrl(seq uint64) bool {
	return len(m.ctrlSeqs) > 0 && m.ctrlSeqs[0] < seq
}

func removeSeq(seqs []uint64, seq uint64) []uint64 {
	for i, s := range seqs {
		if s == seq {
			return append(seqs[:i], seqs[i+1:]...)
		}
	}
	return seqs
}

// truncSeqsAbove removes all seqs greater than bound.
func truncSeqsAbove(seqs []uint64, bound uint64) []uint64 {
	out := seqs[:0]
	for _, s := range seqs {
		if s <= bound {
			//simlint:allow hotalloc -- in-place filter into seqs[:0]; the result is never longer than the input, so this append cannot grow
			out = append(out, s)
		}
	}
	return out
}

// --- fetch ---

// fetch fills the fetch buffer along the predicted path.
func (m *Machine) fetch() {
	if m.halted || m.fetchHalted || m.now < m.fetchStallUntil {
		return
	}
	if m.fetchHead > 0 {
		// Compact the dispatch-consumed prefix instead of re-slicing it
		// away: advancing the slice start (fetchBuf = fetchBuf[1:]) leaks
		// capacity in front of the window, so the append below would
		// reallocate the buffer at a steady rate forever.
		n := copy(m.fetchBuf, m.fetchBuf[m.fetchHead:])
		m.fetchBuf = m.fetchBuf[:n]
		m.fetchHead = 0
	}
	for len(m.fetchBuf) < m.cfg.FetchWidth*2 {
		// Instruction cache: a miss stalls the front end.
		if ready := m.hier.IFetch(m.cfg.CoreID, m.fetchPC, m.now); ready > m.now {
			m.fetchStallUntil = ready
			return
		}
		inst := m.prog.Fetch(m.fetchPC)
		fs := fetchSlot{pc: m.fetchPC, inst: inst}
		switch inst.Op {
		case isa.OpBranch:
			fs.snapshot = m.bp.Checkpoint()
			fs.predState = m.bp.Predict(m.fetchPC)
			fs.hasPred = true
			fs.predTaken = fs.predState.Taken
			if fs.predTaken {
				fs.predNext = inst.Target
			} else {
				fs.predNext = m.fetchPC + 1
			}
		case isa.OpJump:
			fs.predNext = inst.Target
		case isa.OpCall:
			fs.snapshot = m.bp.Checkpoint()
			m.bp.Push(m.fetchPC + 1)
			fs.predNext = inst.Target
		case isa.OpRet:
			fs.snapshot = m.bp.Checkpoint()
			fs.predNext = m.bp.Pop()
		default:
			fs.predNext = m.fetchPC + 1
		}
		//simlint:allow hotalloc -- fetch buffer capacity tops out at 2x fetch width and is reused across cycles via head compaction in fetch()
		m.fetchBuf = append(m.fetchBuf, fs)
		m.fetchPC = fs.predNext
		m.Stats.Fetched++
		if inst.Op == isa.OpHalt {
			// A halt serializes the front end (like an exit syscall):
			// nothing is fetched past it. If it was fetched on the
			// wrong path, the squash redirect resumes fetching.
			m.fetchHalted = true
			break
		}
	}
}

// --- dispatch ---

// dispatch renames and inserts fetched instructions into the ROB/LQ/SQ.
func (m *Machine) dispatch() {
	for n := 0; n < m.cfg.FetchWidth && m.fetchHead < len(m.fetchBuf); n++ {
		if m.robCount >= int32(m.cfg.ROBSize) {
			return
		}
		fs := m.fetchBuf[m.fetchHead]
		op := fs.inst.Op
		if op == isa.OpLoad && m.lqCount >= int32(m.cfg.LQSize) {
			return
		}
		if op == isa.OpStore && m.sqCount >= int32(m.cfg.SQSize) {
			return
		}
		m.fetchHead++

		slot := m.robTail
		m.robTail = (m.robTail + 1) % int32(m.cfg.ROBSize)
		m.robCount++
		seq := m.nextSeq()
		e := &m.rob[slot]
		*e = ROBEntry{
			valid: true, seq: seq, pc: fs.pc, inst: fs.inst,
			state: stDispatched, oldRat: -1, lqIdx: -1, sqIdx: -1,
			predTaken: fs.predTaken, predTarget: fs.predNext,
			predState: fs.predState, snapshot: fs.snapshot, hasPred: fs.hasPred,
			src1Ready: true, src2Ready: true,
			// Recycle the slot's consumer list: a fresh nil here would
			// throw away its capacity and make every bindSource append
			// allocate anew for the lifetime of the run.
			consumers: e.consumers[:0],
		}

		// Source operands.
		needs1, needs2 := srcNeeds(fs.inst)
		if needs1 {
			m.bindSource(slot, 1, fs.inst.Rs1)
		}
		if needs2 {
			m.bindSource(slot, 2, fs.inst.Rs2)
		}

		// Destination rename.
		rd := destReg(fs.inst)
		if rd != 0 {
			e.hasRd = true
			e.oldRat = m.rat[rd]
			if e.oldRat >= 0 {
				e.oldRatSeq = m.rob[e.oldRat].seq
			}
			m.rat[rd] = slot
		}

		switch op {
		case isa.OpLoad:
			idx := m.lqTail
			m.lqTail = (m.lqTail + 1) % int32(m.cfg.LQSize)
			m.lqCount++
			m.lq[idx] = LQEntry{valid: true, slot: slot, Seq: seq, PC: fs.pc}
			e.lqIdx = idx
		case isa.OpStore:
			idx := m.sqTail
			m.sqTail = (m.sqTail + 1) % int32(m.cfg.SQSize)
			m.sqCount++
			m.sq[idx] = sqEntry{valid: true, slot: slot, seq: seq}
			e.sqIdx = idx
		case isa.OpFence:
			//simlint:allow hotalloc -- bounded by in-flight fences (at most ROB size); capacity is recycled by the in-place removeSeq/truncSeqsAbove filters
			m.fenceSeqs = append(m.fenceSeqs, seq)
		case isa.OpBranch, isa.OpRet:
			e.isCtrl = true
			//simlint:allow hotalloc -- bounded by in-flight branches (at most ROB size); capacity is recycled by the in-place removeSeq/truncSeqsAbove filters
			m.ctrlSeqs = append(m.ctrlSeqs, seq)
		default:
			// Other ops occupy only their ROB slot: no LQ/SQ/fence
			// resources to reserve at rename.
		}

		if e.pendSrcs == 0 {
			m.pushReady(slot, seq)
		}
	}
}

// bindSource resolves one source register at rename time.
func (m *Machine) bindSource(slot int32, which uint8, r isa.Reg) {
	e := &m.rob[slot]
	if r == 0 {
		m.setSrc(e, which, 0)
		return
	}
	p := m.rat[r]
	if p < 0 {
		m.setSrc(e, which, m.regs[r])
		return
	}
	pe := &m.rob[p]
	if pe.state == stDone && !pe.wakeDeferred {
		m.setSrc(e, which, pe.result)
		return
	}
	// Wait for the producer.
	if which == 1 {
		e.src1Ready = false
	} else {
		e.src2Ready = false
	}
	e.pendSrcs++
	//simlint:allow hotalloc -- bounded by each producer's dependents; the backing array is recycled via consumers[:0] when the ROB entry is reused
	pe.consumers = append(pe.consumers, consumer{slot: slot, seq: e.seq, src: which})
}

func (m *Machine) setSrc(e *ROBEntry, which uint8, v uint64) {
	if which == 1 {
		e.src1Val = v
		e.src1Ready = true
	} else {
		e.src2Val = v
		e.src2Ready = true
	}
}

// srcNeeds returns which register sources an instruction reads.
func srcNeeds(in isa.Inst) (rs1, rs2 bool) {
	switch in.Op {
	case isa.OpALU:
		return true, !in.UseImm
	case isa.OpLoad, isa.OpCLFlush:
		return true, false
	case isa.OpStore, isa.OpBranch:
		return true, true
	case isa.OpRet:
		return true, false // link register value
	default:
		// OpNop, OpJump, OpCall, OpFence, OpRdCycle, OpHalt read no
		// register sources.
		return false, false
	}
}

// destReg returns the destination register (0 = none; writes to r0 are
// discarded, making r0 a hard-wired zero).
func destReg(in isa.Inst) isa.Reg {
	switch in.Op {
	case isa.OpALU, isa.OpLoad, isa.OpRdCycle:
		return in.Rd
	case isa.OpCall:
		return isa.Reg(31) // link register
	default:
		// Every other op writes no destination register.
		return 0
	}
}
