// Package campaign is the cachekey analyzer's golden Key implementation.
package campaign

import (
	"encoding/json"

	"example.com/lint/sim"
)

// Key canonicalizes cfg and hashes it — but forgets to zero Config.Metrics
// and cannot see Config.hidden at all; the analyzer reports both at their
// field declarations in package sim.
func Key(wl string, cfg sim.Config) string {
	rc := cfg
	rc.Trace = nil
	blob, err := json.Marshal(struct {
		Workload string
		Config   sim.Config
	}{wl, rc})
	if err != nil {
		return ""
	}
	return string(blob)
}
