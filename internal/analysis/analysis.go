// Package analysis is simlint's engine: a stdlib-only static-analysis
// driver (go/parser + go/ast + go/types with a recursive source importer —
// no x/tools dependency) plus the simulator-specific analyzers that keep
// the repository's headline guarantees machine-checked:
//
//   - determinism: no map-order-dependent iteration in simulation or
//     export paths, and no stray randomness or wall-clock reads outside
//     the blessed packages — the invariant behind bit-identical parallel
//     vs serial campaign runs.
//   - metricscomplete: every exported numeric Stats field reaches the
//     metrics registry in its package's AttachMetrics, so new counters
//     cannot silently drop out of simscope/Perfetto exports.
//   - cachekey: every sim.Config field either participates in the
//     campaign cache key or is explicitly excluded (json:"-") AND zeroed
//     in campaign.Key — the bug class that silently forks or aliases
//     content-addressed cache entries.
//   - cycletyping: latency/cycle-named fields and parameters are uint64,
//     preventing silent truncation in latency arithmetic.
//   - errdiscipline: no panic in internal/ simulation packages outside
//     must* helpers — failures must flow to the campaign engine as errors.
//
// Findings are suppressed only by an explicit source directive with a
// justification:
//
//	//simlint:ordered -- <why iteration order is irrelevant here>
//	//simlint:allow <analyzer>[,<analyzer>] -- <why this is safe>
//
// placed on the offending line or the line directly above it. A directive
// without a justification is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer is one named check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full suite in presentation order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism,
		AnalyzerMetricsComplete,
		AnalyzerCacheKey,
		AnalyzerCycleTyping,
		AnalyzerErrDiscipline,
	}
}

// AnalyzerByName resolves a name to an analyzer in the suite.
func AnalyzerByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// Finding is one reported violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Pass is one (analyzer, package) execution: the analyzer inspects
// pass.Pkg and reports through pass.Reportf, which applies directive
// suppression before a finding reaches the driver.
type Pass struct {
	Mod      *Module
	Pkg      *Package
	analyzer *Analyzer
	runner   *Runner
}

// Reportf reports a finding at pos unless a matching //simlint directive
// suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	if p.runner.suppressed(p.analyzer.Name, position) {
		return
	}
	p.runner.add(Finding{Analyzer: p.analyzer.Name, Pos: position, Message: fmt.Sprintf(format, args...)})
}

// directive is one parsed //simlint comment.
type directive struct {
	verb      string   // "ordered" or "allow"
	analyzers []string // for allow
	reason    string   // text after " -- "
	pos       token.Position
}

// suppresses reports whether the directive silences analyzer.
func (d directive) suppresses(analyzer string) bool {
	switch d.verb {
	case "ordered":
		return analyzer == "determinism"
	case "allow":
		for _, a := range d.analyzers {
			if a == analyzer {
				return true
			}
		}
	}
	return false
}

// Runner executes analyzers over a module and collects findings.
type Runner struct {
	Mod *Module

	// directives maps file name -> line (where the comment ends) ->
	// parsed directive.
	directives map[string]map[int]directive
	findings   []Finding
}

// NewRunner prepares a runner: it scans every loaded file for //simlint
// directives, reporting malformed ones immediately under the "directive"
// pseudo-analyzer (those findings are not suppressible).
func NewRunner(mod *Module) *Runner {
	r := &Runner{Mod: mod, directives: make(map[string]map[int]directive)}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			r.scanDirectives(f)
		}
	}
	return r
}

func (r *Runner) add(f Finding) { r.findings = append(r.findings, f) }

func (r *Runner) suppressed(analyzer string, pos token.Position) bool {
	lines := r.directives[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.suppresses(analyzer) {
			return true
		}
	}
	return false
}

// scanDirectives parses the //simlint comments of one file.
func (r *Runner) scanDirectives(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//simlint:")
			if !ok {
				continue
			}
			pos := r.Mod.Fset.Position(c.Pos())
			end := r.Mod.Fset.Position(c.End())
			d := directive{pos: pos}
			body, reason, hasReason := strings.Cut(text, "--")
			d.reason = strings.TrimSpace(reason)
			fields := strings.Fields(strings.TrimSpace(body))
			if len(fields) == 0 {
				r.add(Finding{Analyzer: "directive", Pos: pos, Message: "empty //simlint directive"})
				continue
			}
			d.verb = fields[0]
			if d.verb != "ordered" && d.verb != "allow" {
				r.add(Finding{Analyzer: "directive", Pos: pos,
					Message: fmt.Sprintf("unknown //simlint directive %q", d.verb)})
				continue
			}
			// A directive without a justification is rejected before its
			// arguments are even considered: it must never suppress.
			if !hasReason || d.reason == "" {
				r.add(Finding{Analyzer: "directive", Pos: pos,
					Message: fmt.Sprintf("//simlint:%s without a justification (append `-- <why this is safe>`)", d.verb)})
				continue
			}
			switch d.verb {
			case "ordered":
				if len(fields) != 1 {
					r.add(Finding{Analyzer: "directive", Pos: pos,
						Message: "//simlint:ordered takes no arguments (write //simlint:ordered -- <justification>)"})
					continue
				}
			case "allow":
				if len(fields) < 2 {
					r.add(Finding{Analyzer: "directive", Pos: pos,
						Message: "//simlint:allow needs analyzer names (write //simlint:allow <analyzer> -- <justification>)"})
					continue
				}
				bad := false
				for _, arg := range fields[1:] {
					for _, name := range strings.Split(arg, ",") {
						if name == "" {
							continue
						}
						if _, ok := AnalyzerByName(name); !ok {
							r.add(Finding{Analyzer: "directive", Pos: pos,
								Message: fmt.Sprintf("//simlint:allow names unknown analyzer %q", name)})
							bad = true
						}
						d.analyzers = append(d.analyzers, name)
					}
				}
				if bad {
					continue
				}
			}
			if r.directives[pos.Filename] == nil {
				r.directives[pos.Filename] = make(map[int]directive)
			}
			r.directives[pos.Filename][end.Line] = d
		}
	}
}

// Run executes the analyzers over the packages selected by match (nil
// selects all) and returns the accumulated findings sorted by position.
func (r *Runner) Run(analyzers []*Analyzer, match func(*Package) bool) []Finding {
	for _, pkg := range r.Mod.Pkgs {
		if match != nil && !match(pkg) {
			continue
		}
		for _, a := range analyzers {
			a.Run(&Pass{Mod: r.Mod, Pkg: pkg, analyzer: a, runner: r})
		}
	}
	out := r.findings
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
