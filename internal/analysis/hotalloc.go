package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AnalyzerHotAlloc is the static half of the hot-loop performance
// program: it proves, at lint time, which allocation sites are reachable
// from the simulator's per-cycle entry points, so every rewrite of the
// cycle loop is checked on every CI run — not only on the configurations
// a benchmark happens to pin.
//
// Roots are the per-cycle drivers: the committed list in hotroots.go
// (matched by package-relative function key, entries absent from the
// analyzed module are ignored so the golden mini-modules work) plus any
// function annotated
//
//	//simlint:hot -- <why this runs every cycle>
//
// on the line above its declaration. From the roots the analyzer walks
// the module call graph — call, spawn, and closure edges, interface
// calls fanned out to every module implementer — and classifies each
// reachable function's allocation sites:
//
//   - make / new:        explicit heap construction
//   - lit:               slice, map, and &-escaping composite literals
//   - append:            any append (statically, every append may grow)
//   - box:               interface boxing — a concrete non-pointer value
//     converted to an interface type, at a conversion or a call boundary
//   - conv:              string ↔ []byte/[]rune conversions and string
//     concatenation, which copy
//   - fmt:               calls into fmt or errors (allocating formatters)
//   - closure:           a function literal built on the hot path (the
//     closure object itself is an allocation)
//   - spawn:             a go statement (goroutine + argument frame)
//
// Every site reachable from a hot root is a finding unless suppressed by
// a justified //simlint:allow hotalloc directive. Independent of the
// findings, Runner.HotReport aggregates ALL sites — suppressed ones
// included — into a deterministic per-function budget (simlint
// -hotreport); CI compares it against the committed HOTPATH_BUDGET.json
// and fails on any growth, so the budget can only shrink as the perf
// program lands.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation sites (make/new/literals/append/boxing/closures/fmt) reachable from the declared per-cycle hot roots",
	Run:  runHotAlloc,
}

// hotSite is one classified allocation site inside a hot-reachable
// function.
type hotSite struct {
	pos  token.Pos
	kind string // make, new, lit, append, box, conv, fmt, closure, spawn
	desc string
}

// hotFacts is the module-wide hot-path model: the root set, the functions
// reachable from it, and each one's allocation sites.
type hotFacts struct {
	g     *callGraph
	roots []*cgNode
	// via names, for every reachable node, the root whose BFS discovered
	// it first (deterministic: roots and edges are position-ordered).
	via map[*cgNode]string
	// sites holds the classified allocation sites of every reachable node.
	sites map[*cgNode][]hotSite
	// owner attributes a literal node's budget entry to its enclosing
	// declared function.
	owner map[*cgNode]*cgNode
}

// hotRootKey renders the stable identity a root-list entry matches:
// "<pkg-rel>.<Recv.Name>" ("internal/cpu.Machine.Step").
func hotRootKey(n *cgNode) string {
	rel := n.pkg.Rel()
	if rel == "" {
		return n.name()
	}
	return rel + "." + n.name()
}

// hotModel builds the hot-path facts once per Runner.
func (r *Runner) hotModel(mod *Module) *hotFacts {
	r.hotOnce.Do(func() {
		g := r.callGraph(mod)
		hf := &hotFacts{
			g:     g,
			via:   make(map[*cgNode]string),
			sites: make(map[*cgNode][]hotSite),
			owner: make(map[*cgNode]*cgNode),
		}

		// Literal ownership, for budget attribution.
		for _, n := range g.nodes {
			if n.decl == nil {
				continue
			}
			ast.Inspect(n.decl.Body, func(m ast.Node) bool {
				if fl, ok := m.(*ast.FuncLit); ok {
					if ln := g.byLit[fl]; ln != nil {
						hf.owner[ln] = n
					}
				}
				return true
			})
		}

		// Root set: the committed list plus //simlint:hot directives on
		// the line above a function declaration.
		listed := make(map[string]bool, len(hotPathRoots))
		for _, key := range hotPathRoots {
			listed[key] = true
		}
		for _, n := range g.nodes {
			if n.decl == nil {
				continue
			}
			if listed[hotRootKey(n)] || r.hotDirective(mod, n.decl) {
				hf.roots = append(hf.roots, n)
			}
		}
		sort.Slice(hf.roots, func(i, j int) bool { return hf.roots[i].index < hf.roots[j].index })

		// BFS from the roots, recording which root reaches each node
		// first. Node and edge order are deterministic, so the `via`
		// attribution — and every message derived from it — is too.
		queue := make([]*cgNode, 0, len(hf.roots))
		for _, root := range hf.roots {
			if _, seen := hf.via[root]; !seen {
				hf.via[root] = hotRootKey(root)
				queue = append(queue, root)
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range n.out {
				if _, seen := hf.via[e.callee]; !seen {
					hf.via[e.callee] = hf.via[n]
					queue = append(queue, e.callee)
				}
			}
		}

		//simlint:ordered -- fills one map keyed by the ranged keys; no cross-iteration state, so the result is order-independent
		for n := range hf.via {
			if sites := allocSitesIn(n, g); len(sites) > 0 {
				hf.sites[n] = sites
			}
		}
		r.hot = hf
	})
	return r.hot
}

// hotDirective reports whether a //simlint:hot directive rides the line
// above (or the first line of) the declaration.
func (r *Runner) hotDirective(mod *Module, decl *ast.FuncDecl) bool {
	pos := mod.Fset.Position(decl.Pos())
	lines := r.directives[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := lines[line]; ok && d.verb == "hot" {
			return true
		}
	}
	return false
}

// allocSitesIn classifies the allocation sites of one function body
// (nested literals excluded — they are their own call-graph nodes and
// are reached through closure edges).
func allocSitesIn(n *cgNode, g *callGraph) []hotSite {
	var sites []hotSite
	add := func(pos token.Pos, kind, desc string) {
		sites = append(sites, hotSite{pos: pos, kind: kind, desc: desc})
	}

	// Composite literals whose address is taken escape even when their
	// struct type would otherwise live on the stack.
	addrOf := make(map[*ast.CompositeLit]bool)
	walkShallow(n.body, func(m ast.Node) {
		if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if cl, ok := ast.Unparen(u.X).(*ast.CompositeLit); ok {
				addrOf[cl] = true
			}
		}
	})

	walkShallow(n.body, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.GoStmt:
			add(m.Pos(), "spawn", "go statement spawns a goroutine (allocates its stack and argument frame)")
		case *ast.BinaryExpr:
			if m.Op == token.ADD && isStringType(n.pkg.Info.TypeOf(m)) {
				add(m.Pos(), "conv", "string concatenation allocates the result")
			}
		case *ast.CompositeLit:
			t := n.pkg.Info.TypeOf(m)
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				add(m.Pos(), "lit", "slice literal allocates its backing array")
			case *types.Map:
				add(m.Pos(), "lit", "map literal allocates")
			default:
				if addrOf[m] {
					add(m.Pos(), "lit", fmt.Sprintf("&%s composite literal escapes to the heap", types.TypeString(t, shortQualifier)))
				}
			}
		case *ast.CallExpr:
			classifyCallSite(n, m, add)
		}
	})

	// Function literals built in this body: the closure object is
	// allocated here, whatever the literal goes on to do.
	for _, e := range n.out {
		if e.kind == edgeClosure && e.callee.lit != nil {
			add(e.callee.lit.Pos(), "closure", "function literal allocates its closure")
		}
	}

	sort.Slice(sites, func(i, j int) bool {
		if sites[i].pos != sites[j].pos {
			return sites[i].pos < sites[j].pos
		}
		return sites[i].kind < sites[j].kind
	})
	return sites
}

// classifyCallSite records the allocation behavior of one call: builtin
// constructors, conversions (boxing, string copies), fmt/errors calls,
// and interface boxing at the call's parameter boundary.
func classifyCallSite(n *cgNode, call *ast.CallExpr, add func(token.Pos, string, string)) {
	info := n.pkg.Info

	// Conversion? T(x) where T is a type, not a function.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := info.TypeOf(call)
		src := info.TypeOf(call.Args[0])
		if dst == nil || src == nil {
			return
		}
		if types.IsInterface(dst) && boxes(src, info, call.Args[0]) {
			add(call.Pos(), "box", fmt.Sprintf("conversion boxes %s into %s",
				types.TypeString(src, shortQualifier), types.TypeString(dst, shortQualifier)))
			return
		}
		if isStringByteConv(dst, src) {
			add(call.Pos(), "conv", fmt.Sprintf("%s(%s) conversion copies its contents",
				types.TypeString(dst, shortQualifier), types.TypeString(src, shortQualifier)))
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make", fmt.Sprintf("make(%s) allocates", exprString(call.Args[0])))
			case "new":
				add(call.Pos(), "new", fmt.Sprintf("new(%s) allocates", exprString(call.Args[0])))
			case "append":
				if spliceInPlace(call) {
					return // proved non-growing; no site, no budget entry
				}
				add(call.Pos(), "append", fmt.Sprintf("append to %s may grow its backing array", exprString(call.Args[0])))
			}
			return
		}
	}

	// fmt / errors calls: allocating formatters, one finding per call.
	if fn := calleeFunc(n.pkg, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "errors":
			add(call.Pos(), "fmt", fmt.Sprintf("call into %s.%s allocates", fn.Pkg().Name(), fn.Name()))
			return
		}
	}

	// Interface boxing at the parameter boundary.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pt := paramTypeAt(sig, i, call)
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || !boxes(at, info, arg) {
			continue
		}
		add(arg.Pos(), "box", fmt.Sprintf("argument boxes %s into %s at the call boundary",
			types.TypeString(at, shortQualifier), types.TypeString(pt, shortQualifier)))
	}
}

// spliceInPlace recognizes append(s[:i], s[j:]...) with provable i <= j
// over the same base slice — the in-place element-removal idiom. The
// result is never longer than s was, so the append cannot outgrow s's
// backing array; it is a copy, not an allocation.
func spliceInPlace(call *ast.CallExpr) bool {
	if len(call.Args) != 2 || !call.Ellipsis.IsValid() {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || dst.Low != nil || dst.High == nil || dst.Slice3 {
		return false
	}
	src, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok || src.Low == nil || src.High != nil || src.Slice3 {
		return false
	}
	base := pathKey(dst.X)
	if base == "" || base != pathKey(src.X) {
		return false
	}
	return indexLEQ(dst.High, src.Low)
}

// indexLEQ proves i <= j syntactically: j is i itself, or i plus an
// (unsigned-literal) constant.
func indexLEQ(i, j ast.Expr) bool {
	pi := pathKey(i)
	if pi == "" {
		return false
	}
	if pathKey(j) == pi {
		return true
	}
	b, ok := ast.Unparen(j).(*ast.BinaryExpr)
	if !ok || b.Op != token.ADD {
		return false
	}
	if pathKey(b.X) == pi {
		_, lit := ast.Unparen(b.Y).(*ast.BasicLit)
		return lit
	}
	if pathKey(b.Y) == pi {
		_, lit := ast.Unparen(b.X).(*ast.BasicLit)
		return lit
	}
	return false
}

// paramTypeAt resolves the static parameter type an argument is assigned
// to, unrolling the variadic tail.
func paramTypeAt(sig *types.Signature, i int, call *ast.CallExpr) types.Type {
	params := sig.Params()
	if params == nil || params.Len() == 0 {
		return nil
	}
	if i < params.Len()-1 || (!sig.Variadic() && i < params.Len()) {
		return params.At(i).Type()
	}
	if !sig.Variadic() {
		return nil
	}
	if call.Ellipsis.IsValid() {
		return params.At(params.Len() - 1).Type() // s... passes the slice through
	}
	if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
		return sl.Elem()
	}
	return nil
}

// boxes reports whether storing a value of type t into an interface
// allocates: pointers, interfaces, and untyped nil are pointer-shaped and
// do not; constants are immaterial (they fold); everything else boxes.
func boxes(t types.Type, info *types.Info, arg ast.Expr) bool {
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Signature:
		return false
	case *types.Basic:
		if b := t.Underlying().(*types.Basic); b.Kind() == types.UntypedNil || b.Kind() == types.UnsafePointer {
			return false
		}
	}
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		// A constant operand still allocates when boxed, but the compiler
		// interns small ones; treat constant expressions as boxing — the
		// caller decides — EXCEPT untyped nil, handled above. Keep them.
		_ = tv
	}
	return true
}

// isStringByteConv reports a string ↔ []byte/[]rune conversion.
func isStringByteConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool { return isStringType(t) }
	isBytes := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// shortQualifier renders package-qualified type names with the bare
// package name, keeping messages readable.
func shortQualifier(p *types.Package) string { return p.Name() }

// runHotAlloc reports every unsuppressed allocation site of the
// package's hot-reachable functions.
func runHotAlloc(p *Pass) {
	hf := p.runner.hotModel(p.Mod)
	for _, n := range hf.g.nodes {
		if n.pkg != p.Pkg {
			continue
		}
		root, hot := hf.via[n]
		if !hot {
			continue
		}
		for _, s := range hf.sites[n] {
			p.Reportf(s.pos,
				"allocation on the per-cycle hot path (%s): %s — reachable from %s; preallocate or reuse capacity, or annotate //simlint:allow hotalloc -- <why this is bounded or amortized>",
				s.kind, s.desc, root)
		}
	}
}

// --- budget report ---

// HotReport is the deterministic allocation budget simlint -hotreport
// emits and HOTPATH_BUDGET.json commits: per hot-reachable function, the
// count of allocation sites by kind. Suppressed sites count too — the
// budget tracks what the code does, not what the directives excuse — so
// the committed file can only shrink as allocations are engineered away.
type HotReport struct {
	Schema    int         `json:"schema"`
	Roots     []string    `json:"roots"`
	Total     int         `json:"total"`
	Functions []HotFnCost `json:"functions"`
}

// HotFnCost is one function's allocation-site budget.
type HotFnCost struct {
	Fn    string         `json:"fn"`
	Total int            `json:"total"`
	Sites map[string]int `json:"sites"`
}

// HotReportSchema versions the budget file format.
const HotReportSchema = 1

// HotReport builds the allocation budget of the module's hot region. The
// result is independent of Runner.Workers (the model is built serially,
// in deterministic node order), so the emitted JSON is byte-identical
// across runs and worker counts.
func (r *Runner) HotReport() *HotReport {
	hf := r.hotModel(r.Mod)
	rep := &HotReport{Schema: HotReportSchema, Roots: []string{}}
	for _, root := range hf.roots {
		rep.Roots = append(rep.Roots, hotRootKey(root))
	}
	sort.Strings(rep.Roots)

	byFn := make(map[string]*HotFnCost)
	//simlint:ordered -- accumulates commutative counts into a map that is emitted in sorted key order below
	for n := range hf.via {
		sites := hf.sites[n]
		if len(sites) == 0 {
			continue
		}
		key := hotBudgetKey(hf, n)
		fc := byFn[key]
		if fc == nil {
			fc = &HotFnCost{Fn: key, Sites: make(map[string]int)}
			byFn[key] = fc
		}
		for _, s := range sites {
			fc.Sites[s.kind]++
			fc.Total++
			rep.Total++
		}
	}
	keys := make([]string, 0, len(byFn))
	for k := range byFn {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rep.Functions = make([]HotFnCost, 0, len(keys))
	for _, k := range keys {
		rep.Functions = append(rep.Functions, *byFn[k])
	}
	return rep
}

// hotBudgetKey names a node's budget row; literals are attributed to
// their enclosing declared function so the file stays stable as literal
// positions move.
func hotBudgetKey(hf *hotFacts, n *cgNode) string {
	if n.lit != nil {
		if owner := hf.owner[n]; owner != nil {
			return hotRootKey(owner) + ".func"
		}
		return n.pkg.Rel() + ".func"
	}
	return hotRootKey(n)
}

// MarshalIndent renders the report in its canonical committed form.
func (rep *HotReport) MarshalIndent() ([]byte, error) {
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// ParseHotReport reads a committed budget file.
func ParseHotReport(data []byte) (*HotReport, error) {
	var rep HotReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("analysis: parsing hot budget: %w", err)
	}
	if rep.Schema != HotReportSchema {
		return nil, fmt.Errorf("analysis: hot budget schema %d, tool expects %d (re-record with simlint -hotreport)", rep.Schema, HotReportSchema)
	}
	return &rep, nil
}

// CompareHotBudget checks current against the committed budget and
// returns one violation message per budget growth: a new function with
// allocation sites, a per-kind count increase, or total growth. Shrinkage
// is never a violation — the budget ratchets downward by re-recording.
func CompareHotBudget(budget, current *HotReport) []string {
	var out []string
	old := make(map[string]HotFnCost, len(budget.Functions))
	for _, fc := range budget.Functions {
		old[fc.Fn] = fc
	}
	for _, fc := range current.Functions {
		prev, ok := old[fc.Fn]
		if !ok {
			out = append(out, fmt.Sprintf("hot budget: %s has %d allocation site(s) but no budget entry — a new function entered the hot region allocating", fc.Fn, fc.Total))
			continue
		}
		kinds := make([]string, 0, len(fc.Sites))
		for k := range fc.Sites {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			if fc.Sites[k] > prev.Sites[k] {
				out = append(out, fmt.Sprintf("hot budget: %s grew %s sites %d -> %d", fc.Fn, k, prev.Sites[k], fc.Sites[k]))
			}
		}
	}
	if current.Total > budget.Total {
		out = append(out, fmt.Sprintf("hot budget: total allocation sites grew %d -> %d", budget.Total, current.Total))
	}
	if !sameStrings(budget.Roots, current.Roots) {
		out = append(out, fmt.Sprintf("hot budget: root set changed %v -> %v (re-record with simlint -hotreport)", budget.Roots, current.Roots))
	}
	return out
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
