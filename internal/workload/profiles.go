// Package workload synthesizes the benchmark programs the paper evaluates
// on. SPEC-CPU2006 binaries cannot be run on this simulator, so each of the
// paper's 19 workloads is represented by a synthetic program *calibrated to
// that workload's published characteristics*: the branch-misprediction rate
// and L1-D miss rate of Table 3, the load density suggested by Table 5's
// loads-per-squash, and a memory footprint that reproduces its L2-hit vs
// L2-miss mix. DESIGN.md documents why this substitution preserves the
// shape of the paper's results: CleanupSpec's overhead is a function of
// squash frequency and the cache-state mix of squashed loads, both of which
// the calibration targets directly.
//
// The package also defines the 23 multithreaded PARSEC/SPLASH-2-like
// sharing profiles used for the Figure 9 characterization (see
// internal/multicore).
package workload

// Profile describes one synthetic single-core workload.
type Profile struct {
	Name string
	// TargetMispredict is the paper's branch misprediction rate
	// (Table 3), e.g. 0.124 for astar.
	TargetMispredict float64
	// TargetL1Miss is the paper's L1-D cache miss rate (Table 3).
	TargetL1Miss float64
	// LoadsPerBlock controls load density (derived from Table 5's
	// loads-per-squash column).
	LoadsPerBlock int
	// FootprintBytes is the cold-array size (power of two): > 2 MB means
	// cold misses reach DRAM, smaller footprints hit in the L2.
	FootprintBytes int
	// StoreEvery inserts a store after every n-th block (0 = no stores).
	StoreEvery int
	// Blocks is the number of basic blocks in the loop body.
	Blocks int
	// Seed makes each workload's address/branch streams distinct.
	Seed uint64
}

// ColdRegion returns the byte range of the profile's cold array, for
// prewarming the L2 the way the paper's fast-forward would have.
func (p Profile) ColdRegion() (base uint64, size int) {
	return uint64(coldBase), p.FootprintBytes
}

const (
	kb = 1024
	mb = 1024 * 1024
)

// Profiles returns the 19 SPEC-CPU2006-like profiles, in Table 3's order
// (descending branch misprediction rate).
func Profiles() []Profile {
	ps := []Profile{
		// name, mispredict, L1 miss, loads/block, footprint, storeEvery, blocks
		{"astar", 0.124, 0.018, 3, 4 * mb, 3, 32, 101},
		{"gobmk", 0.119, 0.010, 1, 256 * kb, 4, 32, 102},
		{"sjeng", 0.113, 0.002, 1, 256 * kb, 4, 32, 103},
		{"bzip2", 0.097, 0.020, 2, 4 * mb, 3, 32, 104},
		{"perl", 0.077, 0.005, 1, 512 * kb, 3, 32, 105},
		{"povray", 0.075, 0.002, 2, 256 * kb, 4, 32, 106},
		{"gromacs", 0.068, 0.011, 2, 512 * kb, 3, 32, 107},
		{"h264", 0.054, 0.005, 2, 512 * kb, 3, 32, 108},
		{"namd", 0.042, 0.003, 3, 512 * kb, 4, 32, 109},
		{"sphinx3", 0.041, 0.040, 2, 4 * mb, 4, 32, 110},
		{"wrf", 0.022, 0.005, 1, 4 * mb, 4, 32, 111},
		{"hmmer", 0.019, 0.002, 4, 256 * kb, 3, 32, 112},
		{"mcf", 0.016, 0.025, 4, 8 * mb, 4, 32, 113},
		{"soplex", 0.015, 0.059, 3, 8 * mb, 4, 32, 114},
		{"gcc", 0.013, 0.001, 1, 256 * kb, 3, 32, 115},
		{"lbm", 0.003, 0.110, 6, 16 * mb, 2, 32, 116},
		{"cactus", 0.001, 0.009, 3, 1 * mb, 3, 32, 117},
		{"milc", 0.0004, 0.046, 6, 8 * mb, 3, 32, 118},
		{"libq", 0.0002, 0.104, 2, 16 * mb, 4, 32, 119},
	}
	return ps
}

// ProfileByName returns the named profile, or false.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// MTProfile describes one synthetic multithreaded sharing pattern for the
// Figure 9 characterization (fraction of loads to remote-M/E lines).
type MTProfile struct {
	Name string
	// SharedReadFrac is the fraction of loads to read-only shared data
	// (always safe: lines end up S everywhere).
	SharedReadFrac float64
	// MigratoryFrac is the fraction of accesses to migratory,
	// lock-protected data whose ownership rotates between cores — the
	// source of remote-M/E ("unsafe") loads.
	MigratoryFrac float64
	// DRAMFrac is the fraction of loads to a streaming region too large
	// for the caches ("safe DRAM loads" in Figure 9).
	DRAMFrac float64
	Seed     uint64
}

// MTProfiles returns the 23 PARSEC/SPLASH-2-like sharing profiles. The
// migratory fractions are set so the per-benchmark remote-E/M shares track
// the paper's Figure 9 (average ~2.4% unsafe loads; lock-heavy codes like
// dedup/fluidanimate/radiosity higher, data-parallel codes near zero).
func MTProfiles() []MTProfile {
	return []MTProfile{
		{"blackscholes", 0.05, 0.001, 0.02, 201},
		{"bodytrack", 0.15, 0.020, 0.05, 202},
		{"facesim", 0.10, 0.015, 0.10, 203},
		{"dedup", 0.20, 0.060, 0.10, 204},
		{"fluidanimate", 0.15, 0.055, 0.05, 205},
		{"canneal", 0.25, 0.030, 0.30, 206},
		{"raytrace", 0.30, 0.010, 0.05, 207},
		{"streamcluster", 0.35, 0.025, 0.15, 208},
		{"swaptions", 0.02, 0.001, 0.01, 209},
		{"vips", 0.10, 0.020, 0.08, 210},
		{"barnes", 0.25, 0.035, 0.05, 211},
		{"fmm", 0.20, 0.025, 0.05, 212},
		{"ocean.cont", 0.15, 0.030, 0.25, 213},
		{"ocean.ncont", 0.15, 0.035, 0.25, 214},
		{"radiosity", 0.25, 0.050, 0.03, 215},
		{"volrend", 0.20, 0.015, 0.03, 216},
		{"water.nsq", 0.15, 0.030, 0.02, 217},
		{"water.sp", 0.15, 0.020, 0.02, 218},
		{"cholesky", 0.20, 0.030, 0.10, 219},
		{"fft", 0.10, 0.015, 0.20, 220},
		{"lu.cont", 0.15, 0.025, 0.10, 221},
		{"lu.ncont", 0.15, 0.030, 0.10, 222},
		{"radix", 0.05, 0.020, 0.25, 223},
	}
}
