package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/sim"
)

func testCfg(p sim.Policy, seed uint64) sim.Config {
	return sim.Config{Policy: p, Instructions: 6_000, Seed: seed}
}

func TestKeyDeterminismAndSensitivity(t *testing.T) {
	base := testCfg(sim.CleanupSpec, 1)
	k := Key("astar", base)
	if k != Key("astar", base) {
		t.Fatal("key not deterministic")
	}
	if len(k) != 32 {
		t.Fatalf("key %q: want 32 hex chars", k)
	}

	on := true
	variants := map[string]sim.Config{
		"policy":       testCfg(sim.NonSecure, 1),
		"seed":         testCfg(sim.CleanupSpec, 2),
		"instructions": {Policy: sim.CleanupSpec, Instructions: 7_000, Seed: 1},
		"l1rand":       {Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1, L1RandomRepl: &on},
		"nowarmup":     {Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1, NoWarmup: true},
		"maxcycles":    {Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1, MaxCycles: 1_000_000},
	}
	for name, cfg := range variants {
		if Key("astar", cfg) == k {
			t.Errorf("%s variant collided with the base key", name)
		}
	}
	if Key("gcc", base) == k {
		t.Error("workload not part of the key")
	}

	// Defaults-resolution equivalence: an explicitly spelled-out default
	// hashes the same as the implicit one.
	explicit := sim.Config{Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1, MaxCycles: 500_000_000, Warmup: 6_000}
	if Key("astar", explicit) != k {
		t.Error("explicit defaults must share the implicit-defaults key")
	}

	// The observability hooks are observation-only and must not affect
	// identity: same key with a trace ring, a metrics collector, or a
	// sampling interval attached.
	traced := base
	traced.Trace = sim.NewTraceRing(16)
	if Key("astar", traced) != k {
		t.Error("trace ring changed the key")
	}
	instrumented := base
	instrumented.Metrics = &sim.Metrics{}
	instrumented.SampleEvery = 1000
	if Key("astar", instrumented) != k {
		t.Error("metrics collector / sampling interval changed the key")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Workload: "astar", Config: testCfg(sim.NonSecure, 1)}
	res, err := sim.RunWorkload(job.Workload, job.Config)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(job.Key()); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(job, res); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get(job.Key())
	if !ok {
		t.Fatal("cache miss after Put")
	}
	if !reflect.DeepEqual(e.Result, res) {
		t.Fatalf("result did not round-trip:\n got %+v\nwant %+v", e.Result, res)
	}
	if e.Workload != "astar" || e.Policy != sim.NonSecure || e.Seed != 1 {
		t.Fatalf("entry metadata wrong: %+v", e)
	}
	if e.Summary["ipc"] != res.IPC || e.Summary["cycles"] != float64(res.Cycles) {
		t.Fatalf("entry summary wrong: %+v", e.Summary)
	}

	// A torn/corrupt entry must read as a miss, not an error.
	if err := os.WriteFile(c.path(job.Key()), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(job.Key()); ok {
		t.Fatal("corrupt entry served as a hit")
	}

	// Entries skips the corrupt file and root-level files (manifest).
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	job2 := Job{Workload: "gcc", Config: testCfg(sim.NonSecure, 1)}
	if err := c.Put(job2, res); err != nil {
		t.Fatal(err)
	}
	entries, err := c.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Workload != "gcc" {
		t.Fatalf("Entries: got %+v, want just the gcc entry", entries)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest(dir, "quick")
	jobs := Grid{Name: "quick", Workloads: []string{"astar", "gcc"},
		Policies: []sim.Policy{sim.NonSecure}, Instructions: 6_000}.Jobs()
	m.Reconcile("quick", jobs)
	if p, d, f := m.Counts(); p != 2 || d != 0 || f != 0 {
		t.Fatalf("counts after reconcile: %d/%d/%d", p, d, f)
	}
	m.Record(JobResult{Job: jobs[0], Key: jobs[0].Key(), Result: sim.Result{Cycles: 123}})
	m.Record(JobResult{Job: jobs[1], Key: jobs[1].Key(), Err: os.ErrDeadlineExceeded, Attempts: 2})
	if err := m.Save(); err != nil {
		t.Fatal(err)
	}

	loaded, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("manifest did not load back")
	}
	if loaded.Grid != "quick" {
		t.Fatalf("grid = %q", loaded.Grid)
	}
	p, d, f := loaded.Counts()
	if p != 0 || d != 1 || f != 1 {
		t.Fatalf("counts after load: pending=%d done=%d failed=%d", p, d, f)
	}
	fails := loaded.Failures()
	if len(fails) != 1 || fails[0].Workload != "gcc" {
		t.Fatalf("failures: %+v", fails)
	}

	// Reconciling the same grid again keeps done cells done and re-queues
	// the failed one as pending.
	loaded.Reconcile("quick", jobs)
	p, d, f = loaded.Counts()
	if p != 1 || d != 1 || f != 0 {
		t.Fatalf("counts after re-reconcile: pending=%d done=%d failed=%d", p, d, f)
	}
}

func TestGridExpansion(t *testing.T) {
	g := Grid{
		Name:      "t",
		Workloads: []string{"astar", "gcc"},
		Policies:  []sim.Policy{sim.NonSecure, sim.CleanupSpec},
		Seeds:     []uint64{1, 2, 3},
	}
	jobs := g.Jobs()
	if len(jobs) != 2*2*3 {
		t.Fatalf("expanded to %d jobs, want 12", len(jobs))
	}
	seen := make(map[string]bool)
	for _, j := range jobs {
		k := j.Key()
		if seen[k] {
			t.Fatalf("duplicate key in expansion: %s", j)
		}
		seen[k] = true
	}
	// Deterministic order: first jobs sweep seeds of (astar, nonsecure).
	if jobs[0].Workload != "astar" || jobs[1].Config.Seed != 2 {
		t.Fatalf("unexpected expansion order: %v then %v", jobs[0], jobs[1])
	}
}

func TestGridByName(t *testing.T) {
	for _, name := range GridNames() {
		g, err := GridByName(name, 10_000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Jobs()) == 0 {
			t.Fatalf("grid %q is empty", name)
		}
	}
	if _, err := GridByName("nope", 0, nil); err == nil {
		t.Fatal("unknown grid must error")
	}
	all, _ := GridByName("all", 0, []uint64{1, 2})
	if want := len(sim.Workloads()) * len(sim.Policies()) * 2; len(all.Jobs()) != want {
		t.Fatalf("all grid: %d jobs, want %d", len(all.Jobs()), want)
	}
}

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in   string
		want []uint64
		err  bool
	}{
		{"", nil, false},
		{"1..5", []uint64{1, 2, 3, 4, 5}, false},
		{"1,7,42", []uint64{1, 7, 42}, false},
		{" 2 .. 3 ", []uint64{2, 3}, false},
		{"5..1", nil, true},
		{"0..3", nil, true},
		{"a,b", nil, true},
		{"1..99999", nil, true},
	}
	for _, c := range cases {
		got, err := ParseSeeds(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseSeeds(%q): err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSeeds(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSummaryAndCSV(t *testing.T) {
	jobs := Grid{Name: "t", Workloads: []string{"astar", "gcc"},
		Policies:     []sim.Policy{sim.NonSecure, sim.CleanupSpec},
		Instructions: 6_000}.Jobs()
	eng := NewEngine()
	results := eng.Run(jobs)
	if n := len(Failed(results)); n != 0 {
		t.Fatalf("%d jobs failed", n)
	}
	table := SummaryTable(results).String()
	if !strings.Contains(table, "cleanupspec") || !strings.Contains(table, "%") {
		t.Fatalf("summary table missing slowdown row:\n%s", table)
	}
	var b strings.Builder
	if err := ResultsCSV(&b, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+len(jobs) {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), 1+len(jobs), b.String())
	}
	if !strings.HasPrefix(lines[0], "workload,policy,") {
		t.Fatalf("CSV header: %s", lines[0])
	}
}
