package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerMetricsComplete guards the full-depth-observability contract:
// every exported numeric counter a package accumulates must be bound into
// the metrics registry by that package's AttachMetrics, so a newly added
// Stats field cannot silently drop out of simscope, the interval sampler,
// and the Perfetto export.
//
// For each method AttachMetrics(reg *metrics.Registry, …) the analyzer
// determines the receiver's stat carriers — its fields named Stats or
// Traffic whose types are structs, any field (exported or not) whose named
// type ends in "Stats" (the internal/obs style: `stats SinkStats` guarded
// by the receiver's own mutex), or, when it has none of those (the MSHR
// style), the receiver struct itself — and requires every exported numeric
// field of each carrier to be referenced somewhere in the AttachMetrics
// body (pointer binding, CounterFunc closure, GaugeFunc closure all count).
// Fields that are deliberately unregistered carry
// //simlint:allow metricscomplete -- <justification> on their declaration.
var AnalyzerMetricsComplete = &Analyzer{
	Name: "metricscomplete",
	Doc:  "require every exported numeric Stats/Traffic field to be bound to the metrics registry in its package's AttachMetrics",
	Run:  runMetricsComplete,
}

func runMetricsComplete(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "AttachMetrics" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if !firstParamIsRegistry(sig) {
				continue
			}
			recv := derefStruct(sig.Recv().Type())
			if recv == nil {
				continue
			}
			referenced := referencedFields(p, fd.Body)
			for _, carrier := range statCarriers(recv) {
				for i := 0; i < carrier.NumFields(); i++ {
					field := carrier.Field(i)
					if !field.Exported() || !isNumeric(field.Type()) || referenced[field] {
						continue
					}
					p.Reportf(field.Pos(),
						"exported counter %s is never bound in (%s).AttachMetrics: it will be missing from every metrics export; bind it or annotate //simlint:allow metricscomplete -- <why>",
						field.Name(), sig.Recv().Type())
				}
			}
		}
	}
}

// firstParamIsRegistry reports whether the method's first parameter is a
// *Registry (matched by type name so the analyzer works on both the real
// internal/metrics and the golden-test stand-in).
func firstParamIsRegistry(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// statCarriers returns the structs whose exported numeric fields must all
// be registered: the receiver's Stats/Traffic fields when present, fields
// of a named *Stats type (obs's `stats SinkStats` — the counters are
// exported through an accessor while the field itself stays behind the
// mutex), otherwise the receiver struct itself.
func statCarriers(recv *types.Struct) []*types.Struct {
	var out []*types.Struct
	for i := 0; i < recv.NumFields(); i++ {
		f := recv.Field(i)
		if !isStatCarrierField(f) {
			continue
		}
		if s, ok := f.Type().Underlying().(*types.Struct); ok {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = append(out, recv)
	}
	return out
}

// isStatCarrierField matches both carrier conventions: a field named Stats
// or Traffic (the cache/MSHR style), or a field whose named type ends in
// "Stats" regardless of the field's own name or exportedness (the obs
// style, where the carrier hides behind a mutex and an accessor).
func isStatCarrierField(f *types.Var) bool {
	if f.Name() == "Stats" || f.Name() == "Traffic" {
		return true
	}
	named, ok := f.Type().(*types.Named)
	return ok && strings.HasSuffix(named.Obj().Name(), "Stats")
}

// referencedFields collects every struct field selected anywhere in body.
func referencedFields(p *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := p.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				out[v] = true
			}
		}
		return true
	})
	return out
}

// derefStruct unwraps pointers and named types down to a struct, or nil.
func derefStruct(t types.Type) *types.Struct {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	s, _ := t.Underlying().(*types.Struct)
	return s
}

// isNumeric reports whether t's underlying type is an integer or float.
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
