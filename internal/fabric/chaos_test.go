package fabric

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/campaign"
	"repro/internal/faultinject"
	"repro/internal/xrand"
	"repro/sim"
)

// chaosJobs is the fixed small campaign every chaos schedule runs: four
// cells, one dependency edge, short workloads.
func chaosJobs(t *testing.T) ([]Cell, []campaign.Job) {
	t.Helper()
	jobs := []campaign.Job{
		{Workload: "gcc", Config: sim.Config{Policy: sim.CleanupSpec, Instructions: 500, Seed: 1}},
		{Workload: "gcc", Config: sim.Config{Policy: sim.NonSecure, Instructions: 500, Seed: 1}},
		{Workload: "lbm", Config: sim.Config{Policy: sim.CleanupSpec, Instructions: 500, Seed: 2}},
		{Workload: "lbm", Config: sim.Config{Policy: sim.NonSecure, Instructions: 500, Seed: 2}},
	}
	cells, err := CellsFromJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	cells[3].Deps = []string{cells[0].Key}
	return cells, jobs
}

// chaosTally aggregates event counts across the whole seed sweep — the
// vacuity guards: a chaos test that never expired a lease, never fired a
// message fault, and never killed a lease holder proves nothing.
type chaosTally struct {
	expired, stale, dup, rejected, remote, degraded atomic.Int64
	msgFaults, killsHolding, kills                  atomic.Int64
}

// TestChaosConvergence is the fabric's headline property test: across 100
// seeded fault schedules — lost / dropped / duplicated / reordered /
// corrupted messages, instantly-expiring grants, torn journal appends,
// corrupt cache writes, and (every third seed) a worker killed mid-run —
// every campaign terminates, and a fault-free pass over the surviving
// cache dir converges to an export byte-identical to a never-faulted
// single-host run.
func TestChaosConvergence(t *testing.T) {
	cells, jobs := chaosJobs(t)
	want := referenceExport(t, jobs)
	tally := &chaosTally{}

	t.Run("seeds", func(t *testing.T) {
		for seed := uint64(0); seed < 100; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
				t.Parallel()
				chaosRun(t, seed, cells, want, tally)
			})
		}
	})

	// Vacuity guards: the sweep must actually have exercised the recovery
	// machinery it claims to test.
	if n := tally.expired.Load(); n == 0 {
		t.Error("no lease ever expired across the sweep")
	}
	if n := tally.msgFaults.Load(); n == 0 {
		t.Error("no transport fault ever fired across the sweep")
	}
	if n := tally.stale.Load() + tally.dup.Load(); n == 0 {
		t.Error("no stale or duplicate completion across the sweep")
	}
	if tally.kills.Load() == 0 || tally.killsHolding.Load() == 0 {
		t.Errorf("kills=%d killsHolding=%d: no worker was ever killed while holding a lease",
			tally.kills.Load(), tally.killsHolding.Load())
	}
	t.Logf("sweep totals: expired=%d stale=%d dup=%d rejected=%d remote=%d degraded=%d msgFaults=%d kills=%d (holding=%d)",
		tally.expired.Load(), tally.stale.Load(), tally.dup.Load(), tally.rejected.Load(),
		tally.remote.Load(), tally.degraded.Load(), tally.msgFaults.Load(),
		tally.kills.Load(), tally.killsHolding.Load())
}

// chaosRun drives one seeded schedule to termination and convergence.
func chaosRun(t *testing.T, seed uint64, cells []Cell, want string, tally *chaosTally) {
	inj := faultinject.New(seed)
	cacheDir := t.TempDir()
	c, err := NewCoordinator(Config{Grid: "chaos", Cells: cells, CacheDir: cacheDir, TTLTicks: 4, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	conn := &FaultConn{Inner: &LocalConn{C: c}, Faults: inj}

	var alive []*Worker
	for i := 0; i < 3; i++ {
		w := newWorker(t, fmt.Sprintf("w%d", i), conn)
		w.Faults = inj
		alive = append(alive, w)
	}

	// SIGKILL mid-campaign (every third seed): step the victim until it
	// holds a lease, then it never steps again — the held lease must
	// expire and re-queue, never wedge the campaign. A replacement worker
	// joins, as a restarted host would.
	if seed%3 == 0 {
		victim := alive[0]
		for i := 0; i < 50 && victim.Holding() == ""; i++ {
			if done, err := victim.Step(); err != nil {
				t.Fatal(err)
			} else if done {
				break
			}
		}
		if victim.Holding() != "" {
			tally.killsHolding.Add(1)
		}
		tally.kills.Add(1)
		alive = alive[1:]
		nw := newWorker(t, "w-replacement", conn)
		nw.Faults = inj
		alive = append(alive, nw)
	}

	// The schedule interleaves worker steps, explicit heartbeats, and
	// clock ticks under a seeded stream independent of the fault plan.
	sched := xrand.New(xrand.Hash64(seed ^ 0xfab41c))
	for step := 0; step < 4000 && !c.Settled(); step++ {
		if len(alive) == 0 {
			break
		}
		switch w := alive[sched.Intn(len(alive))]; sched.Intn(10) {
		case 0, 1:
			c.Advance(1)
		case 2:
			w.Renew()
		default:
			done, err := w.Step()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				for i, a := range alive {
					if a == w {
						alive = append(alive[:i], alive[i+1:]...)
						break
					}
				}
			}
		}
	}
	// Drain: whatever the schedule left in flight, expiry plus a few more
	// rounds must settle it — this is the termination property.
	for i := 0; i < 200 && !c.Settled(); i++ {
		c.Advance(5)
		for _, w := range alive {
			if _, err := w.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !c.Settled() {
		p, l, d, f, q := c.Counts()
		t.Fatalf("seed %d: campaign never settled (pending=%d leased=%d done=%d failed=%d quarantined=%d)", seed, p, l, d, f, q)
	}
	st := c.Stats()
	tally.expired.Add(int64(st.Expired))
	tally.stale.Add(int64(st.StaleCompletes))
	tally.dup.Add(int64(st.DupCompletes))
	tally.rejected.Add(int64(st.Rejected))
	tally.remote.Add(int64(st.RemoteReads))
	for _, w := range alive {
		tally.degraded.Add(int64(w.Degraded))
	}
	for _, e := range inj.Events() {
		if e.Site == faultinject.SiteFabricMsg {
			tally.msgFaults.Add(1)
		}
	}
	c.Close() // faults may have left the journals mid-scar; convergence below is the real check

	// Convergence: a fault-free pass over the surviving cache dir (resume
	// from verified entries, re-simulate anything missing or corrupt) must
	// reproduce the single-host export byte for byte.
	c2, err := NewCoordinator(Config{Grid: "chaos", Cells: cells, CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("seed %d: reopening coordinator: %v", seed, err)
	}
	defer c2.Close()
	w := newWorker(t, "w-verify", &LocalConn{C: c2})
	runToShutdown(t, w)
	_, _, done, failed, quarantined := c2.Counts()
	if done != len(cells) || failed != 0 || quarantined != 0 {
		t.Fatalf("seed %d: converged counts done=%d failed=%d quarantined=%d, want %d/0/0", seed, done, failed, quarantined, len(cells))
	}
	if got := cacheExport(t, c2.Cache()); got != want {
		t.Errorf("seed %d: converged export differs from single-host run:\n%s\nvs\n%s", seed, got, want)
	}
}
