package specfuzz

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Memory layout of generated gadget programs. Regions are spaced so no two
// ever share a cache line; the planted secret word at addrSecret is the
// ONLY datum that differs between the two programs of a differential pair.
const (
	addrBounds  = arch.Addr(0x1000) // bounds value the victim checks against
	addrBounds2 = arch.Addr(0x1100) // second bounds (WindowDoubleBranch)
	addrBPtr    = arch.Addr(0x1200) // pointer to bounds (WindowPointerChase)
	addrArr1    = arch.Addr(0x2000) // in-bounds victim array
	addrSecret  = arch.Addr(0x3000) // the out-of-bounds secret word
	addrTable2  = arch.Addr(0x8000) // identity table (PatternTwoLevel)
	addrRecv    = arch.Addr(0x10_0000)
	addrRes     = arch.Addr(0x20_0000) // per-slot probe latencies
	addrNoise   = arch.Addr(0x30_0000) // EmitNoise working set
	addrDelay   = arch.Addr(0x40_0000) // cold post-attack delay line
	addrPrime   = arch.Addr(0x50_0000) // Prime+Probe conflict lines

	// boundsEntries is arr1's length and the planted bounds value; train
	// indices stay below it, maliciousX is far above it.
	boundsEntries = 16
	// maliciousX indexes arr1 so arr1[maliciousX] is the secret word:
	// addrArr1 + maliciousX*8 == addrSecret.
	maliciousX = int64((addrSecret - addrArr1) / 8)
	// maxEntries bounds the receiver slot count (and with it the secret
	// range and two-level table size).
	maxEntries = 64
	// recvSpan is the receiver region size; Entries*Stride must fit.
	recvSpan = int64(addrRes - addrRecv)
	// noiseSpan is the EmitNoise working-set size.
	noiseSpan = int64(16 << 10)

	// defaultL1Sets/Ways mirror the paper's Table 4 L1 geometry
	// (64KB, 8-way, 64B lines → 128 sets); Geometry carries the live
	// values, these constants only steer spec generation.
	defaultL1Sets = 128
	defaultL1Ways = 8
)

// BuildMode selects what the gadget program does after the attack.
type BuildMode int

const (
	// ModeTiming appends the receiver probe phase: the program times
	// every receiver slot (or primed line) and stores the latencies to
	// addrRes, where the oracle reads them back.
	ModeTiming BuildMode = iota
	// ModeState halts right after the attack (and optional delay load):
	// the oracle snapshots the hierarchy tag state instead, so the
	// observation is not perturbed by probe traffic.
	ModeState

	numBuildModes
)

func (m BuildMode) String() string {
	switch m {
	case ModeTiming:
		return "timing"
	case ModeState:
		return "state"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Geometry is the L1 shape the Prime+Probe receiver needs.
type Geometry struct {
	L1Sets int
	L1Ways int
}

// GeometryOf extracts the L1 geometry from a hierarchy configuration.
func GeometryOf(hcfg memsys.Config) Geometry {
	ways := hcfg.L1.Ways
	if ways <= 0 {
		ways = defaultL1Ways
	}
	sets := hcfg.L1.SizeBytes / arch.LineBytes / ways
	if sets <= 0 {
		sets = defaultL1Sets
	}
	return Geometry{L1Sets: sets, L1Ways: ways}
}

// ProbeSlots is the length of the probe-latency vector a timing-mode run
// produces: one entry per receiver slot (Flush+Reload) or per primed line
// (Prime+Probe).
func ProbeSlots(s GadgetSpec, g Geometry) int {
	if s.Receiver == RecvPrimeProbe {
		return g.L1Ways
	}
	return s.Entries
}

// primeLines returns g.L1Ways addresses in the prime region that map to
// the same L1 set as target (mod-indexed L1, as in the simulator).
func primeLines(target arch.Addr, g Geometry) []arch.Addr {
	set := int(uint64(target.Line()) % uint64(g.L1Sets))
	out := make([]arch.Addr, 0, g.L1Ways)
	for j := 0; j < g.L1Ways; j++ {
		lineNo := uint64(set) + uint64(j+1)*uint64(g.L1Sets)
		out = append(out, addrPrime+arch.Addr(lineNo*arch.LineBytes))
	}
	return out
}

// log2 of a positive power of two.
func log2(v int64) int64 {
	n := int64(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// BuildProgram assembles the gadget program for one planted secret. The
// instruction stream and every initialized word except the secret itself
// are pure functions of (spec, mode, geometry) — the differential pair is
// architecturally indistinguishable, so any microarchitectural difference
// the oracle observes between the two runs is secret-dependent by
// construction.
//
// Program shape (single attack round):
//
//	init data → receiver prep (flush slots / prime set) → noise blocks →
//	(secret warm-up) → train victim ×N → (flush bounds) → (fence) →
//	victim(maliciousX) → (cold delay load) → probe phase (timing mode)
//	                                        └ halt        (state mode)
func BuildProgram(s GadgetSpec, secret int, mode BuildMode, g Geometry) (*isa.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if mode < 0 || mode >= numBuildModes {
		return nil, fmt.Errorf("specfuzz: %s: invalid build mode %d", s.ID, int(mode))
	}
	if secret < 0 || secret >= s.Entries {
		return nil, fmt.Errorf("specfuzz: %s: secret %d outside [0,%d)", s.ID, secret, s.Entries)
	}
	strideShift := log2(s.Stride)

	b := isa.NewBuilder(fmt.Sprintf("specfuzz-%s-%s", s.ID, mode))

	// Data image.
	b.InitData(addrBounds, boundsEntries)
	for i := int64(0); i < boundsEntries; i++ {
		b.InitData(addrArr1+arch.Addr(i*8), uint64(i))
	}
	b.InitData(addrSecret, uint64(secret))
	switch s.Window {
	case WindowPointerChase:
		b.InitData(addrBPtr, uint64(addrBounds))
	case WindowDoubleBranch:
		b.InitData(addrBounds2, boundsEntries)
	default:
		// WindowBoundsCheck needs no extra data.
	}
	if s.Pattern == PatternTwoLevel {
		for i := int64(0); i < maxEntries; i++ {
			b.InitData(addrTable2+arch.Addr(i*8), uint64(i))
		}
	}

	// Receiver preparation.
	var primed []arch.Addr
	switch s.Receiver {
	case RecvFlushReload:
		b.Li(1, int64(addrRecv))
		b.Li(2, int64(s.Entries))
		b.Label("flushrecv")
		b.CLFlush(1, 0)
		b.AddI(1, 1, s.Stride)
		b.AddI(2, 2, -1)
		b.Br(isa.CondNE, 2, 0, "flushrecv")
	case RecvPrimeProbe:
		target := addrRecv + arch.Addr(int64(encSlot(s, s.SecretA))*s.Stride)
		primed = primeLines(target, g)
		for _, a := range primed {
			b.Li(2, int64(a))
			b.Load(4, 2, 0)
		}
	default:
		return nil, fmt.Errorf("specfuzz: %s: invalid receiver kind %d", s.ID, int(s.Receiver))
	}
	b.Fence()

	// Workload-shaped background pressure.
	if s.NoiseBlocks > 0 {
		workload.EmitNoise(b, xrand.New(s.Seed), s.NoiseBlocks, addrNoise, noiseSpan, 16)
	}

	// Keep the secret's line resident (victim data in active use); when
	// skipped, the transient secret load itself misses and the whole
	// transmission rides on in-flight fills.
	if s.SecretResident {
		b.Li(3, int64(addrSecret))
		b.Load(4, 3, 0)
	}

	// Train the bounds check with in-bounds x counting down to 1.
	b.Li(27, int64(s.TrainRounds))
	b.Label("train")
	b.Add(1, 27, 0)
	b.Call("victim")
	b.AddI(27, 27, -1)
	b.Br(isa.CondNE, 27, 0, "train")

	// Flush the bounds line(s) so the mispredicted check resolves slowly.
	if s.FlushBounds {
		b.Li(3, int64(addrBounds))
		b.CLFlush(3, 0)
		switch s.Window {
		case WindowPointerChase:
			b.Li(3, int64(addrBPtr))
			b.CLFlush(3, 0)
		case WindowDoubleBranch:
			b.Li(3, int64(addrBounds2))
			b.CLFlush(3, 0)
		default:
			// Single bounds line already flushed.
		}
	}
	if s.FenceBeforeAttack {
		b.Fence()
	}

	// Attack call.
	b.Li(1, maliciousX)
	b.Call("victim")

	// Give a squash-surviving in-flight fill time to land before the
	// observation (the unprotected baseline lets it land; CleanupSpec
	// drops it).
	if s.DelayAfterAttack {
		b.Li(3, int64(addrDelay))
		b.Load(4, 3, 0)
		b.Fence()
	}

	if mode == ModeTiming {
		emitProbe(b, s, strideShift, primed)
	}
	b.Halt()

	emitVictim(b, s, strideShift)
	return b.Build(), nil
}

// emitProbe appends the receiver probe: each slot is timed with a
// fence/rdcycle bracket (the fence keeps the timed load from issuing
// before the first timer read; the second read serializes at ROB head) and
// the latency is stored to addrRes[k].
func emitProbe(b *isa.Builder, s GadgetSpec, strideShift int64, primed []arch.Addr) {
	if s.Receiver == RecvPrimeProbe {
		for j, a := range primed {
			b.Li(6, int64(a))
			b.Fence()
			b.RdCycle(8)
			b.Load(9, 6, 0)
			b.RdCycle(11)
			b.Alu(isa.AluSub, 12, 11, 8)
			b.Li(14, int64(addrRes)+int64(j)*8)
			b.Store(14, 0, 12)
		}
		return
	}
	b.Li(26, 0)
	b.Li(25, int64(s.Entries))
	b.Li(24, int64(addrRecv))
	b.Li(23, int64(addrRes))
	b.Label("probe")
	b.AluI(isa.AluShl, 5, 26, strideShift)
	b.Add(6, 24, 5)
	b.Fence()
	b.RdCycle(8)
	b.Load(9, 6, 0)
	b.RdCycle(11)
	b.Alu(isa.AluSub, 12, 11, 8)
	b.AluI(isa.AluShl, 13, 26, 3)
	b.Add(14, 23, 13)
	b.Store(14, 0, 12)
	b.AddI(26, 26, 1)
	b.Br(isa.CondLTU, 26, 25, "probe")
}

// emitVictim appends the victim function: bounds check(s) per the window
// kind guarding a transient transmission per the pattern kind.
//
//	victim(x in r1): if in-bounds { transmit(arr1[x]) }
func emitVictim(b *isa.Builder, s GadgetSpec, strideShift int64) {
	b.Label("victim")
	switch s.Window {
	case WindowBoundsCheck:
		b.Li(21, int64(addrBounds))
		b.Load(22, 21, 0)
		b.Br(isa.CondGEU, 1, 22, "vout")
	case WindowPointerChase:
		b.Li(21, int64(addrBPtr))
		b.Load(21, 21, 0) // p = *bptr (first miss when flushed)
		b.Load(22, 21, 0) // bounds = *p (dependent second miss)
		b.Br(isa.CondGEU, 1, 22, "vout")
	case WindowDoubleBranch:
		b.Li(21, int64(addrBounds))
		b.Load(22, 21, 0)
		b.Br(isa.CondGEU, 1, 22, "vout")
		b.Li(21, int64(addrBounds2))
		b.Load(22, 21, 0)
		b.Br(isa.CondGEU, 1, 22, "vout")
	default:
		// Validate rejects unknown kinds before emission.
	}

	// Transient path: read arr1[x] (the secret when x == maliciousX) and
	// encode it into a receiver address.
	b.AluI(isa.AluShl, 23, 1, 3)
	b.Li(24, int64(addrArr1))
	b.Add(23, 23, 24)
	b.Load(23, 23, 0) // arr1[x] — the secret on the transient path
	switch s.Pattern {
	case PatternIndex:
		// recv[value*stride] directly.
	case PatternTwoLevel:
		b.AluI(isa.AluShl, 22, 23, 3)
		b.Li(24, int64(addrTable2))
		b.Add(22, 22, 24)
		b.Load(23, 22, 0) // table[value] — a second secret-dependent line
	case PatternBit:
		b.AluI(isa.AluShr, 23, 23, int64(s.Bit))
		b.AluI(isa.AluAnd, 23, 23, 1)
	default:
		// Validate rejects unknown kinds before emission.
	}
	b.AluI(isa.AluShl, 23, 23, strideShift)
	b.Li(24, int64(addrRecv))
	b.Add(23, 23, 24)
	b.Load(23, 23, 0) // the transmission
	b.Label("vout")
	b.Ret()
}
