// Package sim is the public API of the CleanupSpec reproduction: it wires a
// security policy, the memory hierarchy, the out-of-order core, and a
// workload together and returns the measurements the paper's tables and
// figures are built from.
//
// Quick start:
//
//	res, err := sim.RunWorkload("astar", sim.Config{Policy: sim.CleanupSpec, Instructions: 300_000})
//	base, _ := sim.RunWorkload("astar", sim.Config{Policy: sim.NonSecure, Instructions: 300_000})
//	fmt.Printf("slowdown: %.1f%%\n", (float64(res.Cycles)/float64(base.Cycles)-1)*100)
//
// The underlying building blocks (program builder, attack toolkit,
// multicore characterization) are re-exported so examples and downstream
// users can construct custom scenarios without importing internal packages.
package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/invisispec"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/multicore"
	"repro/internal/policy"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Policy names a security policy.
type Policy string

// Available policies.
const (
	// NonSecure is the unprotected baseline.
	NonSecure Policy = "nonsecure"
	// CleanupSpec is the paper's Undo mechanism with its full hierarchy
	// configuration (random-replacement L1, CEASER L2, window
	// protection, GetS-Safe).
	CleanupSpec Policy = "cleanupspec"
	// InvisiSpecInitial is the Redo baseline with value propagation
	// deferred to the visibility point (the paper's initial estimates).
	InvisiSpecInitial Policy = "invisispec-initial"
	// InvisiSpecRevised is the Redo baseline with immediate value
	// propagation (the authors' corrected results).
	InvisiSpecRevised Policy = "invisispec-revised"
	// DelayAll holds every speculative load until it is unsquashable
	// (the strictest delay-based upper bound).
	DelayAll Policy = "delay-all"
	// DelayOnMiss is the Conditional Speculation baseline: speculative
	// L1 hits proceed, speculative misses are delayed (Section 7.3.2).
	DelayOnMiss Policy = "delay-on-miss"
	// ValuePredict delays speculative misses but lets dependents run on
	// a last-value prediction (Sakalis et al., Section 7.3.2).
	ValuePredict Policy = "value-predict"
)

// Policies returns every available policy name.
func Policies() []Policy {
	return []Policy{NonSecure, CleanupSpec, InvisiSpecInitial, InvisiSpecRevised, DelayAll, DelayOnMiss, ValuePredict}
}

// Config configures a run.
type Config struct {
	// Policy selects the protection mechanism (default NonSecure).
	Policy Policy
	// Instructions is the commit budget of the measurement window
	// (default 300k).
	Instructions uint64
	// Warmup commits this many instructions before the measurement
	// window begins, standing in for the paper's 10-billion-instruction
	// fast-forward (default: Instructions, capped at 400k). Set negative
	// semantics are not supported; 0 means the default.
	Warmup uint64
	// NoWarmup disables warmup entirely.
	NoWarmup bool
	// Seed perturbs the hierarchy's randomized structures.
	Seed uint64

	// L1RandomRepl / RandomizeL2 override the policy's default
	// randomization choices (used by the Table 1 ablation). Leave nil
	// for policy defaults.
	L1RandomRepl *bool
	RandomizeL2  *bool
	// DisableRestore turns CleanupSpec into the naive invalidation-only
	// design of Section 2.4.1 (ablations only).
	DisableRestore bool
	// ConstantTimeCleanup pads every cleanup stall (Section 4b).
	ConstantTimeCleanup uint64
	// L1PartitionWays, when non-zero, way-partitions the L1 (NoMo-style,
	// Section 3.6's SMT mitigation): each partition gets this many ways.
	L1PartitionWays int
	// L2RemapEvery, when non-zero, enables CEASER's gradual remap at one
	// relocated set per this many L2 accesses (requires a randomized L2).
	L2RemapEvery uint64

	// MaxCycles aborts runaway simulations (default 500M).
	MaxCycles uint64
	// WatchdogWindow is the core's forward-progress watchdog: a run that
	// commits nothing for this many cycles fails fast with a structured
	// *cpu.LivelockError naming the stalled structure, instead of
	// burning to MaxCycles (default 200k). It bounds simulated behavior,
	// so it participates in campaign cache keys.
	WatchdogWindow uint64
	// Faults, when non-nil, applies this run's deterministic fault
	// schedule (currently the simulation-step commit stall that seeds a
	// livelock for the watchdog). A chaos-test hook like Trace/Metrics:
	// nil in production, excluded from campaign cache keys.
	Faults *faultinject.Injector `json:"-"`
	// Trace, when non-nil, records the run's structured event trace
	// (squashes, loads, cleanups, commits) into the ring. Observability
	// hooks never affect simulation outcomes and are excluded from
	// campaign cache keys.
	Trace *TraceRing `json:"-"`
	// Metrics, when non-nil, is filled with the run's metric registry
	// (counters, gauges, histograms) and — when SampleEvery is set — the
	// interval time series. Hand in a zero-value &sim.Metrics{}; after
	// the run its Registry and Sampler fields are populated.
	Metrics *Metrics `json:"-"`
	// SampleEvery, when non-zero and Metrics is set, snapshots every
	// counter and gauge each SampleEvery cycles of the measurement
	// window (plus a final flush at the end of the run).
	SampleEvery uint64 `json:"-"`
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = NonSecure
	}
	if c.Instructions == 0 {
		c.Instructions = 300_000
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 500_000_000
	}
	if c.WatchdogWindow == 0 {
		c.WatchdogWindow = 200_000
	}
	if c.Warmup == 0 && !c.NoWarmup {
		c.Warmup = c.Instructions
		if c.Warmup > 400_000 {
			c.Warmup = 400_000
		}
	}
	if c.NoWarmup {
		c.Warmup = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Resolved returns the configuration with every default applied — the
// exact parameters RunWorkload will simulate for this config. Two configs
// with the same Resolved value (ignoring the observability hooks Trace,
// Metrics, and SampleEvery, which never change outcomes) produce identical
// results for the same workload; the campaign engine derives its
// content-addressed cache keys from it.
func (c Config) Resolved() Config { return c.withDefaults() }

// Result is the measurement record of one run.
type Result struct {
	Workload string
	Policy   Policy

	Cycles       uint64
	Instructions uint64
	IPC          float64

	// Table 3 characteristics.
	MispredictRate float64
	L1MissRate     float64

	// Table 5 / Figures 13-15.
	SquashPKI        float64 // squashes per kilo-instruction
	LoadsPerSquash   float64
	SquashedPctNI    float64
	SquashedPctL1H   float64
	SquashedPctL2H   float64
	SquashedPctL2M   float64
	InflightFrac     float64 // of squashed L1-misses, dropped in flight
	ExecutedFrac     float64 // of squashed L1-misses, cleaned after execute
	WaitPerSquash    float64 // cycles (Figure 14, inflight-wait part)
	CleanupPerSquash float64 // cycles (Figure 14, cleanup-ops part)

	Traffic memsys.Traffic
	CPU     cpu.Stats
	Mem     memsys.Stats

	// Metrics is the final counter snapshot of the run's metric registry
	// (nil unless Config.Metrics was set). The last interval sample's
	// counters equal this map exactly — samples are cumulative.
	Metrics map[string]uint64 `json:",omitempty"`
}

// buildPolicy instantiates the policy and its hierarchy configuration.
func buildPolicy(cfg Config) (cpu.Policy, memsys.Config, error) {
	hcfg := memsys.DefaultConfig(1)
	hcfg.Seed = cfg.Seed
	var pol cpu.Policy
	switch cfg.Policy {
	case NonSecure, "":
		pol = cpu.NonSecure{}
	case CleanupSpec:
		pol = core.NewWithConfig(core.Config{
			UseGetSSafe:         true,
			DisableRestore:      cfg.DisableRestore,
			ConstantTimeCleanup: arch.Cycle(cfg.ConstantTimeCleanup),
		})
		hcfg = core.HierarchyConfig(hcfg)
	case InvisiSpecInitial:
		pol = invisispec.New(invisispec.Initial)
	case InvisiSpecRevised:
		pol = invisispec.New(invisispec.Revised)
	case DelayAll:
		pol = policy.Delay{}
	case DelayOnMiss:
		pol = policy.DelayOnMiss{}
	case ValuePredict:
		pol = policy.NewValuePredict()
	default:
		return nil, hcfg, fmt.Errorf("sim: unknown policy %q", cfg.Policy)
	}
	if cfg.L1RandomRepl != nil {
		if *cfg.L1RandomRepl {
			hcfg.L1.Repl = cache.ReplRandom
		} else {
			hcfg.L1.Repl = cache.ReplLRU
		}
	}
	if cfg.RandomizeL2 != nil {
		hcfg.RandomizeL2 = *cfg.RandomizeL2
	}
	hcfg.L1.PartitionWays = cfg.L1PartitionWays
	hcfg.L2RemapEvery = cfg.L2RemapEvery
	return pol, hcfg, nil
}

// BuildPolicy instantiates the policy object and hierarchy configuration a
// config resolves to — the exact pair RunWorkload would simulate with.
// Harnesses that drive the core directly (the attack toolkit, the specfuzz
// differential oracle) use it so every policy spelling in the repo goes
// through one constructor.
func BuildPolicy(cfg Config) (cpu.Policy, memsys.Config, error) {
	pol, hcfg, err := buildPolicy(cfg.withDefaults())
	if err != nil {
		return nil, memsys.Config{}, err
	}
	return pol, hcfg, nil
}

// Workloads returns the names of the 19 SPEC-like workloads (Table 3
// order).
func Workloads() []string {
	var names []string
	for _, p := range workload.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// MTWorkloads returns the names of the 23 multithreaded profiles
// (Figure 9).
func MTWorkloads() []string {
	var names []string
	for _, p := range workload.MTProfiles() {
		names = append(names, p.Name)
	}
	return names
}

// RunWorkload simulates the named workload under cfg. The workload's cold
// footprint is prewarmed into the L2 (the paper fast-forwards 10 billion
// instructions before measuring, so its caches are warm).
func RunWorkload(name string, cfg Config) (Result, error) {
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return Result{}, fmt.Errorf("sim: unknown workload %q (see sim.Workloads)", name)
	}
	base, size := prof.ColdRegion()
	prog := prof.Build()
	return runProgram(name, prog, cfg, func(h *memsys.Hierarchy) {
		if cfg.NoWarmup {
			return
		}
		for off := 0; off < size; off += 64 {
			h.PrewarmL2(arch.Addr(base + uint64(off)).Line())
		}
		h.PrewarmICache(0, len(prog.Code))
	})
}

// RunProgram simulates an arbitrary program (built with NewProgram) under
// cfg.
func RunProgram(name string, prog *Program, cfg Config) (Result, error) {
	return runProgram(name, prog, cfg, nil)
}

func runProgram(name string, prog *Program, cfg Config, prewarm func(*memsys.Hierarchy)) (Result, error) {
	cfg = cfg.withDefaults()
	pol, hcfg, err := buildPolicy(cfg)
	if err != nil {
		return Result{}, err
	}
	h := memsys.New(hcfg)
	if prewarm != nil {
		prewarm(h)
	}
	ccfg := cpu.DefaultConfig()
	ccfg.MaxCycles = arch.Cycle(cfg.MaxCycles)
	ccfg.WatchdogWindow = arch.Cycle(cfg.WatchdogWindow)
	m := cpu.New(ccfg, prog, h, pol)
	if cfg.Trace != nil {
		m.AttachTracer(cfg.Trace)
	}
	if at, ok := cfg.Faults.StallCycle(); ok {
		m.InjectCommitStall(arch.Cycle(at))
	}
	if cfg.Warmup > 0 {
		m.Run(cfg.Warmup)
		if lerr := m.LivelockErr(); lerr != nil {
			return Result{}, fmt.Errorf("sim: %s (warmup): %w", name, lerr)
		}
		if !m.Halted() {
			m.ResetStats()
			h.ResetStats()
		}
	}
	// Instrumentation attaches after the warmup reset so histograms and
	// samples cover exactly the measurement window. Counter bindings are
	// pointers into the live stat structs, so they need no reset handling.
	var reg *metrics.Registry
	var smp *metrics.Sampler
	if cfg.Metrics != nil {
		reg = metrics.NewRegistry()
		m.AttachMetrics(reg)
		h.AttachMetrics(reg)
		if pa, ok := pol.(interface{ AttachMetrics(*metrics.Registry) }); ok {
			pa.AttachMetrics(reg)
		}
		smp = metrics.NewSampler(reg, cfg.SampleEvery)
		if smp != nil {
			m.AttachSampler(smp)
		}
		cfg.Metrics.Registry = reg
		cfg.Metrics.Sampler = smp
	}
	st := m.Run(cfg.Instructions)
	if lerr := m.LivelockErr(); lerr != nil {
		return Result{}, fmt.Errorf("sim: %s: %w", name, lerr)
	}
	if !m.Halted() && st.Committed < cfg.Instructions {
		return Result{}, fmt.Errorf("sim: %s stalled at %d/%d instructions", name, st.Committed, cfg.Instructions)
	}
	smp.Flush(st.Cycles)
	return makeResult(name, cfg, st, h, reg), nil
}

func makeResult(name string, cfg Config, st cpu.Stats, h *memsys.Hierarchy, reg *metrics.Registry) Result {
	r := Result{
		Workload:     name,
		Policy:       cfg.Policy,
		Cycles:       st.Cycles,
		Instructions: st.Committed,
		IPC:          st.IPC(),
		Traffic:      h.Traffic,
		CPU:          st,
		Mem:          h.Stats,
	}
	if st.BranchesCommitted > 0 {
		r.MispredictRate = float64(st.MispredictsCommitted) / float64(st.BranchesCommitted)
	}
	r.L1MissRate = h.L1(0).Stats.MissRate()
	if st.Committed > 0 {
		r.SquashPKI = float64(st.Squashes) / float64(st.Committed) * 1000
	}
	if st.Squashes > 0 {
		r.LoadsPerSquash = float64(st.SquashedLoads) / float64(st.Squashes)
		r.WaitPerSquash = float64(st.InflightWaitCycles) / float64(st.Squashes)
		r.CleanupPerSquash = float64(st.CleanupOpCycles) / float64(st.Squashes)
	}
	if st.SquashedLoads > 0 {
		tot := float64(st.SquashedLoads)
		r.SquashedPctNI = float64(st.SquashedLoadNI) / tot * 100
		r.SquashedPctL1H = float64(st.SquashedLoadL1H) / tot * 100
		r.SquashedPctL2H = float64(st.SquashedLoadL2H) / tot * 100
		r.SquashedPctL2M = float64(st.SquashedLoadL2M) / tot * 100
	}
	if misses := st.SquashedInflight + st.SquashedExecuted; misses > 0 {
		r.InflightFrac = float64(st.SquashedInflight) / float64(misses)
		r.ExecutedFrac = float64(st.SquashedExecuted) / float64(misses)
	}
	if reg != nil {
		r.Metrics = reg.Snapshot().Counters
	}
	return r
}

// --- re-exports for examples and downstream users ---

// Program is a runnable program image (see NewProgram).
type Program = isa.Program

// Branch conditions for ProgramBuilder.Br.
const (
	CondEQ  = isa.CondEQ
	CondNE  = isa.CondNE
	CondLTU = isa.CondLTU
	CondGEU = isa.CondGEU
	CondLT  = isa.CondLT
	CondGE  = isa.CondGE
)

// ALU kinds for ProgramBuilder.Alu / AluI.
const (
	AluAdd = isa.AluAdd
	AluSub = isa.AluSub
	AluAnd = isa.AluAnd
	AluOr  = isa.AluOr
	AluXor = isa.AluXor
	AluShl = isa.AluShl
	AluShr = isa.AluShr
	AluMul = isa.AluMul
	AluMix = isa.AluMix
)

// ProgramBuilder assembles custom programs instruction by instruction.
type ProgramBuilder = isa.Builder

// NewProgram creates a program builder.
func NewProgram(name string) *ProgramBuilder { return isa.NewBuilder(name) }

// Assemble parses the text assembly dialect (see internal/isa.Assemble's
// doc comment for the grammar) into a runnable Program.
func Assemble(name, src string) (*Program, error) { return isa.Assemble(name, src) }

// SpectreResult is the Figure 11 record for one policy.
type SpectreResult = attack.SpectreResult

// RunSpectre runs the Spectre Variant-1 PoC under a policy and returns the
// per-index average probe latencies (Figure 11).
func RunSpectre(p Policy, iterations int) (SpectreResult, error) {
	cfg := Config{Policy: p}.withDefaults()
	pol, hcfg, err := buildPolicy(cfg)
	if err != nil {
		return SpectreResult{}, err
	}
	scfg := attack.DefaultSpectreConfig()
	if iterations > 0 {
		scfg.Iterations = iterations
	}
	return attack.RunSpectreV1(pol, hcfg, scfg), nil
}

// MTResult is the Figure 9 record for one multithreaded workload.
type MTResult struct {
	Workload      string
	UnsafeFrac    float64 // loads to remote-M/E lines
	SafeDRAMFrac  float64
	SafeCacheFrac float64
}

// RunMTWorkload runs the 4-core characterization for one profile.
func RunMTWorkload(name string, steps int) (MTResult, error) {
	for _, p := range workload.MTProfiles() {
		if p.Name != name {
			continue
		}
		if steps <= 0 {
			steps = 20_000
		}
		st := multicore.New(p, 4).Run(steps)
		return MTResult{
			Workload:      name,
			UnsafeFrac:    st.UnsafeFrac(),
			SafeDRAMFrac:  st.SafeDRAMFrac(),
			SafeCacheFrac: st.SafeCacheFrac(),
		}, nil
	}
	return MTResult{}, fmt.Errorf("sim: unknown MT workload %q (see sim.MTWorkloads)", name)
}

// Metrics receives a run's metric registry and interval time series (see
// Config.Metrics). The underlying types live in internal/metrics; the
// exporters (WriteJSONL, WriteCSV, ExportChromeTrace) and histogram
// renderers are reachable through the Registry and Sampler fields.
type Metrics = metrics.Collector

// MetricSample is one interval snapshot of every counter and gauge.
type MetricSample = metrics.Sample

// TraceRing records structured execution events (see Config.Trace).
type TraceRing = trace.Ring

// TraceEvent is one recorded event.
type TraceEvent = trace.Event

// NewTraceRing creates a ring retaining the last capacity events.
func NewTraceRing(capacity int) *TraceRing { return trace.NewRing(capacity) }

// LivelockError is the forward-progress watchdog's structured diagnosis
// (see Config.WatchdogWindow); unwrap run errors with errors.As.
type LivelockError = cpu.LivelockError

// StorageOverheadBytes returns CleanupSpec's SEFE storage per core for the
// paper's configuration (Section 6.6).
func StorageOverheadBytes() int {
	return core.StorageBitsPerCore(32, 64, 64) / 8
}
