// Package smt drives two hardware threads — two cpu.Machines with the same
// core id, distinct thread ids, and one shared memory hierarchy — in
// lockstep. It exists to demonstrate the paper's SMT threat model
// (Section 3.6 / 4a): a sibling thread sharing the L1 may probe the cache
// *during* the speculation window, and CleanupSpec answers with dummy-miss
// servicing of speculatively installed lines plus NoMo-style way
// partitioning against eviction observation.
package smt

import (
	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
)

// Pair is a 2-way SMT core: threads A (id 0) and B (id 1).
type Pair struct {
	A, B *cpu.Machine
	Hier *memsys.Hierarchy
}

// Config bundles the pair's construction parameters.
type Config struct {
	Hierarchy memsys.Config
	Core      cpu.Config
	ProgA     *isa.Program
	ProgB     *isa.Program
	PolA      cpu.Policy
	PolB      cpu.Policy
}

// NewPair builds the SMT pair. The hierarchy is shared; each thread gets
// its own architectural state, load/store queues, and predictor (a
// simplification — real SMT shares the predictor arrays — that does not
// affect the cache-channel experiments this package exists for).
func NewPair(cfg Config) *Pair {
	return newDuo(cfg, 0, 0, 0, 1)
}

// NewCrossCorePair builds two full pipelines on *different cores* sharing
// the L2 and directory — the paper's CrossCore adversary model (Section 4).
// The hierarchy configuration must have NumCores >= 2.
func NewCrossCorePair(cfg Config) *Pair {
	return newDuo(cfg, 0, 1, 0, 0)
}

func newDuo(cfg Config, coreA, coreB, threadA, threadB int) *Pair {
	h := memsys.New(cfg.Hierarchy)
	// The window experiments assume steady state: code is warm (cold
	// I-cache misses would shift the carefully aligned probe windows).
	h.PrewarmICache(coreA, len(cfg.ProgA.Code))
	h.PrewarmICache(coreB, len(cfg.ProgB.Code))
	ca := cfg.Core
	ca.CoreID = coreA
	ca.ThreadID = threadA
	cb := cfg.Core
	cb.CoreID = coreB
	cb.ThreadID = threadB
	return &Pair{
		A:    cpu.New(ca, cfg.ProgA, h, cfg.PolA),
		B:    cpu.New(cb, cfg.ProgB, h, cfg.PolB),
		Hier: h,
	}
}

// Run steps both threads in lockstep until both halt or the cycle budget
// runs out. It reports whether both halted.
func (p *Pair) Run(maxCycles arch.Cycle) bool {
	for c := arch.Cycle(0); c < maxCycles; c++ {
		p.A.Step()
		p.B.Step()
		if p.A.Halted() && p.B.Halted() {
			return true
		}
	}
	return p.A.Halted() && p.B.Halted()
}
