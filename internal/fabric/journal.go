package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/campaign"
	"repro/internal/faultinject"
)

// Lease lifecycle operations journaled to fabric.jsonl.
const (
	OpLease    = "lease"
	OpRenew    = "renew"
	OpComplete = "complete"
	OpExpire   = "expire"
)

// LeaseRow is one lease lifecycle event: a single appended JSONL line.
// Every field is a scalar, so the encoding is deterministic (wireenc).
type LeaseRow struct {
	Op     string `json:"op"`
	Key    string `json:"key"`
	Worker string `json:"worker,omitempty"`
	Lease  uint64 `json:"lease"`
	// Tick is the coordinator's logical clock when the event happened.
	Tick uint64 `json:"tick"`
	// ExpiryTick is when the lease dies unless renewed (lease/renew rows).
	ExpiryTick uint64 `json:"expiry_tick,omitempty"`
	// Status is the cell outcome (complete rows).
	Status string `json:"status,omitempty"`
}

// leaseHeader is the journal's first line.
type leaseHeader struct {
	Fabric int    `json:"fabric"` // journal format version
	Grid   string `json:"grid"`
	Schema int    `json:"schema"`
}

// LeaseLogPath returns the lease journal location for a cache dir — next
// to manifest.jsonl, sharing its crash-tolerance story.
func LeaseLogPath(cacheDir string) string {
	return filepath.Join(cacheDir, "fabric.jsonl")
}

// LeaseLog is the coordinator's append-only lease journal. Like the
// campaign manifest it is crash-tolerant by construction: every event is
// one O_APPEND line, a coordinator killed mid-write tears at most the
// final line (dropped and counted on load), and the first append after a
// torn tail self-heals it with a newline so the fragment stays one
// droppable line.
//
// The journal is an audit trail and a restart accelerator, never the
// source of truth: on restart the coordinator rebuilds cell states by
// probing the verified cache, and uses the journal's completed set only
// for cross-checking and for its dup/stale counters. A lease row with no
// matching complete is exactly the SIGKILL'd-worker signature — the cell
// simply gets re-leased.
type LeaseLog struct {
	// Faults injects append faults for chaos tests (nil = disabled). The
	// lease journal shares the manifest's append fault site: both are
	// single-line JSONL appends with identical torn-write semantics.
	Faults *faultinject.Injector

	mu           sync.Mutex
	grid         string
	path         string
	journal      *os.File
	dropped      int // torn lines discarded during load
	dupCompletes int // repeat complete rows for an already-completed key

	open      map[string]LeaseRow // live leases by key (replayed state)
	completed map[string]string   // key → status, first complete wins
}

// OpenLeaseLog opens (creating if needed) the lease journal for a cache
// dir, replaying any existing rows. Torn lines are dropped and counted; a
// duplicated complete — the stale-lease double-completion race, or a
// crash between accept and append — is counted and otherwise ignored, so
// a journal bearing either scar loads clean and the campaign resumes.
func OpenLeaseLog(cacheDir, grid string) (*LeaseLog, error) {
	l := &LeaseLog{
		grid:      grid,
		path:      LeaseLogPath(cacheDir),
		open:      make(map[string]LeaseRow),
		completed: make(map[string]string),
	}
	data, err := os.ReadFile(l.path)
	if os.IsNotExist(err) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("fabric: reading lease journal: %w", err)
	}
	sawHeader := false
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if !sawHeader {
			var h leaseHeader
			if json.Unmarshal(line, &h) != nil || h.Fabric == 0 {
				// Header torn or foreign: restart the journal. The cache is
				// the source of truth, so nothing is lost but counters.
				l.dropped++
			} else {
				l.grid = h.Grid
			}
			sawHeader = true
			continue
		}
		var row LeaseRow
		if json.Unmarshal(line, &row) != nil || row.Op == "" || row.Key == "" {
			l.dropped++
			continue
		}
		l.replayLocked(row)
	}
	return l, nil
}

// replayLocked folds one row into the in-memory lease state. Caller holds
// l.mu (or is still single-threaded in OpenLeaseLog).
func (l *LeaseLog) replayLocked(row LeaseRow) {
	switch row.Op {
	case OpLease, OpRenew:
		l.open[row.Key] = row
	case OpComplete:
		if _, done := l.completed[row.Key]; done {
			l.dupCompletes++
			return // first complete wins; the repeat is the stale twin
		}
		l.completed[row.Key] = row.Status
		delete(l.open, row.Key)
	case OpExpire:
		delete(l.open, row.Key)
	default:
		l.dropped++ // unknown op from a future format: droppable, not fatal
	}
}

// Append journals one lease event — a single O_APPEND write, so a crash
// tears at most the final line. The in-memory state is updated even when
// the write fails: the journal is advisory, the coordinator's queue is
// authoritative.
func (l *LeaseLog) Append(row LeaseRow) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.replayLocked(row)
	line, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("fabric: encoding lease row: %w", err)
	}
	line = append(line, '\n')
	switch l.Faults.Check(faultinject.SiteManifestAppend) {
	case faultinject.KindError:
		return fmt.Errorf("fabric: lease journal append: %w", faultinject.ErrInjected)
	case faultinject.KindTruncate:
		// Simulated mid-append kill: half a line, no newline. Load must
		// drop it; the next append must self-heal the tail.
		line = line[:len(line)/2]
	default:
		// KindNone and kinds scheduled for other sites: append proceeds.
	}
	if err := l.appendLocked(line); err != nil {
		return fmt.Errorf("fabric: lease journal append: %w", err)
	}
	return nil
}

// appendLocked writes one raw line, lazily opening the journal, writing
// the header when the file is new, and healing a torn tail left by a
// previous crash. Caller holds l.mu.
func (l *LeaseLog) appendLocked(line []byte) error {
	if l.journal == nil {
		st, statErr := os.Stat(l.path)
		fresh := statErr != nil || st.Size() == 0
		f, err := os.OpenFile(l.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		l.journal = f
		if fresh {
			hdr, err := json.Marshal(leaseHeader{Fabric: 1, Grid: l.grid, Schema: campaign.SchemaVersion})
			if err != nil {
				return err
			}
			if _, err := l.journal.Write(append(hdr, '\n')); err != nil {
				return err
			}
		} else if st != nil && st.Size() > 0 {
			// Terminate a torn final fragment so it stays one droppable
			// line instead of swallowing the row appended after it.
			var last [1]byte
			if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
				if _, err := l.journal.Write([]byte{'\n'}); err != nil {
					return err
				}
			}
		}
	}
	_, err := l.journal.Write(line)
	return err
}

// Close releases the journal handle.
func (l *LeaseLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.journal == nil {
		return nil
	}
	err := l.journal.Close()
	l.journal = nil
	return err
}

// Dropped returns how many torn or foreign lines load and replay dropped.
func (l *LeaseLog) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// DupCompletes returns how many repeat complete rows were replayed — the
// on-disk residue of stale-lease double completions.
func (l *LeaseLog) DupCompletes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dupCompletes
}

// OpenLeases returns the replayed live leases (keys with a lease/renew row
// and no complete/expire): after a coordinator crash, these are the cells
// whose workers may still be running — or may be gone. Either way they
// re-queue; a stale worker's eventual completion is accepted harmlessly.
func (l *LeaseLog) OpenLeases() []LeaseRow {
	l.mu.Lock()
	defer l.mu.Unlock()
	rows := make([]LeaseRow, 0, len(l.open))
	for _, row := range l.open {
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
	return rows
}

// Completed returns the replayed key → status completion map.
func (l *LeaseLog) Completed() map[string]string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]string, len(l.completed))
	//simlint:ordered -- map-to-map copy; the result's shape is order-free
	for k, v := range l.completed {
		out[k] = v
	}
	return out
}
