package campaign

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/sim"
)

// spanGrid is a small grid for the tracing-identity tests: wide enough to
// keep an 8-worker pool busy, small enough to simulate quickly.
func spanGrid() Grid {
	return Grid{
		Name:         "spans",
		Workloads:    []string{"astar", "gcc"},
		Policies:     []sim.Policy{sim.NonSecure, sim.CleanupSpec},
		Seeds:        []uint64{1, 2},
		Instructions: 4_000,
	}
}

// TestTracingDoesNotChangeResults pins the observer property of the span
// plane: a campaign run with tracing attached must export byte-identical
// results to the same campaign untraced. Spans watch the engine; they may
// never steer it.
func TestTracingDoesNotChangeResults(t *testing.T) {
	jobs := spanGrid().Jobs()

	plain := NewEngine()
	plain.Workers = 4
	plainResults := plain.Run(jobs)

	traced := NewEngine()
	traced.Workers = 4
	sink := obs.NewSink()
	traced.Trace = obs.NewTracer(sink)
	tracedResults := traced.Run(jobs)

	var a, b strings.Builder
	if err := ResultsCSV(&a, plainResults); err != nil {
		t.Fatal(err)
	}
	if err := ResultsCSV(&b, tracedResults); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("traced campaign export differs from untraced export")
	}
	if len(sink.Spans()) == 0 {
		t.Fatal("traced run recorded no spans")
	}
}

// TestSpanJSONLWorkerCountInvariant pins span-plane determinism: the
// canonical span JSONL of a 1-worker run and an 8-worker run of the same
// grid must be byte-identical. Span identity is content-derived (job key,
// stage name, retry ordinal); only wall-clock fields vary with schedule,
// and the canonical form strips them.
func TestSpanJSONLWorkerCountInvariant(t *testing.T) {
	jobs := spanGrid().Jobs()

	run := func(workers int) []byte {
		t.Helper()
		eng := NewEngine()
		eng.Workers = workers
		sink := obs.NewSink()
		eng.Trace = obs.NewTracer(sink)
		for _, r := range eng.Run(jobs) {
			if r.Err != nil {
				t.Fatalf("job %s failed: %v", r.Job, r.Err)
			}
		}
		data, err := obs.CanonicalJSONL(sink.Spans())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	serial := run(1)
	pooled := run(8)
	if string(serial) != string(pooled) {
		t.Fatalf("canonical span JSONL differs between 1 and 8 workers:\n--- 1 worker ---\n%s\n--- 8 workers ---\n%s",
			firstDiffContext(string(serial), string(pooled)), "")
	}
	if len(serial) == 0 {
		t.Fatal("canonical span JSONL is empty")
	}
}

// firstDiffContext returns the first differing line pair, so a failure
// points at the offending span instead of dumping two full files.
func firstDiffContext(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return "line " + strconv.Itoa(i+1) + ":\n  1-worker: " + x + "\n  8-worker: " + y
		}
	}
	return "(no line-level difference found)"
}

