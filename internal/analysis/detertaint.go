package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerDeterTaint tracks nondeterminism the way it actually travels:
// as data. Three taint kinds are sourced —
//
//   - wall: time.Now / time.Since / time.Until
//   - rand: any call into math/rand or math/rand/v2
//   - maporder: the iterator sources maps.Keys / maps.Values (range-based
//     map-order dependence is the determinism analyzer's job; the iterator
//     form slips past a range-statement check)
//
// — and propagated interprocedurally: through assignments and expressions
// inside a function, through calls via per-function summaries (taint of a
// callee's returns, parameters that flow to returns), through struct
// fields and package variables written with tainted values anywhere in
// the module, and into closures via their own call-graph nodes.
//
// A finding is reported only where taint reaches a determinism-sensitive
// sink:
//
//   - seed/identity derivation: arguments to xrand.Hash*/xrand.New and to
//     crypto hash inputs (sha256.Sum256 and friends, hash.Hash.Write) —
//     the repo's cache keys, span IDs, and replacement decisions all
//     derive from these;
//   - stats accumulation: assignments into fields of *Stats structs;
//   - sink parameters: a parameter that (transitively) flows into one of
//     the above inside its function makes every call site a sink too —
//     campaign.Key and the span-ID helpers become sinks automatically.
//
// Because only source→sink *flows* are findings, reporting-only wall
// reads (progress ETA, span wall stamps that the canonical export form
// strips) are proven safe and need no directive — the syntactic time.Now
// check this replaces demanded one at every such site. Direct calls into
// math/rand are still reported unconditionally: simulator randomness must
// flow through explicitly seeded internal/xrand generators, and there is
// no reporting-only excuse for ambient randomness. JSONL export is
// deliberately NOT a wall sink: exports may carry wall stamps as long as
// their canonical comparison form strips them, which the byte-identity
// tests enforce.
var AnalyzerDeterTaint = &Analyzer{
	Name: "detertaint",
	Doc:  "track wall-clock, math/rand, and map-order taint through calls, fields, and closures into key/ID/stats sinks",
	Run:  runDeterTaint,
}

// taintSet is a bitmask of taint kinds.
type taintSet uint8

const (
	taintWall taintSet = 1 << iota
	taintRand
	taintMaporder

	taintAll = taintWall | taintRand | taintMaporder
)

// describe renders the kinds present in t for messages.
func (t taintSet) describe() string {
	var parts []string
	if t&taintWall != 0 {
		parts = append(parts, "the wall clock (time.Now)")
	}
	if t&taintRand != 0 {
		parts = append(parts, "math/rand")
	}
	if t&taintMaporder != 0 {
		parts = append(parts, "map iteration order")
	}
	return strings.Join(parts, " and ")
}

// taintVal is the dataflow value: the taint kinds an expression may
// carry, plus a bitmask of the enclosing function's parameters it may
// derive from (for building call summaries; parameters beyond 32 are
// untracked).
type taintVal struct {
	k taintSet
	p uint32
}

func (v taintVal) union(o taintVal) taintVal { return taintVal{k: v.k | o.k, p: v.p | o.p} }

// taintFacts is the module-wide taint model, built bottom-up over the
// call graph.
type taintFacts struct {
	g *callGraph
	// ret summarizes a function's returns: taint generated inside it, and
	// which of its parameters flow to a result.
	ret map[*cgNode]taintVal
	// sinkParams marks, per parameter, the taint kinds that parameter
	// feeds into a sink inside the function (directly or transitively).
	sinkParams map[*cgNode][]taintSet
	// fields carries taint through struct fields and package-level vars
	// assigned tainted values anywhere in the module.
	fields map[*types.Var]taintSet
}

// taintModel builds the module taint summaries once per Runner.
func (r *Runner) taintModel(mod *Module) *taintFacts {
	r.taintOnce.Do(func() {
		tf := &taintFacts{
			g:          r.callGraph(mod),
			ret:        make(map[*cgNode]taintVal),
			sinkParams: make(map[*cgNode][]taintSet),
			fields:     make(map[*types.Var]taintSet),
		}
		tf.g.fixpoint(tf.updateNode)
		r.taints = tf
	})
	return r.taints
}

// updateNode recomputes one function's contributions to the global model
// (return summary, sink parameters, field taint) and reports whether
// anything grew.
func (tf *taintFacts) updateNode(n *cgNode) bool {
	env := tf.localEnv(n)
	changed := false

	walkShallow(n.body, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.ReturnStmt:
			for _, e := range m.Results {
				v := tf.exprTaint(n, env, e)
				old := tf.ret[n]
				merged := old.union(v)
				if merged != old {
					tf.ret[n] = merged
					changed = true
				}
			}
		case *ast.AssignStmt:
			if tf.recordFieldWrites(n, env, m) {
				changed = true
			}
		case *ast.CompositeLit:
			if tf.recordCompositeWrites(n, env, m) {
				changed = true
			}
		case *ast.CallExpr:
			if tf.recordSinkParams(n, env, m) {
				changed = true
			}
		}
	})
	return changed
}

// localEnv computes the (flow-insensitive) taint of each local variable
// of n's body under the current global facts, iterating to a fixpoint.
// Parameters are seeded with their param bit.
func (tf *taintFacts) localEnv(n *cgNode) map[*types.Var]taintVal {
	env := make(map[*types.Var]taintVal)
	params := paramVars(n)
	for i, pv := range params {
		if i < 32 {
			env[pv] = taintVal{p: 1 << i}
		}
	}
	for changed := true; changed; {
		changed = false
		merge := func(v *types.Var, val taintVal) {
			if v == nil {
				return
			}
			old := env[v]
			m := old.union(val)
			if m != old {
				env[v] = m
				changed = true
			}
		}
		walkShallow(n.body, func(m ast.Node) {
			switch m := m.(type) {
			case *ast.RangeStmt:
				t := n.pkg.Info.TypeOf(m.X)
				if t == nil {
					return
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return
				}
				for _, bind := range []ast.Expr{m.Key, m.Value} {
					if id, ok := bind.(*ast.Ident); ok && id.Name != "_" {
						merge(localVar(n.pkg, id), taintVal{k: taintMaporder})
					}
				}
			case *ast.AssignStmt:
				if len(m.Lhs) == len(m.Rhs) {
					for i, lhs := range m.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							merge(localVar(n.pkg, id), tf.exprTaint(n, env, m.Rhs[i]))
						}
					}
				} else if len(m.Rhs) == 1 {
					// Tuple assignment: every LHS gets the call's taint.
					v := tf.exprTaint(n, env, m.Rhs[0])
					for _, lhs := range m.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							merge(localVar(n.pkg, id), v)
						}
					}
				}
			}
		})
	}
	return env
}

// exprTaint evaluates the taint an expression may carry under env.
func (tf *taintFacts) exprTaint(n *cgNode, env map[*types.Var]taintVal, e ast.Expr) taintVal {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := n.pkg.Info.Uses[e].(*types.Var); ok {
			if val, ok := env[v]; ok {
				return val
			}
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return taintVal{k: tf.fields[v]}
			}
		}
		return taintVal{}
	case *ast.SelectorExpr:
		if fv := selectedField(n.pkg, e); fv != nil {
			return tf.exprTaint(n, env, e.X).union(taintVal{k: tf.fields[fv]})
		}
		if v, ok := n.pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return taintVal{k: tf.fields[v]} // pkgname.Var
		}
		return tf.exprTaint(n, env, e.X)
	case *ast.CallExpr:
		return tf.callTaint(n, env, e)
	case *ast.ParenExpr:
		return tf.exprTaint(n, env, e.X)
	case *ast.StarExpr:
		return tf.exprTaint(n, env, e.X)
	case *ast.UnaryExpr:
		return tf.exprTaint(n, env, e.X)
	case *ast.BinaryExpr:
		return tf.exprTaint(n, env, e.X).union(tf.exprTaint(n, env, e.Y))
	case *ast.IndexExpr:
		return tf.exprTaint(n, env, e.X).union(tf.exprTaint(n, env, e.Index))
	case *ast.SliceExpr:
		return tf.exprTaint(n, env, e.X)
	case *ast.TypeAssertExpr:
		return tf.exprTaint(n, env, e.X)
	case *ast.CompositeLit:
		var out taintVal
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				out = out.union(tf.exprTaint(n, env, kv.Value))
			} else {
				out = out.union(tf.exprTaint(n, env, el))
			}
		}
		return out
	}
	return taintVal{}
}

// callTaint evaluates the taint of a call's results: sources, laundering
// sorts, module summaries, and conservative propagation through external
// functions (a stdlib call's result is as tainted as its arguments).
func (tf *taintFacts) callTaint(n *cgNode, env map[*types.Var]taintVal, call *ast.CallExpr) taintVal {
	argUnion := func() taintVal {
		var out taintVal
		for _, a := range call.Args {
			out = out.union(tf.exprTaint(n, env, a))
		}
		return out
	}
	if fn := calleeFunc(n.pkg, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				return taintVal{k: taintWall}
			}
		case "math/rand", "math/rand/v2":
			return argUnion().union(taintVal{k: taintRand})
		case "maps":
			switch fn.Name() {
			case "Keys", "Values":
				return argUnion().union(taintVal{k: taintMaporder})
			}
		}
	}
	if isSortingCall(n.pkg, call) {
		// Sorting launders map-iteration order: slices.Sorted(maps.Keys(m))
		// is THE blessed idiom.
		v := argUnion()
		v.k &^= taintMaporder
		return v
	}
	if callees := tf.g.calleesOf(n.pkg, call); len(callees) > 0 {
		var out taintVal
		for _, callee := range callees {
			sum := tf.ret[callee]
			out.k |= sum.k
			// A parameter flowing to the callee's result carries the
			// argument's taint back out.
			for i, a := range call.Args {
				if i < 32 && sum.p&(1<<i) != 0 {
					out = out.union(tf.exprTaint(n, env, a))
				}
			}
		}
		// Method calls: the receiver's taint also flows (conservatively).
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			out = out.union(tf.exprTaint(n, env, sel.X))
		}
		return out
	}
	// External (stdlib) call: results as tainted as the arguments.
	out := argUnion()
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		out = out.union(tf.exprTaint(n, env, sel.X))
	}
	return out
}

// paramVars returns the parameter variables of a node in order (declared
// functions and literals alike).
func paramVars(n *cgNode) []*types.Var {
	var ft *ast.FuncType
	switch {
	case n.decl != nil:
		ft = n.decl.Type
	case n.lit != nil:
		ft = n.lit.Type
	}
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []*types.Var
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := n.pkg.Info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}

// localVar resolves an assignment target to the variable it names (uses
// and short-variable definitions both count).
func localVar(pkg *Package, id *ast.Ident) *types.Var {
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// recordFieldWrites merges RHS taint into the global field-taint map for
// assignments whose target is a struct field or package-level var.
func (tf *taintFacts) recordFieldWrites(n *cgNode, env map[*types.Var]taintVal, as *ast.AssignStmt) bool {
	changed := false
	write := func(v *types.Var, val taintVal) {
		if v == nil || val.k == 0 {
			return
		}
		if tf.fields[v]|val.k != tf.fields[v] {
			tf.fields[v] |= val.k
			changed = true
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		val := tf.exprTaint(n, env, as.Rhs[i])
		if fv := selectedField(n.pkg, sel); fv != nil {
			write(fv, val)
		} else if v, ok := n.pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			write(v, val)
		}
	}
	return changed
}

// recordCompositeWrites taints struct fields initialized from tainted
// expressions in composite literals (Sink{base: time.Now()}).
func (tf *taintFacts) recordCompositeWrites(n *cgNode, env map[*types.Var]taintVal, cl *ast.CompositeLit) bool {
	st, ok := compositeStruct(n.pkg, cl)
	if !ok {
		return false
	}
	changed := false
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		val := tf.exprTaint(n, env, kv.Value)
		if val.k == 0 {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if fv.Name() == key.Name && tf.fields[fv]|val.k != tf.fields[fv] {
				tf.fields[fv] |= val.k
				changed = true
			}
		}
	}
	return changed
}

// compositeStruct resolves a composite literal to its struct type.
func compositeStruct(pkg *Package, cl *ast.CompositeLit) (*types.Struct, bool) {
	t := pkg.Info.TypeOf(cl)
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// recordSinkParams notes which of n's parameters flow into a sink at this
// call site, so the sink propagates to n's callers.
func (tf *taintFacts) recordSinkParams(n *cgNode, env map[*types.Var]taintVal, call *ast.CallExpr) bool {
	sens := tf.callSinkSensitivities(n.pkg, call)
	if sens == nil {
		return false
	}
	changed := false
	nparams := len(paramVars(n))
	for ai, a := range call.Args {
		s := sens(ai)
		if s == 0 {
			continue
		}
		v := tf.exprTaint(n, env, a)
		for pi := 0; pi < nparams && pi < 32; pi++ {
			if v.p&(1<<pi) == 0 {
				continue
			}
			sp := tf.sinkParams[n]
			if sp == nil {
				sp = make([]taintSet, nparams)
				tf.sinkParams[n] = sp
			}
			if sp[pi]|s != sp[pi] {
				sp[pi] |= s
				changed = true
			}
		}
	}
	return changed
}

// callSinkSensitivities classifies a call as a sink: it returns a
// per-argument sensitivity function, or nil when the call is no sink.
// Direct sinks are xrand seed/ID derivations and crypto hash inputs;
// module calls whose callee has sink parameters are transitive sinks.
func (tf *taintFacts) callSinkSensitivities(pkg *Package, call *ast.CallExpr) func(argIdx int) taintSet {
	if desc, sens := directSink(pkg, call); desc != "" {
		return func(int) taintSet { return sens }
	}
	var perParam []taintSet
	for _, callee := range tf.g.calleesOf(pkg, call) {
		for i, s := range tf.sinkParams[callee] {
			for len(perParam) <= i {
				perParam = append(perParam, 0)
			}
			perParam[i] |= s
		}
	}
	if perParam == nil {
		return nil
	}
	return func(i int) taintSet {
		if i < len(perParam) {
			return perParam[i]
		}
		return 0
	}
}

// directSink classifies a call as a direct sink, returning a description
// for messages and the taint kinds it is sensitive to.
func directSink(pkg *Package, call *ast.CallExpr) (string, taintSet) {
	fn := calleeFunc(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return "", 0
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	switch {
	case isXrandPath(path) && (strings.HasPrefix(name, "Hash") || name == "New"):
		return "the xrand." + name + " seed/ID derivation", taintAll
	case strings.HasPrefix(path, "crypto/") && strings.HasPrefix(name, "Sum"):
		return "a " + fn.Pkg().Name() + "." + name + " hash input", taintAll
	case (path == "hash" || strings.HasPrefix(path, "crypto/") || strings.HasPrefix(path, "hash/")) && name == "Write":
		return "a hash input", taintAll
	}
	return "", 0
}

// isXrandPath reports whether a package path is the module's blessed
// seeded-randomness package (matched by suffix so golden testdata modules
// qualify too).
func isXrandPath(path string) bool {
	return path == "internal/xrand" || strings.HasSuffix(path, "/internal/xrand") || strings.HasSuffix(path, "/xrand")
}

// statsSinkField reports whether an assignment target is a field of a
// *Stats struct (stats accumulation must stay deterministic so serial and
// parallel runs export identical numbers). Map-order taint is exempt:
// commutative accumulation over a map is order-independent.
func statsSinkField(pkg *Package, lhs ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selInfo, ok := pkg.Info.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return "", false
	}
	named := derefNamed(selInfo.Recv())
	if named == nil || !strings.HasSuffix(named.Obj().Name(), "Stats") {
		return "", false
	}
	return named.Obj().Name() + "." + sel.Sel.Name, true
}

// runDeterTaint is the reporting pass: it walks every function of the
// package with its local taint environment and reports source→sink flows
// plus direct math/rand calls.
func runDeterTaint(p *Pass) {
	rel := p.Pkg.Rel()
	if !hasPathPrefix(rel, "internal") && !hasPathPrefix(rel, "sim") {
		return
	}
	if isXrandPath(p.Pkg.Types.Path()) {
		return // the blessed wrapper is allowed to be about randomness
	}
	tf := p.runner.taintModel(p.Mod)
	for _, n := range tf.g.nodes {
		if n.pkg != p.Pkg {
			continue
		}
		env := tf.localEnv(n)
		sorted := statementSortedVars(n)
		walkShallow(n.body, func(m ast.Node) {
			switch m := m.(type) {
			case *ast.CallExpr:
				reportCallFlows(p, tf, n, env, sorted, m)
			case *ast.AssignStmt:
				reportStatsFlows(p, tf, n, env, m)
			}
		})
	}
}

// reportCallFlows reports tainted arguments reaching sink calls, and
// direct calls into math/rand.
func reportCallFlows(p *Pass, tf *taintFacts, n *cgNode, env map[*types.Var]taintVal, sorted map[*types.Var]bool, call *ast.CallExpr) {
	if fn := calleeFunc(p.Pkg, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			p.Reportf(call.Pos(), "call into %s: simulator randomness must flow through explicitly seeded internal/xrand generators", fn.Pkg().Path())
			return
		}
	}
	desc, directSens := directSink(p.Pkg, call)
	var sens func(int) taintSet
	if desc != "" {
		sens = func(int) taintSet { return directSens }
	} else {
		sens = tf.callSinkSensitivities(p.Pkg, call)
		if sens == nil {
			return
		}
		desc = callName(call) + ", whose parameter feeds a key/ID/stats derivation"
	}
	for ai, a := range call.Args {
		s := sens(ai)
		if s == 0 {
			continue
		}
		v := tf.exprTaint(n, env, a)
		eff := v.k & s
		// A slice the function sorts at statement level has its iteration
		// order laundered even though the flow-insensitive env kept the bit.
		if id, ok := ast.Unparen(a).(*ast.Ident); ok && eff == taintMaporder {
			if lv := localVar(p.Pkg, id); lv != nil && sorted[lv] {
				eff = 0
			}
		}
		if eff == 0 {
			continue
		}
		p.Reportf(a.Pos(), "value derived from %s reaches %s: byte-identical replay breaks; derive it from seeds or cycle counts (or annotate //simlint:allow detertaint -- <why this cannot affect results>)",
			eff.describe(), desc)
	}
}

// reportStatsFlows reports tainted values assigned into *Stats fields.
func reportStatsFlows(p *Pass, tf *taintFacts, n *cgNode, env map[*types.Var]taintVal, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		field, ok := statsSinkField(p.Pkg, lhs)
		if !ok {
			continue
		}
		eff := tf.exprTaint(n, env, as.Rhs[i]).k & (taintWall | taintRand)
		if eff == 0 {
			continue
		}
		p.Reportf(as.Pos(), "value derived from %s reaches stats accumulation field %s: serial and parallel runs would export different numbers; derive it from seeds or cycle counts (or annotate //simlint:allow detertaint -- <why this cannot affect results>)",
			eff.describe(), field)
	}
}

// statementSortedVars collects the local slice vars that appear as the
// first argument of a statement-level sorting call anywhere in the body.
func statementSortedVars(n *cgNode) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	walkShallow(n.body, func(m ast.Node) {
		es, ok := m.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !isSortingCall(n.pkg, call) {
			return
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v := localVar(n.pkg, id); v != nil {
				out[v] = true
			}
		}
	})
	return out
}
