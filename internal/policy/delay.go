// Package policy holds the simpler delay-based baselines the paper's
// related-work section discusses (Context-Sensitive Fencing, Conditional
// Speculation, NDA/SpecShield-style delaying): speculative loads are held
// until they are unsquashable. It exists for ablation comparisons against
// CleanupSpec's Undo approach.
package policy

import (
	"repro/internal/arch"
	"repro/internal/cpu"
)

// Delay holds every speculative load until all older control flow has
// resolved, the strictest delay-based mitigation.
type Delay struct{}

// Name implements cpu.Policy.
func (Delay) Name() string { return "delay-all" }

// Mode implements cpu.Policy.
func (Delay) Mode(m *cpu.Machine, e *cpu.LQEntry, spec bool) cpu.LoadMode {
	if spec {
		return cpu.LoadDelayed
	}
	return cpu.LoadNormal
}

// DeferWakeupUntilVisible implements cpu.Policy.
func (Delay) DeferWakeupUntilVisible() bool { return false }

// OnLoadUnsquashable implements cpu.Policy.
func (Delay) OnLoadUnsquashable(*cpu.Machine, *cpu.LQEntry) {}

// OnLoadNearCommit implements cpu.Policy.
func (Delay) OnLoadNearCommit(*cpu.Machine, *cpu.LQEntry) {}

// CommitWait implements cpu.Policy.
func (Delay) CommitWait(*cpu.Machine, *cpu.LQEntry) arch.Cycle { return 0 }

// OnLoadCommitted implements cpu.Policy.
func (Delay) OnLoadCommitted(*cpu.Machine, *cpu.LQEntry) {}

// OnSquash implements cpu.Policy: delayed loads never touched the cache.
func (Delay) OnSquash(*cpu.Machine, []cpu.SquashedLoad) cpu.SquashCost {
	return cpu.SquashCost{}
}

// DropSquashedInflight implements cpu.Policy.
func (Delay) DropSquashedInflight() bool { return false }

// DelayOnMiss is the Conditional Speculation baseline (Li et al., HPCA
// 2019): speculative loads that hit the L1 proceed (a hit \"leaks\" only
// replacement state), speculative misses are delayed until unsquashable.
// The paper positions CleanupSpec as both faster and more complete than
// such filters (Section 7.3.2).
type DelayOnMiss struct{}

// Name implements cpu.Policy.
func (DelayOnMiss) Name() string { return "delay-on-miss" }

// Mode implements cpu.Policy.
func (DelayOnMiss) Mode(m *cpu.Machine, e *cpu.LQEntry, spec bool) cpu.LoadMode {
	if spec {
		return cpu.LoadDelayOnMiss
	}
	return cpu.LoadNormal
}

// DeferWakeupUntilVisible implements cpu.Policy.
func (DelayOnMiss) DeferWakeupUntilVisible() bool { return false }

// OnLoadUnsquashable implements cpu.Policy.
func (DelayOnMiss) OnLoadUnsquashable(*cpu.Machine, *cpu.LQEntry) {}

// OnLoadNearCommit implements cpu.Policy.
func (DelayOnMiss) OnLoadNearCommit(*cpu.Machine, *cpu.LQEntry) {}

// CommitWait implements cpu.Policy.
func (DelayOnMiss) CommitWait(*cpu.Machine, *cpu.LQEntry) arch.Cycle { return 0 }

// OnLoadCommitted implements cpu.Policy.
func (DelayOnMiss) OnLoadCommitted(*cpu.Machine, *cpu.LQEntry) {}

// OnSquash implements cpu.Policy: delayed misses never touched the cache;
// speculative hits changed no tag state (the L1 uses its normal replacement
// policy here — the filter's known residual channel).
func (DelayOnMiss) OnSquash(*cpu.Machine, []cpu.SquashedLoad) cpu.SquashCost {
	return cpu.SquashCost{}
}

// DropSquashedInflight implements cpu.Policy.
func (DelayOnMiss) DropSquashedInflight() bool { return false }
