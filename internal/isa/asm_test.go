package isa

import (
	"strings"
	"testing"
)

func TestAssembleBasics(t *testing.T) {
	prog, err := Assemble("t", `
		; a tiny kernel
		.data 0x1000 7
		li   r1, 0x1000
		ld   r2, [r1]        # load the 7
		addi r3, r2, 35
		st   [r1+8], r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(prog)
	it.Run(0)
	if it.Reg(3) != 42 {
		t.Fatalf("r3 = %d", it.Reg(3))
	}
	if it.Memory().Read64(0x1008) != 42 {
		t.Fatal("store missing")
	}
}

func TestAssembleControlFlow(t *testing.T) {
	prog, err := Assemble("t", `
		li r1, 3
		li r9, 0
	loop:
		addi r9, r9, 10
		addi r1, r1, -1
		bne  r1, r0, loop
		call fn
		halt
	fn:
		addi r9, r9, 1
		ret
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(prog)
	it.Run(0)
	if it.Reg(9) != 31 {
		t.Fatalf("r9 = %d", it.Reg(9))
	}
}

func TestAssembleEquivalentToBuilder(t *testing.T) {
	asm := MustAssemble("a", `
		li  r1, 5
		mul r2, r1, r1
		shri r3, r2, 1
		jmp end
		nop
	end:
		halt
	`)
	b := NewBuilder("b")
	b.Li(1, 5)
	b.Alu(AluMul, 2, 1, 1)
	b.AluI(AluShr, 3, 2, 1)
	b.Jmp("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	want := b.Build()
	if len(asm.Code) != len(want.Code) {
		t.Fatalf("length %d vs %d", len(asm.Code), len(want.Code))
	}
	for i := range want.Code {
		if asm.Code[i] != want.Code[i] {
			t.Fatalf("instruction %d: %+v vs %+v", i, asm.Code[i], want.Code[i])
		}
	}
}

func TestAssembleMemOperandForms(t *testing.T) {
	prog, err := Assemble("t", `
		.data 0x2000 11
		li r1, 0x2010
		ld r2, [r1-16]
		clflush [r1-16]
		fence
		rdcycle r4
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	it := NewInterp(prog)
	it.Run(0)
	if it.Reg(2) != 11 {
		t.Fatalf("r2 = %d", it.Reg(2))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"li r99, 1",
		"li r1",
		"ld r1, r2", // not a memory operand
		"st [r1], r2, extra\nhalt\nbadline r",
		"beq r1, r2",    // missing label
		"jmp",           // missing label
		".data 5",       // missing value
		"jmp nowhere\n", // undefined label (caught at Build)
		"dup:\ndup:\nhalt",
	}
	for _, src := range cases {
		if _, err := Assemble("bad", src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
	if !strings.Contains(errOf(Assemble("bad", "li r1")), "bad:1") {
		t.Error("error must carry file:line")
	}
}

func errOf(_ *Program, err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustAssemble("bad", "bogus")
}
