package specfuzz

import (
	"encoding/json"
	"fmt"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/sim"
)

// Kind is the campaign cell kind for differential-pair fuzz cells. One
// cell is one (gadget, policy) oracle invocation: Job.Workload carries the
// gadget ID (so manifest rows read like "g0042/cleanupspec"), Job.Config
// carries the policy under test and the hierarchy seed, and Job.Cell
// carries the full gadget spec — all three feed the content-addressed
// cache key, so any change to the gadget or the configuration is a new
// cell and an unchanged one replays from the cache.
const Kind = campaign.CellKind("specfuzz")

// CellPayload is the Job.Cell JSON for a fuzz cell.
type CellPayload struct {
	Spec GadgetSpec `json:"spec"`
}

// NewJob builds the campaign job for one (gadget, policy) cell.
func NewJob(spec GadgetSpec, policy sim.Policy, seed uint64) (campaign.Job, error) {
	if err := spec.Validate(); err != nil {
		return campaign.Job{}, err
	}
	cell, err := json.Marshal(CellPayload{Spec: spec})
	if err != nil {
		return campaign.Job{}, fmt.Errorf("specfuzz: encoding cell for %s: %w", spec.ID, err)
	}
	return campaign.Job{
		Kind:     Kind,
		Workload: spec.ID,
		Config:   sim.Config{Policy: policy, Seed: seed},
		Cell:     cell,
	}, nil
}

// Register installs the fuzz-cell executor on a campaign engine. The
// executor reads e.Trace at call time, so oracle phases land in the same
// span sink as the engine's own stage spans when tracing is on.
func Register(e *campaign.Engine) {
	e.RegisterCell(Kind, func(job campaign.Job) (sim.Result, json.RawMessage, error) {
		return runCell(job, e.Trace)
	})
}

// RunCell is the CellFunc for Kind: it decodes the gadget spec, runs the
// differential pair under the job's policy, and returns the verdict as the
// cell's Aux payload. The sim.Result half carries just enough identity for
// the shared reporting surfaces (manifest rows, status tables).
func RunCell(job campaign.Job) (sim.Result, json.RawMessage, error) {
	return runCell(job, nil)
}

func runCell(job campaign.Job, tr *obs.Tracer) (sim.Result, json.RawMessage, error) {
	var payload CellPayload
	if err := json.Unmarshal(job.Cell, &payload); err != nil {
		return sim.Result{}, nil, fmt.Errorf("specfuzz: decoding cell payload for %s: %w", job.Workload, err)
	}
	if payload.Spec.ID != job.Workload {
		return sim.Result{}, nil, fmt.Errorf("specfuzz: cell payload names gadget %q but job names %q", payload.Spec.ID, job.Workload)
	}
	v, err := RunPairTraced(payload.Spec, job.Config, tr)
	if err != nil {
		return sim.Result{}, nil, err
	}
	aux, err := json.Marshal(v)
	if err != nil {
		return sim.Result{}, nil, fmt.Errorf("specfuzz: encoding verdict for %s: %w", job.Workload, err)
	}
	res := sim.Result{Workload: job.Workload, Policy: job.Config.Policy}
	return res, aux, nil
}

// DecodeVerdict unpacks a fuzz cell's Aux payload.
func DecodeVerdict(aux json.RawMessage) (Verdict, error) {
	var v Verdict
	if len(aux) == 0 {
		return v, fmt.Errorf("specfuzz: cell result has no verdict payload")
	}
	if err := json.Unmarshal(aux, &v); err != nil {
		return v, fmt.Errorf("specfuzz: decoding verdict: %w", err)
	}
	return v, nil
}
