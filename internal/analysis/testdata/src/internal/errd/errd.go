// Package errd is the errdiscipline analyzer's golden input.
package errd

import "errors"

// Divide panics instead of returning an error: flagged.
func Divide(a, b int) int {
	if b == 0 {
		panic("divide by zero") // want `panic in a simulation package`
	}
	return a / b
}

// DivideErr is the sanctioned shape.
func DivideErr(a, b int) (int, error) {
	if b == 0 {
		return 0, errors.New("divide by zero")
	}
	return a / b, nil
}

// mustPositive is a must* helper: its documented contract is to panic.
func mustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}

// Capacity relies on the allowed helper and an annotated invariant.
func Capacity(n int) int {
	n = mustPositive(n)
	if n > 1<<20 {
		//simlint:allow errdiscipline -- construction-time bound check in the golden input
		panic("capacity too large")
	}
	return n
}

// badDirective carries a directive without a justification, which is
// itself reported (and therefore does not suppress the panic).
func badDirective() {
	//simlint:allow errdiscipline // want `//simlint:allow without a justification`
	panic("unjustified") // want `panic in a simulation package`
}

// swallow recovers without justification: flagged, since a quiet recover
// hides engine faults.
func swallow(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil { // want `recover in a simulation package`
			err = errors.New("swallowed")
		}
	}()
	f()
	return nil
}

// mustRecover shows that a must* name does not sanction recover the way
// it sanctions panic.
func mustRecover(f func()) {
	defer func() {
		recover() // want `recover in a simulation package`
	}()
	f()
}

// quarantine is the sanctioned recovery shape: an annotated isolation
// boundary that converts the panic into evidence.
func quarantine(f func()) (err error) {
	defer func() {
		//simlint:allow errdiscipline -- isolation boundary in the golden input: the panic becomes a quarantined error
		if r := recover(); r != nil {
			err = errors.New("quarantined")
		}
	}()
	f()
	return nil
}
