package campaign

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/sim"
)

// chaosJobs is a tiny grid sized so a hundred-odd full campaign runs stay
// fast: two workloads, short instruction budgets, a tight watchdog so an
// injected commit stall fails in thousands of cycles rather than burning
// to MaxCycles.
func chaosJobs() []Job {
	g := Grid{
		Name:         "chaos",
		Workloads:    []string{"astar", "gcc"},
		Policies:     []sim.Policy{sim.NonSecure},
		Seeds:        []uint64{1},
		Instructions: 2_000,
	}
	jobs := g.Jobs()
	for i := range jobs {
		jobs[i].Config.NoWarmup = true
		jobs[i].Config.MaxCycles = 3_000_000
		jobs[i].Config.WatchdogWindow = 5_000
	}
	return jobs
}

// chaosRun executes one campaign over the chaos grid with the given fault
// injector wired into every layer, guarded by a hard wall-clock timeout:
// a hung run is itself a test failure ("every run terminates").
func chaosRun(t *testing.T, dir string, inj *faultinject.Injector) []JobResult {
	t.Helper()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.Faults = inj
	eng := NewEngine()
	eng.Workers = 2
	eng.sleep = func(time.Duration) {}
	eng.Cache = cache
	eng.Faults = inj
	eng.Reporter = NewReporter(io.Discard)
	m, ok := LoadManifest(dir)
	if !ok {
		m = NewManifest(dir, "chaos")
	}
	m.Faults = inj
	eng.Manifest = m

	done := make(chan []JobResult, 1)
	go func() { done <- eng.Run(chaosJobs()) }()
	select {
	case results := <-done:
		return results
	case <-time.After(2 * time.Minute):
		t.Fatal("chaos run did not terminate")
		return nil
	}
}

// TestChaosSchedules is the fault-injection property test: across 100+
// seeded fault schedules, every campaign run terminates, fsck finds no
// corruption the read path did not already detect and contain, and a
// fault-free rerun over the surviving cache converges to a result export
// byte-identical to a never-faulted campaign.
func TestChaosSchedules(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 12
	}
	jobs := chaosJobs()

	// The fault-free reference export.
	refDir := t.TempDir()
	refResults := chaosRun(t, refDir, nil)
	if n := len(Failed(refResults)) + len(Quarantined(refResults)); n != 0 {
		t.Fatalf("%d jobs failed in the fault-free reference run", n)
	}
	var ref strings.Builder
	if err := ResultsCSV(&ref, refResults); err != nil {
		t.Fatal(err)
	}

	injected := 0 // across all seeds: guards the test against vacuity
	for seed := 1; seed <= seeds; seed++ {
		dir := t.TempDir()
		inj := faultinject.New(uint64(seed))

		// Phase 1: the faulted run. It must terminate (chaosRun enforces
		// that) — individual jobs may fail or be quarantined.
		chaosRun(t, dir, inj)
		injected += len(inj.Events())

		// Phase 2: fsck with prune. Whatever the faults left behind must
		// be detected damage, never a crash; prune clears it.
		if _, err := Fsck(dir, true); err != nil {
			t.Fatalf("seed %d: fsck: %v", seed, err)
		}

		// Phase 3: the fault-free rerun must converge — no failures, and
		// an export byte-identical to the never-faulted reference.
		results := chaosRun(t, dir, nil)
		if n := len(Failed(results)) + len(Quarantined(results)); n != 0 {
			for _, r := range results {
				if r.Err != nil {
					t.Errorf("seed %d: rerun job %s: %v", seed, r.Job, r.Err)
				}
			}
			t.Fatalf("seed %d: %d jobs failed on the fault-free rerun (schedule: %v)",
				seed, n, inj.Events())
		}
		var got strings.Builder
		if err := ResultsCSV(&got, results); err != nil {
			t.Fatal(err)
		}
		if got.String() != ref.String() {
			t.Fatalf("seed %d: rerun export diverged from fault-free reference\n got: %q\nwant: %q",
				seed, got.String(), ref.String())
		}

		rep, err := Fsck(dir, false)
		if err != nil {
			t.Fatalf("seed %d: final fsck: %v", seed, err)
		}
		if !rep.Clean() {
			t.Fatalf("seed %d: cache dirty after converged rerun: %s", seed, rep)
		}
		if got, want := len(jobs), rep.OK; got != want {
			t.Fatalf("seed %d: %d clean entries after rerun, want %d", seed, want, got)
		}
	}
	if injected < seeds {
		t.Fatalf("only %d faults fired across %d schedules — the chaos test is not exercising anything", injected, seeds)
	}
}
