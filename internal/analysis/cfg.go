package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of simlint's dataflow engine: a
// lightweight intra-procedural CFG built directly over go/ast, with no
// x/tools dependency (matching the PR 3 driver). Blocks hold the
// statements and conditions they execute in order; analyzers run the
// generic fixpoint solver in dataflow.go over the block graph and then
// replay block transfers to recover per-node facts.
//
// Coverage: if/else, for (all three clauses), range, switch (with
// fallthrough), type switch, select, labeled break/continue, return, and
// defer (kept in place as an ordinary node; analyzers that care about
// function-exit effects handle *ast.DeferStmt themselves). A function
// that uses goto or a bare label is not given a CFG — buildCFG returns
// nil and callers fall back to their conservative path — because an
// unstructured jump would invalidate the solver's path reasoning.

// block is one straight-line run of CFG nodes. A node is either a
// statement or a condition expression (if/for conditions appear as bare
// ast.Expr nodes so transfer functions see them in evaluation order).
type block struct {
	index int
	nodes []ast.Node
	succs []*block
	preds []*block
}

// cfg is the control-flow graph of one function body. entry is the first
// block executed; exit is a distinguished empty block every return (and
// the natural fall-off-the-end path) feeds into.
type cfg struct {
	blocks []*block
	entry  *block
	exit   *block
}

// labelTarget is the pair of jump destinations a labeled loop or switch
// exposes to break/continue statements naming it.
type labelTarget struct {
	brk  *block
	cont *block // nil for labeled switch/select
}

// cfgBuilder carries the per-construct break/continue targets while the
// graph is assembled.
type cfgBuilder struct {
	g      *cfg
	ok     bool // false once an unsupported construct (goto) is seen
	labels map[string]*labelTarget
}

// buildCFG constructs the CFG for one function body, or returns nil when
// the body uses a construct (goto, bare label) the engine cannot model
// soundly.
func buildCFG(body *ast.BlockStmt) *cfg {
	b := &cfgBuilder{g: &cfg{}, ok: true, labels: make(map[string]*labelTarget)}
	b.g.entry = b.newBlock()
	b.g.exit = b.newBlock()
	last := b.stmtList(b.g.entry, body.List, nil, nil)
	b.edge(last, b.g.exit)
	if !b.ok {
		return nil
	}
	for _, blk := range b.g.blocks {
		for _, s := range blk.succs {
			s.preds = append(s.preds, blk)
		}
	}
	return b.g
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// edge links cur to next unless cur is nil (unreachable) or next is nil
// (no such jump target; only possible in ill-formed input).
func (b *cfgBuilder) edge(cur, next *block) {
	if cur == nil || next == nil {
		return
	}
	cur.succs = append(cur.succs, next)
}

// stmtList threads the statements of one block scope through the graph;
// it returns the block control falls out of (nil when every path left
// via return/break/continue).
func (b *cfgBuilder) stmtList(cur *block, stmts []ast.Stmt, brk, cont *block) *block {
	for _, s := range stmts {
		cur = b.stmt(cur, s, brk, cont)
	}
	return cur
}

// stmt wires one statement into the graph starting at cur and returns
// the fall-through block (nil if control cannot fall through).
func (b *cfgBuilder) stmt(cur *block, s ast.Stmt, brk, cont *block) *block {
	if cur == nil {
		// Unreachable code still gets blocks (with no predecessors) so
		// analyzers can replay it; its facts stay at bottom.
		cur = b.newBlock()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List, brk, cont)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.nodes = append(cur.nodes, s.Init)
		}
		cur.nodes = append(cur.nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmtList(thenB, s.Body.List, brk, cont)
		join := b.newBlock()
		b.edge(thenEnd, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseEnd := b.stmt(elseB, s.Else, brk, cont)
			b.edge(elseEnd, join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		return b.forStmt(cur, s, nil)

	case *ast.RangeStmt:
		return b.rangeStmt(cur, s, nil)

	case *ast.SwitchStmt:
		return b.switchStmt(cur, s.Init, s.Tag, s.Body, cont, nil)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(cur, s.Init, nil, s.Body, cont, nil)

	case *ast.SelectStmt:
		return b.selectStmt(cur, s, cont, nil)

	case *ast.LabeledStmt:
		return b.labeledStmt(cur, s, brk, cont)

	case *ast.ReturnStmt:
		cur.nodes = append(cur.nodes, s)
		b.edge(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			target := brk
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					target = lt.brk
				}
			}
			b.edge(cur, target)
			return nil
		case token.CONTINUE:
			target := cont
			if s.Label != nil {
				if lt := b.labels[s.Label.Name]; lt != nil {
					target = lt.cont
				}
			}
			b.edge(cur, target)
			return nil
		case token.GOTO:
			b.ok = false
			b.edge(cur, b.g.exit)
			return nil
		default: // FALLTHROUGH: handled by switchStmt via clause wiring
			return cur
		}

	default:
		// Assign, Decl, Expr, IncDec, Send, Go, Defer, Empty: straight-line.
		cur.nodes = append(cur.nodes, s)
		return cur
	}
}

// forStmt wires a three-clause for loop. When the loop is labeled, lbl
// is pre-allocated by labeledStmt and its cont target is filled in here
// (the post block, which every continue must route through).
func (b *cfgBuilder) forStmt(cur *block, s *ast.ForStmt, lbl *labelTarget) *block {
	if s.Init != nil {
		cur.nodes = append(cur.nodes, s.Init)
	}
	head := b.newBlock()
	b.edge(cur, head)
	if s.Cond != nil {
		head.nodes = append(head.nodes, s.Cond)
	}
	after := b.newBlock()
	postB := b.newBlock()
	if s.Post != nil {
		postB.nodes = append(postB.nodes, s.Post)
	}
	b.edge(postB, head)
	if lbl != nil {
		lbl.brk = after
		lbl.cont = postB
	}
	bodyB := b.newBlock()
	b.edge(head, bodyB)
	bodyEnd := b.stmtList(bodyB, s.Body.List, after, postB)
	b.edge(bodyEnd, postB)
	if s.Cond != nil {
		b.edge(head, after) // condition false
	}
	return after
}

// rangeStmt wires a range loop. The RangeStmt itself is the head node,
// so transfer functions see the range (and its X expression) once per
// loop entry.
func (b *cfgBuilder) rangeStmt(cur *block, s *ast.RangeStmt, lbl *labelTarget) *block {
	head := b.newBlock()
	b.edge(cur, head)
	head.nodes = append(head.nodes, s)
	after := b.newBlock()
	b.edge(head, after) // zero iterations / loop done
	if lbl != nil {
		lbl.brk = after
		lbl.cont = head
	}
	bodyB := b.newBlock()
	b.edge(head, bodyB)
	bodyEnd := b.stmtList(bodyB, s.Body.List, after, head)
	b.edge(bodyEnd, head)
	return after
}

// switchStmt wires a (type) switch: the tag evaluates in cur, every case
// clause gets its own chain, fallthrough links a clause end to the next
// clause body, and a missing default adds the skip edge.
func (b *cfgBuilder) switchStmt(cur *block, init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, cont *block, lbl *labelTarget) *block {
	if init != nil {
		cur.nodes = append(cur.nodes, init)
	}
	if tag != nil {
		cur.nodes = append(cur.nodes, tag)
	}
	after := b.newBlock()
	if lbl != nil {
		lbl.brk = after
	}
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, raw := range body.List {
		if cc, ok := raw.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	starts := make([]*block, len(clauses))
	for i := range clauses {
		starts[i] = b.newBlock()
		b.edge(cur, starts[i])
	}
	hasDefault := false
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			starts[i].nodes = append(starts[i].nodes, e)
		}
		end := b.stmtList(starts[i], cc.Body, after, cont)
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.edge(end, starts[i+1])
		} else {
			b.edge(end, after)
		}
	}
	if !hasDefault {
		b.edge(cur, after)
	}
	return after
}

// selectStmt wires a select: each comm clause's send/receive statement
// heads its own chain.
func (b *cfgBuilder) selectStmt(cur *block, s *ast.SelectStmt, cont *block, lbl *labelTarget) *block {
	after := b.newBlock()
	if lbl != nil {
		lbl.brk = after
	}
	if len(s.Body.List) == 0 {
		b.edge(cur, after) // empty select blocks forever; keep the graph connected
		return after
	}
	for _, clause := range s.Body.List {
		cc := clause.(*ast.CommClause)
		cb := b.newBlock()
		b.edge(cur, cb)
		if cc.Comm != nil {
			cb.nodes = append(cb.nodes, cc.Comm)
		}
		end := b.stmtList(cb, cc.Body, after, cont)
		b.edge(end, after)
	}
	return after
}

// fallsThrough reports whether a case body ends in a fallthrough
// statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// labeledStmt registers the label's jump targets, builds the labeled
// construct (which fills in the targets), and unregisters the label.
func (b *cfgBuilder) labeledStmt(cur *block, s *ast.LabeledStmt, brk, cont *block) *block {
	lt := &labelTarget{}
	b.labels[s.Label.Name] = lt
	defer delete(b.labels, s.Label.Name)
	var end *block
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		end = b.forStmt(cur, inner, lt)
	case *ast.RangeStmt:
		end = b.rangeStmt(cur, inner, lt)
	case *ast.SwitchStmt:
		end = b.switchStmt(cur, inner.Init, inner.Tag, inner.Body, cont, lt)
	case *ast.TypeSwitchStmt:
		end = b.switchStmt(cur, inner.Init, nil, inner.Body, cont, lt)
	case *ast.SelectStmt:
		end = b.selectStmt(cur, inner, cont, lt)
	default:
		// A bare label is a potential goto target: unsupported.
		b.ok = false
		end = b.stmt(cur, s.Stmt, brk, cont)
	}
	return end
}
