package attack

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
)

// TestReplacementStateChannelDeterministic pins the contract the specfuzz
// differential oracle depends on: for a fixed seed the random-replacement
// outcome is a pure function of the access sequence, so differential
// pairs that perform identical evictions observe identical victims.
func TestReplacementStateChannelDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for _, hit := range []bool{false, true} {
			first := ReplacementStateChannel(cache.ReplRandom, hit, seed)
			for i := 0; i < 4; i++ {
				if got := ReplacementStateChannel(cache.ReplRandom, hit, seed); got != first {
					t.Fatalf("seed %d hit=%v: run %d returned %v, first run %v", seed, hit, i, got, first)
				}
			}
		}
	}
}

// TestReplacementStateRandomHitCountIndependent hardens the channel test:
// under random replacement not just one transient hit but ANY number of
// hits must leave the victim choice unchanged — a hit updates no
// replacement state at all.
func TestReplacementStateRandomHitCountIndependent(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		outcome := func(hits int) bool {
			c := cache.New(cache.Config{Name: "L1", SizeBytes: 512, Ways: 2, Repl: cache.ReplRandom, Seed: seed})
			a, b, probe := arch.LineAddr(0), arch.LineAddr(4), arch.LineAddr(8)
			c.Install(a, arch.Exclusive, 0, 1)
			c.Install(b, arch.Exclusive, 0, 2)
			for i := 0; i < hits; i++ {
				c.Lookup(a)
				c.Lookup(b)
			}
			c.Install(probe, arch.Exclusive, 0, 3)
			_, ok := c.Probe(a)
			return ok
		}
		base := outcome(0)
		for _, hits := range []int{1, 2, 7, 100} {
			if got := outcome(hits); got != base {
				t.Fatalf("seed %d: %d hits changed the victim (got %v, want %v)", seed, hits, got, base)
			}
		}
	}
}

// TestReplacementStateLRUSingleWay exercises the degenerate 1-way set: with
// only one way there is no replacement state to leak, so hit and no-hit
// runs must agree even under LRU.
func TestReplacementStateLRUSingleWay(t *testing.T) {
	outcome := func(transientHit bool) bool {
		c := cache.New(cache.Config{Name: "L1", SizeBytes: 256, Ways: 1, Repl: cache.ReplLRU, Seed: 1})
		a, probe := arch.LineAddr(0), arch.LineAddr(4) // same (only) way
		c.Install(a, arch.Exclusive, 0, 1)
		if transientHit {
			c.Lookup(a)
		}
		c.Install(probe, arch.Exclusive, 0, 2)
		_, ok := c.Probe(a)
		return ok
	}
	if outcome(true) != outcome(false) {
		t.Fatal("1-way LRU leaked through nonexistent replacement state")
	}
	if outcome(false) {
		t.Fatal("1-way set kept two lines")
	}
}

// TestReplacementStateProbeIsPassive: the attacker's Probe must not itself
// perturb replacement state, or the measurement would disturb the channel
// it reads. Probing repeatedly before the eviction must not change which
// line survives under LRU.
func TestReplacementStateProbeIsPassive(t *testing.T) {
	outcome := func(probes int) bool {
		c := cache.New(cache.Config{Name: "L1", SizeBytes: 512, Ways: 2, Repl: cache.ReplLRU, Seed: 1})
		a, b, probe := arch.LineAddr(0), arch.LineAddr(4), arch.LineAddr(8)
		c.Install(a, arch.Exclusive, 0, 1)
		c.Install(b, arch.Exclusive, 0, 2)
		for i := 0; i < probes; i++ {
			c.Probe(a) // must NOT refresh A's recency
		}
		c.Install(probe, arch.Exclusive, 0, 3)
		_, ok := c.Probe(a)
		return ok
	}
	if outcome(0) != outcome(5) {
		t.Fatal("Probe perturbed LRU state")
	}
	if outcome(0) {
		t.Fatal("LRU evicted the MRU line")
	}
}

// TestReplacementStateSeedVariation: across seeds the random victim must
// actually vary — if every seed picked the same way the "random"
// replacement would be FIFO in disguise and the channel-closure argument
// (victim unpredictable to the attacker) would be vacuous.
func TestReplacementStateSeedVariation(t *testing.T) {
	survived, evicted := 0, 0
	for seed := uint64(0); seed < 32; seed++ {
		if ReplacementStateChannel(cache.ReplRandom, false, seed) {
			survived++
		} else {
			evicted++
		}
	}
	if survived == 0 || evicted == 0 {
		t.Fatalf("random victim never varied across 32 seeds (survived=%d evicted=%d)", survived, evicted)
	}
}
