package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// mapRangeFix builds the `simlint -fix` rewrite for a flagged map range:
//
//	for k, v := range m { … }
//
// becomes
//
//	keys := make([]K, 0, len(m))
//	for k := range m {
//		keys = append(keys, k)
//	}
//	slices.Sort(keys)
//	for _, k := range keys {
//		v := m[k]
//		…
//	}
//
// Only the loop header is replaced — the body bytes stay verbatim, which
// is what keeps the fix idempotent and comment-preserving. The rewrite is
// offered only when it is provably behavior-preserving apart from
// iteration order: the loop uses `:=` bindings, the map operand is a
// plain (possibly dotted) identifier the body never mentions, and the key
// type is an ordered non-float type nameable in this file. Everything
// else returns nil and the finding stays manual.
func mapRangeFix(p *Pass, file *ast.File, body *ast.BlockStmt, rng *ast.RangeStmt) *Fix {
	if rng.Tok != token.DEFINE || rng.Key == nil {
		return nil
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return nil
	}
	var valID *ast.Ident
	if rng.Value != nil {
		valID, ok = rng.Value.(*ast.Ident)
		if !ok || valID.Name == "_" {
			valID = nil
		}
		if !ok {
			return nil
		}
	}

	xText, ok := renderOperand(rng.X)
	if !ok {
		return nil
	}
	if mentionsText(rng.Body, xText) {
		return nil
	}

	mt, ok := p.Pkg.Info.TypeOf(rng.X).Underlying().(*types.Map)
	if !ok {
		return nil
	}
	keyType, ok := keyTypeText(p, file, mt.Key())
	if !ok {
		return nil
	}

	used := identNames(file)
	keysName := freshName("keys", used)
	keyName := keyID.Name
	if keyName == "_" {
		keyName = freshName("k", used)
	}

	header := fmt.Sprintf("%s := make([]%s, 0, len(%s))\nfor %s := range %s {\n%s = append(%s, %s)\n}\nslices.Sort(%s)\nfor _, %s := range %s {",
		keysName, keyType, xText,
		keyName, xText,
		keysName, keysName, keyName,
		keysName,
		keyName, keysName)
	if valID != nil {
		header += fmt.Sprintf("\n%s := %s[%s]", valID.Name, xText, keyName)
	}

	fix := &Fix{
		Message: fmt.Sprintf("rewrite range over map %s to the collect-then-sort idiom", xText),
		Edits:   []TextEdit{{Pos: rng.Pos(), End: rng.Body.Lbrace + 1, NewText: header}},
	}
	if imp, need := addImportEdit(file, "slices"); need {
		fix.Edits = append(fix.Edits, imp)
	}
	return fix
}

// renderOperand renders an identifier or dotted-identifier chain, the
// only operand shapes the rewrite duplicates (re-evaluating them is free
// of side effects).
func renderOperand(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := renderOperand(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// mentionsText reports whether any identifier or selector chain in n
// renders to text — the conservative "body references the map" test.
func mentionsText(n ast.Node, text string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.Ident:
			if m.Name == text {
				found = true
			}
		case *ast.SelectorExpr:
			if t, ok := renderOperand(m); ok && t == text {
				found = true
			}
		}
		return !found
	})
	return found
}

// keyTypeText renders the map's key type for the generated []K slice, or
// ok=false when the type is not an ordered non-float type nameable from
// this file.
func keyTypeText(p *Pass, file *ast.File, t types.Type) (string, bool) {
	switch t := t.(type) {
	case *types.Basic:
		if orderedNonFloat(t) {
			return t.Name(), true
		}
	case *types.Named:
		b, ok := t.Underlying().(*types.Basic)
		if !ok || !orderedNonFloat(b) {
			return "", false
		}
		obj := t.Obj()
		if obj.Pkg() == nil {
			return "", false
		}
		if obj.Pkg() == p.Pkg.Types {
			return obj.Name(), true
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != obj.Pkg().Path() {
				continue
			}
			name := obj.Pkg().Name()
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name == "." || name == "_" {
				return "", false
			}
			return name + "." + obj.Name(), true
		}
	}
	return "", false
}

// orderedNonFloat reports whether b sorts deterministically with
// slices.Sort: integers and strings (floats are excluded because NaN
// keys would not round-trip).
func orderedNonFloat(b *types.Basic) bool {
	info := b.Info()
	return info&types.IsOrdered != 0 && info&types.IsFloat == 0
}

// identNames collects every identifier name appearing in the file, the
// safe superset for fresh-name generation.
func identNames(file *ast.File) map[string]bool {
	used := make(map[string]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	return used
}

// freshName returns base, or base2, base3, … — the first variant not in
// used — and reserves it.
func freshName(base string, used map[string]bool) string {
	name := base
	for i := 2; used[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	used[name] = true
	return name
}
