// Package obs is the orchestration layer's observability plane: a
// deterministic, span-based tracing substrate for everything that happens
// *around* the simulator — campaign engine stages (lease → cache-probe →
// simulate → verify → journal-append), fault-injection events, and
// specfuzz oracle phases. PR 2's internal/metrics made the simulator
// transparent; obs does the same for the layers that schedule it, so a
// long grid or fuzz campaign is a timeline instead of a spinner.
//
// The design constraint mirrors the metrics registry's: observation must
// be deterministic and must cost nothing when off.
//
//   - Span identities are content-derived (xrand.Hash64 over the trace
//     key, the span name, and a per-parent sequence number), never
//     wall-clock or worker-id derived. Two runs of the same campaign —
//     serial or on an 8-worker pool — produce the same span set with the
//     same IDs; only the wall-duration fields differ, and CanonicalJSONL
//     strips exactly those, so traced output is byte-comparable across
//     worker counts.
//   - A nil *Tracer (or a Tracer over a nil *Sink) is the off switch:
//     every method is nil-safe, returns nil spans, and allocates nothing,
//     which the zero-alloc benchmark pins. The campaign engine's hot path
//     pays one nil check per stage and nothing else.
//   - The Sink is mutex-guarded (campaign workers share it) and bounded:
//     past MaxSpans, finished spans are counted as dropped instead of
//     growing without limit. Started/ended/dropped are exported through
//     AttachMetrics like every other counter in this repository.
package obs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/xrand"
)

// DefaultMaxSpans bounds a sink: a 19-workload × 7-policy × 5-seed grid
// emits ~6 spans per cell (~4k total), so the default keeps even a large
// campaign whole while capping a runaway emitter.
const DefaultMaxSpans = 1 << 18

// Attr is one span attribute. Attribute values must be deterministic in
// the traced computation (cell names, cache keys, attempt numbers, hit or
// miss) — never wall times or worker ids — so the canonical span stream
// stays byte-identical across runs and worker counts.
type Attr struct {
	K, V string
}

// String renders an attribute for logs.
func (a Attr) String() string { return a.K + "=" + a.V }

// Span is one traced operation. Identity fields (Trace, ID, Parent, Name,
// Seq, Attrs) are deterministic; StartNs/DurNs are wall-clock measurements
// for the slow-cell views and are excluded from the canonical form.
type Span struct {
	sink *Sink

	// Trace is the content-derived trace ID shared by a root span and all
	// its descendants (one trace per campaign cell / fuzz pair).
	Trace uint64
	// ID is the span's content-derived identity.
	ID uint64
	// Parent is the parent span's ID (0 for a root span).
	Parent uint64
	// Name is the operation ("cache-probe", "simulate", "timing-a").
	Name string
	// Seq disambiguates same-named siblings (retry attempts): the n-th
	// child of one parent with one name has Seq n (0-based).
	Seq uint64
	// Attrs are the span's deterministic key/value annotations.
	Attrs []Attr

	// StartNs is the span's start, in wall nanoseconds since the sink was
	// created. Nondeterministic; stripped by CanonicalJSONL.
	StartNs int64
	// DurNs is the span's wall duration in nanoseconds. Nondeterministic;
	// stripped by CanonicalJSONL.
	DurNs int64

	start time.Time
	// kids counts children per name, assigning deterministic Seq values.
	kids map[string]uint64
	// ended guards against double End (the engine ends roots on every
	// return path).
	ended bool
}

// SinkStats counts the sink's own activity; AttachMetrics exports it so a
// live /metrics endpoint (and the final registry snapshot) shows whether
// the trace is complete or was truncated by the span bound.
type SinkStats struct {
	// Started counts spans handed out (Tracer.Trace, Span.Child).
	Started uint64
	// Ended counts spans that completed and were retained.
	Ended uint64
	// Dropped counts spans that completed after the sink hit MaxSpans and
	// were discarded instead of retained.
	Dropped uint64
}

// Sink collects finished spans. It is safe for concurrent use by campaign
// workers; all methods are nil-safe (a nil sink swallows everything for
// free, which is how tracing is switched off).
type Sink struct {
	// MaxSpans bounds retained spans (0 = DefaultMaxSpans). Set before
	// the first span ends.
	MaxSpans int

	mu    sync.Mutex
	stats SinkStats
	spans []Span
	base  time.Time
}

// NewSink returns an empty sink with the default span bound.
func NewSink() *Sink {
	return &Sink{base: time.Now()}
}

// Stats returns a copy of the sink's own counters.
func (s *Sink) Stats() SinkStats {
	if s == nil {
		return SinkStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Spans returns the finished spans in completion order. The order is
// scheduling-dependent under a worker pool; sort with SortCanonical (or
// export with CanonicalJSONL) before comparing runs.
func (s *Sink) Spans() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, len(s.spans))
	copy(out, s.spans)
	return out
}

// AttachMetrics exports the sink's own counters into a registry, so the
// live /metrics endpoint and the final snapshot both show whether the
// span stream is complete.
func (s *Sink) AttachMetrics(reg *metrics.Registry) {
	st := &s.stats
	reg.CounterFunc("obs.spans_started", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return st.Started
	})
	reg.CounterFunc("obs.spans_ended", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return st.Ended
	})
	reg.CounterFunc("obs.spans_dropped", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return st.Dropped
	})
}

// started counts one span handout.
func (s *Sink) started() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Started++
}

// finish retains one completed span (or drops it past the bound).
func (s *Sink) finish(sp *Span) {
	maxSpans := s.MaxSpans
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.spans) >= maxSpans {
		s.stats.Dropped++
	} else {
		s.stats.Ended++
		s.spans = append(s.spans, *sp)
	}
}

// Tracer hands out spans bound to one sink. A nil tracer (or a tracer
// over a nil sink) is the disabled state: every method no-ops without
// allocating, so instrumentation sites need no conditionals.
type Tracer struct {
	sink *Sink
}

// NewTracer returns a tracer writing to sink (nil sink = disabled tracer).
func NewTracer(sink *Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink}
}

// Sink returns the tracer's sink (nil when disabled).
func (t *Tracer) Sink() *Sink {
	if t == nil {
		return nil
	}
	return t.sink
}

// Trace starts a root span: one trace per unit of work (campaign cell,
// fuzz pair). key is the content identity the trace ID derives from — the
// cell's cache key, typically — so the same cell traces to the same IDs
// in every run regardless of scheduling.
func (t *Tracer) Trace(name, key string) *Span {
	if t == nil || t.sink == nil {
		return nil
	}
	t.sink.started()
	id := xrand.Hash64(hashString(key) ^ hashString(name))
	return &Span{
		sink:    t.sink,
		Trace:   id,
		ID:      id,
		Name:    name,
		StartNs: int64(time.Since(t.sink.base)),
		start:   time.Now(),
	}
}

// Instant records a zero-duration root span (fault events, one-shot
// markers). Determinism of the ID rests on (key, name) alone.
func (t *Tracer) Instant(name, key string, attrs ...Attr) {
	sp := t.Trace(name, key)
	if sp != nil {
		sp.Attrs = append(sp.Attrs, attrs...)
	}
	sp.End()
}

// Child starts a sub-span. The child's ID derives from the parent's ID,
// the name, and a per-(parent, name) sequence number — content only, so
// retries trace deterministically too. Safe on a nil span.
func (sp *Span) Child(name string, attrs ...Attr) *Span {
	if sp == nil {
		return nil
	}
	if sp.kids == nil {
		sp.kids = make(map[string]uint64)
	}
	seq := sp.kids[name]
	sp.kids[name] = seq + 1
	sp.sink.started()
	return &Span{
		sink:    sp.sink,
		Trace:   sp.Trace,
		ID:      xrand.Hash64(sp.ID ^ hashString(name) ^ (seq + 1)),
		Parent:  sp.ID,
		Name:    name,
		Seq:     seq,
		Attrs:   attrs,
		StartNs: int64(time.Since(sp.sink.base)),
		start:   time.Now(),
	}
}

// SetAttr appends one attribute. Safe on a nil span.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	sp.Attrs = append(sp.Attrs, Attr{K: k, V: v})
}

// End completes the span and hands it to the sink. Safe on a nil span and
// idempotent, so every engine return path can end the root
// unconditionally.
func (sp *Span) End() {
	if sp == nil || sp.ended {
		return
	}
	sp.ended = true
	sp.DurNs = int64(time.Since(sp.start))
	sp.sink.finish(sp)
}

// Root reports whether the span is a trace root.
func (sp Span) Root() bool { return sp.Parent == 0 }

// String renders the span for logs and test failures.
func (sp Span) String() string {
	return fmt.Sprintf("%016x/%016x %s seq=%d dur=%s", sp.Trace, sp.ID, sp.Name, sp.Seq, time.Duration(sp.DurNs))
}

// hashString is FNV-1a 64, the string-folding half of the span ID
// derivation (xrand.Hash64 mixes the result).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
