package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"
	"strings"
)

// AnalyzerDeterminism guards the simulator's bit-identical-replay
// contract: the same grid must produce byte-identical exports whether it
// runs serially, on the worker pool, or across processes.
//
// It flags map-order dependence: `for … range m` where m is a map,
// anywhere under internal/, sim/, or cmd/. Go randomizes map iteration
// order, so any such loop that feeds simulation state or user-visible
// output is a nondeterminism hazard. The analysis is flow-sensitive: a
// loop that only collects keys/values into local slices is allowed when,
// on every control path, each collected slice is sorted — by a direct
// sort.*/slices.* call or by a module helper that (transitively) sorts
// its argument — before its first order-sensitive use. Re-collecting
// into an already-sorted slice restarts the obligation. A range that
// binds neither key nor value (`for range m`) executes an identical body
// per element and is order-independent by construction, so it is always
// allowed. Anything else needs //simlint:ordered -- <justification>.
// Where the loop is a mechanical candidate, the finding carries a
// `simlint -fix` rewrite into the collect-then-sort idiom.
//
// Ambient-nondeterminism sources (time.Now, math/rand) are no longer
// flagged syntactically here: the detertaint analyzer tracks them
// interprocedurally and reports only flows that actually reach
// determinism-sensitive sinks (cache keys, span identity, stats), so
// reporting-only wall-clock reads need no directive at all.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc:  "flag map-order-dependent iteration (flow-sensitively) in simulation and export paths",
	Run:  runDeterminism,
}

func runDeterminism(p *Pass) {
	rel := p.Pkg.Rel()
	mapScope := hasPathPrefix(rel, "internal") || hasPathPrefix(rel, "sim") ||
		hasPathPrefix(rel, "cmd") || rel == ""
	if !mapScope {
		return
	}

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapOrder(p, f, n.Body)
				}
			case *ast.FuncLit:
				checkMapOrder(p, f, n.Body)
			}
			return true
		})
	}
}

// detState is the sorted-fact lattice value for one tracked local slice.
type detState struct {
	st     uint8 // stPending or stSorted
	origin *ast.RangeStmt
}

const (
	stSorted  uint8 = 1 // collected from a map, then sorted: order-independent
	stPending uint8 = 2 // collected from a map, not yet sorted
)

// detFact maps tracked slice variables to their sorted-fact state; a
// variable that is absent is untracked (its content is map-order
// independent).
type detFact map[*types.Var]detState

// checkMapOrder runs the flow-sensitive map-iteration analysis over one
// function body (nested function literals are analyzed separately and
// skipped here).
func checkMapOrder(p *Pass, file *ast.File, body *ast.BlockStmt) {
	type obligation struct {
		rng     *ast.RangeStmt
		targets []*types.Var
	}
	var obligations []obligation
	var direct []*ast.RangeStmt // map ranges that are not pure collect loops

	walkSameFunc(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := p.Pkg.Info.TypeOf(rng.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if isBlankOrNil(rng.Key) && isBlankOrNil(rng.Value) {
			return // binds no per-element data: order-independent by construction
		}
		targets := collectTargets(p, rng)
		if targets == nil {
			direct = append(direct, rng)
			return
		}
		obligations = append(obligations, obligation{rng: rng, targets: targets})
	})

	for _, rng := range direct {
		p.ReportFix(rng.Pos(), mapRangeFix(p, file, body, rng),
			"range over map %s: iteration order is randomized; sort the keys first or annotate //simlint:ordered -- <why order is irrelevant>", exprString(rng.X))
	}
	if len(obligations) == 0 {
		return
	}

	tracked := make(map[*types.Var]bool)
	origins := make(map[*ast.RangeStmt][]*types.Var)
	for _, ob := range obligations {
		origins[ob.rng] = ob.targets
		for _, v := range ob.targets {
			tracked[v] = true
		}
	}

	g := buildCFG(body)
	if g == nil {
		// Unstructured control flow (goto): fall back to the syntactic
		// whole-function check — a sort call on the target anywhere after
		// the loop.
		for _, ob := range obligations {
			for _, v := range ob.targets {
				if !sortedSyntactically(p, body, ob.rng, v) {
					p.Reportf(ob.rng.Pos(),
						"range over map %s: iteration order is randomized; sort the keys first or annotate //simlint:ordered -- <why order is irrelevant>", exprString(ob.rng.X))
					break
				}
			}
		}
		return
	}

	flow := &detFlow{p: p, tracked: tracked, origins: origins}
	d := dataflow[detFact]{
		Bottom:   func() detFact { return nil },
		Entry:    func() detFact { return detFact{} },
		Join:     joinDetFacts,
		Equal:    func(a, b detFact) bool { return maps.Equal(a, b) },
		Transfer: flow.transfer,
	}
	in := d.forward(g)

	violated := make(map[*ast.RangeStmt]bool)
	for _, b := range g.blocks {
		f := in[b]
		for _, n := range b.nodes {
			flow.checkUses(n, f, violated)
			f = flow.transfer(n, f)
		}
	}
	bad := make([]*ast.RangeStmt, 0, len(violated))
	for rng := range violated {
		bad = append(bad, rng)
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].Pos() < bad[j].Pos() })
	for _, rng := range bad {
		p.Reportf(rng.Pos(),
			"range over map %s: iteration order is randomized and the collected slice is used on a path where it was not sorted; sort it first or annotate //simlint:ordered -- <why order is irrelevant>", exprString(rng.X))
	}
}

// joinDetFacts is the lattice join: the union of both maps, taking the
// higher state (pending beats sorted) and the earlier origin on ties.
func joinDetFacts(a, b detFact) detFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := maps.Clone(a)
	vars := sortedFactVars(b)
	for _, v := range vars {
		sb := b[v]
		sa, ok := out[v]
		if !ok || sb.st > sa.st {
			out[v] = sb
			continue
		}
		if sb.st == sa.st && sb.origin != nil && sa.origin != nil && sb.origin.Pos() < sa.origin.Pos() {
			out[v] = sb
		}
	}
	return out
}

// sortedFactVars returns the fact's tracked variables in declaration
// order, so every consumer iterates deterministically.
func sortedFactVars(f detFact) []*types.Var {
	vars := make([]*types.Var, 0, len(f))
	for v := range f {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	return vars
}

// detFlow is the transfer/use-check context of one function's analysis.
type detFlow struct {
	p       *Pass
	tracked map[*types.Var]bool
	origins map[*ast.RangeStmt][]*types.Var
}

// transfer applies one CFG node to the fact.
func (d *detFlow) transfer(n ast.Node, f detFact) detFact {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if targets, ok := d.origins[n]; ok {
			f = maps.Clone(f)
			if f == nil {
				f = detFact{}
			}
			for _, v := range targets {
				f[v] = detState{st: stPending, origin: n}
			}
		}
		return f

	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v := d.objOf(id)
			if v == nil || !d.tracked[v] {
				continue
			}
			if _, have := f[v]; !have {
				continue
			}
			if len(n.Lhs) == len(n.Rhs) && preservesOrderFact(d.p, n.Rhs[i], v) {
				continue // x = append(x, …) / x = x[a:b] keep the current fact
			}
			// Any other assignment replaces the collected value: the
			// obligation is discharged (the map-ordered data is gone).
			f = maps.Clone(f)
			delete(f, v)
		}
		return f

	case *ast.ExprStmt:
		call, ok := n.X.(*ast.CallExpr)
		if !ok {
			return f
		}
		for _, v := range d.sortTargets(call) {
			if _, have := f[v]; have {
				f = maps.Clone(f)
				st := f[v]
				st.st = stSorted
				f[v] = st
			}
		}
		return f
	}
	return f
}

// preservesOrderFact reports whether assigning rhs to v keeps v's
// sorted-fact meaningful: appending to itself (still the same collected
// prefix) or re-slicing itself (order preserved).
func preservesOrderFact(p *Pass, rhs ast.Expr, v *types.Var) bool {
	switch rhs := rhs.(type) {
	case *ast.CallExpr:
		fn, ok := rhs.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(rhs.Args) == 0 {
			return false
		}
		if _, builtin := p.Pkg.Info.Uses[fn].(*types.Builtin); !builtin {
			return false
		}
		id, ok := rhs.Args[0].(*ast.Ident)
		return ok && p.Pkg.Info.Uses[id] == v
	case *ast.SliceExpr:
		id, ok := rhs.X.(*ast.Ident)
		return ok && p.Pkg.Info.Uses[id] == v
	}
	return false
}

// sortTargets resolves a call to the tracked variables it sorts: direct
// sort.*/slices.* calls, or module helpers that (transitively) sort one
// of their slice parameters.
func (d *detFlow) sortTargets(call *ast.CallExpr) []*types.Var {
	p := d.p
	if isSortingCall(p.Pkg, call) {
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if v, ok := p.Pkg.Info.Uses[id].(*types.Var); ok && d.tracked[v] {
				return []*types.Var{v}
			}
		}
		return nil
	}
	fn := calleeFunc(p.Pkg, call)
	if fn == nil {
		return nil
	}
	sorts := p.runner.sorterSummaries(p.Mod)[fn]
	if sorts == nil {
		return nil
	}
	var out []*types.Var
	for i, isSorter := range sorts {
		if !isSorter || i >= len(call.Args) {
			continue
		}
		if id, ok := call.Args[i].(*ast.Ident); ok {
			if v, ok := p.Pkg.Info.Uses[id].(*types.Var); ok && d.tracked[v] {
				out = append(out, v)
			}
		}
	}
	return out
}

// checkUses records a violation for every tracked-and-pending variable
// the node uses in an order-sensitive position.
func (d *detFlow) checkUses(n ast.Node, f detFact, violated map[*ast.RangeStmt]bool) {
	if len(f) == 0 {
		return
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		// Only the range operand executes here; the body has its own
		// blocks and the key/value are definitions, not uses.
		d.scanExpr(n.X, f, violated)
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if v := d.objOf(id); v != nil && d.tracked[v] && len(n.Lhs) == len(n.Rhs) {
					if d.scanSelfUpdate(n.Rhs[i], v, f, violated) {
						continue
					}
				}
			} else {
				d.scanExpr(lhs, f, violated) // t[i] = x, s.f = x: operand uses
			}
			if len(n.Lhs) == len(n.Rhs) {
				d.scanExpr(n.Rhs[i], f, violated)
			}
		}
		if len(n.Lhs) != len(n.Rhs) {
			for _, rhs := range n.Rhs {
				d.scanExpr(rhs, f, violated)
			}
		}
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok && len(d.sortTargets(call)) > 0 {
			return // the sorting call itself (including its closure) is exempt
		}
		d.scanExpr(n.X, f, violated)
	default:
		if nd, ok := n.(ast.Node); ok {
			d.scanNode(nd, f, violated)
		}
	}
}

// scanSelfUpdate handles `t = append(t, …)` / `t = t[a:b]`: the self
// reference is exempt, the remaining operands are scanned. Reports true
// when rhs was such a self-update.
func (d *detFlow) scanSelfUpdate(rhs ast.Expr, v *types.Var, f detFact, violated map[*ast.RangeStmt]bool) bool {
	if !preservesOrderFact(d.p, rhs, v) {
		return false
	}
	switch rhs := rhs.(type) {
	case *ast.CallExpr:
		for _, arg := range rhs.Args[1:] {
			d.scanExpr(arg, f, violated)
		}
	case *ast.SliceExpr:
		for _, e := range []ast.Expr{rhs.Low, rhs.High, rhs.Max} {
			if e != nil {
				d.scanExpr(e, f, violated)
			}
		}
	}
	return true
}

// scanNode walks a whole statement for order-sensitive uses.
func (d *detFlow) scanNode(n ast.Node, f detFact, violated map[*ast.RangeStmt]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.CallExpr:
			if isLenCap(d.p, m) || len(d.sortTargets(m)) > 0 {
				return false // len/cap and sorting calls are order-insensitive
			}
		case *ast.Ident:
			d.identUse(m, f, violated)
		}
		return true
	})
}

// scanExpr is scanNode restricted to an expression operand.
func (d *detFlow) scanExpr(e ast.Expr, f detFact, violated map[*ast.RangeStmt]bool) {
	if e == nil {
		return
	}
	d.scanNode(e, f, violated)
}

// identUse records a violation if id refers to a tracked variable whose
// state is pending.
func (d *detFlow) identUse(id *ast.Ident, f detFact, violated map[*ast.RangeStmt]bool) {
	v, ok := d.p.Pkg.Info.Uses[id].(*types.Var)
	if !ok || !d.tracked[v] {
		return
	}
	if st, have := f[v]; have && st.st == stPending && st.origin != nil {
		violated[st.origin] = true
	}
}

func (d *detFlow) objOf(id *ast.Ident) *types.Var {
	if v, ok := d.p.Pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := d.p.Pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// isLenCap reports whether call is builtin len(x) or cap(x).
func isLenCap(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return false
	}
	_, builtin := p.Pkg.Info.Uses[id].(*types.Builtin)
	return builtin
}

// isSortingCall reports whether call invokes a sorting function from
// package sort or slices with the target as its first argument.
func isSortingCall(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "sort":
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable", "Sort":
			return true
		}
	case "slices":
		return strings.HasPrefix(sel.Sel.Name, "Sort")
	}
	return false
}

// calleeFunc resolves a call to the function object it statically
// invokes, or nil.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// sorterSummaries computes, once per module, which slice parameters each
// module function definitely sorts — directly via sort.*/slices.*, or
// transitively by forwarding the parameter into another sorter. This is
// what lets the determinism analyzer accept the sorted-in-helper idiom
// (`collect; sortRecords(rows)`) without a //simlint:ordered directive.
func (r *Runner) sorterSummaries(mod *Module) map[*types.Func][]bool {
	r.sorterOnce.Do(func() {
		type fnDecl struct {
			pkg  *Package
			decl *ast.FuncDecl
			fn   *types.Func
		}
		var decls []fnDecl
		for _, pkg := range mod.Pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						decls = append(decls, fnDecl{pkg: pkg, decl: fd, fn: fn})
					}
				}
			}
		}
		sorters := make(map[*types.Func][]bool)
		paramsOf := func(d fnDecl) []*types.Var {
			sig := d.fn.Type().(*types.Signature)
			out := make([]*types.Var, sig.Params().Len())
			for i := 0; i < sig.Params().Len(); i++ {
				out[i] = sig.Params().At(i)
			}
			return out
		}
		for changed := true; changed; {
			changed = false
			for _, d := range decls {
				params := paramsOf(d)
				marks := sorters[d.fn]
				if marks == nil {
					marks = make([]bool, len(params))
				}
				ast.Inspect(d.decl.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sortedArgs := make(map[int]bool)
					if isSortingCall(d.pkg, call) {
						sortedArgs[0] = true
					} else if callee := calleeFunc(d.pkg, call); callee != nil {
						for i, is := range sorters[callee] {
							if is {
								sortedArgs[i] = true
							}
						}
					}
					for argIdx := 0; argIdx < len(call.Args); argIdx++ {
						if !sortedArgs[argIdx] {
							continue
						}
						id, ok := call.Args[argIdx].(*ast.Ident)
						if !ok {
							continue
						}
						obj, _ := d.pkg.Info.Uses[id].(*types.Var)
						if obj == nil {
							continue
						}
						for pi, pv := range params {
							if pv == obj && !marks[pi] {
								marks[pi] = true
								changed = true
							}
						}
					}
					return true
				})
				sorters[d.fn] = marks
			}
		}
		r.sorters = sorters
	})
	return r.sorters
}

// collectTargets returns the local slice variables a range loop purely
// collects into — its body holds only `x = append(x, …)` statements,
// optionally wrapped in else-less `if` filters, plus bare continues —
// or nil if the body does anything else. Targets come back in
// declaration order.
func collectTargets(p *Pass, rng *ast.RangeStmt) []*types.Var {
	set := make(map[*types.Var]bool)
	if !collectInto(p, rng.Body, set) || len(set) == 0 {
		return nil
	}
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

func collectInto(p *Pass, body *ast.BlockStmt, set map[*types.Var]bool) bool {
	for _, stmt := range body.List {
		switch s := stmt.(type) {
		case *ast.IfStmt:
			if s.Else != nil || s.Init != nil {
				return false
			}
			if !collectInto(p, s.Body, set) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE || s.Label != nil {
				return false
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || fn.Name != "append" || len(call.Args) < 2 {
				return false
			}
			first, ok := call.Args[0].(*ast.Ident)
			if !ok || first.Name != lhs.Name {
				return false
			}
			v, ok := p.Pkg.Info.Uses[lhs].(*types.Var)
			if !ok {
				return false
			}
			set[v] = true
		default:
			return false
		}
	}
	return true
}

// sortedSyntactically is the conservative fallback when no CFG is
// available: a sort.*/slices.* call (or sorter-helper call) naming v
// anywhere in the function after the range statement.
func sortedSyntactically(p *Pass, body *ast.BlockStmt, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sortsFirst := isSortingCall(p.Pkg, call)
		var summary []bool
		if !sortsFirst {
			if fn := calleeFunc(p.Pkg, call); fn != nil {
				summary = p.runner.sorterSummaries(p.Mod)[fn]
			}
		}
		for i, arg := range call.Args {
			id, ok := arg.(*ast.Ident)
			if !ok || p.Pkg.Info.Uses[id] != v {
				continue
			}
			if (sortsFirst && i == 0) || (i < len(summary) && summary[i]) {
				found = true
			}
		}
		return !found
	})
	return found
}

// walkSameFunc visits every node of body except nested function
// literals, which are analyzed as their own functions.
func walkSameFunc(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isBlankOrNil reports whether a range binding is absent or the blank
// identifier.
func isBlankOrNil(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isPkgFunc reports whether fun is a selector pkgName.funcName resolving to
// the package with the given import path suffix.
func isPkgFunc(p *Pass, fun ast.Expr, pkgPath, funcName string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}

// exprString renders a short source form of simple expressions for
// messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	case *ast.IndexExpr:
		return exprString(e.X) + "[…]"
	}
	return "expression"
}

// hasPathPrefix reports whether rel is under the given top-level path
// segment ("internal", "sim", "cmd").
func hasPathPrefix(rel, seg string) bool {
	return rel == seg || strings.HasPrefix(rel, seg+"/")
}
