package campaign

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// gcIntentName is the two-phase eviction marker at the cache root: gc
// writes it (atomically) before removing any entry, and deletes it after
// the last removal. A crash mid-eviction therefore leaves the marker
// behind, and fsck can tell "entry deliberately being evicted" from
// "entry mysteriously missing" — the gc-race orphans it flags.
const gcIntentName = "gc-intent.json"

// GCIntentPath returns the eviction marker location for a cache dir.
func GCIntentPath(cacheDir string) string {
	return filepath.Join(cacheDir, gcIntentName)
}

// gcIntent is the marker's contents: the exact keys this gc run intends
// to remove. Keys, not paths, so the marker stays valid if the cache dir
// is moved between the crash and the repair.
type gcIntent struct {
	Schema int      `json:"schema"`
	Keys   []string `json:"keys"`
}

// GCOptions selects which entries an eviction pass removes. At least one
// criterion must be set; the criteria are a union (an entry matching
// either is evicted).
type GCOptions struct {
	// MaxAge evicts entries whose file is older than this (0 = no age
	// criterion).
	MaxAge time.Duration
	// Keep, when non-nil, is the grid-membership criterion: any verified
	// entry whose key is NOT in the set is evicted — the "this cache
	// serves grid X now" cleanup after a grid redefinition.
	Keep map[string]bool
	// DryRun reports what would be evicted without touching anything.
	DryRun bool
	// Now replaces time.Now in tests (nil = time.Now).
	Now func() time.Time
}

// GCReport is the outcome of an eviction pass.
type GCReport struct {
	Dir     string
	Scanned int
	Kept    int
	Evicted []Flaw // path + why it was (or would be) evicted
	Freed   int64  // bytes removed (or, dry-run, removable)
	Demoted []string
	DryRun  bool
}

// String renders the operator-facing summary `campaign gc` prints.
func (r *GCReport) String() string {
	var b strings.Builder
	verb := "evicted"
	if r.DryRun {
		verb = "would evict"
	}
	fmt.Fprintf(&b, "gc %s: %d entr(ies) scanned, %d kept, %s %d (%.1f KiB)",
		r.Dir, r.Scanned, r.Kept, verb, len(r.Evicted), float64(r.Freed)/1024)
	for _, f := range r.Evicted {
		fmt.Fprintf(&b, "\n  %s: %s (%s)", verb, f.Path, f.Reason)
	}
	for _, key := range r.Demoted {
		fmt.Fprintf(&b, "\n  demoted: journal:%s (done -> pending)", key)
	}
	return b.String()
}

// GC evicts cache entries by age and/or grid membership. The eviction is
// two-phase — intent marker first, removals second, marker deletion last —
// so a gc interrupted at any point leaves a cache that fsck can finish
// repairing instead of a silent half-eviction. Evicted cells' manifest
// rows are demoted to pending so resume estimates stay honest; the cells
// simply re-simulate if a future run wants them again.
func GC(dir string, opts GCOptions) (*GCReport, error) {
	if opts.MaxAge <= 0 && opts.Keep == nil {
		return nil, fmt.Errorf("campaign: gc: no eviction criterion (set a max age or a grid)")
	}
	if _, err := os.Stat(GCIntentPath(dir)); err == nil {
		return nil, fmt.Errorf("campaign: gc: %s exists — a previous gc was interrupted; run `campaign fsck -prune` first", GCIntentPath(dir))
	}
	now := time.Now
	if opts.Now != nil {
		now = opts.Now
	}
	cutoff := now().Add(-opts.MaxAge)

	rep := &GCReport{Dir: dir, DryRun: opts.DryRun}
	type victim struct {
		key, path string
		size      int64
	}
	var victims []victim
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != dir && d.Name() == quarantineDirName {
				return filepath.SkipDir
			}
			return nil
		}
		// Root files (manifests, journals, markers), temps, and non-JSON
		// are never gc's business; fsck owns the damaged ones.
		if filepath.Dir(path) == dir || isTempFile(d.Name()) || !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil || e.Key == "" {
			return nil // corrupt: fsck's department, not an eviction
		}
		rep.Scanned++
		info, err := d.Info()
		if err != nil {
			return err
		}
		var reason string
		switch {
		case opts.MaxAge > 0 && info.ModTime().Before(cutoff):
			reason = fmt.Sprintf("older than the retention window (written %s)", info.ModTime().UTC().Format(time.RFC3339))
		case opts.Keep != nil && !opts.Keep[e.Key]:
			reason = "not a member of the retained grid"
		default:
			rep.Kept++
			return nil
		}
		rep.Evicted = append(rep.Evicted, Flaw{Path: path, Reason: reason})
		rep.Freed += info.Size()
		victims = append(victims, victim{key: e.Key, path: path, size: info.Size()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: gc: %w", err)
	}
	sortFlaws(rep.Evicted)
	sort.Slice(victims, func(i, j int) bool { return victims[i].path < victims[j].path })
	if opts.DryRun || len(victims) == 0 {
		return rep, nil
	}

	// Phase one: publish intent. From here until the marker is deleted,
	// any crash leaves a cache fsck recognizes as mid-gc.
	intent := gcIntent{Schema: SchemaVersion}
	for _, v := range victims {
		intent.Keys = append(intent.Keys, v.key)
	}
	if err := writeGCIntent(dir, intent); err != nil {
		return rep, err
	}
	// Phase two: remove. A file already gone (a raced fsck -prune, a
	// parallel gc finishing our work) is success, not failure.
	for _, v := range victims {
		if err := os.Remove(v.path); err != nil && !os.IsNotExist(err) {
			return rep, fmt.Errorf("campaign: gc: %w (marker %s left for fsck)", err, GCIntentPath(dir))
		}
	}
	// Demote the evicted cells' done rows so the manifest keeps telling
	// the truth about what the cache holds.
	if m, ok := LoadManifest(dir); ok {
		changed := false
		for _, v := range victims {
			if rec, ok := m.Jobs[v.key]; ok && rec.Status == StatusDone {
				rec.Status = StatusPending
				rec.Cached = false
				rep.Demoted = append(rep.Demoted, v.key)
				changed = true
			}
		}
		if changed {
			if err := m.Save(); err != nil {
				return rep, fmt.Errorf("campaign: gc: %w", err)
			}
		}
	}
	// Phase three: the eviction is complete; retire the marker.
	if err := os.Remove(GCIntentPath(dir)); err != nil {
		return rep, fmt.Errorf("campaign: gc: removing intent marker: %w", err)
	}
	return rep, nil
}

// writeGCIntent writes the marker atomically (temp + rename), so fsck
// never sees a torn intent list.
func writeGCIntent(dir string, intent gcIntent) error {
	data, err := json.MarshalIndent(intent, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: gc: encoding intent: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".gc-intent.tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: gc: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: gc: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: gc: %w", err)
	}
	if err := os.Rename(tmp.Name(), GCIntentPath(dir)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: gc: %w", err)
	}
	return nil
}
