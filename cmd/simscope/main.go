// Command simscope is the interactive-grade inspector for instrumented
// runs: it executes one workload with full metrics attached and renders the
// run's phase behavior (sparkline time series), its latency/window
// histograms, and the final counter registry — or inspects a campaign
// cache's per-cell summaries without re-simulating anything.
//
// Usage:
//
//	simscope run -workload astar -policy cleanupspec
//	simscope run -workload mcf -policy cleanupspec -hist all -trace-out mcf.trace.json
//	simscope campaign -cache .campaign
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "campaign":
		err = cmdCampaign(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "simscope: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simscope:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  simscope run      [flags]   run one instrumented workload and inspect it
  simscope campaign [flags]   inspect a campaign cache's per-cell summaries

run flags:
  -workload name      workload (default "astar")
  -policy name        policy (default "cleanupspec")
  -instructions N     measurement window (default 300000)
  -seed N             randomization seed (default 1)
  -sample-every N     sampling interval in cycles (default 500)
  -width N            sparkline width in columns (default 60)
  -hist pat           histograms to print: "top" (non-empty ones), "all",
                      or a name substring (default "top")
  -counters           also dump the full final counter registry
  -metrics-out file   write the time series (.csv = CSV, else JSONL)
  -trace-out file     write a Chrome trace-event (Perfetto) file

campaign flags:
  -cache dir          cache directory (default ".campaign")
  -spans file         span JSONL from "campaign run -span-out": render the
                      top-N slowest cells and the per-stage breakdown
  -top N              with -spans: slowest cells to list (default 10)
`)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("simscope run", flag.ExitOnError)
	var (
		wl           = fs.String("workload", "astar", "workload name")
		pol          = fs.String("policy", "cleanupspec", "policy name")
		instructions = fs.Uint64("instructions", 300_000, "committed instructions to measure")
		seed         = fs.Uint64("seed", 1, "randomization seed")
		sampleEvery  = fs.Uint64("sample-every", 500, "sampling interval in cycles")
		width        = fs.Int("width", 60, "sparkline width in columns")
		histPat      = fs.String("hist", "top", `histograms: "top", "all", or a name substring`)
		counters     = fs.Bool("counters", false, "dump the full final counter registry")
		metricsOut   = fs.String("metrics-out", "", "write the time series here")
		traceOut     = fs.String("trace-out", "", "write a Perfetto trace here")
	)
	fs.Parse(args)

	col := &sim.Metrics{}
	cfg := sim.Config{
		Policy:       sim.Policy(*pol),
		Instructions: *instructions,
		Seed:         *seed,
		Metrics:      col,
		SampleEvery:  *sampleEvery,
	}
	if *traceOut != "" {
		cfg.Trace = sim.NewTraceRing(1 << 17)
	}
	r, err := sim.RunWorkload(*wl, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("simscope: %s under %s — %d instructions, %d cycles, IPC %.3f\n\n",
		r.Workload, r.Policy, r.Instructions, r.Cycles, r.IPC)

	samples := col.Samples()
	fmt.Printf("phase plot (%d samples, every %d cycles):\n", len(samples), *sampleEvery)
	plot := func(label string, vals []float64) {
		vals = downsample(vals, *width)
		lo, hi := minMax(vals)
		fmt.Printf("  %-14s %s  [%.3g .. %.3g]\n", label, stats.Sparkline(vals), lo, hi)
	}
	plot("IPC", metrics.Rates(samples, "cpu.committed"))
	plot("squash/kcycle", scale(metrics.Rates(samples, "cpu.squashes"), 1000))
	plot("L1D miss rate", metrics.RatioDeltas(samples, "l1d.misses", "l1d.accesses"))
	plot("L2 miss rate", metrics.RatioDeltas(samples, "l2.misses", "l2.accesses"))
	if gaugeSeries(samples, "mem.pending_txns") != nil {
		plot("pending txns", gaugeSeries(samples, "mem.pending_txns"))
	}
	fmt.Println()

	printHistograms(col.Registry, *histPat)

	if *counters {
		fmt.Println("counters:")
		snap := col.Registry.Snapshot()
		for _, name := range stats.SortedKeys(snap.Counters) {
			fmt.Printf("  %-32s %d\n", name, snap.Counters[name])
		}
		fmt.Println()
	}

	if *metricsOut != "" {
		if err := writeSeries(*metricsOut, samples); err != nil {
			return err
		}
		fmt.Printf("wrote %d sample(s) to %s\n", len(samples), *metricsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		werr := metrics.ExportChromeTrace(f, metrics.ChromeTraceOpts{
			Process: string(r.Policy) + "/" + r.Workload,
			Events:  cfg.Trace.Events(),
			Samples: samples,
			Counters: []metrics.CounterSeries{
				{Name: "ipc", Values: metrics.Rates(samples, "cpu.committed")},
			},
		})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Println("wrote Perfetto trace to", *traceOut)
	}
	return nil
}

func printHistograms(reg *metrics.Registry, pat string) {
	names := reg.Names(metrics.KindHistogram)
	shown := 0
	for _, name := range names {
		h, _ := reg.HistogramByName(name)
		switch {
		case pat == "all":
		case pat == "top":
			if h.Count() == 0 {
				continue
			}
		default:
			if !strings.Contains(name, pat) {
				continue
			}
		}
		fmt.Printf("%s\n%s\n", name, indent(h.String(), "  "))
		shown++
	}
	if shown == 0 {
		fmt.Printf("no histograms matching %q recorded anything (try -hist all)\n\n", pat)
	}
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("simscope campaign", flag.ExitOnError)
	cacheDir := fs.String("cache", ".campaign", "cache directory")
	spansIn := fs.String("spans", "", "span JSONL from `campaign run -span-out` (renders the span view instead of the cache view)")
	topN := fs.Int("top", 10, "with -spans: how many slowest cells to list")
	fs.Parse(args)

	if *spansIn != "" {
		return spanView(*spansIn, *topN)
	}

	cache, err := campaign.OpenCache(*cacheDir)
	if err != nil {
		return err
	}
	entries, err := cache.Entries()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("cache at %s is empty", *cacheDir)
	}

	t := stats.NewTable(fmt.Sprintf("simscope: %d cached cell(s) at %s", len(entries), *cacheDir),
		"Cell", "IPC", "Squash/KI", "L1 miss", "Traffic")
	for _, e := range entries {
		cell := e.Workload + "/" + string(e.Policy)
		if e.Variant != "" {
			cell += "/" + e.Variant
		}
		if e.Seed > 1 {
			cell += fmt.Sprintf("/seed%d", e.Seed)
		}
		t.AddRow(cell,
			fmt.Sprintf("%.3f", e.Result.IPC),
			fmt.Sprintf("%.2f", e.Result.SquashPKI),
			fmt.Sprintf("%.2f%%", e.Result.L1MissRate*100),
			fmt.Sprintf("%d", e.Result.Traffic.Total()))
	}
	fmt.Println(t.String())

	// Per-policy IPC profile across workloads (seed 1, base variant): the
	// campaign-level equivalent of the per-run phase plot.
	byPolicy := make(map[sim.Policy]map[string]float64)
	for _, e := range entries {
		if e.Variant != "" || e.Seed != 1 {
			continue
		}
		if byPolicy[e.Policy] == nil {
			byPolicy[e.Policy] = make(map[string]float64)
		}
		byPolicy[e.Policy][e.Workload] = e.Result.IPC
	}
	var policies []string
	for p := range byPolicy {
		policies = append(policies, string(p))
	}
	sort.Strings(policies)
	if len(policies) > 0 {
		fmt.Println("IPC across workloads (sorted by name):")
		for _, p := range policies {
			cells := byPolicy[sim.Policy(p)]
			var vals []float64
			for _, wl := range stats.SortedKeys(cells) {
				vals = append(vals, cells[wl])
			}
			lo, hi := minMax(vals)
			fmt.Printf("  %-20s %s  [%.3f .. %.3f] over %d workload(s)\n",
				p, stats.Sparkline(vals), lo, hi, len(vals))
		}
	}
	return nil
}

func writeSeries(path string, samples []sim.MetricSample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return metrics.WriteCSV(f, samples)
	}
	return metrics.WriteJSONL(f, samples)
}

// downsample shrinks vals to at most width points by averaging fixed-size
// groups, so long runs still fit one terminal line.
func downsample(vals []float64, width int) []float64 {
	if width <= 0 || len(vals) <= width {
		return vals
	}
	out := make([]float64, width)
	for i := range out {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vals[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

func gaugeSeries(samples []sim.MetricSample, name string) []float64 {
	var out []float64
	found := false
	for _, s := range samples {
		v, ok := s.Gauges[name]
		found = found || ok
		out = append(out, v)
	}
	if !found {
		return nil
	}
	return out
}

func scale(vals []float64, by float64) []float64 {
	for i := range vals {
		vals[i] *= by
	}
	return vals
}

func minMax(vals []float64) (lo, hi float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	lo, hi = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func indent(s, by string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = by + l
	}
	return strings.Join(lines, "\n") + "\n"
}

// spanView renders the observability view of a campaign: the top-N
// slowest cells (root spans) and the per-stage wall-time breakdown
// (cache-probe vs simulate vs verify vs journal-append) aggregated across
// every cell in the span file.
func spanView(path string, topN int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := obs.ReadJSONL(f)
	if err != nil {
		return err
	}
	if len(spans) == 0 {
		return fmt.Errorf("span file %s is empty", path)
	}

	// Roots are the cells; children are the stages. Retried stages (same
	// name, higher Seq) fold into the same stage bucket.
	type cell struct {
		name  string
		durNs int64
	}
	var cells []cell
	stageNs := make(map[string]int64)
	stageCount := make(map[string]int)
	var totalStageNs int64
	for _, s := range spans {
		if s.Parent == 0 {
			cells = append(cells, cell{name: s.Name, durNs: s.DurNs})
			continue
		}
		stageNs[s.Name] += s.DurNs
		stageCount[s.Name]++
		totalStageNs += s.DurNs
	}
	if len(cells) == 0 {
		return fmt.Errorf("span file %s has no root spans", path)
	}
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].durNs != cells[j].durNs {
			return cells[i].durNs > cells[j].durNs
		}
		return cells[i].name < cells[j].name
	})
	if topN > len(cells) {
		topN = len(cells)
	}

	t := stats.NewTable(fmt.Sprintf("simscope: %d cell(s) in %s, %d slowest", len(cells), path, topN),
		"Cell", "Wall", "Share")
	var totalNs int64
	for _, c := range cells {
		totalNs += c.durNs
	}
	for _, c := range cells[:topN] {
		share := 0.0
		if totalNs > 0 {
			share = float64(c.durNs) / float64(totalNs)
		}
		t.AddRow(c.name, fmtNs(c.durNs), fmt.Sprintf("%.1f%%", share*100))
	}
	fmt.Println(t.String())

	st := stats.NewTable("stage breakdown (all cells)", "Stage", "Spans", "Wall", "Share")
	for _, name := range stats.SortedKeys(stageNs) {
		share := 0.0
		if totalStageNs > 0 {
			share = float64(stageNs[name]) / float64(totalStageNs)
		}
		st.AddRow(name, fmt.Sprintf("%d", stageCount[name]), fmtNs(stageNs[name]), fmt.Sprintf("%.1f%%", share*100))
	}
	fmt.Println(st.String())
	return nil
}

// fmtNs renders a wall-clock duration at ms precision (span durations are
// ns, but cell walls are tens to hundreds of ms).
func fmtNs(ns int64) string {
	return fmt.Sprintf("%.1fms", float64(ns)/1e6)
}
