// Package metrics is a minimal stand-in for the real registry so the
// metricscomplete golden packages type-check without importing the repro
// module. The analyzer matches the *Registry parameter by type name.
package metrics

// Registry mirrors repro/internal/metrics.Registry's binding surface.
type Registry struct{}

// BindCounter mirrors the real pointer-binding registration.
func (r *Registry) BindCounter(name string, p *uint64) {}

// CounterFunc mirrors the real on-demand counter registration.
func (r *Registry) CounterFunc(name string, f func() uint64) {}

// GaugeFunc mirrors the real gauge registration.
func (r *Registry) GaugeFunc(name string, f func() float64) {}
