package campaign

import (
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/sim"
)

// smallGrid is a fixed-seed grid small enough for tests but wide enough to
// exercise the pool.
func smallGrid() Grid {
	return Grid{
		Name:         "test",
		Workloads:    []string{"astar", "gcc", "lbm", "sphinx3"},
		Policies:     []sim.Policy{sim.NonSecure, sim.CleanupSpec},
		Seeds:        []uint64{1, 2},
		Instructions: 6_000,
	}
}

// TestParallelMatchesSerial is the end-to-end determinism check: a
// 4-worker pool run must produce results identical to running every cell
// serially through sim.RunWorkload — same grid, same seeds, same bytes.
func TestParallelMatchesSerial(t *testing.T) {
	jobs := smallGrid().Jobs()

	var serial []sim.Result
	for _, j := range jobs {
		cfg := j.Config
		// The engine runs every cell instrumented; match it so the
		// comparison also pins the metric snapshots to be identical.
		cfg.Metrics = &sim.Metrics{}
		res, err := sim.RunWorkload(j.Workload, cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, res)
	}

	eng := NewEngine()
	eng.Workers = 4
	results := eng.Run(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s failed: %v", r.Job, r.Err)
		}
		if !reflect.DeepEqual(r.Result, serial[i]) {
			t.Fatalf("job %s: parallel result differs from serial:\n got %+v\nwant %+v",
				r.Job, r.Result, serial[i])
		}
	}

	// And the aggregated CSV must match byte for byte.
	var fromPool, fromSerial strings.Builder
	if err := ResultsCSV(&fromPool, results); err != nil {
		t.Fatal(err)
	}
	serialResults := make([]JobResult, len(jobs))
	for i := range jobs {
		serialResults[i] = JobResult{Job: jobs[i], Key: jobs[i].Key(), Result: serial[i]}
	}
	if err := ResultsCSV(&fromSerial, serialResults); err != nil {
		t.Fatal(err)
	}
	if fromPool.String() != fromSerial.String() {
		t.Fatal("aggregated CSV differs between parallel and serial runs")
	}
}

// TestSecondRunZeroSimulations pins cache-backed determinism: rerunning
// the same grid against a warm cache must perform zero simulations, even
// from a brand-new engine (fresh memo, disk only).
func TestSecondRunZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()

	first := NewEngine()
	first.Workers = 4
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first.Cache = cache
	results := first.Run(jobs)
	if first.Simulations() != int64(len(jobs)) {
		t.Fatalf("cold run simulated %d, want %d", first.Simulations(), len(jobs))
	}

	second := NewEngine()
	second.Workers = 4
	second.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rerun := second.Run(jobs)
	if second.Simulations() != 0 {
		t.Fatalf("warm rerun simulated %d cells, want 0", second.Simulations())
	}
	for i := range rerun {
		if !rerun[i].Cached {
			t.Fatalf("job %s not served from cache", rerun[i].Job)
		}
		if !reflect.DeepEqual(rerun[i].Result, results[i].Result) {
			t.Fatalf("job %s: cached result differs from simulated", rerun[i].Job)
		}
	}
}

// TestResumeAfterInterrupt models an interrupted campaign: only part of
// the grid made it into the cache; the resumed run simulates exactly the
// missing cells and completes.
func TestResumeAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()
	half := jobs[:len(jobs)/2]

	first := NewEngine()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first.Cache = cache
	first.Run(half) // "interrupted" after half the grid

	resumed := NewEngine()
	resumed.Workers = 4
	resumed.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Manifest = NewManifest(dir, "test")
	results := resumed.Run(jobs)
	if n := len(Failed(results)); n != 0 {
		t.Fatalf("%d jobs failed on resume", n)
	}
	if got, want := resumed.Simulations(), int64(len(jobs)-len(half)); got != want {
		t.Fatalf("resumed run simulated %d cells, want exactly the %d missing ones", got, want)
	}
	if _, done, failed := resumed.Manifest.Counts(); done != len(jobs) || failed != 0 {
		t.Fatalf("manifest after resume: done=%d failed=%d, want %d/0", done, failed, len(jobs))
	}
}

// TestResumeAfterPartialFailure injects a failing cell into the grid: the
// run must finish every good cell, retry and record the bad one as
// failed, and a rerun must re-attempt only the failed cell.
func TestResumeAfterPartialFailure(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()
	bad := Job{Workload: "no-such-workload", Config: sim.Config{Policy: sim.NonSecure, Instructions: 6_000}}
	jobs = append(jobs[:3:3], append([]Job{bad}, jobs[3:]...)...)

	eng := NewEngine()
	eng.Workers = 4
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	eng.Manifest = NewManifest(dir, "test")
	results := eng.Run(jobs)

	failed := Failed(results)
	if len(failed) != 1 || failed[0].Job.Workload != "no-such-workload" {
		t.Fatalf("failed set: %+v", failed)
	}
	if failed[0].Attempts != 2 {
		t.Fatalf("failed job attempted %d times, want 2 (one retry)", failed[0].Attempts)
	}
	for _, r := range results {
		if r.Job.Workload != "no-such-workload" && r.Err != nil {
			t.Fatalf("good cell %s failed alongside the bad one: %v", r.Job, r.Err)
		}
	}
	if _, done, failedN := eng.Manifest.Counts(); done != len(jobs)-1 || failedN != 1 {
		t.Fatalf("manifest: done=%d failed=%d", done, failedN)
	}

	// The manifest survives the process: load it back like `campaign
	// status` would.
	loaded, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("manifest not persisted")
	}
	if fails := loaded.Failures(); len(fails) != 1 || fails[0].Workload != "no-such-workload" {
		t.Fatalf("persisted failures: %+v", fails)
	}

	// Resume: only the failed cell is re-attempted, everything else is a
	// cache hit.
	resumed := NewEngine()
	resumed.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Run(jobs)
	if got := resumed.Simulations(); got != 2 { // 1 attempt + 1 retry of the bad cell
		t.Fatalf("resume simulated %d times, want 2 (bad cell only)", got)
	}
}

// TestRetryBoundsMaxCycles checks the per-job timeout: the retry attempt
// runs under the engine's bounded cycle budget.
func TestRetryBoundsMaxCycles(t *testing.T) {
	eng := NewEngine()
	if eng.RetryMaxCycles == 0 {
		t.Fatal("default engine must bound retry cycles")
	}
	// White-box: a failing job goes through the retry path without
	// mutating the original job config.
	job := Job{Workload: "no-such-workload", Config: sim.Config{Policy: sim.NonSecure}}
	jr := eng.runJob(job)
	if jr.Err == nil || jr.Attempts != 2 {
		t.Fatalf("want 2 failed attempts, got %d (err=%v)", jr.Attempts, jr.Err)
	}
	if job.Config.MaxCycles != 0 {
		t.Fatal("retry mutated the caller's job config")
	}
}

// TestPoolConcurrency hammers the pool with more workers than jobs and
// duplicate keys — the shape the -race CI job verifies.
func TestPoolConcurrency(t *testing.T) {
	g := smallGrid()
	jobs := g.Jobs()
	jobs = append(jobs, g.Jobs()...) // duplicate keys race on the memo
	eng := NewEngine()
	eng.Workers = 16
	eng.Reporter = NewReporter(io.Discard)
	results := eng.Run(jobs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", i, r.Job, r.Err)
		}
	}
	// Order invariant: results[i] corresponds to jobs[i].
	for i := range jobs {
		if results[i].Key != jobs[i].Key() {
			t.Fatalf("result %d out of order", i)
		}
	}
	// Duplicate halves must agree exactly.
	n := len(jobs) / 2
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(results[i].Result, results[i+n].Result) {
			t.Fatalf("duplicate job %s diverged", jobs[i])
		}
	}
}
