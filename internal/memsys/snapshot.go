package memsys

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/cache"
)

// SnapshotLine is one resident line in a hierarchy observer snapshot,
// identified by the level it lives in. It captures exactly the tag-array
// facts a cache attacker can learn through timing: whether a line is
// present, at which level, in what coherence state, and whether it is
// dirty. Data values are deliberately absent — they are not observable
// through the cache side channel this probe models.
type SnapshotLine struct {
	Level string        `json:"level"` // "L1D0", "L1D1", ..., "L2"
	Line  arch.LineAddr `json:"line"`
	State arch.CohState `json:"state"`
	Dirty bool          `json:"dirty,omitempty"`
	Spec  bool          `json:"spec,omitempty"` // speculative-install mark still set
}

// key orders snapshot lines (level, then address) for the merge in Diff.
func (l SnapshotLine) key() string { return fmt.Sprintf("%s/%016x", l.Level, uint64(l.Line)) }

// describe renders the observable state compactly for diff records.
func (l SnapshotLine) describe() string {
	s := l.State.String()
	if l.Dirty {
		s += "+dirty"
	}
	if l.Spec {
		s += "+spec"
	}
	return s
}

// Snapshot is a full deterministic capture of the hierarchy's tag-array
// state: every resident L1-D and L2 line, sorted by (level, address). Two
// snapshots of hierarchies that executed attacker-indistinguishable
// programs must be equal; any difference is a secret-dependent cache-state
// channel. internal/specfuzz's differential oracle is built on Diff.
type Snapshot struct {
	Lines []SnapshotLine `json:"lines"`
}

// Snapshot captures the current tag-array state of every L1-D cache and
// the shared L2. The instruction caches are excluded: the programs the
// observer model compares are byte-identical, so their fetch streams
// cannot carry a secret.
func (h *Hierarchy) Snapshot() Snapshot {
	var snap Snapshot
	add := func(level string, lines []cache.Line) {
		for _, ln := range lines {
			snap.Lines = append(snap.Lines, SnapshotLine{
				Level: level,
				Line:  ln.Tag,
				State: ln.State,
				Dirty: ln.Dirty,
				Spec:  ln.SpecInstalled,
			})
		}
	}
	for core := 0; core < h.cfg.NumCores; core++ {
		add(fmt.Sprintf("L1D%d", core), h.l1[core].SnapshotLines())
	}
	add("L2", h.l2.SnapshotLines())
	sort.Slice(snap.Lines, func(i, j int) bool { return snap.Lines[i].key() < snap.Lines[j].key() })
	return snap
}

// LineDiff is one observable difference between two snapshots: a line
// resident in one hierarchy but not the other, or resident in both with
// different observable state.
type LineDiff struct {
	Level string        `json:"level"`
	Line  arch.LineAddr `json:"line"`
	// A and B describe the line's observable state in each snapshot
	// ("absent" when not resident).
	A string `json:"a"`
	B string `json:"b"`
}

// String renders the diff for reports and minimizer logs.
func (d LineDiff) String() string {
	return fmt.Sprintf("%s line %#x: %s vs %s", d.Level, uint64(d.Line), d.A, d.B)
}

// Diff returns every observable difference between two snapshots, sorted
// by (level, address). An empty result means the two hierarchies are
// indistinguishable to a cache-state attacker at this granularity.
func (s Snapshot) Diff(o Snapshot) []LineDiff {
	var out []LineDiff
	i, j := 0, 0
	for i < len(s.Lines) || j < len(o.Lines) {
		switch {
		case j >= len(o.Lines) || (i < len(s.Lines) && s.Lines[i].key() < o.Lines[j].key()):
			a := s.Lines[i]
			out = append(out, LineDiff{Level: a.Level, Line: a.Line, A: a.describe(), B: "absent"})
			i++
		case i >= len(s.Lines) || o.Lines[j].key() < s.Lines[i].key():
			b := o.Lines[j]
			out = append(out, LineDiff{Level: b.Level, Line: b.Line, A: "absent", B: b.describe()})
			j++
		default:
			a, b := s.Lines[i], o.Lines[j]
			if da, db := a.describe(), b.describe(); da != db {
				out = append(out, LineDiff{Level: a.Level, Line: a.Line, A: da, B: db})
			}
			i++
			j++
		}
	}
	return out
}
