package fabric

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultinject"
	"repro/internal/obs"
)

// Worker executes leased cells against a coordinator reached through
// Conn. It is written as an explicit step machine — Step performs exactly
// one protocol round (acquire a lease, or execute-and-complete the held
// one) — so the chaos harness can interleave workers, clock ticks, and
// kills under a seeded schedule; Run wraps Step in the wall-clock loop
// real deployments use, with a background heartbeat renewing the lease
// while a cell simulates.
//
// Every failure path degrades, never crashes: a lost message is retried
// with deterministic backoff, a corrupt remote entry falls back to local
// simulation, an unreachable coordinator at completion time just lets the
// lease expire (the cell re-queues; at most the in-flight work is
// re-simulated — the SIGKILL guarantee, from the worker's side).
type Worker struct {
	// ID names this worker in leases and journals.
	ID string
	// Conn reaches the coordinator (possibly through FaultConn).
	Conn Conn
	// Engine executes cells locally: its cache is this worker's local
	// cache layer, its registered cell kinds (specfuzz, ...) run here.
	Engine *campaign.Engine
	// WaitBackoff is the base delay for lease-wait and message-retry
	// pacing, keyed by worker id / cell key for deterministic jitter
	// (0 disables sleeping — the chaos harness's mode).
	WaitBackoff time.Duration
	// MsgRetries bounds resends of one message (default 5). Exhausting it
	// abandons the cell to lease expiry — safe, merely wasteful.
	MsgRetries int
	// Trace, when non-nil, emits instant spans for grants, remote cache
	// hits, degradations, and completions.
	Trace *obs.Tracer
	// Faults is the worker-side chaos schedule: SiteHeartbeat drops
	// renewals, SiteStaleComplete duplicates completion sends.
	Faults *faultinject.Injector
	// RenewEvery is Run's background heartbeat period (0 = disabled; the
	// chaos harness drives renewal explicitly via Renew instead).
	RenewEvery time.Duration
	// Sleep replaces time.Sleep in tests (nil = time.Sleep).
	Sleep func(time.Duration)

	// cur is the held lease, nil between cells.
	cur *heldLease
	// waits counts consecutive wait/error rounds for backoff escalation,
	// reset by a grant.
	waits int
	// CellsRun counts cells this worker executed locally (not served
	// remotely) — the chaos tests' work-distribution probe.
	CellsRun int
	// RemoteHits counts cells served from the coordinator's shared cache.
	RemoteHits int
	// Degraded counts remote entries that failed verification and fell
	// back to local simulation.
	Degraded int
}

// heldLease is the worker's view of its granted cell.
type heldLease struct {
	key   string
	lease uint64
	ttl   uint64
	job   campaign.Job
}

// Step runs one protocol round: leaseless workers ask for work; holders
// execute and complete. done=true means the coordinator declared the
// campaign settled. Errors are internal hard faults (nil engine); every
// transport-level failure is absorbed and retried.
func (w *Worker) Step() (done bool, err error) {
	if w.Engine == nil {
		return false, fmt.Errorf("fabric: worker %s has no engine", w.ID)
	}
	if w.cur == nil {
		return w.stepLease()
	}
	w.stepExecute()
	return false, nil
}

// stepLease asks the coordinator for work.
func (w *Worker) stepLease() (bool, error) {
	resp, err := w.Conn.Do(Msg{Type: MsgLeaseReq, Worker: w.ID})
	if err != nil {
		w.pause()
		return false, nil // transport fault: retry next step
	}
	switch resp.Type {
	case MsgGrant:
		if resp.Job == nil || resp.Key == "" {
			w.pause()
			return false, nil // damaged grant: re-request
		}
		w.cur = &heldLease{key: resp.Key, lease: resp.Lease, ttl: resp.TTLTicks, job: *resp.Job}
		w.waits = 0
		w.Trace.Instant("fabric-grant", spanKey(resp.Key, resp.Lease), obs.Attr{K: "worker", V: w.ID})
		return false, nil
	case MsgShutdown:
		return true, nil
	default:
		// MsgWait, nacks, and anything mangled in flight: back off, retry.
		w.pause()
		return false, nil
	}
}

// stepExecute resolves the held cell — local cache, then the shared
// remote namespace, then local simulation — and reports completion.
func (w *Worker) stepExecute() {
	cur := w.cur
	w.cur = nil
	stopRenew := w.startRenewal(cur)
	msg := w.execute(cur)
	stopRenew()
	w.complete(cur, msg)
}

// execute produces the completion message for the held cell.
func (w *Worker) execute(cur *heldLease) Msg {
	// Local probe: the engine's disk cache may already hold this cell
	// (a previous life of this worker, or a shared filesystem).
	if cache := w.Engine.Cache; cache != nil {
		if e, ok := cache.Get(cur.key); ok {
			return Msg{Type: MsgComplete, Status: campaign.StatusDone, Entry: &e}
		}
	}
	// Remote probe: another worker may have simulated this cell already
	// (a reclaimed lease re-granted to us mid-flight, a shared dep). The
	// coordinator's reply crosses the wire, so the entry is re-verified
	// here — a corrupt remote read degrades to local simulation, never a
	// crash and never a poisoned local cache.
	if resp, err := w.Conn.Do(Msg{Type: MsgEntryReq, Worker: w.ID, Key: cur.key}); err == nil && resp.Type == MsgEntry && resp.Entry != nil {
		if resp.Entry.Key == cur.key && resp.Entry.Verify() {
			w.RemoteHits++
			w.Trace.Instant("fabric-remote-hit", spanKey(cur.key, cur.lease), obs.Attr{K: "worker", V: w.ID})
			if cache := w.Engine.Cache; cache != nil {
				if err := cache.PutEntry(*resp.Entry); err != nil {
					w.warn(cur, "caching remote entry: "+err.Error())
				}
			}
			return Msg{Type: MsgComplete, Status: campaign.StatusDone, Entry: resp.Entry}
		}
		w.Degraded++
		w.Trace.Instant("fabric-degrade", spanKey(cur.key, cur.lease),
			obs.Attr{K: "worker", V: w.ID}, obs.Attr{K: "why", V: "remote entry failed verification"})
	}
	// Simulate locally.
	w.CellsRun++
	r := w.Engine.RunJob(cur.job)
	msg := Msg{
		Type:     MsgComplete,
		Status:   campaign.StatusDone,
		Attempts: r.Attempts,
	}
	switch {
	case r.Quarantined:
		msg.Status = campaign.StatusQuarantined
		msg.Dump = r.DumpPath
		if r.Err != nil {
			msg.Err = r.Err.Error()
		}
	case r.Err != nil:
		msg.Status = campaign.StatusFailed
		msg.Err = r.Err.Error()
	default:
		e, err := campaign.NewEntry(r.Job, r.Result, r.Aux)
		if err != nil {
			msg.Status = campaign.StatusFailed
			msg.Err = err.Error()
			break
		}
		msg.Entry = &e
	}
	return msg
}

// complete reports the cell's outcome, retrying through transport faults.
// A nacked upload (the wire corrupted the entry) is rebuilt from the
// local cache and resent; exhausting MsgRetries abandons the cell to
// lease expiry.
func (w *Worker) complete(cur *heldLease, msg Msg) {
	msg.Worker = w.ID
	msg.Key = cur.key
	msg.Lease = cur.lease
	dup := w.Faults.Check(faultinject.SiteStaleComplete) == faultinject.KindDuplicate
	retries := w.MsgRetries
	if retries == 0 {
		retries = 5
	}
	for attempt := 1; attempt <= retries; attempt++ {
		resp, err := w.Conn.Do(msg)
		if err != nil {
			w.sleepFor(campaign.Backoff(cur.key, attempt, w.WaitBackoff))
			continue
		}
		switch resp.Type {
		case MsgCompleteAck:
			if dup {
				// Injected stale double-completion: resend the identical
				// message. The coordinator must count it, not re-settle.
				if _, err := w.Conn.Do(msg); err != nil {
					w.warn(cur, "duplicate completion send failed (harmless): "+err.Error())
				}
			}
			w.Trace.Instant("fabric-complete-sent", spanKey(cur.key, cur.lease),
				obs.Attr{K: "worker", V: w.ID}, obs.Attr{K: "status", V: msg.Status},
				obs.Attr{K: "stale", V: strconv.FormatBool(resp.Stale)})
			return
		case MsgNack:
			// Rebuild the entry from local truth — the wire may have
			// mangled the last copy — and try again.
			if msg.Entry != nil && w.Engine.Cache != nil {
				if e, ok := w.Engine.Cache.Get(cur.key); ok {
					msg.Entry = &e
				}
			}
			w.sleepFor(campaign.Backoff(cur.key, attempt, w.WaitBackoff))
		default:
			w.sleepFor(campaign.Backoff(cur.key, attempt, w.WaitBackoff))
		}
	}
	w.warn(cur, "completion undeliverable; abandoning cell to lease expiry")
}

// startRenewal spawns Run's background heartbeat for the held cell,
// returning its stop function. With RenewEvery zero (step-machine mode)
// renewal is the harness's job and this is a no-op.
func (w *Worker) startRenewal(cur *heldLease) func() {
	if w.RenewEvery <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(w.RenewEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				w.renew(cur)
			}
		}
	}()
	return func() { close(stop) }
}

// renew sends one heartbeat for the held cell. SiteHeartbeat faults
// swallow it — the "worker alive but heartbeats lost" failure, which must
// cost at most a re-simulation, never a wedge.
func (w *Worker) renew(cur *heldLease) {
	if w.Faults.Check(faultinject.SiteHeartbeat) == faultinject.KindDrop {
		return
	}
	// A lost or nacked heartbeat is not fatal: the lease may expire and
	// re-queue, but our eventual completion is still content-valid — so
	// the reply is deliberately ignored.
	_, _ = w.Conn.Do(Msg{Type: MsgRenew, Worker: w.ID, Key: cur.key, Lease: cur.lease})
}

// Renew sends one heartbeat for the currently held lease (the chaos
// harness's step-machine entry point). No-op without a held lease.
func (w *Worker) Renew() {
	if w.cur != nil {
		w.renew(w.cur)
	}
}

// Holding returns the key of the currently held lease ("" between cells).
func (w *Worker) Holding() string {
	if w.cur == nil {
		return ""
	}
	return w.cur.key
}

// Run steps until the coordinator declares the campaign settled. The
// wall-clock deployment loop: `campaign work` calls this.
func (w *Worker) Run() error {
	for {
		done, err := w.Step()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
	}
}

// pause backs off after a wait or transport fault, escalating with
// consecutive occurrences; jitter derives from the worker id, so two
// waiting workers never thundering-herd in lockstep.
func (w *Worker) pause() {
	w.waits++
	attempt := w.waits
	if attempt > 8 {
		attempt = 8 // cap the exponent: ~quarter-second base → ~30s max
	}
	w.sleepFor(campaign.Backoff(w.ID, attempt, w.WaitBackoff))
}

func (w *Worker) sleepFor(d time.Duration) {
	if d <= 0 {
		return
	}
	if w.Sleep != nil {
		w.Sleep(d)
		return
	}
	time.Sleep(d)
}

func (w *Worker) warn(cur *heldLease, msg string) {
	w.Trace.Instant("fabric-warn", spanKey(cur.key, cur.lease),
		obs.Attr{K: "worker", V: w.ID}, obs.Attr{K: "msg", V: msg})
}
