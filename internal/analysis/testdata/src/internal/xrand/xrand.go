// Package xrand is the golden stand-in for the module's seeded
// generators: detertaint treats its Hash*/New functions as seed/ID
// derivation sinks (and skips the package itself, which is allowed to be
// about randomness).
package xrand

// Rand is a deterministic generator seeded explicitly.
type Rand struct{ state uint64 }

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 steps the generator.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return r.state
}

// Hash64 mixes words into a derived seed.
func Hash64(words ...uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range words {
		h ^= w
		h *= 1099511628211
	}
	return h
}
