package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 output: one run, one driver (simlint), one rule per
// analyzer, one result per finding. The minimal subset here is what the
// GitHub code-scanning ingester and editor SARIF viewers consume: rule
// metadata, result message, and a physical location with line/column.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders findings as a SARIF 2.1.0 document. File names are
// emitted relative to root (typically the module root) with forward
// slashes, so the log is stable across checkouts.
func SARIF(root string, findings []Finding) ([]byte, error) {
	byName := make(map[string]bool)
	var rules []sarifRule
	addRule := func(name, doc string) {
		if byName[name] {
			return
		}
		byName[name] = true
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range Analyzers() {
		addRule(a.Name, a.Doc)
	}
	// The "directive" pseudo-analyzer reports malformed suppressions.
	addRule("directive", "malformed or retired //simlint suppression directives")

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		addRule(f.Analyzer, "")
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		uri = filepath.ToSlash(uri)
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "simlint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
