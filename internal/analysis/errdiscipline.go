package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerErrDiscipline guards the campaign engine's no-panic contract
// (PR 1): a failed simulation cell must come back to the engine as an
// error to be retried, recorded in the manifest, and listed by paperbench
// — not tear down the whole worker pool. Under internal/, calls to the
// panic builtin are flagged unless the enclosing function is a must*
// helper (a function whose documented contract is to panic on programmer
// error). Calls to recover are flagged everywhere under internal/: a
// quiet recover hides the very faults the quarantine machinery exists to
// surface, so each recovery boundary must justify itself. Deliberate
// sites keep their panic/recover behind
// //simlint:allow errdiscipline -- <justification>.
var AnalyzerErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "forbid unjustified panic/recover in internal/ simulation packages",
	Run:  runErrDiscipline,
}

func runErrDiscipline(p *Pass) {
	if !hasPathPrefix(p.Pkg.Rel(), "internal") {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			must := isMustName(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
					return true
				}
				switch id.Name {
				case "panic":
					if must {
						return true
					}
					p.Reportf(call.Pos(),
						"panic in a simulation package: return an error so the campaign engine can retry and record the cell (or move it into a must* helper / annotate //simlint:allow errdiscipline -- <why>)")
				case "recover":
					// recover is flagged even inside must* helpers: a "must"
					// contract is about panicking, never about swallowing
					// panics.
					p.Reportf(call.Pos(),
						"recover in a simulation package: swallowing a panic hides an engine fault; quarantine it with evidence or annotate //simlint:allow errdiscipline -- <why>")
				}
				return true
			})
		}
	}
}

// isMustName reports whether name marks a helper whose documented contract
// is to panic (mustX, MustX).
func isMustName(name string) bool {
	return strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must") || name == "init"
}
