// Package sim is the cachekey analyzer's golden Config definition; the
// Key function under inspection lives in example.com/lint/internal/campaign.
package sim

// Trace is an observability hook type.
type Trace struct{}

// Metrics is an observability hook type.
type Metrics struct{}

// Config mirrors the real sim.Config shape: keyed scalar fields plus
// observability hooks that must be excluded AND zeroed.
type Config struct {
	Policy       string
	Instructions uint64
	Seed         uint64

	// Zeroed correctly in campaign.Key.
	Trace *Trace `json:"-"`
	// Excluded from the canonical JSON but never zeroed in Key.
	Metrics *Metrics `json:"-"` // want `Config.Metrics is excluded from the cache key \(json:"-"\) but not zeroed`
	// Unexported: encoding/json skips it silently.
	hidden uint64 // want `unexported Config field hidden`
}
