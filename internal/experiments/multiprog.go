package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/memsys"
	"repro/internal/smt"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Multiprogrammed is an extension experiment (not in the paper, which
// evaluates a single core): two full pipelines on separate cores share the
// L2 and directory while running different workloads, and CleanupSpec's
// throughput cost is measured against the non-secure baseline under that
// contention. Run via `paperbench -exp mp2`.
func (r *Runner) Multiprogrammed() Report {
	pairs := [][2]string{
		{"astar", "lbm"},
		{"gobmk", "libq"},
		{"sphinx3", "gcc"},
		{"soplex", "hmmer"},
	}
	cycles := 4 * r.Opts.Instructions // cycle budget per run

	runPair := func(a, b string, secure bool) (ipcSum float64) {
		pa, _ := workload.ProfileByName(a)
		pb, _ := workload.ProfileByName(b)
		hcfg := memsys.DefaultConfig(2)
		var polA, polB cpu.Policy
		if secure {
			hcfg = core.HierarchyConfig(hcfg)
			polA, polB = core.New(), core.New()
		} else {
			polA, polB = cpu.NonSecure{}, cpu.NonSecure{}
		}
		p := smt.NewCrossCorePair(smt.Config{
			Hierarchy: hcfg,
			Core:      cpu.DefaultConfig(),
			ProgA:     pa.Build(),
			ProgB:     pb.Build(),
			PolA:      polA,
			PolB:      polB,
		})
		p.Run(arch.Cycle(cycles))
		return float64(p.A.Stats.Committed+p.B.Stats.Committed) / float64(cycles)
	}

	t := stats.NewTable("Multiprogrammed 2-core throughput (extension, not in paper)",
		"Pair", "Baseline IPC-sum", "CleanupSpec IPC-sum", "Slowdown")
	var slows []float64
	for _, pr := range pairs {
		if !r.Quiet {
			fmt.Printf("  running pair %s+%s...\n", pr[0], pr[1])
		}
		base := runPair(pr[0], pr[1], false)
		cs := runPair(pr[0], pr[1], true)
		slow := base/cs - 1
		slows = append(slows, slow+1)
		t.AddRow(pr[0]+"+"+pr[1],
			fmt.Sprintf("%.2f", base),
			fmt.Sprintf("%.2f", cs),
			fmt.Sprintf("%+.1f%%", slow*100))
	}
	return Report{
		ID: "mp2", Title: "Two-core multiprogrammed contention",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Average throughput cost %.1f%%; the Undo approach stays cheap under shared-L2 contention.",
				stats.Slowdown(stats.Geomean(slows))),
			"Extension beyond the paper's single-core evaluation; cross-core window protection and GetS-Safe are active.",
		},
	}
}
