package analysis

// hotPathRoots is the committed list of per-cycle entry points the
// hotalloc analyzer treats as roots, in addition to functions annotated
// with a //simlint:hot directive. Each entry is "<package-rel>.<func>"
// or "<package-rel>.<Recv>.<method>" — the key hotRootKey renders.
//
// Entries that do not resolve in the analyzed module are ignored, so the
// golden testdata mini-modules declare their roots purely via directives.
//
// Everything the simulator executes once per simulated cycle hangs off
// Machine.Step: the memory hierarchy tick (cache/memsys/dram/coherence),
// wake/completion processing, commit/issue/dispatch/fetch, and the
// metrics sampler's disabled path. Adding a root here (or growing what an
// existing root reaches) widens the allocation budget CI enforces via
// HOTPATH_BUDGET.json — re-record it with `simlint -hotreport` and
// justify the growth in review.
var hotPathRoots = []string{
	"internal/cpu.Machine.Step",
}
