// Command cleanupspec-sim runs one workload under one security policy and
// prints the full measurement record — the single-run workhorse behind the
// experiment harness.
//
// Usage:
//
//	cleanupspec-sim -workload astar -policy cleanupspec -instructions 300000
//	cleanupspec-sim -list
//	cleanupspec-sim -workload soplex -compare   # all policies side by side
//	cleanupspec-sim -workload astar -metrics-out astar.jsonl -trace-out astar.trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/metrics"
	"repro/sim"
)

func main() {
	var (
		wl           = flag.String("workload", "astar", "workload name (see -list)")
		pol          = flag.String("policy", "cleanupspec", "policy: nonsecure, cleanupspec, invisispec-initial, invisispec-revised, delay-all, delay-on-miss, value-predict")
		instructions = flag.Uint64("instructions", 300_000, "committed instructions to measure")
		seed         = flag.Uint64("seed", 1, "randomization seed")
		list         = flag.Bool("list", false, "list workloads and policies")
		compare      = flag.Bool("compare", false, "run every policy and compare against nonsecure")
		traceN       = flag.Int("trace", 0, "dump the last N trace events after the run")
		metricsOut   = flag.String("metrics-out", "", "write the interval time series here (.csv = CSV, else JSONL)")
		traceOut     = flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto) file here")
		sampleEvery  = flag.Uint64("sample-every", 1000, "metrics sampling interval in cycles")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, w := range sim.Workloads() {
			fmt.Println("  ", w)
		}
		fmt.Println("policies:")
		for _, p := range sim.Policies() {
			fmt.Println("  ", p)
		}
		return
	}

	if *compare {
		base, err := sim.RunWorkload(*wl, sim.Config{Policy: sim.NonSecure, Instructions: *instructions, Seed: *seed})
		check(err)
		fmt.Printf("%-20s %12s %8s %10s\n", "policy", "cycles", "IPC", "slowdown")
		fmt.Printf("%-20s %12d %8.3f %10s\n", "nonsecure", base.Cycles, base.IPC, "-")
		for _, p := range sim.Policies()[1:] {
			r, err := sim.RunWorkload(*wl, sim.Config{Policy: p, Instructions: *instructions, Seed: *seed})
			check(err)
			fmt.Printf("%-20s %12d %8.3f %+9.1f%%\n", p, r.Cycles, r.IPC,
				(float64(r.Cycles)/float64(base.Cycles)-1)*100)
		}
		return
	}

	cfg := sim.Config{Policy: sim.Policy(*pol), Instructions: *instructions, Seed: *seed}
	var ring *sim.TraceRing
	if *traceN > 0 {
		ring = sim.NewTraceRing(*traceN)
		cfg.Trace = ring
	}
	var col *sim.Metrics
	if *metricsOut != "" || *traceOut != "" {
		col = &sim.Metrics{}
		cfg.Metrics = col
		cfg.SampleEvery = *sampleEvery
		if *traceOut != "" && cfg.Trace == nil {
			// The Perfetto export wants the event stream; retain a large
			// tail by default when -trace was not given.
			cfg.Trace = sim.NewTraceRing(1 << 17)
		}
	}
	r, err := sim.RunWorkload(*wl, cfg)
	check(err)
	if *metricsOut != "" {
		check(writeSeries(*metricsOut, col.Samples()))
		fmt.Fprintf(os.Stderr, "cleanupspec-sim: wrote %d sample(s) to %s\n", len(col.Samples()), *metricsOut)
	}
	if *traceOut != "" {
		check(writeChromeTrace(*traceOut, *wl, cfg, col.Samples()))
		fmt.Fprintf(os.Stderr, "cleanupspec-sim: wrote Perfetto trace to %s\n", *traceOut)
	}
	fmt.Printf("workload:            %s\n", r.Workload)
	fmt.Printf("policy:              %s\n", r.Policy)
	fmt.Printf("instructions:        %d\n", r.Instructions)
	fmt.Printf("cycles:              %d (IPC %.3f)\n", r.Cycles, r.IPC)
	fmt.Printf("branch mispredict:   %.2f%%\n", r.MispredictRate*100)
	fmt.Printf("L1-D miss rate:      %.2f%%\n", r.L1MissRate*100)
	fmt.Printf("squashes/kilo-inst:  %.2f\n", r.SquashPKI)
	fmt.Printf("loads per squash:    %.2f\n", r.LoadsPerSquash)
	fmt.Printf("squashed-load mix:   NI %.0f%%  L1H %.0f%%  L2H %.2f%%  L2M %.2f%%\n",
		r.SquashedPctNI, r.SquashedPctL1H, r.SquashedPctL2H, r.SquashedPctL2M)
	fmt.Printf("squashed L1-misses:  %.0f%% inflight (dropped) / %.0f%% executed (cleaned)\n",
		r.InflightFrac*100, r.ExecutedFrac*100)
	fmt.Printf("stall per squash:    %.1f wait + %.1f cleanup cycles\n", r.WaitPerSquash, r.CleanupPerSquash)
	fmt.Printf("traffic:             regular %d, invisible %d, update %d, cleanup %d, writebacks %d\n",
		r.Traffic.Regular, r.Traffic.Invisible, r.Traffic.Update, r.Traffic.Cleanup, r.Traffic.Writebacks)
	if ring != nil {
		fmt.Printf("\ntrace (last %d of %d events):\n", len(ring.Events()), ring.Total())
		if _, err := ring.WriteTo(os.Stdout); err != nil {
			check(err)
		}
	}
}

func writeSeries(path string, samples []sim.MetricSample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".csv") {
		return metrics.WriteCSV(f, samples)
	}
	return metrics.WriteJSONL(f, samples)
}

func writeChromeTrace(path, wl string, cfg sim.Config, samples []sim.MetricSample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return metrics.ExportChromeTrace(f, metrics.ChromeTraceOpts{
		Process: string(cfg.Resolved().Policy) + "/" + wl,
		Events:  cfg.Trace.Events(),
		Samples: samples,
		Counters: []metrics.CounterSeries{
			{Name: "ipc", Values: metrics.Rates(samples, "cpu.committed")},
			{Name: "squash-per-kcycle", Values: scale(metrics.Rates(samples, "cpu.squashes"), 1000)},
			{Name: "l1d-miss-rate", Values: metrics.RatioDeltas(samples, "l1d.misses", "l1d.accesses")},
		},
	})
}

func scale(vals []float64, by float64) []float64 {
	for i := range vals {
		vals[i] *= by
	}
	return vals
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cleanupspec-sim:", err)
		os.Exit(1)
	}
}
