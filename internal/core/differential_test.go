package core

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/invisispec"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/policy"
)

// TestDifferentialAgainstInterpreter runs random halting programs on the
// sequential reference interpreter and on the out-of-order machine under
// every security policy, and requires bit-identical architectural results:
// registers, the memory window, and the committed instruction count.
//
// This is the strongest correctness statement the repository makes about
// the core: wrong-path execution, squashes, store-to-load forwarding,
// memory-order violations, in-flight drops, and CleanupSpec's cache
// surgery never alter architectural state.
func TestDifferentialAgainstInterpreter(t *testing.T) {
	policies := map[string]func() cpu.Policy{
		"nonsecure":          func() cpu.Policy { return cpu.NonSecure{} },
		"cleanupspec":        func() cpu.Policy { return New() },
		"invisispec-initial": func() cpu.Policy { return invisispec.New(invisispec.Initial) },
		"invisispec-revised": func() cpu.Policy { return invisispec.New(invisispec.Revised) },
		"delay-all":          func() cpu.Policy { return policy.Delay{} },
		"delay-on-miss":      func() cpu.Policy { return policy.DelayOnMiss{} },
		"value-predict":      func() cpu.Policy { return policy.NewValuePredict() },
	}
	const seeds = 25
	for seed := uint64(1); seed <= seeds; seed++ {
		prog := isa.RandomProgram(seed, isa.GenConfig{Calls: true, Loops: true})

		ref := isa.NewInterp(prog)
		if ref.Run(2_000_000) >= 2_000_000 {
			t.Fatalf("seed %d: interpreter did not halt", seed)
		}

		for name, mk := range policies {
			name, mk := name, mk
			t.Run(fmt.Sprintf("seed%d/%s", seed, name), func(t *testing.T) {
				hcfg := memsys.DefaultConfig(1)
				if name == "cleanupspec" {
					hcfg = HierarchyConfig(hcfg)
				}
				h := memsys.New(hcfg)
				ccfg := cpu.DefaultConfig()
				ccfg.MaxCycles = 20_000_000
				m := cpu.New(ccfg, prog, h, mk())
				st := m.Run(0)
				if !m.Halted() {
					t.Fatalf("machine did not halt (committed %d)", st.Committed)
				}
				if st.Committed != ref.Executed {
					t.Errorf("committed %d instructions, interpreter executed %d",
						st.Committed, ref.Executed)
				}
				for r := isa.Reg(1); r < isa.NumRegs; r++ {
					if got, want := m.Reg(r), ref.Reg(r); got != want {
						t.Errorf("r%d = %#x, interpreter says %#x", r, got, want)
					}
				}
				for w := 0; w < 64; w++ {
					addr := arch.Addr(0x1000 + w*8)
					if got, want := m.Memory().Read64(addr), ref.Memory().Read64(addr); got != want {
						t.Errorf("mem[%v] = %#x, interpreter says %#x", addr, got, want)
					}
				}
			})
		}
	}
}

// TestDifferentialStress widens the search with bigger programs and a tiny
// memory window (maximum aliasing) on the two most intricate policies.
func TestDifferentialStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	for seed := uint64(100); seed < 140; seed++ {
		prog := isa.RandomProgram(seed, isa.GenConfig{
			Segments: 30, OpsPerSegment: 10, MemWindowWords: 8, Calls: true, Loops: true,
		})
		ref := isa.NewInterp(prog)
		if ref.Run(5_000_000) >= 5_000_000 {
			t.Fatalf("seed %d: interpreter did not halt", seed)
		}
		for _, mk := range []func() cpu.Policy{
			func() cpu.Policy { return New() },
			func() cpu.Policy { return invisispec.New(invisispec.Initial) },
		} {
			h := memsys.New(HierarchyConfig(memsys.DefaultConfig(1)))
			ccfg := cpu.DefaultConfig()
			ccfg.MaxCycles = 50_000_000
			m := cpu.New(ccfg, prog, h, mk())
			m.Run(0)
			if !m.Halted() {
				t.Fatalf("seed %d: machine did not halt", seed)
			}
			for r := isa.Reg(1); r < isa.NumRegs; r++ {
				if m.Reg(r) != ref.Reg(r) {
					t.Fatalf("seed %d: r%d = %#x, want %#x", seed, r, m.Reg(r), ref.Reg(r))
				}
			}
			for w := 0; w < 8; w++ {
				addr := arch.Addr(0x1000 + w*8)
				if m.Memory().Read64(addr) != ref.Memory().Read64(addr) {
					t.Fatalf("seed %d: mem[%v] mismatch", seed, addr)
				}
			}
		}
	}
}
