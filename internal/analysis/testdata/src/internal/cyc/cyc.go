// Package cyc is the cycletyping analyzer's golden input.
package cyc

// Cycle is a correctly-typed named cycle type (the arch.Cycle pattern).
type Cycle uint64

// Timing mixes correct and truncation-prone latency fields.
type Timing struct {
	HitLat      uint64  // ok: uint64
	MissLat     Cycle   // ok: named type with uint64 underlying
	FetchLat    int     // want `field FetchLat holds a cycle count or latency but is int`
	DrainCycles int32   // want `field DrainCycles holds a cycle count or latency but is int32`
	AvgLatency  float64 // ok: fractional-cycle aggregate, not an integer truncation hazard
}

// Wait computes a stall; the int32 parameter is the truncation hazard.
func Wait(hitLat uint64, missLat int32) uint64 { // want `parameter missLat holds a cycle count or latency but is int32`
	return hitLat + uint64(missLat)
}

// TotalCycles returns an int result where a uint64 is required.
func TotalCycles(n int) (totalCycles int) { // want `result totalCycles holds a cycle count or latency but is int`
	return n
}
