package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerErrDiscipline guards the campaign engine's no-panic contract
// (PR 1): a failed simulation cell must come back to the engine as an
// error to be retried, recorded in the manifest, and listed by paperbench
// — not tear down the whole worker pool. Under internal/, calls to the
// panic builtin are flagged unless the enclosing function is a must*
// helper (a function whose documented contract is to panic on programmer
// error). Deliberate construction-time invariant checks keep their panics
// behind //simlint:allow errdiscipline -- <justification>.
var AnalyzerErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "forbid panic in internal/ simulation packages outside must* helpers",
	Run:  runErrDiscipline,
}

func runErrDiscipline(p *Pass) {
	if !hasPathPrefix(p.Pkg.Rel(), "internal") {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isMustName(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
					return true
				}
				p.Reportf(call.Pos(),
					"panic in a simulation package: return an error so the campaign engine can retry and record the cell (or move it into a must* helper / annotate //simlint:allow errdiscipline -- <why>)")
				return true
			})
		}
	}
}

// isMustName reports whether name marks a helper whose documented contract
// is to panic (mustX, MustX).
func isMustName(name string) bool {
	return strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must") || name == "init"
}
