package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFsckDeep desynchronizes a warm cache's manifest journal from its
// entry store in both directions — a done row whose entry vanished, and
// an entry whose journal row was lost — and checks the deep scan reports
// exactly that drift, a shallow scan stays blind to it, and prune
// restores agreement.
func TestFsckDeep(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()[:4]
	eng := NewEngine()
	eng.Workers = 1
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	eng.Manifest = NewManifest(dir, "test")
	if n := len(Failed(eng.Run(jobs))); n != 0 {
		t.Fatalf("%d jobs failed in setup run", n)
	}

	rep, err := FsckWith(dir, FsckOptions{Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || !rep.Deep {
		t.Fatalf("fresh cache not deep-clean: %s", rep)
	}

	// Drift 1: delete the first entry out from under its done row (a lost
	// cache.Put, or a prune the journal never heard about).
	k0 := mustKey(t, jobs[0])
	if err := os.Remove(filepath.Join(dir, k0[:2], k0+".json")); err != nil {
		t.Fatal(err)
	}

	// Drift 2: strip the second job's row from the journal while its entry
	// stays (a crash between cache.Put and Manifest.Append).
	k1 := mustKey(t, jobs[1])
	data, err := os.ReadFile(ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.Contains(line, k1) {
			kept = append(kept, line)
		}
	}
	if err := os.WriteFile(ManifestPath(dir), []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	// A shallow scan sees nothing: every remaining file is intact.
	rep, err = Fsck(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("shallow scan should not see journal drift: %s", rep)
	}

	// The deep scan sees both directions.
	rep, err = FsckWith(dir, FsckOptions{Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("deep scan missed the drift")
	}
	if len(rep.MissingData) != 1 || rep.MissingData[0].Path != k0 {
		t.Fatalf("missing-data = %+v, want the deleted entry's row %s", rep.MissingData, k0)
	}
	if len(rep.Unjournaled) != 1 || !strings.Contains(rep.Unjournaled[0].Path, k1) {
		t.Fatalf("unjournaled = %+v, want the rowless entry %s", rep.Unjournaled, k1)
	}

	// Prune repairs both: the stale done row is demoted to pending, the
	// rowless entry is removed, and a deep re-scan agrees.
	rep, err = FsckWith(dir, FsckOptions{Deep: true, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pruned) != 2 {
		t.Fatalf("pruned %v, want the entry file and the journal row", rep.Pruned)
	}
	rep, err = FsckWith(dir, FsckOptions{Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("cache still drifted after prune: %s", rep)
	}
	m, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("manifest unreadable after prune")
	}
	if rec := m.Jobs[k0]; rec == nil || rec.Status != StatusPending {
		t.Fatalf("demoted row = %+v, want status pending", m.Jobs[k0])
	}

	// Resume heals the drift: exactly the two affected cells re-simulate.
	again := NewEngine()
	again.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	m.Grid = "test"
	again.Manifest = m
	if n := len(Failed(again.Run(jobs))); n != 0 {
		t.Fatalf("%d jobs failed after prune", n)
	}
	if got := again.Simulations(); got != 2 {
		t.Fatalf("post-prune run simulated %d cells, want the 2 drifted ones", got)
	}
	rep, err = FsckWith(dir, FsckOptions{Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("cache not deep-clean after healing run: %s", rep)
	}
}
