package experiments

import (
	"strings"
	"testing"
)

// smallRunner keeps experiment tests fast.
func smallRunner() *Runner {
	r := NewRunner(Options{Instructions: 15_000, SpectreIterations: 4, MTSteps: 3_000})
	r.Quiet = true
	return r
}

func TestTable2MitigationsVerified(t *testing.T) {
	rep := smallRunner().Table2()
	s := rep.String()
	if strings.Contains(s, "NO") {
		t.Fatalf("a coherence mitigation failed verification:\n%s", s)
	}
}

func TestStorageReport(t *testing.T) {
	rep := smallRunner().Storage()
	if !strings.Contains(rep.String(), "800") {
		t.Fatalf("unexpected storage total:\n%s", rep)
	}
}

func TestByIDDispatch(t *testing.T) {
	r := smallRunner()
	for _, id := range []string{"table2", "storage"} {
		rep, err := r.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ID != id {
			t.Fatalf("ByID(%q) returned %q", id, rep.ID)
		}
	}
	if _, err := r.ByID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestMemoizationReusesRuns(t *testing.T) {
	r := smallRunner()
	r.run("gcc", "nonsecure", nil, "")
	n := len(r.memo)
	r.run("gcc", "nonsecure", nil, "")
	if len(r.memo) != n {
		t.Fatal("identical run not memoized")
	}
	r.run("gcc", "cleanupspec", nil, "")
	if len(r.memo) != n+1 {
		t.Fatal("distinct run not recorded")
	}
}

func TestFigure9ReportShape(t *testing.T) {
	rep := smallRunner().Figure9()
	md := rep.Markdown()
	if !strings.Contains(md, "dedup") || !strings.Contains(md, "AVG") {
		t.Fatalf("Figure 9 report missing rows:\n%s", md)
	}
}

func TestFigure11ReportVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("spectre runs")
	}
	rep := smallRunner().Figure11()
	s := rep.String()
	if !strings.Contains(s, "NonSecure: LEAKED") {
		t.Fatalf("non-secure PoC did not leak:\n%s", s)
	}
	if !strings.Contains(s, "CleanupSpec: no leak") {
		t.Fatalf("CleanupSpec PoC leaked:\n%s", s)
	}
}

func TestRendering(t *testing.T) {
	rep := smallRunner().Storage()
	if rep.String() == "" || rep.Markdown() == "" {
		t.Fatal("empty rendering")
	}
	if !strings.HasPrefix(rep.Markdown(), "## storage") {
		t.Fatalf("markdown header:\n%s", rep.Markdown())
	}
}

// TestAllExperimentsSmoke runs every experiment end to end at a tiny window
// — the whole-harness regression that catches panics and empty tables.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass")
	}
	r := NewRunner(Options{Instructions: 8_000, SpectreIterations: 3, MTSteps: 2_000})
	r.Quiet = true
	reports := r.All()
	if len(reports) != 15 {
		t.Fatalf("%d reports, want 15", len(reports))
	}
	for _, rep := range reports {
		if rep.ID == "" || rep.Title == "" {
			t.Errorf("report missing metadata: %+v", rep)
		}
		if len(rep.Tables) == 0 {
			t.Errorf("%s: no tables", rep.ID)
		}
		if rep.String() == "" || rep.Markdown() == "" {
			t.Errorf("%s: empty rendering", rep.ID)
		}
	}
}
