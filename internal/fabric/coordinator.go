package fabric

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/campaign"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// DefaultTTLTicks is the default lease lifetime in coordinator clock
// ticks. With `campaign serve`'s one-second tick, a worker that heartbeats
// every few seconds has an order-of-magnitude margin before reclaim.
const DefaultTTLTicks = 30

// Config configures a coordinator.
type Config struct {
	// Grid names the campaign (recorded in the manifest and journals).
	Grid string
	// Cells is the campaign's work, dependencies included.
	Cells []Cell
	// CacheDir is the coordinator's cache root: the shared namespace every
	// worker reads through MsgEntryReq and completes into via MsgComplete.
	CacheDir string
	// TTLTicks is the lease lifetime granted to workers (0 →
	// DefaultTTLTicks).
	TTLTicks uint64
	// Trace, when non-nil, emits an instant span per lease / renew /
	// complete / expire transition.
	Trace *obs.Tracer
	// Faults is the chaos-test fault schedule (nil = disabled). The
	// coordinator checks SiteLeaseExpiry in the grant path and passes the
	// injector to the lease journal and cache.
	Faults *faultinject.Injector
	// Warn, when non-nil, receives one line per anomaly (corrupt uploads,
	// journal append failures, reclaims).
	Warn func(msg string)
}

// Stats counts coordinator protocol events. All fields are guarded by the
// coordinator's mutex; AttachMetrics reads them through locked closures.
type Stats struct {
	Granted        uint64 // leases granted
	Renewed        uint64 // heartbeats accepted
	Completed      uint64 // cells settled by a completion message
	Expired        uint64 // leases reclaimed by the clock
	StaleCompletes uint64 // completions for already-reclaimed leases
	DupCompletes   uint64 // completions for already-settled cells
	Rejected       uint64 // uploads refused (checksum or schema)
	RemoteReads    uint64 // entry-req hits served from the shared cache
	ResumedCells   uint64 // cells settled by the startup cache probe
}

// Coordinator owns the campaign: the dependency-aware queue, the shared
// content-addressed cache, the manifest, and the lease journal. It is a
// pure request/reply state machine — Handle never blocks on I/O besides
// local appends and cache writes — driven by any transport (in-process
// Conn, HTTP) and by a logical clock (Advance).
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	queue    *queue
	cache    *campaign.Cache
	manifest *campaign.Manifest
	log      *LeaseLog
	tick     uint64
	leaseSeq uint64
	stats    Stats
}

// NewCoordinator builds a coordinator over cfg, resuming from whatever a
// previous run left in the cache dir. Resume trusts only verified cache
// entries: every cell whose entry reads back clean is settled immediately
// (no lease, no re-simulation); everything else — including cells the
// lease journal claims were leased when the last coordinator died — is
// pending again.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.TTLTicks == 0 {
		cfg.TTLTicks = DefaultTTLTicks
	}
	if len(cfg.Cells) == 0 {
		return nil, errors.New("fabric: coordinator needs at least one cell")
	}
	q, err := newQueue(cfg.Cells)
	if err != nil {
		return nil, err
	}
	cache, err := campaign.OpenCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	cache.Warn = cfg.Warn
	cache.Faults = cfg.Faults
	m, ok := campaign.LoadManifest(cfg.CacheDir)
	if !ok {
		m = campaign.NewManifest(cfg.CacheDir, cfg.Grid)
	}
	m.Faults = cfg.Faults
	jobs := make([]campaign.Job, 0, len(cfg.Cells))
	for _, c := range cfg.Cells {
		jobs = append(jobs, c.Job)
	}
	m.Reconcile(cfg.Grid, jobs)
	log, err := OpenLeaseLog(cfg.CacheDir, cfg.Grid)
	if err != nil {
		return nil, err
	}
	log.Faults = cfg.Faults
	c := &Coordinator{cfg: cfg, queue: q, cache: cache, manifest: m, log: log}
	c.resumeFromCache()
	if err := m.Save(); err != nil {
		return nil, err
	}
	return c, nil
}

// resumeFromCache settles every cell whose verified entry already exists —
// verify on read, never on trust: the manifest and lease journal only say
// what some process believed; the checksummed entry is the proof.
func (c *Coordinator) resumeFromCache() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cell := range c.cfg.Cells {
		e, ok := c.cache.Get(cell.Key)
		if !ok {
			continue
		}
		c.queue.markDone(cell.Key)
		c.stats.ResumedCells++
		c.manifest.Record(campaign.JobResult{Job: cell.Job, Key: cell.Key, Result: e.Result, Aux: e.Aux, Cached: true})
	}
}

// Handle processes one protocol message and returns the reply. It never
// panics and never returns a malformed reply: an unintelligible request —
// which the fault transport can manufacture by corrupting bytes in flight
// — gets a nack, and the sender retries.
func (c *Coordinator) Handle(m Msg) Msg {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch m.Type {
	case MsgLeaseReq:
		return c.leaseLocked(m)
	case MsgRenew:
		return c.renewLocked(m)
	case MsgComplete:
		return c.completeLocked(m)
	case MsgEntryReq:
		return c.entryLocked(m)
	default:
		return Msg{Type: MsgNack, Key: m.Key, Reason: fmt.Sprintf("unhandled message type %q", m.Type)}
	}
}

// spanKey builds a per-event span identity: cache key + lease id, so
// repeated transitions on one cell stay distinct events.
func spanKey(key string, lease uint64) string {
	return key + "#" + strconv.FormatUint(lease, 10)
}

// leaseLocked grants work. Caller holds c.mu.
func (c *Coordinator) leaseLocked(m Msg) Msg {
	if m.Worker == "" {
		return Msg{Type: MsgNack, Reason: "lease-req without worker id"}
	}
	// Idempotent re-grant: if this worker already holds a live lease (its
	// grant response was lost in transit), hand back the same cell.
	if rec, ok := c.queue.held(m.Worker); ok {
		return c.grantLocked(rec, false)
	}
	c.queue.cascadeFailures()
	if c.queue.settled() {
		return Msg{Type: MsgShutdown}
	}
	expiry := c.tick + c.cfg.TTLTicks
	if c.cfg.Faults.Check(faultinject.SiteLeaseExpiry) == faultinject.KindError {
		// Injected instant expiry: the lease is dead on arrival and the
		// next Advance reclaims it — the chaos schedule's way of forcing
		// the stale-completion path on an arbitrary grant.
		expiry = c.tick
	}
	c.leaseSeq++
	rec, ok := c.queue.lease(m.Worker, c.leaseSeq, expiry)
	if !ok {
		// Work exists but nothing is leasable (all in flight, or blocked
		// on in-flight dependencies): ask again after a backoff.
		return Msg{Type: MsgWait}
	}
	return c.grantLocked(rec, true)
}

// grantLocked journals and emits a grant reply for a (re-)leased cell.
// Caller holds c.mu.
func (c *Coordinator) grantLocked(rec *cellRec, fresh bool) Msg {
	if fresh {
		c.stats.Granted++
		c.journalLocked(LeaseRow{Op: OpLease, Key: rec.cell.Key, Worker: rec.worker, Lease: rec.lease, Tick: c.tick, ExpiryTick: rec.expiry})
		c.cfg.Trace.Instant("fabric-lease", spanKey(rec.cell.Key, rec.lease),
			obs.Attr{K: "worker", V: rec.worker}, obs.Attr{K: "key", V: rec.cell.Key})
	}
	job := rec.cell.Job
	return Msg{Type: MsgGrant, Worker: rec.worker, Key: rec.cell.Key, Lease: rec.lease, TTLTicks: c.cfg.TTLTicks, Job: &job}
}

// renewLocked extends a live lease (the heartbeat). Caller holds c.mu.
func (c *Coordinator) renewLocked(m Msg) Msg {
	expiry := c.tick + c.cfg.TTLTicks
	if !c.queue.renew(m.Key, m.Lease, expiry) {
		return Msg{Type: MsgNack, Key: m.Key, Reason: "lease expired or unknown"}
	}
	c.stats.Renewed++
	c.journalLocked(LeaseRow{Op: OpRenew, Key: m.Key, Worker: m.Worker, Lease: m.Lease, Tick: c.tick, ExpiryTick: expiry})
	c.cfg.Trace.Instant("fabric-heartbeat", spanKey(m.Key, m.Lease), obs.Attr{K: "worker", V: m.Worker})
	return Msg{Type: MsgRenewAck, Key: m.Key, Lease: m.Lease}
}

// completeLocked settles a cell from a completion message. Caller holds
// c.mu.
func (c *Coordinator) completeLocked(m Msg) Msg {
	rec, ok := c.queue.cells[m.Key]
	if !ok {
		return Msg{Type: MsgNack, Key: m.Key, Reason: "unknown cell"}
	}
	state, err := completionState(m.Status)
	if err != nil {
		return Msg{Type: MsgNack, Key: m.Key, Reason: err.Error()}
	}
	if state == stateDone {
		// A success must carry its entry, and the entry must re-hash clean
		// under the claimed key: verify on read, never on trust. A corrupt
		// upload is refused — the worker rebuilds from its local cache and
		// retries — so one damaged message can never poison the shared
		// namespace.
		if m.Entry == nil || m.Entry.Key != m.Key || !m.Entry.Verify() {
			c.stats.Rejected++
			c.warnf("rejecting completion for %s: entry missing or fails verification", m.Key)
			return Msg{Type: MsgNack, Key: m.Key, Reason: "entry missing or fails checksum verification"}
		}
		if _, cached := c.cache.Get(m.Key); !cached {
			if err := c.cache.PutEntry(*m.Entry); err != nil {
				c.stats.Rejected++
				c.warnf("storing completion for %s: %v", m.Key, err)
				return Msg{Type: MsgNack, Key: m.Key, Reason: "cache write failed: " + err.Error()}
			}
		}
	}
	stale, already := c.queue.complete(m.Key, m.Lease, state, m.Err)
	if already {
		c.stats.DupCompletes++
		return Msg{Type: MsgCompleteAck, Key: m.Key, Stale: true}
	}
	if stale {
		c.stats.StaleCompletes++
	}
	c.stats.Completed++
	c.journalLocked(LeaseRow{Op: OpComplete, Key: m.Key, Worker: m.Worker, Lease: m.Lease, Tick: c.tick, Status: m.Status})
	c.recordLocked(rec, m)
	c.cfg.Trace.Instant("fabric-complete", spanKey(m.Key, m.Lease),
		obs.Attr{K: "worker", V: m.Worker}, obs.Attr{K: "status", V: m.Status},
		obs.Attr{K: "stale", V: strconv.FormatBool(stale)})
	return Msg{Type: MsgCompleteAck, Key: m.Key, Stale: stale}
}

// completionState maps a manifest status string to a terminal cell state.
func completionState(status string) (cellState, error) {
	switch status {
	case campaign.StatusDone:
		return stateDone, nil
	case campaign.StatusFailed:
		return stateFailed, nil
	case campaign.StatusQuarantined:
		return stateQuarantined, nil
	default:
		return stateFailed, fmt.Errorf("unknown completion status %q", status)
	}
}

// recordLocked journals the cell outcome into the campaign manifest, so
// `campaign status` and fsck see fabric results exactly like single-host
// ones. Caller holds c.mu.
func (c *Coordinator) recordLocked(rec *cellRec, m Msg) {
	r := campaign.JobResult{
		Job:      rec.cell.Job,
		Key:      m.Key,
		Attempts: m.Attempts,
	}
	if m.Entry != nil {
		r.Result = m.Entry.Result
		r.Aux = m.Entry.Aux
	}
	if m.Err != "" {
		r.Err = errors.New(m.Err)
	}
	if m.Status == campaign.StatusQuarantined {
		r.Quarantined = true
		r.DumpPath = m.Dump
		if r.Err == nil {
			r.Err = errors.New("worker panic (see dump)")
		}
	}
	if err := c.manifest.Append(r); err != nil {
		c.warnf("manifest append for %s: %v", m.Key, err)
	}
}

// entryLocked serves the shared-cache read path. Caller holds c.mu.
func (c *Coordinator) entryLocked(m Msg) Msg {
	e, ok := c.cache.Get(m.Key)
	if !ok {
		return Msg{Type: MsgNack, Key: m.Key, Reason: "cache miss"}
	}
	c.stats.RemoteReads++
	return Msg{Type: MsgEntry, Key: m.Key, Entry: &e}
}

// journalLocked appends one lease row, downgrading journal failures to
// warnings: the queue is authoritative, the journal is the audit trail.
// Caller holds c.mu.
func (c *Coordinator) journalLocked(row LeaseRow) {
	if err := c.log.Append(row); err != nil {
		c.warnf("%v", err)
	}
}

func (c *Coordinator) warnf(format string, args ...any) {
	if c.cfg.Warn != nil {
		c.cfg.Warn(fmt.Sprintf(format, args...))
	}
}

// Advance moves the logical clock forward n ticks and reclaims every
// lease whose expiry passed — the only path by which a SIGKILL'd worker's
// cell returns to the queue. Returns how many leases were reclaimed.
func (c *Coordinator) Advance(n uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick += n
	due := c.queue.expireDue(c.tick)
	for _, rec := range due {
		c.stats.Expired++
		c.journalLocked(LeaseRow{Op: OpExpire, Key: rec.cell.Key, Lease: rec.lease, Tick: c.tick})
		c.cfg.Trace.Instant("fabric-expire", spanKey(rec.cell.Key, rec.lease),
			obs.Attr{K: "key", V: rec.cell.Key}, obs.Attr{K: "requeues", V: strconv.Itoa(rec.requeues)})
		c.warnf("lease on %s expired at tick %d (requeue %d): worker went dark, cell re-queued", rec.cell.Key, c.tick, rec.requeues)
	}
	return len(due)
}

// Tick advances the clock one tick (the wall-clock ticker's entry point).
func (c *Coordinator) Tick() int { return c.Advance(1) }

// Settled reports whether every cell has reached a terminal state.
func (c *Coordinator) Settled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queue.cascadeFailures()
	return c.queue.settled()
}

// Counts tallies cells per state.
func (c *Coordinator) Counts() (pending, leased, done, failed, quarantined int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queue.counts()
}

// Stats returns a snapshot of the protocol counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Journal exposes the lease journal (status surfaces and tests).
func (c *Coordinator) Journal() *LeaseLog { return c.log }

// Manifest exposes the campaign manifest (status surfaces and tests).
func (c *Coordinator) Manifest() *campaign.Manifest { return c.manifest }

// Cache exposes the shared cache (export and gc).
func (c *Coordinator) Cache() *campaign.Cache { return c.cache }

// AttachMetrics binds the coordinator's protocol counters and queue-state
// gauges into reg under the given prefix. Reads take the coordinator's
// mutex, so snapshots are race-free against live traffic.
func (c *Coordinator) AttachMetrics(reg *metrics.Registry, prefix string) {
	counter := func(name string, f func(s *Stats) uint64) {
		reg.CounterFunc(prefix+"."+name, func() uint64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return f(&c.stats)
		})
	}
	counter("granted", func(s *Stats) uint64 { return s.Granted })
	counter("renewed", func(s *Stats) uint64 { return s.Renewed })
	counter("completed", func(s *Stats) uint64 { return s.Completed })
	counter("expired", func(s *Stats) uint64 { return s.Expired })
	counter("stale_completes", func(s *Stats) uint64 { return s.StaleCompletes })
	counter("dup_completes", func(s *Stats) uint64 { return s.DupCompletes })
	counter("rejected", func(s *Stats) uint64 { return s.Rejected })
	counter("remote_reads", func(s *Stats) uint64 { return s.RemoteReads })
	counter("resumed_cells", func(s *Stats) uint64 { return s.ResumedCells })
	gauge := func(name string, pick func(p, l, d, f, q int) int) {
		reg.GaugeFunc(prefix+"."+name, func() float64 {
			p, l, d, f, q := c.Counts()
			return float64(pick(p, l, d, f, q))
		})
	}
	gauge("cells_pending", func(p, l, d, f, q int) int { return p })
	gauge("cells_leased", func(p, l, d, f, q int) int { return l })
	gauge("cells_done", func(p, l, d, f, q int) int { return d })
	gauge("cells_failed", func(p, l, d, f, q int) int { return f })
	gauge("cells_quarantined", func(p, l, d, f, q int) int { return q })
}

// Close compacts the manifest and releases the journals.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	err := c.manifest.Save()
	if cerr := c.manifest.Close(); err == nil {
		err = cerr
	}
	if cerr := c.log.Close(); err == nil {
		err = cerr
	}
	return err
}
