package dram

import (
	"testing"

	"repro/internal/arch"
)

func TestClosePageConstantLatency(t *testing.T) {
	d := New(DefaultConfig())
	l := arch.LineAddr(100)
	first := d.AccessLatency(l, false)
	second := d.AccessLatency(l, false) // same row, immediately after
	if first != second || first != 100 {
		t.Fatalf("close-page latencies %d, %d; want constant 100", first, second)
	}
	if d.Stats.Reads != 2 {
		t.Fatalf("reads %d", d.Stats.Reads)
	}
	if d.Stats.RowHits != 0 {
		t.Fatal("close-page must not track row hits")
	}
}

func TestOpenPageRowHitFaster(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = OpenPage
	d := New(cfg)
	l := arch.LineAddr(0)
	miss := d.AccessLatency(l, false)
	hit := d.AccessLatency(l+1, false) // same 8KB row
	if hit >= miss {
		t.Fatalf("row hit %d not faster than miss %d", hit, miss)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 {
		t.Fatalf("stats %+v", d.Stats)
	}
	// A different row in the same bank closes it.
	farRow := arch.LineAddr(uint64(cfg.RowBytes) * uint64(cfg.Banks) / arch.LineBytes)
	if lat := d.AccessLatency(farRow, false); lat != miss {
		t.Fatalf("conflicting row latency %d, want %d", lat, miss)
	}
}

func TestOpenPageIsATimingChannel(t *testing.T) {
	// Documents why the paper mandates close-page: a co-located observer
	// can tell whether the victim touched its row.
	cfg := DefaultConfig()
	cfg.Policy = OpenPage
	d := New(cfg)
	victim := arch.LineAddr(0)
	probe := arch.LineAddr(1) // same row
	d.AccessLatency(victim, false)
	if lat := d.AccessLatency(probe, false); lat == cfg.RTCycles {
		t.Fatal("open-page should have leaked via a row hit")
	}
	// Close-page: no leak.
	d2 := New(DefaultConfig())
	d2.AccessLatency(victim, false)
	if lat := d2.AccessLatency(probe, false); lat != 100 {
		t.Fatal("close-page must not leak")
	}
}

func TestWriteCounts(t *testing.T) {
	d := New(DefaultConfig())
	d.AccessLatency(arch.LineAddr(5), true)
	if d.Stats.Writes != 1 || d.Stats.Reads != 0 {
		t.Fatalf("stats %+v", d.Stats)
	}
	d.ResetStats()
	if d.Stats.Writes != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestZeroBanksDefaulted(t *testing.T) {
	d := New(Config{RTCycles: 10})
	if got := d.AccessLatency(arch.LineAddr(1), false); got != 10 {
		t.Fatalf("latency %d", got)
	}
}
