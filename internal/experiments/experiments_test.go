package experiments

import (
	"strings"
	"testing"

	"repro/sim"
)

// smallRunner keeps experiment tests fast.
func smallRunner() *Runner {
	r := NewRunner(Options{Instructions: 15_000, SpectreIterations: 4, MTSteps: 3_000})
	r.Quiet = true
	return r
}

func TestTable2MitigationsVerified(t *testing.T) {
	rep := smallRunner().Table2()
	s := rep.String()
	if strings.Contains(s, "NO") {
		t.Fatalf("a coherence mitigation failed verification:\n%s", s)
	}
}

func TestStorageReport(t *testing.T) {
	rep := smallRunner().Storage()
	if !strings.Contains(rep.String(), "800") {
		t.Fatalf("unexpected storage total:\n%s", rep)
	}
}

func TestByIDDispatch(t *testing.T) {
	r := smallRunner()
	for _, id := range []string{"table2", "storage"} {
		rep, err := r.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if rep.ID != id {
			t.Fatalf("ByID(%q) returned %q", id, rep.ID)
		}
	}
	if _, err := r.ByID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestMemoizationReusesRuns(t *testing.T) {
	r := smallRunner()
	r.run("gcc", "nonsecure", nil)
	n := len(r.memo)
	sims := r.Engine.Simulations()
	r.run("gcc", "nonsecure", nil)
	if len(r.memo) != n || r.Engine.Simulations() != sims {
		t.Fatal("identical run not memoized")
	}
	r.run("gcc", "cleanupspec", nil)
	if len(r.memo) != n+1 {
		t.Fatal("distinct run not recorded")
	}
}

// TestMemoKeyFromResolvedConfig pins the memo-key fix: two runs that
// differ only in their config-mod function (same workload, same policy)
// must never share a result, and a mod that leaves the config unchanged
// must still hit the memo.
func TestMemoKeyFromResolvedConfig(t *testing.T) {
	r := smallRunner()
	base := r.run("gcc", "nonsecure", nil)
	n := len(r.memo)
	on := true
	modded := r.run("gcc", "nonsecure", func(c *sim.Config) { c.L1RandomRepl = &on })
	if len(r.memo) != n+1 {
		t.Fatal("config-modifying run shared the unmodified run's memo entry")
	}
	if modded.Cycles == base.Cycles {
		t.Log("note: modded run happened to match base cycles (allowed, but suspicious)")
	}
	sims := r.Engine.Simulations()
	// A no-op mod resolves to the same config and must be a memo hit.
	r.run("gcc", "nonsecure", func(c *sim.Config) {})
	if r.Engine.Simulations() != sims {
		t.Fatal("no-op mod re-simulated instead of hitting the memo")
	}
}

// TestRunErrorDoesNotPanic pins the panic fix: an unknown workload must
// surface through Errors(), not kill the pass.
func TestRunErrorDoesNotPanic(t *testing.T) {
	r := smallRunner()
	res := r.run("no-such-workload", "nonsecure", nil)
	if res.Cycles != 0 {
		t.Fatalf("failed run returned a non-zero result: %+v", res)
	}
	if len(r.Errors()) != 1 {
		t.Fatalf("want 1 accumulated error, got %v", r.Errors())
	}
	if !strings.Contains(r.Errors()[0].Error(), "no-such-workload") {
		t.Fatalf("error does not name the workload: %v", r.Errors()[0])
	}
}

func TestFigure9ReportShape(t *testing.T) {
	rep := smallRunner().Figure9()
	md := rep.Markdown()
	if !strings.Contains(md, "dedup") || !strings.Contains(md, "AVG") {
		t.Fatalf("Figure 9 report missing rows:\n%s", md)
	}
}

func TestFigure11ReportVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("spectre runs")
	}
	rep := smallRunner().Figure11()
	s := rep.String()
	if !strings.Contains(s, "NonSecure: LEAKED") {
		t.Fatalf("non-secure PoC did not leak:\n%s", s)
	}
	if !strings.Contains(s, "CleanupSpec: no leak") {
		t.Fatalf("CleanupSpec PoC leaked:\n%s", s)
	}
}

func TestRendering(t *testing.T) {
	rep := smallRunner().Storage()
	if rep.String() == "" || rep.Markdown() == "" {
		t.Fatal("empty rendering")
	}
	if !strings.HasPrefix(rep.Markdown(), "## storage") {
		t.Fatalf("markdown header:\n%s", rep.Markdown())
	}
}

// TestAllExperimentsSmoke runs every experiment end to end at a tiny window
// — the whole-harness regression that catches panics and empty tables.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass")
	}
	r := NewRunner(Options{Instructions: 8_000, SpectreIterations: 3, MTSteps: 2_000})
	r.Quiet = true
	reports := r.All()
	if len(reports) != 15 {
		t.Fatalf("%d reports, want 15", len(reports))
	}
	for _, rep := range reports {
		if rep.ID == "" || rep.Title == "" {
			t.Errorf("report missing metadata: %+v", rep)
		}
		if len(rep.Tables) == 0 {
			t.Errorf("%s: no tables", rep.ID)
		}
		if rep.String() == "" || rep.Markdown() == "" {
			t.Errorf("%s: empty rendering", rep.ID)
		}
	}
}
