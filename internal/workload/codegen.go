package workload

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/xrand"
)

// Memory layout of generated programs.
const (
	hotBase  = arch.Addr(0x1000_0000) // small, L1-resident array
	coldBase = arch.Addr(0x2000_0000) // footprint-sized array
	hotBytes = 4 * kb
)

// Register conventions inside generated code.
const (
	rCounter = isa.Reg(10) // loop iteration counter
	rHash    = isa.Reg(11) // per-block index hash
	rIdx     = isa.Reg(12)
	rAddr    = isa.Reg(13)
	rVal     = isa.Reg(14) // last loaded value
	rBr1     = isa.Reg(15)
	rBr2     = isa.Reg(16)
	rNear    = isa.Reg(17) // same-line companion value
	rHot     = isa.Reg(20)
	rCold    = isa.Reg(21)
)

// EmitNoise emits n compact blocks of realistic filler activity into an
// externally owned program: per block, a hash of the running value selects
// a line-aligned index into [base, base+span), a load brings it in, and a
// dependent ALU op chains the loaded value into the next block's hash —
// the same hash/load/depend idiom Profile.Build uses for workload bodies.
// The specfuzz gadget generator interleaves these blocks around its
// speculative gadgets so fuzzed programs carry workload-shaped cache and
// predictor pressure, not just the bare attack skeleton. The emitted code
// is branch-free and uses only scratch registers r..r+2; span must be a
// power of two ≥ 64.
func EmitNoise(b *isa.Builder, rng *xrand.Rand, n int, base arch.Addr, span int64, r isa.Reg) {
	mask := (span - 1) &^ 63 // line-aligned indices within the region
	rIdxN, rAddrN, rValN := r, r+1, r+2
	for i := 0; i < n; i++ {
		b.Mix(rIdxN, rValN, int64(rng.Uint32()))
		b.AluI(isa.AluAnd, rIdxN, rIdxN, mask)
		b.AddI(rAddrN, rIdxN, int64(base))
		b.Load(rValN, rAddrN, 0)
	}
}

// Build synthesizes the workload program for a profile.
//
// The program is an infinite loop of Blocks basic blocks. Each block hashes
// the loop counter into pseudo-random indices, performs LoadsPerBlock loads
// split between a hot (L1-resident) array and a cold footprint-sized array
// (calibrated to TargetL1Miss), occasionally stores, and ends in a branch.
// A fraction of the blocks (calibrated to TargetMispredict) branch on a
// hash of the last loaded value — unlearnable by the predictor and resolved
// only when the load's data returns, which opens the speculation window in
// which wrong-path loads run. Both branch paths contain loads, so
// mispredicted blocks put real transient state into the caches.
func (p Profile) Build() *isa.Program {
	rng := xrand.New(p.Seed)
	b := isa.NewBuilder(p.Name)

	// Hot array holds pseudo-random data (branch entropy).
	for off := 0; off < hotBytes; off += 8 {
		b.InitData(hotBase+arch.Addr(off), rng.Uint64())
	}

	coldMask := int64(p.FootprintBytes-1) &^ 63 // line-aligned indices
	hotMask := int64(hotBytes-1) &^ 7

	// Calibration. Cold-load and random-branch slots are assigned with a
	// Bresenham accumulator instead of random draws: with only a few
	// dozen static slots, random assignment quantizes too coarsely to
	// hit Table 3's per-workload targets.
	// Each primary load is followed by a same-line companion load
	// (spatial locality, as in real code): roughly half the L1 accesses
	// are companion hits, so the cold probability is scaled accordingly.
	coldProb := p.TargetL1Miss * 2.25
	if coldProb > 0.95 {
		coldProb = 0.95
	}
	// Random-direction branches mispredict ~50% of the time.
	randFrac := 2 * p.TargetMispredict
	if randFrac > 0.95 {
		randFrac = 0.95
	}
	coldAcc := 0.5 // start mid-step so tiny fractions round fairly
	nextCold := func() bool {
		coldAcc += coldProb
		if coldAcc >= 1 {
			coldAcc--
			return true
		}
		return false
	}
	randAcc := 0.5
	nextRand := func() bool {
		randAcc += randFrac
		if randAcc >= 1 {
			randAcc--
			return true
		}
		return false
	}

	emitLoad := func(blk, k int) {
		sh := int64((k*7 + blk*3) % 24)
		b.AluI(isa.AluShr, rIdx, rHash, sh)
		if nextCold() {
			b.AluI(isa.AluAnd, rIdx, rIdx, coldMask)
			b.Add(rAddr, rCold, rIdx)
		} else {
			b.AluI(isa.AluAnd, rIdx, rIdx, hotMask)
			b.Add(rAddr, rHot, rIdx)
		}
		b.Load(rVal, rAddr, 0)
		// Dependent companion access to the same line (spatial
		// locality through a pointer-style dependence, as in real
		// code): it issues only after the primary load's data returns,
		// so it hits the line the primary's fill installed — unless
		// the fill never happened because the primary was issued
		// invisibly (the Redo approach's repeated-miss cost).
		b.AluI(isa.AluAnd, rNear, rVal, 0) // dependent zero
		b.Add(rNear, rNear, rAddr)
		b.Load(rNear, rNear, 8)
	}

	b.Li(rCounter, 0)
	b.Li(rHot, int64(hotBase))
	b.Li(rCold, int64(coldBase))
	b.Label("loop")
	b.AddI(rCounter, rCounter, 1)
	for blk := 0; blk < p.Blocks; blk++ {
		salt := int64(blk)*2654435761 + int64(rng.Uint32())
		b.Mix(rHash, rCounter, salt)
		for k := 0; k < p.LoadsPerBlock; k++ {
			emitLoad(blk, k)
		}
		if p.StoreEvery > 0 && blk%p.StoreEvery == 0 {
			// Store into the last loaded line (hits).
			b.Store(rAddr, 8, rVal)
		}
		alt := fmt.Sprintf("alt_%d", blk)
		join := fmt.Sprintf("join_%d", blk)
		if nextRand() {
			// Data-dependent, effectively random branch: resolves
			// only when the load's value arrives.
			b.Alu(isa.AluMix, rBr1, rVal, rHash)
			b.AluI(isa.AluAnd, rBr2, rBr1, 1)
			b.Br(isa.CondNE, rBr2, 0, alt)
			emitLoad(blk, 7)
			b.Jmp(join)
			b.Label(alt)
			emitLoad(blk, 8)
			b.Label(join)
		} else {
			// Biased branch: always taken (unsigned >= 0) and
			// quickly learned — but data-dependent, resolving only
			// when the block's load returns. This is what makes the
			// common case realistic: almost all loads issue while
			// older branches are unresolved, i.e. speculatively
			// (the paper observes "a large majority of loads are
			// issued speculatively", Section 2.3.1). The not-taken
			// side still holds a load so early-training mispredicts
			// produce wrong-path accesses.
			b.Br(isa.CondGEU, rVal, 0, join)
			emitLoad(blk, 9)
			b.Label(join)
		}
	}
	b.Jmp("loop")
	return b.Build()
}
