package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// drain hits every site n times and records what fired, giving a
// comparable fingerprint of a schedule.
func drain(in *Injector, n int) []Event {
	for s := Site(0); s < numSites; s++ {
		if s == SiteSimStep {
			in.StallCycle()
			continue
		}
		for i := 0; i < n; i++ {
			in.Check(s)
		}
	}
	return in.Events()
}

func TestScheduleDeterminism(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		a := drain(New(seed), 8)
		b := drain(New(seed), 8)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("seed %d: schedules diverge: %v vs %v", seed, a, b)
		}
	}
}

func TestSchedulesVaryAcrossSeeds(t *testing.T) {
	distinct := make(map[string]bool)
	fired := 0
	for seed := uint64(0); seed < 100; seed++ {
		ev := drain(New(seed), 8)
		distinct[fmt.Sprint(ev)] = true
		fired += len(ev)
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct schedules across 100 seeds", len(distinct))
	}
	if fired == 0 {
		t.Error("no faults fired across 100 seeds")
	}
}

func TestNilInjectorDisabled(t *testing.T) {
	var in *Injector
	if k := in.Check(SiteCacheRead); k != KindNone {
		t.Errorf("nil Check = %v, want none", k)
	}
	if _, ok := in.StallCycle(); ok {
		t.Error("nil StallCycle fired")
	}
	if c := in.Child("x"); c != nil {
		t.Error("nil Child is not nil")
	}
	if ev := in.Events(); ev != nil {
		t.Errorf("nil Events = %v", ev)
	}
	data := []byte("abc")
	if got := in.Mutate(KindCorrupt, data); bytes.Equal(got, data) {
		t.Error("nil Mutate(corrupt) left payload intact") // nil still mutates: Mutate is pure
	}
}

func TestScheduleFiresOnExactHit(t *testing.T) {
	in := Plan("t").Schedule(SiteCacheWrite, KindTruncate, 3)
	want := []Kind{KindNone, KindNone, KindTruncate, KindNone}
	for i, w := range want {
		if got := in.Check(SiteCacheWrite); got != w {
			t.Fatalf("hit %d: got %v, want %v", i+1, got, w)
		}
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Site != SiteCacheWrite || ev[0].Kind != KindTruncate || ev[0].Hit != 3 {
		t.Fatalf("events = %v", ev)
	}
}

func TestChildDeterministicAndIndependent(t *testing.T) {
	parent := New(7)
	a := drain(parent.Child("job-a"), 8)
	b := drain(parent.Child("job-a"), 8)
	// Child events accumulate on the parent log; the second drain must
	// append a repeat of the first (same label → same schedule replay).
	if len(b) != 2*len(a) || fmt.Sprint(b[:len(a)]) != fmt.Sprint(a) || fmt.Sprint(b[len(a):]) != fmt.Sprint(a) {
		t.Fatalf("same-label children diverge: %v vs %v", a, b)
	}
	// Children own their hit counters: draining them must not have
	// advanced the parent's, so draining the parent itself (same shared
	// plans, untouched counters) replays the same fingerprint once more.
	c := drain(parent, 8)
	if len(c) != 3*len(a) || fmt.Sprint(c[2*len(a):]) != fmt.Sprint(a) {
		t.Fatalf("child drains advanced the parent's counters: parent drain = %v, child fingerprint %v", c, a)
	}
	var nilIn *Injector
	if nilIn.Child("x") != nil {
		t.Error("nil parent produced a live child")
	}
}

func TestMutate(t *testing.T) {
	in := Plan("mut")
	data := []byte(`{"key":"abcd","result":{"ipc":1.25}}`)
	c1 := in.Mutate(KindCorrupt, data)
	c2 := in.Mutate(KindCorrupt, data)
	if !bytes.Equal(c1, c2) {
		t.Error("corrupt not deterministic")
	}
	if bytes.Equal(c1, data) {
		t.Error("corrupt left payload unchanged")
	}
	if len(c1) != len(data) {
		t.Errorf("corrupt changed length %d -> %d", len(data), len(c1))
	}
	tr := in.Mutate(KindTruncate, data)
	if len(tr) >= len(data) {
		t.Errorf("truncate kept %d of %d bytes", len(tr), len(data))
	}
	if !bytes.Equal(data, []byte(`{"key":"abcd","result":{"ipc":1.25}}`)) {
		t.Error("Mutate modified its input")
	}
	if got := in.Mutate(KindError, data); !bytes.Equal(got, data) {
		t.Error("non-payload kind mutated data")
	}
	if got := in.Mutate(KindCorrupt, nil); got != nil {
		t.Error("corrupting empty payload produced bytes")
	}
}

func TestStallCycleInRange(t *testing.T) {
	found := false
	for seed := uint64(0); seed < 100; seed++ {
		in := New(seed)
		at, ok := in.StallCycle()
		if !ok {
			continue
		}
		found = true
		if at < 200 || at >= 2700 {
			t.Errorf("seed %d: stall cycle %d out of range", seed, at)
		}
	}
	if !found {
		t.Error("no seed in 0..99 scheduled a stall")
	}
	in := Plan("s").Schedule(SiteSimStep, KindStall, 1234)
	if at, ok := in.StallCycle(); !ok || at != 1234 {
		t.Errorf("manual stall = %d, %v", at, ok)
	}
}

func TestConcurrentCheck(t *testing.T) {
	in := Plan("c").Schedule(SiteWorkerExec, KindPanic, 50)
	var wg sync.WaitGroup
	fired := make(chan Kind, 100)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if k := in.Check(SiteWorkerExec); k != KindNone {
					fired <- k
				}
			}
		}()
	}
	wg.Wait()
	close(fired)
	n := 0
	for k := range fired {
		if k != KindPanic {
			t.Errorf("fired %v", k)
		}
		n++
	}
	if n != 1 {
		t.Errorf("fault fired %d times across 100 concurrent hits, want exactly 1", n)
	}
}

func TestErrInjectedSentinel(t *testing.T) {
	wrapped := fmt.Errorf("campaign: cache put: %w", ErrInjected)
	if !errors.Is(wrapped, ErrInjected) {
		t.Error("wrapped sentinel not recognized")
	}
}

func TestStrings(t *testing.T) {
	for s := Site(0); s < numSites; s++ {
		if name := s.String(); name == "" || name == fmt.Sprintf("site(%d)", s) {
			t.Errorf("site %d bad name %q", s, name)
		}
	}
	kinds := []Kind{KindNone, KindError, KindCorrupt, KindTruncate, KindPanic, KindStall, KindDrop, KindDuplicate, KindReorder}
	seen := make(map[string]bool)
	for _, k := range kinds {
		if seen[k.String()] {
			t.Errorf("duplicate kind name %q", k.String())
		}
		seen[k.String()] = true
	}
	ev := Event{Site: SiteCacheRead, Kind: KindCorrupt, Hit: 2}
	if ev.String() != "cache-read/corrupt@2" {
		t.Errorf("event string %q", ev)
	}
}
