package fabric

import (
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/sim"
)

// TestMain doubles as the worker-process entry point: when the coordinator
// URL env var is set, this test binary is a `campaign work`-style worker
// child for TestWorkerSIGKILLRecovery, not a test run.
func TestMain(m *testing.M) {
	if os.Getenv("FABRIC_TEST_COORD_URL") != "" {
		os.Exit(runWorkerChild())
	}
	os.Exit(m.Run())
}

// runWorkerChild runs one HTTP worker until the coordinator shuts the
// campaign down (or the parent kills us — the point of the exercise).
func runWorkerChild() int {
	eng := campaign.NewEngine()
	eng.Reporter = campaign.NewReporter(io.Discard)
	cache, err := campaign.OpenCache(os.Getenv("FABRIC_TEST_CACHE"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	eng.Cache = cache
	w := &Worker{
		ID:          os.Getenv("FABRIC_TEST_WORKER_ID"),
		Conn:        &HTTPConn{URL: os.Getenv("FABRIC_TEST_COORD_URL")},
		Engine:      eng,
		WaitBackoff: 5 * time.Millisecond,
		RenewEvery:  25 * time.Millisecond,
	}
	if err := w.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// spawnWorker re-execs this test binary as an HTTP worker child.
func spawnWorker(t *testing.T, url, id string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"FABRIC_TEST_COORD_URL="+url,
		"FABRIC_TEST_WORKER_ID="+id,
		"FABRIC_TEST_CACHE="+t.TempDir(),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestWorkerSIGKILLRecovery is the cross-process half of the SIGKILL
// guarantee: a real worker process holding a real lease over real HTTP is
// killed with SIGKILL (no cleanup, no goodbye), and the campaign still
// settles — the lease expires on the coordinator's clock, the cell
// re-queues, and a surviving worker finishes the work.
func TestWorkerSIGKILLRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and multi-second simulations")
	}
	// Cells long enough (~0.5s each) that the doomed worker is reliably
	// mid-simulation when the signal lands.
	jobs := []campaign.Job{
		{Workload: "gcc", Config: sim.Config{Policy: sim.CleanupSpec, Instructions: 400_000, Seed: 1}},
		{Workload: "gcc", Config: sim.Config{Policy: sim.NonSecure, Instructions: 400_000, Seed: 1}},
		{Workload: "lbm", Config: sim.Config{Policy: sim.CleanupSpec, Instructions: 400_000, Seed: 2}},
	}
	cells, err := CellsFromJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCoordinator(Config{Grid: "sigkill", Cells: cells, CacheDir: t.TempDir(), TTLTicks: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	// The coordinator's clock: 20ms ticks, so a 10-tick lease reclaims
	// ~200ms after the holder goes dark (heartbeats renew every 25ms).
	stopClock := make(chan struct{})
	defer close(stopClock)
	go func() {
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopClock:
				return
			case <-tick.C:
				c.Tick()
			}
		}
	}()

	doomed := spawnWorker(t, srv.URL, "doomed")
	// Wait until the doomed worker actually holds a lease...
	for i := 0; ; i++ {
		if _, leased, _, _, _ := c.Counts(); leased >= 1 {
			break
		}
		if i > 500 {
			t.Fatal("doomed worker never acquired a lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...then kill it dead. SIGKILL: no deferred cleanup runs, the lease
	// is simply abandoned.
	if err := doomed.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	doomed.Wait()

	survivor := spawnWorker(t, srv.URL, "survivor")
	done := make(chan error, 1)
	go func() { done <- survivor.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("survivor exited with %v", err)
		}
	case <-time.After(60 * time.Second):
		survivor.Process.Kill()
		t.Fatal("campaign did not settle within 60s of the kill")
	}

	if !c.Settled() {
		t.Fatal("survivor shut down but the coordinator is not settled")
	}
	_, _, settled, failed, quarantined := c.Counts()
	if settled != len(cells) || failed != 0 || quarantined != 0 {
		t.Fatalf("counts: done=%d failed=%d quarantined=%d, want %d/0/0", settled, failed, quarantined, len(cells))
	}
	st := c.Stats()
	if st.Expired == 0 {
		t.Error("the killed worker's lease never expired — the kill missed its window")
	}
	// Every cell's entry is present and verifies: the shared namespace
	// survived the kill with zero lost work.
	for _, cell := range cells {
		e, ok := c.Cache().Get(cell.Key)
		if !ok || !e.Verify() {
			t.Errorf("cell %s: entry missing or unverifiable after recovery", cell.Key)
		}
	}
}
