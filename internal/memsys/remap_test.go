package memsys

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
)

func remapConfig(every uint64) Config {
	cfg := DefaultConfig(1)
	cfg.L1 = cache.Config{Name: "L1D", SizeBytes: 512, Ways: 2, Repl: cache.ReplLRU}
	cfg.L2 = cache.Config{Name: "L2", SizeBytes: 64 << 10, Ways: 4, Repl: cache.ReplLRU}
	cfg.RandomizeL2 = true
	cfg.L2RemapEvery = every
	return cfg
}

// noOrphans asserts every physically resident L2 line is findable by Probe
// under the current (possibly mid-remap) mapping — the invariant gradual
// relocation must preserve.
func noOrphans(t *testing.T, h *Hierarchy) {
	t.Helper()
	for tag := range h.L2().SnapshotTags() {
		if _, hit := h.L2().Probe(tag); !hit {
			t.Fatalf("orphaned line %v: resident but unfindable", tag)
		}
	}
}

func TestManualRemapKeepsLinesFindable(t *testing.T) {
	h := New(remapConfig(0))
	now := arch.Cycle(0)
	// Populate the L2 with committed loads.
	for i := 0; i < 200; i++ {
		txn, ok := h.Load(0, arch.LineAddr(i*7), now, uint64(i), LoadOpts{}, nil)
		if !ok {
			t.Fatal("load rejected")
		}
		now = txn.DoneAt + 1
		h.Tick(now)
	}
	noOrphans(t, h)

	h.L2StartRemap(1234)
	steps := 0
	for h.L2Indexer().Remapping() {
		h.L2RemapStep()
		steps++
		if steps%16 == 0 {
			noOrphans(t, h)
		}
		if steps > h.L2().Sets()+1 {
			t.Fatal("remap did not terminate")
		}
	}
	noOrphans(t, h)
	if h.L2Indexer().Remaps != 1 {
		t.Fatalf("remaps %d", h.L2Indexer().Remaps)
	}
}

func TestAutoRemapPacing(t *testing.T) {
	h := New(remapConfig(4)) // one relocation step per 4 L2 accesses
	now := arch.Cycle(0)
	for i := 0; i < 2000; i++ {
		txn, ok := h.Load(0, arch.LineAddr(i*13), now, uint64(i), LoadOpts{}, nil)
		if !ok {
			t.Fatal("load rejected")
		}
		now = txn.DoneAt + 1
		h.Tick(now)
		if i%100 == 0 {
			noOrphans(t, h)
		}
	}
	noOrphans(t, h)
	ix := h.L2Indexer()
	if ix.Remaps == 0 && !ix.Remapping() {
		t.Fatal("auto-paced remap never started")
	}
}

func TestRemapPreservesDirtyData(t *testing.T) {
	h := New(remapConfig(0))
	line := arch.LineAddr(0x123)
	h.Store(0, line, 0)
	// Evict from L1 so the L2 copy carries the dirty bit... the L2 copy
	// is marked dirty by Store already.
	h.L2StartRemap(7)
	for h.L2Indexer().Remapping() {
		h.L2RemapStep()
	}
	if _, hit := h.L2().Probe(line); !hit {
		t.Skip("line evicted by relocation conflict; acceptable")
	}
	way, _ := h.L2().Probe(line)
	if !h.L2().LineAt(h.L2().SetFor(line), way).Dirty {
		t.Fatal("relocation dropped the dirty bit")
	}
}
