package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestNilTracerIsFullyInert(t *testing.T) {
	var tr *Tracer
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil) should return the nil (disabled) tracer")
	}
	sp := tr.Trace("cell", "key")
	if sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	child := sp.Child("simulate")
	if child != nil {
		t.Fatal("nil span handed out a child")
	}
	child.SetAttr("k", "v")
	child.End()
	sp.End()
	tr.Instant("fault", "key")
	if tr.Sink() != nil {
		t.Fatal("nil tracer reported a sink")
	}
	if got := tr.Sink().Stats(); got != (SinkStats{}) {
		t.Fatalf("nil sink stats = %+v", got)
	}
}

func TestSpanIDsAreContentDerived(t *testing.T) {
	build := func() []Span {
		sink := NewSink()
		tr := NewTracer(sink)
		root := tr.Trace("cell", "wl=gcc/policy=cleanupspec/seed=1")
		probe := root.Child("cache-probe")
		probe.SetAttr("hit", "false")
		probe.End()
		for attempt := 0; attempt < 2; attempt++ {
			sim := root.Child("simulate")
			sim.SetAttr("attempt", fmt.Sprint(attempt))
			sim.End()
		}
		root.End()
		spans := sink.Spans()
		SortCanonical(spans)
		return spans
	}
	a, b := build(), build()
	if len(a) != 4 {
		t.Fatalf("got %d spans, want 4: %v", len(a), a)
	}
	for i := range a {
		ca, cb := a[i], b[i]
		ca.StartNs, ca.DurNs = 0, 0
		cb.StartNs, cb.DurNs = 0, 0
		ca.sink, cb.sink = nil, nil
		var zero time.Time
		ca.start, cb.start = zero, zero
		ca.kids, cb.kids = nil, nil
		if fmt.Sprintf("%+v", ca) != fmt.Sprintf("%+v", cb) {
			t.Fatalf("span %d differs across identical runs:\n%+v\n%+v", i, ca, cb)
		}
	}
	// Retry siblings share a name but not an identity.
	var sims []Span
	for _, sp := range a {
		if sp.Name == "simulate" {
			sims = append(sims, sp)
		}
	}
	if len(sims) != 2 || sims[0].ID == sims[1].ID || sims[0].Seq == sims[1].Seq {
		t.Fatalf("retry spans not disambiguated: %v", sims)
	}
	// Different trace keys give different trace IDs.
	sink := NewSink()
	tr := NewTracer(sink)
	r1 := tr.Trace("cell", "key-one")
	r2 := tr.Trace("cell", "key-two")
	if r1.ID == r2.ID {
		t.Fatal("distinct keys hashed to the same trace ID")
	}
	r1.End()
	r2.End()
}

func TestEndIsIdempotentAndStatsBalance(t *testing.T) {
	sink := NewSink()
	tr := NewTracer(sink)
	root := tr.Trace("cell", "k")
	child := root.Child("simulate")
	child.End()
	child.End() // double End: second is a no-op
	root.End()
	root.End()
	st := sink.Stats()
	if st.Started != 2 || st.Ended != 2 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want 2/2/0", st)
	}
	if n := len(sink.Spans()); n != 2 {
		t.Fatalf("retained %d spans, want 2", n)
	}
}

func TestSinkBoundDropsNotGrows(t *testing.T) {
	sink := NewSink()
	sink.MaxSpans = 3
	tr := NewTracer(sink)
	for i := 0; i < 5; i++ {
		tr.Instant("evt", fmt.Sprintf("k%d", i))
	}
	st := sink.Stats()
	if st.Started != 5 || st.Ended != 3 || st.Dropped != 2 {
		t.Fatalf("stats = %+v, want started=5 ended=3 dropped=2", st)
	}
	if n := len(sink.Spans()); n != 3 {
		t.Fatalf("retained %d spans, want 3", n)
	}
}

func TestSinkConcurrentUse(t *testing.T) {
	sink := NewSink()
	tr := NewTracer(sink)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.Trace("cell", fmt.Sprintf("w%d/i%d", w, i))
				root.Child("simulate").End()
				root.End()
			}
		}(w)
	}
	wg.Wait()
	st := sink.Stats()
	if st.Started != 800 || st.Ended != 800 {
		t.Fatalf("stats = %+v, want 800 started and ended", st)
	}
}

func TestJSONLRoundTripAndCanonicalForm(t *testing.T) {
	sink := NewSink()
	tr := NewTracer(sink)
	root := tr.Trace("cell", "k")
	probe := root.Child("cache-probe", Attr{K: "hit", V: "true"})
	probe.End()
	root.End()

	spans := sink.Spans()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(spans) {
		t.Fatalf("round trip: %d spans, want %d", len(back), len(spans))
	}
	for i := range back {
		if back[i].Trace != spans[i].Trace || back[i].ID != spans[i].ID ||
			back[i].Parent != spans[i].Parent || back[i].Name != spans[i].Name ||
			back[i].Seq != spans[i].Seq || back[i].StartNs != spans[i].StartNs ||
			back[i].DurNs != spans[i].DurNs {
			t.Fatalf("span %d mangled by round trip:\n%+v\n%+v", i, spans[i], back[i])
		}
	}

	// Canonical form strips wall fields: rebuilding the same trace must
	// give identical canonical bytes even though wall durations differ.
	sink2 := NewSink()
	tr2 := NewTracer(sink2)
	root2 := tr2.Trace("cell", "k")
	probe2 := root2.Child("cache-probe", Attr{K: "hit", V: "true"})
	probe2.End()
	root2.End()

	c1, err := CanonicalJSONL(spans)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := CanonicalJSONL(sink2.Spans())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonical forms differ:\n%s\n---\n%s", c1, c2)
	}
	if bytes.Contains(c1, []byte(`"start_ns":`)) && !bytes.Contains(c1, []byte(`"start_ns":0`)) {
		t.Fatalf("canonical form kept wall fields:\n%s", c1)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Fatal("garbage line parsed without error")
	}
	if _, err := ReadJSONL(bytes.NewReader([]byte(`{"trace":"zz","span":"01","name":"x"}` + "\n"))); err == nil {
		t.Fatal("bad hex trace id parsed without error")
	}
	spans, err := ReadJSONL(bytes.NewReader([]byte("\n\n")))
	if err != nil || len(spans) != 0 {
		t.Fatalf("blank lines: spans=%v err=%v", spans, err)
	}
}

func TestChromeEventsShape(t *testing.T) {
	sink := NewSink()
	tr := NewTracer(sink)
	root := tr.Trace("gcc/cleanupspec/s1", "key-a")
	root.Child("simulate").End()
	root.End()
	tr.Instant("fault", "key-b", Attr{K: "site", V: "cache-read"})

	events := ChromeEvents(sink.Spans(), 7)
	// 1 process_name + 2 thread_name + 3 span events.
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6: %+v", len(events), events)
	}
	var meta, x int
	for _, ev := range events {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Pid != 7 {
				t.Fatalf("metadata event on pid %d, want 7", ev.Pid)
			}
		case "X":
			x++
			if ev.Tid == 0 {
				t.Fatalf("span event without a thread track: %+v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 || x != 3 {
		t.Fatalf("meta=%d x=%d, want 3/3", meta, x)
	}
}

func TestAttachMetricsExportsSinkCounters(t *testing.T) {
	sink := NewSink()
	reg := metrics.NewRegistry()
	sink.AttachMetrics(reg)
	tr := NewTracer(sink)
	tr.Instant("evt", "k")
	snap := reg.Snapshot()
	if snap.Counters["obs.spans_started"] != 1 || snap.Counters["obs.spans_ended"] != 1 {
		t.Fatalf("snapshot = %+v", snap.Counters)
	}
	if _, ok := snap.Counters["obs.spans_dropped"]; !ok {
		t.Fatal("obs.spans_dropped not exported")
	}
}
