package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteJSONL writes the time series as JSON Lines: one Sample object per
// line, counters cumulative (so the last line's counters are the run's
// end-of-run aggregates). Map keys are marshaled in Go's sorted-key JSON
// order, making the output byte-stable for a deterministic run.
func WriteJSONL(w io.Writer, samples []Sample) error {
	enc := json.NewEncoder(w)
	for _, s := range samples {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("metrics: writing jsonl: %w", err)
		}
	}
	return nil
}

// WriteCSV writes the time series as CSV: a header of `cycle`, every
// counter name, then every gauge name (both sorted), followed by one row
// per sample. Counters are cumulative, gauges instantaneous.
func WriteCSV(w io.Writer, samples []Sample) error {
	if len(samples) == 0 {
		return nil
	}
	counterNames := sortedKeys(samples[0].Counters)
	gaugeNames := sortedKeys(samples[0].Gauges)
	cw := csv.NewWriter(w)
	header := append([]string{"cycle"}, counterNames...)
	header = append(header, gaugeNames...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: writing csv: %w", err)
	}
	row := make([]string, 0, len(header))
	for _, s := range samples {
		row = row[:0]
		row = append(row, strconv.FormatUint(s.Cycle, 10))
		for _, n := range counterNames {
			row = append(row, strconv.FormatUint(s.Counters[n], 10))
		}
		for _, n := range gaugeNames {
			row = append(row, strconv.FormatFloat(s.Gauges[n], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: writing csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("metrics: writing csv: %w", err)
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
