// Multithreaded example: reproduce the paper's Figure 9 characterization —
// what fraction of loads in multithreaded workloads would CleanupSpec's
// GetS-Safe actually delay? (Answer: the few percent that hit a line
// another core holds in M or E.)
package main

import (
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	const steps = 20_000
	fmt.Printf("%-15s %12s %12s %12s\n", "workload", "safe-cache", "safe-DRAM", "unsafe(E/M)")
	var sum float64
	names := sim.MTWorkloads()
	for _, w := range names {
		r, err := sim.RunMTWorkload(w, steps)
		if err != nil {
			log.Fatal(err)
		}
		sum += r.UnsafeFrac
		fmt.Printf("%-15s %11.1f%% %11.1f%% %11.2f%%\n",
			w, r.SafeCacheFrac*100, r.SafeDRAMFrac*100, r.UnsafeFrac*100)
	}
	fmt.Printf("%-15s %24s %12.2f%%\n", "AVG", "", sum/float64(len(names))*100)
	fmt.Println("\nPaper (Figure 9): ~2.4% of loads touch remote-M/E lines on average, so")
	fmt.Println("delaying them until the correct path (GetS-Safe) costs almost nothing.")
}
