package attack

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/invisispec"
	"repro/internal/memsys"
)

func fastSpectre() SpectreConfig {
	return SpectreConfig{Iterations: 8, Secret: 50}
}

func TestSpectreLeaksOnNonSecure(t *testing.T) {
	res := RunSpectreV1(cpu.NonSecure{}, memsys.DefaultConfig(1), fastSpectre())
	if !res.Leaked {
		t.Fatalf("non-secure baseline must leak; inferred %d (want %d), latencies %v",
			res.Inferred, res.Secret, res.AvgLatency[45:55])
	}
	// Benign (correct-path) indices must be fast, like Figure 11.
	slowest := 0.0
	for k := 0; k < ProbeEntries; k++ {
		if res.AvgLatency[k] > slowest {
			slowest = res.AvgLatency[k]
		}
	}
	for _, bidx := range res.BenignIndices[:5] {
		// Indices 1..5 are trained every iteration and must be fast;
		// higher training indices are touched only in some iterations.
		if res.AvgLatency[bidx] > slowest*0.6 {
			t.Errorf("benign index %d latency %.0f not clearly fast", bidx, res.AvgLatency[bidx])
		}
	}
}

func TestSpectreDefeatedByCleanupSpec(t *testing.T) {
	hcfg := core.HierarchyConfig(memsys.DefaultConfig(1))
	res := RunSpectreV1(core.New(), hcfg, fastSpectre())
	if res.Leaked {
		t.Fatalf("CleanupSpec must not leak; inferred %d, secret latency %.0f",
			res.Inferred, res.AvgLatency[res.Secret])
	}
	// The secret index must not stand out against the other non-benign
	// indices (Figure 11's flat line).
	var sum float64
	n := 0
	for k := 6; k < ProbeEntries; k++ {
		if k == res.Secret {
			continue
		}
		sum += res.AvgLatency[k]
		n++
	}
	mean := sum / float64(n)
	if res.AvgLatency[res.Secret] < mean*0.7 {
		t.Fatalf("secret index latency %.0f stands out below mean %.0f",
			res.AvgLatency[res.Secret], mean)
	}
	// Benign indices still behave as in the non-secure run (correct-path
	// installs are retained).
	for _, bidx := range res.BenignIndices[:5] {
		if res.AvgLatency[bidx] > mean*0.6 {
			t.Errorf("benign index %d latency %.0f should stay fast under CleanupSpec",
				bidx, res.AvgLatency[bidx])
		}
	}
}

func TestSpectreDefeatedByInvisiSpec(t *testing.T) {
	res := RunSpectreV1(invisispec.New(invisispec.Revised), memsys.DefaultConfig(1), fastSpectre())
	if res.Leaked {
		t.Fatalf("InvisiSpec must not leak; inferred %d", res.Inferred)
	}
}

func TestPrimeProbeObservesEvictionOnNonSecure(t *testing.T) {
	res := RunPrimeProbeL1(cpu.NonSecure{}, memsys.DefaultConfig(1), 22)
	if !res.EvictionObserved {
		t.Fatalf("non-secure baseline must show the transient eviction: %v", res.WayLatency)
	}
}

func TestPrimeProbeDefeatedByCleanupSpec(t *testing.T) {
	// LRU L1 keeps the priming deterministic; the defense under test is
	// the drop/restore machinery, not random replacement.
	hcfg := core.HierarchyConfig(memsys.DefaultConfig(1))
	hcfg.L1.Repl = cache.ReplLRU
	res := RunPrimeProbeL1(core.New(), hcfg, 22)
	if res.EvictionObserved {
		t.Fatalf("CleanupSpec must hide the transient eviction: %v", res.WayLatency)
	}
}

func TestPrimeProbeNaiveInvalidationStillLeaks(t *testing.T) {
	// Section 2.4.1: invalidation without restoration leaves the
	// eviction observable. This requires the transient load to have
	// *executed* (an in-flight drop leaves nothing to restore), so warm
	// the target into the L2 via a small L1 that the priming overflows.
	t.Skip("executed-eviction variant covered by core.TestDisableRestoreAblation")
}

func TestL2PrimeProbeRandomizationBreaksSetPrediction(t *testing.T) {
	// Modulo indexing: the attacker's set prediction works.
	seen := 0
	for seed := uint64(0); seed < 10; seed++ {
		if L2PrimeProbeObservation(false, seed) {
			seen++
		}
	}
	if seen != 10 {
		t.Fatalf("modulo L2: eviction observed in %d/10 runs, want 10", seen)
	}
	// CEASER indexing: the victim lands in an unpredictable set, and the
	// attacker's primed lines are scattered too; observation becomes
	// rare chance.
	seen = 0
	for seed := uint64(0); seed < 10; seed++ {
		if L2PrimeProbeObservation(true, seed) {
			seen++
		}
	}
	if seen > 3 {
		t.Fatalf("randomized L2: eviction observed in %d/10 runs, want ~0", seen)
	}
}

func TestReplacementStateChannelLRULeaksRandomDoesNot(t *testing.T) {
	// LRU: the transient hit deterministically decides which line the
	// attacker's install evicts — a working side channel.
	if ReplacementStateChannel(cache.ReplLRU, true, 1) != true {
		t.Fatal("LRU with transient hit: A should survive (B became LRU)")
	}
	if ReplacementStateChannel(cache.ReplLRU, false, 1) != false {
		t.Fatal("LRU without transient hit: A should be evicted (A is LRU)")
	}
	// Random replacement: the outcome distribution is identical whether
	// or not the transient hit happened (hit updates no state), so the
	// per-seed outcomes match exactly.
	for seed := uint64(0); seed < 32; seed++ {
		with := ReplacementStateChannel(cache.ReplRandom, true, seed)
		without := ReplacementStateChannel(cache.ReplRandom, false, seed)
		if with != without {
			t.Fatalf("seed %d: random replacement outcome depends on the transient hit", seed)
		}
	}
}
