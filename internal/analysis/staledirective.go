package analysis

import "sort"

// AnalyzerStaleDirective keeps the suppression inventory honest: a
// //simlint:ordered or //simlint:allow comment that suppressed no finding
// in this run — while every analyzer it names actually ran over its file —
// is dead weight that silently outlives the code it excused, so it is
// itself a finding. The finding carries a -fix edit that deletes the
// comment (and the blank line it would leave behind).
//
// It must be registered last: its Finish phase reads the hit counters the
// other analyzers' suppressed findings increment, so every other analyzer
// — including Finish-phase reporters like lockorder — must have finished
// reporting first.
var AnalyzerStaleDirective = &Analyzer{
	Name:   "staledirective",
	Doc:    "flag //simlint suppression directives that no longer suppress any finding (removable with -fix)",
	Finish: finishStaleDirectives,
}

func finishStaleDirectives(p *FinishPass) {
	r := p.runner
	var files []string
	for file := range r.directives {
		files = append(files, file)
	}
	sort.Strings(files)

	type dirKey struct {
		file string
		line int
	}
	var keys []dirKey
	for _, file := range files {
		var lines []int
		for line := range r.directives[file] {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			keys = append(keys, dirKey{file: file, line: line})
		}
	}

	for _, k := range keys {
		d := r.directives[k.file][k.line]
		if d.verb == "hot" {
			continue // declares a hotalloc root; it never suppresses, so it cannot go stale
		}
		if d.hits.Load() > 0 {
			continue
		}
		if !r.matchedFiles[d.pos.Filename] {
			continue // the directive's package was not analyzed this run
		}
		ranAll := true
		for _, target := range d.targets() {
			if !r.ran[target] {
				ranAll = false
				break
			}
		}
		if !ranAll {
			continue // can't call it stale if a target analyzer didn't run
		}
		fix := &Fix{
			Message: "remove stale //simlint directive",
			Edits:   []TextEdit{{Pos: d.comment.Pos(), End: d.comment.End(), NewText: ""}},
		}
		p.ReportFix(d.comment.Pos(), fix,
			"stale //simlint:%s directive: every analyzer it targets ran here and reported nothing it would suppress; remove it (or simlint -fix will)", d.verb)
	}
}
