// Package lockord is the lockorder analyzer's golden input.
package lockord

import "sync"

// Counter's n is guarded: Add writes it under mu.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add establishes the guard relation by writing n with mu held.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Bad reads the guarded field with the guard provably not held.
func (c *Counter) Bad() int {
	return c.n // want `Counter.n is guarded by lockord.Counter.mu`
}

// readLocked follows the *Locked convention: mu is assumed held at entry.
func (c *Counter) readLocked() int {
	return c.n
}

// Snapshot uses the convention helper correctly.
func (c *Counter) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readLocked()
}

// Cond may or may not hold the lock at the read: Maybe is not provable,
// so no finding.
func (c *Counter) Cond(locked bool) int {
	if locked {
		c.mu.Lock()
		defer c.mu.Unlock()
	}
	return c.n
}

// Double acquires the same mutex class twice on one path.
func (c *Counter) Double() {
	c.mu.Lock()
	c.mu.Lock() // want `acquiring lockord.Counter.mu while it is already held`
	c.mu.Unlock()
	c.mu.Unlock()
}

// A and B form a lock-order cycle through AB and BA.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// AB takes A.mu then B.mu.
func AB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `lock-order cycle: lockord.A.mu -> lockord.B.mu -> lockord.A.mu`
	b.mu.Unlock()
}

// BA takes B.mu then A.mu — the opposite order.
func BA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// lockB is a helper that acquires B.mu; edges must flow through calls.
func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

// ABIndirect records the same A->B edge through the helper summary.
func ABIndirect(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b)
}
