// Package attack implements the paper's attack toolkit as real programs for
// the simulated core: the Spectre Variant-1 proof of concept that Figure 11
// is built from (train the bounds-check branch, transiently read a secret
// out of bounds, encode it into the cache as array2[secret*512], infer it
// on the correct path with Flush+Reload timing), a Prime+Probe variant that
// observes the *eviction* instead of the install (the Section 2.4.1 attack
// that defeats naive invalidation), and an L2 Prime+Probe demonstrating
// what CEASER randomization breaks.
package attack

import (
	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
)

// Spectre PoC memory layout.
const (
	addrSize   = arch.Addr(0x1000) // array1_size (bounds)
	addrArray1 = arch.Addr(0x2000) // 8-entry victim array
	addrSecret = arch.Addr(0x3000) // the out-of-bounds secret byte
	addrArray2 = arch.Addr(0x10_0000)
	addrRes    = arch.Addr(0x20_0000) // per-index accumulated latencies

	// MaliciousX indexes array1 so that array1[MaliciousX] is the secret:
	// addrArray1 + MaliciousX*8 == addrSecret.
	MaliciousX = int64((addrSecret - addrArray1) / 8)
	// ProbeEntries is the number of array2 slots probed (Figure 11's x
	// axis).
	ProbeEntries = 64
	// ProbeStride is the byte distance between array2 slots (the PoC's
	// 512-byte stride, 8 cache lines apart).
	ProbeStride = 512
)

// SpectreConfig parameterizes the PoC.
type SpectreConfig struct {
	// Iterations is the number of attack rounds averaged over
	// (the paper averages 100).
	Iterations int
	// Secret is the planted secret value (the paper's PoC leaks 50).
	Secret int
}

// DefaultSpectreConfig returns the paper's PoC setup.
func DefaultSpectreConfig() SpectreConfig {
	return SpectreConfig{Iterations: 100, Secret: 50}
}

// SpectreResult holds the Figure 11 data for one policy.
type SpectreResult struct {
	Policy string
	// AvgLatency[k] is the average probe latency of array2[k*512] over
	// the iterations, in cycles.
	AvgLatency [ProbeEntries]float64
	// Secret is the planted value; Inferred is argmin latency over the
	// non-benign indices; Leaked reports whether the attack recovered
	// the secret with a clear timing margin.
	Secret   int
	Inferred int
	Leaked   bool
	// BenignIndices are the training values (installed on the correct
	// path; fast under every policy, per Figure 11).
	BenignIndices []int
}

// buildSpectreProgram assembles the PoC.
//
// Per iteration: flush array2; re-warm the secret's line (victim data in
// active use); train the bounds check with x = 1..5; flush array1_size;
// call the victim with MaliciousX; probe all 64 array2 slots with
// rdcycle-timed loads, accumulating latencies into memory.
func buildSpectreProgram(cfg SpectreConfig) *isa.Program {
	b := isa.NewBuilder("spectre-v1")
	b.InitData(addrSize, 16) // bounds: training x in 1..12 stays in range
	for i := int64(0); i < 16; i++ {
		b.InitData(addrArray1+arch.Addr(i*8), uint64(i)) // array1[i] = i
	}
	b.InitData(addrSecret, uint64(cfg.Secret))

	b.Li(28, int64(cfg.Iterations))
	b.Label("outer")

	// Flush array2's probe slots.
	b.Li(1, int64(addrArray2))
	b.Li(2, ProbeEntries)
	b.Label("flush2")
	b.CLFlush(1, 0)
	b.AddI(1, 1, ProbeStride)
	b.AddI(2, 2, -1)
	b.Br(isa.CondNE, 2, 0, "flush2")

	// Keep the secret's line resident (the victim uses this data).
	b.Li(3, int64(addrSecret))
	b.Load(4, 3, 0)

	// Train the victim's bounds check with x counting down to 1. The
	// training count varies per iteration (5..12, keyed off the
	// iteration counter) so the branch-history pattern preceding the
	// attack is not fixed — a fixed pattern would let the local history
	// predictor learn the attack itself.
	b.Mix(27, 28, 0x7A31)
	b.AluI(isa.AluAnd, 27, 27, 7)
	b.AddI(27, 27, 5)
	b.Label("train")
	b.Add(1, 27, 0) // x = r27
	b.Call("victim")
	b.AddI(27, 27, -1)
	b.Br(isa.CondNE, 27, 0, "train")

	// Flush the bounds so the mispredicted check resolves slowly.
	b.Li(3, int64(addrSize))
	b.CLFlush(3, 0)
	b.Fence()

	// Attack call.
	b.Li(1, MaliciousX)
	b.Call("victim")

	// Give a squash-surviving in-flight fill time to land before probing
	// (the non-secure baseline lets it land; CleanupSpec drops it).
	b.Li(3, int64(addrSize+0x800))
	b.Load(4, 3, 0) // cold line: ~memory latency delay
	b.Fence()

	// Probe phase (Flush+Reload): time each array2 slot.
	b.Li(26, 0)
	b.Li(25, ProbeEntries)
	b.Li(24, int64(addrArray2))
	b.Li(23, int64(addrRes))
	b.Label("probe")
	b.AluI(isa.AluShl, 5, 26, 9) // k*512
	b.Add(6, 24, 5)
	// lfence-style serialization: the timed load may not issue before
	// the first timer read, and the second timer read is itself
	// serializing (executes at ROB head), bracketing the load exactly.
	b.Fence()
	b.RdCycle(8)
	b.Load(9, 6, 0)
	b.RdCycle(11)
	b.Alu(isa.AluSub, 12, 11, 8)
	b.AluI(isa.AluShl, 13, 26, 3)
	b.Add(14, 23, 13)
	b.Load(15, 14, 0)
	b.Add(15, 15, 12)
	b.Store(14, 0, 15)
	b.AddI(26, 26, 1)
	b.Br(isa.CondLTU, 26, 25, "probe")

	b.AddI(28, 28, -1)
	b.Br(isa.CondNE, 28, 0, "outer")
	b.Halt()

	// victim(x in r1): if x < array1_size { array2[array1[x]*512] }.
	b.Label("victim")
	b.Li(21, int64(addrSize))
	b.Load(22, 21, 0)
	b.Br(isa.CondGEU, 1, 22, "vout") // out of bounds: skip
	b.AluI(isa.AluShl, 23, 1, 3)
	b.Li(24, int64(addrArray1))
	b.Add(23, 23, 24)
	b.Load(23, 23, 0) // array1[x] — the secret on the transient path
	b.AluI(isa.AluShl, 23, 23, 9)
	b.Li(24, int64(addrArray2))
	b.Add(23, 23, 24)
	b.Load(23, 23, 0) // array2[value*512]: the transmission
	b.Label("vout")
	b.Ret()

	return b.Build()
}

// RunSpectreV1 executes the PoC under the given policy and hierarchy
// configuration and returns the Figure 11 data.
func RunSpectreV1(pol cpu.Policy, hcfg memsys.Config, cfg SpectreConfig) SpectreResult {
	prog := buildSpectreProgram(cfg)
	mcfg := cpu.DefaultConfig()
	mcfg.MaxCycles = arch.Cycle(uint64(cfg.Iterations)*2_000_000 + 10_000_000)
	h := memsys.New(hcfg)
	m := cpu.New(mcfg, prog, h, pol)
	m.Run(0)
	if !m.Halted() {
		//simlint:allow errdiscipline -- PoC harness invariant: a non-halting attack program is a harness bug, not a recoverable campaign cell
		panic("attack: spectre PoC did not complete")
	}

	res := SpectreResult{Secret: cfg.Secret, BenignIndices: []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}}
	if pol != nil {
		res.Policy = pol.Name()
	} else {
		res.Policy = "nonsecure"
	}
	for k := 0; k < ProbeEntries; k++ {
		total := m.Memory().Read64(addrRes + arch.Addr(k*8))
		res.AvgLatency[k] = float64(total) / float64(cfg.Iterations)
	}

	// Inference: the fastest non-benign index.
	benign := map[int]bool{}
	for _, bidx := range res.BenignIndices {
		benign[bidx] = true
	}
	best, bestLat := -1, 0.0
	second := 0.0
	for k := 0; k < ProbeEntries; k++ {
		if benign[k] {
			continue
		}
		lat := res.AvgLatency[k]
		switch {
		case best == -1:
			best, bestLat = k, lat
		case lat < bestLat:
			second = bestLat
			best, bestLat = k, lat
		case second == 0 || lat < second:
			second = lat
		}
	}
	res.Inferred = best
	// Leaked: the winner is the planted secret AND it is clearly
	// separated from the runner-up. All non-secret indices miss with
	// near-identical latency, so even a few successful rounds in the
	// average produce a distinct dip; 5 cycles is far above the noise.
	res.Leaked = best == cfg.Secret && bestLat <= second-5
	return res
}
