// Package multicore implements the 4-core functional-with-latency simulator
// used for the paper's multithreaded characterization (Figure 9: the
// breakdown of loads by the coherence state of their line — safe cache
// loads, safe DRAM loads, and "unsafe" loads that hit a remote M/E line and
// would be delayed by CleanupSpec's GetS-Safe) and for directed coherence
// experiments (Table 2).
//
// Each core executes a synthetic access stream derived from an
// workload.MTProfile: private data, read-shared data, streaming (DRAM)
// data, and migratory lock-protected data whose ownership rotates between
// cores — the pattern that produces remote-M/E loads in real multithreaded
// programs. The paper measured this with Sniper because load *counts*, not
// core timing, determine the figure; this engine makes the same trade.
package multicore

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Region bases for the synthetic address space.
const (
	privateBase   = arch.Addr(0x1000_0000)
	privateStride = arch.Addr(0x0100_0000) // per core
	privateBytes  = 64 << 10
	sharedBase    = arch.Addr(0x8000_0000)
	sharedBytes   = 256 << 10
	migrBase      = arch.Addr(0x9000_0000)
	migrRegions   = 16
	migrBytes     = 4 * arch.LineBytes // lines per lock region
	streamBase    = arch.Addr(0xA000_0000)
	streamBytes   = 64 << 20
)

// LoadClass classifies one load the way Figure 9 does.
type LoadClass int

// Load classes.
const (
	// SafeCache: local hit, remote-S, or shared-L2 hit.
	SafeCache LoadClass = iota
	// SafeDRAM: the data comes from memory.
	SafeDRAM
	// UnsafeRemoteEM: the line is in a remote M/E cache; a speculative
	// GetS-Safe would fail and the load would be delayed (Section 3.5).
	UnsafeRemoteEM
)

func (c LoadClass) String() string {
	switch c {
	case SafeCache:
		return "safe-cache"
	case SafeDRAM:
		return "safe-dram"
	case UnsafeRemoteEM:
		return "unsafe-remote-em"
	}
	return fmt.Sprintf("LoadClass(%d)", int(c))
}

// Stats accumulates the Figure 9 breakdown.
type Stats struct {
	Loads     uint64
	Safe      uint64
	SafeDRAM  uint64
	Unsafe    uint64
	Stores    uint64
	Downgrade uint64 // remote M/E -> S transitions performed
}

// UnsafeFrac returns the unsafe share of loads.
func (s Stats) UnsafeFrac() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.Unsafe) / float64(s.Loads)
}

// SafeDRAMFrac returns the DRAM share of loads.
func (s Stats) SafeDRAMFrac() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.SafeDRAM) / float64(s.Loads)
}

// SafeCacheFrac returns the safe-cache share of loads.
func (s Stats) SafeCacheFrac() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.Safe) / float64(s.Loads)
}

// Sim is the multicore characterization engine.
type Sim struct {
	cores int
	dir   *coherence.Directory
	l1    []*cache.Cache
	l2    *cache.Cache
	rng   []*xrand.Rand
	prof  workload.MTProfile
	step  uint64

	Stats Stats
}

// New builds a sim for profile p with the given core count (the paper's
// characterization uses 4).
func New(p workload.MTProfile, cores int) *Sim {
	s := &Sim{
		cores: cores,
		dir:   coherence.NewDirectory(cores),
		l2: cache.New(cache.Config{
			Name: "L2", SizeBytes: cores * 2 << 20, Ways: 16,
			Repl: cache.ReplLRU, Seed: p.Seed,
		}),
		prof: p,
	}
	for c := 0; c < cores; c++ {
		s.l1 = append(s.l1, cache.New(cache.Config{
			Name: fmt.Sprintf("L1D%d", c), SizeBytes: 64 << 10, Ways: 8,
			Repl: cache.ReplLRU, Seed: p.Seed + uint64(c),
		}))
		s.rng = append(s.rng, xrand.New(p.Seed*977+uint64(c)))
	}
	return s
}

// Directory exposes the MESI directory (tests).
func (s *Sim) Directory() *coherence.Directory { return s.dir }

// pick draws the next line address for core, returning whether the access
// should be a store (migratory handoffs write).
func (s *Sim) pick(core int) (arch.LineAddr, bool) {
	r := s.rng[core]
	x := r.Float64()
	switch {
	case x < s.prof.MigratoryFrac:
		// Migratory region: the natural reader of region g in this
		// phase rotates across cores, so the line is usually M in the
		// previous phase-owner's cache. Handoff = read then write.
		g := r.Intn(migrRegions)
		phase := (s.step/64 + uint64(g)) % uint64(s.cores)
		if int(phase) != core {
			// Not this core's phase: touch own private data instead.
			return s.privateLine(core, r), false
		}
		off := arch.Addr(r.Intn(int(migrBytes/arch.LineBytes))) * arch.LineBytes
		return (migrBase + arch.Addr(g)*migrBytes + off).Line(), true
	case x < s.prof.MigratoryFrac+s.prof.SharedReadFrac:
		off := arch.Addr(r.Intn(sharedBytes/arch.LineBytes)) * arch.LineBytes
		return (sharedBase + off).Line(), false
	case x < s.prof.MigratoryFrac+s.prof.SharedReadFrac+s.prof.DRAMFrac:
		off := arch.Addr(r.Intn(streamBytes/arch.LineBytes)) * arch.LineBytes
		return (streamBase + off).Line(), false
	default:
		return s.privateLine(core, r), r.Bool(0.2)
	}
}

func (s *Sim) privateLine(core int, r *xrand.Rand) arch.LineAddr {
	off := arch.Addr(r.Intn(privateBytes/arch.LineBytes)) * arch.LineBytes
	return (privateBase + privateStride*arch.Addr(core) + off).Line()
}

// Step performs one access per core.
func (s *Sim) Step() {
	for c := 0; c < s.cores; c++ {
		line, isStore := s.pick(c)
		if isStore {
			s.store(c, line)
		}
		s.load(c, line)
	}
	s.step++
}

// Run executes steps rounds and returns the stats.
func (s *Sim) Run(steps int) Stats {
	for i := 0; i < steps; i++ {
		s.Step()
	}
	return s.Stats
}

// Classify reports how a load by core to line would be classified, without
// performing it.
func (s *Sim) Classify(core int, line arch.LineAddr) LoadClass {
	if s.dir.RemoteOwner(core, line) >= 0 {
		return UnsafeRemoteEM
	}
	if _, hit := s.l1[core].Probe(line); hit {
		return SafeCache
	}
	if _, hit := s.l2.Probe(line); hit {
		return SafeCache
	}
	return SafeDRAM
}

// load performs and classifies a load.
func (s *Sim) load(core int, line arch.LineAddr) LoadClass {
	class := s.Classify(core, line)
	s.Stats.Loads++
	switch class {
	case UnsafeRemoteEM:
		s.Stats.Unsafe++
		s.Stats.Downgrade++
	case SafeDRAM:
		s.Stats.SafeDRAM++
	default:
		s.Stats.Safe++
	}
	if _, hit := s.l1[core].Lookup(line); hit {
		return class
	}
	grant := s.dir.GetS(core, line)
	s.applyRemote(line, grant)
	s.installL2(line)
	s.installL1(core, line, grant.State)
	return class
}

// store performs a store (RFO).
func (s *Sim) store(core int, line arch.LineAddr) {
	s.Stats.Stores++
	grant := s.dir.GetX(core, line)
	s.applyRemote(line, grant)
	s.installL2(line)
	if _, hit := s.l1[core].Probe(line); !hit {
		s.installL1(core, line, arch.Modified)
	}
	s.l1[core].MarkDirty(line)
	s.l2.MarkDirty(line)
}

func (s *Sim) applyRemote(line arch.LineAddr, g coherence.Grant) {
	for _, c := range g.Downgrades {
		s.l1[c].SetState(line, arch.Shared)
	}
	for _, c := range g.Invalidates {
		s.l1[c].Invalidate(line)
	}
}

func (s *Sim) installL1(core int, line arch.LineAddr, st arch.CohState) {
	evicted, _ := s.l1[core].Install(line, st, core, arch.Cycle(s.step))
	if evicted.Valid() {
		s.dir.Evict(core, evicted.Tag, evicted.Dirty)
	}
}

func (s *Sim) installL2(line arch.LineAddr) {
	if _, hit := s.l2.Probe(line); hit {
		return
	}
	evicted, _ := s.l2.Install(line, arch.Shared, 0, arch.Cycle(s.step))
	if evicted.Valid() {
		for c := 0; c < s.cores; c++ {
			if old, ok := s.l1[c].Invalidate(evicted.Tag); ok {
				s.dir.Evict(c, evicted.Tag, old.Dirty)
			}
		}
	}
}
