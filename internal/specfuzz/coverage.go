package specfuzz

import (
	"fmt"
	"io"
	"sort"
)

// Coverage is the fuzzer's exploration signal: for each policy, how many
// gadgets have exercised each cell of the coarse gadget space — window ×
// pattern × receiver × flush-bounds, the four axes that decide whether a
// transient window opens and which channel carries the secret. 3×3×2×2 =
// 36 cells per policy. The map form (policy → cell name → gadget count)
// marshals with sorted keys, so a persisted coverage block is
// byte-deterministic for a given campaign.
type Coverage map[string]map[string]int

// flushNames labels the FlushBounds axis in cell names.
var flushNames = [2]string{"noflush", "flush"}

// CellName renders one coverage cell ("bounds-check/index/flush-reload/
// flush"). It is the stable key format of the persisted coverage maps.
func CellName(w WindowKind, p PatternKind, r ReceiverKind, flushBounds bool) string {
	f := flushNames[0]
	if flushBounds {
		f = flushNames[1]
	}
	return w.String() + "/" + p.String() + "/" + r.String() + "/" + f
}

// SpecCell returns the coverage cell a gadget spec lands in.
func SpecCell(s GadgetSpec) string {
	return CellName(s.Window, s.Pattern, s.Receiver, s.FlushBounds)
}

// AllCells enumerates the full 36-cell space in canonical
// (window, pattern, receiver, flush) order.
func AllCells() []string {
	var out []string
	for w := WindowKind(0); w < numWindowKinds; w++ {
		for p := PatternKind(0); p < numPatternKinds; p++ {
			for r := ReceiverKind(0); r < numReceiverKinds; r++ {
				for _, fb := range []bool{false, true} {
					out = append(out, CellName(w, p, r, fb))
				}
			}
		}
	}
	return out
}

// Add records one explored (policy, gadget) pair.
func (c Coverage) Add(policy string, s GadgetSpec) {
	cells := c[policy]
	if cells == nil {
		cells = make(map[string]int)
		c[policy] = cells
	}
	cells[SpecCell(s)]++
}

// Merge folds other into c (summing counts), so a resumed or sharded
// campaign accumulates one coverage picture.
func (c Coverage) Merge(other Coverage) {
	//simlint:ordered -- count addition is commutative; the merged map is order-independent
	for policy, cells := range other {
		dst := c[policy]
		if dst == nil {
			dst = make(map[string]int)
			c[policy] = dst
		}
		//simlint:ordered -- count addition is commutative; the merged map is order-independent
		for cell, n := range cells {
			dst[cell] += n
		}
	}
}

// Policies returns the covered policies, sorted.
func (c Coverage) Policies() []string {
	out := make([]string, 0, len(c))
	for p := range c {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Explored returns how many distinct cells a policy has explored.
func (c Coverage) Explored(policy string) int { return len(c[policy]) }

// Unexplored lists the cells a policy has never exercised, in canonical
// cell order — the fuzzer's to-do list for that policy.
func (c Coverage) Unexplored(policy string) []string {
	var out []string
	for _, cell := range AllCells() {
		if c[policy][cell] == 0 {
			out = append(out, cell)
		}
	}
	return out
}

// CoverageFromReport computes the coverage of one campaign: a (policy,
// gadget) pair counts as explored when its oracle cell completed (verdict
// present — leak or not, exploration is about the question being asked).
func CoverageFromReport(rep Report) Coverage {
	c := make(Coverage)
	for _, g := range rep.Gadgets {
		for _, v := range g.Verdicts {
			if v != nil {
				c.Add(v.Policy, g.Spec)
			}
		}
	}
	return c
}

// CoverageFromEntries computes the coverage a corpus carries: each entry
// explored its cell under every policy it records an expectation for.
// This is what makes coverage "persisted in the corpus" — the corpus IS
// the persistent record, and coverage is derived from it on demand, so
// the two can never disagree.
func CoverageFromEntries(entries []CorpusEntry) Coverage {
	c := make(Coverage)
	for _, e := range entries {
		for _, x := range e.Expect {
			c.Add(x.Policy, e.Spec)
		}
	}
	return c
}

// WriteHeatmap renders the coverage as a deterministic text heatmap, one
// block per policy (sorted): rows are window/pattern combinations,
// columns receiver × flush, cells the gadget count ("." = unexplored).
// Each block ends with the explored-cell ratio and the unexplored-cell
// listing, so `specfuzz report -coverage` both shows the picture and
// names the next gadgets worth generating.
func (c Coverage) WriteHeatmap(w io.Writer) {
	cols := make([]string, 0, int(numReceiverKinds)*2)
	for r := ReceiverKind(0); r < numReceiverKinds; r++ {
		for _, fb := range []bool{false, true} {
			f := flushNames[0]
			if fb {
				f = flushNames[1]
			}
			cols = append(cols, r.String()+"/"+f)
		}
	}
	const rowW, colW = 26, 22
	for bi, policy := range c.Policies() {
		if bi > 0 {
			fmt.Fprintln(w)
		}
		total := len(AllCells())
		fmt.Fprintf(w, "policy %s: %d/%d cells explored\n", policy, c.Explored(policy), total)
		fmt.Fprintf(w, "%-*s", rowW, "")
		for _, col := range cols {
			fmt.Fprintf(w, "%*s", colW, col)
		}
		fmt.Fprintln(w)
		for wk := WindowKind(0); wk < numWindowKinds; wk++ {
			for pk := PatternKind(0); pk < numPatternKinds; pk++ {
				fmt.Fprintf(w, "%-*s", rowW, wk.String()+"/"+pk.String())
				for r := ReceiverKind(0); r < numReceiverKinds; r++ {
					for _, fb := range []bool{false, true} {
						n := c[policy][CellName(wk, pk, r, fb)]
						if n == 0 {
							fmt.Fprintf(w, "%*s", colW, ".")
						} else {
							fmt.Fprintf(w, "%*d", colW, n)
						}
					}
				}
				fmt.Fprintln(w)
			}
		}
		if missing := c.Unexplored(policy); len(missing) > 0 {
			fmt.Fprintf(w, "unexplored (%d):\n", len(missing))
			for _, cell := range missing {
				fmt.Fprintf(w, "  %s\n", cell)
			}
		}
	}
}
