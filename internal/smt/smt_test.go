package smt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
)

const (
	addrX     = arch.Addr(0x200) // the victim's transient target (L1 set 8 @512B L1)
	addrChain = arch.Addr(0x9000)
	addrRes   = arch.Addr(0x20_0000)
)

func smtHier(protect bool, partitionWays int) memsys.Config {
	cfg := memsys.DefaultConfig(1)
	cfg.L1 = cache.Config{Name: "L1D", SizeBytes: 64 << 10, Ways: 8, Repl: cache.ReplLRU,
		PartitionWays: partitionWays}
	cfg.ProtectSpecWindow = protect
	cfg.RandomizeL2 = true
	return cfg
}

// victimProgram warms addrX into the L2 (evicting it from the L1 through a
// clflush-free route is unnecessary: it loads it transiently later from
// cold/L2), then opens a ~2-memory-round-trip speculation window whose
// wrong path installs addrX.
func victimProgram() *isa.Program {
	b := isa.NewBuilder("smt-victim")
	// Long branch-resolution chain: two dependent DRAM loads.
	b.InitData(addrChain, uint64(addrChain)+0x100)
	b.InitData(addrChain+0x100, 1)
	b.Li(3, int64(addrChain))
	b.Load(4, 3, 0) // ~110 cycles
	b.Load(4, 4, 0) // ~110 more (dependent)
	b.Br(isa.CondNE, 4, 0, "correct")
	// Wrong path (predicted): install addrX speculatively.
	b.Li(7, int64(addrX))
	b.Load(8, 7, 0)
	b.Nop()
	b.Halt()
	b.Label("correct")
	b.Halt()
	return b.Build()
}

// attackerProgram delays ~150 cycles (inside the victim's window), then
// times a load of addrX and stores the latency to addrRes.
func attackerProgram() *isa.Program {
	b := isa.NewBuilder("smt-attacker")
	b.Li(1, 3)
	for i := 0; i < 50; i++ { // ~150 cycles of dependent multiplies
		b.Alu(isa.AluMul, 1, 1, 1)
	}
	b.Li(6, int64(addrX))
	b.Fence()
	b.RdCycle(8)
	b.Load(9, 6, 0)
	b.RdCycle(11)
	b.Alu(isa.AluSub, 12, 11, 8)
	b.Li(14, int64(addrRes))
	b.Store(14, 0, 12)
	b.Halt()
	return b.Build()
}

func runWindowProbe(t *testing.T, protect bool) (latency uint64) {
	t.Helper()
	p := NewPair(Config{
		Hierarchy: smtHier(protect, 0),
		Core:      cpu.DefaultConfig(),
		ProgA:     victimProgram(),
		ProgB:     attackerProgram(),
		PolA:      core.New(),
		PolB:      core.New(),
	})
	if !p.Run(2_000_000) {
		t.Fatal("SMT pair did not halt")
	}
	return p.B.Memory().Read64(addrRes)
}

func TestSMTWindowProbeProtected(t *testing.T) {
	unprotected := runWindowProbe(t, false)
	protected := runWindowProbe(t, true)
	// Without protection the sibling hits the speculatively installed
	// line at L1 latency; with Section 3.6's protection the hit is
	// serviced as a dummy miss (backing-store latency).
	if unprotected > 15 {
		t.Fatalf("unprotected probe latency %d; expected an L1-speed hit (is the window aligned?)", unprotected)
	}
	if protected < 50 {
		t.Fatalf("protected probe latency %d; expected dummy-miss servicing", protected)
	}
}

// TestSMTNoMoPartitioning: the attacker primes its own way-partition of a
// set; a burst of victim installs to the same set must not evict any
// attacker line when NoMo partitioning is on — and must evict some when it
// is off.
func TestSMTNoMoPartitioning(t *testing.T) {
	const l1Sets = 128
	set := 5
	primeLines := func(n, salt int) []arch.Addr {
		out := make([]arch.Addr, n)
		for j := 0; j < n; j++ {
			out[j] = arch.Addr((uint64(set) + uint64(j+salt+100)*l1Sets) * arch.LineBytes)
		}
		return out
	}

	attacker := func(lines []arch.Addr) *isa.Program {
		b := isa.NewBuilder("nomo-attacker")
		for _, a := range lines {
			b.Li(2, int64(a))
			b.Load(3, 2, 0)
		}
		b.Fence()
		// Wait for the victim's install burst.
		b.Li(1, 3)
		for i := 0; i < 170; i++ {
			b.Alu(isa.AluMul, 1, 1, 1)
		}
		// Probe the primed lines; accumulate total latency.
		b.Li(20, 0)
		for _, a := range lines {
			b.Li(6, int64(a))
			b.Fence()
			b.RdCycle(8)
			b.Load(9, 6, 0)
			b.RdCycle(11)
			b.Alu(isa.AluSub, 12, 11, 8)
			b.Add(20, 20, 12)
		}
		b.Li(14, int64(addrRes))
		b.Store(14, 0, 20)
		b.Halt()
		return b.Build()
	}
	victim := func(lines []arch.Addr) *isa.Program {
		b := isa.NewBuilder("nomo-victim")
		// Small delay so the attacker's priming settles first.
		b.Li(1, 3)
		for i := 0; i < 30; i++ {
			b.Alu(isa.AluMul, 1, 1, 1)
		}
		for _, a := range lines {
			b.Li(2, int64(a))
			b.Load(3, 2, 0)
		}
		b.Fence()
		b.Halt()
		return b.Build()
	}

	run := func(partitionWays int) uint64 {
		nPrime := 8
		if partitionWays > 0 {
			nPrime = partitionWays // the attacker owns only its partition
		}
		p := NewPair(Config{
			Hierarchy: smtHier(true, partitionWays),
			Core:      cpu.DefaultConfig(),
			ProgA:     victim(primeLines(10, 50)), // 10 victim installs, same set
			ProgB:     attacker(primeLines(nPrime, 0)),
			PolA:      core.New(),
			PolB:      core.New(),
		})
		if !p.Run(2_000_000) {
			t.Fatal("pair did not halt")
		}
		// Normalize per probed line.
		return p.B.Memory().Read64(addrRes) / uint64(nPrime)
	}

	shared := run(0) // no partitioning: victim evicts attacker lines
	nomo := run(4)   // NoMo: 4 ways per thread
	if shared < 10 {
		t.Fatalf("unpartitioned probe avg %d; expected eviction misses", shared)
	}
	if nomo > 9 {
		t.Fatalf("NoMo probe avg %d; attacker lines must survive the victim burst", nomo)
	}
}

// TestSMTPairIndependence: two threads with data dependencies confined to
// their own programs must both compute correct results while sharing the
// hierarchy.
func TestSMTPairIndependence(t *testing.T) {
	progFor := func(seed uint64) *isa.Program {
		return isa.RandomProgram(seed, isa.GenConfig{Calls: true, Loops: true})
	}
	refA := isa.NewInterp(progFor(5))
	refA.Run(0)
	refB := isa.NewInterp(progFor(6))
	refB.Run(0)

	p := NewPair(Config{
		Hierarchy: smtHier(true, 4),
		Core:      cpu.DefaultConfig(),
		ProgA:     progFor(5),
		ProgB:     progFor(6),
		PolA:      core.New(),
		PolB:      core.New(),
	})
	if !p.Run(10_000_000) {
		t.Fatal("pair did not halt")
	}
	for r := isa.Reg(1); r < 10; r++ {
		if p.A.Reg(r) != refA.Reg(r) {
			t.Errorf("thread A r%d = %#x, want %#x", r, p.A.Reg(r), refA.Reg(r))
		}
		if p.B.Reg(r) != refB.Reg(r) {
			t.Errorf("thread B r%d = %#x, want %#x", r, p.B.Reg(r), refB.Reg(r))
		}
	}
}

// TestCrossCoreWindowProbe mounts the paper's CrossCore adversary: the
// victim on core 0 speculatively installs a line (which also fills the
// shared L2); the attacker on core 1 misses its own L1 and would hit the
// speculative L2 copy inside the window. With protection on, the L2 copy is
// spec-marked and the access is serviced at memory latency.
func TestCrossCoreWindowProbe(t *testing.T) {
	run := func(protect bool) uint64 {
		hcfg := memsys.DefaultConfig(2)
		hcfg.ProtectSpecWindow = protect
		hcfg.RandomizeL2 = true
		p := NewCrossCorePair(Config{
			Hierarchy: hcfg,
			Core:      cpu.DefaultConfig(),
			ProgA:     crossVictim(),
			ProgB:     crossAttacker(),
			PolA:      core.New(),
			PolB:      core.New(),
		})
		if !p.Run(2_000_000) {
			t.Fatal("pair did not halt")
		}
		return p.B.Memory().Read64(addrRes)
	}
	unprotected := run(false)
	protected := run(true)
	// Unprotected: the attacker's L1 miss hits the transient L2 copy
	// (~L2 latency). Protected: the L2 hit path still exists, but the
	// spec-marked copy pushes the dummy-miss to memory latency.
	if unprotected > 40 {
		t.Fatalf("unprotected cross-core probe %d; expected an L2-speed hit", unprotected)
	}
	if protected < 60 {
		t.Fatalf("protected cross-core probe %d; expected memory-speed dummy miss", protected)
	}
}

// crossVictim opens a long window whose wrong path load misses to memory,
// filling the shared L2 speculatively.
func crossVictim() *isa.Program {
	b := isa.NewBuilder("cross-victim")
	b.InitData(addrChain, uint64(addrChain)+0x100)
	b.InitData(addrChain+0x100, 1)
	b.Li(3, int64(addrChain))
	b.Load(4, 3, 0)
	b.Load(4, 4, 0) // ~220-cycle window
	b.Br(isa.CondNE, 4, 0, "correct")
	b.Li(7, int64(addrX))
	b.Load(8, 7, 0) // fills L1(core0) + shared L2 speculatively
	b.Nop()
	b.Halt()
	b.Label("correct")
	b.Halt()
	return b.Build()
}

// crossAttacker waits past the victim's transient fill (~130 cycles), then
// times its own (L1-missing) load of the same line.
func crossAttacker() *isa.Program {
	b := isa.NewBuilder("cross-attacker")
	b.Li(1, 3)
	for i := 0; i < 60; i++ {
		b.Alu(isa.AluMul, 1, 1, 1)
	}
	b.Li(6, int64(addrX))
	b.Fence()
	b.RdCycle(8)
	b.Load(9, 6, 0)
	b.RdCycle(11)
	b.Alu(isa.AluSub, 12, 11, 8)
	b.Li(14, int64(addrRes))
	b.Store(14, 0, 12)
	b.Halt()
	return b.Build()
}
