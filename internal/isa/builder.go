package isa

import (
	"fmt"

	"repro/internal/arch"
)

// Builder assembles a Program with symbolic labels. Emit methods append one
// instruction each; Label marks the next instruction's address; branch and
// jump targets may reference labels defined later (fixed up in Build).
type Builder struct {
	name   string
	code   []Inst
	labels map[string]arch.Addr
	fixups []fixup
	data   map[arch.Addr]uint64
}

type fixup struct {
	at    int
	label string
}

// NewBuilder creates a builder for a program called name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]arch.Addr),
		data:   make(map[arch.Addr]uint64),
	}
}

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() arch.Addr { return arch.Addr(len(b.code)) }

// Label binds name to the current PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		//simlint:allow errdiscipline -- program-builder API contract: label misuse is a programmer error in test-program construction
		panic(fmt.Sprintf("isa: duplicate label %q", name))
	}
	b.labels[name] = b.PC()
}

// InitData sets the initial value of the 8-byte word at addr.
func (b *Builder) InitData(addr arch.Addr, v uint64) { b.data[addr] = v }

func (b *Builder) emit(in Inst) *Builder {
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emitCtrl(in Inst, label string) *Builder {
	b.fixups = append(b.fixups, fixup{at: len(b.code), label: label})
	return b.emit(in)
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Inst{Op: OpNop}) }

// Li loads an immediate: rd = imm.
func (b *Builder) Li(rd Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpALU, Alu: AluAdd, Rd: rd, Rs1: 0, Imm: imm, UseImm: true})
}

// Alu emits rd = kind(rs1, rs2).
func (b *Builder) Alu(kind ALUKind, rd, rs1, rs2 Reg) *Builder {
	return b.emit(Inst{Op: OpALU, Alu: kind, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AluI emits rd = kind(rs1, imm).
func (b *Builder) AluI(kind ALUKind, rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpALU, Alu: kind, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder { return b.Alu(AluAdd, rd, rs1, rs2) }

// AddI emits rd = rs1 + imm.
func (b *Builder) AddI(rd, rs1 Reg, imm int64) *Builder { return b.AluI(AluAdd, rd, rs1, imm) }

// Mix emits rd = hash64(rs1 + imm), the synthetic address scrambler.
func (b *Builder) Mix(rd, rs1 Reg, imm int64) *Builder { return b.AluI(AluMix, rd, rs1, imm) }

// Load emits rd = mem64[rs1 + imm].
func (b *Builder) Load(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpLoad, Rd: rd, Rs1: rs1, Imm: imm})
}

// Store emits mem64[rs1 + imm] = rs2.
func (b *Builder) Store(rs1 Reg, imm int64, rs2 Reg) *Builder {
	return b.emit(Inst{Op: OpStore, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Br emits a conditional branch to label.
func (b *Builder) Br(c Cond, rs1, rs2 Reg, label string) *Builder {
	return b.emitCtrl(Inst{Op: OpBranch, Cond: c, Rs1: rs1, Rs2: rs2}, label)
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emitCtrl(Inst{Op: OpJump}, label)
}

// Call emits a call to label.
func (b *Builder) Call(label string) *Builder {
	return b.emitCtrl(Inst{Op: OpCall}, label)
}

// Ret emits a return: an indirect jump to the link register (r31), which
// Call writes. The front end predicts it via the RAS.
func (b *Builder) Ret() *Builder { return b.emit(Inst{Op: OpRet, Rs1: LinkReg}) }

// CLFlush emits a cache-line flush of mem[rs1 + imm].
func (b *Builder) CLFlush(rs1 Reg, imm int64) *Builder {
	return b.emit(Inst{Op: OpCLFlush, Rs1: rs1, Imm: imm})
}

// Fence emits a load fence.
func (b *Builder) Fence() *Builder { return b.emit(Inst{Op: OpFence}) }

// RdCycle emits rd = cycle counter (serializing).
func (b *Builder) RdCycle(rd Reg) *Builder { return b.emit(Inst{Op: OpRdCycle, Rd: rd}) }

// Halt emits program termination.
func (b *Builder) Halt() *Builder { return b.emit(Inst{Op: OpHalt}) }

// Build resolves labels and returns the program.
func (b *Builder) Build() *Program {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			//simlint:allow errdiscipline -- program-builder API contract: label misuse is a programmer error in test-program construction
			panic(fmt.Sprintf("isa: undefined label %q", f.label))
		}
		b.code[f.at].Target = target
	}
	return &Program{Name: b.name, Code: b.code, Entry: 0, Data: b.data}
}
