package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the interprocedural substrate the v3 analyzers share: a
// module-wide call graph with one node per declared function and one per
// function literal, and a deterministic bottom-up fixpoint driver for
// computing per-function summaries over it.
//
// Edge kinds:
//
//   - call: a static call to a declared function or method. Calls through
//     an interface method fan out to every module type whose method set
//     implements the interface (a sound over-approximation for code that
//     never leaves the module).
//   - spawn: the call (or literal) is launched on a new goroutine by a
//     `go` statement. Spawn edges matter to the lock analyses: the callee
//     starts with an empty lock set regardless of what the spawner holds.
//   - closure: a function literal defined in the body. The literal's node
//     carries its own body; the closure edge records where it was built,
//     so summaries can flow from literal to enclosing function (a literal
//     that locks is assumed callable wherever it escapes).
//
// Determinism: nodes are ordered by source position and edges by call-site
// position, so every fixpoint over the graph visits in one fixed order and
// analyzer output is byte-identical across runs and worker counts.

// edgeKind classifies a call-graph edge.
type edgeKind uint8

const (
	edgeCall edgeKind = iota
	edgeSpawn
	edgeClosure
)

// cgNode is one function in the call graph: a declared function/method
// (Fn != nil) or a function literal (Lit != nil).
type cgNode struct {
	index int
	pkg   *Package
	fn    *types.Func   // nil for literals
	decl  *ast.FuncDecl // nil for literals
	lit   *ast.FuncLit  // nil for declared functions
	body  *ast.BlockStmt
	out   []*cgEdge // edges to callees, sorted by site position
	in    []*cgEdge // edges from callers
}

// name renders a short human-readable identity for messages and tests.
func (n *cgNode) name() string {
	if n.fn != nil {
		if recv := n.fn.Type().(*types.Signature).Recv(); recv != nil {
			if named := derefNamed(recv.Type()); named != nil {
				return named.Obj().Name() + "." + n.fn.Name()
			}
		}
		return n.fn.Name()
	}
	return "func literal"
}

// cgEdge is one caller→callee relation observed at a call or go site.
type cgEdge struct {
	caller *cgNode
	callee *cgNode
	site   token.Pos
	kind   edgeKind
}

// callGraph is the module-wide graph plus its lookup indexes.
type callGraph struct {
	nodes  []*cgNode
	byFn   map[*types.Func]*cgNode
	byLit  map[*ast.FuncLit]*cgNode
	// implementers maps an interface method to the concrete module
	// methods a call through it can reach.
	implementers map[*types.Func][]*types.Func
}

// nodeFor resolves a declared function to its node (nil if not in the
// module, e.g. stdlib).
func (g *callGraph) nodeFor(fn *types.Func) *cgNode { return g.byFn[fn] }

// litNode resolves a function literal to its node.
func (g *callGraph) litNode(l *ast.FuncLit) *cgNode { return g.byLit[l] }

// callees returns the (deduplicated, deterministic) callee nodes a call
// expression can reach: the static callee, or every module implementer
// for an interface method.
func (g *callGraph) calleesOf(pkg *Package, call *ast.CallExpr) []*cgNode {
	fn := calleeFunc(pkg, call)
	if fn == nil {
		return nil
	}
	if n := g.byFn[fn]; n != nil {
		return []*cgNode{n}
	}
	var out []*cgNode
	for _, impl := range g.implementers[fn] {
		if n := g.byFn[impl]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// buildCallGraph walks every package of the module once. It is cached on
// the Runner (see Runner.callGraph) because several analyzers share it.
func buildCallGraph(mod *Module) *callGraph {
	g := &callGraph{
		byFn:         make(map[*types.Func]*cgNode),
		byLit:        make(map[*ast.FuncLit]*cgNode),
		implementers: make(map[*types.Func][]*types.Func),
	}

	// Pass 1: nodes for every declared function, then for every literal
	// (literals nest, so they are collected in source order too).
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &cgNode{index: len(g.nodes), pkg: pkg, fn: fn, decl: fd, body: fd.Body}
				g.nodes = append(g.nodes, n)
				g.byFn[fn] = n
				ast.Inspect(fd.Body, func(m ast.Node) bool {
					if fl, ok := m.(*ast.FuncLit); ok {
						ln := &cgNode{index: len(g.nodes), pkg: pkg, lit: fl, body: fl.Body}
						g.nodes = append(g.nodes, ln)
						g.byLit[fl] = ln
					}
					return true
				})
			}
		}
	}

	g.buildImplementers(mod)

	// Pass 2: edges. For each node, scan its body shallowly (stopping at
	// nested literals, which own their statements).
	for _, n := range g.nodes {
		g.addEdges(n)
	}
	for _, n := range g.nodes {
		sort.Slice(n.in, func(i, j int) bool {
			a, b := n.in[i], n.in[j]
			if a.caller.index != b.caller.index {
				return a.caller.index < b.caller.index
			}
			return a.site < b.site
		})
	}
	return g
}

// buildImplementers indexes, for every interface method referenced in the
// module, the concrete module methods that implement it.
func (g *callGraph) buildImplementers(mod *Module) {
	// Collect the module's named types and interfaces deterministically.
	type namedDecl struct {
		pkg   *Package
		named *types.Named
	}
	var concrete []namedDecl
	var ifaces []*types.Named
	for _, pkg := range mod.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else {
				concrete = append(concrete, namedDecl{pkg: pkg, named: named})
			}
		}
	}
	for _, iface := range ifaces {
		it, ok := iface.Underlying().(*types.Interface)
		if !ok || it.NumMethods() == 0 {
			continue
		}
		for i := 0; i < it.NumMethods(); i++ {
			im := it.Method(i)
			for _, c := range concrete {
				for _, t := range []types.Type{c.named, types.NewPointer(c.named)} {
					if !types.Implements(t, it) {
						continue
					}
					obj, _, _ := types.LookupFieldOrMethod(t, true, im.Pkg(), im.Name())
					if m, ok := obj.(*types.Func); ok && g.byFn[m] != nil {
						g.implementers[im] = appendUniqueFunc(g.implementers[im], m)
					}
					break // pointer method set contains the value's; one lookup suffices
				}
			}
		}
	}
}

func appendUniqueFunc(fns []*types.Func, fn *types.Func) []*types.Func {
	for _, f := range fns {
		if f == fn {
			return fns
		}
	}
	return append(fns, fn)
}

// addEdges records every call, spawn, and closure edge out of n's body.
func (g *callGraph) addEdges(n *cgNode) {
	var walk func(node ast.Node, inGo bool)
	link := func(callee *cgNode, site token.Pos, kind edgeKind) {
		e := &cgEdge{caller: n, callee: callee, site: site, kind: kind}
		n.out = append(n.out, e)
		callee.in = append(callee.in, e)
	}
	walk = func(node ast.Node, inGo bool) {
		ast.Inspect(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				if ln := g.byLit[m]; ln != nil {
					kind := edgeClosure
					if inGo {
						kind = edgeSpawn
					}
					link(ln, m.Pos(), kind)
				}
				return false // the literal's body belongs to its own node
			case *ast.GoStmt:
				// The spawned call: its callee gets a spawn edge; argument
				// expressions evaluate on the spawner and are walked
				// normally.
				switch fun := ast.Unparen(m.Call.Fun).(type) {
				case *ast.FuncLit:
					if ln := g.byLit[fun]; ln != nil {
						link(ln, m.Pos(), edgeSpawn)
					}
				default:
					for _, callee := range g.calleesOf(n.pkg, m.Call) {
						link(callee, m.Pos(), edgeSpawn)
					}
				}
				for _, arg := range m.Call.Args {
					walk(arg, false)
				}
				if _, isLit := ast.Unparen(m.Call.Fun).(*ast.FuncLit); !isLit {
					walk(m.Call.Fun, false)
				}
				return false
			case *ast.CallExpr:
				for _, callee := range g.calleesOf(n.pkg, m) {
					link(callee, m.Pos(), edgeCall)
				}
				return true
			}
			return true
		})
	}
	walk(n.body, false)
	sort.Slice(n.out, func(i, j int) bool {
		a, b := n.out[i], n.out[j]
		if a.site != b.site {
			return a.site < b.site
		}
		return a.callee.index < b.callee.index
	})
}

// fixpoint sweeps update over every node (in deterministic index order)
// until a full sweep reports no change. update returns true when it grew
// the summary it maintains for the node; bottom-up summaries converge
// because summary domains are finite and monotone.
func (g *callGraph) fixpoint(update func(n *cgNode) bool) {
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			if update(n) {
				changed = true
			}
		}
	}
}

// reachable returns the set of nodes reachable from roots over call,
// spawn, and closure edges (closure edges count: a literal built inside a
// reachable function runs on its behalf).
func (g *callGraph) reachable(roots []*cgNode) map[*cgNode]bool {
	seen := make(map[*cgNode]bool)
	var stack []*cgNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range n.out {
			if !seen[e.callee] {
				seen[e.callee] = true
				stack = append(stack, e.callee)
			}
		}
	}
	return seen
}

// callGraph returns the module call graph, built once per Runner.
func (r *Runner) callGraph(mod *Module) *callGraph {
	r.cgOnce.Do(func() { r.cg = buildCallGraph(mod) })
	return r.cg
}
