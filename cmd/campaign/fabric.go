package main

// The distributed-campaign subcommands: `campaign serve` runs the
// coordinator's HTTP plane (lease protocol + /status + /metrics), and
// `campaign work` joins as a worker; `campaign gc` and `campaign replay`
// are the cache-lifecycle and diagnostics halves that round out operating
// a long-lived shared cache.

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/specfuzz"
)

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("campaign gc", flag.ExitOnError)
	var (
		cacheDir     = fs.String("cache", ".campaign", "cache directory")
		maxAge       = fs.Duration("max-age", 0, "evict entries older than this (0 = no age criterion)")
		gridName     = fs.String("grid", "", "evict entries not belonging to this grid")
		workloadsF   = fs.String("workloads", "", "comma-separated workload override (with -grid)")
		policiesF    = fs.String("policies", "", "comma-separated policy override (with -grid)")
		seedsF       = fs.String("seeds", "", "seed sweep (with -grid)")
		instructions = fs.Uint64("instructions", 150_000, "measurement window (with -grid)")
		dryRun       = fs.Bool("dry-run", false, "report what would be evicted, touch nothing")
	)
	fs.Parse(args)

	opts := campaign.GCOptions{MaxAge: *maxAge, DryRun: *dryRun}
	if *gridName != "" {
		_, jobs, err := resolveGrid(*gridName, *workloadsF, *policiesF, *seedsF, *instructions)
		if err != nil {
			return err
		}
		opts.Keep = make(map[string]bool, len(jobs))
		for _, job := range jobs {
			key, err := job.Key()
			if err != nil {
				return err
			}
			opts.Keep[key] = true
		}
	}
	rep, err := campaign.GC(*cacheDir, opts)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("campaign replay", flag.ExitOnError)
	var (
		depth    = fs.Int("depth", campaign.ReplayDepth, "replay trace capacity in events")
		traceOut = fs.String("trace-out", "", "write the replay's full event trace to this file (- = stdout)")
	)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: campaign replay [flags] <quarantine-dump.json>")
	}
	dump, err := campaign.LoadDump(fs.Arg(0))
	if err != nil {
		return err
	}
	eng := campaign.NewReplayEngine()
	specfuzz.Register(eng)
	fmt.Fprintf(os.Stderr, "campaign: replaying %s (originally quarantined: %s)\n", dump.Job, dump.Panic)
	rep, err := campaign.Replay(eng, dump, *depth)
	if err != nil {
		return err
	}
	if rep.Reproduced {
		fmt.Printf("replay: REPRODUCED — %v\n", rep.Result.Err)
	} else if rep.Result.Err != nil {
		fmt.Printf("replay: failed differently — %v\n", rep.Result.Err)
	} else {
		fmt.Println("replay: clean — the quarantined panic did not reproduce (fixed engine, or nondeterministic fault)")
	}
	fmt.Printf("replay: %d event(s) captured at full depth", len(rep.Events))
	if rep.Dropped > 0 {
		fmt.Printf(" (%d dropped: cell out-ran the %d-event capacity; raise -depth)", rep.Dropped, *depth)
	}
	fmt.Println()
	if *traceOut != "" {
		w := os.Stdout
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		for _, e := range rep.Events {
			if _, err := fmt.Fprintln(w, e.String()); err != nil {
				return err
			}
		}
		if *traceOut != "-" {
			fmt.Fprintf(os.Stderr, "campaign: wrote %d event(s) to %s\n", len(rep.Events), *traceOut)
		}
	}
	if rep.Reproduced {
		return fmt.Errorf("quarantined panic reproduced")
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("campaign serve", flag.ExitOnError)
	var (
		gridName     = fs.String("grid", "headline", "predefined grid")
		workloadsF   = fs.String("workloads", "", "comma-separated workload override")
		policiesF    = fs.String("policies", "", "comma-separated policy override")
		seedsF       = fs.String("seeds", "", "seed sweep")
		instructions = fs.Uint64("instructions", 150_000, "committed instructions per measurement window")
		cacheDir     = fs.String("cache", ".campaign", "shared cache + journal directory")
		httpAddr     = fs.String("http", ":8080", "listen address")
		ttl          = fs.Uint64("ttl", fabric.DefaultTTLTicks, "lease lifetime in clock ticks")
		tick         = fs.Duration("tick", time.Second, "logical clock period")
		spanOut      = fs.String("span-out", "", "write lease/heartbeat/reclaim spans as JSONL at exit")
	)
	fs.Parse(args)

	grid, jobs, err := resolveGrid(*gridName, *workloadsF, *policiesF, *seedsF, *instructions)
	if err != nil {
		return err
	}
	cells, err := fabric.CellsFromJobs(jobs)
	if err != nil {
		return err
	}
	sink := obs.NewSink()
	coord, err := fabric.NewCoordinator(fabric.Config{
		Grid:     grid.Name,
		Cells:    cells,
		CacheDir: *cacheDir,
		TTLTicks: *ttl,
		Trace:    obs.NewTracer(sink),
		Warn:     func(msg string) { fmt.Fprintln(os.Stderr, "campaign: serve:", msg) },
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	reg := metrics.NewRegistry()
	sink.AttachMetrics(reg)
	coord.AttachMetrics(reg, "fabric")
	mux := http.NewServeMux()
	mux.Handle("/fabric", fabric.Handler(coord))
	mux.Handle("/status", obs.StatusHandler(func() any { return serveStatus(coord) }))
	mux.Handle("/metrics", obs.MetricsHandler(reg.Snapshot))
	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		return fmt.Errorf("campaign: serve: %w", err)
	}
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "campaign: serve: http server:", err)
		}
	}()
	pending, _, done, _, _ := coord.Counts()
	fmt.Fprintf(os.Stderr, "campaign: serving grid %q (%d cell(s), %d already cached) on http://%s\n",
		grid.Name, len(cells), done, ln.Addr())
	fmt.Fprintf(os.Stderr, "campaign: workers join with: campaign work -coordinator http://<this-host>%s\n", *httpAddr)
	_ = pending

	// The coordinator's logical clock: one tick per period; expired leases
	// re-queue their cells. This loop IS the campaign — when every cell is
	// settled it ends and the summary prints.
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for !coord.Settled() {
		<-ticker.C
		if n := coord.Tick(); n > 0 {
			fmt.Fprintf(os.Stderr, "campaign: serve: reclaimed %d expired lease(s)\n", n)
		}
	}

	st := coord.Stats()
	_, _, done, failed, quarantined := coord.Counts()
	fmt.Fprintf(os.Stderr,
		"campaign: settled: %d done, %d failed, %d quarantined; %d lease(s) granted, %d expired, %d stale, %d duplicate, %d rejected upload(s), %d remote read(s)\n",
		done, failed, quarantined, st.Granted, st.Expired, st.StaleCompletes, st.DupCompletes, st.Rejected, st.RemoteReads)
	if *spanOut != "" {
		if err := writeSpans(sink, *spanOut, ""); err != nil {
			return err
		}
	}
	if n := failed + quarantined; n > 0 {
		return fmt.Errorf("%d of %d cells did not complete", n, len(cells))
	}
	return nil
}

// serveStatus is the /status payload: queue-state counts plus the
// protocol counters, enough for a dashboard or the CI chaos job to watch
// convergence.
func serveStatus(coord *fabric.Coordinator) any {
	p, l, d, f, q := coord.Counts()
	return struct {
		Pending     int          `json:"pending"`
		Leased      int          `json:"leased"`
		Done        int          `json:"done"`
		Failed      int          `json:"failed"`
		Quarantined int          `json:"quarantined"`
		Stats       fabric.Stats `json:"stats"`
	}{p, l, d, f, q, coord.Stats()}
}

func cmdWork(args []string) error {
	fs := flag.NewFlagSet("campaign work", flag.ExitOnError)
	var (
		coordURL   = fs.String("coordinator", "", "coordinator base URL (required)")
		cacheDir   = fs.String("cache", ".campaign-worker", "worker-local cache directory")
		id         = fs.String("id", "", "worker identity (default host-pid)")
		renewEvery = fs.Duration("renew-every", 5*time.Second, "lease heartbeat period")
		backoff    = fs.Duration("backoff", 250*time.Millisecond, "base retry/wait backoff")
		quiet      = fs.Bool("q", false, "suppress progress lines")
	)
	fs.Parse(args)
	if *coordURL == "" {
		return fmt.Errorf("campaign work: -coordinator is required")
	}
	url := strings.TrimSuffix(*coordURL, "/")
	if !strings.HasSuffix(url, "/fabric") {
		url += "/fabric"
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	eng := campaign.NewEngine()
	if !*quiet {
		eng.Reporter = campaign.NewReporter(os.Stderr)
	}
	specfuzz.Register(eng)
	cache, err := campaign.OpenCache(*cacheDir)
	if err != nil {
		return err
	}
	if !*quiet {
		cache.Warn = func(msg string) { fmt.Fprintln(os.Stderr, "campaign: work: warning:", msg) }
	}
	eng.Cache = cache

	w := &fabric.Worker{
		ID:          *id,
		Conn:        &fabric.HTTPConn{URL: url},
		Engine:      eng,
		WaitBackoff: *backoff,
		RenewEvery:  *renewEvery,
	}
	fmt.Fprintf(os.Stderr, "campaign: worker %s joining %s\n", *id, url)
	if err := w.Run(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign: worker %s done: %d cell(s) simulated, %d served from the shared cache, %d degraded remote read(s)\n",
		*id, w.CellsRun, w.RemoteHits, w.Degraded)
	return nil
}
