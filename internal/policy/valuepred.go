package policy

import (
	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/memsys"
)

// ValuePredict is the "delay and value-predict" mitigation of Sakalis et
// al. (ISCA 2019), the related-work baseline the paper cites at ~10%
// slowdown (Section 7.3.2): speculative L1 misses never access the cache;
// dependents continue on a last-value prediction, the real access runs once
// the load is unsquashable, and a wrong prediction squashes and re-executes
// the dependents. Speculative L1 hits proceed normally (the delay-on-miss
// filter).
type ValuePredict struct {
	table map[arch.Addr]uint64 // last committed value per load PC

	Stats ValuePredStats
}

// ValuePredStats counts prediction activity.
type ValuePredStats struct {
	Predictions uint64
	Validations uint64
	Correct     uint64
	Mispredicts uint64
}

// NewValuePredict creates the policy with an empty last-value table.
func NewValuePredict() *ValuePredict {
	return &ValuePredict{table: make(map[arch.Addr]uint64)}
}

// Name implements cpu.Policy.
func (v *ValuePredict) Name() string { return "value-predict" }

// Mode implements cpu.Policy.
func (v *ValuePredict) Mode(m *cpu.Machine, e *cpu.LQEntry, spec bool) cpu.LoadMode {
	if spec {
		return cpu.LoadValuePredict
	}
	return cpu.LoadNormal
}

// PredictValue implements cpu.ValuePredictor: last value seen at this PC.
func (v *ValuePredict) PredictValue(m *cpu.Machine, e *cpu.LQEntry) uint64 {
	v.Stats.Predictions++
	return v.table[e.PC]
}

// DeferWakeupUntilVisible implements cpu.Policy.
func (v *ValuePredict) DeferWakeupUntilVisible() bool { return false }

// OnLoadUnsquashable implements cpu.Policy.
func (v *ValuePredict) OnLoadUnsquashable(m *cpu.Machine, e *cpu.LQEntry) {}

// OnLoadNearCommit implements cpu.Policy: launch the real (validation)
// access for a value-predicted load as it nears retirement.
func (v *ValuePredict) OnLoadNearCommit(m *cpu.Machine, e *cpu.LQEntry) {
	v.launchValidation(m, e)
}

func (v *ValuePredict) launchValidation(m *cpu.Machine, e *cpu.LQEntry) {
	if !e.ValuePredicted || e.UpdateLaunched {
		return
	}
	e.UpdateLaunched = true
	v.Stats.Validations++
	seq := e.Seq
	// A distinct waiter tag (thread field 63) keeps validation requests
	// from colliding with the machine's own waiter ids in the MSHR.
	waiter := seq<<6 | 63
	txn, ok := m.Hierarchy().Load(m.CoreID(), e.Line, m.Now(), waiter,
		//simlint:allow hotalloc -- one validation closure per value-predicted load nearing commit; bounded by mispredicted-miss events, not cycles
		memsys.LoadOpts{Owner: m.ThreadID()}, func(t *memsys.Txn) {
			if !e.ValuePredicted || e.Seq != seq {
				return // the load itself was squashed meanwhile
			}
			actual := m.Memory().Read64(e.Addr)
			if actual == e.Value {
				v.Stats.Correct++
				e.ValuePredicted = false
				return
			}
			v.Stats.Mispredicts++
			m.RepairValueMisprediction(e, actual)
		})
	if !ok {
		// MSHR full: retry from CommitWait.
		e.UpdateLaunched = false
		v.Stats.Validations--
		return
	}
	e.UpdateDoneAt = txn.DoneAt
}

// CommitWait implements cpu.Policy: a value-predicted load may not retire
// until its validation completes.
func (v *ValuePredict) CommitWait(m *cpu.Machine, e *cpu.LQEntry) arch.Cycle {
	if e.ValuePredicted && !e.UpdateLaunched {
		v.launchValidation(m, e)
		if !e.UpdateLaunched {
			return 1 // MSHR full; retry next cycle
		}
	}
	if e.UpdateLaunched && e.UpdateDoneAt > m.Now() {
		return e.UpdateDoneAt - m.Now()
	}
	return 0
}

// OnLoadCommitted implements cpu.Policy: train the last-value table.
func (v *ValuePredict) OnLoadCommitted(m *cpu.Machine, e *cpu.LQEntry) {
	v.table[e.PC] = e.Value
}

// OnSquash implements cpu.Policy: delayed loads never touched the cache.
func (v *ValuePredict) OnSquash(*cpu.Machine, []cpu.SquashedLoad) cpu.SquashCost {
	return cpu.SquashCost{}
}

// DropSquashedInflight implements cpu.Policy.
func (v *ValuePredict) DropSquashedInflight() bool { return false }
