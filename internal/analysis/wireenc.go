package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// AnalyzerWireEnc guards the byte-determinism of everything this module
// serializes as JSON: journal rows (manifest, fabric lease log), fabric
// wire messages, cache entries, and diagnostic dumps. Those bytes feed
// checksums (cache entries), append-only journals that must replay
// identically, and cross-host protocol exchanges, so a struct that can
// encode the same logical value two different ways is a latent
// divergence bug.
//
// The analyzer seeds on every static json.Marshal / json.Unmarshal /
// (*json.Encoder).Encode / (*json.Decoder).Decode call site, then walks
// the reachable struct graph (through pointers, slices, arrays, map
// values, and named module types) and reports:
//
//   - interface-typed content (any/error fields, []any elements,
//     map[...]any values): the dynamic type drifts across a round-trip
//     (an int re-decodes as float64), so the bytes are not canonical;
//   - map keys that are neither string/integer-underlying nor
//     encoding.TextMarshaler: encoding/json has no canonical key order
//     for them and errors at runtime.
//
// A named type implementing json.Marshaler is a trusted boundary for
// the schema walk — it has taken responsibility for its own (sorted,
// canonical) encoding — but for module types that responsibility is
// audited rather than assumed: the MarshalJSON body itself is inspected,
// and a range over a map inside it (whose iteration order would leak
// into the wire bytes) is reported. json:"-" fields never reach the
// wire and are skipped. Plain map fields with string/integer keys are
// accepted: encoding/json sorts those keys canonically.
var AnalyzerWireEnc = &Analyzer{
	Name:   "wireenc",
	Doc:    "require canonical JSON encoding for structs reaching journals or the fabric wire (no interface-typed content, ordered map keys)",
	Run:    runWireEnc,
	Finish: finishWireEnc,
}

// wireSeed is one JSON encode/decode call site and the static type it
// serializes.
type wireSeed struct {
	typ types.Type
	pos token.Position // the call site, for deterministic walk order
}

// wireAccumulator collects wire seeds from the parallel per-package
// phase; AnalyzerWireEnc.Finish walks the type graph they root.
type wireAccumulator struct {
	mu    sync.Mutex
	seeds []wireSeed
}

func (a *wireAccumulator) record(t types.Type, pos token.Position) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seeds = append(a.seeds, wireSeed{typ: t, pos: pos})
}

// runWireEnc finds the JSON serialization sites of one package and
// records the static type each one commits to the wire.
func runWireEnc(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
				return true
			}
			var arg ast.Expr
			switch fn.Name() {
			case "Marshal", "MarshalIndent":
				if len(call.Args) > 0 {
					arg = call.Args[0]
				}
			case "Unmarshal":
				if len(call.Args) > 1 {
					arg = call.Args[1]
				}
			case "Encode", "Decode":
				// Only the Encoder/Decoder methods, not any package
				// function that happens to share the name.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && len(call.Args) > 0 {
					arg = call.Args[0]
				}
			}
			if arg == nil {
				return true
			}
			t := p.Pkg.Info.TypeOf(arg)
			if t == nil {
				return true
			}
			p.runner.wireAcc.record(t, p.Mod.Fset.Position(call.Pos()))
			return true
		})
	}
}

// finishWireEnc walks the struct graph rooted at every recorded seed and
// reports non-canonical content. Runs serially after the parallel phase.
func finishWireEnc(fp *FinishPass) {
	seeds := fp.runner.wireAcc.seeds
	sort.Slice(seeds, func(i, j int) bool {
		a, b := seeds[i].pos, seeds[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	w := &wireWalker{
		fp:       fp,
		modPath:  fp.Mod.Path,
		visited:  make(map[string]bool),
		reported: make(map[token.Pos]map[string]bool),
	}
	for _, s := range seeds {
		w.visit(s.typ)
	}
}

type wireWalker struct {
	fp      *FinishPass
	modPath string
	// visited dedupes struct visits by canonical type string, so shared
	// types are walked (and reported) once no matter how many seeds
	// reach them.
	visited map[string]bool
	// reported dedupes findings per (field position, message): the same
	// field can be reached down multiple container paths.
	reported map[token.Pos]map[string]bool
}

// visit descends into t looking for structs to check. Containers are
// transparent; named types stop the walk when they are foreign (outside
// this module — their declarations are not ours to fix) or when they
// implement json.Marshaler (a trusted custom encoding).
func (w *wireWalker) visit(t types.Type) {
	switch t := t.(type) {
	case *types.Pointer:
		w.visit(t.Elem())
	case *types.Slice:
		w.visit(t.Elem())
	case *types.Array:
		w.visit(t.Elem())
	case *types.Map:
		w.visit(t.Elem())
	case *types.Named:
		if isJSONMarshaler(t) {
			w.checkMarshalBody(t)
			return
		}
		if !w.moduleType(t) {
			return
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			w.visitStruct(t.Obj().Name(), st)
			return
		}
		w.visit(t.Underlying())
	case *types.Struct:
		w.visitStruct("(anonymous struct)", t)
	}
}

// visitStruct checks one wire-reachable struct's fields and enqueues the
// module struct types they reference.
func (w *wireWalker) visitStruct(name string, st *types.Struct) {
	key := types.TypeString(st, nil)
	if w.visited[key] {
		return
	}
	w.visited[key] = true
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		if tag, _, _ := strings.Cut(reflect.StructTag(st.Tag(i)).Get("json"), ","); tag == "-" {
			continue // never serialized
		}
		w.checkContent(name, field, field.Type())
	}
}

// checkContent analyzes one field's type (transparently through
// containers), reporting interface content and unordered map keys, and
// recursing into reachable module structs.
func (w *wireWalker) checkContent(owner string, field *types.Var, t types.Type) {
	switch t := t.(type) {
	case *types.Pointer:
		w.checkContent(owner, field, t.Elem())
	case *types.Slice:
		w.checkContent(owner, field, t.Elem())
	case *types.Array:
		w.checkContent(owner, field, t.Elem())
	case *types.Map:
		if !canonicalMapKey(t.Key()) {
			w.reportf(field.Pos(),
				"wire struct %s field %s: map key type %s has no canonical JSON key order (use a string/integer key or implement encoding.TextMarshaler)",
				owner, field.Name(), t.Key())
		}
		w.checkContent(owner, field, t.Elem())
	case *types.Interface:
		w.reportf(field.Pos(),
			"wire struct %s field %s carries interface-typed content (%s): dynamic values have no canonical JSON encoding across a journal round-trip; use a concrete type or a custom sorted marshaller",
			owner, field.Name(), t)
	case *types.Named:
		if isJSONMarshaler(t) {
			w.checkMarshalBody(t) // trusted for the schema walk, but audit the body
			return
		}
		if !w.moduleType(t) {
			return
		}
		if _, ok := t.Underlying().(*types.Struct); ok {
			w.visit(t)
			return
		}
		w.checkContent(owner, field, t.Underlying())
	}
}

// checkMarshalBody audits a module type's custom MarshalJSON. The method
// stops the schema walk — it has taken responsibility for its own
// encoding — but that responsibility is verified, not assumed: a range
// over a map inside the body writes wire bytes in randomized iteration
// order. Collecting the keys into a slice and sorting first (the
// sortedKeys idiom) ranges over a slice and passes. Foreign types are
// skipped (their method bodies are not in the module's ASTs).
func (w *wireWalker) checkMarshalBody(t *types.Named) {
	if !w.moduleType(t) {
		return
	}
	key := "marshal:" + types.TypeString(t, nil)
	if w.visited[key] {
		return
	}
	w.visited[key] = true
	fn := marshalJSONFunc(t)
	if fn == nil {
		return
	}
	node := w.fp.runner.callGraph(w.fp.Mod).nodeFor(fn)
	if node == nil || node.decl == nil || node.decl.Body == nil {
		return
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		xt := node.pkg.Info.TypeOf(rng.X)
		if xt == nil {
			return true
		}
		if _, isMap := xt.Underlying().(*types.Map); isMap {
			w.reportf(rng.Pos(),
				"custom MarshalJSON of %s ranges over map %s: iteration order leaks into the wire bytes; sort the keys into a slice and range over that",
				t.Obj().Name(), exprString(rng.X))
		}
		return true
	})
}

// marshalJSONFunc resolves the concrete MarshalJSON method of t (or *t).
func marshalJSONFunc(t types.Type) *types.Func {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, "MarshalJSON")
		if fn, ok := obj.(*types.Func); ok && fn != nil {
			return fn
		}
	}
	return nil
}

func (w *wireWalker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if w.reported[pos] == nil {
		w.reported[pos] = make(map[string]bool)
	}
	if w.reported[pos][msg] {
		return
	}
	w.reported[pos][msg] = true
	w.fp.Reportf(pos, "%s", msg)
}

// moduleType reports whether a named type is declared inside the module
// under analysis (stdlib and external declarations are not ours to fix,
// and their encodings — time.Time, json.RawMessage — are stable).
func (w *wireWalker) moduleType(t *types.Named) bool {
	pkg := t.Obj().Pkg()
	return pkg != nil && (pkg.Path() == w.modPath || strings.HasPrefix(pkg.Path(), w.modPath+"/"))
}

// canonicalMapKey reports whether encoding/json gives the key type a
// canonical (sorted) encoding: string- or integer-underlying keys are
// sorted by value, and encoding.TextMarshaler keys by their marshalled
// text. Anything else has no defined key encoding at all.
func canonicalMapKey(t types.Type) bool {
	if b, ok := t.Underlying().(*types.Basic); ok {
		if b.Info()&(types.IsString|types.IsInteger) != 0 {
			return true
		}
	}
	return implementsMethod(t, "MarshalText")
}

// isJSONMarshaler reports whether t (or *t) implements json.Marshaler.
func isJSONMarshaler(t types.Type) bool {
	return implementsMethod(t, "MarshalJSON")
}

// implementsMethod reports whether t or *t has a method with the given
// name — a structural stand-in for the json.Marshaler /
// encoding.TextMarshaler checks that avoids constructing the stdlib
// interface types here.
func implementsMethod(t types.Type, name string) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(typ, true, nil, name)
		if fn, ok := obj.(*types.Func); ok && fn != nil {
			return true
		}
	}
	return false
}
