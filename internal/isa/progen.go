package isa

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/xrand"
)

// GenConfig shapes RandomProgram's output.
type GenConfig struct {
	// Segments is the number of straight-line segments (default 12).
	Segments int
	// OpsPerSegment bounds the random operations per segment (default 8).
	OpsPerSegment int
	// MemWindowWords is the size of the load/store window in 8-byte
	// words; a small window (default 64) makes store-to-load forwarding,
	// disambiguation blocks, and memory-order squashes frequent.
	MemWindowWords int
	// Calls enables call/ret subroutines (default true via RandomProgram).
	Calls bool
	// Loops enables bounded loops (default true via RandomProgram).
	Loops bool
}

// RandomProgram generates a *halting* random program that exercises ALU
// chains, loads and stores over a small aliasing window, forward branches
// (taken and not), bounded loops, and call/ret — the differential-testing
// workhorse: the out-of-order machine under every security policy must
// produce exactly the interpreter's architectural results.
//
// The generator never emits RdCycle (its value is timing-dependent) and
// never lets wrong-path-only state escape: every architectural value is a
// deterministic function of the program alone.
func RandomProgram(seed uint64, cfg GenConfig) *Program {
	if cfg.Segments == 0 {
		cfg.Segments = 12
	}
	if cfg.OpsPerSegment == 0 {
		cfg.OpsPerSegment = 8
	}
	if cfg.MemWindowWords == 0 {
		cfg.MemWindowWords = 64
	}
	rng := xrand.New(seed)
	b := NewBuilder(fmt.Sprintf("random-%d", seed))

	const memBase = int64(0x1000)
	mask := int64(cfg.MemWindowWords-1) * 8 // e.g. 63*8 = 0x1F8

	dataRegs := []Reg{1, 2, 3, 4, 5, 6, 7, 8, 9}
	reg := func() Reg { return dataRegs[rng.Intn(len(dataRegs))] }
	const rTmp, rBase, rLoop = Reg(18), Reg(19), Reg(25)

	// Seed data registers and the memory window with random values.
	for _, r := range dataRegs {
		b.Li(r, int64(rng.Uint32()))
	}
	b.Li(rBase, memBase)
	for w := 0; w < cfg.MemWindowWords; w++ {
		b.InitData(arch.Addr(memBase+int64(w*8)), rng.Uint64())
	}

	alukinds := []ALUKind{AluAdd, AluSub, AluAnd, AluOr, AluXor, AluShl, AluShr, AluMul, AluMix}
	conds := []Cond{CondEQ, CondNE, CondLTU, CondGEU, CondLT, CondGE}

	// emitAddr computes rTmp = rBase + (src & mask), an address inside
	// the aliasing window.
	emitAddr := func(src Reg) {
		b.AluI(AluAnd, rTmp, src, mask&^7)
		b.Add(rTmp, rBase, rTmp)
	}
	emitOp := func(depth int) {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // ALU
			k := alukinds[rng.Intn(len(alukinds))]
			if rng.Bool(0.4) {
				b.AluI(k, reg(), reg(), int64(rng.Uint32()&0xFFFF))
			} else {
				b.Alu(k, reg(), reg(), reg())
			}
		case 4, 5, 6: // load
			emitAddr(reg())
			b.Load(reg(), rTmp, 0)
		case 7, 8: // store
			emitAddr(reg())
			b.Store(rTmp, 0, reg())
		case 9: // fence (rare)
			if depth == 0 && rng.Bool(0.3) {
				b.Fence()
			} else {
				b.Nop()
			}
		}
	}

	var subroutines []uint64 // seeds for subroutine bodies
	for seg := 0; seg < cfg.Segments; seg++ {
		nOps := 1 + rng.Intn(cfg.OpsPerSegment)
		for i := 0; i < nOps; i++ {
			emitOp(0)
		}
		switch {
		case cfg.Loops && rng.Bool(0.4):
			// Bounded loop: 2-5 iterations of a small body.
			iters := 2 + rng.Intn(4)
			lbl := fmt.Sprintf("seg%d_loop", seg)
			b.Li(rLoop, int64(iters))
			b.Label(lbl)
			for i := 0; i < 1+rng.Intn(3); i++ {
				emitOp(1)
			}
			b.AddI(rLoop, rLoop, -1)
			b.Br(CondNE, rLoop, 0, lbl)
		case rng.Bool(0.5):
			// Forward branch over a few instructions; the skipped
			// code is real (and becomes wrong-path fodder when the
			// branch mispredicts).
			lbl := fmt.Sprintf("seg%d_skip", seg)
			b.Br(conds[rng.Intn(len(conds))], reg(), reg(), lbl)
			for i := 0; i < 1+rng.Intn(3); i++ {
				emitOp(1)
			}
			b.Label(lbl)
		case cfg.Calls && rng.Bool(0.6):
			fn := fmt.Sprintf("fn%d", len(subroutines))
			subroutines = append(subroutines, rng.Uint64())
			b.Call(fn)
		}
	}
	b.Halt()

	// Subroutine bodies (single call depth; the link register is live
	// only between call and ret).
	for i, s := range subroutines {
		sub := xrand.New(s)
		b.Label(fmt.Sprintf("fn%d", i))
		for j := 0; j < 1+sub.Intn(4); j++ {
			switch sub.Intn(3) {
			case 0:
				b.Alu(alukinds[sub.Intn(len(alukinds))], dataRegs[sub.Intn(len(dataRegs))],
					dataRegs[sub.Intn(len(dataRegs))], dataRegs[sub.Intn(len(dataRegs))])
			case 1:
				b.AluI(AluAnd, rTmp, dataRegs[sub.Intn(len(dataRegs))], mask&^7)
				b.Add(rTmp, rBase, rTmp)
				b.Load(dataRegs[sub.Intn(len(dataRegs))], rTmp, 0)
			case 2:
				b.AluI(AluAnd, rTmp, dataRegs[sub.Intn(len(dataRegs))], mask&^7)
				b.Add(rTmp, rBase, rTmp)
				b.Store(rTmp, 0, dataRegs[sub.Intn(len(dataRegs))])
			}
		}
		b.Ret()
	}
	return b.Build()
}
