package arch

import (
	"testing"
	"testing/quick"
)

func TestLineRoundTrip(t *testing.T) {
	cases := []struct {
		addr Addr
		line LineAddr
		off  uint64
	}{
		{0, 0, 0},
		{63, 0, 63},
		{64, 1, 0},
		{65, 1, 1},
		{0xFFFF, 0x3FF, 63},
		{1 << 40, 1 << 34, 0},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("%v.Line() = %v, want %v", c.addr, got, c.line)
		}
		if got := c.addr.Offset(); got != c.off {
			t.Errorf("%v.Offset() = %d, want %d", c.addr, got, c.off)
		}
	}
}

func TestLineAddrBase(t *testing.T) {
	if got := LineAddr(3).Addr(); got != 192 {
		t.Fatalf("LineAddr(3).Addr() = %v, want 192", got)
	}
}

func TestLinePropertyRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		// The line base plus the offset reconstructs the address.
		return Addr(uint64(addr.Line().Addr())+addr.Offset()) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCohStateStrings(t *testing.T) {
	want := map[CohState]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), s)
		}
	}
	if CohState(9).String() == "" {
		t.Error("unknown state should still format")
	}
}

func TestCohStatePredicates(t *testing.T) {
	if Invalid.Valid() || !Shared.Valid() || !Modified.Valid() {
		t.Error("Valid() wrong")
	}
	if Shared.IsOwned() || Invalid.IsOwned() {
		t.Error("S/I must not be owned")
	}
	if !Exclusive.IsOwned() || !Modified.IsOwned() {
		t.Error("E/M must be owned")
	}
}
