package cache

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/metrics"
)

func TestMSHRAllocateMergeRelease(t *testing.T) {
	m := NewMSHR("l1", 2)
	e1, merged, ok := m.Allocate(arch.LineAddr(1), 100)
	if !ok || merged || e1 == nil {
		t.Fatalf("first alloc: (%v,%v,%v)", e1, merged, ok)
	}
	e2, merged, ok := m.Allocate(arch.LineAddr(1), 101)
	if !ok || !merged || e2 != e1 {
		t.Fatal("same-line alloc must merge")
	}
	if len(e1.Waiters) != 2 {
		t.Fatalf("waiters %v", e1.Waiters)
	}
	if m.Stats.Merges != 1 || m.Stats.Allocs != 1 {
		t.Fatalf("stats %+v", *m)
	}
	m.Allocate(arch.LineAddr(2), 102)
	if !m.FullNow() {
		t.Fatal("MSHR should be full at 2 entries")
	}
	if _, _, ok := m.Allocate(arch.LineAddr(3), 103); ok {
		t.Fatal("allocation must fail when full")
	}
	if m.Stats.Full != 1 {
		t.Fatalf("full count %d", m.Stats.Full)
	}
	m.Release(e1)
	if m.Len() != 1 {
		t.Fatalf("len %d", m.Len())
	}
	// Releasing again is harmless (line no longer indexed to e1).
	m.Release(e1)
	if m.Len() != 1 {
		t.Fatalf("len %d after double release", m.Len())
	}
}

func TestMSHRSquashWaiterZombies(t *testing.T) {
	m := NewMSHR("l1", 2)
	e, _, _ := m.Allocate(arch.LineAddr(1), 10)
	m.Allocate(arch.LineAddr(1), 11)
	if !m.SquashWaiter(arch.LineAddr(1), 10) {
		t.Fatal("waiter 10 should be found")
	}
	if e.Squashed {
		t.Fatal("entry with remaining waiters must not be squashed")
	}
	if !m.SquashWaiter(arch.LineAddr(1), 11) {
		t.Fatal("waiter 11 should be found")
	}
	if !e.Squashed {
		t.Fatal("entry with no remaining waiters must be squashed")
	}
	// The zombie holds capacity but frees the line index: a retry gets a
	// fresh entry (fresh memory request), per Section 3.3.
	if m.Zombies() != 1 || m.Len() != 1 {
		t.Fatalf("zombies %d len %d", m.Zombies(), m.Len())
	}
	e2, merged, ok := m.Allocate(arch.LineAddr(1), 12)
	if !ok || merged || e2 == e {
		t.Fatal("retry must allocate a fresh entry, not merge onto the zombie")
	}
	if !m.FullNow() {
		t.Fatal("zombie + fresh entry must fill a 2-entry MSHR")
	}
	// Data returns for the zombie: capacity released.
	m.Release(e)
	if m.Zombies() != 0 || m.FullNow() {
		t.Fatalf("zombie release failed: zombies %d", m.Zombies())
	}
	// Releasing the live retry entry must not be confused by line reuse.
	m.Release(e2)
	if m.Len() != 0 {
		t.Fatalf("len %d", m.Len())
	}
	if m.SquashWaiter(arch.LineAddr(9), 1) {
		t.Fatal("absent line must report false")
	}
}

func TestMSHRReleaseWrongPointerIsSafe(t *testing.T) {
	m := NewMSHR("l1", 4)
	e1, _, _ := m.Allocate(arch.LineAddr(1), 10)
	m.SquashWaiter(arch.LineAddr(1), 10) // e1 becomes zombie
	e2, _, _ := m.Allocate(arch.LineAddr(1), 11)
	// Release the zombie: must not delete e2's index entry.
	m.Release(e1)
	if got, ok := m.Lookup(arch.LineAddr(1)); !ok || got != e2 {
		t.Fatal("zombie release clobbered the live entry")
	}
}

func TestMSHRSquashEpoch(t *testing.T) {
	m := NewMSHR("l1", 8)
	a, _, _ := m.Allocate(arch.LineAddr(1), 1)
	a.SEFE.EpochID = 3
	b, _, _ := m.Allocate(arch.LineAddr(2), 2)
	b.SEFE.EpochID = 4
	n := m.SquashEpoch(4)
	if n != 1 {
		t.Fatalf("squashed %d, want 1", n)
	}
	if !a.Squashed || b.Squashed {
		t.Fatal("wrong entries squashed")
	}
	if m.Zombies() != 1 {
		t.Fatalf("zombies %d", m.Zombies())
	}
	// Idempotent (a is out of the index now).
	if m.SquashEpoch(4) != 0 {
		t.Fatal("re-squash must be a no-op")
	}
}

func TestMSHRCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMSHR("bad", 0)
}

func TestSEFEStorageBits(t *testing.T) {
	// Section 6.6: LQ/L1-MSHR SEFE ~7 bytes, L2-MSHR SEFE ~2 bytes.
	if StorageBitsLQ != 56 {
		t.Fatalf("LQ SEFE bits = %d, want 56 (7 bytes)", StorageBitsLQ)
	}
	if StorageBitsL2 != 16 {
		t.Fatalf("L2 SEFE bits = %d, want 16 (2 bytes)", StorageBitsL2)
	}
}

// TestMSHRStatsBound pins the counter carve-out into MSHRStats: every
// counter keeps counting through the Stats field and every one stays
// bound into the registry under its historical name.
func TestMSHRStatsBound(t *testing.T) {
	m := NewMSHR("l1", 1)
	m.Allocate(arch.LineAddr(1), 100)
	m.Allocate(arch.LineAddr(1), 101) // merge
	m.Allocate(arch.LineAddr(2), 102) // full

	reg := metrics.NewRegistry()
	m.AttachMetrics(reg, "l1d.mshr")
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"l1d.mshr.allocs": 1,
		"l1d.mshr.merges": 1,
		"l1d.mshr.full":   1,
	} {
		if got, ok := snap.Counters[name]; !ok || got != want {
			t.Errorf("counter %s = %d (present=%v), want %d", name, got, ok, want)
		}
	}
}
