// Package hotpath is the hotalloc analyzer's golden input: allocation
// sites reachable from a declared per-cycle root are findings; the same
// sites in cold code are not.
package hotpath

// Sink consumes a value through an interface parameter, forcing the
// caller to box concrete arguments.
func Sink(v any) { _ = v }

// stats is a tiny per-step accumulator.
type stats struct{ vals []uint64 }

// Step is the per-cycle root. The committed hotroots.go list names only
// real-module functions, so the golden module declares its root with the
// directive form.
//
//simlint:hot -- golden stand-in for the simulator's per-cycle driver
func Step(s *stats, n uint64) {
	s.vals = append(s.vals, n)      // want `allocation on the per-cycle hot path \(append\)`
	Sink(n)                         // want `allocation on the per-cycle hot path \(box\)`
	f := func() uint64 { return n } // want `allocation on the per-cycle hot path \(closure\)`
	_ = f()
	helper(s)
	remove(s, 0)
	//simlint:allow hotalloc -- golden suppressed site: scratch map is bounded by the step's fan-out
	scratch := make(map[uint64]bool)
	_ = scratch
}

// helper is reachable from Step through a call edge, so its sites are
// hot too — the analysis is interprocedural, not lexical.
func helper(s *stats) {
	s.vals = append(s.vals, 1) // want `allocation on the per-cycle hot path \(append\)`
}

// remove uses the in-place splice idiom: append(s[:i], s[i+1:]...) can
// never outgrow the backing array, so the analyzer proves it silent.
func remove(s *stats, i int) {
	s.vals = append(s.vals[:i], s.vals[i+1:]...)
}

// Cold is not reachable from any root: identical allocations, no
// findings.
func Cold() []uint64 {
	out := make([]uint64, 0, 8)
	return append(out, 1)
}
