// Tradeoff example: the paper's central Undo-vs-Redo argument, measured.
// For a mix of workloads it compares CleanupSpec (undo: pay only on
// mis-speculation) against InvisiSpec (redo: pay on every correctly
// speculated load) and a delay-everything baseline.
package main

import (
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	workloads := []string{"gobmk", "sphinx3", "soplex", "lbm", "libq"}
	policies := []sim.Policy{sim.CleanupSpec, sim.InvisiSpecRevised, sim.InvisiSpecInitial, sim.DelayAll}
	const n = 80_000

	fmt.Printf("%-10s", "workload")
	for _, p := range policies {
		fmt.Printf(" %20s", p)
	}
	fmt.Println()

	sums := make([]float64, len(policies))
	for _, w := range workloads {
		base, err := sim.RunWorkload(w, sim.Config{Policy: sim.NonSecure, Instructions: n})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s", w)
		for i, p := range policies {
			r, err := sim.RunWorkload(w, sim.Config{Policy: p, Instructions: n})
			if err != nil {
				log.Fatal(err)
			}
			slow := (float64(r.Cycles)/float64(base.Cycles) - 1) * 100
			sums[i] += slow
			fmt.Printf(" %+19.1f%%", slow)
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "average")
	for i := range policies {
		fmt.Printf(" %+19.1f%%", sums[i]/float64(len(workloads)))
	}
	fmt.Println()
	fmt.Println("\nThe Undo approach pays only for squashed loads that missed the L1 —")
	fmt.Println("the uncommon case — while Redo schemes tax every speculative load.")
}
