package campaign

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/sim"
)

func testCfg(p sim.Policy, seed uint64) sim.Config {
	return sim.Config{Policy: p, Instructions: 6_000, Seed: seed}
}

// keyOf is the test-side Key that treats canonicalization failure as fatal.
func keyOf(t *testing.T, wl string, cfg sim.Config) string {
	t.Helper()
	k, err := Key(wl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// mustKey is keyOf for a Job.
func mustKey(t *testing.T, j Job) string {
	t.Helper()
	return keyOf(t, j.Workload, j.Config)
}

func TestKeyDeterminismAndSensitivity(t *testing.T) {
	base := testCfg(sim.CleanupSpec, 1)
	k := keyOf(t, "astar", base)
	if k != keyOf(t, "astar", base) {
		t.Fatal("key not deterministic")
	}
	if len(k) != 32 {
		t.Fatalf("key %q: want 32 hex chars", k)
	}

	on := true
	variants := map[string]sim.Config{
		"policy":       testCfg(sim.NonSecure, 1),
		"seed":         testCfg(sim.CleanupSpec, 2),
		"instructions": {Policy: sim.CleanupSpec, Instructions: 7_000, Seed: 1},
		"l1rand":       {Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1, L1RandomRepl: &on},
		"nowarmup":     {Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1, NoWarmup: true},
		"maxcycles":    {Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1, MaxCycles: 1_000_000},
		"watchdog":     {Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1, WatchdogWindow: 100_000},
	}
	for name, cfg := range variants {
		if keyOf(t, "astar", cfg) == k {
			t.Errorf("%s variant collided with the base key", name)
		}
	}
	if keyOf(t, "gcc", base) == k {
		t.Error("workload not part of the key")
	}

	// Defaults-resolution equivalence: an explicitly spelled-out default
	// hashes the same as the implicit one.
	explicit := sim.Config{Policy: sim.CleanupSpec, Instructions: 6_000, Seed: 1,
		MaxCycles: 500_000_000, Warmup: 6_000, WatchdogWindow: 200_000}
	if keyOf(t, "astar", explicit) != k {
		t.Error("explicit defaults must share the implicit-defaults key")
	}

	// The observability hooks are observation-only and must not affect
	// identity: same key with a trace ring, a metrics collector, a
	// sampling interval, or a fault injector attached.
	traced := base
	traced.Trace = sim.NewTraceRing(16)
	if keyOf(t, "astar", traced) != k {
		t.Error("trace ring changed the key")
	}
	instrumented := base
	instrumented.Metrics = &sim.Metrics{}
	instrumented.SampleEvery = 1000
	if keyOf(t, "astar", instrumented) != k {
		t.Error("metrics collector / sampling interval changed the key")
	}
	faulted := base
	faulted.Faults = faultinject.New(3)
	if keyOf(t, "astar", faulted) != k {
		t.Error("fault injector changed the key")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := Job{Workload: "astar", Config: testCfg(sim.NonSecure, 1)}
	res, err := sim.RunWorkload(job.Workload, job.Config)
	if err != nil {
		t.Fatal(err)
	}
	key := mustKey(t, job)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	if err := c.Put(job, res, nil); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get(key)
	if !ok {
		t.Fatal("cache miss after Put")
	}
	if e.Sum == "" {
		t.Fatal("entry has no checksum")
	}
	if !reflect.DeepEqual(e.Result, res) {
		t.Fatalf("result did not round-trip:\n got %+v\nwant %+v", e.Result, res)
	}
	if e.Workload != "astar" || e.Policy != sim.NonSecure || e.Seed != 1 {
		t.Fatalf("entry metadata wrong: %+v", e)
	}
	if e.Summary["ipc"] != res.IPC || e.Summary["cycles"] != float64(res.Cycles) {
		t.Fatalf("entry summary wrong: %+v", e.Summary)
	}

	// A torn/corrupt entry must read as a miss, not an error.
	var warned []string
	c.Warn = func(msg string) { warned = append(warned, msg) }
	if err := os.WriteFile(c.path(key), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if len(warned) != 1 || c.CorruptReads() != 1 {
		t.Fatalf("torn entry not logged: warned=%v corrupt=%d", warned, c.CorruptReads())
	}

	// Valid JSON whose content was tampered with must fail the checksum —
	// a silently flipped measurement is worse than a miss.
	if err := c.Put(job, res, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"workload": "astar"`, `"workload": "bstar"`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found in entry JSON")
	}
	if err := os.WriteFile(c.path(key), []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("checksum-mismatched entry served as a hit")
	}
	if last := warned[len(warned)-1]; !strings.Contains(last, "checksum mismatch") {
		t.Fatalf("tamper warning = %q", last)
	}
	// Restore a clean entry for the Entries scan below.
	if err := c.Put(job, res, nil); err != nil {
		t.Fatal(err)
	}

	// Entries skips root-level files (manifest) and quarantine dumps, and
	// returns the clean entries sorted by workload.
	if err := os.WriteFile(filepath.Join(dir, "manifest.jsonl"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(QuarantineDir(dir), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(QuarantineDir(dir), "dead.json"), []byte(`{"panic":"x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	job2 := Job{Workload: "gcc", Config: testCfg(sim.NonSecure, 1)}
	if err := c.Put(job2, res, nil); err != nil {
		t.Fatal(err)
	}
	entries, err := c.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Workload != "astar" || entries[1].Workload != "gcc" {
		t.Fatalf("Entries: got %d entries %+v, want astar+gcc", len(entries), entries)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest(dir, "quick")
	jobs := Grid{Name: "quick", Workloads: []string{"astar", "gcc"},
		Policies: []sim.Policy{sim.NonSecure}, Instructions: 6_000}.Jobs()
	m.Reconcile("quick", jobs)
	if p, d, f, q := m.Counts(); p != 2 || d != 0 || f != 0 || q != 0 {
		t.Fatalf("counts after reconcile: %d/%d/%d/%d", p, d, f, q)
	}
	if err := m.Append(JobResult{Job: jobs[0], Key: mustKey(t, jobs[0]), Result: sim.Result{Cycles: 123}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(JobResult{Job: jobs[1], Key: mustKey(t, jobs[1]), Err: os.ErrDeadlineExceeded, Attempts: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(); err != nil {
		t.Fatal(err)
	}

	loaded, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("manifest did not load back")
	}
	if loaded.Grid != "quick" {
		t.Fatalf("grid = %q", loaded.Grid)
	}
	p, d, f, q := loaded.Counts()
	if p != 0 || d != 1 || f != 1 || q != 0 {
		t.Fatalf("counts after load: pending=%d done=%d failed=%d quarantined=%d", p, d, f, q)
	}
	fails := loaded.Failures()
	if len(fails) != 1 || fails[0].Workload != "gcc" {
		t.Fatalf("failures: %+v", fails)
	}

	// Reconciling the same grid again keeps done cells done and re-queues
	// the failed one as pending.
	loaded.Reconcile("quick", jobs)
	p, d, f, q = loaded.Counts()
	if p != 1 || d != 1 || f != 0 || q != 0 {
		t.Fatalf("counts after re-reconcile: pending=%d done=%d failed=%d quarantined=%d", p, d, f, q)
	}
}

// TestManifestJournalAppendOnly pins the crash-safety property the journal
// exists for: outcomes persist without Save, one line per job.
func TestManifestJournalAppendOnly(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest(dir, "quick")
	jobs := Grid{Name: "quick", Workloads: []string{"astar", "gcc"},
		Policies: []sim.Policy{sim.NonSecure}, Instructions: 6_000}.Jobs()
	m.Reconcile("quick", jobs)
	if err := m.Append(JobResult{Job: jobs[0], Key: mustKey(t, jobs[0]), Result: sim.Result{Cycles: 9}}); err != nil {
		t.Fatal(err)
	}
	// No Save: the appended line alone must survive a "crash" (reload).
	loaded, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("journal did not load back without Save")
	}
	if _, d, _, _ := loaded.Counts(); d != 1 {
		t.Fatalf("done=%d after append-only persistence, want 1", d)
	}

	// A quarantined outcome round-trips with its status and dump path.
	if err := m.Append(JobResult{Job: jobs[1], Key: mustKey(t, jobs[1]),
		Err: errors.New("worker panic: boom"), Quarantined: true, DumpPath: "q/dead.json"}); err != nil {
		t.Fatal(err)
	}
	loaded, ok = LoadManifest(dir)
	if !ok {
		t.Fatal("journal did not load back")
	}
	qs := loaded.Quarantined()
	if len(qs) != 1 || qs[0].Status != StatusQuarantined || qs[0].Dump != "q/dead.json" {
		t.Fatalf("quarantined records: %+v", qs)
	}
	if _, _, f, q := loaded.Counts(); f != 0 || q != 1 {
		t.Fatalf("failed=%d quarantined=%d, want 0/1", f, q)
	}
}

func TestGridExpansion(t *testing.T) {
	g := Grid{
		Name:      "t",
		Workloads: []string{"astar", "gcc"},
		Policies:  []sim.Policy{sim.NonSecure, sim.CleanupSpec},
		Seeds:     []uint64{1, 2, 3},
	}
	jobs := g.Jobs()
	if len(jobs) != 2*2*3 {
		t.Fatalf("expanded to %d jobs, want 12", len(jobs))
	}
	seen := make(map[string]bool)
	for _, j := range jobs {
		k := mustKey(t, j)
		if seen[k] {
			t.Fatalf("duplicate key in expansion: %s", j)
		}
		seen[k] = true
	}
	// Deterministic order: first jobs sweep seeds of (astar, nonsecure).
	if jobs[0].Workload != "astar" || jobs[1].Config.Seed != 2 {
		t.Fatalf("unexpected expansion order: %v then %v", jobs[0], jobs[1])
	}
}

func TestGridByName(t *testing.T) {
	for _, name := range GridNames() {
		g, err := GridByName(name, 10_000, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Jobs()) == 0 {
			t.Fatalf("grid %q is empty", name)
		}
	}
	if _, err := GridByName("nope", 0, nil); err == nil {
		t.Fatal("unknown grid must error")
	}
	all, _ := GridByName("all", 0, []uint64{1, 2})
	if want := len(sim.Workloads()) * len(sim.Policies()) * 2; len(all.Jobs()) != want {
		t.Fatalf("all grid: %d jobs, want %d", len(all.Jobs()), want)
	}
}

func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in   string
		want []uint64
		err  bool
	}{
		{"", nil, false},
		{"1..5", []uint64{1, 2, 3, 4, 5}, false},
		{"1,7,42", []uint64{1, 7, 42}, false},
		{" 2 .. 3 ", []uint64{2, 3}, false},
		{"5..1", nil, true},
		{"0..3", nil, true},
		{"a,b", nil, true},
		{"1..99999", nil, true},
	}
	for _, c := range cases {
		got, err := ParseSeeds(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseSeeds(%q): err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseSeeds(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSummaryAndCSV(t *testing.T) {
	jobs := Grid{Name: "t", Workloads: []string{"astar", "gcc"},
		Policies:     []sim.Policy{sim.NonSecure, sim.CleanupSpec},
		Instructions: 6_000}.Jobs()
	eng := NewEngine()
	results := eng.Run(jobs)
	if n := len(Failed(results)); n != 0 {
		t.Fatalf("%d jobs failed", n)
	}
	table := SummaryTable(results).String()
	if !strings.Contains(table, "cleanupspec") || !strings.Contains(table, "%") {
		t.Fatalf("summary table missing slowdown row:\n%s", table)
	}
	var b strings.Builder
	if err := ResultsCSV(&b, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1+len(jobs) {
		t.Fatalf("CSV has %d lines, want %d:\n%s", len(lines), 1+len(jobs), b.String())
	}
	if !strings.HasPrefix(lines[0], "workload,policy,") {
		t.Fatalf("CSV header: %s", lines[0])
	}
}
