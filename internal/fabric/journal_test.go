package fabric

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// TestLeaseJournalRoundTrip pins the basic replay contract: rows appended
// in one life are the open/completed state of the next.
func TestLeaseJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLeaseLog(dir, "grid-a")
	if err != nil {
		t.Fatal(err)
	}
	rows := []LeaseRow{
		{Op: OpLease, Key: "aa11", Worker: "w1", Lease: 1, Tick: 0, ExpiryTick: 30},
		{Op: OpLease, Key: "bb22", Worker: "w2", Lease: 2, Tick: 0, ExpiryTick: 30},
		{Op: OpRenew, Key: "aa11", Worker: "w1", Lease: 1, Tick: 10, ExpiryTick: 40},
		{Op: OpComplete, Key: "bb22", Worker: "w2", Lease: 2, Tick: 12, Status: "done"},
		{Op: OpExpire, Key: "aa11", Lease: 1, Tick: 41},
	}
	for _, r := range rows {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLeaseLog(dir, "ignored-when-header-exists")
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Dropped(); got != 0 {
		t.Errorf("clean journal dropped %d lines", got)
	}
	if open := l2.OpenLeases(); len(open) != 0 {
		t.Errorf("open leases after expire+complete: %+v", open)
	}
	if done := l2.Completed(); len(done) != 1 || done["bb22"] != "done" {
		t.Errorf("completed = %+v, want bb22:done", done)
	}
}

// TestLeaseJournalTornTailSelfHeals is the SIGKILL'd-coordinator scar: a
// half-written final line must (a) load as exactly one dropped line with
// every earlier row intact, and (b) be terminated by the next append so
// the fragment never swallows a healthy row.
func TestLeaseJournalTornTailSelfHeals(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLeaseLog(dir, "grid-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(LeaseRow{Op: OpLease, Key: "aa11", Worker: "w1", Lease: 1, ExpiryTick: 30}); err != nil {
		t.Fatal(err)
	}
	// Injected mid-append kill: half a line, no trailing newline.
	l.Faults = faultinject.Plan("torn-tail").Schedule(faultinject.SiteManifestAppend, faultinject.KindTruncate, 1)
	if err := l.Append(LeaseRow{Op: OpComplete, Key: "aa11", Worker: "w1", Lease: 1, Status: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(LeaseLogPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.HasSuffix(raw, []byte{'\n'}) {
		t.Fatal("test setup: journal tail is not torn")
	}

	// Load: the fragment is one dropped line, the lease row survives. The
	// complete was lost with the crash, so the lease reads as still open —
	// exactly the signature that re-queues the cell.
	l2, err := OpenLeaseLog(dir, "grid-a")
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1 (the torn fragment)", got)
	}
	open := l2.OpenLeases()
	if len(open) != 1 || open[0].Key != "aa11" {
		t.Fatalf("open leases = %+v, want the surviving lease row", open)
	}

	// Resume: the next append must first terminate the fragment, so the
	// journal parses as fragment (dropped) + new row, not one merged line.
	if err := l2.Append(LeaseRow{Op: OpComplete, Key: "aa11", Worker: "w2", Lease: 2, Status: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := OpenLeaseLog(dir, "grid-a")
	if err != nil {
		t.Fatal(err)
	}
	if got := l3.Dropped(); got != 1 {
		t.Errorf("after self-heal: dropped = %d, want 1", got)
	}
	if done := l3.Completed(); done["aa11"] != "done" {
		t.Errorf("completion appended after the torn tail was lost: %+v", done)
	}
	if open := l3.OpenLeases(); len(open) != 0 {
		t.Errorf("open leases after healed completion: %+v", open)
	}
}

// TestLeaseJournalDoubleComplete pins the stale-lease double-completion
// residue: two complete rows for one key must load with the first status
// winning and the repeat counted, never an error.
func TestLeaseJournalDoubleComplete(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLeaseLog(dir, "grid-a")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []LeaseRow{
		{Op: OpLease, Key: "aa11", Worker: "w1", Lease: 1, ExpiryTick: 30},
		{Op: OpComplete, Key: "aa11", Worker: "w1", Lease: 1, Status: "done"},
		{Op: OpComplete, Key: "aa11", Worker: "w2", Lease: 2, Status: "failed"},
	} {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLeaseLog(dir, "grid-a")
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.DupCompletes(); got != 1 {
		t.Errorf("dupCompletes = %d, want 1", got)
	}
	if done := l2.Completed(); done["aa11"] != "done" {
		t.Errorf("completed status = %q, want the first writer's %q", done["aa11"], "done")
	}
	if got := l2.Dropped(); got != 0 {
		t.Errorf("dropped = %d, want 0 (a dup is not a torn line)", got)
	}
}

// TestLeaseJournalForeignLines: a torn header or garbage rows degrade to
// dropped-line counts, never a load failure.
func TestLeaseJournalForeignLines(t *testing.T) {
	dir := t.TempDir()
	blob := strings.Join([]string{
		`{"fabric":1,"grid":"g","schema":4}`,
		`{"op":"lease","key":"aa11","worker":"w1","lease":1,"tick":0,"expiry_tick":30}`,
		`not json at all`,
		`{"op":"wormhole","key":"bb22","lease":9,"tick":0}`,
	}, "\n") + "\n"
	if err := os.WriteFile(LeaseLogPath(dir), []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLeaseLog(dir, "g")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Dropped(); got != 2 {
		t.Errorf("dropped = %d, want 2 (garbage line + unknown op)", got)
	}
	if open := l.OpenLeases(); len(open) != 1 || open[0].Key != "aa11" {
		t.Errorf("open = %+v, want the one valid lease", open)
	}
}
