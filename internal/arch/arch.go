// Package arch defines the basic architectural vocabulary shared by every
// subsystem of the simulator: byte addresses, cache-line addresses, cycle
// counts, and MESI coherence states.
//
// Keeping these tiny types in one leaf package lets the cache, coherence,
// memory-system, CPU, and CleanupSpec packages talk to each other without
// import cycles.
package arch

import "fmt"

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// LineAddr is a cache-line address: a byte address with the line-offset bits
// stripped (addr >> LineShift). All cache and coherence structures operate on
// line addresses.
type LineAddr uint64

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

const (
	// LineBytes is the cache line size used throughout the system,
	// matching the paper's configuration (Table 4).
	LineBytes = 64
	// LineShift is log2(LineBytes).
	LineShift = 6
	// LineAddrBits is the width of a line address tracked by SEFE entries
	// (the paper's Figure 7 uses a 40-bit L1-evict line address).
	LineAddrBits = 40
)

// CodeBase is the byte address where instruction memory begins; PC i
// occupies InstBytes at CodeBase + i*InstBytes. Keeping code far above all
// data regions means instruction and data lines never collide.
const CodeBase Addr = 0x4000_0000_0000

// InstBytes is the encoded size of one instruction (8 bytes keeps the
// arithmetic trivial; the ISA is synthetic).
const InstBytes = 8

// PCLine returns the I-cache line holding the instruction at pc.
func PCLine(pc Addr) LineAddr { return (CodeBase + pc*InstBytes).Line() }

// Line returns the cache-line address containing a.
func (a Addr) Line() LineAddr { return LineAddr(a >> LineShift) }

// Offset returns the byte offset of a within its cache line.
func (a Addr) Offset() uint64 { return uint64(a) & (LineBytes - 1) }

// Addr returns the byte address of the first byte of line l.
func (l LineAddr) Addr() Addr { return Addr(l << LineShift) }

func (a Addr) String() string     { return fmt.Sprintf("0x%x", uint64(a)) }
func (l LineAddr) String() string { return fmt.Sprintf("L0x%x", uint64(l)) }

// CohState is a MESI coherence state for a cached line.
type CohState uint8

// MESI states. Invalid is the zero value so that an unused line is Invalid.
const (
	Invalid CohState = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer for CohState.
func (s CohState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("CohState(%d)", uint8(s))
}

// IsOwned reports whether the state grants its holder ownership (the ability
// to observe latency differences on downgrade, per the paper's Section 3.5).
func (s CohState) IsOwned() bool { return s == Exclusive || s == Modified }

// Valid reports whether the state represents a present line.
func (s CohState) Valid() bool { return s != Invalid }
