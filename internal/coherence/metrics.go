package coherence

import "repro/internal/metrics"

// AttachMetrics binds the directory's transaction counters into reg under
// the "coh." prefix. Fields stay plain struct counters on the hot path.
func (d *Directory) AttachMetrics(reg *metrics.Registry) {
	s := &d.Stats
	reg.BindCounter("coh.gets", &s.GetS)
	reg.BindCounter("coh.gets_safe", &s.GetSSafe)
	reg.BindCounter("coh.gets_safe_fail", &s.GetSSafeFail)
	reg.BindCounter("coh.getx", &s.GetX)
	reg.BindCounter("coh.downgrades", &s.Downgrades)
	reg.BindCounter("coh.invalidates", &s.Invalidates)
	reg.BindCounter("coh.writebacks", &s.Writebacks)
	reg.BindCounter("coh.flushes", &s.Flushes)
}
