package ceaser

import (
	"repro/internal/arch"
	"repro/internal/xrand"
)

// Dynamic remapping (CEASER's epoch mechanism): the indexer holds a current
// and a next key and a set pointer SPtr. Sets below SPtr have been
// relocated to the next key's mapping; the pointer advances gradually (one
// set at a time, paced by the cache controller), and when it reaches the
// last set the next key becomes current. An attacker can therefore never
// observe a stable set mapping for longer than one remap period.
//
// The timing cost of relocation is not modeled (CEASER reports ~1%); the
// mechanism here is functional: memsys.L2RemapStep physically moves the
// affected lines so lookups stay correct throughout.

// StartRemap begins a remap epoch toward a fresh key derived from seed.
// It is a no-op if a remap is already in progress.
func (ix *Indexer) StartRemap(seed uint64) {
	if ix.remapping {
		return
	}
	r := xrand.New(seed ^ 0x4EA1)
	for i := range ix.nextKeys {
		ix.nextKeys[i] = r.Uint64()
	}
	ix.sptr = 0
	ix.remapping = true
}

// Remapping reports whether a remap epoch is in progress.
func (ix *Indexer) Remapping() bool { return ix.remapping }

// SPtr returns the current relocation pointer (sets < SPtr use the next
// key).
func (ix *Indexer) SPtr() int { return ix.sptr }

// AdvanceSPtr moves the relocation pointer past one more set. The caller
// must first relocate the lines of set SPtr (see memsys.L2RemapStep). When
// the pointer passes the last set, the next key becomes current and the
// remap epoch ends.
func (ix *Indexer) AdvanceSPtr() {
	if !ix.remapping {
		return
	}
	ix.sptr++
	if uint64(ix.sptr) >= ix.sets {
		ix.keys = ix.nextKeys
		ix.remapping = false
		ix.sptr = 0
		ix.Remaps++
	}
}

// CurIndex returns the set l maps to under the current key only (ignoring
// relocation state) — the placement rule for lines not yet relocated.
func (ix *Indexer) CurIndex(l arch.LineAddr) int {
	return int(ix.encryptWith(ix.keys, l) % ix.sets)
}

// NextIndex returns the set l maps to under the next key (valid only while
// remapping).
func (ix *Indexer) NextIndex(l arch.LineAddr) int {
	return int(ix.encryptWith(ix.nextKeys, l) % ix.sets)
}

func (ix *Indexer) encryptWith(keys [rounds]uint64, l arch.LineAddr) uint64 {
	v := uint64(l) & ((1 << arch.LineAddrBits) - 1)
	v ^= (uint64(l) >> arch.LineAddrBits)
	v &= (1 << arch.LineAddrBits) - 1
	left, right := v>>halfBits, v&halfMask
	for i := 0; i < rounds; i++ {
		left, right = right, left^round(right, keys[i])
	}
	return left<<halfBits | right
}
