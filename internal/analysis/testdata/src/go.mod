module example.com/lint

go 1.22
