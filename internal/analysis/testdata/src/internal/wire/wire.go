// Package wire is the wireenc analyzer's golden input: structs reaching
// JSON serialization sites must encode canonically.
package wire

import "encoding/json"

// Row is journaled directly (see Append) — every field is wire-reachable.
type Row struct {
	Key string `json:"key"`
	// Interface content: the dynamic type drifts across a round-trip.
	Args map[string]any `json:"args,omitempty"` // want `interface-typed content`
	// Struct-keyed maps have no canonical JSON key order.
	ByCell map[Cell]uint64 `json:"by_cell,omitempty"` // want `no canonical JSON key order`
	// Excluded from serialization: never checked.
	Scratch map[Cell]any `json:"-"`
	// Reached transitively through a named module struct.
	Inner Inner `json:"inner"`
	// String-keyed basics are fine: encoding/json sorts the keys.
	Summary map[string]float64 `json:"summary,omitempty"`
	// A custom marshaller is a trusted boundary; the walk stops there.
	Sorted SortedSet `json:"sorted"`
	// A custom marshaller whose own body leaks map iteration order: the
	// boundary is audited, not blindly trusted.
	Leaky LeakySet `json:"leaky"`
}

// Cell is a composite key type with no text encoding.
type Cell struct {
	Workload string
	Seed     uint64
}

// Inner rides inside Row, so its fields are wire-reachable too.
type Inner struct {
	Vals []any `json:"vals"` // want `interface-typed content`
}

// SortedSet encodes itself canonically; wireenc trusts it.
type SortedSet struct {
	members map[string]bool
}

// MarshalJSON emits a deterministic representation (the member count is
// enough for the golden input).
func (s SortedSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(len(s.members))
}

// LeakySet claims a custom encoding but writes its members in map
// iteration order, so the same logical value produces different bytes
// across runs.
type LeakySet struct {
	members map[string]bool
}

// MarshalJSON ranges over the member map directly — the wire bytes
// depend on randomized iteration order.
func (s LeakySet) MarshalJSON() ([]byte, error) {
	var parts []string
	for m := range s.members { // want `range over map s.members` // want `custom MarshalJSON of LeakySet ranges over map s.members`
		parts = append(parts, m)
	}
	return json.Marshal(parts)
}

// Append is the serialization seed that makes Row a wire struct.
func Append(r Row) ([]byte, error) {
	return json.Marshal(r)
}

// Load seeds through the decode side as well: a journal reader commits
// to the same schema its writer did.
func Load(data []byte, r *Row) error {
	return json.Unmarshal(data, r)
}
