package analysis

import (
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyTree duplicates the golden module into a temp dir so -fix can be
// exercised destructively.
func copyTree(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
	return dst
}

// applyAll runs the suite and writes every produced fix, returning how
// many files changed.
func applyAll(t *testing.T, dir string) int {
	t.Helper()
	mod, err := Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	fixes, err := ApplyFixes(mod, NewRunner(mod).Run(Analyzers(), nil))
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	for _, ff := range fixes {
		if formatted, err := format.Source(ff.Fixed); err != nil || string(formatted) != string(ff.Fixed) {
			t.Errorf("%s: -fix output is not gofmt-clean (err=%v)", ff.Name, err)
		}
		if err := os.WriteFile(ff.Name, ff.Fixed, 0o644); err != nil {
			t.Fatalf("writing fix: %v", err)
		}
	}
	return len(fixes)
}

// TestFixIdempotent applies every fix the golden module produces, checks
// the rewrites took the expected shape, and requires a second pass to be
// a byte-for-byte no-op: -fix twice == -fix once.
func TestFixIdempotent(t *testing.T) {
	dir := copyTree(t, filepath.Join("testdata", "src"))

	if n := applyAll(t, dir); n == 0 {
		t.Fatal("first -fix pass changed no files; want at least det.go and staledir.go rewritten")
	}

	det, err := os.ReadFile(filepath.Join(dir, "internal", "det", "det.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(det), "slices.Sort(") {
		t.Error("det.go: map-range fix did not produce a slices.Sort collect-then-sort rewrite")
	}
	stale, err := os.ReadFile(filepath.Join(dir, "internal", "staledir", "staledir.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(stale), "//simlint:") {
		t.Error("staledir.go: stale directives were not removed by -fix")
	}

	if n := applyAll(t, dir); n != 0 {
		t.Errorf("second -fix pass changed %d file(s); -fix must be idempotent", n)
	}
}

// TestRepoFixClean loads the real module and requires that -fix has
// nothing to do: the tree must stay byte-identical under simlint -fix.
func TestRepoFixClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load repo module: %v", err)
	}
	fixes, err := ApplyFixes(mod, NewRunner(mod).Run(Analyzers(), nil))
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	for _, ff := range fixes {
		t.Errorf("repo not fix-clean: simlint -fix would rewrite %s (%s)", ff.Name, strings.Join(ff.Messages, "; "))
	}
}

// TestUnifiedDiff pins the -diff preview rendering.
func TestUnifiedDiff(t *testing.T) {
	if d := unifiedDiff("a", "b", []byte("x\n"), []byte("x\n")); d != "" {
		t.Errorf("diff of equal inputs = %q, want empty", d)
	}
	d := unifiedDiff("a.go", "b.go", []byte("one\ntwo\nthree\n"), []byte("one\nTWO\nthree\n"))
	for _, wantLine := range []string{"--- a.go", "+++ b.go", "-two", "+TWO", " one", " three"} {
		if !strings.Contains(d, wantLine+"\n") {
			t.Errorf("diff missing line %q:\n%s", wantLine, d)
		}
	}
}
