// Package repro's benchmark suite regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's experiment index) and reports the
// headline number of each as a benchmark metric. Run with:
//
//	go test -bench=. -benchmem
//
// One benchmark iteration regenerates the whole experiment at a reduced
// instruction window (the full-size run is `go run ./cmd/paperbench`).
package repro

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/ceaser"
	"repro/internal/experiments"
	"repro/internal/multicore"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/sim"
)

// benchOpts returns reduced experiment sizing so a full -bench=. pass stays
// in the minutes range.
func benchOpts() experiments.Options {
	return experiments.Options{Instructions: 30_000, SpectreIterations: 6, MTSteps: 8_000}
}

func newRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	r := experiments.NewRunner(benchOpts())
	r.Quiet = true
	return r
}

func BenchmarkTable1_RandomizationImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		rep := r.Table1()
		if len(rep.Tables) == 0 {
			b.Fatal("no table")
		}
	}
}

func BenchmarkTable2_CoherenceMitigations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		rep := r.Table2()
		_ = rep
	}
}

func BenchmarkTable3_WorkloadCharacteristics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		_ = r.Table3()
	}
}

func BenchmarkTable5_CleanupStatistics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		_ = r.Table5()
	}
}

func BenchmarkTable6_SlowdownComparison(b *testing.B) {
	var cs float64
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		rep := r.Table6()
		// Row 2 is CleanupSpec; column 1 the measured slowdown.
		var xs []float64
		for _, wl := range sim.Workloads() {
			base, _ := sim.RunWorkload(wl, sim.Config{Policy: sim.NonSecure, Instructions: benchOpts().Instructions})
			res, _ := sim.RunWorkload(wl, sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
			xs = append(xs, float64(res.Cycles)/float64(base.Cycles))
		}
		cs = stats.Slowdown(stats.Geomean(xs))
		_ = rep
	}
	b.ReportMetric(cs, "cleanupspec-slowdown-%")
}

func BenchmarkFigure4_InvisiSpecOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		_ = r.Figure4()
	}
}

func BenchmarkFigure9_LoadStateBreakdown(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		sum := 0.0
		ps := workload.MTProfiles()
		for _, p := range ps {
			st := multicore.New(p, 4).Run(benchOpts().MTSteps)
			sum += st.UnsafeFrac()
		}
		avg = sum / float64(len(ps)) * 100
	}
	b.ReportMetric(avg, "unsafe-loads-%")
}

func BenchmarkFigure11_SpectrePoC(b *testing.B) {
	leakedNS, leakedCS := 0, 0
	for i := 0; i < b.N; i++ {
		ns, err := sim.RunSpectre(sim.NonSecure, benchOpts().SpectreIterations)
		if err != nil {
			b.Fatal(err)
		}
		cs, err := sim.RunSpectre(sim.CleanupSpec, benchOpts().SpectreIterations)
		if err != nil {
			b.Fatal(err)
		}
		if ns.Leaked {
			leakedNS++
		}
		if cs.Leaked {
			leakedCS++
		}
	}
	b.ReportMetric(float64(leakedNS)/float64(b.N), "nonsecure-leak-rate")
	b.ReportMetric(float64(leakedCS)/float64(b.N), "cleanupspec-leak-rate")
}

func BenchmarkFigure12_CleanupSpecSlowdown(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		var xs []float64
		for _, wl := range sim.Workloads() {
			base, err := sim.RunWorkload(wl, sim.Config{Policy: sim.NonSecure, Instructions: benchOpts().Instructions})
			if err != nil {
				b.Fatal(err)
			}
			res, err := sim.RunWorkload(wl, sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
			if err != nil {
				b.Fatal(err)
			}
			xs = append(xs, float64(res.Cycles)/float64(base.Cycles))
		}
		avg = stats.Slowdown(stats.Geomean(xs))
	}
	b.ReportMetric(avg, "slowdown-%")
}

func BenchmarkFigure13_SquashFrequency(b *testing.B) {
	var pki float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunWorkload("astar", sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		pki = res.SquashPKI
	}
	b.ReportMetric(pki, "astar-squash-pki")
}

func BenchmarkFigure14_StallBreakdown(b *testing.B) {
	var wait, ops float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunWorkload("sphinx3", sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		wait, ops = res.WaitPerSquash, res.CleanupPerSquash
	}
	b.ReportMetric(wait, "wait-cycles/squash")
	b.ReportMetric(ops, "cleanup-cycles/squash")
}

func BenchmarkFigure15_InflightVsExecuted(b *testing.B) {
	var inflight float64
	for i := 0; i < b.N; i++ {
		res, err := sim.RunWorkload("gobmk", sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		inflight = res.InflightFrac * 100
	}
	b.ReportMetric(inflight, "inflight-%")
}

func BenchmarkStorageOverhead(b *testing.B) {
	var bytes int
	for i := 0; i < b.N; i++ {
		bytes = sim.StorageOverheadBytes()
	}
	b.ReportMetric(float64(bytes), "bytes/core")
}

// --- ablation benches (DESIGN.md section 6) ---

// BenchmarkAblation_ConstantTimeCleanup measures the cost of padding every
// cleanup stall to a constant 50 cycles (the Section 4b hardening).
func BenchmarkAblation_ConstantTimeCleanup(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		base, err := sim.RunWorkload("astar", sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		padded, err := sim.RunWorkload("astar", sim.Config{
			Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions, ConstantTimeCleanup: 50,
		})
		if err != nil {
			b.Fatal(err)
		}
		slow = (float64(padded.Cycles)/float64(base.Cycles) - 1) * 100
	}
	b.ReportMetric(slow, "extra-slowdown-%")
}

// BenchmarkAblation_DelayAll measures the delay-everything upper bound
// against CleanupSpec's undo approach.
func BenchmarkAblation_DelayAll(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		cs, err := sim.RunWorkload("soplex", sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		dl, err := sim.RunWorkload("soplex", sim.Config{Policy: sim.DelayAll, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		delta = float64(dl.Cycles)/float64(cs.Cycles) - 1
	}
	b.ReportMetric(delta*100, "delay-vs-cleanup-%")
}

// --- substrate microbenchmarks ---

func BenchmarkCacheLookup(b *testing.B) {
	c := cache.New(cache.Config{Name: "b", SizeBytes: 64 << 10, Ways: 8, Repl: cache.ReplLRU, Seed: 1})
	for i := 0; i < 1024; i++ {
		c.Install(arch.LineAddr(i), arch.Exclusive, 0, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(arch.LineAddr(i & 1023))
	}
}

func BenchmarkCEASEREncrypt(b *testing.B) {
	ix := ceaser.New(2048, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SetIndex(arch.LineAddr(i))
	}
}

func BenchmarkPredictor(b *testing.B) {
	p := branch.New(branch.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := p.Predict(arch.Addr(i & 255))
		p.Update(ps, i&3 != 0)
	}
}

// BenchmarkSimulatorThroughput reports simulated instructions per second of
// wall time for the full pipeline under CleanupSpec.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const n = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunWorkload("perl", sim.Config{Policy: sim.CleanupSpec, Instructions: n, NoWarmup: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "sim-instructions/s")
}

// BenchmarkAblation_NoMoPartition measures way-partitioning the L1 (4 of 8
// ways per SMT thread, Section 3.6): the paper reports < 2% slowdown.
func BenchmarkAblation_NoMoPartition(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		base, err := sim.RunWorkload("sphinx3", sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		part, err := sim.RunWorkload("sphinx3", sim.Config{
			Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions, L1PartitionWays: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		slow = (float64(part.Cycles)/float64(base.Cycles) - 1) * 100
	}
	b.ReportMetric(slow, "nomo-slowdown-%")
}

// BenchmarkAblation_CEASERRemap measures CEASER's gradual remap running
// continuously under CleanupSpec (functional relocation; CEASER reports
// ~1% timing cost, which this model does not charge).
func BenchmarkAblation_CEASERRemap(b *testing.B) {
	var slow float64
	for i := 0; i < b.N; i++ {
		base, err := sim.RunWorkload("soplex", sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		remap, err := sim.RunWorkload("soplex", sim.Config{
			Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions, L2RemapEvery: 100,
		})
		if err != nil {
			b.Fatal(err)
		}
		slow = (float64(remap.Cycles)/float64(base.Cycles) - 1) * 100
	}
	b.ReportMetric(slow, "remap-slowdown-%")
}

// BenchmarkAblation_DelayOnMiss measures the Conditional Speculation filter
// against CleanupSpec (the paper claims roughly two-thirds of CS/CSF's
// slowdown, Section 7.3.2).
func BenchmarkAblation_DelayOnMiss(b *testing.B) {
	var cs, dm float64
	for i := 0; i < b.N; i++ {
		base, err := sim.RunWorkload("sphinx3", sim.Config{Policy: sim.NonSecure, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		c, err := sim.RunWorkload("sphinx3", sim.Config{Policy: sim.CleanupSpec, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		d, err := sim.RunWorkload("sphinx3", sim.Config{Policy: sim.DelayOnMiss, Instructions: benchOpts().Instructions})
		if err != nil {
			b.Fatal(err)
		}
		cs = (float64(c.Cycles)/float64(base.Cycles) - 1) * 100
		dm = (float64(d.Cycles)/float64(base.Cycles) - 1) * 100
	}
	b.ReportMetric(cs, "cleanupspec-%")
	b.ReportMetric(dm, "delay-on-miss-%")
}
