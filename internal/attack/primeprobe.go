package attack

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/ceaser"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/xrand"
)

// PrimeProbeResult describes one Prime+Probe run against the L1.
type PrimeProbeResult struct {
	Policy string
	// WayLatency[j] is the probe latency of the j-th primed line.
	WayLatency []float64
	// EvictionObserved reports that some primed line came back slow —
	// the transient eviction leak that restoration (Section 3.4)
	// removes and naive invalidation (Section 2.4.1) leaves behind.
	EvictionObserved bool
}

// primeLines returns nWays addresses that map to the same L1 set as target
// for the paper's 64KB/8-way L1 (128 sets).
func primeLines(target arch.Addr, l1Sets, nWays int) []arch.Addr {
	set := int(uint64(target.Line()) % uint64(l1Sets))
	base := arch.Addr(0x40_0000)
	out := make([]arch.Addr, 0, nWays)
	for j := 0; j < nWays; j++ {
		lineNo := uint64(set) + uint64(j+64)*uint64(l1Sets)
		out = append(out, base+arch.Addr(lineNo*arch.LineBytes))
	}
	return out
}

// buildPrimeProbeProgram assembles the Prime+Probe attack: the victim is
// the same Spectre-V1 gadget, but the attacker primes the L1 set that
// array2[secret*512] maps to and then times its own primed lines. A slow
// primed line reveals that the transient install evicted it.
func buildPrimeProbeProgram(secret int, lines []arch.Addr) *isa.Program {
	b := isa.NewBuilder("prime-probe-l1")
	b.InitData(addrSize, 16)
	for i := int64(0); i < 16; i++ {
		b.InitData(addrArray1+arch.Addr(i*8), uint64(i))
	}
	b.InitData(addrSecret, uint64(secret))

	// Keep the secret's line resident (victim data in active use). The
	// transient target array2[secret*512] itself stays cold: its fill is
	// in flight when the squash arrives, landing afterwards on the
	// non-secure baseline (and being dropped by CleanupSpec).
	b.Li(3, int64(addrSecret))
	b.Load(4, 3, 0)

	// Train the victim.
	b.Li(27, 5)
	b.Label("train")
	b.Add(1, 27, 0)
	b.Call("victim")
	b.AddI(27, 27, -1)
	b.Br(isa.CondNE, 27, 0, "train")

	// Prime: load each attacker line (this also evicts the transient
	// target's L1 copy, leaving it L2-resident).
	for i, a := range lines {
		b.Li(2, int64(a))
		b.Load(isa.Reg(4), 2, 0)
		_ = i
	}
	b.Fence()

	// Flush the bounds, attack.
	b.Li(3, int64(addrSize))
	b.CLFlush(3, 0)
	b.Fence()
	b.Li(1, MaliciousX)
	b.Call("victim")

	// Let a squash-surviving fill land before probing.
	b.Li(3, int64(addrSize+0x800))
	b.Load(4, 3, 0)
	b.Fence()

	// Probe each primed line; store latency to res[j]. The fence keeps
	// the timed load from issuing before the first timer read (lfence).
	for j, a := range lines {
		b.Li(6, int64(a))
		b.Fence()
		b.RdCycle(8)
		b.Load(9, 6, 0)
		b.RdCycle(11)
		b.Alu(isa.AluSub, 12, 11, 8)
		b.Li(14, int64(addrRes)+int64(j*8))
		b.Store(14, 0, 12)
	}
	b.Halt()

	// victim(x): as in the Spectre PoC.
	b.Label("victim")
	b.Li(21, int64(addrSize))
	b.Load(22, 21, 0)
	b.Br(isa.CondGEU, 1, 22, "vout")
	b.AluI(isa.AluShl, 23, 1, 3)
	b.Li(24, int64(addrArray1))
	b.Add(23, 23, 24)
	b.Load(23, 23, 0)
	b.AluI(isa.AluShl, 23, 23, 9)
	b.Li(24, int64(addrArray2))
	b.Add(23, 23, 24)
	b.Load(23, 23, 0)
	b.Label("vout")
	b.Ret()
	return b.Build()
}

// RunPrimeProbeL1 runs the L1 Prime+Probe attack under a policy.
func RunPrimeProbeL1(pol cpu.Policy, hcfg memsys.Config, secret int) PrimeProbeResult {
	l1Sets := hcfg.L1.SizeBytes / arch.LineBytes / hcfg.L1.Ways
	target := addrArray2 + arch.Addr(secret*ProbeStride)
	lines := primeLines(target, l1Sets, hcfg.L1.Ways)
	prog := buildPrimeProbeProgram(secret, lines)

	mcfg := cpu.DefaultConfig()
	mcfg.MaxCycles = 20_000_000
	h := memsys.New(hcfg)
	m := cpu.New(mcfg, prog, h, pol)
	m.Run(0)
	if !m.Halted() {
		//simlint:allow errdiscipline -- PoC harness invariant: a non-halting attack program is a harness bug, not a recoverable campaign cell
		panic("attack: prime+probe did not complete")
	}

	res := PrimeProbeResult{}
	if pol != nil {
		res.Policy = pol.Name()
	} else {
		res.Policy = "nonsecure"
	}
	var max float64
	for j := range lines {
		lat := float64(m.Memory().Read64(addrRes + arch.Addr(j*8)))
		res.WayLatency = append(res.WayLatency, lat)
		if lat > max {
			max = lat
		}
	}
	// If the transient install landed, the set holds 9 lines in 8 ways
	// and the probe sweep thrashes: every probe misses to the L2 (~9+
	// cycles against ~4-5 for an undisturbed L1 hit). Any probe above
	// the L1-hit ceiling therefore reveals the transient eviction.
	const l1HitCeiling = 7
	res.EvictionObserved = max > l1HitCeiling
	return res
}

// L2PrimeProbeObservation reports whether an attacker who primed the
// modulo-predicted L2 set of a victim line observes the victim's install
// evicting one of its primed lines. With CEASER indexing the install lands
// in an attacker-unpredictable set, breaking the attack (Section 3.2).
//
// This is a cache-level experiment (no core model needed): the attacker
// fills the set it *believes* the victim address maps to, the victim
// installs, and the attacker re-probes its lines.
func L2PrimeProbeObservation(randomized bool, seed uint64) (observed bool) {
	cfg := cache.Config{
		Name: "L2", SizeBytes: 1 << 20, Ways: 8, Repl: cache.ReplLRU, Seed: seed,
	}
	sets := cfg.SizeBytes / arch.LineBytes / cfg.Ways
	if randomized {
		cfg.Indexer = ceaser.New(sets, seed)
	}
	l2 := cache.New(cfg)
	rng := xrand.New(seed ^ 0xA77AC)

	victim := arch.LineAddr(0xBEEF000)
	predictedSet := int(uint64(victim) % uint64(sets)) // attacker's modulo model

	// Prime: fill the predicted set with attacker lines (search attacker
	// addresses that map there under the *actual* indexing only if the
	// attacker could know it — it can't, so prime by the modulo model).
	var primed []arch.LineAddr
	for len(primed) < cfg.Ways {
		cand := arch.LineAddr(uint64(predictedSet) + uint64(len(primed)+1000+rng.Intn(1<<16))*uint64(sets))
		if int(uint64(cand)%uint64(sets)) == predictedSet {
			primed = append(primed, cand)
		}
	}
	for _, p := range primed {
		l2.Install(p, arch.Exclusive, 0, 0)
	}
	// Victim install.
	l2.Install(victim, arch.Exclusive, 0, 1)
	// Probe: did any primed line get evicted?
	for _, p := range primed {
		if _, hit := l2.Probe(p); !hit {
			return true
		}
	}
	return false
}
