// Package met is the metricscomplete analyzer's golden input.
package met

import "example.com/lint/internal/metrics"

// Stats is the stat carrier checked against AttachMetrics below.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64 // want `exported counter Evictions is never bound`
	//simlint:allow metricscomplete -- deliberately unregistered in the golden input
	Skipped uint64
	note    uint64 // unexported: not required to be bound
}

// Core owns a Stats carrier.
type Core struct {
	Stats Stats
}

// AttachMetrics binds only part of Stats; the analyzer reports the rest.
func (c *Core) AttachMetrics(reg *metrics.Registry) {
	s := &c.Stats
	reg.BindCounter("core.hits", &s.Hits)
	reg.CounterFunc("core.misses", func() uint64 { return s.Misses })
}

// Queue has no Stats field, so its own exported counters are the carrier
// (the MSHR style).
type Queue struct {
	depth  int
	Allocs uint64
	Drops  uint64 // want `exported counter Drops is never bound`
}

// AttachMetrics binds only Allocs.
func (q *Queue) AttachMetrics(reg *metrics.Registry) {
	reg.BindCounter("q.allocs", &q.Allocs)
	reg.GaugeFunc("q.depth", func() float64 { return float64(q.depth) })
}

// SinkStats mirrors the internal/obs carrier idiom: the carrier is an
// unexported field of a named *Stats type, read through closures.
type SinkStats struct {
	Started uint64
	Ended   uint64
	Dropped uint64 // want `exported counter Dropped is never bound`
}

// Sink carries its stats in an unexported field; the exported numeric
// MaxSpans knob must NOT be treated as a counter once that carrier is
// recognized.
type Sink struct {
	MaxSpans int
	stats    SinkStats
}

// AttachMetrics binds Started and Ended but forgets Dropped.
func (s *Sink) AttachMetrics(reg *metrics.Registry) {
	st := &s.stats
	reg.CounterFunc("sink.started", func() uint64 { return st.Started })
	reg.CounterFunc("sink.ended", func() uint64 { return st.Ended })
}
