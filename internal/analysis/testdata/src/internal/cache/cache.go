// Package cache is the undocomplete analyzer's golden input: mutations on
// the speculative path must pair with restore writes reachable from a
// cleanup/squash function.
package cache

// Line is architectural state in the obligation scope.
type Line struct {
	Tag      uint64
	SpecMark bool
	LRU      uint8
}

// InstallSpec is a speculative root by name. Tag and SpecMark are
// restored by CleanupSquash below; LRU is not, and leaks on a squash.
func InstallSpec(l *Line, tag uint64) {
	l.Tag = tag
	l.SpecMark = true
	l.LRU = 0 // want `speculative-path mutation of cache.Line.LRU has no restore/undo counterpart`
}

// CleanupSquash restores Tag and SpecMark but forgets LRU.
func CleanupSquash(l *Line, old uint64) {
	l.Tag = old
	l.SpecMark = false
}

// Seq is a monotone allocation sequence touched on the speculative path.
type Seq struct{ N uint64 }

// SpecBumpSeq carries a justified exception: the sequence is never
// rewound, so the obligation is waived by the directive.
func SpecBumpSeq(s *Seq) {
	//simlint:allow undocomplete -- monotone allocation sequence; IDs are never reused, so a squash must not rewind it
	s.N++
}

// LineStats is excluded from obligations by its Stats suffix: counters
// are monitoring, not architectural state.
type LineStats struct {
	Installs uint64
}

// SpecCountInstall mutates only the stats carrier: no obligation.
func SpecCountInstall(st *LineStats) {
	st.Installs++
}
