// Command attack-lab demonstrates the cache side channels the paper closes,
// beyond the Spectre PoC (see cmd/spectre-poc):
//
//	attack-lab -demo primeprobe   # L1 Prime+Probe vs CleanupSpec's restore
//	attack-lab -demo l2random     # L2 set-prediction vs CEASER randomization
//	attack-lab -demo replstate    # replacement-state channel vs random repl
//
// With -json the lab emits one machine-readable verdict per (demo, policy)
// pair instead of prose, so harnesses can assert on leak outcomes:
//
//	attack-lab -json | jq '.[] | select(.leak)'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/attack"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/memsys"
)

// Verdict is one machine-readable outcome: did the named configuration
// leak through this demo's channel?
type Verdict struct {
	Demo   string `json:"demo"`
	Policy string `json:"policy"`
	Leak   bool   `json:"leak"`
	Detail string `json:"detail"`
}

func main() {
	demo := flag.String("demo", "all", "primeprobe, l2random, replstate, or all")
	asJSON := flag.Bool("json", false, "emit machine-readable per-policy verdicts")
	flag.Parse()

	text := !*asJSON
	var verdicts []Verdict
	switch *demo {
	case "primeprobe":
		verdicts = primeProbe(text)
	case "l2random":
		verdicts = l2Random(text)
	case "replstate":
		verdicts = replState(text)
	case "all":
		verdicts = append(verdicts, primeProbe(text)...)
		verdicts = append(verdicts, l2Random(text)...)
		verdicts = append(verdicts, replState(text)...)
	default:
		fmt.Fprintln(os.Stderr, "attack-lab: unknown demo", *demo)
		os.Exit(2)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(verdicts); err != nil {
			fmt.Fprintln(os.Stderr, "attack-lab:", err)
			os.Exit(1)
		}
	}
}

func primeProbe(text bool) []Verdict {
	if text {
		fmt.Println("=== L1 Prime+Probe (Section 2.4.1) ===")
		fmt.Println("The attacker primes the L1 set of array2[secret*512], triggers the")
		fmt.Println("transient access, and re-times its own lines; a disturbed set reveals")
		fmt.Println("the transient install's eviction even after invalidation.")
	}
	ns := attack.RunPrimeProbeL1(cpu.NonSecure{}, memsys.DefaultConfig(1), 22)
	hcfg := core.HierarchyConfig(memsys.DefaultConfig(1))
	hcfg.L1.Repl = cache.ReplLRU
	cs := attack.RunPrimeProbeL1(core.New(), hcfg, 22)
	if text {
		show := func(name string, r attack.PrimeProbeResult) {
			fmt.Printf("  %-12s way latencies %v -> eviction observed: %v\n",
				name, r.WayLatency, r.EvictionObserved)
		}
		show("nonsecure", ns)
		show("cleanupspec", cs)
		fmt.Println()
	}
	detail := func(r attack.PrimeProbeResult) string {
		return fmt.Sprintf("way latencies %v", r.WayLatency)
	}
	return []Verdict{
		{Demo: "primeprobe", Policy: "nonsecure", Leak: ns.EvictionObserved, Detail: detail(ns)},
		{Demo: "primeprobe", Policy: "cleanupspec", Leak: cs.EvictionObserved, Detail: detail(cs)},
	}
}

func l2Random(text bool) []Verdict {
	if text {
		fmt.Println("=== L2 Prime+Probe vs CEASER randomization (Section 3.2) ===")
	}
	count := func(randomized bool) int {
		n := 0
		for seed := uint64(0); seed < 20; seed++ {
			if attack.L2PrimeProbeObservation(randomized, seed) {
				n++
			}
		}
		return n
	}
	mod, ceaser := count(false), count(true)
	if text {
		fmt.Printf("  modulo-indexed L2:  attacker's set prediction works in %d/20 runs\n", mod)
		fmt.Printf("  CEASER-indexed L2:  attacker's set prediction works in %d/20 runs\n", ceaser)
		fmt.Println()
	}
	// The set prediction is a usable channel when it works reliably; under
	// CEASER it degrades to a (sets·ways)⁻¹ guess that occasionally lands.
	return []Verdict{
		{Demo: "l2random", Policy: "modulo-indexed", Leak: mod > 10,
			Detail: fmt.Sprintf("set prediction works in %d/20 runs", mod)},
		{Demo: "l2random", Policy: "ceaser-indexed", Leak: ceaser > 10,
			Detail: fmt.Sprintf("set prediction works in %d/20 runs", ceaser)},
	}
}

func replState(text bool) []Verdict {
	if text {
		fmt.Println("=== Replacement-state channel (Sections 2.1 / 3.2) ===")
		fmt.Println("A transient HIT changes no tags, but under LRU it decides which line a")
		fmt.Println("later install evicts. Random replacement removes the state entirely.")
	}
	lruHit := attack.ReplacementStateChannel(cache.ReplLRU, true, 1)
	lruNoHit := attack.ReplacementStateChannel(cache.ReplLRU, false, 1)
	same := true
	for seed := uint64(0); seed < 16; seed++ {
		if attack.ReplacementStateChannel(cache.ReplRandom, true, seed) !=
			attack.ReplacementStateChannel(cache.ReplRandom, false, seed) {
			same = false
		}
	}
	if text {
		fmt.Printf("  LRU:    A survives with transient hit: %v; without: %v  (distinguishable -> leak)\n",
			lruHit, lruNoHit)
		fmt.Printf("  Random: outcome independent of the transient hit across seeds: %v\n", same)
		fmt.Println()
	}
	return []Verdict{
		{Demo: "replstate", Policy: "lru", Leak: lruHit != lruNoHit,
			Detail: fmt.Sprintf("A survives with transient hit: %v, without: %v", lruHit, lruNoHit)},
		{Demo: "replstate", Policy: "random", Leak: !same,
			Detail: fmt.Sprintf("outcome independent of transient hit across 16 seeds: %v", same)},
	}
}
