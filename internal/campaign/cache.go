package campaign

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/sim"
)

// Cache is the content-addressed on-disk result store. Each entry is one
// JSON file named <key>.json under a two-hex-character shard directory
// (<dir>/ab/abcdef....json), so even large campaigns keep directory sizes
// reasonable. Writes go through a temp file + rename, so a cache is never
// left with a torn entry after a crash or an interrupt.
type Cache struct {
	dir string
}

// Entry is the on-disk record: the job's identity metadata plus its full
// measurement, self-describing enough for `campaign export` to rebuild a
// report without re-expanding the original grid.
type Entry struct {
	Key      string     `json:"key"`
	Schema   int        `json:"schema"`
	Workload string     `json:"workload"`
	Policy   sim.Policy `json:"policy"`
	Variant  string     `json:"variant,omitempty"`
	Seed     uint64     `json:"seed"`
	Result   sim.Result `json:"result"`
	// Summary is the cell's headline derived metrics, duplicated out of
	// Result so `jq .summary` and the simscope inspector can read a cell
	// without knowing the Result schema. The full counter snapshot lives
	// in Result.Metrics.
	Summary map[string]float64 `json:"summary,omitempty"`
}

// Summarize extracts the headline per-cell metrics stored in Entry.Summary.
func Summarize(res sim.Result) map[string]float64 {
	return map[string]float64{
		"ipc":            res.IPC,
		"cycles":         float64(res.Cycles),
		"squash_pki":     res.SquashPKI,
		"l1_miss_rate":   res.L1MissRate,
		"mispredict":     res.MispredictRate,
		"traffic_total":  float64(res.Traffic.Total()),
		"wait_per_sq":    res.WaitPerSquash,
		"cleanup_per_sq": res.CleanupPerSquash,
	}
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("campaign: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get returns the cached entry for key, with ok=false on a miss. A
// corrupt entry (torn write from an old crash, hand-edited file) counts as
// a miss so the job is simply re-simulated and rewritten.
func (c *Cache) Get(key string) (Entry, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return Entry{}, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.Schema != SchemaVersion {
		return Entry{}, false
	}
	return e, true
}

// Put stores the result of job under its key.
func (c *Cache) Put(job Job, res sim.Result) error {
	key := job.Key()
	rc := job.Config.Resolved()
	e := Entry{
		Key:      key,
		Schema:   SchemaVersion,
		Workload: job.Workload,
		Policy:   rc.Policy,
		Variant:  job.Variant,
		Seed:     rc.Seed,
		Result:   res,
		Summary:  Summarize(res),
	}
	data, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: encoding cache entry: %w", err)
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("campaign: cache shard: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	return nil
}

// Entries returns every cached entry, sorted by (workload, policy,
// variant, seed) for deterministic export output.
func (c *Cache) Entries() ([]Entry, error) {
	var entries []Entry
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		if filepath.Dir(path) == c.dir {
			return nil // manifest.json and friends live at the root
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var e Entry
		if err := json.Unmarshal(data, &e); err != nil || e.Schema != SchemaVersion {
			return nil // skip torn/foreign files
		}
		entries = append(entries, e)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: scanning cache: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.Seed < b.Seed
	})
	return entries, nil
}

// Len returns the number of cached entries.
func (c *Cache) Len() (int, error) {
	entries, err := c.Entries()
	if err != nil {
		return 0, err
	}
	return len(entries), nil
}
