package isa

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		c    Cond
		a, b uint64
		want bool
	}{
		{CondEQ, 5, 5, true},
		{CondEQ, 5, 6, false},
		{CondNE, 5, 6, true},
		{CondLTU, 1, 2, true},
		{CondLTU, 2, 1, false},
		{CondGEU, 2, 2, true},
		{CondLT, ^uint64(0) /* -1 */, 0, true}, // signed
		{CondLTU, ^uint64(0), 0, false},        // unsigned
		{CondGE, 0, ^uint64(0) /* -1 */, true}, // signed
	}
	for _, c := range cases {
		if got := c.c.Eval(c.a, c.b); got != c.want {
			t.Errorf("cond %d (%d,%d) = %v, want %v", c.c, c.a, c.b, got, c.want)
		}
	}
}

func TestALUEval(t *testing.T) {
	mk := func(k ALUKind) Inst { return Inst{Op: OpALU, Alu: k} }
	if mk(AluAdd).EvalALU(2, 3) != 5 {
		t.Error("add")
	}
	if mk(AluSub).EvalALU(2, 3) != ^uint64(0) {
		t.Error("sub wrap")
	}
	if mk(AluAnd).EvalALU(0b1100, 0b1010) != 0b1000 {
		t.Error("and")
	}
	if mk(AluOr).EvalALU(0b1100, 0b1010) != 0b1110 {
		t.Error("or")
	}
	if mk(AluXor).EvalALU(0b1100, 0b1010) != 0b0110 {
		t.Error("xor")
	}
	if mk(AluShl).EvalALU(1, 4) != 16 {
		t.Error("shl")
	}
	if mk(AluShr).EvalALU(16, 4) != 1 {
		t.Error("shr")
	}
	if mk(AluMul).EvalALU(6, 7) != 42 {
		t.Error("mul")
	}
	imm := Inst{Op: OpALU, Alu: AluAdd, Imm: 10, UseImm: true}
	if imm.EvalALU(5, 999) != 15 {
		t.Error("imm operand ignored")
	}
	if mk(AluMix).EvalALU(1, 2) == 3 {
		t.Error("mix must scramble")
	}
	if mk(AluMix).EvalALU(1, 2) != mk(AluMix).EvalALU(2, 1) {
		t.Error("mix must be deterministic in a+b")
	}
}

func TestALULatency(t *testing.T) {
	if AluAdd.Latency() != 1 || AluMul.Latency() != 3 || AluMix.Latency() != 3 {
		t.Error("latencies wrong")
	}
}

func TestOpPredicates(t *testing.T) {
	if !OpLoad.IsMem() || !OpStore.IsMem() || !OpCLFlush.IsMem() || OpALU.IsMem() {
		t.Error("IsMem wrong")
	}
	if !OpBranch.IsCtrl() || !OpRet.IsCtrl() || OpLoad.IsCtrl() {
		t.Error("IsCtrl wrong")
	}
	if OpHalt.String() != "halt" || Op(200).String() == "" {
		t.Error("String wrong")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read64(0x1000) != 0 {
		t.Fatal("unwritten memory must read zero")
	}
	m.Write64(0x1000, 42)
	if m.Read64(0x1000) != 42 {
		t.Fatal("readback failed")
	}
	// Different pages.
	m.Write64(0x100000, 7)
	if m.Read64(0x100000) != 7 || m.Read64(0x1000) != 42 {
		t.Fatal("page isolation failed")
	}
}

func TestMemoryProperty(t *testing.T) {
	m := NewMemory()
	f := func(a uint32, v uint64) bool {
		addr := arch.Addr(a) &^ 7
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFetchPastEndIsHalt(t *testing.T) {
	p := &Program{Code: []Inst{{Op: OpNop}}}
	if p.Fetch(0).Op != OpNop {
		t.Fatal("in-range fetch wrong")
	}
	if p.Fetch(1).Op != OpHalt || p.Fetch(1000).Op != OpHalt {
		t.Fatal("out-of-range fetch must be Halt")
	}
}

func TestBuilderLabelsAndFixups(t *testing.T) {
	b := NewBuilder("t")
	b.Li(1, 5)
	b.Label("loop")
	b.AddI(1, 1, -1)
	b.Br(CondNE, 1, 0, "loop")
	b.Jmp("end") // forward reference
	b.Nop()
	b.Label("end")
	b.Halt()
	p := b.Build()
	if p.Code[2].Target != 1 {
		t.Fatalf("backward target %d, want 1", p.Code[2].Target)
	}
	if p.Code[3].Target != 5 {
		t.Fatalf("forward target %d, want 5", p.Code[3].Target)
	}
}

func TestBuilderUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("t")
	b.Jmp("nowhere")
	b.Build()
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
}

func TestBuilderInitData(t *testing.T) {
	b := NewBuilder("t")
	b.InitData(0x40, 9)
	b.Halt()
	p := b.Build()
	m := NewMemory()
	m.LoadProgram(p)
	if m.Read64(0x40) != 9 {
		t.Fatal("InitData not loaded")
	}
}
