// Package staledir is the staledirective analyzer's golden input.
package staledir

import "sort"

// Fine already follows the collect-then-sort idiom; the directive above
// its loop suppresses nothing and must be reported (and is -fix removable).
func Fine(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//simlint:ordered -- obsolete: the loop below is already the sorted idiom // want `stale //simlint:ordered directive`
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

//simlint:allow errdiscipline -- obsolete: nothing here panics anymore // want `stale //simlint:allow directive`
func quiet() int {
	return 1
}

//simlint:allow timedet -- obsolete: the analyzer it names was retired // want `suppresses only analyzers that no longer exist \(timedet\)`
func retired() int {
	return 2
}

// used keeps quiet and retired referenced.
var _ = quiet

var _ = retired
