// Package dunlock is the deferunlock analyzer's golden input: the plain
// Lock/Unlock pair is rewritable, and every unsafe tail — a summary-
// proven re-acquisition, a channel operation, an early return inside the
// section — blocks the fix.
package dunlock

import "sync"

// Box holds a guarded value.
type Box struct {
	mu sync.Mutex
	n  int
}

// BadPlainPair is the rewritable pattern: one acquire, one plain
// top-level release, a safe tail.
func (b *Box) BadPlainPair() {
	b.mu.Lock() // want `dunlock.Box.mu is locked and unlocked exactly once with a plain tail unlock`
	b.n++
	b.mu.Unlock()
}

// reacquire takes the lock itself (already in the defer idiom).
func (b *Box) reacquire() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// indirect forwards to reacquire: the summary must see through it.
func (b *Box) indirect() {
	b.reacquire()
}

// GoodTailReacquires must NOT be rewritten: the interprocedural summary
// proves the tail call re-acquires Box.mu two frames down, so extending
// the critical section over it would self-deadlock.
func (b *Box) GoodTailReacquires() int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	b.indirect()
	return n
}

// GoodTailSend must not extend the section over a channel send, which
// can block while the lock would now still be held.
func (b *Box) GoodTailSend(ch chan int) {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	ch <- n
}

// GoodEarlyReturn leaks the lock on the negative path today; rewriting
// would silently change behavior instead of reporting the bug, so the
// pattern is skipped.
func (b *Box) GoodEarlyReturn(x int) int {
	b.mu.Lock()
	if x < 0 {
		return -1
	}
	n := b.n
	b.mu.Unlock()
	return n
}

// RBox reads under an RWMutex.
type RBox struct {
	mu sync.RWMutex
	v  uint64
}

// BadReadPair pairs RLock with RUnlock; the fix must defer the RUnlock,
// not an Unlock.
func (r *RBox) BadReadPair() uint64 {
	r.mu.RLock() // want `dunlock.RBox.mu is locked and unlocked exactly once with a plain tail unlock`
	n := r.v
	r.mu.RUnlock()
	return n
}
