package cpu

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
)

// Occupancy is a used/capacity snapshot of one hardware structure at the
// moment a livelock was diagnosed.
type Occupancy struct {
	Used int `json:"used"`
	Cap  int `json:"cap"`
}

// String renders the snapshot as used/cap.
func (o Occupancy) String() string { return fmt.Sprintf("%d/%d", o.Used, o.Cap) }

// LivelockError is the forward-progress watchdog's diagnosis: the core
// committed nothing for Config.WatchdogWindow cycles. It names the
// structure the ROB head is stuck on and snapshots every queue an operator
// needs to tell "resource leak" from "lost wakeup" from "memory system
// never replied" — the structured replacement for the old watchdog panic.
type LivelockError struct {
	Window     arch.Cycle `json:"window"`      // configured no-commit window that expired
	Cycle      arch.Cycle `json:"cycle"`       // absolute cycle at detection
	LastCommit arch.Cycle `json:"last_commit"` // absolute cycle of the last retirement
	PC         arch.Addr  `json:"pc"`          // front-end fetch PC at detection
	Committed  uint64     `json:"committed"`   // instructions committed in the current window
	Stalled    string     `json:"stalled"`     // the structure progress is stuck on

	ROB    Occupancy `json:"rob"`
	LQ     Occupancy `json:"lq"`
	SQ     Occupancy `json:"sq"`
	L1MSHR Occupancy `json:"l1_mshr"`
	L2MSHR Occupancy `json:"l2_mshr"`

	// MemPending counts in-flight memory-system transactions.
	MemPending int `json:"mem_pending"`
}

// Error summarizes the diagnosis on one line.
func (e *LivelockError) Error() string {
	return fmt.Sprintf(
		"cpu: livelock: no commit for %d cycles (window %d) at cycle %d: stalled on %s (pc=%v committed=%d rob=%s lq=%s sq=%s l1mshr=%s l2mshr=%s mem-pending=%d)",
		//simlint:allow cyclemath -- the watchdog only constructs this error after proving Cycle > LastCommit+Window
		e.Cycle-e.LastCommit, e.Window, e.Cycle, e.Stalled, e.PC, e.Committed,
		e.ROB, e.LQ, e.SQ, e.L1MSHR, e.L2MSHR, e.MemPending)
}

// diagnoseLivelock builds the structured error for an expired watchdog
// window, walking from the ROB head outward to name the stuck structure.
func (m *Machine) diagnoseLivelock(window arch.Cycle) *LivelockError {
	e := &LivelockError{
		Window:     window,
		Cycle:      m.now,
		LastCommit: m.lastCommitCycle,
		PC:         m.fetchPC,
		Committed:  m.Stats.Committed,
		ROB:        Occupancy{Used: int(m.robCount), Cap: m.cfg.ROBSize},
		LQ:         Occupancy{Used: int(m.lqCount), Cap: m.cfg.LQSize},
		SQ:         Occupancy{Used: int(m.sqCount), Cap: m.cfg.SQSize},
		MemPending: m.hier.PendingLen(),
	}
	if mshr := m.hier.L1MSHR(m.cfg.CoreID); mshr != nil {
		e.L1MSHR = Occupancy{Used: mshr.Len(), Cap: mshr.Cap()}
	}
	if mshr := m.hier.L2MSHR(); mshr != nil {
		e.L2MSHR = Occupancy{Used: mshr.Len(), Cap: mshr.Cap()}
	}
	e.Stalled = m.stalledStructure()
	return e
}

// stalledStructure names what the oldest instruction is waiting on.
func (m *Machine) stalledStructure() string {
	if m.stallFrom != 0 && m.now >= m.stallFrom {
		return "commit (injected stall)"
	}
	if m.robCount == 0 {
		return "front end (ROB empty, nothing to commit)"
	}
	head := &m.rob[m.robHead]
	if head.state == stDone {
		return "commit (ROB head complete but not retiring)"
	}
	if head.inst.Op == isa.OpLoad && head.lqIdx >= 0 {
		lq := &m.lq[head.lqIdx]
		switch {
		case !lq.Issued:
			return "LQ (head load never issued)"
		case !lq.Completed:
			return "MSHR (head load in flight, fill never arrived)"
		default:
			return "LQ (head load completed but ROB entry never marked done)"
		}
	}
	if head.state == stDispatched {
		return fmt.Sprintf("issue (ROB head %v never issued)", head.inst.Op)
	}
	return fmt.Sprintf("ROB head (%v issued but never completed)", head.inst.Op)
}

// Livelock returns the watchdog diagnosis of the last Run, nil if the run
// made forward progress throughout.
func (m *Machine) Livelock() *LivelockError { return m.livelock }

// LivelockErr returns the diagnosis as an error, avoiding the typed-nil
// trap for callers that just want `if err != nil`.
func (m *Machine) LivelockErr() error {
	if m.livelock == nil {
		return nil
	}
	return m.livelock
}

// InjectCommitStall freezes retirement from cycle `at` on — a
// deterministic, seeded livelock used by the fault-injection harness to
// prove the watchdog fires within its window. Zero (the default) never
// stalls; real workloads pay only a register compare per commit call.
func (m *Machine) InjectCommitStall(at arch.Cycle) { m.stallFrom = at }
