// Package errd is the errdiscipline analyzer's golden input.
package errd

import "errors"

// Divide panics instead of returning an error: flagged.
func Divide(a, b int) int {
	if b == 0 {
		panic("divide by zero") // want `panic in a simulation package`
	}
	return a / b
}

// DivideErr is the sanctioned shape.
func DivideErr(a, b int) (int, error) {
	if b == 0 {
		return 0, errors.New("divide by zero")
	}
	return a / b, nil
}

// mustPositive is a must* helper: its documented contract is to panic.
func mustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}

// Capacity relies on the allowed helper and an annotated invariant.
func Capacity(n int) int {
	n = mustPositive(n)
	if n > 1<<20 {
		//simlint:allow errdiscipline -- construction-time bound check in the golden input
		panic("capacity too large")
	}
	return n
}

// badDirective carries a directive without a justification, which is
// itself reported (and therefore does not suppress the panic).
func badDirective() {
	//simlint:allow errdiscipline // want `//simlint:allow without a justification`
	panic("unjustified") // want `panic in a simulation package`
}
