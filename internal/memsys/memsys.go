// Package memsys glues the caches, the CEASER indexer, the coherence
// directory, and the DRAM model into the two-level hierarchy of the paper's
// Table 4: per-core L1 data caches and a shared, inclusive L2, with MSHRs
// at both levels.
//
// The hierarchy is event-timed: a load that misses allocates an MSHR entry
// and schedules a completion; the *fill* (install plus victim eviction) is
// applied at completion time. That is what gives the paper's Section 3.3
// semantics for free: when a squash arrives while the request is in flight,
// the entry is marked stale and the returning data is dropped without any
// cache change (the "inflight" class of Figure 15).
package memsys

import (
	"container/heap"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/ceaser"
	"repro/internal/coherence"
	"repro/internal/dram"
	"repro/internal/metrics"
)

// Level says where in the hierarchy a request was satisfied.
type Level int

// Hit levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
	// LevelDelayed is returned when a GetS-Safe attempt failed and the
	// load must be delayed until it is unsquashable (Section 3.5).
	LevelDelayed
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "Mem"
	case LevelDelayed:
		return "Delayed"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Kind classifies an access for traffic accounting (Figure 4b).
type Kind int

// Access kinds.
const (
	KindRegular Kind = iota
	KindInvisible
	KindUpdate
	KindCleanup
)

// Traffic counts cache-hierarchy messages by kind: every L1 access is one
// message, plus one per deeper hop (L1->L2, L2->memory) and one per
// writeback, matching the paper's Figure 4(b) accounting where speculative
// (invisible) and update accesses are broken out separately.
type Traffic struct {
	Regular    uint64
	Invisible  uint64
	Update     uint64
	Cleanup    uint64
	Writebacks uint64
}

// Total returns all message counts combined.
func (t Traffic) Total() uint64 {
	return t.Regular + t.Invisible + t.Update + t.Cleanup + t.Writebacks
}

func (t *Traffic) add(k Kind, n uint64) {
	switch k {
	case KindRegular:
		t.Regular += n
	case KindInvisible:
		t.Invisible += n
	case KindUpdate:
		t.Update += n
	case KindCleanup:
		t.Cleanup += n
	}
}

// Config describes the hierarchy.
type Config struct {
	NumCores int
	L1       cache.Config
	// L1I is the instruction cache (Table 4: 32KB 4-way, 1-cycle RT).
	// A zero SizeBytes disables instruction-fetch modeling.
	L1I     cache.Config
	L2      cache.Config
	L1RT    arch.Cycle
	L2RT    arch.Cycle // base, before the indexer's ExtraLatency
	L1MSHRs int
	L2MSHRs int
	DRAM    dram.Config
	// RandomizeL2 selects CEASER indexing for the L2 (Section 3.2).
	RandomizeL2 bool
	// ProtectSpecWindow services cross-core hits on speculatively
	// installed lines with dummy-miss latency (Section 3.6).
	ProtectSpecWindow bool
	// L2RemapEvery, when non-zero (and the L2 is randomized), relocates
	// one L2 set per this many L2 accesses — CEASER's gradual remap.
	// Remap epochs start automatically and chain continuously.
	L2RemapEvery uint64
	Seed         uint64
}

// DefaultConfig returns the paper's Table 4 hierarchy for n cores.
func DefaultConfig(n int) Config {
	return Config{
		NumCores: n,
		L1: cache.Config{
			Name: "L1D", SizeBytes: 64 << 10, Ways: 8, Repl: cache.ReplLRU,
		},
		L1I: cache.Config{
			Name: "L1I", SizeBytes: 32 << 10, Ways: 4, Repl: cache.ReplLRU,
		},
		L2: cache.Config{
			Name: "L2", SizeBytes: (2 << 20) * n, Ways: 16, Repl: cache.ReplLRU,
		},
		L1RT:    1,
		L2RT:    8, // +2 cycles encryption when randomized -> 10 RT
		L1MSHRs: 64,
		L2MSHRs: 64,
		DRAM:    dram.DefaultConfig(),
		Seed:    1,
	}
}

// Txn is one in-flight (or completed) load transaction.
type Txn struct {
	Core    int
	Line    arch.LineAddr
	Seq     uint64 // the load's sequence number (waiter id)
	Kind    Kind
	Spec    bool
	NoFill  bool // invisible access: no state change on any level
	Epoch   uint8
	Issued  arch.Cycle
	DoneAt  arch.Cycle
	Level   Level
	SEFE    cache.SEFE
	Owner   int  // hardware thread within the core (SMT)
	Dropped bool // fill dropped because every waiter was squashed
	Primary bool // this txn owns the MSHR entry and applies the fill
	// OnDone is invoked when the transaction completes (possibly as
	// dropped). The CPU clears it when the waiting load is squashed.
	OnDone func(*Txn)

	entry   *cache.MSHREntry // L1 MSHR entry (primary only)
	l2entry *cache.MSHREntry // L2 MSHR entry (primary, memory-bound only)
	heapIdx int
	heapSeq uint64
}

// Stats counts hierarchy-level events.
type Stats struct {
	Loads          uint64
	LoadL1Hits     uint64
	LoadL2Hits     uint64
	LoadMems       uint64
	Stores         uint64
	Flushes        uint64
	DroppedFills   uint64
	DummyMisses    uint64 // spec-window protected accesses
	Restores       uint64
	CleanupInvals  uint64
	SafeGetSDelays uint64
}

// Hierarchy is the memory system.
type Hierarchy struct {
	cfg     Config
	l1      []*cache.Cache
	l1i     []*cache.Cache
	l1mshr  []*cache.MSHR
	l2      *cache.Cache
	l2mshr  *cache.MSHR
	l2index *ceaser.Indexer // nil when not randomized
	dir     *coherence.Directory
	mem     *dram.DRAM

	epoch      []uint8
	fillSeq    []uint64 // per-core LoadID counter (order of applied fills)
	l2Accesses uint64

	pending txnHeap
	seqGen  uint64

	Traffic Traffic
	Stats   Stats
}

// New builds the hierarchy.
func New(cfg Config) *Hierarchy {
	if cfg.NumCores <= 0 {
		//simlint:allow errdiscipline -- construction-time core-count validation; a bad config is a programmer error caught before any simulation runs
		panic("memsys: NumCores must be positive")
	}
	h := &Hierarchy{cfg: cfg}
	l2cfg := cfg.L2
	if cfg.RandomizeL2 {
		sets := l2cfg.SizeBytes / arch.LineBytes / l2cfg.Ways
		h.l2index = ceaser.New(sets, cfg.Seed^0x5EED)
		l2cfg.Indexer = h.l2index
	}
	l2cfg.Seed = cfg.Seed ^ 2
	h.l2 = cache.New(l2cfg)
	h.l2mshr = cache.NewMSHR("L2", cfg.L2MSHRs)
	for c := 0; c < cfg.NumCores; c++ {
		l1cfg := cfg.L1
		l1cfg.Name = fmt.Sprintf("L1D%d", c)
		l1cfg.Seed = cfg.Seed ^ uint64(3+c)
		h.l1 = append(h.l1, cache.New(l1cfg))
		h.l1mshr = append(h.l1mshr, cache.NewMSHR(l1cfg.Name, cfg.L1MSHRs))
		if cfg.L1I.SizeBytes > 0 {
			icfg := cfg.L1I
			icfg.Name = fmt.Sprintf("L1I%d", c)
			icfg.Seed = cfg.Seed ^ uint64(300+c)
			h.l1i = append(h.l1i, cache.New(icfg))
		}
	}
	h.dir = coherence.NewDirectory(cfg.NumCores)
	h.mem = dram.New(cfg.DRAM)
	h.epoch = make([]uint8, cfg.NumCores)
	h.fillSeq = make([]uint64, cfg.NumCores)
	return h
}

// Config returns the active configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// L1 returns core's L1 data cache.
func (h *Hierarchy) L1(core int) *cache.Cache { return h.l1[core] }

// L1MSHR returns core's L1 MSHR.
func (h *Hierarchy) L1MSHR(core int) *cache.MSHR { return h.l1mshr[core] }

// L2 returns the shared L2.
func (h *Hierarchy) L2() *cache.Cache { return h.l2 }

// L2MSHR returns the shared L2 MSHR.
func (h *Hierarchy) L2MSHR() *cache.MSHR { return h.l2mshr }

// Directory returns the coherence directory.
func (h *Hierarchy) Directory() *coherence.Directory { return h.dir }

// DRAM returns the memory model.
func (h *Hierarchy) DRAM() *dram.DRAM { return h.mem }

// L2Indexer returns the CEASER indexer, or nil when the L2 is not
// randomized.
func (h *Hierarchy) L2Indexer() *ceaser.Indexer { return h.l2index }

// L1I returns core's instruction cache, or nil when disabled.
func (h *Hierarchy) L1I(core int) *cache.Cache {
	if core >= len(h.l1i) {
		return nil
	}
	return h.l1i[core]
}

// IFetch models an instruction fetch of the line holding pc: an I-cache
// hit costs nothing extra (the 1-cycle RT is part of the front-end
// pipeline); a miss stalls fetch for an L2 or memory round trip and fills
// the I-cache and the inclusive L2. The paper keeps the I-cache outside
// the cache-channel threat model (footnote 1: transient changes to it can
// be delayed or buffered), so fills are unconditional and untracked.
func (h *Hierarchy) IFetch(core int, pc arch.Addr, now arch.Cycle) (ready arch.Cycle) {
	if len(h.l1i) == 0 {
		return now
	}
	line := arch.PCLine(pc)
	ic := h.l1i[core]
	if _, hit := ic.Lookup(line); hit {
		return now
	}
	h.Traffic.add(KindRegular, 1)
	lat := h.L2RT()
	if _, hit := h.l2.Probe(line); !hit {
		h.Traffic.add(KindRegular, 1)
		lat += h.mem.AccessLatency(line, false)
		h.installL2(line, false, core, now)
	}
	ic.Install(line, arch.Shared, 0, now)
	return now + lat
}

// PrewarmICache fills the I-cache (and L2) with a program's code lines, the
// instruction-side counterpart of PrewarmL2.
func (h *Hierarchy) PrewarmICache(core, codeLen int) {
	if len(h.l1i) == 0 {
		return
	}
	for pc := 0; pc < codeLen; pc += arch.LineBytes / arch.InstBytes {
		line := arch.PCLine(arch.Addr(pc))
		h.installL2(line, false, core, 0)
		if _, hit := h.l1i[core].Probe(line); !hit {
			h.l1i[core].Install(line, arch.Shared, 0, 0)
		}
	}
}

// Epoch returns core's current epoch (Section 3.3).
func (h *Hierarchy) Epoch(core int) uint8 { return h.epoch[core] }

// BumpEpoch increments core's epoch: loads issued after a squash carry the
// new EpochID, so their responses are distinguishable from stale ones.
func (h *Hierarchy) BumpEpoch(core int) uint8 {
	h.epoch[core]++
	return h.epoch[core]
}

// L2RT returns the effective L2 round-trip latency (base + encryption).
func (h *Hierarchy) L2RT() arch.Cycle {
	lat := h.cfg.L2RT
	if h.l2index != nil {
		lat += h.l2index.ExtraLatency()
	} else if h.cfg.L2.Indexer != nil {
		lat += h.cfg.L2.Indexer.ExtraLatency()
	}
	return lat
}

// MemRT returns the DRAM round-trip latency.
func (h *Hierarchy) MemRT() arch.Cycle { return h.cfg.DRAM.RTCycles }

// LoadOpts modifies how a load is issued.
type LoadOpts struct {
	Spec bool
	// Owner identifies the hardware thread within the core for way
	// partitioning and speculative-install attribution (SMT). Zero is
	// thread 0; single-threaded cores leave it unset.
	Owner int
	// NoFill performs an invisible access (InvisiSpec's speculative
	// load): data is read, nothing in the hierarchy changes.
	NoFill bool
	// SafeGetS issues the coherence read as GetS-Safe; if the line is
	// owned by a remote core the load is not performed and Level ==
	// LevelDelayed is returned (CleanupSpec, Section 3.5).
	SafeGetS bool
	Kind     Kind
}

// Load issues a load of line for core at time now. It returns the
// transaction and true, or (nil, false) if an MSHR could not be allocated
// (the caller retries). If opts.SafeGetS fails, it returns a synthetic
// completed transaction with Level == LevelDelayed and does not touch any
// state.
func (h *Hierarchy) Load(core int, line arch.LineAddr, now arch.Cycle, seq uint64, opts LoadOpts, onDone func(*Txn)) (*Txn, bool) {
	if opts.SafeGetS && h.dir.RemoteOwner(core, line) >= 0 {
		h.Stats.SafeGetSDelays++
		//simlint:allow hotalloc -- synthetic delayed-GetS reply, one per failed safe load; bounded by load issue events (see ROADMAP hot-loop program for Txn pooling)
		return &Txn{Core: core, Line: line, Seq: seq, Level: LevelDelayed}, true
	}

	//simlint:allow hotalloc -- one transaction per issued load, live until its fill returns; bounded by MSHR capacity (see ROADMAP hot-loop program for Txn pooling)
	t := &Txn{
		Core: core, Line: line, Seq: seq, Kind: opts.Kind,
		Spec: opts.Spec, NoFill: opts.NoFill, Owner: opts.Owner,
		Epoch: h.epoch[core], Issued: now, OnDone: onDone,
	}
	t.SEFE.L1Way = -1

	l1 := h.l1[core]
	if opts.NoFill {
		return h.loadInvisible(t, now)
	}

	h.Stats.Loads++
	h.Traffic.add(opts.Kind, 1) // L1 access message

	if _, hit := l1.Lookup(line); hit {
		// Cross-core window protection: a hit on a line another core
		// installed speculatively is serviced with dummy-miss latency
		// (Section 3.6). No state changes.
		if h.cfg.ProtectSpecWindow {
			if spec, by := l1.SpecInfo(line); spec && by != SMTID(core, opts.Owner) {
				h.Stats.DummyMisses++
				h.Traffic.add(opts.Kind, 1) // dummy backing-store request
				t.Level = LevelL1
				t.DoneAt = now + h.cfg.L1RT + h.dummyMissLatency(line)
				h.push(t)
				return t, true
			}
		}
		h.Stats.LoadL1Hits++
		t.Level = LevelL1
		t.DoneAt = now + h.cfg.L1RT
		h.push(t)
		return t, true
	}

	// L1 miss: allocate or merge an L1 MSHR entry.
	mshr := h.l1mshr[core]
	entry, merged, ok := mshr.Allocate(line, seq)
	if !ok {
		return nil, false
	}
	if merged {
		t.DoneAt = entry.ReadyAt
		t.Level = levelOfReady(entry)
		h.push(t)
		return t, true
	}
	entry.SEFE.IsSpec = opts.Spec
	entry.SEFE.EpochID = h.epoch[core]
	t.Primary = true
	t.entry = entry

	h.Traffic.add(opts.Kind, 1) // L1 -> L2 request
	h.l2AccessTick()

	// Coherence: take the directory grant now (at issue) so GetS-Safe
	// semantics and remote downgrades are decided before any timing is
	// observable. Paper Section 3.5 allows these transient sharer-set
	// changes because they are reversed on cleanup and a remote M/E
	// downgrade is excluded by the SafeGetS check above.
	grant := h.dir.GetS(core, line)
	h.applyRemoteActions(line, grant)

	if _, hit := h.l2.Lookup(line); hit || grant.Source == coherence.SrcRemote {
		h.Stats.LoadL2Hits++
		t.Level = LevelL2
		lat := h.L2RT()
		// Window protection also covers the shared L2: a cross-core
		// hit on a speculatively installed copy is serviced at
		// backing-store latency (Section 3.6).
		if h.cfg.ProtectSpecWindow {
			if spec, by := h.l2.SpecInfo(line); spec && by != SMTID(core, opts.Owner) {
				h.Stats.DummyMisses++
				h.Traffic.add(opts.Kind, 1)
				lat += h.cfg.DRAM.RTCycles
			}
		}
		t.DoneAt = now + h.cfg.L1RT + lat
	} else {
		// L2 miss: needs an L2 MSHR entry and a memory access.
		l2e, l2merged, l2ok := h.l2mshr.Allocate(line, seq)
		if !l2ok {
			mshr.Release(entry)
			h.dir.Evict(core, line, false) // roll back the grant
			return nil, false
		}
		if !l2merged {
			l2e.SEFE.IsSpec = opts.Spec
			l2e.SEFE.EpochID = h.epoch[core]
			t.l2entry = l2e
		}
		h.Stats.LoadMems++
		h.Traffic.add(opts.Kind, 1) // L2 -> memory request
		memLat := h.mem.AccessLatency(line, false)
		t.Level = LevelMem
		t.DoneAt = now + h.cfg.L1RT + h.L2RT() + memLat
		entry.SEFE.L2Fill = true
	}
	entry.ReadyAt = t.DoneAt
	h.push(t)
	return t, true
}

// loadInvisible performs an InvisiSpec-style speculative access: correct
// latency, zero state change (no fills, no LRU update, no MSHR).
func (h *Hierarchy) loadInvisible(t *Txn, now arch.Cycle) (*Txn, bool) {
	h.Stats.Loads++
	h.Traffic.add(t.Kind, 1)
	if _, hit := h.l1[t.Core].Probe(t.Line); hit {
		h.Stats.LoadL1Hits++
		t.Level = LevelL1
		t.DoneAt = now + h.cfg.L1RT
		h.push(t)
		return t, true
	}
	h.Traffic.add(t.Kind, 1)
	if _, hit := h.l2.Probe(t.Line); hit {
		h.Stats.LoadL2Hits++
		t.Level = LevelL2
		t.DoneAt = now + h.cfg.L1RT + h.L2RT()
		h.push(t)
		return t, true
	}
	h.Stats.LoadMems++
	h.Traffic.add(t.Kind, 1)
	memLat := h.mem.AccessLatency(t.Line, false)
	t.Level = LevelMem
	t.DoneAt = now + h.cfg.L1RT + h.L2RT() + memLat
	h.push(t)
	return t, true
}

func levelOfReady(e *cache.MSHREntry) Level {
	if e.SEFE.L2Fill {
		return LevelMem
	}
	return LevelL2
}

// dummyMissLatency is the latency charged for a window-protected access:
// as if the line had to be fetched from the backing store (Section 3.6) —
// from the L2 when the L2 holds a non-speculative copy, else from memory.
func (h *Hierarchy) dummyMissLatency(line arch.LineAddr) arch.Cycle {
	if _, hit := h.l2.Probe(line); hit {
		if spec, _ := h.l2.SpecInfo(line); !spec {
			return h.L2RT()
		}
	}
	return h.L2RT() + h.cfg.DRAM.RTCycles
}

// applyRemoteActions applies directory-prescribed downgrades and
// invalidations for line to remote L1s.
func (h *Hierarchy) applyRemoteActions(line arch.LineAddr, g coherence.Grant) {
	for _, c := range g.Downgrades {
		h.l1[c].SetState(line, arch.Shared)
	}
	for _, c := range g.Invalidates {
		h.l1[c].Invalidate(line)
	}
}

// SMTID folds a core id and a hardware-thread id into the installer
// identity used by speculative-install marks, so SMT siblings sharing one
// L1 are distinguishable (Section 3.6's SMT adversary).
func SMTID(core, owner int) int { return core*64 + owner }

// SquashLoad tells the hierarchy that the load identified by (line, seq) on
// core was squashed while its miss may still be in flight. If it was the
// last waiter, the entry turns into a zombie and its fill will be dropped.
// It reports whether an in-flight entry was affected.
func (h *Hierarchy) SquashLoad(core int, line arch.LineAddr, seq uint64) bool {
	return h.l1mshr[core].SquashWaiter(line, seq)
}

// push schedules a transaction completion.
func (h *Hierarchy) push(t *Txn) {
	//simlint:allow undocomplete -- monotone tie-break sequence for the pending heap; IDs are never reused, so a squash must not rewind it
	h.seqGen++
	t.heapSeq = h.seqGen
	heap.Push(&h.pending, t)
}

// Tick completes every transaction due at or before now. The CPU calls it
// once per cycle before its writeback stage.
func (h *Hierarchy) Tick(now arch.Cycle) {
	for h.pending.Len() > 0 && h.pending[0].DoneAt <= now {
		t := heap.Pop(&h.pending).(*Txn)
		h.complete(t)
	}
}

// PendingLen reports the number of in-flight transactions (tests only).
func (h *Hierarchy) PendingLen() int { return h.pending.Len() }

func (h *Hierarchy) complete(t *Txn) {
	if t.Primary {
		h.completePrimary(t)
	}
	if t.OnDone != nil {
		t.OnDone(t)
	}
}

func (h *Hierarchy) completePrimary(t *Txn) {
	entry := t.entry
	h.l1mshr[t.Core].Release(entry)
	if t.l2entry != nil {
		h.l2mshr.Release(t.l2entry)
	}
	if entry.Squashed {
		// Section 3.3: data returned for a squashed entry is dropped;
		// no cache state changes at all.
		h.Stats.DroppedFills++
		h.l1mshr[t.Core].Stats.Dropped++
		t.Dropped = true
		return
	}
	// Apply fills top-down: L2 first (on a memory response), then L1.
	sefe := entry.SEFE
	if t.Level == LevelMem {
		h.installL2(t.Line, t.Spec, t.Core, t.DoneAt)
	}
	l1 := h.l1[t.Core]
	if _, already := l1.Probe(t.Line); !already {
		evicted, way := l1.Install(t.Line, h.grantStateFor(t.Core, t.Line), t.Owner, t.DoneAt)
		if t.Spec {
			l1.MarkSpec(t.Line, SMTID(t.Core, t.Owner))
		}
		sefe.L1Fill = true
		sefe.L1Way = way
		if evicted.Valid() {
			sefe.L1EvictValid = true
			sefe.L1EvictAddr = evicted.Tag
			sefe.L1EvictDirty = evicted.Dirty
			sefe.L1EvictState = evicted.State
			h.dir.Evict(t.Core, evicted.Tag, evicted.Dirty)
			if evicted.Dirty {
				h.Traffic.Writebacks++
				h.l2.MarkDirty(evicted.Tag)
			}
		}
	}
	//simlint:allow undocomplete -- monotone per-core fill sequence used to stamp SEFE LoadIDs; rewinding on squash would let a stale fill alias a live one
	h.fillSeq[t.Core]++
	sefe.LoadID = uint8(h.fillSeq[t.Core])
	t.SEFE = sefe
}

// FillOrder returns the running fill counter for core; cleanup uses it to
// order operations (the full-width shadow of the 8-bit LoadID).
func (h *Hierarchy) FillOrder(core int) uint64 { return h.fillSeq[core] }

// grantStateFor reflects the directory's current view for the install.
func (h *Hierarchy) grantStateFor(core int, line arch.LineAddr) arch.CohState {
	st := h.dir.State(core, line)
	if st == arch.Invalid {
		// The directory grant was rolled back or single-core fast path.
		return arch.Exclusive
	}
	return st
}

// installL2 installs line into the L2, maintaining inclusion by
// back-invalidating any L1 copies of the victim.
func (h *Hierarchy) installL2(line arch.LineAddr, spec bool, core int, now arch.Cycle) {
	if _, hit := h.l2.Probe(line); hit {
		return
	}
	evicted, _ := h.l2.Install(line, arch.Shared, 0, now)
	if spec {
		h.l2.MarkSpec(line, core)
	}
	if evicted.Valid() {
		// Inclusive hierarchy: the L2 victim must leave all L1s.
		for c := range h.l1 {
			if old, ok := h.l1[c].Invalidate(evicted.Tag); ok {
				if old.Dirty {
					h.Traffic.Writebacks++
				}
				h.dir.Evict(c, evicted.Tag, old.Dirty)
			}
		}
		if evicted.Dirty {
			h.Traffic.Writebacks++
			h.mem.AccessLatency(evicted.Tag, true)
		}
	}
}

// Store performs a committed (non-speculative) store of line: the paper
// issues RFOs non-speculatively (Section 4a), so stores reach the hierarchy
// only after commit and their fills are applied immediately. The returned
// latency is informational; committed stores drain off the critical path.
func (h *Hierarchy) Store(core int, line arch.LineAddr, now arch.Cycle) arch.Cycle {
	return h.StoreOwned(core, 0, line, now)
}

// StoreOwned is Store with an explicit hardware-thread owner (SMT way
// partitioning).
func (h *Hierarchy) StoreOwned(core, owner int, line arch.LineAddr, now arch.Cycle) arch.Cycle {
	h.Stats.Stores++
	h.Traffic.add(KindRegular, 1)
	l1 := h.l1[core]
	if _, hit := l1.Lookup(line); hit && l1.State(line).IsOwned() {
		l1.MarkDirty(line)
		l1.ClearSpec(line)
		h.dir.GetX(core, line)
		h.l2.MarkDirty(line)
		return h.cfg.L1RT
	}
	// Miss or upgrade: RFO.
	grant := h.dir.GetX(core, line)
	h.applyRemoteActions(line, grant)
	h.Traffic.add(KindRegular, 1)
	lat := h.cfg.L1RT + h.L2RT()
	if _, hit := h.l2.Probe(line); !hit {
		h.Traffic.add(KindRegular, 1)
		lat += h.mem.AccessLatency(line, false)
		h.installL2(line, false, core, now)
	}
	if _, hit := l1.Probe(line); !hit {
		evicted, _ := l1.Install(line, arch.Modified, owner, now)
		if evicted.Valid() {
			h.dir.Evict(core, evicted.Tag, evicted.Dirty)
			if evicted.Dirty {
				h.Traffic.Writebacks++
				h.l2.MarkDirty(evicted.Tag)
			}
		}
	}
	l1.MarkDirty(line)
	h.l2.MarkDirty(line)
	return lat
}

// Flush performs a committed clflush of line: every cached copy anywhere is
// invalidated (Table 2's second row; CleanupSpec delays the instruction
// until commit, which the CPU enforces). All L1s are swept directly because
// the directory only tracks lines with active L1 holders.
func (h *Hierarchy) Flush(core int, line arch.LineAddr) {
	h.Stats.Flushes++
	h.Traffic.add(KindRegular, 1)
	h.dir.Flush(line)
	for c := range h.l1 {
		h.l1[c].Invalidate(line)
	}
	if old, ok := h.l2.Invalidate(line); ok && old.Dirty {
		h.Traffic.Writebacks++
		h.mem.AccessLatency(line, true)
	}
}

// ProbeLevel reports where line would hit right now, with no side effects.
func (h *Hierarchy) ProbeLevel(core int, line arch.LineAddr) Level {
	if _, hit := h.l1[core].Probe(line); hit {
		return LevelL1
	}
	if _, hit := h.l2.Probe(line); hit {
		return LevelL2
	}
	return LevelMem
}

// --- cleanup operations used by the CleanupSpec policy (Section 3.4) ---

// CleanupInvalidateL1 removes a transiently installed line from core's L1.
func (h *Hierarchy) CleanupInvalidateL1(core int, line arch.LineAddr) bool {
	h.Stats.CleanupInvals++
	h.Traffic.add(KindCleanup, 1)
	old, ok := h.l1[core].Invalidate(line)
	if ok {
		h.dir.Evict(core, line, old.Dirty)
	}
	return ok
}

// CleanupInvalidateL2 removes a transiently installed line from the L2
// (evictions from the randomized L2 are benign, so no restore is needed).
// Inclusion is preserved: any L1 copy goes too.
func (h *Hierarchy) CleanupInvalidateL2(line arch.LineAddr) bool {
	h.Stats.CleanupInvals++
	h.Traffic.add(KindCleanup, 1)
	for c := range h.l1 {
		if old, ok := h.l1[c].Invalidate(line); ok {
			h.dir.Evict(c, line, old.Dirty)
		}
	}
	_, ok := h.l2.Invalidate(line)
	return ok
}

// RestoreL1 reinstates the victim recorded in sefe into the exact way it
// was evicted from, fetching it from the inclusive L2 (or memory if the
// randomized L2 has since evicted it). It returns the latency of the
// restore access.
func (h *Hierarchy) RestoreL1(core int, sefe cache.SEFE, now arch.Cycle) arch.Cycle {
	if !sefe.L1EvictValid {
		return 0
	}
	h.Stats.Restores++
	h.l1[core].Stats.Restores++
	h.Traffic.add(KindCleanup, 1)
	lat := h.L2RT()
	if _, hit := h.l2.Probe(sefe.L1EvictAddr); !hit {
		// The L2 no longer holds the victim (randomized eviction since,
		// or it was flushed): fetch from memory.
		lat += h.mem.AccessLatency(sefe.L1EvictAddr, false)
		h.installL2(sefe.L1EvictAddr, false, core, now)
	}
	if _, present := h.l1[core].Probe(sefe.L1EvictAddr); present {
		// A correct-path access already brought the victim back.
		return lat
	}
	set := h.l1[core].SetFor(sefe.L1EvictAddr)
	// The restored copy is clean: dirty data was written back to the L2
	// at eviction time, which still has it.
	st := sefe.L1EvictState
	if st == arch.Modified {
		st = arch.Exclusive
	}
	h.l1[core].InstallAt(set, sefe.L1Way, sefe.L1EvictAddr, st, now)
	h.dir.GetS(core, sefe.L1EvictAddr)
	return lat
}

// CommitUpdate performs InvisiSpec's second ("update") access for a load
// that was speculatively issued invisibly: the buffered data is written into
// the caches and a validation message is exchanged with the L2/directory to
// check for consistency violations (Section 2.3.1). The returned latency is
// the exposure on the commit critical path — the validation round trip —
// since the data itself is already on-core in the speculative buffer.
func (h *Hierarchy) CommitUpdate(core int, line arch.LineAddr, now arch.Cycle) arch.Cycle {
	h.Traffic.add(KindUpdate, 1) // validation/expose message
	exposure := h.L2RT()
	l1 := h.l1[core]
	if _, hit := l1.Lookup(line); hit {
		return exposure
	}
	grant := h.dir.GetS(core, line)
	h.applyRemoteActions(line, grant)
	if _, hit := h.l2.Probe(line); !hit {
		h.Traffic.add(KindUpdate, 1) // fill the L2 from the buffered copy
		h.installL2(line, false, core, now)
	}
	evicted, _ := l1.Install(line, h.grantStateFor(core, line), core, now)
	if evicted.Valid() {
		h.dir.Evict(core, evicted.Tag, evicted.Dirty)
		if evicted.Dirty {
			h.Traffic.Writebacks++
			h.l2.MarkDirty(evicted.Tag)
		}
	}
	return exposure
}

// ClearSpecMark clears window-tracking marks once a load retires safely.
func (h *Hierarchy) ClearSpecMark(core int, line arch.LineAddr) {
	h.l1[core].ClearSpec(line)
	h.l2.ClearSpec(line)
}

// l2AccessTick paces CEASER's gradual remap: every L2RemapEvery L2
// accesses one set is relocated; epochs chain continuously.
func (h *Hierarchy) l2AccessTick() {
	if h.cfg.L2RemapEvery == 0 || h.l2index == nil {
		return
	}
	//simlint:allow undocomplete -- remap-interval access odometer; squashed accesses still occupied the L2 port, so the count stands
	h.l2Accesses++
	if h.l2Accesses%h.cfg.L2RemapEvery != 0 {
		return
	}
	if !h.l2index.Remapping() {
		h.l2index.StartRemap(h.cfg.Seed ^ h.l2Accesses)
	}
	h.L2RemapStep()
}

// L2StartRemap begins a gradual remap epoch toward a fresh key (randomized
// L2 only; no-op otherwise).
func (h *Hierarchy) L2StartRemap(seed uint64) {
	if h.l2index != nil {
		h.l2index.StartRemap(seed)
	}
}

// L2RemapStep relocates the lines of the next set (CEASER's SPtr walk) and
// advances the pointer. Lines that were *placed* in the set under the
// current key move to their next-key set; lines already relocated into the
// set stay. It returns the number of lines moved.
func (h *Hierarchy) L2RemapStep() (moved int) {
	ix := h.l2index
	if ix == nil || !ix.Remapping() {
		return 0
	}
	s := ix.SPtr()
	type mover struct {
		line  arch.LineAddr
		dirty bool
	}
	var movers []mover
	for w := 0; w < h.l2.Ways(); w++ {
		ln := h.l2.LineAt(s, w)
		if ln.Valid() && ix.CurIndex(ln.Tag) == s && ix.NextIndex(ln.Tag) != s {
			//simlint:allow hotalloc -- remap worklist bounded by L2 associativity, built once per periodic CEASER remap step, not per cycle
			movers = append(movers, mover{ln.Tag, ln.Dirty})
		}
	}
	for _, mv := range movers {
		h.l2.Invalidate(mv.line)
	}
	ix.AdvanceSPtr()
	for _, mv := range movers {
		h.installL2(mv.line, false, 0, 0)
		if mv.dirty {
			h.l2.MarkDirty(mv.line)
		}
		moved++
	}
	return moved
}

// PrewarmL2 installs line into the L2 (clean, non-speculative) without any
// timing or traffic effects — experiment harnesses use it to stand in for
// the cache state after the paper's 10-billion-instruction fast-forward.
func (h *Hierarchy) PrewarmL2(line arch.LineAddr) {
	h.installL2(line, false, 0, 0)
}

// AttachMetrics registers the hierarchy's counters and gauges into reg:
// its own Stats and Traffic fields, core 0's L1D, the shared L2, both MSHR
// levels, the coherence directory, and the DRAM model. Every binding is a
// pointer to an existing struct field (or a closure over one), so the
// simulation hot path is untouched; the registry reads the fields only at
// snapshot time. Per-core breakouts beyond core 0 are intentionally
// omitted — the single-core experiments dominate, and the shared
// structures (L2, directory, DRAM) cover the multicore signal.
func (h *Hierarchy) AttachMetrics(reg *metrics.Registry) {
	s := &h.Stats
	reg.BindCounter("mem.loads", &s.Loads)
	reg.BindCounter("mem.load_l1_hits", &s.LoadL1Hits)
	reg.BindCounter("mem.load_l2_hits", &s.LoadL2Hits)
	reg.BindCounter("mem.load_mems", &s.LoadMems)
	reg.BindCounter("mem.stores", &s.Stores)
	reg.BindCounter("mem.flushes", &s.Flushes)
	reg.BindCounter("mem.dropped_fills", &s.DroppedFills)
	reg.BindCounter("mem.dummy_misses", &s.DummyMisses)
	reg.BindCounter("mem.restores", &s.Restores)
	reg.BindCounter("mem.cleanup_invals", &s.CleanupInvals)
	reg.BindCounter("mem.safe_gets_delays", &s.SafeGetSDelays)
	t := &h.Traffic
	reg.BindCounter("traffic.regular", &t.Regular)
	reg.BindCounter("traffic.invisible", &t.Invisible)
	reg.BindCounter("traffic.update", &t.Update)
	reg.BindCounter("traffic.cleanup", &t.Cleanup)
	reg.BindCounter("traffic.writebacks", &t.Writebacks)
	reg.GaugeFunc("mem.pending_txns", func() float64 { return float64(h.pending.Len()) })
	h.l1[0].AttachMetrics(reg, "l1d")
	h.l1mshr[0].AttachMetrics(reg, "l1d.mshr")
	h.l2.AttachMetrics(reg, "l2")
	h.l2mshr.AttachMetrics(reg, "l2.mshr")
	h.dir.AttachMetrics(reg)
	h.mem.AttachMetrics(reg)
}

// ResetTraffic zeroes the traffic counters.
func (h *Hierarchy) ResetTraffic() { h.Traffic = Traffic{} }

// ResetStats zeroes all measurement counters (traffic, hierarchy, cache and
// DRAM stats) without touching cache contents — used to exclude warmup from
// a measurement window.
func (h *Hierarchy) ResetStats() {
	h.Traffic = Traffic{}
	h.Stats = Stats{}
	for _, c := range h.l1 {
		c.ResetStats()
	}
	h.l2.ResetStats()
	h.mem.ResetStats()
}

// txnHeap is a min-heap on (DoneAt, insertion order).
type txnHeap []*Txn

func (q txnHeap) Len() int { return len(q) }
func (q txnHeap) Less(i, j int) bool {
	if q[i].DoneAt != q[j].DoneAt {
		return q[i].DoneAt < q[j].DoneAt
	}
	return q[i].heapSeq < q[j].heapSeq
}
func (q txnHeap) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIdx = i
	q[j].heapIdx = j
}
func (q *txnHeap) Push(x any) {
	t := x.(*Txn)
	t.heapIdx = len(*q)
	*q = append(*q, t)
}
func (q *txnHeap) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
