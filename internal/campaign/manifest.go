package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultinject"
	"repro/sim"
)

// Job statuses recorded in the manifest.
const (
	StatusPending = "pending"
	StatusDone    = "done"
	StatusFailed  = "failed"
	// StatusQuarantined marks a worker panic: an engine/model fault, not
	// a bad cell config. `campaign status` surfaces these separately so
	// operators can tell the two apart at a glance.
	StatusQuarantined = "quarantined"
)

// JobRecord is one job's row in the manifest.
type JobRecord struct {
	Workload string     `json:"workload"`
	Policy   sim.Policy `json:"policy"`
	Variant  string     `json:"variant,omitempty"`
	Seed     uint64     `json:"seed"`
	Status   string     `json:"status"`
	Attempts int        `json:"attempts,omitempty"`
	Cached   bool       `json:"cached,omitempty"`
	Err      string     `json:"err,omitempty"`
	Cycles   uint64     `json:"cycles,omitempty"`
	IPC      float64    `json:"ipc,omitempty"`
	MS       int64      `json:"ms,omitempty"` // wall-clock milliseconds
	// Dump is the quarantine diagnostic dump path (panics only).
	Dump string `json:"dump,omitempty"`
}

// Manifest records a campaign's identity and per-job status as an
// append-only JSONL journal (manifest.jsonl at the cache root): a header
// line identifying the grid, then one line per job outcome, last writer
// wins. Appending a single line per finished job makes the manifest
// crash-tolerant by construction — a process killed mid-write leaves at
// most one torn final line, which replay drops, so the run resumes
// re-simulating only the cell whose record was lost. Save compacts the
// journal (atomic temp file + rename).
type Manifest struct {
	Grid string
	Jobs map[string]*JobRecord // keyed by cache key

	// Faults injects append faults for chaos tests (nil = disabled).
	Faults *faultinject.Injector

	mu      sync.Mutex
	path    string
	journal *os.File
	dropped int // torn journal lines discarded during load
}

// journalHeader is the first line of the journal.
type journalHeader struct {
	Manifest int    `json:"manifest"` // journal format version
	Grid     string `json:"grid"`
	Schema   int    `json:"schema"`
}

// journalLine is one job-outcome line.
type journalLine struct {
	Key string     `json:"key"`
	Rec *JobRecord `json:"rec"`
}

// ManifestPath returns the manifest journal location for a cache dir.
func ManifestPath(cacheDir string) string {
	return filepath.Join(cacheDir, "manifest.jsonl")
}

// legacyManifestPath is the pre-schema-4 single-JSON manifest.
func legacyManifestPath(cacheDir string) string {
	return filepath.Join(cacheDir, "manifest.json")
}

// NewManifest creates an empty manifest that saves to the given cache dir.
func NewManifest(cacheDir, grid string) *Manifest {
	return &Manifest{Grid: grid, Jobs: make(map[string]*JobRecord), path: ManifestPath(cacheDir)}
}

// LoadManifest reads the manifest from a cache dir; ok=false if none
// exists or its header is unreadable (in which case it is simply rebuilt).
// Torn record lines — the signature of a process killed mid-append — are
// dropped and counted (see Dropped): the affected cell just reruns.
func LoadManifest(cacheDir string) (*Manifest, bool) {
	path := ManifestPath(cacheDir)
	data, err := os.ReadFile(path)
	if err != nil {
		return loadLegacyManifest(cacheDir)
	}
	m := &Manifest{Jobs: make(map[string]*JobRecord), path: path}
	sawHeader := false
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		if !sawHeader {
			var h journalHeader
			if json.Unmarshal(line, &h) != nil || h.Manifest == 0 {
				return nil, false // header torn or foreign: rebuild
			}
			m.Grid = h.Grid
			sawHeader = true
			continue
		}
		var jl journalLine
		if json.Unmarshal(line, &jl) != nil || jl.Key == "" || jl.Rec == nil {
			m.dropped++
			continue
		}
		m.Jobs[jl.Key] = jl.Rec
	}
	if !sawHeader {
		return nil, false
	}
	return m, true
}

// loadLegacyManifest reads a pre-journal manifest.json.
func loadLegacyManifest(cacheDir string) (*Manifest, bool) {
	data, err := os.ReadFile(legacyManifestPath(cacheDir))
	if err != nil {
		return nil, false
	}
	var legacy struct {
		Grid string                `json:"grid"`
		Jobs map[string]*JobRecord `json:"jobs"`
	}
	if err := json.Unmarshal(data, &legacy); err != nil || legacy.Jobs == nil {
		return nil, false
	}
	return &Manifest{Grid: legacy.Grid, Jobs: legacy.Jobs, path: ManifestPath(cacheDir)}, true
}

// Dropped returns how many torn journal lines the load discarded.
func (m *Manifest) Dropped() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Reconcile registers every job of a new run: jobs not yet present (or
// previously failed/quarantined) become pending; jobs already done are
// left alone. Jobs whose config cannot be canonicalized are skipped here
// — the engine reports them as failed results.
func (m *Manifest) Reconcile(grid string, jobs []Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Grid = grid
	for _, j := range jobs {
		key, err := j.Key()
		if err != nil {
			continue
		}
		if rec, ok := m.Jobs[key]; ok && rec.Status == StatusDone {
			continue
		}
		rc := j.Config.Resolved()
		m.Jobs[key] = &JobRecord{
			Workload: j.Workload,
			Policy:   rc.Policy,
			Variant:  j.Variant,
			Seed:     rc.Seed,
			Status:   StatusPending,
		}
	}
}

// recordLocked builds and stores the in-memory row for one outcome,
// returning it. Caller holds m.mu.
func (m *Manifest) recordLocked(r JobResult) *JobRecord {
	rc := r.Job.Config.Resolved()
	rec := &JobRecord{
		Workload: r.Job.Workload,
		Policy:   rc.Policy,
		Variant:  r.Job.Variant,
		Seed:     rc.Seed,
		Status:   StatusDone,
		Attempts: r.Attempts,
		Cached:   r.Cached,
		Cycles:   r.Result.Cycles,
		IPC:      r.Result.IPC,
		MS:       r.Elapsed.Milliseconds(),
	}
	if r.Err != nil {
		rec.Status = StatusFailed
		rec.Err = r.Err.Error()
	}
	if r.Quarantined {
		rec.Status = StatusQuarantined
		rec.Dump = r.DumpPath
	}
	m.Jobs[r.Key] = rec
	return rec
}

// Record updates one job's outcome in memory only (Append also persists).
func (m *Manifest) Record(r JobResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recordLocked(r)
}

// Append updates one job's outcome and appends it to the journal — a
// single O_APPEND write, so a crash can tear at most the final line.
func (m *Manifest) Append(r JobResult) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec := m.recordLocked(r)
	if m.path == "" {
		return nil // in-memory manifest (no cache dir)
	}
	line, err := json.Marshal(journalLine{Key: r.Key, Rec: rec})
	if err != nil {
		return fmt.Errorf("campaign: encoding manifest line: %w", err)
	}
	line = append(line, '\n')
	switch m.Faults.Check(faultinject.SiteManifestAppend) {
	case faultinject.KindError:
		return fmt.Errorf("campaign: manifest append: %w", faultinject.ErrInjected)
	case faultinject.KindTruncate:
		// Simulated mid-write kill: half a line, no newline. Replay must
		// drop it and rerun only this cell.
		line = line[:len(line)/2]
	default:
		// KindNone and kinds scheduled for other sites: append proceeds.
	}
	if err := m.appendLocked(line); err != nil {
		return fmt.Errorf("campaign: manifest append: %w", err)
	}
	return nil
}

// appendLocked writes one raw line, lazily opening the journal (and
// writing the header when the journal is new). Caller holds m.mu.
func (m *Manifest) appendLocked(line []byte) error {
	if m.journal == nil {
		st, statErr := os.Stat(m.path)
		fresh := statErr != nil || st.Size() == 0
		f, err := os.OpenFile(m.path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		m.journal = f
		if fresh {
			hdr, err := json.Marshal(journalHeader{Manifest: 1, Grid: m.Grid, Schema: SchemaVersion})
			if err != nil {
				return err
			}
			if _, err := m.journal.Write(append(hdr, '\n')); err != nil {
				return err
			}
		} else if st != nil && st.Size() > 0 {
			// If the previous process died mid-append, the journal ends in
			// a torn fragment with no newline. Terminate it so the fragment
			// stays a single droppable line instead of swallowing the next
			// record appended after it.
			var last [1]byte
			if _, err := f.ReadAt(last[:], st.Size()-1); err == nil && last[0] != '\n' {
				if _, err := m.journal.Write([]byte{'\n'}); err != nil {
					return err
				}
			}
		}
	}
	_, err := m.journal.Write(line)
	return err
}

// Save compacts the journal atomically (temp file + rename): the header
// plus one line per job in sorted key order. The engine calls it at run
// start (after Reconcile) and at run end; between those points Append
// keeps the journal current line by line.
func (m *Manifest) Save() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.path == "" {
		return nil // in-memory manifest (no cache dir)
	}
	var buf bytes.Buffer
	hdr, err := json.Marshal(journalHeader{Manifest: 1, Grid: m.Grid, Schema: SchemaVersion})
	if err != nil {
		return fmt.Errorf("campaign: encoding manifest: %w", err)
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	keys := make([]string, 0, len(m.Jobs))
	for key := range m.Jobs {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		line, err := json.Marshal(journalLine{Key: key, Rec: m.Jobs[key]})
		if err != nil {
			return fmt.Errorf("campaign: encoding manifest: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	// The rename below replaces the inode the open journal handle points
	// at; close it so the next Append reopens the compacted file.
	if m.journal != nil {
		m.journal.Close()
		m.journal = nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(m.path), ".manifest.tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: saving manifest: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: saving manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: saving manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), m.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: saving manifest: %w", err)
	}
	// A compacted journal supersedes any pre-schema-4 manifest.json.
	os.Remove(legacyManifestPath(filepath.Dir(m.path)))
	return nil
}

// Close releases the journal handle (flushing is the OS's job: every
// append was a direct write).
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil {
		return nil
	}
	err := m.journal.Close()
	m.journal = nil
	return err
}

// Counts returns the number of jobs per status.
func (m *Manifest) Counts() (pending, done, failed, quarantined int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//simlint:ordered -- integer status counting is commutative
	for _, rec := range m.Jobs {
		switch rec.Status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		case StatusQuarantined:
			quarantined++
		default:
			pending++
		}
	}
	return
}

// lessRecord is the canonical row order: (workload, policy, variant,
// seed).
func lessRecord(a, b *JobRecord) bool {
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	if a.Policy != b.Policy {
		return a.Policy < b.Policy
	}
	if a.Variant != b.Variant {
		return a.Variant < b.Variant
	}
	return a.Seed < b.Seed
}

// sortRecords orders rows by (workload, policy, variant, seed) for stable
// output.
func sortRecords(out []*JobRecord) {
	sort.Slice(out, func(i, j int) bool { return lessRecord(out[i], out[j]) })
}

// Records returns every job record, sorted for stable output
// (`campaign status -v`).
func (m *Manifest) Records() []*JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*JobRecord, 0, len(m.Jobs))
	for _, rec := range m.Jobs {
		out = append(out, rec)
	}
	sortRecords(out)
	return out
}

// byStatus returns the records with the given status, sorted.
func (m *Manifest) byStatus(status string) []*JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*JobRecord
	for _, rec := range m.Jobs {
		if rec.Status == status {
			out = append(out, rec)
		}
	}
	sortRecords(out)
	return out
}

// Failures returns the failed job records, sorted for stable output.
func (m *Manifest) Failures() []*JobRecord { return m.byStatus(StatusFailed) }

// Quarantined returns the quarantined job records, sorted for stable
// output.
func (m *Manifest) Quarantined() []*JobRecord { return m.byStatus(StatusQuarantined) }
