package core

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/xrand"
)

// TestUndoInvariantProperty checks the paper's core invariant directly at
// the memory-system level: after speculative loads install and evict lines
// and the cleanup runs (invalidate + restore in reverse fill order), the L1
// tag state is exactly what it was before the speculation, and the L2 holds
// no line it did not hold before.
func TestUndoInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		cfg := memsys.DefaultConfig(1)
		// Small L1 with deterministic LRU so evictions are frequent.
		cfg.L1 = cache.Config{Name: "L1D", SizeBytes: 2 << 10, Ways: 2, Repl: cache.ReplLRU}
		cfg.RandomizeL2 = true
		cfg.Seed = seed
		h := memsys.New(cfg)

		now := arch.Cycle(0)
		drain := func() {
			for h.PendingLen() > 0 {
				now++
				h.Tick(now)
			}
		}
		// Warm with committed loads.
		lines := make([]arch.LineAddr, 40)
		for i := range lines {
			lines[i] = arch.LineAddr(rng.Intn(256))
			h.Load(0, lines[i], now, uint64(i), memsys.LoadOpts{}, nil)
			now += 3
		}
		drain()

		beforeL1 := h.L1(0).SnapshotTags()
		beforeL2 := h.L2().SnapshotTags()

		// Speculative burst to fresh and overlapping lines.
		type rec struct {
			line arch.LineAddr
			sefe cache.SEFE
			ord  uint64
		}
		var recs []*rec
		for i := 0; i < 12; i++ {
			line := arch.LineAddr(1000 + rng.Intn(64))
			r := &rec{line: line}
			h.Load(0, line, now, uint64(100+i), memsys.LoadOpts{Spec: true}, func(tx *memsys.Txn) {
				r.sefe = tx.SEFE
				r.ord = h.FillOrder(0)
			})
			recs = append(recs, r)
			now += 2
		}
		drain()

		// Cleanup via the policy's own batch algorithm.
		pol := New()
		var batch []CleanupOp
		for _, r := range recs {
			if r.sefe.L1Fill || r.sefe.L2Fill {
				batch = append(batch, CleanupOp{Line: r.line, SEFE: r.sefe, FillOrder: r.ord})
			}
		}
		pol.CleanupBatch(h, 0, batch, nil, now)

		afterL1 := h.L1(0).SnapshotTags()
		if len(afterL1) != len(beforeL1) {
			t.Logf("seed %d: L1 size %d -> %d", seed, len(beforeL1), len(afterL1))
			return false
		}
		for l := range beforeL1 {
			if !afterL1[l] {
				t.Logf("seed %d: L1 lost %v", seed, l)
				return false
			}
		}
		// The L2 may have lost victims (benign randomized evictions) but
		// must not have gained transient lines.
		afterL2 := h.L2().SnapshotTags()
		for l := range afterL2 {
			if !beforeL2[l] {
				t.Logf("seed %d: L2 gained transient %v", seed, l)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// --- failure injection ---

// TestEpochWraparound drives far more than 256 squashes through one
// machine, wrapping the modeled 8-bit EpochID many times, and checks
// architectural correctness against the reference interpreter.
func TestEpochWraparound(t *testing.T) {
	b := isa.NewBuilder("epoch-wrap")
	noise := arch.Addr(0x1_0000)
	for i := 0; i < 512; i++ {
		b.InitData(noise+arch.Addr(i*8), xrand.Hash64(uint64(i)))
	}
	b.Li(1, 700) // iterations: enough for > 300 squashes
	b.Li(2, int64(noise))
	b.Li(9, 0) // accumulator
	b.Label("loop")
	// Random-direction branch on loaded data.
	b.Alu(isa.AluMix, 3, 1, 1)
	b.AluI(isa.AluAnd, 3, 3, 0xFF8)
	b.Add(3, 2, 3)
	b.Load(4, 3, 0)
	b.AluI(isa.AluAnd, 5, 4, 1)
	b.Br(isa.CondNE, 5, 0, "odd")
	b.AddI(9, 9, 1)
	b.Jmp("join")
	b.Label("odd")
	b.AddI(9, 9, 3)
	b.Label("join")
	b.AddI(1, 1, -1)
	b.Br(isa.CondNE, 1, 0, "loop")
	b.Halt()
	prog := b.Build()

	ref := isa.NewInterp(prog)
	ref.Run(0)

	h := memsys.New(HierarchyConfig(memsys.DefaultConfig(1)))
	ccfg := cpu.DefaultConfig()
	ccfg.MaxCycles = 50_000_000
	m := cpu.New(ccfg, prog, h, New())
	st := m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if st.Squashes < 256 {
		t.Fatalf("only %d squashes; epoch wraparound not exercised", st.Squashes)
	}
	if m.Reg(9) != ref.Reg(9) {
		t.Fatalf("accumulator %d, interpreter says %d", m.Reg(9), ref.Reg(9))
	}
}

// TestMSHRExhaustionPressure shrinks the L1 MSHR to 2 entries and issues a
// burst of independent cold loads: the machine must throttle and still
// produce correct results.
func TestMSHRExhaustionPressure(t *testing.T) {
	b := isa.NewBuilder("mshr-pressure")
	b.Li(9, 0)
	for i := 0; i < 24; i++ {
		b.Li(1, int64(0x2_0000+i*4096)) // distinct lines and sets
		b.Load(isa.Reg(2), 1, 0)
		b.Add(9, 9, 2)
		b.InitData(arch.Addr(0x2_0000+i*4096), uint64(i+1))
	}
	b.Halt()
	prog := b.Build()

	ref := isa.NewInterp(prog)
	ref.Run(0)

	hcfg := memsys.DefaultConfig(1)
	hcfg.L1MSHRs = 2
	hcfg.L2MSHRs = 2
	h := memsys.New(hcfg)
	ccfg := cpu.DefaultConfig()
	ccfg.MaxCycles = 5_000_000
	m := cpu.New(ccfg, prog, h, New())
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt under MSHR pressure")
	}
	if m.Reg(9) != ref.Reg(9) {
		t.Fatalf("checksum %d, want %d", m.Reg(9), ref.Reg(9))
	}
	if h.L1MSHR(0).Stats.Full == 0 {
		t.Fatal("the MSHR was never full; pressure not exercised")
	}
}

// TestQueuePressure fills the LQ and SQ beyond their capacity with
// back-to-back memory operations.
func TestQueuePressure(t *testing.T) {
	b := isa.NewBuilder("queue-pressure")
	base := arch.Addr(0x3_0000)
	b.Li(1, int64(base))
	b.Li(9, 0)
	for i := 0; i < 50; i++ { // > LQ/SQ size of 32
		b.Store(1, int64(i*8), 9)
		b.Load(isa.Reg(3), 1, int64(i*8))
		b.Add(9, 9, 3)
		b.AddI(9, 9, 1)
	}
	b.Halt()
	prog := b.Build()
	ref := isa.NewInterp(prog)
	ref.Run(0)

	h := memsys.New(memsys.DefaultConfig(1))
	ccfg := cpu.DefaultConfig()
	ccfg.MaxCycles = 5_000_000
	m := cpu.New(ccfg, prog, h, New())
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt under queue pressure")
	}
	if m.Reg(9) != ref.Reg(9) {
		t.Fatalf("checksum %d, want %d", m.Reg(9), ref.Reg(9))
	}
}

// TestDeepCallChain nests calls beyond the 16-entry RAS (spilling the link
// register to memory, as compiled code would), so return predictions
// mispredict and squash — architectural results must still be exact.
func TestDeepCallChain(t *testing.T) {
	const depth = 24
	b := isa.NewBuilder("deep-calls")
	sp := arch.Addr(0x4_0000)
	b.Li(20, int64(sp)) // stack pointer
	b.Li(9, 0)
	b.Call(labelOf(0))
	b.Halt()
	for d := 0; d < depth; d++ {
		b.Label(labelOf(d))
		// push link
		b.Store(20, 0, 31)
		b.AddI(20, 20, 8)
		b.AddI(9, 9, 1)
		if d+1 < depth {
			b.Call(labelOf(d + 1))
		}
		// pop link
		b.AddI(20, 20, -8)
		b.Load(31, 20, 0)
		b.Ret()
	}
	prog := b.Build()
	ref := isa.NewInterp(prog)
	ref.Run(0)

	h := memsys.New(memsys.DefaultConfig(1))
	ccfg := cpu.DefaultConfig()
	ccfg.MaxCycles = 5_000_000
	m := cpu.New(ccfg, prog, h, New())
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if m.Reg(9) != uint64(depth) || m.Reg(9) != ref.Reg(9) {
		t.Fatalf("depth counter %d, want %d", m.Reg(9), depth)
	}
}

func labelOf(d int) string { return "fn" + string(rune('A'+d)) }
