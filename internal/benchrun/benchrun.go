// Package benchrun executes the repository's core-loop benchmarks via the
// go tool and records the numbers as a machine-readable baseline file, so
// successive PRs can compare against a committed perf trajectory instead
// of anecdotes. The parser understands the standard `go test -bench`
// output format, including -benchmem columns and ReportMetric extras.
package benchrun

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metric is one named per-op measurement of a benchmark line: the
// standard ns/op, B/op, allocs/op columns plus anything the benchmark
// added with b.ReportMetric (e.g. sim-instructions/s).
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped
	// (BenchmarkCacheLookup-8 → BenchmarkCacheLookup).
	Name       string  `json:"name"`
	Procs      int     `json:"procs"` // the stripped -N suffix (0 if absent)
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// OpsPerSec is derived from NsPerOp — the "how fast is the core loop"
	// number baselines are compared on.
	OpsPerSec   float64  `json:"ops_per_sec"`
	BytesPerOp  float64  `json:"bytes_per_op"`
	AllocsPerOp float64  `json:"allocs_per_op"`
	Extra       []Metric `json:"extra,omitempty"` // ReportMetric columns, sorted by name
}

// Baseline is the file format of BENCH_PR*.json: environment identity
// plus one Result per benchmark, in output order.
type Baseline struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Pattern   string   `json:"pattern"`
	BenchTime string   `json:"bench_time"`
	Date      string   `json:"date"` // RFC 3339, recording time
	Results   []Result `json:"results"`
}

// Parse reads `go test -bench` output and returns the benchmark lines in
// order. Non-benchmark lines (the goos/pkg preamble, PASS, ok) are
// skipped; a line that starts like a benchmark but does not parse is an
// error, so column drift cannot silently produce an empty baseline.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchrun: reading output: %w", err)
	}
	return out, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkCacheLookup-8   37735849   31.86 ns/op   0 B/op   0 allocs/op
//	BenchmarkSimulatorThroughput-8   37   31.2 ms/op   2052622 sim-instructions/s
func parseLine(line string) (Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, fmt.Errorf("benchrun: malformed benchmark line %q", line)
	}
	var res Result
	res.Name = fields[0]
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Procs = procs
			res.Name = res.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, fmt.Errorf("benchrun: bad iteration count in %q: %w", line, err)
	}
	res.Iterations = iters

	// The rest are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, fmt.Errorf("benchrun: bad metric value in %q: %w", line, err)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "us/op", "µs/op":
			res.NsPerOp = v * 1e3
		case "ms/op":
			res.NsPerOp = v * 1e6
		case "s/op":
			res.NsPerOp = v * 1e9
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			res.Extra = append(res.Extra, Metric{Name: unit, Value: v})
		}
	}
	if res.NsPerOp > 0 {
		res.OpsPerSec = 1e9 / res.NsPerOp
	}
	sort.Slice(res.Extra, func(i, j int) bool { return res.Extra[i].Name < res.Extra[j].Name })
	return res, nil
}

// Options configures a benchmark run.
type Options struct {
	Dir       string        // package directory to run in (default ".")
	Pattern   string        // -bench regexp (required)
	BenchTime string        // -benchtime (default "0.3s": baselines, not publication numbers)
	Timeout   time.Duration // overall go-test timeout (default 10m)
}

// Run executes `go test -run ^$ -bench <pattern> -benchmem` in the target
// directory and parses the results. The benchmark binary's own output is
// the source of truth; stderr is folded into the error on failure.
func Run(opts Options) ([]Result, error) {
	if opts.Pattern == "" {
		return nil, fmt.Errorf("benchrun: empty -bench pattern")
	}
	if opts.Dir == "" {
		opts.Dir = "."
	}
	if opts.BenchTime == "" {
		opts.BenchTime = "0.3s"
	}
	if opts.Timeout == 0 {
		opts.Timeout = 10 * time.Minute
	}
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", opts.Pattern, "-benchmem", "-benchtime", opts.BenchTime,
		"-timeout", opts.Timeout.String(), ".")
	cmd.Dir = opts.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = strings.TrimSpace(stdout.String())
		}
		return nil, fmt.Errorf("benchrun: go test -bench failed: %v: %s", err, msg)
	}
	results, err := Parse(&stdout)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("benchrun: pattern %q matched no benchmarks", opts.Pattern)
	}
	return results, nil
}

// NewBaseline stamps results with the recording environment.
func NewBaseline(opts Options, results []Result, now time.Time) Baseline {
	return Baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Pattern:   opts.Pattern,
		BenchTime: opts.BenchTime,
		Date:      now.UTC().Format(time.RFC3339),
		Results:   results,
	}
}
