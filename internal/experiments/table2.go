package experiments

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/stats"
)

// Table2 regenerates Table 2 as a directed experiment: the two coherence
// transitions a transient instruction can force in a remote core, and a
// check that CleanupSpec applies the paper's mitigation to each.
//
//   - M,E -> S caused by a transient load of shared data: the load's first
//     attempt uses GetS-Safe, fails against the remote owner, and retries
//     with plain GetS only on the correct path.
//   - M,E,S -> I caused by a transient clflush: the flush executes only at
//     commit, so a squashed clflush never invalidates anything.
func (r *Runner) Table2() Report {
	t := stats.NewTable("Table 2: Transient coherence transitions and mitigations",
		"Old state", "New state", "Transient instruction", "Mitigation", "Verified")

	remoteDelayed := verifyRemoteLoadDelay()
	flushDelayed := verifyFlushDelay()
	yn := func(ok bool) string {
		if ok {
			return "yes"
		}
		return "NO"
	}
	t.AddRow("M,E", "S", "Load shared data", "Retry on correct-path (GetS-Safe)", yn(remoteDelayed))
	t.AddRow("M,E,S", "I", "clflush", "Delay till correct-path (commit)", yn(flushDelayed))

	return Report{
		ID: "table2", Title: "Coherence-transition mitigations",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Both mitigations are functional checks: the remote copy's state must be unchanged while the",
			"initiating instruction is squashable, and change only once it is unsquashable (or never, if squashed).",
		},
	}
}

// verifyRemoteLoadDelay builds a two-core scenario: core 1 owns a line in M;
// core 0 speculatively loads it under CleanupSpec. The check passes if the
// remote copy stays M while the load is squashable (GetS-Safe failed) and is
// downgraded only after the load becomes unsquashable.
func verifyRemoteLoadDelay() bool {
	hcfg := core.HierarchyConfig(memsys.DefaultConfig(2))
	h := memsys.New(hcfg)
	remote := arch.Addr(0x7000)
	h.Store(1, remote.Line(), 0) // core 1 takes M

	b := isa.NewBuilder("t2-remote")
	flag := arch.Addr(0x9000)
	b.InitData(flag, 1)
	b.Li(3, int64(flag))
	b.Load(4, 3, 0) // slow branch condition
	b.Br(isa.CondEQ, 4, 0, "skip")
	b.Li(5, int64(remote))
	b.Load(6, 5, 0) // speculative load to the remote-M line
	b.Halt()
	b.Label("skip")
	b.Halt()

	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 1_000_000
	m := cpu.New(cfg, b.Build(), h, core.New())
	m.Run(0)
	return m.Halted() &&
		h.Stats.SafeGetSDelays > 0 && // first attempt was delayed
		h.L1(1).State(remote.Line()) == arch.Shared // correct-path retry downgraded
}

// verifyFlushDelay builds a squashed transient clflush: the flushed line
// must remain cached because the flush never reached commit.
func verifyFlushDelay() bool {
	hcfg := core.HierarchyConfig(memsys.DefaultConfig(1))
	h := memsys.New(hcfg)

	victim := arch.Addr(0x5000)
	b := isa.NewBuilder("t2-clflush")
	flag := arch.Addr(0x9000)
	b.InitData(flag, 1)
	b.Li(1, int64(victim))
	b.Load(2, 1, 0) // cache the victim line
	b.Fence()
	b.Li(3, int64(flag))
	b.Load(4, 3, 0) // slow branch condition
	// Actually taken, predicted not-taken: the wrong path holds the
	// transient clflush.
	b.Br(isa.CondNE, 4, 0, "correct")
	b.CLFlush(1, 0) // transient clflush (squashed before commit)
	b.Nop()
	b.Halt()
	b.Label("correct")
	b.Halt()

	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 1_000_000
	m := cpu.New(cfg, b.Build(), h, core.New())
	m.Run(0)
	m.DrainMemory()
	if !m.Halted() || m.Stats.Squashes == 0 {
		return false
	}
	// The line must still be cached: the squashed clflush never executed.
	return h.ProbeLevel(0, victim.Line()) != memsys.LevelMem
}

// All runs every experiment in paper order.
func (r *Runner) All() []Report {
	return []Report{
		r.Table1(), r.Table2(), r.Table3(), r.Table5(), r.Table6(),
		r.Table6Extended(),
		r.Figure4(), r.Figure9(), r.Figure11(), r.Figure12(),
		r.Figure13(), r.Figure14(), r.Figure15(), r.Storage(),
		r.Multiprogrammed(),
	}
}

// ByID returns the named experiment runner output, or an error message
// report listing valid ids.
func (r *Runner) ByID(id string) (Report, error) {
	switch id {
	case "table1":
		return r.Table1(), nil
	case "table2":
		return r.Table2(), nil
	case "table3":
		return r.Table3(), nil
	case "table5":
		return r.Table5(), nil
	case "table6":
		return r.Table6(), nil
	case "table6x":
		return r.Table6Extended(), nil
	case "fig4":
		return r.Figure4(), nil
	case "fig9":
		return r.Figure9(), nil
	case "fig11":
		return r.Figure11(), nil
	case "fig12":
		return r.Figure12(), nil
	case "fig12var":
		return r.Figure12Variance(), nil
	case "fig13":
		return r.Figure13(), nil
	case "fig14":
		return r.Figure14(), nil
	case "fig15":
		return r.Figure15(), nil
	case "storage":
		return r.Storage(), nil
	case "mp2":
		return r.Multiprogrammed(), nil
	}
	return Report{}, fmt.Errorf("unknown experiment %q (valid: table1 table2 table3 table5 table6 table6x fig4 fig9 fig11 fig12 fig12var fig13 fig14 fig15 storage mp2)", id)
}
