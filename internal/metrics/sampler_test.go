package metrics

import "testing"

func testRegistry() (*Registry, *uint64) {
	reg := NewRegistry()
	cycles := new(uint64)
	reg.BindCounter("cycles", cycles)
	reg.GaugeFunc("occ", func() float64 { return float64(*cycles % 4) })
	return reg, cycles
}

func TestSamplerDisabled(t *testing.T) {
	reg, _ := testRegistry()
	s := NewSampler(reg, 0)
	if s != nil {
		t.Fatal("every=0 must return the nil (disabled) sampler")
	}
	// The nil sampler is a valid no-op everywhere the core touches it.
	s.Tick(100)
	s.Flush(200)
	if s.Samples() != nil || s.Every() != 0 {
		t.Fatal("nil sampler leaked state")
	}
}

func TestSamplerShorterThanOneInterval(t *testing.T) {
	reg, cycles := testRegistry()
	s := NewSampler(reg, 1000)
	for c := uint64(1); c <= 42; c++ {
		*cycles = c
		s.Tick(c)
	}
	if len(s.Samples()) != 0 {
		t.Fatalf("%d samples before any boundary, want 0", len(s.Samples()))
	}
	s.Flush(42)
	got := s.Samples()
	if len(got) != 1 || got[0].Cycle != 42 || got[0].Counters["cycles"] != 42 {
		t.Fatalf("flush of a short run: %+v, want one sample at cycle 42", got)
	}
}

func TestSamplerIntervalsAndFinalFlush(t *testing.T) {
	reg, cycles := testRegistry()
	s := NewSampler(reg, 10)
	for c := uint64(1); c <= 25; c++ {
		*cycles = c
		s.Tick(c)
	}
	if got := s.Samples(); len(got) != 2 || got[0].Cycle != 10 || got[1].Cycle != 20 {
		t.Fatalf("interval samples: %+v, want cycles 10 and 20", got)
	}
	s.Flush(25)
	got := s.Samples()
	if len(got) != 3 || got[2].Cycle != 25 {
		t.Fatalf("after flush: %+v, want final partial sample at 25", got)
	}
	// Counters are cumulative: the final sample holds the end-of-run value.
	if got[2].Counters["cycles"] != 25 {
		t.Fatalf("final sample counters = %v, want cycles=25", got[2].Counters)
	}
	// Gauges ride along on every sample.
	if _, ok := got[0].Gauges["occ"]; !ok {
		t.Fatal("sample missing gauge")
	}
	// Flush is idempotent for a given final cycle.
	s.Flush(25)
	if len(s.Samples()) != 3 {
		t.Fatal("second flush duplicated the final sample")
	}
}

func TestSamplerFlushOnExactBoundary(t *testing.T) {
	reg, cycles := testRegistry()
	s := NewSampler(reg, 10)
	for c := uint64(1); c <= 20; c++ {
		*cycles = c
		s.Tick(c)
	}
	s.Flush(20)
	if got := s.Samples(); len(got) != 2 || got[1].Cycle != 20 {
		t.Fatalf("run ending on a boundary: %+v, want exactly 2 samples", got)
	}
}

func TestRates(t *testing.T) {
	samples := []Sample{
		{Cycle: 10, Counters: map[string]uint64{"n": 20}},
		{Cycle: 20, Counters: map[string]uint64{"n": 25}},
		{Cycle: 25, Counters: map[string]uint64{"n": 25}},
	}
	got := Rates(samples, "n")
	want := []float64{2, 0.5, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Rates = %v, want %v", got, want)
		}
	}
	if r := Rates(samples, "missing"); r[0] != 0 || r[1] != 0 {
		t.Fatalf("missing counter rates = %v, want zeros", r)
	}
}

func TestRatioDeltas(t *testing.T) {
	samples := []Sample{
		{Cycle: 10, Counters: map[string]uint64{"miss": 2, "acc": 10}},
		{Cycle: 20, Counters: map[string]uint64{"miss": 7, "acc": 20}},
		{Cycle: 30, Counters: map[string]uint64{"miss": 7, "acc": 20}},
	}
	got := RatioDeltas(samples, "miss", "acc")
	want := []float64{0.2, 0.5, 0} // denominator stalled in the last interval
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RatioDeltas = %v, want %v", got, want)
		}
	}
}
