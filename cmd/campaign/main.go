// Command campaign runs experiment grids (workload × policy × seed) on a
// parallel worker pool with a durable, content-addressed result cache, so
// interrupted or re-tweaked campaigns only simulate the cells that are
// actually missing.
//
// Usage:
//
//	campaign run    -grid all -parallel 4 -cache .campaign
//	campaign run    -grid headline -seeds 1..5 -csv results.csv
//	campaign run    -workloads astar,gcc -policies nonsecure,cleanupspec
//	campaign status -cache .campaign
//	campaign export -cache .campaign -csv all.csv
//	campaign fsck   -cache .campaign -prune
//
// Grids: all | paper | headline | quick (see internal/campaign.GridByName).
// The cache directory is shared with `paperbench -cache`: a paperbench
// pass warms the campaign cache and vice versa.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "fsck":
		err = cmdFsck(os.Args[2:])
	case "gc":
		err = cmdGC(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "work":
		err = cmdWork(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "campaign: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		// Package-level errors already carry the "campaign: " prefix;
		// don't double it.
		fmt.Fprintln(os.Stderr, "campaign:", strings.TrimPrefix(err.Error(), "campaign: "))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  campaign run    [flags]   expand a grid and run the missing cells
  campaign status [flags]   show per-job status from a cache's manifest
  campaign export [flags]   dump every cached result as CSV
  campaign fsck   [flags]   scan a cache for corrupt/orphaned entries
  campaign gc     [flags]   evict cache entries by age / grid membership
  campaign replay [flags] <dump>  re-run a quarantined cell, full-depth trace
  campaign serve  [flags]   coordinate a distributed campaign over HTTP
  campaign work   [flags]   join a served campaign as a worker

run flags:
  -grid name          predefined grid: %s (default "headline")
  -workloads a,b      override the grid's workload list
  -policies p,q       override the grid's policy list (see below)
  -seeds 1..5|1,7,42  seed sweep (default: seed 1)
  -instructions N     measurement window (default 150000)
  -parallel N         worker count (default GOMAXPROCS = %d)
  -cache dir          durable result cache (default ".campaign"; "" = memory only)
  -csv file           write per-cell results as CSV ("-" = stdout)
  -q                  suppress progress lines
  -http addr          serve /status and /metrics during the run (e.g. :8080)
  -http-linger dur    keep the -http server up after the run (CI scrapes)
  -span-out file      write the run's span trace as JSONL
  -span-trace file    write the run's span trace as Chrome trace JSON

status/export flags:
  -cache dir          cache directory (default ".campaign")
  -v                  (status) per-cell rows: wall time, cache hit/miss, IPC
  -csv file           export destination ("-" = stdout, the default)

fsck flags:
  -cache dir          cache directory (default ".campaign")
  -prune              delete corrupt entries and orphaned temp files
                      (pruned cells simply re-simulate on the next run)
  -deep               cross-check manifest journal rows against cache
                      entries in both directions (done rows without a
                      backing entry; entries without a journal row)

gc flags:
  -cache dir          cache directory (default ".campaign")
  -max-age dur        evict entries older than this (e.g. 720h)
  -grid name          evict entries not in this grid (honors -workloads,
                      -policies, -seeds, -instructions)
  -dry-run            report what would be evicted, touch nothing

replay flags:
  -depth N            replay trace capacity in events (default %d)
  -trace-out file     write the replay's full event trace ("-" = stdout)

serve flags:
  -grid/-workloads/-policies/-seeds/-instructions   as "run"
  -cache dir          shared cache + journals (default ".campaign")
  -http addr          listen address (default ":8080")
  -ttl N              lease lifetime in ticks (default %d)
  -tick dur           logical clock period (default 1s)
  -span-out file      write lease/heartbeat/reclaim spans as JSONL at exit

work flags:
  -coordinator url    coordinator base URL (required, e.g. http://host:8080)
  -cache dir          worker-local cache (default ".campaign-worker")
  -id name            worker identity (default host-pid)
  -renew-every dur    heartbeat period (default 5s)

policies: %s
`, strings.Join(campaign.GridNames(), "|"), runtime.GOMAXPROCS(0),
		campaign.ReplayDepth, fabric.DefaultTTLTicks, policyNames())
}

func policyNames() string {
	var names []string
	for _, p := range sim.Policies() {
		names = append(names, string(p))
	}
	return strings.Join(names, " ")
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	var (
		gridName     = fs.String("grid", "headline", "predefined grid: "+strings.Join(campaign.GridNames(), "|"))
		workloadsF   = fs.String("workloads", "", "comma-separated workload override")
		policiesF    = fs.String("policies", "", "comma-separated policy override")
		seedsF       = fs.String("seeds", "", "seed sweep: inclusive range 1..5 or list 1,7,42")
		instructions = fs.Uint64("instructions", 150_000, "committed instructions per measurement window")
		parallel     = fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		cacheDir     = fs.String("cache", ".campaign", "result cache directory (empty = memory only)")
		csvOut       = fs.String("csv", "", "write per-cell results as CSV to this file (- = stdout)")
		quiet        = fs.Bool("q", false, "suppress progress lines")
		httpAddr     = fs.String("http", "", "serve /status and /metrics on this address while the campaign runs (e.g. :8080)")
		httpLinger   = fs.Duration("http-linger", 0, "keep the -http server up this long after the run finishes")
		spanOut      = fs.String("span-out", "", "write the run's span trace as JSONL to this file")
		spanTrace    = fs.String("span-trace", "", "write the run's span trace as Chrome trace JSON to this file")
	)
	fs.Parse(args)

	grid, jobs, err := resolveGrid(*gridName, *workloadsF, *policiesF, *seedsF, *instructions)
	if err != nil {
		return err
	}

	eng := campaign.NewEngine()
	eng.Workers = *parallel
	if !*quiet {
		eng.Reporter = campaign.NewReporter(os.Stderr)
	}
	if *cacheDir != "" {
		cache, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			// Graceful degradation: an unopenable cache dir (bad perms,
			// read-only volume) should not stop the science — run
			// memory-only and say so.
			fmt.Fprintf(os.Stderr, "campaign: warning: %v; running without a cache\n", err)
		} else {
			if !*quiet {
				cache.Warn = func(msg string) { fmt.Fprintln(os.Stderr, "campaign: warning:", msg) }
			}
			eng.Cache = cache
			m, ok := campaign.LoadManifest(*cacheDir)
			if !ok {
				m = campaign.NewManifest(*cacheDir, grid.Name)
			}
			m.Grid = grid.Name
			eng.Manifest = m
		}
	}

	// Any observability flag turns the span plane on; with none set the
	// engine keeps its zero-alloc untraced hot path.
	var sink *obs.Sink
	if *httpAddr != "" || *spanOut != "" || *spanTrace != "" {
		sink = obs.NewSink()
		eng.Trace = obs.NewTracer(sink)
	}
	if *httpAddr != "" {
		if err := serveHTTP(*httpAddr, eng, sink); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "campaign: grid %q: %d workload(s) x %d policy(ies) x %d seed(s) = %d job(s), %d worker(s)\n",
		grid.Name, len(grid.Workloads), len(grid.Policies), max(1, len(grid.Seeds)), len(jobs), workers(*parallel))
	results := eng.Run(jobs)

	if sink != nil {
		if err := writeSpans(sink, *spanOut, *spanTrace); err != nil {
			return err
		}
	}

	fmt.Println(campaign.SummaryTable(results).String())

	if *csvOut != "" {
		w := os.Stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := campaign.ResultsCSV(w, results); err != nil {
			return err
		}
		if *csvOut != "-" {
			fmt.Fprintln(os.Stderr, "campaign: wrote", *csvOut)
		}
	}

	failed := campaign.Failed(results)
	quarantined := campaign.Quarantined(results)
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d job(s) failed:\n", len(failed))
		for _, r := range failed {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", r.Job, r.Err)
		}
	}
	if len(quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "campaign: %d job(s) quarantined (worker panic, see dumps):\n", len(quarantined))
		for _, r := range quarantined {
			line := fmt.Sprintf("  %s: %v", r.Job, r.Err)
			if r.DumpPath != "" {
				line += " (dump: " + r.DumpPath + ")"
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	// Linger after the results are final, so a scraper (the CI smoke
	// test) can read the end-of-run /status and /metrics deterministically.
	if *httpAddr != "" && *httpLinger > 0 {
		fmt.Fprintf(os.Stderr, "campaign: run finished; serving for another %s\n", *httpLinger)
		time.Sleep(*httpLinger)
	}
	if n := len(failed) + len(quarantined); n > 0 {
		return fmt.Errorf("%d of %d jobs did not complete (rerun to retry just those cells)", n, len(results))
	}
	return nil
}

// serveHTTP starts the observability endpoints in the background:
// /status (per-cell manifest state as JSON) and /metrics (text
// exposition of the span-sink counters plus live job-state gauges).
func serveHTTP(addr string, eng *campaign.Engine, sink *obs.Sink) error {
	reg := metrics.NewRegistry()
	sink.AttachMetrics(reg)
	if m := eng.Manifest; m != nil {
		// Live job-state gauges read the manifest under its own lock, so
		// scrapes mid-run see a consistent snapshot.
		count := func(pick func(p, d, f, q int) int) func() float64 {
			return func() float64 {
				p, d, f, q := m.Counts()
				return float64(pick(p, d, f, q))
			}
		}
		reg.GaugeFunc("campaign.jobs_pending", count(func(p, _, _, _ int) int { return p }))
		reg.GaugeFunc("campaign.jobs_done", count(func(_, d, _, _ int) int { return d }))
		reg.GaugeFunc("campaign.jobs_failed", count(func(_, _, f, _ int) int { return f }))
		reg.GaugeFunc("campaign.jobs_quarantined", count(func(_, _, _, q int) int { return q }))
	}
	mux := http.NewServeMux()
	mux.Handle("/status", obs.StatusHandler(func() any {
		if eng.Manifest == nil {
			return campaign.StatusSnapshot{}
		}
		return eng.Manifest.Status()
	}))
	mux.Handle("/metrics", obs.MetricsHandler(reg.Snapshot))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("campaign: -http %s: %w", addr, err)
	}
	fmt.Fprintf(os.Stderr, "campaign: serving /status and /metrics on http://%s\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "campaign: http server:", err)
		}
	}()
	return nil
}

// writeSpans exports the collected span trace: JSONL in canonical span
// order (wall-clock durations preserved — only the order is normalized)
// and/or Chrome trace JSON for the Perfetto UI.
func writeSpans(sink *obs.Sink, jsonlPath, chromePath string) error {
	spans := sink.Spans()
	obs.SortCanonical(spans)
	if st := sink.Stats(); st.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "campaign: warning: span sink dropped %d span(s) (cap %d)\n", st.Dropped, sink.MaxSpans)
	}
	if jsonlPath != "" {
		f, err := os.Create(jsonlPath)
		if err != nil {
			return err
		}
		if err := obs.WriteJSONL(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "campaign: wrote %d span(s) to %s\n", len(spans), jsonlPath)
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := metrics.WriteChromeEvents(f, obs.ChromeEvents(spans, 1)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "campaign: wrote Chrome trace to", chromePath)
	}
	return nil
}

func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("campaign fsck", flag.ExitOnError)
	cacheDir := fs.String("cache", ".campaign", "cache directory")
	prune := fs.Bool("prune", false, "delete corrupt entries and orphaned temp files")
	deep := fs.Bool("deep", false, "cross-check manifest journal rows against cache entries")
	fs.Parse(args)

	rep, err := campaign.FsckWith(*cacheDir, campaign.FsckOptions{Prune: *prune, Deep: *deep})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if !rep.Clean() && !*prune {
		return fmt.Errorf("cache at %s has damage (rerun with -prune to repair; pruned cells re-simulate)", *cacheDir)
	}
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	cacheDir := fs.String("cache", ".campaign", "cache directory")
	verbose := fs.Bool("v", false, "per-cell rows: wall time, cache hit/miss, IPC")
	fs.Parse(args)

	m, ok := campaign.LoadManifest(*cacheDir)
	if !ok {
		return fmt.Errorf("no manifest at %s (run `campaign run -cache %s` first)", campaign.ManifestPath(*cacheDir), *cacheDir)
	}
	pending, done, failed, quarantined := m.Counts()
	line := fmt.Sprintf("campaign %q at %s: %d done, %d failed, %d pending", m.Grid, *cacheDir, done, failed, pending)
	if quarantined > 0 {
		line += fmt.Sprintf(", %d quarantined", quarantined)
	}
	fmt.Println(line)
	records := m.Records()
	hits, misses := 0, 0
	var wall int64
	for _, rec := range records {
		if rec.Status != campaign.StatusDone {
			continue
		}
		if rec.Cached {
			hits++
		} else {
			misses++
		}
		wall += rec.MS
	}
	fmt.Printf("last run: %d cache hit(s), %d simulated, %.1fs total wall time\n", hits, misses, float64(wall)/1000)
	if cache, err := campaign.OpenCache(*cacheDir); err == nil {
		if n, err := cache.Len(); err == nil {
			fmt.Printf("cache: %d result file(s)\n", n)
		}
	}
	if *verbose {
		t := stats.NewTable("", "Cell", "Status", "Source", "Wall", "IPC")
		for _, rec := range records {
			cell := rec.Workload + "/" + string(rec.Policy)
			if rec.Variant != "" {
				cell += "/" + rec.Variant
			}
			if rec.Seed > 1 {
				cell += fmt.Sprintf("/seed%d", rec.Seed)
			}
			source := "-"
			if rec.Status == campaign.StatusDone {
				source = "sim"
				if rec.Cached {
					source = "cache"
				}
			}
			ipc := "-"
			if rec.IPC > 0 {
				ipc = fmt.Sprintf("%.3f", rec.IPC)
			}
			t.AddRow(cell, rec.Status, source, fmt.Sprintf("%dms", rec.MS), ipc)
		}
		fmt.Print(t.String())
	}
	for _, rec := range m.Failures() {
		fmt.Printf("  FAILED %s/%s seed %d: %s\n", rec.Workload, rec.Policy, rec.Seed, rec.Err)
	}
	// Quarantined cells are engine faults, not bad configs — listed
	// separately with their reason and dump so the distinction is visible.
	for _, rec := range m.Quarantined() {
		line := fmt.Sprintf("  QUARANTINED %s/%s seed %d: %s", rec.Workload, rec.Policy, rec.Seed, rec.Err)
		if rec.Dump != "" {
			line += " (dump: " + rec.Dump + ")"
		}
		fmt.Println(line)
	}
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("campaign export", flag.ExitOnError)
	cacheDir := fs.String("cache", ".campaign", "cache directory")
	csvOut := fs.String("csv", "-", "CSV destination (- = stdout)")
	fs.Parse(args)

	cache, err := campaign.OpenCache(*cacheDir)
	if err != nil {
		return err
	}
	entries, err := cache.Entries()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("cache at %s is empty", *cacheDir)
	}
	w := os.Stdout
	if *csvOut != "-" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := campaign.EntriesCSV(w, entries); err != nil {
		return err
	}
	if *csvOut != "-" {
		fmt.Fprintf(os.Stderr, "campaign: exported %d result(s) to %s\n", len(entries), *csvOut)
	}
	return nil
}

// resolveGrid expands a named grid with the CLI's override flags applied
// — the shared front half of `campaign run`, `campaign serve`, and
// `campaign gc -grid`.
func resolveGrid(gridName, workloadsF, policiesF, seedsF string, instructions uint64) (campaign.Grid, []campaign.Job, error) {
	seeds, err := campaign.ParseSeeds(seedsF)
	if err != nil {
		return campaign.Grid{}, nil, err
	}
	grid, err := campaign.GridByName(gridName, instructions, seeds)
	if err != nil {
		return campaign.Grid{}, nil, err
	}
	if workloadsF != "" {
		grid.Workloads = campaign.ParseList(workloadsF)
		for _, wl := range grid.Workloads {
			if _, ok := workloadKnown(wl); !ok {
				return campaign.Grid{}, nil, fmt.Errorf("unknown workload %q (valid: %s)", wl, strings.Join(sim.Workloads(), " "))
			}
		}
	}
	if policiesF != "" {
		grid.Policies = nil
		for _, p := range campaign.ParseList(policiesF) {
			grid.Policies = append(grid.Policies, sim.Policy(p))
		}
	}
	jobs := grid.Jobs()
	if len(jobs) == 0 {
		return campaign.Grid{}, nil, fmt.Errorf("grid %q expanded to zero jobs", grid.Name)
	}
	return grid, jobs, nil
}

func workloadKnown(name string) (string, bool) {
	for _, wl := range sim.Workloads() {
		if wl == name {
			return wl, true
		}
	}
	return "", false
}

func workers(parallel int) int {
	if parallel > 0 {
		return parallel
	}
	return runtime.GOMAXPROCS(0)
}
