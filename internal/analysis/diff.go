package analysis

import (
	"fmt"
	"strings"
)

// unifiedDiff renders a unified diff (3 lines of context) between two
// byte slices, labeled aName/bName, for `simlint -fix -diff` previews.
// Returns "" when the inputs are equal. The implementation is a plain
// longest-common-subsequence table — simlint diffs single source files,
// where quadratic cost is irrelevant — with a whole-file fallback above
// a size cap so pathological inputs stay bounded.
func unifiedDiff(aName, bName string, a, b []byte) string {
	if string(a) == string(b) {
		return ""
	}
	al := splitLines(string(a))
	bl := splitLines(string(b))

	var ops []diffOp
	if len(al)*len(bl) > 16<<20 {
		ops = []diffOp{{del: len(al), ins: len(bl)}}
	} else {
		ops = diffOps(al, bl)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", aName, bName)
	const ctx = 3

	// Walk ops grouping changed regions into hunks with ctx context lines.
	type lineEdit struct {
		kind byte // ' ', '-', '+'
		text string
	}
	var edits []lineEdit
	ai, bi := 0, 0
	for _, op := range ops {
		for i := 0; i < op.keep; i++ {
			edits = append(edits, lineEdit{' ', al[ai]})
			ai++
			bi++
		}
		for i := 0; i < op.del; i++ {
			edits = append(edits, lineEdit{'-', al[ai]})
			ai++
		}
		for i := 0; i < op.ins; i++ {
			edits = append(edits, lineEdit{'+', bl[bi]})
			bi++
		}
	}

	// Identify hunk ranges over the edit script.
	i := 0
	aLine, bLine := 1, 1
	for i < len(edits) {
		if edits[i].kind == ' ' {
			i++
			aLine++
			bLine++
			continue
		}
		// Start of a changed region: back up for context.
		start := i
		ctxStart := start - ctx
		if ctxStart < 0 {
			ctxStart = 0
		}
		aStart := aLine - (start - ctxStart)
		bStart := bLine - (start - ctxStart)
		// Extend until ctx*2 consecutive unchanged lines (or EOF).
		end := i
		unchanged := 0
		j := i
		for j < len(edits) {
			if edits[j].kind == ' ' {
				unchanged++
				if unchanged > ctx*2 {
					break
				}
			} else {
				unchanged = 0
				end = j + 1
			}
			j++
		}
		ctxEnd := end + ctx
		if ctxEnd > len(edits) {
			ctxEnd = len(edits)
		}
		var aCount, bCount int
		var body strings.Builder
		for k := ctxStart; k < ctxEnd; k++ {
			e := edits[k]
			body.WriteByte(e.kind)
			body.WriteString(e.text)
			body.WriteByte('\n')
			switch e.kind {
			case ' ':
				aCount++
				bCount++
			case '-':
				aCount++
			case '+':
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n%s", aStart, aCount, bStart, bCount, body.String())
		// Advance line counters over the consumed edits.
		for k := i; k < ctxEnd; k++ {
			switch edits[k].kind {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
		}
		i = ctxEnd
	}
	return sb.String()
}

// diffOp is one run of the edit script: keep common lines, then delete
// from a, then insert from b.
type diffOp struct {
	keep, del, ins int
}

// diffOps computes an LCS-based edit script between two line slices.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = length of the LCS of a[i:] and b[j:].
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	var cur diffOp
	flush := func() {
		if cur != (diffOp{}) {
			ops = append(ops, cur)
			cur = diffOp{}
		}
	}
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			if cur.del > 0 || cur.ins > 0 {
				flush()
			}
			cur.keep++
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			if cur.ins > 0 {
				flush()
			}
			cur.del++
			i++
		default:
			cur.ins++
			j++
		}
	}
	cur.del += n - i
	cur.ins += m - j
	flush()
	return ops
}

// splitLines splits s into lines without their trailing newline; a final
// newline does not produce an empty trailing element.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}
