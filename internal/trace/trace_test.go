package trace

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Cycle: arch.Cycle(i), Kind: KindCommit, Seq: uint64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("total %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("event %d has seq %d, want %d (chronological tail)", i, e.Seq, 6+i)
		}
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Seq: 1})
	r.Emit(Event{Seq: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("events %v", evs)
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Kind: KindSquash, Seq: 1})
	r.Emit(Event{Kind: KindCommit, Seq: 2})
	r.Emit(Event{Kind: KindSquash, Seq: 3})
	sq := r.Filter(KindSquash)
	if len(sq) != 2 || sq[0].Seq != 1 || sq[1].Seq != 3 {
		t.Fatalf("filtered %v", sq)
	}
}

func TestFilterWrapped(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		k := KindCommit
		if i%2 == 0 {
			k = KindSquash
		}
		r.Emit(Event{Kind: k, Seq: uint64(i)})
	}
	// Retained: seqs 6..9; squashes among them: 6, 8 — chronological.
	sq := r.Filter(KindSquash)
	if len(sq) != 2 || sq[0].Seq != 6 || sq[1].Seq != 8 {
		t.Fatalf("wrapped filter: %v", sq)
	}
	if cap(sq) != len(sq) {
		t.Fatalf("filter over-allocated: cap=%d len=%d", cap(sq), len(sq))
	}
	if r.Filter(KindHalt) != nil {
		t.Fatal("filter with no matches must return nil")
	}
}

func TestLast(t *testing.T) {
	r := NewRing(4)
	if r.Last(2) != nil {
		t.Fatal("Last on empty ring must return nil")
	}
	r.Emit(Event{Seq: 1})
	r.Emit(Event{Seq: 2})
	r.Emit(Event{Seq: 3})
	if got := r.Last(2); len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("Last(2) unwrapped: %v", got)
	}
	if got := r.Last(10); len(got) != 3 || got[0].Seq != 1 {
		t.Fatalf("Last beyond retained: %v", got)
	}
	for i := 4; i <= 10; i++ {
		r.Emit(Event{Seq: uint64(i)})
	}
	// Retained: 7..10, wrapped.
	if got := r.Last(3); len(got) != 3 || got[0].Seq != 8 || got[2].Seq != 10 {
		t.Fatalf("Last(3) wrapped: %v", got)
	}
	if got := r.Last(4); len(got) != 4 || got[0].Seq != 7 || got[3].Seq != 10 {
		t.Fatalf("Last(capacity) wrapped: %v", got)
	}
	if r.Last(0) != nil || r.Last(-1) != nil {
		t.Fatal("Last(<=0) must return nil")
	}
}

func TestWriteTo(t *testing.T) {
	r := NewRing(4)
	r.Emit(Event{Cycle: 7, Kind: KindLoadIssue, Seq: 9, PC: 3, Line: 5, Arg: 2})
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "load-issue") || !strings.Contains(b.String(), "seq=9") {
		t.Fatalf("dump: %q", b.String())
	}
}

func TestKindStrings(t *testing.T) {
	if KindSquash.String() != "squash" || KindHalt.String() != "halt" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind must format")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0)
}
