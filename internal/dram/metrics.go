package dram

import "repro/internal/metrics"

// AttachMetrics binds the memory model's counters into reg under the
// "dram." prefix.
func (d *DRAM) AttachMetrics(reg *metrics.Registry) {
	s := &d.Stats
	reg.BindCounter("dram.reads", &s.Reads)
	reg.BindCounter("dram.writes", &s.Writes)
	reg.BindCounter("dram.row_hits", &s.RowHits)
	reg.BindCounter("dram.row_misses", &s.RowMisses)
	reg.CounterFunc("dram.total_delay_cycles", func() uint64 { return uint64(s.TotalDelay) })
}
