package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/trace"
)

// LoadDump reads a quarantine diagnostic dump written by the engine (or
// by a fabric worker whose panic was reclaimed by lease expiry). The dump
// is validated just enough to replay: it must name a job and carry the
// panic it documents.
func LoadDump(path string) (*QuarantineDump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: reading quarantine dump: %w", err)
	}
	var d QuarantineDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("campaign: parsing quarantine dump %s: %w", path, err)
	}
	if d.Job.Workload == "" {
		return nil, fmt.Errorf("campaign: quarantine dump %s names no job", path)
	}
	return &d, nil
}

// ReplayDepth is the default full-depth trace capacity for Replay — wide
// enough to hold every event of a quarantine-sized cell, against the
// 256-event ring the original run kept.
const ReplayDepth = 1 << 16

// ReplayReport is the outcome of re-running a quarantined cell under a
// full-depth tracer.
type ReplayReport struct {
	Dump *QuarantineDump
	// Result is the replay's outcome: a reproduced panic comes back
	// quarantined again (with a fresh stack), a fixed engine comes back
	// clean.
	Result JobResult
	// Events is the replay's full-depth trace — for simulation cells, the
	// complete event history up to the panic (or completion), not just
	// the 256-event tail the dump carried.
	Events []trace.Event
	// Dropped counts events the replay ring still had to discard (the
	// cell out-ran even the full-depth capacity).
	Dropped uint64
	// Reproduced reports whether the replay panicked again.
	Reproduced bool
}

// Replay re-runs a quarantined job on eng with a full-depth trace ring
// attached, so a panic that a fabric reclaim or a campaign quarantine
// captured with only a 256-event tail is diagnosable offline with the
// whole history. The engine should be memory-only and retry-free (see
// NewReplayEngine): replay must actually re-execute, not serve a cached
// result, and a deterministic panic would just panic twice.
//
// Custom cell kinds replay too (their executor must be registered on
// eng); the full-depth ring only captures simulator events for kinds
// that route Config.Trace into a simulation.
func Replay(eng *Engine, dump *QuarantineDump, depth int) (*ReplayReport, error) {
	if depth <= 0 {
		depth = ReplayDepth
	}
	job := dump.Job
	ring := trace.NewRing(depth)
	job.Config.Trace = ring
	r := eng.RunJob(job)
	rep := &ReplayReport{
		Dump:       dump,
		Result:     r,
		Events:     ring.Events(),
		Reproduced: r.Quarantined,
	}
	if total := ring.Total(); total > uint64(len(rep.Events)) {
		rep.Dropped = total - uint64(len(rep.Events))
	}
	if r.Err != nil && !r.Quarantined {
		var pe *PanicError
		if errors.As(r.Err, &pe) {
			rep.Reproduced = true
		}
	}
	return rep, nil
}

// NewReplayEngine returns an engine configured for diagnostic replay:
// memory-only (a replay must re-execute, never serve the cache) and
// retry-free (a deterministic panic or error should surface once, not
// after a backoff dance).
func NewReplayEngine() *Engine {
	eng := NewEngine()
	eng.Retries = 0
	eng.Backoff = 0
	return eng
}
