package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/xrand"
)

func small(repl ReplKind) *Cache {
	// 4 sets x 2 ways, 64B lines => 512B.
	return New(Config{Name: "t", SizeBytes: 512, Ways: 2, Repl: repl, Seed: 1})
}

func TestGeometry(t *testing.T) {
	c := small(ReplLRU)
	if c.Sets() != 4 || c.Ways() != 2 {
		t.Fatalf("got %dx%d, want 4x2", c.Sets(), c.Ways())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 0, Ways: 2})
}

func TestIndexerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 512, Ways: 2, Indexer: ModIndexer{NumSets: 8}})
}

func TestInstallProbeInvalidate(t *testing.T) {
	c := small(ReplLRU)
	l := arch.LineAddr(0x40)
	if _, ok := c.Probe(l); ok {
		t.Fatal("empty cache must miss")
	}
	ev, _ := c.Install(l, arch.Exclusive, 0, 10)
	if ev.Valid() {
		t.Fatal("install into empty set must not evict")
	}
	if way, ok := c.Probe(l); !ok || way < 0 {
		t.Fatal("line must be present after install")
	}
	if st := c.State(l); st != arch.Exclusive {
		t.Fatalf("state %v, want E", st)
	}
	old, ok := c.Invalidate(l)
	if !ok || old.Tag != l {
		t.Fatal("invalidate must return the line")
	}
	if _, ok := c.Probe(l); ok {
		t.Fatal("line must be gone")
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c := small(ReplLRU)
	// Three lines in the same set (set 0 of 4): line addresses = 0, 4, 8.
	a, b, d := arch.LineAddr(0), arch.LineAddr(4), arch.LineAddr(8)
	c.Install(a, arch.Exclusive, 0, 1)
	c.Install(b, arch.Exclusive, 0, 2)
	// Touch a so b becomes LRU.
	c.Lookup(a)
	ev, _ := c.Install(d, arch.Exclusive, 0, 3)
	if !ev.Valid() || ev.Tag != b {
		t.Fatalf("evicted %v, want %v", ev.Tag, b)
	}
}

func TestRandomReplacementHasNoHitState(t *testing.T) {
	// Under random replacement, hitting a line must not change which
	// victim is selected (no replacement-state channel, Section 3.2).
	c1 := small(ReplRandom)
	c2 := small(ReplRandom)
	a, b := arch.LineAddr(0), arch.LineAddr(4)
	for _, c := range []*Cache{c1, c2} {
		c.Install(a, arch.Exclusive, 0, 1)
		c.Install(b, arch.Exclusive, 0, 2)
	}
	// Different hit patterns.
	c1.Lookup(a)
	c1.Lookup(a)
	c2.Lookup(b)
	// Same RNG seed => same victim regardless of hits.
	_, w1 := c1.Victim(arch.LineAddr(8), 0)
	_, w2 := c2.Victim(arch.LineAddr(8), 0)
	if w1 != w2 {
		t.Fatalf("random victim depends on hit history: %d vs %d", w1, w2)
	}
}

func TestVictimPrefersInvalidWay(t *testing.T) {
	c := small(ReplRandom)
	c.Install(arch.LineAddr(0), arch.Exclusive, 0, 1)
	set, way := c.Victim(arch.LineAddr(4), 0)
	if set != 0 {
		t.Fatalf("set %d, want 0", set)
	}
	if c.LineAt(set, way).Valid() {
		t.Fatal("victim must be the invalid way")
	}
}

func TestInstallAtRestoresExactWay(t *testing.T) {
	c := small(ReplLRU)
	victim := arch.LineAddr(0)
	c.Install(victim, arch.Exclusive, 0, 1)
	set, way := 0, 0
	// Overwrite way 0 with a transient line, then restore.
	tr := arch.LineAddr(4)
	ev := c.InstallAt(set, way, tr, arch.Exclusive, 2)
	if ev.Tag != victim {
		t.Fatalf("evicted %v, want %v", ev.Tag, victim)
	}
	c.Invalidate(tr)
	c.InstallAt(set, way, victim, ev.State, 3)
	if w, ok := c.Probe(victim); !ok || w != way {
		t.Fatalf("restore did not reuse way: got (%d,%v)", w, ok)
	}
}

func TestInstallAtWrongSetPanics(t *testing.T) {
	c := small(ReplLRU)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.InstallAt(1, 0, arch.LineAddr(0), arch.Exclusive, 1) // line 0 indexes to set 0
}

func TestDirtyWritebackCounting(t *testing.T) {
	c := small(ReplLRU)
	a := arch.LineAddr(0)
	c.Install(a, arch.Exclusive, 0, 1)
	if !c.MarkDirty(a) {
		t.Fatal("MarkDirty on present line must succeed")
	}
	if c.State(a) != arch.Modified {
		t.Fatal("dirty line must be M")
	}
	c.Install(arch.LineAddr(4), arch.Exclusive, 0, 2)
	ev, _ := c.Install(arch.LineAddr(8), arch.Exclusive, 0, 3)
	if !ev.Dirty {
		t.Fatal("evicted line should be the dirty one (LRU)")
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
}

func TestWayPartitioning(t *testing.T) {
	// 4 ways, partition 2: thread 0 uses ways 0-1, thread 1 uses 2-3.
	c := New(Config{Name: "nomo", SizeBytes: 1024, Ways: 4, Repl: ReplLRU, PartitionWays: 2, Seed: 1})
	set0 := func(i int) arch.LineAddr { return arch.LineAddr(i * c.Sets()) }
	// Thread 0 fills its two ways.
	c.Install(set0(1), arch.Exclusive, 0, 1)
	c.Install(set0(2), arch.Exclusive, 0, 2)
	// Thread 1 installs must not evict thread 0's lines.
	c.Install(set0(3), arch.Exclusive, 1, 3)
	ev, way := c.Install(set0(4), arch.Exclusive, 1, 4)
	if ev.Valid() {
		t.Fatalf("thread 1 evicted %v from thread 0's partition", ev.Tag)
	}
	if way < 2 {
		t.Fatalf("thread 1 used way %d in thread 0's partition", way)
	}
	// Now thread 1's partition is full: next install evicts only its own.
	ev, _ = c.Install(set0(5), arch.Exclusive, 1, 5)
	if !ev.Valid() || (ev.Tag != set0(3) && ev.Tag != set0(4)) {
		t.Fatalf("thread 1 evicted %v, want one of its own lines", ev.Tag)
	}
	if _, ok := c.Probe(set0(1)); !ok {
		t.Fatal("thread 0 line 1 lost")
	}
	if _, ok := c.Probe(set0(2)); !ok {
		t.Fatal("thread 0 line 2 lost")
	}
}

func TestSpecMarking(t *testing.T) {
	c := small(ReplLRU)
	a := arch.LineAddr(0)
	c.Install(a, arch.Exclusive, 0, 1)
	if spec, _ := c.SpecInfo(a); spec {
		t.Fatal("fresh install must not be spec-marked")
	}
	c.MarkSpec(a, 3)
	if spec, by := c.SpecInfo(a); !spec || by != 3 {
		t.Fatalf("SpecInfo = (%v,%d), want (true,3)", spec, by)
	}
	c.ClearSpec(a)
	if spec, _ := c.SpecInfo(a); spec {
		t.Fatal("ClearSpec failed")
	}
	if spec, by := c.SpecInfo(arch.LineAddr(999)); spec || by != -1 {
		t.Fatal("SpecInfo on absent line must be (false,-1)")
	}
}

func TestStatsAndMissRate(t *testing.T) {
	c := small(ReplLRU)
	c.Install(arch.LineAddr(0), arch.Exclusive, 0, 1)
	c.Lookup(arch.LineAddr(0)) // hit
	c.Lookup(arch.LineAddr(4)) // miss
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || c.Stats.Accesses != 2 {
		t.Fatalf("stats %+v", c.Stats)
	}
	if mr := c.Stats.MissRate(); mr != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", mr)
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate must be 0")
	}
	c.ResetStats()
	if c.Stats.Accesses != 0 {
		t.Fatal("ResetStats failed")
	}
	if _, ok := c.Probe(arch.LineAddr(0)); !ok {
		t.Fatal("ResetStats must not flush contents")
	}
	c.FlushAll()
	if _, ok := c.Probe(arch.LineAddr(0)); ok {
		t.Fatal("FlushAll must flush contents")
	}
}

func TestSnapshotTags(t *testing.T) {
	c := small(ReplLRU)
	c.Install(arch.LineAddr(0), arch.Exclusive, 0, 1)
	c.Install(arch.LineAddr(5), arch.Exclusive, 0, 1)
	snap := c.SnapshotTags()
	if len(snap) != 2 || !snap[0] || !snap[5] {
		t.Fatalf("snapshot %v", snap)
	}
}

// Property: a line just installed is always found by Probe, in the set its
// indexer assigns, until something evicts or invalidates it.
func TestInstallThenProbeProperty(t *testing.T) {
	c := New(Config{Name: "p", SizeBytes: 64 * 1024, Ways: 8, Repl: ReplLRU, Seed: 2})
	f := func(raw uint32) bool {
		l := arch.LineAddr(raw)
		c.Install(l, arch.Exclusive, 0, 0)
		way, ok := c.Probe(l)
		return ok && c.LineAt(c.SetFor(l), way).Tag == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: occupancy of a set never exceeds the number of ways.
func TestOccupancyBound(t *testing.T) {
	c := small(ReplRandom)
	for i := 0; i < 100; i++ {
		c.Install(arch.LineAddr(i*4), arch.Exclusive, 0, arch.Cycle(i))
		for s := 0; s < c.Sets(); s++ {
			if n := c.OccupiedWays(s); n > c.Ways() {
				t.Fatalf("set %d occupancy %d > ways", s, n)
			}
		}
	}
}

// Property: under LRU, the victim of a full set is always the least
// recently used line.
func TestLRUVictimProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		c := New(Config{Name: "lru", SizeBytes: 512, Ways: 4, Repl: ReplLRU, Seed: seed})
		// Fill set 0 (lines 0, 2, 4, 6 with 2 sets).
		lines := []arch.LineAddr{0, 2, 4, 6}
		for i, l := range lines {
			c.Install(l, arch.Exclusive, 0, arch.Cycle(i))
		}
		// Random touch sequence; track recency.
		last := map[arch.LineAddr]int{0: 0, 2: 1, 4: 2, 6: 3}
		tick := 4
		for i := 0; i < 50; i++ {
			l := lines[rng.Intn(len(lines))]
			c.Lookup(l)
			last[l] = tick
			tick++
		}
		// The victim must be the line with the oldest touch.
		oldest := lines[0]
		for _, l := range lines[1:] {
			if last[l] < last[oldest] {
				oldest = l
			}
		}
		ev, _ := c.Install(arch.LineAddr(8), arch.Exclusive, 0, arch.Cycle(tick))
		return ev.Tag == oldest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the MSHR never exceeds capacity under random operations.
func TestMSHRCapacityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		m := NewMSHR("p", 4)
		var live []*MSHREntry
		for i := 0; i < 200; i++ {
			switch rng.Intn(3) {
			case 0:
				if e, merged, ok := m.Allocate(arch.LineAddr(rng.Intn(6)), uint64(i)); ok && !merged {
					live = append(live, e)
				}
			case 1:
				if len(live) > 0 {
					idx := rng.Intn(len(live))
					m.Release(live[idx])
					live = append(live[:idx], live[idx+1:]...)
				}
			case 2:
				m.SquashWaiter(arch.LineAddr(rng.Intn(6)), uint64(rng.Intn(i+1)))
			}
			if m.Len() > m.Cap() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
