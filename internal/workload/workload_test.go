package workload

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/memsys"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 19 {
		t.Fatalf("%d SPEC profiles, want 19 (Table 3)", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Fatalf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if p.FootprintBytes&(p.FootprintBytes-1) != 0 {
			t.Fatalf("%s: footprint %d not a power of two", p.Name, p.FootprintBytes)
		}
		if p.LoadsPerBlock <= 0 || p.Blocks <= 0 {
			t.Fatalf("%s: bad shape %+v", p.Name, p)
		}
	}
	if _, ok := ProfileByName("astar"); !ok {
		t.Fatal("ProfileByName failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("ProfileByName false positive")
	}
}

func TestMTProfilesComplete(t *testing.T) {
	ps := MTProfiles()
	if len(ps) != 23 {
		t.Fatalf("%d MT profiles, want 23 (Figure 9)", len(ps))
	}
}

func TestBuildDeterministic(t *testing.T) {
	p, _ := ProfileByName("astar")
	a, b := p.Build(), p.Build()
	if len(a.Code) != len(b.Code) {
		t.Fatal("non-deterministic codegen")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

// run executes a profile for n instructions on the non-secure baseline and
// returns measured (mispredict rate, L1 miss rate).
func run(t *testing.T, p Profile, n uint64) (mispred, l1miss float64) {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 50_000_000
	h := memsys.New(memsys.DefaultConfig(1))
	m := cpu.New(cfg, p.Build(), h, nil)
	st := m.Run(n)
	if st.Committed < n {
		t.Fatalf("%s: only %d instructions committed", p.Name, st.Committed)
	}
	mispred = float64(st.MispredictsCommitted) / float64(st.BranchesCommitted)
	l1miss = h.L1(0).Stats.MissRate()
	return mispred, l1miss
}

func TestCalibrationHighMispredict(t *testing.T) {
	p, _ := ProfileByName("astar") // target 12.4% mispredict, 1.8% miss
	mp, miss := run(t, p, 150_000)
	if mp < 0.06 || mp > 0.20 {
		t.Errorf("astar mispredict %.3f, target 0.124", mp)
	}
	if miss < 0.005 || miss > 0.06 {
		t.Errorf("astar L1 miss %.3f, target 0.018", miss)
	}
}

func TestCalibrationLowMispredictHighMiss(t *testing.T) {
	p, _ := ProfileByName("lbm") // target 0.3% mispredict, 11% miss
	mp, miss := run(t, p, 150_000)
	if mp > 0.02 {
		t.Errorf("lbm mispredict %.4f, target 0.003", mp)
	}
	if miss < 0.05 || miss > 0.20 {
		t.Errorf("lbm L1 miss %.3f, target 0.110", miss)
	}
}

func TestCalibrationNearZero(t *testing.T) {
	p, _ := ProfileByName("libq") // ~0% mispredict, 10.4% miss
	mp, miss := run(t, p, 150_000)
	if mp > 0.02 {
		t.Errorf("libq mispredict %.4f, target ~0", mp)
	}
	if miss < 0.05 {
		t.Errorf("libq L1 miss %.3f, target 0.104", miss)
	}
}

func TestOrderingPreserved(t *testing.T) {
	// The calibration must at least preserve the Table 3 ordering
	// between a high- and a low-mispredict workload, and between a
	// high- and a low-miss workload.
	astar, _ := ProfileByName("astar")
	gcc, _ := ProfileByName("gcc")
	mpHigh, _ := run(t, astar, 80_000)
	mpLow, _ := run(t, gcc, 80_000)
	if mpHigh <= mpLow {
		t.Errorf("mispredict ordering violated: astar %.4f <= gcc %.4f", mpHigh, mpLow)
	}
	soplex, _ := ProfileByName("soplex")
	sjeng, _ := ProfileByName("sjeng")
	_, missHigh := run(t, soplex, 80_000)
	_, missLow := run(t, sjeng, 80_000)
	if missHigh <= missLow {
		t.Errorf("miss-rate ordering violated: soplex %.4f <= sjeng %.4f", missHigh, missLow)
	}
}

func TestWorkloadsRunUnderAllQueues(t *testing.T) {
	// Smoke: every profile runs 5k instructions without deadlock.
	for _, p := range Profiles() {
		cfg := cpu.DefaultConfig()
		cfg.MaxCycles = 20_000_000
		h := memsys.New(memsys.DefaultConfig(1))
		m := cpu.New(cfg, p.Build(), h, nil)
		st := m.Run(5_000)
		if st.Committed < 5_000 {
			t.Errorf("%s stalled at %d instructions", p.Name, st.Committed)
		}
	}
}
