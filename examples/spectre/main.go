// Spectre example: mount the paper's Spectre Variant-1 proof of concept
// against the non-secure baseline and against CleanupSpec, and show what
// the attacker's Flush+Reload probe sees in each case (Figure 11).
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/sim"
)

func main() {
	const rounds = 20

	for _, policy := range []sim.Policy{sim.NonSecure, sim.CleanupSpec} {
		res, err := sim.RunSpectre(policy, rounds)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s ---\n", policy)
		// Print the interesting region around the planted secret (50).
		lo, hi := res.Secret-6, res.Secret+6
		max := 0.0
		for _, v := range res.AvgLatency {
			if v > max {
				max = v
			}
		}
		for k := lo; k <= hi; k++ {
			bar := strings.Repeat("#", int(res.AvgLatency[k]/max*40))
			mark := ""
			if k == res.Secret {
				mark = " <-- secret"
			}
			fmt.Printf("  array2[%2d*512]: %5.0f cycles %s%s\n", k, res.AvgLatency[k], bar, mark)
		}
		if res.Leaked {
			fmt.Printf("  attacker infers secret = %d — LEAKED\n\n", res.Inferred)
		} else {
			fmt.Printf("  attacker sees a flat latency profile — no leak\n\n")
		}
	}
	fmt.Println("CleanupSpec undoes the transient install (or drops its in-flight fill),")
	fmt.Println("so the correct-path probe cannot tell which array2 line the wrong path touched.")
}
