package analysis

import (
	"fmt"
	"os"
	"testing"
)

// TestDupImportRepro replays analyzer findings and autofixes against a
// scratch module at /tmp/fixrepro when one is present. It is a manual
// debugging harness for -fix regressions, not part of the suite proper, so
// it skips when the scratch module does not exist.
func TestDupImportRepro(t *testing.T) {
	if _, err := os.Stat("/tmp/fixrepro"); err != nil {
		t.Skip("no /tmp/fixrepro scratch module; this is a manual -fix debugging harness")
	}
	mod, err := Load("/tmp/fixrepro")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := NewRunner(mod).Run(Analyzers(), nil)
	for _, f := range findings {
		fmt.Println(f)
	}
	fixes, err := ApplyFixes(mod, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	for _, ff := range fixes {
		fmt.Printf("=== %s (applied=%d skipped=%d)\n%s\n", ff.Name, ff.Applied, ff.Skipped, ff.Fixed)
		if err := os.WriteFile(ff.Name, ff.Fixed, 0o644); err != nil {
			t.Fatalf("write %s: %v", ff.Name, err)
		}
	}
}
