package obs

import "testing"

// BenchmarkDisabledPath is the off-switch cost: the exact call sequence
// the campaign engine makes per job, against a nil tracer. The companion
// test below pins it at zero allocations, mirroring the PR 2 registry
// guard; CI runs the benchmark so a regression also shows up as a number.
func BenchmarkDisabledPath(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Trace("cell", "key")
		probe := root.Child("cache-probe")
		probe.End()
		sim := root.Child("simulate")
		sim.End()
		verify := root.Child("verify")
		verify.End()
		root.End()
	}
}

// TestDisabledPathZeroAllocs is the hard pin: tracing switched off (nil
// tracer) must not allocate on the engine hot path.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Trace("cell", "key")
		probe := root.Child("cache-probe")
		probe.SetAttr("hit", "true")
		probe.End()
		sim := root.Child("simulate")
		sim.End()
		root.Child("verify").End()
		root.End()
		tr.Instant("journal-append", "key")
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer path allocates %.1f per run, want 0", allocs)
	}
}

// BenchmarkEnabledSpan is the on-switch cost, for the record (not
// asserted — enabled tracing is allowed to allocate).
func BenchmarkEnabledSpan(b *testing.B) {
	sink := NewSink()
	sink.MaxSpans = 1 << 20
	tr := NewTracer(sink)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Trace("cell", "key")
		root.Child("simulate").End()
		root.End()
	}
}
