package cpu

import (
	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/trace"
)

// seqHeap orders ready ROB slots oldest-first for deterministic issue.
// Hand-rolled binary heap rather than container/heap: the stdlib's
// any-typed Push/Pop boxes every item, a per-issue heap allocation on the
// cycle loop. seq values are unique among in-flight instructions, so the
// pop order is the fully determined ascending-seq order either way.
type seqHeap []readyItem

type readyItem struct {
	slot int32
	seq  uint64
}

func (q seqHeap) Len() int { return len(q) }

func (q *seqHeap) push(it readyItem) {
	//simlint:allow hotalloc -- heap storage; capacity is bounded by ROB size and reused across cycles
	h := append(*q, it)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if h[parent].seq <= h[i].seq {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*q = h
}

func (q *seqHeap) pop() readyItem {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].seq < h[child].seq {
			child = r
		}
		if h[i].seq <= h[child].seq {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	*q = h
	return top
}

// eventHeap orders scheduled completions by (cycle, seq). Same
// hand-rolled shape as seqHeap, same boxing-avoidance rationale; ties on
// (at, seq) are identical events, so pop order is fully determined.
type eventHeap []doneEvent

type doneEvent struct {
	at   arch.Cycle
	slot int32
	seq  uint64
}

func (q eventHeap) Len() int { return len(q) }

func (a doneEvent) before(b doneEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventHeap) push(ev doneEvent) {
	//simlint:allow hotalloc -- heap storage; capacity is bounded by in-flight events and reused across cycles
	h := append(*q, ev)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h[i].before(h[parent]) {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*q = h
}

func (q *eventHeap) pop() doneEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	for i := 0; ; {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h[r].before(h[child]) {
			child = r
		}
		if !h[child].before(h[i]) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	*q = h
	return top
}

func (m *Machine) pushReady(slot int32, seq uint64) {
	m.readyQ.push(readyItem{slot: slot, seq: seq})
}

func (m *Machine) scheduleDone(slot int32, at arch.Cycle) {
	e := &m.rob[slot]
	e.doneAt = at
	m.doneQ.push(doneEvent{at: at, slot: slot, seq: e.seq})
}

// live reports whether slot still holds the instruction with seq.
func (m *Machine) live(slot int32, seq uint64) bool {
	e := &m.rob[slot]
	return e.valid && e.seq == seq
}

// --- issue/execute ---

// issue begins execution for up to IssueWidth ready instructions.
func (m *Machine) issue() {
	issued := 0
	var defered []readyItem
	for issued < m.cfg.IssueWidth && m.readyQ.Len() > 0 {
		it := m.readyQ.pop()
		if !m.live(it.slot, it.seq) {
			continue
		}
		e := &m.rob[it.slot]
		if e.state != stDispatched {
			continue
		}
		if !m.execute(it.slot) {
			// Not executable this cycle (e.g. rdcycle not at head);
			// hold it without consuming issue bandwidth.
			//simlint:allow hotalloc -- allocates only on the rare serializing-op defer (rdcycle not at ROB head), bounded by issue width
			defered = append(defered, it)
			continue
		}
		issued++
	}
	for _, it := range defered {
		m.readyQ.push(it)
	}
}

// execute starts one instruction. It returns false if the instruction must
// wait (it stays in the ready queue).
func (m *Machine) execute(slot int32) bool {
	e := &m.rob[slot]
	in := e.inst
	switch in.Op {
	case isa.OpNop, isa.OpHalt, isa.OpJump, isa.OpFence:
		e.state = stIssued
		m.scheduleDone(slot, m.now+1)
	case isa.OpALU:
		e.state = stIssued
		e.result = in.EvalALU(e.src1Val, e.src2Val)
		m.scheduleDone(slot, m.now+in.Alu.Latency())
	case isa.OpCall:
		e.state = stIssued
		e.result = uint64(e.pc + 1) // link value
		m.scheduleDone(slot, m.now+1)
	case isa.OpBranch, isa.OpRet:
		e.state = stIssued
		m.scheduleDone(slot, m.now+1)
	case isa.OpRdCycle:
		// Serializing: executes only as the oldest instruction, like a
		// timer read fenced on both sides (Section 4a's observation
		// that same-thread timing needs serializing instructions).
		if slot != m.robHead {
			return false
		}
		e.state = stIssued
		e.result = uint64(m.now)
		m.scheduleDone(slot, m.now+1)
	case isa.OpCLFlush:
		// Address is computed now; the flush itself applies at commit
		// (it is ordered, Section 3.5 / Table 2).
		e.state = stIssued
		e.result = e.src1Val + uint64(in.Imm)
		m.scheduleDone(slot, m.now+1)
	case isa.OpStore:
		e.state = stIssued
		sq := &m.sq[e.sqIdx]
		sq.addr = arch.Addr(e.src1Val + uint64(in.Imm))
		sq.value = e.src2Val
		sq.addrReady = true
		sq.valueReady = true
		m.scheduleDone(slot, m.now+1)
		m.checkMemOrderViolation(e.sqIdx)
	case isa.OpLoad:
		e.state = stIssued
		lq := &m.lq[e.lqIdx]
		lq.Addr = arch.Addr(e.src1Val + uint64(in.Imm))
		lq.Line = lq.Addr.Line()
		lq.HasAddr = true
		if !m.tryIssueLoad(e.lqIdx) {
			//simlint:allow hotalloc -- retry list is bounded by the LQ size and its capacity is recycled by retryMem's in-place filter
			m.memRetry = append(m.memRetry, e.lqIdx)
		}
	default:
		//simlint:allow errdiscipline,hotalloc -- decode invariant: ops are validated at assembly; this panic path (and its string concat) is unreachable in a correct build
		panic("cpu: unhandled op " + in.Op.String())
	}
	return true
}

// retryMem re-attempts blocked loads.
func (m *Machine) retryMem() {
	if len(m.memRetry) == 0 {
		return
	}
	rest := m.memRetry[:0]
	for _, idx := range m.memRetry {
		lq := &m.lq[idx]
		// A squash may have recycled this LQ slot for a new load whose
		// address is not computed yet; HasAddr filters that out.
		if !lq.valid || !lq.HasAddr || lq.Issued || lq.Completed {
			continue
		}
		if !m.tryIssueLoad(idx) {
			//simlint:allow hotalloc -- in-place filter into m.memRetry[:0]; the result is never longer than the input, so this append cannot grow
			rest = append(rest, idx)
		}
	}
	m.memRetry = rest
}

// olderStoreBlocks scans the store queue for stores older than seq that
// match the load's address. Loads speculate past older stores with
// *unknown* addresses (store-set-free optimistic disambiguation, as real
// cores do); checkMemOrderViolation squashes the rare load that guessed
// wrong. It returns (blocked, forwarded, value).
func (m *Machine) olderStoreBlocks(seq uint64, addr arch.Addr) (bool, bool, uint64) {
	// The youngest older matching store wins forwarding.
	var fwdVal uint64
	fwd := false
	for n, i := int32(0), m.sqHead; n < m.sqCount; n, i = n+1, (i+1)%int32(m.cfg.SQSize) {
		sq := &m.sq[i]
		if !sq.valid || sq.seq > seq || !sq.addrReady {
			continue
		}
		if sq.addr&^7 == addr&^7 {
			if !sq.valueReady {
				return true, false, 0
			}
			fwd = true
			fwdVal = sq.value
		}
	}
	return false, fwd, fwdVal
}

// checkMemOrderViolation runs when a store's address resolves: any younger
// load that already issued to the same 8-byte word read stale data and must
// be squashed and re-executed (a memory-order squash).
func (m *Machine) checkMemOrderViolation(sqIdx int32) {
	sq := &m.sq[sqIdx]
	violator := int32(-1)
	var vseq uint64
	for n, i := int32(0), m.lqHead; n < m.lqCount; n, i = n+1, (i+1)%int32(m.cfg.LQSize) {
		lq := &m.lq[i]
		if !lq.valid || !lq.Issued || !lq.HasAddr || lq.Seq < sq.seq {
			continue
		}
		if lq.Addr&^7 == sq.addr&^7 {
			if violator < 0 || lq.Seq < vseq {
				violator = lq.slot
				vseq = lq.Seq
			}
		}
	}
	if violator >= 0 {
		m.memOrderSquash(violator)
	}
}

// tryIssueLoad attempts to send a load with a resolved address to the
// memory system. It returns false if the load must retry later.
func (m *Machine) tryIssueLoad(idx int32) bool {
	lq := &m.lq[idx]
	// Fences: younger loads may not issue past an uncommitted fence.
	if len(m.fenceSeqs) > 0 && m.fenceSeqs[0] < lq.Seq {
		return false
	}
	blocked, fwd, val := m.olderStoreBlocks(lq.Seq, lq.Addr)
	if blocked {
		return false
	}
	if fwd {
		lq.Issued = true
		lq.Forwarded = true
		lq.Value = val
		lq.IssuedAt = m.now
		m.completeLoad(idx, m.now+1, memsys.LevelL1)
		return true
	}

	spec := m.hasOlderUnresolvedCtrl(lq.Seq)
	mode := m.pol.Mode(m, lq, spec)
	if mode == LoadDelayed && spec {
		m.Stats.LoadDelayStalls++
		return false
	}
	if mode == LoadDelayOnMiss && spec {
		if _, hit := m.hier.L1(m.cfg.CoreID).Probe(lq.Line); !hit {
			m.Stats.LoadDelayStalls++
			return false
		}
	}
	if mode == LoadValuePredict && spec {
		if _, hit := m.hier.L1(m.cfg.CoreID).Probe(lq.Line); !hit {
			// Complete immediately with the predicted value; the real
			// access runs once the load is unsquashable, and a wrong
			// prediction squashes the dependents (RepairValue).
			vp := m.pol.(ValuePredictor)
			lq.Issued = true
			lq.ValuePredicted = true
			lq.IssuedAt = m.now
			lq.IssuedMode = LoadValuePredict
			lq.Value = vp.PredictValue(m, lq)
			m.completeLoad(idx, m.now+1, memsys.LevelMem)
			return true
		}
	}
	if lq.DelayedSafe && spec {
		// A failed GetS-Safe keeps the load waiting until it is
		// unsquashable (Section 3.5).
		m.Stats.LoadDelayStalls++
		return false
	}
	opts := memsys.LoadOpts{
		Spec:  spec,
		Owner: m.cfg.ThreadID,
		Kind:  memsys.KindRegular,
	}
	switch mode {
	case LoadInvisible:
		if spec {
			opts.NoFill = true
			opts.Kind = memsys.KindInvisible
		}
	case LoadNormalSafe:
		if spec {
			opts.SafeGetS = true
		}
	default:
		// Remaining modes issue a plain GetS; delay-based modes were
		// already handled before reaching the issue path.
	}
	seq := lq.Seq
	//simlint:allow hotalloc -- one completion closure per issued load miss, freed when the fill returns; removing it requires widening the memsys callback contract (see ROADMAP hot-loop program)
	txn, ok := m.hier.Load(m.cfg.CoreID, lq.Line, m.now, m.waiterID(seq), opts, func(t *memsys.Txn) {
		m.onLoadData(idx, seq, t)
	})
	if !ok {
		return false // MSHR full
	}
	if txn.Level == memsys.LevelDelayed {
		lq.DelayedSafe = true
		m.Stats.LoadDelayStalls++
		return false
	}
	lq.Issued = true
	lq.IssuedAt = m.now
	lq.txn = txn
	lq.IssuedMode = mode
	m.emit(trace.KindLoadIssue, lq.Seq, m.rob[lq.slot].pc, lq.Line, uint64(txn.Level))
	if !spec {
		lq.IssuedMode = LoadNormal
	}
	lq.Level = txn.Level // refined at completion; used if squashed in flight
	// The functional value is read at issue, after store-queue
	// disambiguation; older stores drain to memory at commit, so memory
	// already reflects everything older that was not forwarded.
	lq.Value = m.mem.Read64(lq.Addr)
	return true
}

// onLoadData is the memory-system completion callback.
func (m *Machine) onLoadData(idx int32, seq uint64, t *memsys.Txn) {
	lq := &m.lq[idx]
	if !lq.valid || lq.Seq != seq {
		return // squashed while in flight (callback should be detached, but be safe)
	}
	if t.Dropped {
		// Dropped fills belong to squashed loads only; a live load
		// never receives a dropped response because squash detaches
		// its callback first.
		return
	}
	lq.SEFE = t.SEFE
	lq.FillOrder = m.hier.FillOrder(m.cfg.CoreID)
	m.completeLoad(idx, t.DoneAt, t.Level)
}

// completeLoad finishes a load's execution at cycle at.
func (m *Machine) completeLoad(idx int32, at arch.Cycle, level Level) {
	lq := &m.lq[idx]
	//simlint:allow cyclemath -- a completion cycle is scheduled at issue time as IssuedAt plus a non-negative latency
	m.emit(trace.KindLoadComplete, lq.Seq, m.rob[lq.slot].pc, lq.Line, uint64(at-lq.IssuedAt))
	lq.Completed = true
	lq.DoneAt = at
	lq.Level = level
	e := &m.rob[lq.slot]
	e.result = lq.Value
	m.scheduleDone(lq.slot, at)
	// Visibility: the policy hook fires at max(completion, visibility) —
	// a load may have been promoted to visible while still in flight
	// (promoteVisibility skips incomplete loads), or may complete with
	// no older unresolved control flow left.
	if lq.Visible {
		m.pol.OnLoadUnsquashable(m, lq)
	} else if !m.hasOlderUnresolvedCtrl(lq.Seq) {
		lq.Visible = true
		m.pol.OnLoadUnsquashable(m, lq)
	}
}

// --- completion & branch resolution ---

// processCompletions retires execution events due this cycle: it marks
// results ready, wakes dependents, resolves control flow, and triggers
// squashes on mispredicts.
func (m *Machine) processCompletions() {
	for m.doneQ.Len() > 0 && m.doneQ[0].at <= m.now {
		ev := m.doneQ.pop()
		if !m.live(ev.slot, ev.seq) {
			continue
		}
		e := &m.rob[ev.slot]
		if e.state != stIssued {
			continue
		}
		e.state = stDone

		// InvisiSpec-Initial defers dependent wakeup until the load's
		// visibility point — i.e. until its update/validation access
		// completes (Section 6.5's "incorrectly delayed propagation").
		if e.inst.Op == isa.OpLoad && m.pol.DeferWakeupUntilVisible() {
			lq := &m.lq[e.lqIdx]
			if lq.IssuedMode == LoadInvisible && !lq.Forwarded {
				if !lq.UpdateLaunched || lq.UpdateDoneAt > m.now {
					e.wakeDeferred = true
				}
			}
		}
		if !e.wakeDeferred {
			m.wakeConsumers(ev.slot)
		}

		if e.isCtrl {
			m.resolveCtrl(ev.slot)
			// resolveCtrl may squash, invalidating heap entries;
			// the live() check handles that on later pops.
		}
	}
}

// wakeConsumers delivers a completed result to waiting dependents.
func (m *Machine) wakeConsumers(slot int32) {
	e := &m.rob[slot]
	for _, c := range e.consumers {
		if !m.live(c.slot, c.seq) {
			continue
		}
		ce := &m.rob[c.slot]
		m.setSrc(ce, c.src, e.result)
		ce.pendSrcs--
		if ce.pendSrcs == 0 && ce.state == stDispatched {
			m.pushReady(c.slot, ce.seq)
		}
	}
	e.consumers = e.consumers[:0]
}

// resolveCtrl resolves a branch or return, trains the predictor, and
// squashes on a mispredict.
func (m *Machine) resolveCtrl(slot int32) {
	e := &m.rob[slot]
	m.Stats.BranchesResolved++
	var actualTaken bool
	var actualNext arch.Addr
	switch e.inst.Op {
	case isa.OpBranch:
		actualTaken = e.inst.Cond.Eval(e.src1Val, e.src2Val)
		if actualTaken {
			actualNext = e.inst.Target
		} else {
			actualNext = e.pc + 1
		}
		m.bp.Update(e.predState, actualTaken)
	case isa.OpRet:
		actualNext = arch.Addr(e.src1Val)
		actualTaken = true
	default:
		// resolveCtrl is enqueued only for OpBranch/OpRet (see rename);
		// any other op reaching here is a dispatch bug and would resolve
		// to target 0, forcing a visible squash rather than silent state.
	}
	m.ctrlSeqs = removeSeq(m.ctrlSeqs, e.seq)

	mispredict := actualNext != e.predTarget
	if mispredict {
		e.mispredicted = true
		m.Stats.Mispredicts++
		m.squash(slot, actualTaken, actualNext)
		return
	}
	// Correct resolution can make younger completed loads unsquashable.
	m.promoteVisibility()
}

// promoteVisibility notifies the policy about completed loads that just
// became unsquashable.
func (m *Machine) promoteVisibility() {
	for n, i := int32(0), m.lqHead; n < m.lqCount; n, i = n+1, (i+1)%int32(m.cfg.LQSize) {
		lq := &m.lq[i]
		if !lq.valid || lq.Visible {
			continue
		}
		if m.hasOlderUnresolvedCtrl(lq.Seq) {
			break // LQ is in program order; all younger still squashable
		}
		lq.Visible = true
		if lq.Completed {
			m.pol.OnLoadUnsquashable(m, lq)
		}
		if lq.DelayedSafe {
			lq.DelayedSafe = false // retry as plain GetS
			if !lq.Issued {
				//simlint:allow hotalloc -- retry list is bounded by the LQ size and its capacity is recycled by retryMem's in-place filter
				m.memRetry = append(m.memRetry, i)
			}
		}
	}
}

// --- squash ---

// squash removes every instruction younger than the mispredicted branch at
// brSlot, restores the RAT and predictor state, redirects fetch, and
// invokes the policy's cleanup.
func (m *Machine) squash(brSlot int32, actualTaken bool, actualNext arch.Addr) {
	br := &m.rob[brSlot]
	m.Stats.Squashes++

	// Predictor recovery: rewind to the checkpoint taken at this branch,
	// then apply the actual outcome to the history.
	m.bp.Restore(br.snapshot)
	if br.inst.Op == isa.OpBranch {
		m.bp.ShiftGHR(actualTaken)
	}

	m.emit(trace.KindSquash, br.seq, br.pc, 0, 0)
	m.doSquash(br.seq+1, brSlot, actualNext)
}

// memOrderSquash removes the violating load at vSlot and everything
// younger, re-fetching from the load's own PC. The branch predictor is not
// checkpointed at loads, so speculative history from the squashed region is
// left in place (a small, realistic pollution).
func (m *Machine) memOrderSquash(vSlot int32) {
	v := &m.rob[vSlot]
	m.Stats.Squashes++
	m.Stats.MemOrderSquashes++
	stop := (vSlot - 1 + int32(m.cfg.ROBSize)) % int32(m.cfg.ROBSize)
	m.emit(trace.KindMemOrderSquash, v.seq, v.pc, 0, 0)
	m.doSquash(v.seq, stop, v.pc)
}

// doSquash is the shared rollback: every instruction with seq >= cutoff is
// removed (the ROB walk stops at stopSlot, exclusive), squashed loads are
// handed to the policy, and fetch restarts at redirectPC after the redirect
// penalty plus the policy's cleanup stall.
func (m *Machine) doSquash(cutoff uint64, stopSlot int32, redirectPC arch.Addr) {
	// Collect squashed loads in program order first (oldest to youngest).
	var squashedLoads []SquashedLoad
	for n, i := int32(0), m.lqHead; n < m.lqCount; n, i = n+1, (i+1)%int32(m.cfg.LQSize) {
		lq := &m.lq[i]
		if !lq.valid || lq.Seq < cutoff {
			continue
		}
		sl := SquashedLoad{
			Seq: lq.Seq, Line: lq.Line, HasAddr: lq.HasAddr,
			Issued: lq.Issued, Forwarded: lq.Forwarded,
			Completed: lq.Completed, Level: lq.Level,
			SEFE: lq.SEFE, FillOrder: lq.FillOrder,
			Inflight: lq.Issued && !lq.Completed && !lq.Forwarded,
		}
		//simlint:allow hotalloc -- per-squash worklist bounded by the LQ size; squashes are events, not cycles
		squashedLoads = append(squashedLoads, sl)
		if lq.Issued && !lq.Forwarded && m.hists.loadToSquash != nil {
			//simlint:allow cyclemath -- IssuedAt was recorded from m.now when the load issued; the squash observes a later cycle
			m.hists.loadToSquash.Observe(uint64(m.now - lq.IssuedAt))
		}
		if sl.Completed && (sl.SEFE.L1Fill || sl.SEFE.L2Fill) {
			// The speculative install's exposure window closes here: the
			// squash hands it to the policy's cleanup.
			//simlint:allow cyclemath -- IssuedAt was recorded from m.now when the load issued; the squash observes a later cycle
			window := uint64(m.now - lq.IssuedAt)
			if m.hists.exposedWindow != nil {
				m.hists.exposedWindow.Observe(window)
			}
			m.emit(trace.KindSpecWindow, lq.Seq, lq.PC, lq.Line, window)
		}
		// Detach the in-flight transaction and optionally drop its fill.
		if lq.txn != nil {
			lq.txn.OnDone = nil
		}
		if sl.Inflight && m.pol.DropSquashedInflight() {
			m.hier.SquashLoad(m.cfg.CoreID, lq.Line, m.waiterID(lq.Seq))
			m.emit(trace.KindLoadDropped, lq.Seq, 0, lq.Line, 0)
		}
	}

	// Walk the ROB tail back to the stop slot, undoing renames youngest
	// first so oldRat restoration is exact.
	for m.robCount > 0 {
		last := (m.robTail - 1 + int32(m.cfg.ROBSize)) % int32(m.cfg.ROBSize)
		if last == stopSlot {
			break
		}
		e := &m.rob[last]
		m.Stats.SquashedInsts++
		if e.hasRd {
			rd := destReg(e.inst)
			if m.rat[rd] == last {
				// Restore the previous mapping — unless that
				// producer has committed since (its slot may even
				// have been recycled), in which case the value
				// lives in the architectural register file.
				if e.oldRat >= 0 && m.live(e.oldRat, e.oldRatSeq) {
					m.rat[rd] = e.oldRat
				} else {
					m.rat[rd] = -1
				}
			}
		}
		if e.lqIdx >= 0 {
			m.lq[e.lqIdx].valid = false
			m.lqTail = e.lqIdx
			m.lqCount--
			m.Stats.SquashedLoads++
		}
		if e.sqIdx >= 0 {
			m.sq[e.sqIdx].valid = false
			m.sqTail = e.sqIdx
			m.sqCount--
		}
		e.valid = false
		m.robTail = last
		m.robCount--
	}

	// Bookkeeping lists: drop everything at or above the cutoff.
	m.fenceSeqs = truncSeqsAbove(m.fenceSeqs, cutoff-1)
	m.ctrlSeqs = truncSeqsAbove(m.ctrlSeqs, cutoff-1)
	m.fetchBuf = m.fetchBuf[:0]
	m.fetchHead = 0

	// Classify the squashed loads (Table 5).
	for _, sl := range squashedLoads {
		switch {
		case !sl.Issued || sl.Forwarded:
			m.Stats.SquashedLoadNI++
		case sl.Level == memsys.LevelL1:
			m.Stats.SquashedLoadL1H++
		case sl.Level == memsys.LevelL2:
			m.Stats.SquashedLoadL2H++
		default:
			m.Stats.SquashedLoadL2M++
		}
		if sl.Inflight {
			m.Stats.SquashedInflight++
		} else if sl.Completed && (sl.SEFE.L1Fill || sl.SEFE.L2Fill) {
			m.Stats.SquashedExecuted++
		}
	}

	// Epoch: loads issued after the squash are distinguishable from
	// stale in-flight responses (Section 3.3).
	m.hier.BumpEpoch(m.cfg.CoreID)

	// Redirect fetch, charging the baseline redirect penalty plus
	// whatever the policy's cleanup costs.
	m.fetchPC = redirectPC
	m.fetchHalted = false
	m.emit(trace.KindFetchRedirect, 0, redirectPC, 0, uint64(len(squashedLoads)))
	cost := m.pol.OnSquash(m, squashedLoads)
	m.Stats.InflightWaitCycles += cost.InflightWait
	m.Stats.CleanupOpCycles += cost.CleanupOps
	// The wait for in-flight loads overlaps the front-end refill the
	// baseline pays anyway (Section 2.4: cleanup overhead is partly
	// hidden by the pipeline drain); the cleanup operations themselves
	// serialize after both.
	hold := m.cfg.RedirectPenalty
	if cost.InflightWait > hold {
		hold = cost.InflightWait
	}
	stallUntil := m.now + hold + cost.CleanupOps
	if stallUntil > m.fetchStallUntil {
		m.fetchStallUntil = stallUntil
	}

	// The squash itself resolves visibility for older loads.
	m.promoteVisibility()
}

// RepairValueMisprediction fixes a value-predicted load whose validation
// returned a different value: every younger instruction (which may have
// consumed the wrong value) is squashed and refetched, and the load's
// result becomes the validated value. Policies using LoadValuePredict call
// this from their validation completion.
func (m *Machine) RepairValueMisprediction(e *LQEntry, actual uint64) {
	m.Stats.Squashes++
	m.Stats.ValueMispredicts++
	slot := e.slot
	rb := &m.rob[slot]
	m.doSquash(e.Seq+1, slot, rb.pc+1)
	e.Value = actual
	e.ValuePredicted = false
	rb.result = actual
}

// OlderInflightWait returns the number of cycles until the last currently
// in-flight (issued, incomplete) load completes — the "wait for inflight
// correct-path loads" component of a cleanup (Section 3.4). After a squash
// the LQ holds only correct-path loads.
func (m *Machine) OlderInflightWait() arch.Cycle {
	var max arch.Cycle
	for n, i := int32(0), m.lqHead; n < m.lqCount; n, i = n+1, (i+1)%int32(m.cfg.LQSize) {
		lq := &m.lq[i]
		if !lq.valid || !lq.Issued || lq.Completed {
			continue
		}
		if lq.txn != nil && lq.txn.DoneAt > m.now {
			if w := lq.txn.DoneAt - m.now; w > max {
				max = w
			}
		}
	}
	return max
}

// LineReferencedByLiveLoad reports whether any live (non-squashed) load in
// the LQ references line — used by CleanupSpec to skip invalidating state
// that correct-path execution also justifies (Section 3.4, "Squashing Loads
// Re-ordered with Correct-Path Loads").
func (m *Machine) LineReferencedByLiveLoad(line arch.LineAddr) bool {
	for n, i := int32(0), m.lqHead; n < m.lqCount; n, i = n+1, (i+1)%int32(m.cfg.LQSize) {
		lq := &m.lq[i]
		if lq.valid && lq.HasAddr && lq.Line == line {
			return true
		}
	}
	return false
}
