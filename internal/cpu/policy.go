package cpu

import (
	"repro/internal/arch"
)

// LoadMode says how a speculative load may access the memory hierarchy.
type LoadMode int

// Load issue modes.
const (
	// LoadNormal lets the load access and modify the caches (non-secure
	// baseline, and CleanupSpec's common case).
	LoadNormal LoadMode = iota
	// LoadNormalSafe is LoadNormal with GetS-Safe coherence (CleanupSpec
	// Section 3.5): if the line is owned by a remote core, the load is
	// delayed until it is unsquashable and then retried as LoadNormal.
	LoadNormalSafe
	// LoadInvisible reads data without any cache state change
	// (InvisiSpec's speculative load).
	LoadInvisible
	// LoadDelayed blocks the load until it is unsquashable
	// (the strictest delay-on-speculation baseline).
	LoadDelayed
	// LoadDelayOnMiss lets speculative L1 hits proceed but blocks
	// speculative L1 misses until they are unsquashable — Conditional
	// Speculation's filter (Li et al., HPCA 2019), one of the paper's
	// delay-based comparison points (Section 7.3.2).
	LoadDelayOnMiss
	// LoadValuePredict delays speculative L1 misses like LoadDelayOnMiss
	// but completes them immediately with a predicted value (Sakalis et
	// al., ISCA 2019, the "~10% slowdown" related work in Section
	// 7.3.2); the real access runs once the load is unsquashable and a
	// wrong prediction squashes the dependents. Policies returning this
	// mode must implement ValuePredictor.
	LoadValuePredict
)

// ValuePredictor is the extra interface a policy using LoadValuePredict
// must implement.
type ValuePredictor interface {
	// PredictValue supplies the speculative value for a delayed load.
	PredictValue(m *Machine, e *LQEntry) uint64
}

// SquashCost is the front-end stall a policy charges for one squash, split
// the way the paper's Figure 14 reports it.
type SquashCost struct {
	// InflightWait is the time spent waiting for older, correct-path
	// in-flight loads to complete before cleanup may begin (Section 3.4,
	// "Avoiding Recursive Squash During Cleanup").
	InflightWait arch.Cycle
	// CleanupOps is the time the invalidate/restore operations take.
	CleanupOps arch.Cycle
}

// SquashedLoad describes one load removed by a squash, in program order.
type SquashedLoad struct {
	Seq       uint64
	Line      arch.LineAddr
	HasAddr   bool
	Issued    bool
	Forwarded bool
	Completed bool
	Inflight  bool // issued but data not yet returned
	Level     Level
	SEFE      SEFEInfo
	FillOrder uint64
}

// Policy is the security policy driving speculative loads. The machine
// calls it at load issue, at the point a load becomes unsquashable, at
// commit, and on every squash. internal/core implements CleanupSpec;
// internal/invisispec implements the Redo baseline; NonSecure below is the
// insecure baseline.
type Policy interface {
	// Name identifies the policy in results.
	Name() string
	// Mode picks the issue mode for a load. spec reports whether the
	// load still has older unresolved control flow (i.e. is squashable).
	Mode(m *Machine, e *LQEntry, spec bool) LoadMode
	// DeferWakeupUntilVisible, when true, delays waking a load's
	// dependents until the load's visibility point (InvisiSpec-Initial's
	// modeling choice, Section 6.5).
	DeferWakeupUntilVisible() bool
	// OnLoadUnsquashable is called once when a completed load is no
	// longer squashable (all older control flow resolved).
	OnLoadUnsquashable(m *Machine, e *LQEntry)
	// OnLoadNearCommit is called when a completed load enters the
	// commit window (the oldest few ROB entries); InvisiSpec launches
	// its update/validation access here so validations pipeline across
	// the window instead of serializing at the head.
	OnLoadNearCommit(m *Machine, e *LQEntry)
	// CommitWait returns how many more cycles the load must hold the ROB
	// head before it may retire (e.g. an unfinished validation).
	CommitWait(m *Machine, e *LQEntry) arch.Cycle
	// OnLoadCommitted is called as the load retires.
	OnLoadCommitted(m *Machine, e *LQEntry)
	// OnSquash is called after architectural rollback with the squashed
	// loads in program order; it performs any state cleanup and returns
	// the front-end stall.
	OnSquash(m *Machine, squashed []SquashedLoad) SquashCost
	// DropSquashedInflight reports whether in-flight fills of squashed
	// loads must be dropped (CleanupSpec) or may land (non-secure).
	DropSquashedInflight() bool
}

// NonSecure is the unprotected baseline: speculative loads modify the
// caches and squashes leave every change behind.
type NonSecure struct{}

// Name implements Policy.
func (NonSecure) Name() string { return "nonsecure" }

// Mode implements Policy.
func (NonSecure) Mode(*Machine, *LQEntry, bool) LoadMode { return LoadNormal }

// DeferWakeupUntilVisible implements Policy.
func (NonSecure) DeferWakeupUntilVisible() bool { return false }

// OnLoadUnsquashable implements Policy.
func (NonSecure) OnLoadUnsquashable(*Machine, *LQEntry) {}

// OnLoadNearCommit implements Policy.
func (NonSecure) OnLoadNearCommit(*Machine, *LQEntry) {}

// CommitWait implements Policy.
func (NonSecure) CommitWait(*Machine, *LQEntry) arch.Cycle { return 0 }

// OnLoadCommitted implements Policy.
func (NonSecure) OnLoadCommitted(*Machine, *LQEntry) {}

// OnSquash implements Policy.
func (NonSecure) OnSquash(*Machine, []SquashedLoad) SquashCost { return SquashCost{} }

// DropSquashedInflight implements Policy.
func (NonSecure) DropSquashedInflight() bool { return false }
