// Package cache implements the set-associative caches used for the L1 data
// cache and the shared L2, including the replacement policies the paper
// depends on (LRU for the non-secure baseline, random replacement for
// CleanupSpec's L1, way-partitioning for the SMT/NoMo discussion) and the
// MSHR with the paper's Side-Effect Entry (SEFE) metadata (Figure 7).
//
// The cache stores line addresses and coherence state only; data values live
// in the functional memory model (internal/isa.Memory). That split mirrors
// how timing simulators like gem5 classic separate tag state from data.
package cache

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/xrand"
)

// Indexer maps a line address to a set index. The default is modulo
// indexing; internal/ceaser provides the randomized (encrypted-address)
// indexer used for the L2 in CleanupSpec configurations.
type Indexer interface {
	// Name identifies the indexing scheme in stats output.
	Name() string
	// SetIndex returns the set for line l; it must be < Sets().
	SetIndex(l arch.LineAddr) int
	// Sets returns the number of sets the indexer was built for.
	Sets() int
	// ExtraLatency is added to every access (the paper charges 2 cycles
	// for CEASER's address encryption).
	ExtraLatency() arch.Cycle
}

// ModIndexer is conventional modulo set indexing with zero extra latency.
type ModIndexer struct{ NumSets int }

func (m ModIndexer) Name() string                 { return "mod" }
func (m ModIndexer) SetIndex(l arch.LineAddr) int { return int(uint64(l) % uint64(m.NumSets)) }
func (m ModIndexer) Sets() int                    { return m.NumSets }
func (m ModIndexer) ExtraLatency() arch.Cycle     { return 0 }

// ReplKind selects the replacement policy.
type ReplKind int

const (
	// ReplLRU is least-recently-used replacement (baseline L1/L2).
	ReplLRU ReplKind = iota
	// ReplRandom is random replacement (CleanupSpec's L1, Section 3.2).
	ReplRandom
)

func (r ReplKind) String() string {
	switch r {
	case ReplLRU:
		return "lru"
	case ReplRandom:
		return "random"
	}
	return fmt.Sprintf("ReplKind(%d)", int(r))
}

// Line is one cache line's tag-array state.
type Line struct {
	Tag   arch.LineAddr
	State arch.CohState
	Dirty bool

	// SpecInstalled marks a line installed by a still-speculative load;
	// CleanupSpec clears it when the load retires or cleans it up. It is
	// the tag-side view of an active SEFE (Section 3.6 window tracking).
	SpecInstalled bool
	// InstalledBy is the core that installed the line (for cross-core
	// window protection).
	InstalledBy int
	// InstalledAt is the cycle of the install.
	InstalledAt arch.Cycle
}

// Valid reports whether the line holds a valid tag.
func (ln Line) Valid() bool { return ln.State.Valid() }

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	Repl      ReplKind
	// Indexer is optional; nil means modulo indexing over the computed
	// set count.
	Indexer Indexer
	// PartitionWays, if > 0, confines each partition (SMT thread) to a
	// contiguous group of PartitionWays ways (NoMo-style, Section 3.6).
	PartitionWays int
	// Seed keys the stateless random-replacement victim hash.
	Seed uint64
}

// Stats counts cache events.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Installs   uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
	Invals     uint64
	Restores   uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache tag array.
type Cache struct {
	cfg   Config
	sets  int
	ways  int
	lines []Line   // sets*ways, flat
	stamp []uint64 // LRU stamps, parallel to lines
	tick  uint64
	idx   Indexer

	Stats Stats
}

// New builds a cache from cfg. It panics on a malformed geometry because a
// bad configuration is a programming error, not a runtime condition.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.SizeBytes <= 0 {
		//simlint:allow errdiscipline -- construction-time geometry validation; a bad config is a programmer error caught before any simulation runs
		panic(fmt.Sprintf("cache %s: bad geometry %+v", cfg.Name, cfg))
	}
	lines := cfg.SizeBytes / arch.LineBytes
	sets := lines / cfg.Ways
	if sets <= 0 || lines%cfg.Ways != 0 {
		//simlint:allow errdiscipline -- construction-time geometry validation; a bad config is a programmer error caught before any simulation runs
		panic(fmt.Sprintf("cache %s: size %d not divisible into %d ways", cfg.Name, cfg.SizeBytes, cfg.Ways))
	}
	idx := cfg.Indexer
	if idx == nil {
		idx = ModIndexer{NumSets: sets}
	}
	if idx.Sets() != sets {
		//simlint:allow errdiscipline -- construction-time geometry validation; a bad config is a programmer error caught before any simulation runs
		panic(fmt.Sprintf("cache %s: indexer built for %d sets, cache has %d", cfg.Name, idx.Sets(), sets))
	}
	if cfg.PartitionWays > 0 && cfg.Ways%cfg.PartitionWays != 0 {
		//simlint:allow errdiscipline -- construction-time geometry validation; a bad config is a programmer error caught before any simulation runs
		panic(fmt.Sprintf("cache %s: %d ways not divisible by partition %d", cfg.Name, cfg.Ways, cfg.PartitionWays))
	}
	return &Cache{
		cfg:   cfg,
		sets:  sets,
		ways:  cfg.Ways,
		lines: make([]Line, sets*cfg.Ways),
		stamp: make([]uint64, sets*cfg.Ways),
		idx:   idx,
	}
}

// Name returns the configured cache name.
func (c *Cache) Name() string { return c.cfg.Name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Indexer returns the active set indexer.
func (c *Cache) Indexer() Indexer { return c.idx }

// SetFor returns the set index line l maps to.
func (c *Cache) SetFor(l arch.LineAddr) int { return c.idx.SetIndex(l) }

// line returns a pointer to the line at (set, way).
func (c *Cache) line(set, way int) *Line { return &c.lines[set*c.ways+way] }

// LineAt exposes the line at (set, way) for inspection by policies/tests.
func (c *Cache) LineAt(set, way int) Line { return *c.line(set, way) }

// Probe looks up l without changing any state (no replacement update, no
// stats). It returns the way and whether the line is present.
func (c *Cache) Probe(l arch.LineAddr) (way int, ok bool) {
	set := c.idx.SetIndex(l)
	for w := 0; w < c.ways; w++ {
		ln := c.line(set, w)
		if ln.Valid() && ln.Tag == l {
			return w, true
		}
	}
	return -1, false
}

// Lookup performs a demand access: it counts the access, and on a hit
// updates replacement state (for LRU) and returns the way. The paper's
// random-replacement L1 deliberately has no hit-side replacement update,
// which is what makes transient hits leak nothing (Section 3.2).
func (c *Cache) Lookup(l arch.LineAddr) (way int, hit bool) {
	c.Stats.Accesses++
	way, hit = c.Probe(l)
	if hit {
		c.Stats.Hits++
		c.touch(c.idx.SetIndex(l), way)
	} else {
		c.Stats.Misses++
	}
	return way, hit
}

// touch records a use for replacement. Random replacement keeps no state.
func (c *Cache) touch(set, way int) {
	if c.cfg.Repl == ReplLRU {
		c.tick++
		c.stamp[set*c.ways+way] = c.tick
	}
}

// wayRange returns the [lo, hi) ways partition part may use.
func (c *Cache) wayRange(part int) (lo, hi int) {
	if c.cfg.PartitionWays <= 0 {
		return 0, c.ways
	}
	nparts := c.ways / c.cfg.PartitionWays
	p := part % nparts
	return p * c.cfg.PartitionWays, (p + 1) * c.cfg.PartitionWays
}

// Victim selects a victim way in the set for line l on behalf of partition
// part, preferring an invalid way. It does not evict.
func (c *Cache) Victim(l arch.LineAddr, part int) (set, way int) {
	set = c.idx.SetIndex(l)
	lo, hi := c.wayRange(part)
	for w := lo; w < hi; w++ {
		if !c.line(set, w).Valid() {
			return set, w
		}
	}
	switch c.cfg.Repl {
	case ReplRandom:
		// Stateless pseudo-random selection: the victim is a pure hash
		// of (seed, set, incoming line). An earlier version advanced a
		// per-cache PRNG stream on each full-set eviction, but the
		// stream position itself was then microarchitectural state a
		// squash could not undo: a transient install into a full set
		// consumed a draw where an install into a set with a free way
		// did not, so a secret-dependent transient access desynchronized
		// every later victim choice — a replacement-state residue the
		// specfuzz differential oracle flags under CleanupSpec. A pure
		// function of the access leaves no state to leak, which is the
		// paper's actual claim for random replacement (Section 3.2).
		h := xrand.Hash64(c.cfg.Seed ^ 0xCAC4E ^ uint64(l)<<20 ^ uint64(set))
		return set, lo + int(h%uint64(hi-lo))
	default: // LRU
		best, bestStamp := lo, c.stamp[set*c.ways+lo]
		for w := lo + 1; w < hi; w++ {
			if s := c.stamp[set*c.ways+w]; s < bestStamp {
				best, bestStamp = w, s
			}
		}
		return set, best
	}
}

// Install places line l into the cache with the given coherence state,
// evicting a victim chosen by the replacement policy. It returns the evicted
// line (Valid()==false if an empty way was used) and the way used.
func (c *Cache) Install(l arch.LineAddr, st arch.CohState, part int, now arch.Cycle) (evicted Line, way int) {
	set, way := c.Victim(l, part)
	return c.InstallAt(set, way, l, st, now), way
}

// InstallAt places line l into (set, way) directly, returning the previous
// occupant. CleanupSpec's restore path uses it to put an evicted victim back
// into the exact way it was evicted from (Section 3.4).
func (c *Cache) InstallAt(set, way int, l arch.LineAddr, st arch.CohState, now arch.Cycle) (evicted Line) {
	if got := c.idx.SetIndex(l); got != set {
		//simlint:allow errdiscipline,hotalloc -- restore-path invariant: a misindexed install would silently corrupt simulated cache state; the Sprintf runs only on that terminal panic path
		panic(fmt.Sprintf("cache %s: install of %v into set %d, but it indexes to %d", c.cfg.Name, l, set, got))
	}
	ln := c.line(set, way)
	evicted = *ln
	if evicted.Valid() {
		c.Stats.Evictions++
		if evicted.Dirty {
			c.Stats.Writebacks++
		}
	}
	*ln = Line{Tag: l, State: st, InstalledAt: now}
	c.Stats.Installs++
	c.touch(set, way)
	return evicted
}

// Invalidate removes line l if present, returning its prior contents.
func (c *Cache) Invalidate(l arch.LineAddr) (old Line, ok bool) {
	way, ok := c.Probe(l)
	if !ok {
		return Line{}, false
	}
	set := c.idx.SetIndex(l)
	ln := c.line(set, way)
	old = *ln
	*ln = Line{}
	c.Stats.Invals++
	return old, true
}

// State returns the coherence state of l (Invalid if absent).
func (c *Cache) State(l arch.LineAddr) arch.CohState {
	way, ok := c.Probe(l)
	if !ok {
		return arch.Invalid
	}
	return c.line(c.idx.SetIndex(l), way).State
}

// SetState updates the coherence state of l if present and reports whether
// it was present.
func (c *Cache) SetState(l arch.LineAddr, st arch.CohState) bool {
	way, ok := c.Probe(l)
	if !ok {
		return false
	}
	c.line(c.idx.SetIndex(l), way).State = st
	return true
}

// MarkDirty sets the dirty bit of l if present.
func (c *Cache) MarkDirty(l arch.LineAddr) bool {
	way, ok := c.Probe(l)
	if !ok {
		return false
	}
	ln := c.line(c.idx.SetIndex(l), way)
	ln.Dirty = true
	ln.State = arch.Modified
	return true
}

// MarkSpec flags l as speculatively installed by core (window tracking).
func (c *Cache) MarkSpec(l arch.LineAddr, core int) bool {
	way, ok := c.Probe(l)
	if !ok {
		return false
	}
	ln := c.line(c.idx.SetIndex(l), way)
	ln.SpecInstalled = true
	ln.InstalledBy = core
	return true
}

// ClearSpec clears the speculative-install flag of l.
func (c *Cache) ClearSpec(l arch.LineAddr) {
	if way, ok := c.Probe(l); ok {
		c.line(c.idx.SetIndex(l), way).SpecInstalled = false
	}
}

// SpecInfo returns the speculative-install flag and installer of l.
func (c *Cache) SpecInfo(l arch.LineAddr) (spec bool, by int) {
	way, ok := c.Probe(l)
	if !ok {
		return false, -1
	}
	ln := c.line(c.idx.SetIndex(l), way)
	return ln.SpecInstalled, ln.InstalledBy
}

// FlushAll invalidates every line (used between experiment phases).
func (c *Cache) FlushAll() {
	for i := range c.lines {
		c.lines[i] = Line{}
	}
}

// ResetStats zeroes the counters without touching contents.
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// SnapshotTags returns the set of valid line addresses currently cached.
// Tests use it to assert the paper's core invariant: after a cleanup, the
// cache contents are as if the squashed loads never ran.
func (c *Cache) SnapshotTags() map[arch.LineAddr]bool {
	m := make(map[arch.LineAddr]bool)
	for i := range c.lines {
		if c.lines[i].Valid() {
			m[c.lines[i].Tag] = true
		}
	}
	return m
}

// SnapshotLines returns a copy of every valid line, sorted by tag — the
// deterministic per-level half of the attacker-observer cache-state probe
// (see memsys.Hierarchy.Snapshot). Sorting by tag rather than by (set,
// way) makes the snapshot insensitive to way placement, which an attacker
// cannot observe directly; what a line's presence, coherence state, and
// dirtiness reveal, the differential oracle in internal/specfuzz compares.
func (c *Cache) SnapshotLines() []Line {
	var out []Line
	for i := range c.lines {
		if c.lines[i].Valid() {
			out = append(out, c.lines[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	return out
}

// OccupiedWays returns how many valid ways set holds.
func (c *Cache) OccupiedWays(set int) int {
	n := 0
	for w := 0; w < c.ways; w++ {
		if c.line(set, w).Valid() {
			n++
		}
	}
	return n
}
