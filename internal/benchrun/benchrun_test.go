package benchrun

import (
	"strings"
	"testing"
	"time"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 2.0GHz
BenchmarkCacheLookup-8     	37735849	        31.86 ns/op	       0 B/op	       0 allocs/op
BenchmarkCEASEREncrypt-8   	12345678	        97.20 ns/op	      16 B/op	       1 allocs/op
BenchmarkPredictor-8       	 9000000	       133.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimulatorThroughput-8	      37	  31200000 ns/op	2052622 sim-instructions/s	  524288 B/op	    4096 allocs/op
PASS
ok  	repro	8.123s
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkCacheLookup" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 37735849 || r.NsPerOp != 31.86 {
		t.Fatalf("iters/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.OpsPerSec < 31e6 || r.OpsPerSec > 32e6 {
		t.Fatalf("ops/sec = %v, want ~31.4M", r.OpsPerSec)
	}
	if results[1].BytesPerOp != 16 || results[1].AllocsPerOp != 1 {
		t.Fatalf("benchmem columns lost: %+v", results[1])
	}
	st := results[3]
	if len(st.Extra) != 1 || st.Extra[0].Name != "sim-instructions/s" || st.Extra[0].Value != 2052622 {
		t.Fatalf("ReportMetric column lost: %+v", st.Extra)
	}
	if st.BytesPerOp != 524288 || st.AllocsPerOp != 4096 {
		t.Fatalf("columns after a custom metric lost: %+v", st)
	}
}

func TestParseUnitConversions(t *testing.T) {
	out := `BenchmarkA-4 100 2.5 ms/op
BenchmarkB 200 1.5 us/op
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if results[0].NsPerOp != 2.5e6 {
		t.Fatalf("ms/op not converted: %v", results[0].NsPerOp)
	}
	if results[1].NsPerOp != 1500 || results[1].Procs != 0 || results[1].Name != "BenchmarkB" {
		t.Fatalf("us/op or suffixless name mishandled: %+v", results[1])
	}
}

func TestParseRejectsMalformedBenchmarkLine(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 notanumber 10 ns/op\n")); err == nil {
		t.Fatal("malformed iteration count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBroken-8 100 nan..x ns/op\n")); err == nil {
		t.Fatal("malformed metric value accepted")
	}
}

func TestNewBaselineStampsEnvironment(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	b := NewBaseline(Options{Pattern: "X", BenchTime: "1s"}, []Result{{Name: "BenchmarkX"}}, now)
	if b.GoVersion == "" || b.GOOS == "" || b.GOARCH == "" {
		t.Fatalf("environment not stamped: %+v", b)
	}
	if b.Date != "2026-08-07T12:00:00Z" {
		t.Fatalf("date = %q", b.Date)
	}
}

func TestRunRejectsEmptyPattern(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("empty pattern accepted")
	}
}
