package isa

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
)

// Assemble parses a small assembly dialect into a Program, so attack
// gadgets and micro-kernels can be written as text instead of builder
// calls. The dialect, one statement per line:
//
//	; comment (also #)
//	label:
//	.data ADDR VALUE        ; initialize an 8-byte word
//	li   rD, IMM
//	add  rD, rS1, rS2       ; also sub/and/or/xor/shl/shr/mul/mix
//	addi rD, rS1, IMM       ; immediate forms: subi/andi/ori/xori/shli/shri/muli/mixi
//	ld   rD, [rS1+IMM]      ; the +IMM part is optional
//	st   [rS1+IMM], rS2
//	beq  rS1, rS2, label    ; also bne/bltu/bgeu/blt/bge
//	jmp  label
//	call label
//	ret
//	clflush [rS1+IMM]
//	fence
//	rdcycle rD
//	nop
//	halt
//
// Registers are written r0..r31. Immediates accept decimal and 0x hex.
func Assemble(name, src string) (prog *Program, err error) {
	// The builder reports structural mistakes (duplicate or undefined
	// labels) by panicking; surface them as errors here.
	defer func() {
		//simlint:allow errdiscipline -- assembler API boundary: Builder's documented label-invariant panics become Assemble errors, nothing else can panic here
		if r := recover(); r != nil {
			prog = nil
			err = fmt.Errorf("%s: %v", name, r)
		}
	}()
	b := NewBuilder(name)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := asmLine(b, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineNo+1, err)
		}
	}
	return b.Build(), nil
}

// MustAssemble is Assemble that panics on error (tests, fixed gadgets).
func MustAssemble(name, src string) *Program {
	p, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

var asmALU = map[string]ALUKind{
	"add": AluAdd, "sub": AluSub, "and": AluAnd, "or": AluOr,
	"xor": AluXor, "shl": AluShl, "shr": AluShr, "mul": AluMul, "mix": AluMix,
}

var asmCond = map[string]Cond{
	"beq": CondEQ, "bne": CondNE, "bltu": CondLTU,
	"bgeu": CondGEU, "blt": CondLT, "bge": CondGE,
}

func asmLine(b *Builder, line string) error {
	if strings.HasSuffix(line, ":") {
		label := strings.TrimSuffix(line, ":")
		if label == "" || strings.ContainsAny(label, " \t") {
			return fmt.Errorf("bad label %q", line)
		}
		b.Label(label)
		return nil
	}
	op, rest, _ := strings.Cut(line, " ")
	op = strings.ToLower(op)
	args := splitArgs(rest)

	switch {
	case op == ".data":
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return fmt.Errorf(".data wants ADDR VALUE")
		}
		addr, err1 := parseImm(fields[0])
		val, err2 := parseImm(fields[1])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad .data operands %v", args)
		}
		b.InitData(arch.Addr(addr), uint64(val))
	case op == "li":
		rd, err := parseReg(args, 0)
		imm, err2 := parseImmAt(args, 1)
		if err != nil || err2 != nil {
			return firstErr(err, err2)
		}
		b.Li(rd, imm)
	case asmALU[op] != 0 || op == "add": // "add" maps to zero value AluAdd
		kind, ok := asmALU[op]
		if !ok {
			return fmt.Errorf("unknown op %q", op)
		}
		rd, err := parseReg(args, 0)
		rs1, err2 := parseReg(args, 1)
		rs2, err3 := parseReg(args, 2)
		if err != nil || err2 != nil || err3 != nil {
			return firstErr(err, err2, err3)
		}
		b.Alu(kind, rd, rs1, rs2)
	case strings.HasSuffix(op, "i") && asmALUi(op) != nil:
		kind := *asmALUi(op)
		rd, err := parseReg(args, 0)
		rs1, err2 := parseReg(args, 1)
		imm, err3 := parseImmAt(args, 2)
		if err != nil || err2 != nil || err3 != nil {
			return firstErr(err, err2, err3)
		}
		b.AluI(kind, rd, rs1, imm)
	case op == "ld":
		rd, err := parseReg(args, 0)
		rs1, imm, err2 := parseMem(args, 1)
		if err != nil || err2 != nil {
			return firstErr(err, err2)
		}
		b.Load(rd, rs1, imm)
	case op == "st":
		rs1, imm, err := parseMem(args, 0)
		rs2, err2 := parseReg(args, 1)
		if err != nil || err2 != nil {
			return firstErr(err, err2)
		}
		b.Store(rs1, imm, rs2)
	case asmCondOK(op):
		rs1, err := parseReg(args, 0)
		rs2, err2 := parseReg(args, 1)
		if err != nil || err2 != nil {
			return firstErr(err, err2)
		}
		if len(args) < 3 {
			return fmt.Errorf("%s wants a label", op)
		}
		b.Br(asmCond[op], rs1, rs2, args[2])
	case op == "jmp":
		if len(args) != 1 {
			return fmt.Errorf("jmp wants a label")
		}
		b.Jmp(args[0])
	case op == "call":
		if len(args) != 1 {
			return fmt.Errorf("call wants a label")
		}
		b.Call(args[0])
	case op == "ret":
		b.Ret()
	case op == "clflush":
		rs1, imm, err := parseMem(args, 0)
		if err != nil {
			return err
		}
		b.CLFlush(rs1, imm)
	case op == "fence":
		b.Fence()
	case op == "rdcycle":
		rd, err := parseReg(args, 0)
		if err != nil {
			return err
		}
		b.RdCycle(rd)
	case op == "nop":
		b.Nop()
	case op == "halt":
		b.Halt()
	default:
		return fmt.Errorf("unknown op %q", op)
	}
	return nil
}

// asmALUi maps "addi" -> AluAdd etc., nil for non-ALU-immediate ops.
func asmALUi(op string) *ALUKind {
	base := strings.TrimSuffix(op, "i")
	if k, ok := asmALU[base]; ok {
		return &k
	}
	return nil
}

func asmCondOK(op string) bool { _, ok := asmCond[op]; return ok }

func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	var out []string
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseReg(args []string, i int) (Reg, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing register operand %d", i)
	}
	s := strings.ToLower(args[i])
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", args[i])
	}
	return Reg(n), nil
}

func parseImm(s string) (int64, error) {
	return strconv.ParseInt(strings.TrimSpace(s), 0, 64)
}

func parseImmAt(args []string, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("missing immediate operand %d", i)
	}
	v, err := parseImm(args[i])
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", args[i])
	}
	return v, nil
}

// parseMem parses "[rN]" or "[rN+IMM]" (also "-IMM").
func parseMem(args []string, i int) (Reg, int64, error) {
	if i >= len(args) {
		return 0, 0, fmt.Errorf("missing memory operand %d", i)
	}
	s := strings.TrimSpace(args[i])
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	regPart, immPart := inner, ""
	if p := strings.IndexAny(inner, "+-"); p > 0 {
		regPart, immPart = inner[:p], inner[p:]
	}
	r, err := parseReg([]string{strings.TrimSpace(regPart)}, 0)
	if err != nil {
		return 0, 0, err
	}
	imm := int64(0)
	if immPart != "" {
		imm, err = parseImm(immPart)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset %q", immPart)
		}
	}
	return r, imm, nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
