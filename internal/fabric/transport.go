package fabric

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/faultinject"
)

// Conn is the worker's path to the coordinator: strict request/reply. A
// transport may lose requests, lose responses, duplicate and reorder
// deliveries, and corrupt bytes in flight (see FaultConn) — the protocol
// is built so every such failure is survivable by resending.
type Conn interface {
	Do(m Msg) (Msg, error)
}

// LocalConn delivers messages to an in-process coordinator: the chaos
// harness's transport, and `campaign run -fabric`'s.
type LocalConn struct {
	C *Coordinator
}

// Do delivers m and returns the coordinator's reply.
func (c LocalConn) Do(m Msg) (Msg, error) {
	return c.C.Handle(m), nil
}

// FaultConn wraps a Conn with SiteFabricMsg chaos faults. Delivery
// semantics per injected kind:
//
//   - KindError: the request is lost before delivery — the coordinator
//     never sees it.
//   - KindDrop: the request IS delivered, but its response is lost — the
//     nastier half of at-least-once, forcing the sender's retry to hit an
//     already-processed message (grants re-granted, completes duplicated).
//   - KindDuplicate: the request is delivered twice back to back.
//   - KindReorder: the sender's previous request is re-delivered after
//     the current one — a stale retransmit arriving late.
//   - KindCorrupt: the request's JSON is bit-flipped in transit; if it
//     still parses, the coordinator must nack the damage, and if it does
//     not, the send fails like a lost request.
type FaultConn struct {
	Inner  Conn
	Faults *faultinject.Injector

	mu   sync.Mutex
	prev *Msg // last delivered message, for KindReorder replays
}

// Do sends m through the fault schedule.
func (c *FaultConn) Do(m Msg) (Msg, error) {
	switch k := c.Faults.Check(faultinject.SiteFabricMsg); k {
	case faultinject.KindError:
		return Msg{}, fmt.Errorf("fabric: %s request lost in transit: %w", m.Type, faultinject.ErrInjected)
	case faultinject.KindDrop:
		if _, err := c.deliver(m); err != nil {
			return Msg{}, err
		}
		return Msg{}, fmt.Errorf("fabric: %s response lost in transit: %w", m.Type, faultinject.ErrInjected)
	case faultinject.KindDuplicate:
		if _, err := c.deliver(m); err != nil {
			return Msg{}, err
		}
		return c.deliver(m)
	case faultinject.KindReorder:
		resp, err := c.replayPrevAfter(m)
		return resp, err
	case faultinject.KindCorrupt:
		return c.deliverCorrupt(m)
	default:
		// KindNone and kinds scheduled for other sites: clean delivery.
		return c.deliver(m)
	}
}

// deliver passes m to the inner conn, remembering it for reorder replays.
func (c *FaultConn) deliver(m Msg) (Msg, error) {
	resp, err := c.Inner.Do(m)
	if err == nil {
		c.mu.Lock()
		prev := m
		c.prev = &prev
		c.mu.Unlock()
	}
	return resp, err
}

// replayPrevAfter delivers m, then re-delivers the previous message — the
// stale-retransmit-arrives-late schedule. The stale reply is discarded,
// as a real network would have no one waiting for it.
func (c *FaultConn) replayPrevAfter(m Msg) (Msg, error) {
	c.mu.Lock()
	stale := c.prev
	c.mu.Unlock()
	resp, err := c.deliver(m)
	if err == nil && stale != nil {
		if _, rerr := c.Inner.Do(*stale); rerr != nil {
			// The replayed ghost failing changes nothing for the caller.
			_ = rerr
		}
	}
	return resp, err
}

// deliverCorrupt flips bytes in m's JSON encoding before delivery.
func (c *FaultConn) deliverCorrupt(m Msg) (Msg, error) {
	blob, err := json.Marshal(m)
	if err != nil {
		return Msg{}, fmt.Errorf("fabric: encoding %s: %w", m.Type, err)
	}
	blob = c.Faults.Mutate(faultinject.KindCorrupt, blob)
	var damaged Msg
	if err := json.Unmarshal(blob, &damaged); err != nil {
		// Corruption broke the framing: the receiver would discard it, so
		// the sender sees a lost request.
		return Msg{}, fmt.Errorf("fabric: %s corrupted beyond parsing: %w", m.Type, faultinject.ErrInjected)
	}
	return c.deliver(damaged)
}
