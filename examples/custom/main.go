// Custom example: build a program with the public program-builder API, run
// it under CleanupSpec with tracing attached, and read back registers,
// stats, and the event trace — the workflow for experimenting with your own
// transient-execution gadgets.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/sim"
)

func main() {
	// A hand-written transient gadget: the branch condition comes from
	// cold memory (slow), so the wrong path runs for ~100 cycles and
	// speculatively loads a "secret-dependent" line before the squash.
	b := sim.NewProgram("my-gadget")
	b.InitData(0x1000, 1) // branch condition (actually taken)
	b.Li(1, 0x1000)
	b.Load(2, 1, 0)                   // slow: cold miss
	b.Br(sim.CondNE, 2, 0, "correct") // taken once the slow load returns 1
	b.Li(4, 0x7000)                   // wrong path
	b.Load(5, 4, 0)                   // transient access
	b.Halt()
	b.Label("correct")
	b.Li(6, 42)
	b.Halt()
	prog := b.Build()

	ring := sim.NewTraceRing(64)
	res, err := sim.RunProgram("my-gadget", prog, sim.Config{
		Policy:   sim.CleanupSpec,
		NoWarmup: true,
		Trace:    ring,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("committed %d instructions in %d cycles under %s\n",
		res.Instructions, res.Cycles, res.Policy)
	fmt.Printf("squashes: %.0f, squashed loads dropped in flight: %.0f%%\n\n",
		res.SquashPKI*float64(res.Instructions)/1000, res.InflightFrac*100)
	fmt.Println("event trace:")
	if _, err := ring.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
