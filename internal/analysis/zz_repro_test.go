package analysis

import (
	"fmt"
	"os"
	"testing"
)

func TestDupImportRepro(t *testing.T) {
	mod, err := Load("/tmp/fixrepro")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := NewRunner(mod).Run(Analyzers(), nil)
	for _, f := range findings {
		fmt.Println(f)
	}
	fixes, err := ApplyFixes(mod, findings)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	for _, ff := range fixes {
		fmt.Printf("=== %s (applied=%d skipped=%d)\n%s\n", ff.Name, ff.Applied, ff.Skipped, ff.Fixed)
		os.WriteFile(ff.Name, ff.Fixed, 0o644)
	}
}
