package ceaser

import (
	"testing"

	"repro/internal/arch"
)

func TestRemapLifecycle(t *testing.T) {
	const sets = 64
	ix := New(sets, 1)
	if ix.Remapping() {
		t.Fatal("fresh indexer must not be remapping")
	}
	// Record where every sample line will live under the next key.
	ix.StartRemap(99)
	if !ix.Remapping() || ix.SPtr() != 0 {
		t.Fatal("remap did not start")
	}
	want := map[arch.LineAddr]int{}
	for l := arch.LineAddr(0); l < 500; l++ {
		want[l] = ix.NextIndex(l)
	}
	// StartRemap while remapping is a no-op (keys unchanged).
	ix.StartRemap(12345)
	for l := arch.LineAddr(0); l < 500; l++ {
		if ix.NextIndex(l) != want[l] {
			t.Fatal("nested StartRemap changed the next key")
		}
	}
	// Walk the pointer across all sets; at every step the index must be
	// either the current or the next mapping according to SPtr.
	for step := 0; step < sets; step++ {
		for l := arch.LineAddr(0); l < 100; l++ {
			got := ix.SetIndex(l)
			cur := ix.CurIndex(l)
			if cur < ix.SPtr() {
				if got != ix.NextIndex(l) {
					t.Fatalf("step %d: line %v should use next mapping", step, l)
				}
			} else if got != cur {
				t.Fatalf("step %d: line %v should use current mapping", step, l)
			}
		}
		ix.AdvanceSPtr()
	}
	if ix.Remapping() {
		t.Fatal("remap should have completed")
	}
	if ix.Remaps != 1 {
		t.Fatalf("Remaps = %d", ix.Remaps)
	}
	// The completed mapping equals the recorded next-key mapping.
	for l, s := range want {
		if ix.SetIndex(l) != s {
			t.Fatalf("line %v: post-remap set %d, want %d", l, ix.SetIndex(l), s)
		}
	}
	// AdvanceSPtr outside a remap is a no-op.
	ix.AdvanceSPtr()
	if ix.Remapping() || ix.SPtr() != 0 {
		t.Fatal("AdvanceSPtr outside remap must do nothing")
	}
}

func TestRemapChangesMapping(t *testing.T) {
	const sets = 256
	ix := New(sets, 7)
	before := make([]int, 1000)
	for i := range before {
		before[i] = ix.SetIndex(arch.LineAddr(i))
	}
	ix.StartRemap(42)
	for ix.Remapping() {
		ix.AdvanceSPtr()
	}
	changed := 0
	for i := range before {
		if ix.SetIndex(arch.LineAddr(i)) != before[i] {
			changed++
		}
	}
	if changed < 900 {
		t.Fatalf("only %d/1000 mappings changed after a full remap", changed)
	}
}
