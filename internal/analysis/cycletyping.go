package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerCycleTyping guards latency arithmetic against silent truncation:
// struct fields and function parameters/results whose names say they hold
// cycle counts or latencies (…Cycle, …Cycles, …Lat, …Latency, and the
// conventional lowercase parameter spellings) must be uint64 — directly or
// through a named type like arch.Cycle whose underlying type is uint64.
// An int or int32 latency overflows or sign-flips under the simulator's
// 500M-cycle budgets on 32-bit hosts and converts implicitly in mixed
// expressions, which is exactly how truncation bugs hide.
var AnalyzerCycleTyping = &Analyzer{
	Name: "cycletyping",
	Doc:  "require *Cycle(s)/*Lat(ency) fields and parameters to be uint64 (directly or via a uint64-underlying named type)",
	Run:  runCycleTyping,
}

func runCycleTyping(p *Pass) {
	rel := p.Pkg.Rel()
	if !hasPathPrefix(rel, "internal") && !hasPathPrefix(rel, "sim") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				checkFieldList(p, n.Fields, "field")
			case *ast.FuncDecl:
				checkFieldList(p, n.Type.Params, "parameter")
				checkFieldList(p, n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(p, n.Type.Params, "parameter")
				checkFieldList(p, n.Type.Results, "result")
			}
			return true
		})
	}
}

func checkFieldList(p *Pass, fl *ast.FieldList, kind string) {
	if fl == nil {
		return
	}
	for _, field := range fl.List {
		t := p.Pkg.Info.TypeOf(field.Type)
		if t == nil || !isNonUint64Integer(t) {
			continue
		}
		for _, name := range field.Names {
			if !isCycleName(name.Name) {
				continue
			}
			p.Reportf(name.Pos(),
				"%s %s holds a cycle count or latency but is %s; make it uint64 (or arch.Cycle) to prevent silent truncation in latency math", kind, name.Name, t)
		}
	}
}

// isCycleName reports whether a field/parameter name declares a cycle
// count or latency.
func isCycleName(name string) bool {
	for _, suffix := range [...]string{"Cycle", "Cycles", "Lat", "Latency"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	switch name {
	case "lat", "latency", "cycle", "cycles":
		return true
	}
	return false
}

// isNonUint64Integer reports whether t's underlying type is an integer
// kind other than uint64 — the truncation-prone latency representations.
// Float aggregates (average latency in fractional cycles), histograms, and
// other container types are deliberate representations, not truncation
// hazards, and are not flagged.
func isNonUint64Integer(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Kind() != types.Uint64 && b.Kind() != types.Uintptr
}
