package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/sim"
)

// smallGrid is a fixed-seed grid small enough for tests but wide enough to
// exercise the pool.
func smallGrid() Grid {
	return Grid{
		Name:         "test",
		Workloads:    []string{"astar", "gcc", "lbm", "sphinx3"},
		Policies:     []sim.Policy{sim.NonSecure, sim.CleanupSpec},
		Seeds:        []uint64{1, 2},
		Instructions: 6_000,
	}
}

// TestParallelMatchesSerial is the end-to-end determinism check: a
// 4-worker pool run must produce results identical to running every cell
// serially through sim.RunWorkload — same grid, same seeds, same bytes.
func TestParallelMatchesSerial(t *testing.T) {
	jobs := smallGrid().Jobs()

	var serial []sim.Result
	for _, j := range jobs {
		cfg := j.Config
		// The engine runs every cell instrumented; match it so the
		// comparison also pins the metric snapshots to be identical.
		cfg.Metrics = &sim.Metrics{}
		res, err := sim.RunWorkload(j.Workload, cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial = append(serial, res)
	}

	eng := NewEngine()
	eng.Workers = 4
	results := eng.Run(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s failed: %v", r.Job, r.Err)
		}
		if !reflect.DeepEqual(r.Result, serial[i]) {
			t.Fatalf("job %s: parallel result differs from serial:\n got %+v\nwant %+v",
				r.Job, r.Result, serial[i])
		}
	}

	// And the aggregated CSV must match byte for byte.
	var fromPool, fromSerial strings.Builder
	if err := ResultsCSV(&fromPool, results); err != nil {
		t.Fatal(err)
	}
	serialResults := make([]JobResult, len(jobs))
	for i := range jobs {
		serialResults[i] = JobResult{Job: jobs[i], Key: mustKey(t, jobs[i]), Result: serial[i]}
	}
	if err := ResultsCSV(&fromSerial, serialResults); err != nil {
		t.Fatal(err)
	}
	if fromPool.String() != fromSerial.String() {
		t.Fatal("aggregated CSV differs between parallel and serial runs")
	}
}

// TestSecondRunZeroSimulations pins cache-backed determinism: rerunning
// the same grid against a warm cache must perform zero simulations, even
// from a brand-new engine (fresh memo, disk only).
func TestSecondRunZeroSimulations(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()

	first := NewEngine()
	first.Workers = 4
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first.Cache = cache
	results := first.Run(jobs)
	if first.Simulations() != int64(len(jobs)) {
		t.Fatalf("cold run simulated %d, want %d", first.Simulations(), len(jobs))
	}

	second := NewEngine()
	second.Workers = 4
	second.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	rerun := second.Run(jobs)
	if second.Simulations() != 0 {
		t.Fatalf("warm rerun simulated %d cells, want 0", second.Simulations())
	}
	for i := range rerun {
		if !rerun[i].Cached {
			t.Fatalf("job %s not served from cache", rerun[i].Job)
		}
		if !reflect.DeepEqual(rerun[i].Result, results[i].Result) {
			t.Fatalf("job %s: cached result differs from simulated", rerun[i].Job)
		}
	}
}

// TestResumeAfterInterrupt models an interrupted campaign: only part of
// the grid made it into the cache; the resumed run simulates exactly the
// missing cells and completes.
func TestResumeAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()
	half := jobs[:len(jobs)/2]

	first := NewEngine()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	first.Cache = cache
	first.Run(half) // "interrupted" after half the grid

	resumed := NewEngine()
	resumed.Workers = 4
	resumed.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Manifest = NewManifest(dir, "test")
	results := resumed.Run(jobs)
	if n := len(Failed(results)); n != 0 {
		t.Fatalf("%d jobs failed on resume", n)
	}
	if got, want := resumed.Simulations(), int64(len(jobs)-len(half)); got != want {
		t.Fatalf("resumed run simulated %d cells, want exactly the %d missing ones", got, want)
	}
	if _, done, failed, _ := resumed.Manifest.Counts(); done != len(jobs) || failed != 0 {
		t.Fatalf("manifest after resume: done=%d failed=%d, want %d/0", done, failed, len(jobs))
	}
}

// TestResumeAfterPartialFailure injects a failing cell into the grid: the
// run must finish every good cell, retry and record the bad one as
// failed, and a rerun must re-attempt only the failed cell.
func TestResumeAfterPartialFailure(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()
	bad := Job{Workload: "no-such-workload", Config: sim.Config{Policy: sim.NonSecure, Instructions: 6_000}}
	jobs = append(jobs[:3:3], append([]Job{bad}, jobs[3:]...)...)

	eng := NewEngine()
	eng.Workers = 4
	eng.sleep = func(time.Duration) {} // no real backoff in tests
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	eng.Manifest = NewManifest(dir, "test")
	results := eng.Run(jobs)

	failed := Failed(results)
	if len(failed) != 1 || failed[0].Job.Workload != "no-such-workload" {
		t.Fatalf("failed set: %+v", failed)
	}
	if failed[0].Attempts != 2 {
		t.Fatalf("failed job attempted %d times, want 2 (one retry)", failed[0].Attempts)
	}
	for _, r := range results {
		if r.Job.Workload != "no-such-workload" && r.Err != nil {
			t.Fatalf("good cell %s failed alongside the bad one: %v", r.Job, r.Err)
		}
	}
	if _, done, failedN, _ := eng.Manifest.Counts(); done != len(jobs)-1 || failedN != 1 {
		t.Fatalf("manifest: done=%d failed=%d", done, failedN)
	}

	// The manifest survives the process: load it back like `campaign
	// status` would.
	loaded, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("manifest not persisted")
	}
	if fails := loaded.Failures(); len(fails) != 1 || fails[0].Workload != "no-such-workload" {
		t.Fatalf("persisted failures: %+v", fails)
	}

	// Resume: only the failed cell is re-attempted, everything else is a
	// cache hit.
	resumed := NewEngine()
	resumed.sleep = func(time.Duration) {}
	resumed.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Run(jobs)
	if got := resumed.Simulations(); got != 2 { // 1 attempt + 1 retry of the bad cell
		t.Fatalf("resume simulated %d times, want 2 (bad cell only)", got)
	}
}

// TestRetryBoundsMaxCycles checks the per-job timeout: the retry attempt
// runs under the engine's bounded cycle budget.
func TestRetryBoundsMaxCycles(t *testing.T) {
	eng := NewEngine()
	eng.sleep = func(time.Duration) {}
	if eng.RetryMaxCycles == 0 {
		t.Fatal("default engine must bound retry cycles")
	}
	// White-box: a failing job goes through the retry path without
	// mutating the original job config.
	job := Job{Workload: "no-such-workload", Config: sim.Config{Policy: sim.NonSecure}}
	jr := eng.runJob(job)
	if jr.Err == nil || jr.Attempts != 2 {
		t.Fatalf("want 2 failed attempts, got %d (err=%v)", jr.Attempts, jr.Err)
	}
	if job.Config.MaxCycles != 0 {
		t.Fatal("retry mutated the caller's job config")
	}
}

// TestRetryKeepsTighterMaxCycles is the regression test for the retry
// budget: a job that brings its own MaxCycles tighter than
// RetryMaxCycles must keep it on retry. If the retry replaced the bound
// with the looser engine default, the second attempt under a 64-cycle
// budget would succeed and mask the first failure.
func TestRetryKeepsTighterMaxCycles(t *testing.T) {
	eng := NewEngine()
	eng.sleep = func(time.Duration) {}
	if eng.RetryMaxCycles <= 64 {
		t.Fatalf("test assumes a generous default retry budget, got %d", eng.RetryMaxCycles)
	}
	job := Job{Workload: "astar", Config: sim.Config{
		Policy: sim.NonSecure, Instructions: 6_000, NoWarmup: true, MaxCycles: 64}}
	jr := eng.runJob(job)
	if jr.Err == nil {
		t.Fatal("retry loosened the job's own MaxCycles bound: run succeeded under a 64-cycle budget")
	}
	if jr.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", jr.Attempts)
	}
	if job.Config.MaxCycles != 64 {
		t.Fatal("retry mutated the caller's job config")
	}
}

// TestPanicQuarantine injects a worker panic: the pool must survive, the
// job must come back quarantined (not retried, not plain-failed) with a
// diagnostic dump, and the manifest must record the quarantine.
func TestPanicQuarantine(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()[:1]

	eng := NewEngine()
	eng.sleep = func(time.Duration) {}
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	eng.Manifest = NewManifest(dir, "test")
	eng.Faults = faultinject.Plan("panic-test").
		Schedule(faultinject.SiteWorkerExec, faultinject.KindPanic, 1)

	results := eng.Run(jobs)
	r := results[0]
	if !r.Quarantined || r.Err == nil {
		t.Fatalf("want quarantined result, got %+v", r)
	}
	if r.Attempts != 1 {
		t.Fatalf("quarantined job attempted %d times, want 1 (panics are not retried)", r.Attempts)
	}
	if len(Failed(results)) != 0 {
		t.Fatal("quarantined result leaked into Failed()")
	}
	if qs := Quarantined(results); len(qs) != 1 {
		t.Fatalf("Quarantined() returned %d results, want 1", len(qs))
	}

	// The dump carries the evidence: job identity, panic value, stack.
	if r.DumpPath == "" {
		t.Fatal("no quarantine dump written")
	}
	data, err := os.ReadFile(r.DumpPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Key   string `json:"key"`
		Panic string `json:"panic"`
		Stack string `json:"stack"`
	}
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump unparseable: %v", err)
	}
	if dump.Key != r.Key || !strings.Contains(dump.Panic, "injected worker panic") || dump.Stack == "" {
		t.Fatalf("dump missing evidence: %+v", dump)
	}

	// The manifest separates quarantined from failed.
	if _, _, f, q := eng.Manifest.Counts(); f != 0 || q != 1 {
		t.Fatalf("manifest counts: failed=%d quarantined=%d, want 0/1", f, q)
	}
	qrecs := eng.Manifest.Quarantined()
	if len(qrecs) != 1 || qrecs[0].Dump != r.DumpPath {
		t.Fatalf("manifest quarantine records: %+v", qrecs)
	}
}

// TestCacheBypassDegradation yanks the cache's shard directories out from
// under the engine (plain files where directories must go, so every Put
// fails): after a few consecutive write failures the engine must degrade
// to cache-bypass mode and every simulation must still succeed.
func TestCacheBypassDegradation(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	blocked := map[string]bool{}
	for _, j := range jobs {
		sh := mustKey(t, j)[:2]
		if !blocked[sh] {
			blocked[sh] = true
			if err := os.WriteFile(filepath.Join(dir, sh), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	var buf strings.Builder
	eng := NewEngine()
	eng.Workers = 1
	eng.Cache = cache
	eng.Reporter = NewReporter(&buf)
	results := eng.Run(jobs)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("job %s failed because the cache was unwritable: %v", r.Job, r.Err)
		}
	}
	if !eng.CacheBypassed() {
		t.Fatal("engine never degraded to cache-bypass")
	}
	if !strings.Contains(buf.String(), "bypassing") {
		t.Fatalf("no bypass warning surfaced:\n%s", buf.String())
	}
}

// TestTruncatedManifestResume kills the journal mid-append (final line
// torn in half, the cell's cache entry gone) and resumes: the load must
// drop exactly the torn record, and the rerun must re-simulate only that
// one cell.
func TestTruncatedManifestResume(t *testing.T) {
	dir := t.TempDir()
	jobs := smallGrid().Jobs()[:3]

	eng := NewEngine()
	eng.Workers = 1
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	eng.Manifest = NewManifest(dir, "test")
	if n := len(Failed(eng.Run(jobs))); n != 0 {
		t.Fatalf("%d jobs failed in setup run", n)
	}

	// Tear the final journal line as a mid-write kill would, and delete
	// that cell's cache entry so the record loss actually costs a rerun.
	path := ManifestPath(dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte{'\n'})
	last := lines[len(lines)-1]
	var jl struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(last, &jl); err != nil || len(jl.Key) < 2 {
		t.Fatalf("could not parse final journal line %q: %v", last, err)
	}
	torn := append(bytes.Join(lines[:len(lines)-1], []byte{'\n'}), '\n')
	torn = append(torn, last[:len(last)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, jl.Key[:2], jl.Key+".json")); err != nil {
		t.Fatal(err)
	}

	loaded, ok := LoadManifest(dir)
	if !ok {
		t.Fatal("truncated manifest failed to load")
	}
	if loaded.Dropped() != 1 {
		t.Fatalf("dropped %d journal lines, want exactly the torn one", loaded.Dropped())
	}
	if _, done, _, _ := loaded.Counts(); done != len(jobs)-1 {
		t.Fatalf("done=%d after truncation, want %d", done, len(jobs)-1)
	}

	resumed := NewEngine()
	resumed.Workers = 1
	resumed.Cache, err = OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	resumed.Manifest = loaded
	if n := len(Failed(resumed.Run(jobs))); n != 0 {
		t.Fatalf("%d jobs failed on resume", n)
	}
	if got := resumed.Simulations(); got != 1 {
		t.Fatalf("resume simulated %d cells, want only the torn one", got)
	}
	if p, done, f, q := resumed.Manifest.Counts(); p != 0 || done != len(jobs) || f != 0 || q != 0 {
		t.Fatalf("manifest after resume: pending=%d done=%d failed=%d quarantined=%d", p, done, f, q)
	}
}

// TestPoolConcurrency hammers the pool with more workers than jobs and
// duplicate keys — the shape the -race CI job verifies.
func TestPoolConcurrency(t *testing.T) {
	g := smallGrid()
	jobs := g.Jobs()
	jobs = append(jobs, g.Jobs()...) // duplicate keys race on the memo
	eng := NewEngine()
	eng.Workers = 16
	eng.Reporter = NewReporter(io.Discard)
	results := eng.Run(jobs)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d (%s): %v", i, r.Job, r.Err)
		}
	}
	// Order invariant: results[i] corresponds to jobs[i].
	for i := range jobs {
		if results[i].Key != mustKey(t, jobs[i]) {
			t.Fatalf("result %d out of order", i)
		}
	}
	// Duplicate halves must agree exactly.
	n := len(jobs) / 2
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(results[i].Result, results[i+n].Result) {
			t.Fatalf("duplicate job %s diverged", jobs[i])
		}
	}
}
