package analysis

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file implements simlint's autofix layer. Analyzers attach a *Fix
// (a set of byte-range text edits) to a finding via ReportFix; the CLI
// applies them with ApplyFixes, which splices the edits into the original
// source bytes and runs the result through go/format. Working on source
// bytes rather than re-printing the AST keeps every untouched line — and
// its comments — byte-identical, which is what makes `-fix` idempotent:
// a second run finds nothing left to rewrite and changes nothing.

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// Fix is one mechanical rewrite: a short description and the edits that
// implement it. Edits must not overlap within one Fix.
type Fix struct {
	Message string
	Edits   []TextEdit
}

// FileFix is the resolved outcome of ApplyFixes for one file.
type FileFix struct {
	Name     string // absolute path
	Orig     []byte
	Fixed    []byte // gofmt-formatted result
	Applied  int    // fixes applied
	Skipped  int    // fixes dropped because their edits overlapped an earlier fix
	Messages []string
}

// ApplyFixes materializes every fix carried by findings into per-file
// rewrites, returned sorted by file name. Files whose fixed content
// equals the original are omitted. When two fixes' edits overlap, the
// one whose first edit starts earlier wins and the other is skipped —
// a later simlint -fix run will pick it up against the rewritten tree.
func ApplyFixes(mod *Module, findings []Finding) ([]*FileFix, error) {
	type pendingFix struct {
		fix   *Fix
		start int // offset of the earliest edit, for deterministic ordering
	}
	byFile := make(map[string][]pendingFix)
	for _, f := range findings {
		if f.Fix == nil || len(f.Fix.Edits) == 0 {
			continue
		}
		file := mod.Fset.Position(f.Fix.Edits[0].Pos).Filename
		start := mod.Fset.Position(f.Fix.Edits[0].Pos).Offset
		for _, e := range f.Fix.Edits {
			if mod.Fset.Position(e.Pos).Filename != file {
				return nil, fmt.Errorf("analysis: fix %q spans multiple files", f.Fix.Message)
			}
			if off := mod.Fset.Position(e.Pos).Offset; off < start {
				start = off
			}
		}
		byFile[file] = append(byFile[file], pendingFix{fix: f.Fix, start: start})
	}

	files := make([]string, 0, len(byFile))
	for name := range byFile {
		files = append(files, name)
	}
	sort.Strings(files)

	var out []*FileFix
	for _, name := range files {
		orig, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: reading %s for -fix: %w", name, err)
		}
		pend := byFile[name]
		sort.Slice(pend, func(i, j int) bool { return pend[i].start < pend[j].start })

		ff := &FileFix{Name: name, Orig: orig}
		type span struct {
			lo, hi int
			text   string
		}
		var spans []span
		overlaps := func(lo, hi int) bool {
			for _, s := range spans {
				if lo < s.hi && s.lo < hi {
					return true
				}
			}
			return false
		}
		for _, p := range pend {
			var add []span
			ok := true
			for _, e := range p.fix.Edits {
				lo := mod.Fset.Position(e.Pos).Offset
				hi := mod.Fset.Position(e.End).Offset
				if lo < 0 || hi > len(orig) || lo > hi {
					return nil, fmt.Errorf("analysis: fix %q has an edit outside %s", p.fix.Message, name)
				}
				if e.NewText == "" {
					lo, hi = widenDeletion(orig, lo, hi)
				}
				if overlaps(lo, hi) {
					ok = false
					break
				}
				add = append(add, span{lo, hi, e.NewText})
			}
			if !ok {
				ff.Skipped++
				continue
			}
			spans = append(spans, add...)
			ff.Applied++
			ff.Messages = append(ff.Messages, p.fix.Message)
		}
		if len(spans) == 0 {
			continue
		}
		sort.Slice(spans, func(i, j int) bool { return spans[i].lo > spans[j].lo })
		fixed := append([]byte(nil), orig...)
		for _, s := range spans {
			fixed = append(fixed[:s.lo], append([]byte(s.text), fixed[s.hi:]...)...)
		}
		formatted, err := format.Source(fixed)
		if err != nil {
			return nil, fmt.Errorf("analysis: -fix produced unparseable code for %s (this is a simlint bug): %w", name, err)
		}
		if string(formatted) == string(orig) {
			continue
		}
		ff.Fixed = formatted
		out = append(out, ff)
	}
	return out, nil
}

// Diff renders the fix as a unified diff between the original and fixed
// contents, labeling both sides with the given display name.
func (ff *FileFix) Diff(name string) string {
	return unifiedDiff(name+" (before -fix)", name+" (after -fix)", ff.Orig, ff.Fixed)
}

// widenDeletion grows a pure-deletion span so that removing a comment
// that had a line to itself also removes the now-blank line, instead of
// leaving whitespace behind.
func widenDeletion(src []byte, lo, hi int) (int, int) {
	ls := lo
	for ls > 0 && src[ls-1] != '\n' {
		ls--
	}
	le := hi
	for le < len(src) && src[le] != '\n' {
		le++
	}
	leftBlank := strings.TrimSpace(string(src[ls:lo])) == ""
	rightBlank := strings.TrimSpace(string(src[hi:le])) == ""
	if leftBlank && rightBlank {
		if le < len(src) {
			le++ // take the newline too
		}
		return ls, le
	}
	if leftBlank && !rightBlank {
		return lo, hi
	}
	// Trailing comment: also eat the spaces separating it from the code.
	for lo > 0 && (src[lo-1] == ' ' || src[lo-1] == '\t') {
		lo--
	}
	return lo, hi
}

// addImportEdit returns a TextEdit that makes file import path, or
// ok=false when the import is already present. The edit inserts into the
// first import block in sorted position (or adds a new import declaration
// after the package clause when the file has none).
func addImportEdit(f *ast.File, path string) (TextEdit, bool) {
	for _, imp := range f.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return TextEdit{}, false
		}
	}
	quoted := strconv.Quote(path)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen == token.NoPos {
			// Single-import declaration: add a sibling declaration after it.
			return TextEdit{Pos: gd.End(), End: gd.End(), NewText: "\nimport " + quoted}, true
		}
		for _, spec := range gd.Specs {
			is := spec.(*ast.ImportSpec)
			if is.Path.Value > quoted {
				return TextEdit{Pos: is.Pos(), End: is.Pos(), NewText: quoted + "\n"}, true
			}
		}
		return TextEdit{Pos: gd.Rparen, End: gd.Rparen, NewText: "\t" + quoted + "\n"}, true
	}
	return TextEdit{Pos: f.Name.End(), End: f.Name.End(), NewText: "\n\nimport " + quoted}, true
}
