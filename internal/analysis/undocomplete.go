package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerUndoComplete enforces the paper's Section-3 invariant as lint:
// every state mutation a speculative path can make in the memory system
// must have an undo counterpart reachable from the squash/cleanup path,
// or the "undo" in CleanupSpec silently rots into "leak".
//
// The model is deliberately repo-shaped:
//
//   - Scope: struct fields declared in internal/cache, internal/memsys,
//     and internal/coherence (tags, replacement state, spec marks, MSHR
//     entries, directory sharer sets). Bookkeeping carriers are excluded
//     — structs named Txn or suffixed Stats/Traffic/Opts/Options/Config,
//     and sync-typed fields — they are not architectural state.
//   - Speculative roots: functions of those packages that handle
//     speculation explicitly — a `spec`/`speculative` parameter, a name
//     or body referencing Spec* identifiers (SpecInstalled, MarkSpec), or
//     the speculation carrier types LoadOpts / SEFE. Roots are marker-
//     based rather than entry-point-based because the fill path is
//     asynchronous: Load enqueues and Tick completes, so reachability
//     from Load alone would miss every fill-time mutation.
//   - Cleanup roots: functions whose name carries the undo vocabulary —
//     Cleanup, Restore, Squash, Rollback, Undo, ClearSpec, Commit (the
//     commit path retires the same obligations by confirming them).
//   - Obligation: a (struct, field) pair mutated in any function
//     reachable from a speculative root must also be mutated in some
//     function reachable from a cleanup root. Writes through a pointer
//     (`*ln = Line{…}`) count as writes to every field; delete/index
//     writes count as writes to the map/slice field.
//
// An unpaired mutation is reported once, at its first site. Deliberate
// exceptions are annotated
// //simlint:allow undocomplete -- <why no undo is needed>.
var AnalyzerUndoComplete = &Analyzer{
	Name: "undocomplete",
	Doc:  "pair speculative-path mutations in cache/memsys/coherence with restore/undo writes reachable from the cleanup path",
	Run:  runUndoComplete,
}

// undoTargetPkg reports whether a module-relative package path is in the
// undo-obligation scope.
func undoTargetPkg(rel string) bool {
	switch rel {
	case "internal/cache", "internal/memsys", "internal/coherence":
		return true
	}
	return false
}

// obKey identifies one obligation: a field of a scoped struct.
type obKey struct {
	owner string // classPrefix form: pkg/path.Struct
	field string
}

// undoFacts is the module-wide obligation model.
type undoFacts struct {
	g *callGraph
	// specMut / cleanMut map each obligation to its mutation sites on
	// speculative-reachable / cleanup-reachable functions (sorted).
	specMut  map[obKey][]token.Pos
	cleanMut map[obKey][]token.Pos
}

// undoModel classifies roots, computes reachability, and collects
// mutations, once per Runner.
func (r *Runner) undoModel(mod *Module) *undoFacts {
	r.undoOnce.Do(func() {
		g := r.callGraph(mod)
		uf := &undoFacts{
			g:        g,
			specMut:  make(map[obKey][]token.Pos),
			cleanMut: make(map[obKey][]token.Pos),
		}
		var specRoots, cleanRoots []*cgNode
		for _, n := range g.nodes {
			if !undoTargetPkg(n.pkg.Rel()) {
				continue
			}
			switch classifyUndoRoot(n) {
			case undoRootCleanup:
				cleanRoots = append(cleanRoots, n)
			case undoRootSpec:
				specRoots = append(specRoots, n)
			}
		}
		specReach := g.reachable(specRoots)
		cleanReach := g.reachable(cleanRoots)
		for _, n := range g.nodes {
			spec, clean := specReach[n], cleanReach[n]
			if !spec && !clean {
				continue
			}
			for _, w := range mutationWrites(mod, n) {
				if spec {
					uf.specMut[w.key] = append(uf.specMut[w.key], w.pos)
				}
				if clean {
					uf.cleanMut[w.key] = append(uf.cleanMut[w.key], w.pos)
				}
			}
		}
		for _, m := range []map[obKey][]token.Pos{uf.specMut, uf.cleanMut} {
			//simlint:ordered -- per-key slice sort; keys are not emitted in this order
			for k := range m {
				sort.Slice(m[k], func(i, j int) bool { return m[k][i] < m[k][j] })
			}
		}
		r.undo = uf
	})
	return r.undo
}

const (
	undoRootNone = iota
	undoRootSpec
	undoRootCleanup
)

// cleanupNameWords is the undo vocabulary that makes a function a cleanup
// root.
var cleanupNameWords = []string{"Cleanup", "Restore", "Squash", "Rollback", "Undo", "ClearSpec", "Commit"}

// classifyUndoRoot decides whether a function anchors the speculative or
// the cleanup side. Cleanup naming wins over speculation markers
// (ClearSpecMark is an undo, not a speculation site).
func classifyUndoRoot(n *cgNode) int {
	name := ""
	if n.decl != nil {
		name = n.decl.Name.Name
	}
	for _, w := range cleanupNameWords {
		if strings.Contains(name, w) {
			return undoRootCleanup
		}
	}
	if strings.Contains(name, "Spec") {
		return undoRootSpec
	}
	for _, pv := range paramVars(n) {
		switch pv.Name() {
		case "spec", "speculative":
			return undoRootSpec
		}
		if tn := derefNamed(pv.Type()); tn != nil {
			switch tn.Obj().Name() {
			case "LoadOpts", "SEFE":
				return undoRootSpec
			}
		}
	}
	root := undoRootNone
	walkShallow(n.body, func(m ast.Node) {
		id, ok := m.(*ast.Ident)
		if !ok || root != undoRootNone {
			return
		}
		obj := n.pkg.Info.Uses[id]
		if obj == nil {
			return
		}
		if strings.HasPrefix(obj.Name(), "Spec") {
			root = undoRootSpec
			return
		}
		if tn, ok := obj.(*types.TypeName); ok {
			switch tn.Name() {
			case "LoadOpts", "SEFE":
				root = undoRootSpec
			}
		}
	})
	return root
}

// obWrite is one mutation site.
type obWrite struct {
	key obKey
	pos token.Pos
}

// mutationWrites collects the scoped-field mutations in one function's
// own body.
func mutationWrites(mod *Module, n *cgNode) []obWrite {
	var out []obWrite
	add := func(k obKey, pos token.Pos) {
		if k.owner != "" {
			out = append(out, obWrite{key: k, pos: pos})
		}
	}
	walkShallow(n.body, func(m ast.Node) {
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				collectLhsWrites(mod, n.pkg, lhs, add)
			}
		case *ast.IncDecStmt:
			collectLhsWrites(mod, n.pkg, m.X, add)
		case *ast.CallExpr:
			// delete(x.f, k) mutates the map field f.
			if id, ok := m.Fun.(*ast.Ident); ok && id.Name == "delete" && len(m.Args) == 2 {
				if _, builtin := n.pkg.Info.Uses[id].(*types.Builtin); builtin {
					if sel, ok := ast.Unparen(m.Args[0]).(*ast.SelectorExpr); ok {
						add(scopedFieldKey(mod, n.pkg, sel), m.Pos())
					}
				}
			}
		}
	})
	return out
}

// collectLhsWrites resolves one assignment target to the scoped fields it
// mutates.
func collectLhsWrites(mod *Module, pkg *Package, lhs ast.Expr, add func(obKey, token.Pos)) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		add(scopedFieldKey(mod, pkg, lhs), lhs.Sel.Pos())
	case *ast.IndexExpr:
		// x.f[i] = v mutates the field f.
		if sel, ok := ast.Unparen(lhs.X).(*ast.SelectorExpr); ok {
			add(scopedFieldKey(mod, pkg, sel), lhs.Pos())
		}
	case *ast.StarExpr:
		// *p = v overwrites every field of the pointee struct.
		t := pkg.Info.TypeOf(lhs.X)
		if t == nil {
			return
		}
		named := derefNamed(t)
		if named == nil || !scopedStruct(mod, named) {
			return
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if excludedField(fv) {
				continue
			}
			add(obKey{owner: classPrefix(named), field: fv.Name()}, lhs.Pos())
		}
	}
}

// scopedFieldKey resolves a selector to an obligation key, or a zero key
// when the target is not a scoped struct field.
func scopedFieldKey(mod *Module, pkg *Package, sel *ast.SelectorExpr) obKey {
	selInfo, ok := pkg.Info.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return obKey{}
	}
	fv, ok := selInfo.Obj().(*types.Var)
	if !ok || excludedField(fv) {
		return obKey{}
	}
	named := derefNamed(selInfo.Recv())
	if named == nil || !scopedStruct(mod, named) {
		return obKey{}
	}
	return obKey{owner: classPrefix(named), field: fv.Name()}
}

// scopedStruct reports whether a named type is architectural state in the
// undo-obligation scope.
func scopedStruct(mod *Module, named *types.Named) bool {
	tp := named.Obj().Pkg()
	if tp == nil {
		return false
	}
	rel := strings.TrimPrefix(tp.Path(), mod.Path+"/")
	if !undoTargetPkg(rel) {
		return false
	}
	name := named.Obj().Name()
	switch name {
	case "Txn":
		return false // in-flight transaction bookkeeping, not retained state
	case "SEFE":
		// The Side-Effect Entry IS the undo record (paper Figure 7):
		// writing it is how the speculative path arranges its own undo,
		// and the record is consumed at squash/commit, never restored.
		return false
	case "MSHREntry":
		// Transient in-flight miss bookkeeping: entries are discarded at
		// Release, so there is no retained state to roll back.
		return false
	case "Snapshot", "SnapshotLine":
		return false // diagnostic value copies of state, not the state itself
	}
	for _, suffix := range []string{"Stats", "Traffic", "Opts", "Options", "Config"} {
		if strings.HasSuffix(name, suffix) {
			return false
		}
	}
	return true
}

// excludedField reports whether a field is synchronization rather than
// state.
func excludedField(fv *types.Var) bool {
	return isMutexType(fv.Type()) || isSyncInternalType(fv.Type())
}

// runUndoComplete reports, per target package, the speculative mutations
// with no cleanup-side counterpart.
func runUndoComplete(p *Pass) {
	if !undoTargetPkg(p.Pkg.Rel()) {
		return
	}
	uf := p.runner.undoModel(p.Mod)
	keys := make([]obKey, 0, len(uf.specMut))
	for k := range uf.specMut {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].owner != keys[j].owner {
			return keys[i].owner < keys[j].owner
		}
		return keys[i].field < keys[j].field
	})
	pkgPrefix := p.Pkg.Types.Path() + "."
	for _, k := range keys {
		if len(uf.cleanMut[k]) > 0 {
			continue
		}
		if !strings.HasPrefix(k.owner, pkgPrefix) {
			continue // another package's pass reports it
		}
		pos := uf.specMut[k][0]
		p.Reportf(pos, "speculative-path mutation of %s.%s has no restore/undo counterpart reachable from any cleanup/squash function: a squashed speculation would leak this state; add a restoring write to the cleanup path (or annotate //simlint:allow undocomplete -- <why no undo is needed>)",
			shortClass(p, k.owner), k.field)
	}
}

// Obligation is one entry of the undo-obligation report: a field the
// speculative path mutates, with its pairing status.
type Obligation struct {
	Struct string // pkg/path.Struct
	Field  string
	// MutationPos is the first speculative-side mutation site.
	MutationPos token.Position
	// Paired reports whether a cleanup-reachable function also writes the
	// field; RestorePos is its first site when so.
	Paired     bool
	RestorePos token.Position
}

// ObligationReport lists every speculative-mutation obligation of the
// module, sorted by struct and field.
type ObligationReport struct {
	Obligations []Obligation
}

// Unpaired returns the obligations with no restore counterpart.
func (r ObligationReport) Unpaired() []Obligation {
	var out []Obligation
	for _, o := range r.Obligations {
		if !o.Paired {
			out = append(out, o)
		}
	}
	return out
}

// UndoObligations computes the undo-obligation report for a module. It is
// the programmatic face of the undocomplete analyzer, used by the repo's
// own pairing test (and usable from tooling).
func UndoObligations(mod *Module) ObligationReport {
	r := NewRunner(mod)
	uf := r.undoModel(mod)
	keys := make([]obKey, 0, len(uf.specMut))
	for k := range uf.specMut {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].owner != keys[j].owner {
			return keys[i].owner < keys[j].owner
		}
		return keys[i].field < keys[j].field
	})
	var report ObligationReport
	for _, k := range keys {
		o := Obligation{
			Struct:      k.owner,
			Field:       k.field,
			MutationPos: mod.Fset.Position(uf.specMut[k][0]),
		}
		if sites := uf.cleanMut[k]; len(sites) > 0 {
			o.Paired = true
			o.RestorePos = mod.Fset.Position(sites[0])
		}
		report.Obligations = append(report.Obligations, o)
	}
	return report
}
