package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoUndoObligations is the acceptance check for the undo-complete
// invariant on the real module: every (struct, field) the speculative
// path mutates in internal/{cache,memsys,coherence} must either have a
// restore write reachable from the cleanup/squash path or carry a
// justified //simlint:allow undocomplete directive at the mutation site.
// It also requires the classifier to have found real pairings, so a
// regression that blinds the root detection cannot pass vacuously.
func TestRepoUndoObligations(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load repo module: %v", err)
	}
	report := UndoObligations(mod)
	if len(report.Obligations) == 0 {
		t.Fatal("no undo obligations found; the speculative-root classifier went blind")
	}

	paired, cachePaired := 0, 0
	for _, o := range report.Obligations {
		if o.Paired {
			paired++
			if strings.Contains(o.Struct, "/internal/cache.") {
				cachePaired++
			}
			continue
		}
		if !allowDirectiveAt(t, o.MutationPos.Filename, o.MutationPos.Line) {
			t.Errorf("unpaired obligation %s.%s at %s:%d has no justified //simlint:allow undocomplete directive",
				o.Struct, o.Field, o.MutationPos.Filename, o.MutationPos.Line)
		}
	}
	if paired == 0 {
		t.Error("no obligation is paired with a restore write; cleanup-side detection went blind")
	}
	if cachePaired == 0 {
		t.Error("no internal/cache obligation is paired; the paper's core undo path is not being tracked")
	}
}

// allowDirectiveAt reports whether the mutation line (or the line above
// it) carries an undocomplete allow directive.
func allowDirectiveAt(t *testing.T, filename string, line int) bool {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("reading %s: %v", filename, err)
	}
	lines := strings.Split(string(data), "\n")
	for _, ln := range []int{line, line - 1} {
		if ln >= 1 && ln <= len(lines) &&
			strings.Contains(lines[ln-1], "//simlint:allow") &&
			strings.Contains(lines[ln-1], "undocomplete") {
			return true
		}
	}
	return false
}
