package cpu

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/trace"
)

// scheduleWake arranges for a deferred-wakeup load's dependents to be woken
// at cycle at (InvisiSpec-Initial's visibility point).
func (m *Machine) scheduleWake(slot int32, at arch.Cycle) {
	e := &m.rob[slot]
	m.wakeQ.push(doneEvent{at: at, slot: slot, seq: e.seq})
}

// processWakes delivers deferred wakeups due this cycle.
func (m *Machine) processWakes() {
	for m.wakeQ.Len() > 0 && m.wakeQ[0].at <= m.now {
		ev := m.wakeQ.pop()
		if !m.live(ev.slot, ev.seq) {
			continue
		}
		e := &m.rob[ev.slot]
		if e.wakeDeferred && e.state == stDone {
			e.wakeDeferred = false
			m.wakeConsumers(ev.slot)
		}
	}
}

// commitWindow is how many oldest ROB entries OnLoadNearCommit scans.
const commitWindow = 8

// commit retires up to CommitWidth completed instructions in program order.
func (m *Machine) commit() {
	// Injected commit stall (fault-injection harness): retirement freezes
	// from stallFrom on so the forward-progress watchdog has a
	// deterministic livelock to detect. stallFrom is 0 in real runs.
	if m.stallFrom != 0 && m.now >= m.stallFrom {
		return
	}
	// Give the policy a look at completed loads nearing retirement so it
	// can pipeline commit-time work (InvisiSpec updates/validations).
	// The scan stops at the first incomplete entry: everything before it
	// is unsquashable (no unresolved branch, store address, or load can
	// precede it), so commit-time side effects are safe to start.
	for n, slot := 0, m.robHead; n < commitWindow && n < int(m.robCount); n, slot = n+1, (slot+1)%int32(m.cfg.ROBSize) {
		e := &m.rob[slot]
		if !e.valid || e.state != stDone {
			break
		}
		if e.inst.Op == isa.OpLoad {
			lq := &m.lq[e.lqIdx]
			if !lq.UpdateLaunched {
				m.pol.OnLoadNearCommit(m, lq)
			}
		}
	}
	for n := 0; n < m.cfg.CommitWidth && m.robCount > 0; n++ {
		slot := m.robHead
		e := &m.rob[slot]
		if e.state != stDone {
			return
		}

		if e.inst.Op == isa.OpLoad {
			lq := &m.lq[e.lqIdx]
			// Reaching the head makes the load unsquashable even if
			// resolution-order bookkeeping missed it.
			if !lq.Visible {
				lq.Visible = true
				m.pol.OnLoadUnsquashable(m, lq)
			}
			if w := m.pol.CommitWait(m, lq); w > 0 {
				return // head stalls (e.g. InvisiSpec validation)
			}
			if e.wakeDeferred {
				e.wakeDeferred = false
				m.wakeConsumers(slot)
			}
			m.pol.OnLoadCommitted(m, lq)
			if lq.SEFE.L1Fill || lq.SEFE.L2Fill {
				// The install is architecturally justified now;
				// window-tracking marks are released (Section 3.6).
				m.hier.ClearSpecMark(m.cfg.CoreID, lq.Line)
				//simlint:allow cyclemath -- IssuedAt was recorded from m.now when the load issued; commit observes a later cycle
				window := uint64(m.now - lq.IssuedAt)
				if m.hists.exposedWindow != nil {
					m.hists.exposedWindow.Observe(window)
				}
				m.emit(trace.KindSpecWindow, lq.Seq, lq.PC, lq.Line, window)
			}
			m.freeLQHead(e.lqIdx)
			m.Stats.LoadsCommitted++
		}

		switch e.inst.Op {
		case isa.OpStore:
			sq := &m.sq[e.sqIdx]
			// Committed stores drain immediately: functional write
			// plus a non-speculative RFO (Section 4a).
			m.mem.Write64(sq.addr&^7, sq.value)
			m.hier.StoreOwned(m.cfg.CoreID, m.cfg.ThreadID, sq.addr.Line(), m.now)
			m.freeSQHead(e.sqIdx)
			m.Stats.StoresCommitted++
		case isa.OpCLFlush:
			// clflush executes at commit: under every policy it is
			// ordered behind older stores, and CleanupSpec
			// additionally requires it to be unsquashable
			// (Section 3.5, Table 2).
			m.hier.Flush(m.cfg.CoreID, arch.Addr(e.result).Line())
		case isa.OpBranch, isa.OpRet:
			m.Stats.BranchesCommitted++
			if e.mispredicted {
				m.Stats.MispredictsCommitted++
			}
		default:
			// Other ops have no commit-time side effects beyond the
			// bookkeeping above.
		case isa.OpFence:
			m.fenceSeqs = removeSeq(m.fenceSeqs, e.seq)
		case isa.OpHalt:
			m.halted = true
			m.emit(trace.KindHalt, e.seq, e.pc, 0, 0)
		}

		if e.hasRd {
			rd := destReg(e.inst)
			m.regs[rd] = e.result
			if m.rat[rd] == slot {
				m.rat[rd] = -1
			}
		}

		m.emit(trace.KindCommit, e.seq, e.pc, 0, 0)
		e.valid = false
		m.robHead = (m.robHead + 1) % int32(m.cfg.ROBSize)
		m.robCount--
		m.Stats.Committed++
		m.lastCommitCycle = m.now
		if m.halted {
			return
		}
	}
}

func (m *Machine) freeLQHead(idx int32) {
	if idx != m.lqHead {
		//simlint:allow errdiscipline,hotalloc -- pipeline invariant: an out-of-order queue free means corrupt ROB state; the Sprintf runs only on that terminal panic path
		panic(fmt.Sprintf("cpu: committing load at LQ %d but head is %d", idx, m.lqHead))
	}
	m.lq[idx].valid = false
	m.lq[idx].txn = nil
	m.lqHead = (m.lqHead + 1) % int32(m.cfg.LQSize)
	m.lqCount--
}

func (m *Machine) freeSQHead(idx int32) {
	if idx != m.sqHead {
		//simlint:allow errdiscipline,hotalloc -- pipeline invariant: an out-of-order queue free means corrupt ROB state; the Sprintf runs only on that terminal panic path
		panic(fmt.Sprintf("cpu: committing store at SQ %d but head is %d", idx, m.sqHead))
	}
	m.sq[idx].valid = false
	m.sqHead = (m.sqHead + 1) % int32(m.cfg.SQSize)
	m.sqCount--
}

// Reg returns the committed architectural value of register r (tests and
// attack harnesses read results through this).
func (m *Machine) Reg(r isa.Reg) uint64 { return m.regs[r] }

// ScheduleLoadWake lets a policy schedule the deferred wakeup of a load's
// dependents at cycle at (InvisiSpec-Initial's visibility point).
func (m *Machine) ScheduleLoadWake(e *LQEntry, at arch.Cycle) {
	m.scheduleWake(e.slot, at)
}
