package specfuzz

import (
	"fmt"

	"repro/sim"
)

// maxMinimizeTrials bounds the oracle invocations one minimization may
// spend; the candidate list is small, so the greedy loop reaches its
// fixpoint far earlier in practice.
const maxMinimizeTrials = 64

// MinimizeResult describes one minimization: the original spec, the
// reduced reproducer, and how much work the search spent.
type MinimizeResult struct {
	Policy   string     `json:"policy"`
	Original GadgetSpec `json:"original"`
	Reduced  GadgetSpec `json:"reduced"`
	// Steps is how many reductions were accepted; Trials is how many
	// oracle pairs were run (including rejected candidates).
	Steps  int `json:"steps"`
	Trials int `json:"trials"`
	// Verdict is the reduced gadget's verdict under the target policy.
	Verdict Verdict `json:"verdict"`
}

// candidates proposes simpler variants of s, most aggressive first. Each
// candidate changes exactly one axis toward its simplest value; the greedy
// loop composes accepted changes across rounds. Proposals that would
// violate the spec invariants are skipped rather than repaired, so a
// candidate is always a strictly structurally simpler, valid spec.
func candidates(s GadgetSpec) []GadgetSpec {
	var out []GadgetSpec
	propose := func(c GadgetSpec) {
		if c.Validate() == nil {
			out = append(out, c)
		}
	}
	if s.NoiseBlocks > 0 {
		c := s
		c.NoiseBlocks = 0
		propose(c)
	}
	if s.Window != WindowBoundsCheck {
		c := s
		c.Window = WindowBoundsCheck
		propose(c)
	}
	if s.Pattern != PatternIndex {
		c := s
		c.Pattern = PatternIndex
		c.Bit = 0
		propose(c)
	}
	if s.Entries > 8 && s.SecretA < s.Entries/2 && s.SecretB < s.Entries/2 && s.Bit < log2int(s.Entries/2) {
		c := s
		c.Entries = s.Entries / 2
		propose(c)
	}
	if s.TrainRounds > 3 {
		c := s
		c.TrainRounds = 3
		propose(c)
	}
	for _, f := range []func(*GadgetSpec){
		func(c *GadgetSpec) { c.FenceBeforeAttack = false },
		func(c *GadgetSpec) { c.DelayAfterAttack = false },
		func(c *GadgetSpec) { c.SecretResident = false },
		func(c *GadgetSpec) { c.FlushBounds = false },
	} {
		c := s
		f(&c)
		if c != s {
			propose(c)
		}
	}
	return out
}

// log2int is log2 of a positive power of two, as an int bound.
func log2int(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// Minimize greedily shrinks a leaking gadget to a reduced reproducer that
// still leaks under cfg.Policy: in each round it tries the candidate
// simplifications in deterministic order and restarts from the first one
// whose differential pair still reports a leak, until no candidate
// survives or the trial budget is spent. The input spec must itself leak
// under cfg — minimizing a non-leaking gadget is an error, not a no-op.
func Minimize(s GadgetSpec, cfg sim.Config) (MinimizeResult, error) {
	res := MinimizeResult{Policy: string(cfg.Policy), Original: s}
	v, err := RunPair(s, cfg)
	if err != nil {
		return res, err
	}
	res.Trials++
	if !v.Leak {
		return res, fmt.Errorf("specfuzz: gadget %s does not leak under %s; nothing to minimize", s.ID, cfg.Policy)
	}

	cur, curV := s, v
	for res.Trials < maxMinimizeTrials {
		advanced := false
		for _, c := range candidates(cur) {
			if res.Trials >= maxMinimizeTrials {
				break
			}
			cv, cerr := RunPair(c, cfg)
			res.Trials++
			if cerr != nil {
				// A candidate that fails to execute is just rejected;
				// the current reproducer is still valid.
				continue
			}
			if cv.Leak {
				cur, curV = c, cv
				res.Steps++
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}
	res.Reduced, res.Verdict = cur, curV
	return res, nil
}
