package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/sim"
)

// Engine executes jobs with memoization, optional disk caching, bounded
// parallelism, and retry-on-failure. The zero value is not ready to use;
// call NewEngine.
//
// Result lookup order for a job: in-memory memo → disk cache → simulate.
// Fresh results are written through to both layers, so a later engine (or
// a later process) pointed at the same cache directory starts warm.
type Engine struct {
	// Cache is the optional disk layer (nil → memory-only engine).
	Cache *Cache
	// Workers bounds the pool for Run (0 → runtime.GOMAXPROCS(0)). Each
	// job is an independent CPU-bound sim.RunWorkload, so one worker per
	// processor is the sweet spot.
	Workers int
	// Retries is how many times a failed job is re-attempted (default 1).
	Retries int
	// RetryMaxCycles bounds Config.MaxCycles on retry attempts so a
	// pathologically stalled configuration times out instead of burning a
	// worker for the 500M-cycle default (default 50M).
	RetryMaxCycles uint64
	// Manifest, when non-nil, receives per-job status updates and is
	// saved after every job completion.
	Manifest *Manifest
	// Reporter, when non-nil, streams completed/total + ETA as jobs
	// finish.
	Reporter *Reporter

	mu   sync.Mutex
	memo map[string]sim.Result

	sims atomic.Int64
}

// NewEngine returns a memory-only engine with default pool sizing; callers
// attach Cache / Manifest / Reporter as needed.
func NewEngine() *Engine {
	return &Engine{Retries: 1, RetryMaxCycles: 50_000_000, memo: make(map[string]sim.Result)}
}

// Simulations returns how many actual simulator invocations the engine
// has performed (cache and memo hits excluded, retries included) — the
// number the cache-determinism tests pin to zero on a warm rerun.
func (e *Engine) Simulations() int64 { return e.sims.Load() }

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) lookup(key string) (sim.Result, bool) {
	e.mu.Lock()
	res, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		return res, true
	}
	if e.Cache != nil {
		if entry, ok := e.Cache.Get(key); ok {
			e.mu.Lock()
			e.memo[key] = entry.Result
			e.mu.Unlock()
			return entry.Result, true
		}
	}
	return sim.Result{}, false
}

func (e *Engine) store(job Job, key string, res sim.Result) error {
	e.mu.Lock()
	e.memo[key] = res
	e.mu.Unlock()
	if e.Cache != nil {
		return e.Cache.Put(job, res)
	}
	return nil
}

// RunOne executes a single job through the memo and cache, returning
// whether the result was served from a cache layer. Failures are retried
// per the engine's retry policy before being returned.
func (e *Engine) RunOne(job Job) (res sim.Result, cached bool, err error) {
	r := e.runJob(job)
	return r.Result, r.Cached, r.Err
}

func (e *Engine) runJob(job Job) JobResult {
	key := job.Key()
	start := time.Now() //simlint:allow determinism -- JobResult.Elapsed is reporting metadata for the progress line, not part of any result or key
	if res, ok := e.lookup(key); ok {
		return JobResult{Job: job, Key: key, Result: res, Cached: true, Elapsed: time.Since(start)}
	}
	var (
		res      sim.Result
		err      error
		attempts int
	)
	for attempt := 0; attempt <= e.Retries; attempt++ {
		cfg := job.Config
		// Every fresh simulation runs instrumented so the cached entry
		// carries the full counter snapshot (Result.Metrics). Counter
		// bindings are free on the hot path and no sampler is attached,
		// so this does not slow the job or change its outcome.
		cfg.Metrics = &sim.Metrics{}
		if attempt > 0 && e.RetryMaxCycles > 0 {
			// Retry under a tighter cycle budget: a deterministic stall
			// will stall again, and the bounded budget turns it into a
			// prompt per-job timeout instead of a hung worker.
			if cfg.MaxCycles == 0 || cfg.MaxCycles > e.RetryMaxCycles {
				cfg.MaxCycles = e.RetryMaxCycles
			}
		}
		attempts++
		e.sims.Add(1)
		res, err = sim.RunWorkload(job.Workload, cfg)
		if err == nil {
			break
		}
	}
	jr := JobResult{Job: job, Key: key, Attempts: attempts, Elapsed: time.Since(start)}
	if err != nil {
		// Not wrapped with the job name: every consumer (reporter,
		// manifest, CLI failure listing) prints jr.Job alongside.
		jr.Err = err
		return jr
	}
	jr.Result = res
	if serr := e.store(job, key, res); serr != nil {
		// A result that simulated fine but failed to persist is still a
		// usable result; surface the cache problem without failing the job.
		jr.Err = nil
		if e.Reporter != nil {
			e.Reporter.Warn(fmt.Sprintf("cache write failed for %s: %v", job, serr))
		}
	}
	return jr
}

// Run executes jobs on the worker pool and returns their results in job
// order (independent of scheduling), so aggregation over the returned
// slice is deterministic for a fixed grid. The manifest, when attached,
// is reconciled before execution and saved as jobs complete; Run never
// aborts on individual job failures — inspect JobResult.Err (or Failed on
// the returned slice) for the per-cell outcomes.
func (e *Engine) Run(jobs []Job) []JobResult {
	if e.Manifest != nil {
		e.Manifest.Reconcile(e.Manifest.Grid, jobs)
		_ = e.Manifest.Save()
	}
	if e.Reporter != nil {
		e.Reporter.Start(len(jobs))
	}
	results := make([]JobResult, len(jobs))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < e.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(jobs) {
					return
				}
				jr := e.runJob(jobs[i])
				results[i] = jr
				if e.Manifest != nil {
					e.Manifest.Record(jr)
					_ = e.Manifest.Save()
				}
				if e.Reporter != nil {
					e.Reporter.JobDone(jr)
				}
			}
		}()
	}
	wg.Wait()
	if e.Reporter != nil {
		e.Reporter.Finish()
	}
	if e.Manifest != nil {
		_ = e.Manifest.Save()
	}
	return results
}

// Failed filters the failed results out of a Run output.
func Failed(results []JobResult) []JobResult {
	var out []JobResult
	for _, r := range results {
		if r.Failed() {
			out = append(out, r)
		}
	}
	return out
}
