package sim

import (
	"testing"
)

func TestWorkloadLists(t *testing.T) {
	if len(Workloads()) != 19 {
		t.Fatalf("%d workloads", len(Workloads()))
	}
	if len(MTWorkloads()) != 23 {
		t.Fatalf("%d MT workloads", len(MTWorkloads()))
	}
	if len(Policies()) != 7 {
		t.Fatalf("%d policies", len(Policies()))
	}
}

func TestUnknownNamesError(t *testing.T) {
	if _, err := RunWorkload("nope", Config{}); err == nil {
		t.Fatal("unknown workload must error")
	}
	if _, err := RunWorkload("astar", Config{Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy must error")
	}
	if _, err := RunMTWorkload("nope", 10); err == nil {
		t.Fatal("unknown MT workload must error")
	}
}

func TestRunWorkloadBasics(t *testing.T) {
	res, err := RunWorkload("astar", Config{Instructions: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 30_000 || res.Cycles == 0 || res.IPC <= 0 {
		t.Fatalf("implausible result %+v", res)
	}
	if res.MispredictRate <= 0 || res.SquashPKI <= 0 {
		t.Fatalf("astar must mispredict: %+v", res)
	}
}

func TestCleanupSpecSlowdownIsModest(t *testing.T) {
	const n = 60_000
	base, err := RunWorkload("astar", Config{Policy: NonSecure, Instructions: n})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := RunWorkload("astar", Config{Policy: CleanupSpec, Instructions: n})
	if err != nil {
		t.Fatal(err)
	}
	slow := float64(cs.Cycles)/float64(base.Cycles) - 1
	// The paper reports 24% for astar (its worst case); anything between
	// 0 and 60% is a sane shape for the synthetic stand-in.
	if slow < -0.05 || slow > 0.6 {
		t.Fatalf("astar CleanupSpec slowdown %.1f%% out of plausible range", slow*100)
	}
}

func TestPolicyOrderingAcrossSuite(t *testing.T) {
	// Table 6's headline ordering holds on suite averages, not on every
	// workload (the paper's CleanupSpec worst case, astar at 24%,
	// exceeds InvisiSpec-Revised's 15% average too). Average the
	// slowdowns over a representative mix: mispredict-heavy (gobmk),
	// miss-heavy (libq, lbm), and mixed (sphinx3, soplex).
	const n = 50_000
	wls := []string{"gobmk", "sphinx3", "soplex", "lbm", "libq"}
	avg := func(p Policy) float64 {
		sum := 0.0
		for _, w := range wls {
			base, err := RunWorkload(w, Config{Policy: NonSecure, Instructions: n})
			if err != nil {
				t.Fatalf("%s: %v", w, err)
			}
			res, err := RunWorkload(w, Config{Policy: p, Instructions: n})
			if err != nil {
				t.Fatalf("%s/%s: %v", w, p, err)
			}
			sum += float64(res.Cycles)/float64(base.Cycles) - 1
		}
		return sum / float64(len(wls))
	}
	cs := avg(CleanupSpec)
	revised := avg(InvisiSpecRevised)
	initial := avg(InvisiSpecInitial)
	if cs < -0.01 {
		t.Errorf("CleanupSpec average speedup %.1f%% is implausible", cs*100)
	}
	if revised <= cs {
		t.Errorf("InvisiSpec-Revised avg (%.1f%%) not slower than CleanupSpec (%.1f%%)",
			revised*100, cs*100)
	}
	if initial <= revised {
		t.Errorf("InvisiSpec-Initial avg (%.1f%%) not slower than Revised (%.1f%%)",
			initial*100, revised*100)
	}
}

func TestRandomizationOverrides(t *testing.T) {
	on := true
	res, err := RunWorkload("gcc", Config{Instructions: 20_000, L1RandomRepl: &on, RandomizeL2: &on})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestRunSpectreFacade(t *testing.T) {
	res, err := RunSpectre(NonSecure, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Leaked {
		t.Fatal("facade spectre run should leak on nonsecure")
	}
	res, err = RunSpectre(CleanupSpec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaked {
		t.Fatal("facade spectre run must not leak under cleanupspec")
	}
}

func TestRunMTWorkloadFacade(t *testing.T) {
	res, err := RunMTWorkload("dedup", 5_000)
	if err != nil {
		t.Fatal(err)
	}
	sum := res.UnsafeFrac + res.SafeCacheFrac + res.SafeDRAMFrac
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("fractions sum %v", sum)
	}
}

func TestStorageOverhead(t *testing.T) {
	if b := StorageOverheadBytes(); b <= 0 || b >= 1024 {
		t.Fatalf("storage overhead %d bytes, want <1KB (Section 6.6)", b)
	}
}

func TestCustomProgram(t *testing.T) {
	b := NewProgram("custom")
	b.Li(1, 21)
	b.AluI(2, 1, 1, 0) // placeholder; replaced below
	_ = b
	// Build a real tiny program through the builder API.
	pb := NewProgram("double")
	pb.Li(1, 21)
	pb.Add(2, 1, 1)
	pb.Halt()
	res, err := RunProgram("double", pb.Build(), Config{Instructions: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 3 {
		t.Fatalf("committed %d", res.Instructions)
	}
}

func TestTraceKnob(t *testing.T) {
	ring := NewTraceRing(128)
	_, err := RunWorkload("gcc", Config{Instructions: 5_000, Trace: ring, NoWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Total() == 0 {
		t.Fatal("trace captured nothing")
	}
}

func TestNewBaselinePolicies(t *testing.T) {
	for _, p := range []Policy{DelayOnMiss, ValuePredict} {
		res, err := RunWorkload("gcc", Config{Policy: p, Instructions: 10_000})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Cycles == 0 {
			t.Fatalf("%s: no cycles", p)
		}
	}
}

func TestAssembleFacade(t *testing.T) {
	prog, err := Assemble("asm", `
		li r1, 20
		addi r2, r1, 22
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunProgram("asm", prog, Config{NoWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 3 {
		t.Fatalf("committed %d", res.Instructions)
	}
	if _, err := Assemble("bad", "nonsense"); err == nil {
		t.Fatal("assembler must report errors")
	}
}
