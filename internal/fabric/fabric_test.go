package fabric

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// newWorker builds a step-machine worker with its own engine and local
// cache, sleeps disabled so tests drive every round explicitly.
func newWorker(t *testing.T, id string, conn Conn) *Worker {
	t.Helper()
	eng := campaign.NewEngine()
	eng.Reporter = campaign.NewReporter(io.Discard)
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	return &Worker{ID: id, Conn: conn, Engine: eng, Sleep: func(time.Duration) {}}
}

// runToShutdown steps w until the coordinator declares the campaign
// settled, with an iteration bound so a livelock fails instead of hanging.
func runToShutdown(t *testing.T, w *Worker) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		done, err := w.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return
		}
	}
	t.Fatalf("worker %s: no shutdown after 1000 steps", w.ID)
}

// referenceExport runs jobs on a plain single-host engine and renders the
// cache's deterministic export surfaces — the bytes every fabric topology
// must converge to.
func referenceExport(t *testing.T, jobs []campaign.Job) (entriesCSV string) {
	t.Helper()
	eng := campaign.NewEngine()
	eng.Workers = 1
	eng.Reporter = campaign.NewReporter(io.Discard)
	cache, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	results := eng.Run(jobs)
	if n := len(campaign.Failed(results)); n != 0 {
		t.Fatalf("%d reference jobs failed", n)
	}
	return cacheExport(t, cache)
}

// cacheExport renders a cache's entries as the canonical CSV export.
func cacheExport(t *testing.T, cache *campaign.Cache) string {
	t.Helper()
	entries, err := cache.Entries()
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := campaign.EntriesCSV(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFabricTwoWorkersMatchSingleHost(t *testing.T) {
	cells := testCells(t, 4)
	// A dependency edge: the last cell must wait for the first.
	cells[3].Deps = []string{cells[0].Key}
	jobs := make([]campaign.Job, 0, len(cells))
	for _, c := range cells {
		jobs = append(jobs, c.Job)
	}
	want := referenceExport(t, jobs)

	c, err := NewCoordinator(Config{Grid: "two-workers", Cells: cells, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := &LocalConn{C: c}
	w1, w2 := newWorker(t, "w1", conn), newWorker(t, "w2", conn)
	for i := 0; ; i++ {
		if i > 1000 {
			t.Fatal("campaign did not settle in 1000 rounds")
		}
		d1, err1 := w1.Step()
		d2, err2 := w2.Step()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if d1 && d2 {
			break
		}
	}

	if !c.Settled() {
		t.Fatal("coordinator not settled after both workers shut down")
	}
	_, _, done, failed, quarantined := c.Counts()
	if done != len(cells) || failed != 0 || quarantined != 0 {
		t.Fatalf("counts: done=%d failed=%d quarantined=%d, want %d/0/0", done, failed, quarantined, len(cells))
	}
	st := c.Stats()
	if st.Granted != uint64(len(cells)) || st.Completed != uint64(len(cells)) {
		t.Errorf("stats: granted=%d completed=%d, want %d each", st.Granted, st.Completed, len(cells))
	}
	if w1.CellsRun+w2.CellsRun != len(cells) {
		t.Errorf("cells run: %d + %d, want %d total", w1.CellsRun, w2.CellsRun, len(cells))
	}
	if got := cacheExport(t, c.Cache()); got != want {
		t.Errorf("fabric export differs from single-host run:\n%s\nvs\n%s", got, want)
	}
	mp, md, mf, mq := c.Manifest().Counts()
	if mp != 0 || md != len(cells) || mf != 0 || mq != 0 {
		t.Errorf("manifest counts: %d/%d/%d/%d, want 0/%d/0/0", mp, md, mf, mq, len(cells))
	}
}

// TestFabricStaleCompletionAndRemoteHit walks the reclaimed-lease race end
// to end: w1 goes dark holding a lease, the cell re-queues and re-grants
// to w2, w1's late completion lands stale (accepted), and w2 then serves
// the cell from the coordinator's shared cache instead of re-simulating.
func TestFabricStaleCompletionAndRemoteHit(t *testing.T) {
	cells := testCells(t, 1)
	c, err := NewCoordinator(Config{Grid: "stale", Cells: cells, CacheDir: t.TempDir(), TTLTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := &LocalConn{C: c}
	w1, w2 := newWorker(t, "w1", conn), newWorker(t, "w2", conn)

	if _, err := w1.Step(); err != nil { // w1 acquires the lease...
		t.Fatal(err)
	}
	if w1.Holding() != cells[0].Key {
		t.Fatal("w1 did not acquire the lease")
	}
	if n := c.Advance(6); n != 1 { // ...and "dies": the clock reclaims it
		t.Fatalf("reclaimed %d leases, want 1", n)
	}
	if _, err := w2.Step(); err != nil { // w2 picks the cell up
		t.Fatal(err)
	}
	if w2.Holding() != cells[0].Key {
		t.Fatal("w2 did not acquire the reclaimed lease")
	}
	if _, err := w1.Step(); err != nil { // w1 was alive all along: stale complete
		t.Fatal(err)
	}
	if _, err := w2.Step(); err != nil { // w2 executes: local miss, remote hit
		t.Fatal(err)
	}
	runToShutdown(t, w1)
	runToShutdown(t, w2)

	st := c.Stats()
	if st.Expired != 1 || st.StaleCompletes != 1 || st.DupCompletes != 1 {
		t.Errorf("stats: expired=%d stale=%d dup=%d, want 1/1/1", st.Expired, st.StaleCompletes, st.DupCompletes)
	}
	if st.RemoteReads != 1 || w2.RemoteHits != 1 {
		t.Errorf("remote reads=%d, w2 hits=%d, want 1/1", st.RemoteReads, w2.RemoteHits)
	}
	if w1.CellsRun != 1 || w2.CellsRun != 0 {
		t.Errorf("cells run: w1=%d w2=%d, want 1/0 (w2 served remotely)", w1.CellsRun, w2.CellsRun)
	}
	if _, _, done, _, _ := c.Counts(); done != 1 {
		t.Errorf("done=%d, want 1", done)
	}
}

// corruptEntryConn damages every remote entry it relays — the wire-level
// bit-rot the worker must survive by degrading to local simulation.
type corruptEntryConn struct{ inner Conn }

func (c *corruptEntryConn) Do(m Msg) (Msg, error) {
	resp, err := c.inner.Do(m)
	if err == nil && resp.Type == MsgEntry && resp.Entry != nil {
		e := *resp.Entry
		e.Sum = "deadbeef" // breaks checksum verification
		resp.Entry = &e
	}
	return resp, err
}

func TestFabricCorruptRemoteEntryDegrades(t *testing.T) {
	cells := testCells(t, 1)
	c, err := NewCoordinator(Config{Grid: "degrade", Cells: cells, CacheDir: t.TempDir(), TTLTicks: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	conn := &LocalConn{C: c}
	w1 := newWorker(t, "w1", conn)
	w2 := newWorker(t, "w2", &corruptEntryConn{inner: conn})

	// Same reclaimed-lease dance as above, but w2's remote read comes back
	// damaged: it must fall back to simulating the cell itself.
	if _, err := w1.Step(); err != nil {
		t.Fatal(err)
	}
	c.Advance(6)
	if _, err := w2.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Step(); err != nil {
		t.Fatal(err)
	}
	runToShutdown(t, w1)
	runToShutdown(t, w2)

	if w2.Degraded != 1 || w2.RemoteHits != 0 || w2.CellsRun != 1 {
		t.Errorf("w2: degraded=%d remoteHits=%d cellsRun=%d, want 1/0/1", w2.Degraded, w2.RemoteHits, w2.CellsRun)
	}
	// The shared cache still holds exactly the verified entry.
	e, ok := c.Cache().Get(cells[0].Key)
	if !ok || !e.Verify() {
		t.Fatal("shared cache entry missing or unverifiable after degrade")
	}
}

// TestFabricRejectsCorruptUpload: a completion whose entry fails its
// checksum must be refused without settling the cell or poisoning the
// shared cache.
func TestFabricRejectsCorruptUpload(t *testing.T) {
	cells := testCells(t, 1)
	c, err := NewCoordinator(Config{Grid: "reject", Cells: cells, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	grant := c.Handle(Msg{Type: MsgLeaseReq, Worker: "w1"})
	if grant.Type != MsgGrant {
		t.Fatalf("grant reply: %+v", grant)
	}
	r := campaign.NewEngine().RunJob(*grant.Job)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	e, err := campaign.NewEntry(r.Job, r.Result, r.Aux)
	if err != nil {
		t.Fatal(err)
	}
	e.Sum = "deadbeef"
	resp := c.Handle(Msg{Type: MsgComplete, Worker: "w1", Key: grant.Key, Lease: grant.Lease, Status: campaign.StatusDone, Entry: &e})
	if resp.Type != MsgNack {
		t.Fatalf("corrupt upload accepted: %+v", resp)
	}
	if st := c.Stats(); st.Rejected != 1 || st.Completed != 0 {
		t.Errorf("stats: rejected=%d completed=%d, want 1/0", st.Rejected, st.Completed)
	}
	if _, ok := c.Cache().Get(grant.Key); ok {
		t.Fatal("corrupt entry reached the shared cache")
	}
	if _, _, done, _, _ := c.Counts(); done != 0 {
		t.Fatal("cell settled from a rejected upload")
	}
}

// TestFabricResume: a second coordinator over the same cache dir settles
// every already-simulated cell from verified entries alone — no lease, no
// re-simulation — and only the remainder is re-run.
func TestFabricResume(t *testing.T) {
	cells := testCells(t, 3)
	dir := t.TempDir()
	c1, err := NewCoordinator(Config{Grid: "resume", Cells: cells[:2], CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	w := newWorker(t, "w1", &LocalConn{C: c1})
	runToShutdown(t, w)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := NewCoordinator(Config{Grid: "resume", Cells: cells, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if st := c2.Stats(); st.ResumedCells != 2 {
		t.Fatalf("resumed %d cells, want 2", st.ResumedCells)
	}
	w2 := newWorker(t, "w2", &LocalConn{C: c2})
	runToShutdown(t, w2)
	if w2.CellsRun != 1 {
		t.Errorf("resumed run simulated %d cells, want 1 (the new one)", w2.CellsRun)
	}
	if _, _, done, _, _ := c2.Counts(); done != 3 {
		t.Errorf("done=%d, want 3", done)
	}
}

// TestFabricHTTPTransport runs the same protocol through the real HTTP
// plane: handler on the coordinator side, HTTPConn on the worker side.
func TestFabricHTTPTransport(t *testing.T) {
	cells := testCells(t, 2)
	jobs := []campaign.Job{cells[0].Job, cells[1].Job}
	want := referenceExport(t, jobs)

	c, err := NewCoordinator(Config{Grid: "http", Cells: cells, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	w := newWorker(t, "w1", &HTTPConn{URL: srv.URL})
	runToShutdown(t, w)

	if got := cacheExport(t, c.Cache()); got != want {
		t.Errorf("HTTP-transported export differs from single-host run:\n%s\nvs\n%s", got, want)
	}
	if st := c.Stats(); st.Completed != 2 {
		t.Errorf("completed=%d, want 2", st.Completed)
	}
}

// TestFabricFailedCellCascades: a cell whose job fails settles as failed
// and takes its dependents with it — the campaign still terminates.
func TestFabricFailedCellCascades(t *testing.T) {
	cells := testCells(t, 2)
	// An unknown workload fails in the engine (after its retry).
	cells[0].Job.Workload = "no-such-workload"
	var err error
	cells[0].Key, err = cells[0].Job.Key()
	if err != nil {
		t.Fatal(err)
	}
	cells[1].Deps = []string{cells[0].Key}

	c, err := NewCoordinator(Config{Grid: "cascade", Cells: cells, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := newWorker(t, "w1", &LocalConn{C: c})
	runToShutdown(t, w)

	_, _, done, failed, _ := c.Counts()
	if done != 0 || failed != 2 {
		t.Fatalf("done=%d failed=%d, want 0/2 (failure + cascade)", done, failed)
	}
}
