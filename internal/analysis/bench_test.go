package analysis

import (
	"path/filepath"
	"testing"
)

// BenchmarkSimlintModule is the engine's end-to-end hot path: a fresh
// Runner per iteration rebuilds the call graph, the lock/taint/undo
// summaries, and every analyzer pass over the golden module. The
// committed BENCH_SIMLINT_PR8.json baseline gates it in CI, so summary
// fixpoints that regress into quadratic behavior fail the build.
func BenchmarkSimlintModule(b *testing.B) {
	mod, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		b.Fatalf("load testdata module: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if findings := NewRunner(mod).Run(Analyzers(), nil); len(findings) == 0 {
			b.Fatal("golden module produced no findings")
		}
	}
}
