// Package dram models main memory. The paper configures a 50 ns round trip
// after the L2 (Table 4) and — importantly for security — a close-page
// row-buffer policy at the memory controller so that row-buffer hit/miss
// timing cannot be used as a covert channel (DRAMA, Section 2.1).
//
// The model therefore supports both policies: ClosePage (constant latency,
// the secure default used in all paper experiments) and OpenPage (row-buffer
// hits are faster), the latter existing so tests and an ablation bench can
// demonstrate the timing channel the close-page policy removes.
package dram

import (
	"repro/internal/arch"
)

// RowPolicy selects the row-buffer management policy.
type RowPolicy int

const (
	// ClosePage precharges after every access: constant latency, no
	// row-buffer timing channel. This is the paper's configuration.
	ClosePage RowPolicy = iota
	// OpenPage leaves the row open: same-row accesses are faster. Used
	// only to demonstrate the channel that ClosePage closes.
	OpenPage
)

func (p RowPolicy) String() string {
	if p == ClosePage {
		return "close-page"
	}
	return "open-page"
}

// Config describes the memory model.
type Config struct {
	// RTCycles is the round-trip latency after an L2 miss, in core
	// cycles (paper: 50 ns at 2 GHz = 100 cycles).
	RTCycles arch.Cycle
	// Policy is the row-buffer policy.
	Policy RowPolicy
	// RowBytes is the row-buffer size (open-page mode only).
	RowBytes int
	// RowHitSaving is the latency saved by a row-buffer hit
	// (open-page mode only).
	RowHitSaving arch.Cycle
	// Banks is the number of banks, each with one row buffer
	// (open-page mode only).
	Banks int
}

// DefaultConfig returns the paper's memory configuration.
func DefaultConfig() Config {
	return Config{
		RTCycles:     100, // 50ns at 2GHz
		Policy:       ClosePage,
		RowBytes:     8192,
		RowHitSaving: 40,
		Banks:        16,
	}
}

// Stats counts memory events.
type Stats struct {
	Reads      uint64
	Writes     uint64
	RowHits    uint64
	RowMisses  uint64
	TotalDelay arch.Cycle
}

// DRAM is the main-memory model.
type DRAM struct {
	cfg     Config
	openRow []int64 // per-bank open row, -1 = closed

	Stats Stats
}

// New builds a DRAM model.
func New(cfg Config) *DRAM {
	banks := cfg.Banks
	if banks <= 0 {
		banks = 1
	}
	open := make([]int64, banks)
	for i := range open {
		open[i] = -1
	}
	return &DRAM{cfg: cfg, openRow: open}
}

// Config returns the active configuration.
func (d *DRAM) Config() Config { return d.cfg }

func (d *DRAM) bankRow(l arch.LineAddr) (bank int, row int64) {
	byteAddr := uint64(l.Addr())
	row = int64(byteAddr / uint64(d.cfg.RowBytes))
	bank = int(row) % len(d.openRow)
	return bank, row
}

// AccessLatency returns the latency of a read or write of line l and
// updates row-buffer state. Under ClosePage the latency is constant.
func (d *DRAM) AccessLatency(l arch.LineAddr, write bool) arch.Cycle {
	if write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	lat := d.cfg.RTCycles
	if d.cfg.Policy == OpenPage {
		bank, row := d.bankRow(l)
		if d.openRow[bank] == row {
			d.Stats.RowHits++
			if lat > d.cfg.RowHitSaving {
				lat -= d.cfg.RowHitSaving
			}
		} else {
			d.Stats.RowMisses++
			d.openRow[bank] = row
		}
	}
	d.Stats.TotalDelay += lat
	return lat
}

// ResetStats zeroes counters (row-buffer state is kept).
func (d *DRAM) ResetStats() { d.Stats = Stats{} }
