package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// StatusHandler serves the JSON produced by status() — the campaign
// engine passes Manifest.Status, so /status is a live per-cell view
// (state, hit/miss, quarantine) of the running grid. The snapshot
// function runs per request; it must be safe for concurrent use.
func StatusHandler(status func() any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		if err := enc.Encode(status()); err != nil {
			// Headers are gone; all we can do is note it in the body.
			fmt.Fprintf(w, "\n// encode error: %v\n", err)
		}
	})
}

// MetricsHandler serves a text exposition of the registry snapshot
// returned by snap(). The registry itself is single-threaded; callers
// hand in a closure that snapshots it safely (the campaign engine's
// registry is append-only after setup and every bound source is either
// atomic or lock-guarded, so Snapshot per request is sound there).
func MetricsHandler(snap func() metrics.Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteTextExposition(w, snap())
	})
}

// WriteTextExposition renders a snapshot in the conventional one-line-
// per-sample text format: `name value`, names sorted, gauges suffixed
// with their kind comment, histograms as count/sum plus per-bucket
// cumulative lines. Output is deterministic for a given snapshot.
func WriteTextExposition(w io.Writer, s metrics.Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", sanitizeMetricName(name), s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s %g\n", sanitizeMetricName(name), s.Gauges[name])
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		base := sanitizeMetricName(name)
		fmt.Fprintf(w, "%s_count %d\n", base, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", base, h.Sum)
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", base, b.Hi, cum)
		}
	}
}

// sanitizeMetricName maps registry names ("cache.l1d.hits") onto the
// exposition charset ("cache_l1d_hits").
func sanitizeMetricName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}
