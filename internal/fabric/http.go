package fabric

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// maxMsgBytes bounds one protocol message on the wire. A completion
// carries one cache entry (a few KB of JSON); 16 MiB is three orders of
// magnitude of headroom while still refusing a runaway body.
const maxMsgBytes = 16 << 20

// Handler serves the fabric protocol over HTTP: POST one Msg as JSON,
// receive the reply Msg as JSON. `campaign serve` mounts it at /fabric on
// the same plane as /status and /metrics. Malformed bodies get a nack
// with HTTP 200 — transport-level success, protocol-level refusal — so a
// worker behind a mangling proxy retries instead of special-casing
// status codes.
func Handler(c *Coordinator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "fabric endpoint accepts POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxMsgBytes))
		if err != nil {
			writeMsg(w, Msg{Type: MsgNack, Reason: "reading request: " + err.Error()})
			return
		}
		var m Msg
		if err := json.Unmarshal(body, &m); err != nil {
			writeMsg(w, Msg{Type: MsgNack, Reason: "parsing request: " + err.Error()})
			return
		}
		writeMsg(w, c.Handle(m))
	})
}

// writeMsg encodes one reply.
func writeMsg(w http.ResponseWriter, m Msg) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(m); err != nil {
		// Headers are gone; the worker sees a short read and retries.
		_ = err
	}
}

// HTTPConn reaches a coordinator's /fabric endpoint: the transport
// `campaign work` uses. Any transport error — refused connection, reset,
// short body, non-JSON reply — surfaces as a Do error, which the worker
// treats as a lost message and retries with backoff.
type HTTPConn struct {
	// URL is the coordinator's fabric endpoint
	// (e.g. http://host:8080/fabric).
	URL string
	// Client is the HTTP client (nil = http.DefaultClient).
	Client *http.Client
}

// Do POSTs m and decodes the reply.
func (c *HTTPConn) Do(m Msg) (Msg, error) {
	blob, err := json.Marshal(m)
	if err != nil {
		return Msg{}, fmt.Errorf("fabric: encoding %s: %w", m.Type, err)
	}
	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(c.URL, "application/json", bytes.NewReader(blob))
	if err != nil {
		return Msg{}, fmt.Errorf("fabric: %s: %w", m.Type, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxMsgBytes))
	if err != nil {
		return Msg{}, fmt.Errorf("fabric: reading %s reply: %w", m.Type, err)
	}
	if resp.StatusCode != http.StatusOK {
		return Msg{}, fmt.Errorf("fabric: %s: HTTP %d: %s", m.Type, resp.StatusCode, bytes.TrimSpace(body))
	}
	var reply Msg
	if err := json.Unmarshal(body, &reply); err != nil {
		return Msg{}, fmt.Errorf("fabric: parsing %s reply: %w", m.Type, err)
	}
	return reply, nil
}
