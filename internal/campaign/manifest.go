package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/sim"
)

// Job statuses recorded in the manifest.
const (
	StatusPending = "pending"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// JobRecord is one job's row in the manifest.
type JobRecord struct {
	Workload string     `json:"workload"`
	Policy   sim.Policy `json:"policy"`
	Variant  string     `json:"variant,omitempty"`
	Seed     uint64     `json:"seed"`
	Status   string     `json:"status"`
	Attempts int        `json:"attempts,omitempty"`
	Cached   bool       `json:"cached,omitempty"`
	Err      string     `json:"err,omitempty"`
	Cycles   uint64     `json:"cycles,omitempty"`
	IPC      float64    `json:"ipc,omitempty"`
	MS       int64      `json:"ms,omitempty"` // wall-clock milliseconds
}

// Manifest records a campaign's identity and per-job status. It lives as
// manifest.json at the cache root; `campaign status` renders it, and a
// rerun of the same grid reconciles against it so finished cells stay
// done and previously failed cells show up as retried.
type Manifest struct {
	Grid string                `json:"grid"`
	Jobs map[string]*JobRecord `json:"jobs"` // keyed by cache key

	mu   sync.Mutex
	path string
}

// ManifestPath returns the manifest location for a cache directory.
func ManifestPath(cacheDir string) string {
	return filepath.Join(cacheDir, "manifest.json")
}

// NewManifest creates an empty manifest that saves to the given cache dir.
func NewManifest(cacheDir, grid string) *Manifest {
	return &Manifest{Grid: grid, Jobs: make(map[string]*JobRecord), path: ManifestPath(cacheDir)}
}

// LoadManifest reads the manifest from a cache dir; ok=false if none
// exists (or it is unreadable, in which case it is simply rebuilt).
func LoadManifest(cacheDir string) (*Manifest, bool) {
	data, err := os.ReadFile(ManifestPath(cacheDir))
	if err != nil {
		return nil, false
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil || m.Jobs == nil {
		return nil, false
	}
	m.path = ManifestPath(cacheDir)
	return &m, true
}

// Reconcile registers every job of a new run: jobs not yet present (or
// previously failed) become pending; jobs already done are left alone.
func (m *Manifest) Reconcile(grid string, jobs []Job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.Grid = grid
	for _, j := range jobs {
		key := j.Key()
		if rec, ok := m.Jobs[key]; ok && rec.Status == StatusDone {
			continue
		}
		rc := j.Config.Resolved()
		m.Jobs[key] = &JobRecord{
			Workload: j.Workload,
			Policy:   rc.Policy,
			Variant:  j.Variant,
			Seed:     rc.Seed,
			Status:   StatusPending,
		}
	}
}

// Record updates one job's outcome.
func (m *Manifest) Record(r JobResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rc := r.Job.Config.Resolved()
	rec := &JobRecord{
		Workload: r.Job.Workload,
		Policy:   rc.Policy,
		Variant:  r.Job.Variant,
		Seed:     rc.Seed,
		Status:   StatusDone,
		Attempts: r.Attempts,
		Cached:   r.Cached,
		Cycles:   r.Result.Cycles,
		IPC:      r.Result.IPC,
		MS:       r.Elapsed.Milliseconds(),
	}
	if r.Err != nil {
		rec.Status = StatusFailed
		rec.Err = r.Err.Error()
	}
	m.Jobs[r.Key] = rec
}

// Save writes the manifest atomically (temp file + rename).
func (m *Manifest) Save() error {
	m.mu.Lock()
	data, err := json.MarshalIndent(struct {
		Grid string                `json:"grid"`
		Jobs map[string]*JobRecord `json:"jobs"`
	}{m.Grid, m.Jobs}, "", " ")
	path := m.path
	m.mu.Unlock()
	if err != nil {
		return fmt.Errorf("campaign: encoding manifest: %w", err)
	}
	if path == "" {
		return nil // in-memory manifest (no cache dir)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest.tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: saving manifest: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: saving manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: saving manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: saving manifest: %w", err)
	}
	return nil
}

// Counts returns the number of jobs per status.
func (m *Manifest) Counts() (pending, done, failed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	//simlint:ordered -- integer status counting is commutative
	for _, rec := range m.Jobs {
		switch rec.Status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
		default:
			pending++
		}
	}
	return
}

// Records returns every job record, sorted by (workload, policy, variant,
// seed) for stable output (`campaign status -v`).
func (m *Manifest) Records() []*JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*JobRecord, 0, len(m.Jobs))
	for _, rec := range m.Jobs {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		return a.Seed < b.Seed
	})
	return out
}

// Failures returns the failed job records, sorted for stable output.
func (m *Manifest) Failures() []*JobRecord {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*JobRecord
	for _, rec := range m.Jobs {
		if rec.Status == StatusFailed {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Policy != out[j].Policy {
			return out[i].Policy < out[j].Policy
		}
		return out[i].Seed < out[j].Seed
	})
	return out
}
