package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"maps"
	"sort"
	"strings"
	"sync"
)

// AnalyzerLockOrder checks the module's mutex discipline across the
// concurrent layers (internal/campaign, internal/faultinject, the metrics
// sampler, …) five ways, using the interprocedural lock summaries from
// summary.go:
//
//   - Lock-order cycles: every (held, acquired) pair observed anywhere in
//     the module — including acquisitions made transitively through
//     helper calls and interface method sets — forms a module-wide
//     acquisition graph; a cycle means two goroutines can deadlock by
//     taking the same locks in opposite orders. Reported once per cycle
//     from the Finish phase.
//   - Double acquisition: taking a mutex class on a path where the
//     dataflow says it is already held (self-deadlock for sync.Mutex).
//   - Callee re-acquisition: calling a function whose summary says it may
//     (transitively) acquire a class that is provably held at the call
//     site — the deadlock the intra-procedural pass cannot see.
//   - Goroutine spawns: a `go func` literal starts with an EMPTY lock
//     set, whatever the spawner holds, so guarded-field accesses inside a
//     spawned literal are checked against a provably-unlocked entry state
//     instead of being silently skipped. And when a class is provably
//     held at the `go` statement while the spawned function's summary
//     acquires that same class, the spawn is flagged: the goroutine
//     blocks on the spawner's lock, which is a latent deadlock if the
//     spawner ever waits on the goroutine before releasing.
//   - Guard violations: a field that is written under a struct's mutex
//     somewhere is treated as guarded by it; any access to that field in
//     another method of the same struct, on a path where the dataflow
//     proves the guard is NOT held, is reported. Methods whose name ends
//     in "Locked" are assumed to be called with every receiver mutex held.
//
// The lock-state lattice per mutex class is {No, Yes, Maybe}; joins of
// disagreeing paths produce Maybe, and only provable states (Yes for
// ordering/double-acquire/re-acquisition, No for guard violations) are
// acted on, so conditional locking never produces findings. `defer
// mu.Unlock()` keeps the class held through the function, matching its
// runtime semantics.
var AnalyzerLockOrder = &Analyzer{
	Name:   "lockorder",
	Doc:    "detect lock-order cycles, double/callee re-acquisition, locks held across goroutine spawns, and guarded fields accessed where the guard is provably not held",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

const (
	lsYes   uint8 = 1
	lsMaybe uint8 = 2
)

// lockFact is the dataflow fact: the state of every interesting mutex
// class at a program point. Absent classes are No when the entry state is
// known, and Maybe when it is not (function literals invoked on the
// caller's goroutine, whose lock state is invisible).
type lockFact struct {
	reached bool
	unknown bool
	m       map[string]uint8
}

func (f lockFact) state(class string) uint8 {
	if s, ok := f.m[class]; ok {
		return s
	}
	if f.unknown {
		return lsMaybe
	}
	return 0
}

// heldYes returns the classes provably held, sorted.
func (f lockFact) heldYes() []string {
	var held []string
	for c := range f.m {
		held = append(held, c)
	}
	sort.Strings(held)
	out := held[:0]
	for _, c := range held {
		if f.m[c] == lsYes {
			out = append(out, c)
		}
	}
	return out
}

func joinLockFacts(a, b lockFact) lockFact {
	if !a.reached {
		return b
	}
	if !b.reached {
		return a
	}
	out := lockFact{reached: true, unknown: a.unknown || b.unknown, m: make(map[string]uint8)}
	keys := make([]string, 0, len(a.m)+len(b.m))
	for c := range a.m {
		keys = append(keys, c)
	}
	for c := range b.m {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	for i, c := range keys {
		if i > 0 && keys[i-1] == c {
			continue
		}
		sa, inA := a.m[c]
		sb, inB := b.m[c]
		if inA && inB && sa == sb {
			out.m[c] = sa
		} else {
			out.m[c] = lsMaybe
		}
	}
	return out
}

func equalLockFacts(a, b lockFact) bool {
	return a.reached == b.reached && a.unknown == b.unknown && maps.Equal(a.m, b.m)
}

// lockEdge is one observed acquisition order: to was acquired while from
// was held.
type lockEdge struct {
	from, to string
}

// lockAccumulator collects acquisition-order edges from the concurrent
// per-package passes for the Finish phase's cycle detection.
type lockAccumulator struct {
	mu    sync.Mutex
	edges map[lockEdge]token.Position
}

// record notes an edge, keeping the earliest observation site so reports
// are deterministic regardless of worker scheduling.
func (a *lockAccumulator) record(from, to string, pos token.Position) {
	if from == to {
		return // double acquisition is its own finding, not a graph edge
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.edges == nil {
		a.edges = make(map[lockEdge]token.Position)
	}
	e := lockEdge{from: from, to: to}
	old, ok := a.edges[e]
	if !ok || positionLess(pos, old) {
		a.edges[e] = pos
	}
}

func positionLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func runLockOrder(p *Pass) {
	rel := p.Pkg.Rel()
	if !hasPathPrefix(rel, "internal") && !hasPathPrefix(rel, "sim") {
		return
	}
	facts := p.runner.lockModel(p.Mod)
	g := facts.g
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			recv := receiverStruct(p.Pkg, fd)
			checkLockBody(p, facts, fd.Body, methodEntryClasses(p.Pkg, fd), recv, false)
			checkNestedLits(p, facts, g, fd.Body, recv)
		}
	}
}

// checkNestedLits analyzes every function literal under body as its own
// function, recursively. A literal whose every use is a `go` spawn starts
// on a fresh goroutine with an empty lock set (entry provably unlocked);
// any other literal runs with its caller's invisible lock state (Maybe).
func checkNestedLits(p *Pass, facts *lockFacts, g *callGraph, body *ast.BlockStmt, recv *types.Named) {
	ast.Inspect(body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		spawned := litAlwaysSpawned(g, fl)
		checkLockBody(p, facts, fl.Body, nil, recv, !spawned)
		checkNestedLits(p, facts, g, fl.Body, recv)
		return false
	})
}

// litAlwaysSpawned reports whether every call-graph edge into the literal
// is a goroutine spawn (so its entry lock state is provably empty).
func litAlwaysSpawned(g *callGraph, fl *ast.FuncLit) bool {
	n := g.litNode(fl)
	if n == nil || len(n.in) == 0 {
		return false
	}
	for _, e := range n.in {
		if e.kind != edgeSpawn {
			return false
		}
	}
	return true
}

// checkLockBody solves the lock-state dataflow over one function body and
// reports double acquisitions, callee re-acquisitions, spawn hazards, and
// guard violations, recording acquisition edges into the module
// accumulator.
func checkLockBody(p *Pass, facts *lockFacts, body *ast.BlockStmt, entryHeld []string, recv *types.Named, unknownEntry bool) {
	g := buildCFG(body)
	if g == nil {
		return // unstructured control flow: stay silent rather than guess
	}
	d := dataflow[lockFact]{
		Bottom: func() lockFact { return lockFact{} },
		Entry: func() lockFact {
			f := lockFact{reached: true, unknown: unknownEntry, m: make(map[string]uint8)}
			for _, c := range entryHeld {
				f.m[c] = lsYes
			}
			return f
		},
		Join:     joinLockFacts,
		Equal:    equalLockFacts,
		Transfer: func(n ast.Node, f lockFact) lockFact { return lockTransfer(p.Pkg, n, f) },
	}
	in := d.forward(g)
	for _, b := range g.blocks {
		f := in[b]
		for _, n := range b.nodes {
			scanLockNode(p, facts, recv, n, f)
			f = lockTransfer(p.Pkg, n, f)
		}
	}
}

// lockTransfer applies one node's effect on the lock state: Lock/RLock
// statements set Yes, Unlock/RUnlock statements clear, deferred unlocks
// hold to function exit and are no-ops.
func lockTransfer(pkg *Package, n ast.Node, f lockFact) lockFact {
	stmt, ok := n.(*ast.ExprStmt)
	if !ok {
		return f
	}
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return f
	}
	class, op := lockOp(pkg, call)
	if class == "" {
		return f
	}
	out := lockFact{reached: f.reached, unknown: f.unknown, m: maps.Clone(f.m)}
	if out.m == nil {
		out.m = make(map[string]uint8)
	}
	switch op {
	case lockAcquire:
		out.m[class] = lsYes
	case lockRelease:
		delete(out.m, class)
	}
	return out
}

// scanLockNode inspects one CFG node under fact f: records acquisition
// edges (direct and through callee summaries), reports double and callee
// re-acquisitions, checks goroutine spawns, and reports guarded-field
// accesses with the guard provably not held. Function literals are
// skipped — they are analyzed as their own functions.
func scanLockNode(p *Pass, facts *lockFacts, recv *types.Named, n ast.Node, f lockFact) {
	if !f.reached {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			scanGoStmt(p, facts, m, f)
			return false
		case *ast.CallExpr:
			class, op := lockOp(p.Pkg, m)
			if op == lockAcquire {
				if f.state(class) == lsYes {
					p.Reportf(m.Pos(), "acquiring %s while it is already held on this path (self-deadlock)", shortClass(p, class))
				}
				for _, held := range f.heldYes() {
					p.runner.lockAcc.record(held, class, p.Mod.Fset.Position(m.Pos()))
				}
				return true
			}
			if op == lockRelease {
				return true
			}
			if acq := facts.acquiresOf(p.Pkg, m); len(acq) > 0 {
				held := f.heldYes()
				for _, to := range acq {
					if f.state(to) == lsYes {
						p.Reportf(m.Pos(), "calling %s, which may (transitively) acquire %s while it is already held on this path (deadlock through callee)",
							callName(m), shortClass(p, to))
					}
					for _, h := range held {
						p.runner.lockAcc.record(h, to, p.Mod.Fset.Position(m.Pos()))
					}
				}
			}
		case *ast.SelectorExpr:
			fv := selectedField(p.Pkg, m)
			if fv == nil || recv == nil {
				return true
			}
			guard := facts.guarded[fv]
			if guard == "" || !strings.HasPrefix(guard, classPrefix(recv)) {
				return true // only check fields of the method's own struct
			}
			if f.state(guard) == 0 {
				p.Reportf(m.Sel.Pos(), "%s.%s is guarded by %s (written under it elsewhere) but accessed where the guard is provably not held",
					recv.Obj().Name(), fv.Name(), shortClass(p, guard))
			}
		}
		return true
	})
}

// scanGoStmt checks one `go` statement under fact f: when a class is
// provably held at the spawn and the spawned function may (transitively)
// acquire that same class, the spawn is a latent deadlock. Spawned
// acquisitions of other classes are NOT ordering edges — the goroutine
// establishes its own acquisition order from an empty lock set.
func scanGoStmt(p *Pass, facts *lockFacts, g *ast.GoStmt, f lockFact) {
	held := f.heldYes()
	if len(held) == 0 {
		return
	}
	var acq []string
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		acq = facts.nodeAcquires(facts.g.litNode(fl))
	} else {
		acq = facts.acquiresOf(p.Pkg, g.Call)
	}
	for _, c := range acq {
		if f.state(c) == lsYes {
			p.Reportf(g.Pos(), "goroutine spawned while %s is held, and the spawned function may (transitively) acquire %s: it blocks until the spawner releases, a latent deadlock if the spawner waits on it; release before spawning",
				shortClass(p, c), shortClass(p, c))
		}
	}
}

// callName renders a short display name for a call site.
func callName(call *ast.CallExpr) string {
	return exprString(call.Fun)
}

const (
	lockAcquire = 1
	lockRelease = 2
)

// lockOp classifies call as a mutex acquisition/release and resolves the
// mutex class it operates on ("" when the receiver is not a trackable
// mutex: locals, map entries, interface values).
func lockOp(pkg *Package, call *ast.CallExpr) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	var op int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = lockAcquire
	case "Unlock", "RUnlock":
		op = lockRelease
	default:
		return "", 0
	}
	class := mutexClass(pkg, sel.X)
	if class == "" {
		return "", 0
	}
	return class, op
}

// mutexClass names the mutex a lock expression denotes: a struct field
// ("pkg/path.Struct.field") or a package-level var ("pkg/path.var").
// Instance identity is deliberately erased — the analysis reasons about
// classes, which is what acquisition ordering is defined over.
func mutexClass(pkg *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		selInfo, ok := pkg.Info.Selections[e]
		if !ok {
			return ""
		}
		fv, ok := selInfo.Obj().(*types.Var)
		if !ok || !fv.IsField() || !isMutexType(fv.Type()) {
			return ""
		}
		named := derefNamed(selInfo.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return classPrefix(named) + "." + fv.Name()
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil || !isMutexType(v.Type()) {
			return ""
		}
		if v.Parent() != v.Pkg().Scope() {
			return "" // local mutex: no class identity
		}
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// classPrefix is the class-name prefix for a struct's mutex fields and
// guarded fields: "pkg/path.Struct".
func classPrefix(named *types.Named) string {
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// shortClass trims the module path off a class name for messages.
func shortClass(p *Pass, class string) string {
	return strings.TrimPrefix(strings.TrimPrefix(class, p.Mod.Path+"/"), "internal/")
}

func isMutexType(t types.Type) bool {
	named := derefNamed(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}

func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// selectedField resolves a selector to the struct field it reads or
// writes, or nil.
func selectedField(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	selInfo, ok := pkg.Info.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return nil
	}
	fv, _ := selInfo.Obj().(*types.Var)
	return fv
}

// receiverStruct returns the named struct type a method declaration
// belongs to, or nil for plain functions.
func receiverStruct(pkg *Package, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	return derefNamed(pkg.Info.TypeOf(fd.Recv.List[0].Type))
}

// methodEntryClasses returns the mutex classes assumed held at entry:
// every receiver mutex for methods following the *Locked naming
// convention, nothing otherwise.
func methodEntryClasses(pkg *Package, fd *ast.FuncDecl) []string {
	if !strings.HasSuffix(fd.Name.Name, "Locked") {
		return nil
	}
	named := receiverStruct(pkg, fd)
	if named == nil {
		return nil
	}
	return structMutexClasses(named)
}

// structMutexClasses lists the mutex classes declared as fields of named,
// sorted.
func structMutexClasses(named *types.Named) []string {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); isMutexType(f.Type()) {
			out = append(out, classPrefix(named)+"."+f.Name())
		}
	}
	sort.Strings(out)
	return out
}

// sortedBoolKeys returns the true-keys of a set in sorted order.
func sortedBoolKeys(set map[string]bool) []string {
	var keys []string
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// deriveGuards runs the lock dataflow over one method and records every
// field of recv written while a receiver mutex is provably held.
func deriveGuards(pkg *Package, fd *ast.FuncDecl, recv *types.Named, facts *lockFacts) {
	g := buildCFG(fd.Body)
	if g == nil {
		return
	}
	entryHeld := methodEntryClasses(pkg, fd)
	d := dataflow[lockFact]{
		Bottom: func() lockFact { return lockFact{} },
		Entry: func() lockFact {
			f := lockFact{reached: true, m: make(map[string]uint8)}
			for _, c := range entryHeld {
				f.m[c] = lsYes
			}
			return f
		},
		Join:     joinLockFacts,
		Equal:    equalLockFacts,
		Transfer: func(n ast.Node, f lockFact) lockFact { return lockTransfer(pkg, n, f) },
	}
	in := d.forward(g)
	classes := structMutexClasses(recv)
	prefix := classPrefix(recv)
	for _, b := range g.blocks {
		f := in[b]
		for _, n := range b.nodes {
			if f.reached {
				var heldClass string
				for _, c := range classes {
					if f.state(c) == lsYes {
						heldClass = c
						break
					}
				}
				if heldClass != "" {
					for _, fv := range writtenFields(pkg, n) {
						if fv.Pkg() == nil || isMutexType(fv.Type()) || isSyncInternalType(fv.Type()) {
							continue
						}
						owner := fieldOwner(recv, fv)
						if owner == "" || owner != prefix {
							continue
						}
						if old, ok := facts.guarded[fv]; !ok || heldClass < old {
							facts.guarded[fv] = heldClass
						}
					}
				}
			}
			f = lockTransfer(pkg, n, f)
		}
	}
}

// fieldOwner returns recv's class prefix when fv is a direct field of
// recv's underlying struct, else "".
func fieldOwner(recv *types.Named, fv *types.Var) string {
	st, ok := recv.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == fv {
			return classPrefix(recv)
		}
	}
	return ""
}

// writtenFields returns the struct fields node writes: assignment
// left-hand sides and inc/dec operands that are field selectors.
// Function literals are skipped.
func writtenFields(pkg *Package, n ast.Node) []*types.Var {
	var out []*types.Var
	addSel := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			if fv := selectedField(pkg, sel); fv != nil {
				out = append(out, fv)
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				addSel(lhs)
				// Writes through an index also dirty the field: x.f[i] = v.
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					addSel(idx.X)
				}
			}
		case *ast.IncDecStmt:
			addSel(m.X)
		}
		return true
	})
	return out
}

// isSyncInternalType excludes fields whose own type provides its
// synchronization (atomics, WaitGroup, Once, …) from guard inference.
func isSyncInternalType(t types.Type) bool {
	named := derefNamed(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// finishLockOrder runs after every package's pass: it assembles the
// module-wide acquisition graph and reports each cycle once.
func finishLockOrder(p *FinishPass) {
	acc := &p.runner.lockAcc
	acc.mu.Lock()
	edges := make([]lockEdge, 0, len(acc.edges))
	for e := range acc.edges {
		edges = append(edges, e)
	}
	positions := maps.Clone(acc.edges)
	acc.mu.Unlock()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})

	adj := make(map[string][]string)
	var nodes []string
	seen := make(map[string]bool)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		for _, n := range []string{e.from, e.to} {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)

	const (
		colorNew = iota
		colorActive
		colorDone
	)
	color := make(map[string]int)
	var stack []string
	reported := make(map[string]bool)

	var visit func(n string)
	visit = func(n string) {
		color[n] = colorActive
		stack = append(stack, n)
		for _, succ := range adj[n] {
			switch color[succ] {
			case colorActive:
				// Extract the cycle from the DFS stack.
				i := len(stack) - 1
				for i >= 0 && stack[i] != succ {
					i--
				}
				cycle := append([]string(nil), stack[i:]...)
				reportCycle(p, positions, cycle, reported)
			case colorNew:
				visit(succ)
			case colorDone:
				// Fully explored: nothing new on this path.
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = colorDone
	}
	for _, n := range nodes {
		if color[n] == colorNew {
			visit(n)
		}
	}
}

// reportCycle canonicalizes (rotate so the smallest class leads), dedupes,
// and reports one lock-order cycle.
func reportCycle(p *FinishPass, positions map[lockEdge]token.Position, cycle []string, reported map[string]bool) {
	min := 0
	for i, c := range cycle {
		if c < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	key := strings.Join(rotated, " -> ")
	if reported[key] {
		return
	}
	reported[key] = true

	chain := make([]string, 0, len(rotated)+1)
	for _, c := range rotated {
		chain = append(chain, shortFinishClass(p, c))
	}
	chain = append(chain, shortFinishClass(p, rotated[0]))
	pos := positions[lockEdge{from: rotated[0], to: rotated[1%len(rotated)]}]
	p.reportAt(pos, "lock-order cycle: %s — goroutines taking these locks in different orders can deadlock; pick one acquisition order", strings.Join(chain, " -> "))
}

func shortFinishClass(p *FinishPass, class string) string {
	return strings.TrimPrefix(strings.TrimPrefix(class, p.Mod.Path+"/"), "internal/")
}

// reportAt is Reportf for a pre-resolved position (edge positions are
// recorded as token.Position because they cross FileSets' goroutines).
func (p *FinishPass) reportAt(pos token.Position, format string, args ...any) {
	if p.runner.suppressed(p.analyzer.Name, pos) {
		return
	}
	p.findings = append(p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}
