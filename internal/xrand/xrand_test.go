package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between differently seeded streams", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
}

func TestBoolEdges(t *testing.T) {
	r := New(9)
	if r.Bool(0) {
		t.Error("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) must be true")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bool(0.25) rate %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestHash64Distribution(t *testing.T) {
	// Consecutive inputs must produce well-spread low bits.
	ones := 0
	for i := uint64(0); i < 4096; i++ {
		if Hash64(i)&1 == 1 {
			ones++
		}
	}
	if ones < 1800 || ones > 2300 {
		t.Errorf("Hash64 low-bit bias: %d/4096 ones", ones)
	}
	if Hash64(5) == Hash64(6) {
		t.Error("adjacent hashes collide")
	}
}
