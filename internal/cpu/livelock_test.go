package cpu

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
)

// loopProgram builds a long-running counted loop so the core is still busy
// when an injected stall freezes commit.
func loopProgram(iters int64) *isa.Program {
	b := isa.NewBuilder("livelock-loop")
	b.Li(1, iters)
	b.Label("loop")
	b.AddI(1, 1, -1)
	b.Br(isa.CondNE, 1, 0, "loop")
	b.Halt()
	return b.Build()
}

func TestWatchdogDetectsInjectedLivelock(t *testing.T) {
	m := newMachine(t, loopProgram(1_000_000), nil)
	m.cfg.WatchdogWindow = 2_000
	m.InjectCommitStall(500)
	st := m.Run(0)

	le := m.Livelock()
	if le == nil {
		t.Fatal("watchdog did not fire on injected commit stall")
	}
	if m.LivelockErr() == nil {
		t.Fatal("LivelockErr nil despite diagnosis")
	}
	var asLE *LivelockError
	if !errors.As(m.LivelockErr(), &asLE) {
		t.Fatal("LivelockErr not an *LivelockError")
	}
	// Detection must happen within the configured window of the stall
	// onset, not at MaxCycles.
	if le.Cycle > 500+2_000+10 {
		t.Errorf("detected at cycle %d, want within window of stall at 500", le.Cycle)
	}
	if st.Cycles >= uint64(m.cfg.MaxCycles) {
		t.Errorf("run burned to MaxCycles (%d cycles)", st.Cycles)
	}
	if le.Window != 2_000 {
		t.Errorf("window = %d, want 2000", le.Window)
	}
	if le.Stalled != "commit (injected stall)" {
		t.Errorf("stalled structure = %q, want injected-stall commit", le.Stalled)
	}
	// Occupancy snapshots carry the configured capacities.
	if le.ROB.Cap != m.cfg.ROBSize || le.LQ.Cap != m.cfg.LQSize || le.SQ.Cap != m.cfg.SQSize {
		t.Errorf("capacities rob=%s lq=%s sq=%s", le.ROB, le.LQ, le.SQ)
	}
	// With commit frozen mid-loop the ROB backs up.
	if le.ROB.Used == 0 {
		t.Error("ROB empty at diagnosis of a frozen busy core")
	}
	msg := le.Error()
	for _, frag := range []string{"livelock", "stalled on commit (injected stall)", "rob="} {
		if !strings.Contains(msg, frag) {
			t.Errorf("Error() = %q missing %q", msg, frag)
		}
	}
}

func TestWatchdogSilentOnHealthyRun(t *testing.T) {
	m := newMachine(t, loopProgram(200), nil)
	m.cfg.WatchdogWindow = 2_000
	m.Run(0)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if m.Livelock() != nil || m.LivelockErr() != nil {
		t.Fatalf("healthy run diagnosed livelock: %v", m.LivelockErr())
	}
}

func TestWatchdogDisabledByZeroWindow(t *testing.T) {
	m := newMachine(t, loopProgram(1_000_000), nil)
	m.cfg.WatchdogWindow = 0
	m.cfg.MaxCycles = 30_000
	m.InjectCommitStall(500)
	st := m.Run(0)
	if m.Livelock() != nil {
		t.Fatal("disabled watchdog still fired")
	}
	if st.Cycles < 29_000 {
		t.Errorf("run stopped at %d cycles with watchdog off, want MaxCycles", st.Cycles)
	}
}
