// Command simlint runs the simulator-specific static-analysis suite over
// this module: determinism (flow-sensitive map iteration order),
// metrics-completeness (every Stats counter bound to the registry),
// cache-key purity (every sim.Config field keyed or excluded+zeroed),
// cycle-typing (latency fields are uint64), error-discipline (no panic in
// internal/ outside must* helpers), lockorder (acquisition cycles, double
// and callee re-acquisition, locks held across goroutine spawns, guarded
// fields touched without their mutex — interprocedural via call-graph
// summaries), detertaint (wall-clock/math-rand/map-order taint tracked
// through calls, fields, and closures into key/ID/stats sinks),
// undocomplete (speculative mutations in cache/memsys/coherence paired
// with restore writes reachable from the cleanup path), deferunlock
// (single Lock/Unlock pairs rewritable into the defer idiom),
// enumexhaustive (switches over iota enums cover every constant or
// declare a default), wireenc (structs reaching JSON journals or the
// fabric wire carry no interface-typed content or unordered map keys,
// and custom MarshalJSON bodies no map ranges, so journal rows and
// protocol messages encode canonically), hotalloc (no unjustified
// allocation — make/new/composite literals, growing appends, interface
// boxing, closures, fmt calls — reachable from the per-cycle hot roots;
// see -hotreport), cyclemath (uint64 cycle subtraction dominated by a
// provable a>=b guard, no signed<->unsigned cycle conversions), and
// staledirective (suppressions that no longer suppress anything).
//
// Usage:
//
//	simlint [-json] [-sarif file] [-fix [-diff]] [-workers n] [-enable a,b] [-disable a,b] [packages]
//	simlint -hotreport [> HOTPATH_BUDGET.json]
//	simlint -hotbudget HOTPATH_BUDGET.json
//
// -hotreport prints the hot-path allocation budget report: every
// function reachable from the hot roots that still carries allocation
// sites (suppressed or not), with per-kind counts. The report is
// deterministic and byte-identical for every -workers value. -hotbudget
// compares the current report against a committed budget and exits 1 on
// any growth — new allocating functions, per-kind increases, total
// growth, or a changed root set; shrinkage is re-recorded, never
// failed, so the budget ratchets monotonically downward.
//
// Packages are directory patterns relative to the current directory
// ("./...", "./internal/campaign", "./internal/..."); the default is the
// whole module. Exit status is 1 when findings are reported (or, with
// -fix -diff, when fixes would change files), 2 on a load or usage error,
// 0 when clean.
//
// -sarif writes the findings as a SARIF 2.1.0 log to the given file ("-"
// for stdout) in addition to the normal output; CI uploads it as a
// blocking artifact. -fix applies every mechanical rewrite the analyzers
// propose — the collect-then-sort map-range idiom, stale-directive
// removal, and the deferred-unlock idiom — through gofmt, and is
// idempotent: a second run changes nothing. -fix -diff previews the same
// rewrites as a unified diff without touching files (CI runs this as a
// blocking step). Findings with no mechanical fix are still printed and
// still fail the run. Suppressions require a justification:
//
//	//simlint:ordered -- <why iteration order is irrelevant>
//	//simlint:allow <analyzer> -- <why this is safe>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	list := flag.Bool("list", false, "list analyzers and exit")
	fix := flag.Bool("fix", false, "apply mechanical fixes (gofmt-clean, idempotent)")
	diff := flag.Bool("diff", false, "with -fix: preview fixes as a unified diff instead of writing files")
	workers := flag.Int("workers", 0, "package-analysis worker pool size (0 = GOMAXPROCS); output is identical for any value")
	hotreport := flag.Bool("hotreport", false, "emit the hot-path allocation budget report as JSON and exit")
	hotbudget := flag.String("hotbudget", "", "compare the hot-path report against this committed budget `file`; exit 1 on growth")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [-json] [-sarif file] [-fix [-diff]] [-workers n] [-enable a,b] [-disable a,b] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *diff && !*fix {
		fmt.Fprintln(os.Stderr, "simlint: -diff requires -fix")
		return 2
	}

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	mod, err := analysis.Load(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	match, err := packageMatcher(cwd, mod, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}

	runner := analysis.NewRunner(mod)
	runner.Workers = *workers

	if *hotreport || *hotbudget != "" {
		return runHotReport(runner, *hotreport, *hotbudget)
	}

	findings := runner.Run(analyzers, match)

	if *sarifOut != "" {
		blob, err := analysis.SARIF(mod.Root, findings)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		blob = append(blob, '\n')
		if *sarifOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*sarifOut, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	}

	if *fix {
		return runFix(cwd, mod, findings, *diff)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			rel := f
			if r, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
				rel.Pos.Filename = r
			}
			fmt.Println(rel)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// runHotReport serves -hotreport/-hotbudget: it builds the hot-path
// allocation budget report (deterministic, byte-identical for any
// -workers value), optionally prints it, and optionally enforces it
// against a committed budget file. Re-record a legitimately changed
// budget with `simlint -hotreport > HOTPATH_BUDGET.json`.
func runHotReport(runner *analysis.Runner, print bool, budgetFile string) int {
	rep := runner.HotReport()
	if print {
		blob, err := rep.MarshalIndent()
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		os.Stdout.Write(blob)
	}
	if budgetFile == "" {
		return 0
	}
	data, err := os.ReadFile(budgetFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	budget, err := analysis.ParseHotReport(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	violations := analysis.CompareHotBudget(budget, rep)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: hot-path allocation budget exceeded (%d violation(s)); fix the allocation or justify it with //simlint:allow hotalloc, then re-record with simlint -hotreport > %s\n", len(violations), budgetFile)
		return 1
	}
	fmt.Fprintf(os.Stderr, "simlint: hot-path budget ok (%d sites across %d functions)\n", rep.Total, len(rep.Functions))
	return 0
}

// runFix materializes the mechanical fixes carried by findings: with
// diffOnly it prints a unified diff and leaves the tree untouched,
// otherwise it rewrites the files in place. Findings without a fix are
// printed either way; the exit status is 1 unless the tree is both
// finding-free and fix-free.
func runFix(cwd string, mod *analysis.Module, findings []analysis.Finding, diffOnly bool) int {
	fixes, err := analysis.ApplyFixes(mod, findings)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 2
	}
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}

	skipped := 0
	for _, ff := range fixes {
		skipped += ff.Skipped
		if diffOnly {
			fmt.Print(ff.Diff(rel(ff.Name)))
			continue
		}
		if err := os.WriteFile(ff.Name, ff.Fixed, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 2
		}
		fmt.Printf("simlint: fixed %s (%s)\n", rel(ff.Name), strings.Join(ff.Messages, "; "))
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d overlapping fix(es) deferred; run -fix again\n", skipped)
	}

	manual := 0
	for _, f := range findings {
		if f.Fix != nil {
			continue
		}
		manual++
		pf := f
		pf.Pos.Filename = rel(f.Pos.Filename)
		fmt.Println(pf)
	}
	if len(fixes) > 0 && diffOnly {
		fmt.Fprintf(os.Stderr, "simlint: %d file(s) need simlint -fix\n", len(fixes))
	}
	if manual > 0 || skipped > 0 || (diffOnly && len(fixes) > 0) {
		return 1
	}
	return 0
}

// selectAnalyzers applies -enable/-disable to the suite.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	names := func(csv string) (map[string]bool, error) {
		out := make(map[string]bool)
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if _, ok := analysis.AnalyzerByName(n); !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", n)
			}
			out[n] = true
		}
		return out, nil
	}
	on, err := names(enable)
	if err != nil {
		return nil, err
	}
	off, err := names(disable)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range analysis.Analyzers() {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// packageMatcher turns CLI patterns into a package predicate. Patterns are
// directory paths relative to cwd; a trailing /... matches the whole
// subtree. No patterns (or "./...") selects every package.
func packageMatcher(cwd string, mod *analysis.Module, patterns []string) (func(*analysis.Package) bool, error) {
	if len(patterns) == 0 {
		return nil, nil
	}
	type rule struct {
		dir     string
		subtree bool
	}
	var rules []rule
	for _, pat := range patterns {
		r := rule{dir: pat}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			r.subtree = true
			r.dir = rest
			if r.dir == "" || r.dir == "." {
				r.dir = "."
			}
		}
		if !filepath.IsAbs(r.dir) {
			r.dir = filepath.Join(cwd, r.dir)
		}
		r.dir = filepath.Clean(r.dir)
		rules = append(rules, r)
	}
	return func(p *analysis.Package) bool {
		for _, r := range rules {
			if p.Dir == r.dir {
				return true
			}
			if r.subtree && strings.HasPrefix(p.Dir, r.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}
