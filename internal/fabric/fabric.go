// Package fabric is the campaign stack's multi-host tier: a
// coordinator/worker protocol where workers lease cells from a
// dependency-aware work queue and share one content-addressed cache
// namespace, built so that a SIGKILL'd worker never loses a campaign —
// at most it re-simulates its in-flight cell.
//
// The design leans entirely on the two substrates PR 4 hardened:
//
//   - The append-only JSONL journal idiom. Lease lifecycle events
//     (lease / renew / complete / expire) are single appended lines in
//     fabric.jsonl next to the campaign manifest; a coordinator killed
//     mid-append leaves at most one torn final line, which replay drops,
//     and a double-completion (the stale-lease race) is idempotent by
//     construction — the second row is counted and ignored.
//   - Content-addressed, sha256-checksummed cache entries. Every entry
//     that crosses a process boundary — a worker uploading a completed
//     cell, a worker reading another worker's result through the
//     coordinator — is re-verified on receipt. Verify on read, never on
//     trust: a corrupt remote entry degrades to local re-simulation,
//     never a crash and never a poisoned store.
//
// Time in the fabric is a logical clock. The coordinator's lease TTLs
// are ticks, advanced by Coordinator.Advance — driven by a wall-clock
// ticker in `campaign serve`, and by the test harness in the chaos
// suite, where a seeded schedule interleaves worker steps, clock
// advances, and worker kills fully deterministically. Expiry, reclaim,
// and re-queue logic therefore replays bit-identically under any seed.
//
// Correctness claim (chaos-tested over 100+ seeded fault schedules,
// including mid-campaign worker kills): every run terminates, and after
// a fault-free resume the coordinator's cache exports byte-identically
// to a never-faulted single-host campaign over the same grid.
package fabric

import (
	"fmt"

	"repro/internal/campaign"
)

// Cell is one unit of fabric work: a campaign job plus the keys of the
// cells that must complete before it may be leased. Dependencies are a
// queue-scheduling constraint only — they never change a cell's
// content-addressed identity or its result.
type Cell struct {
	Job campaign.Job
	// Key is the job's content-addressed identity; CellsFromJobs fills
	// it in.
	Key string
	// Deps lists cache keys that must be done before this cell is
	// leasable.
	Deps []string
}

// CellsFromJobs wraps plain campaign jobs as dependency-free cells,
// computing each cell's content key. A job whose config cannot be
// canonicalized is an error here — the fabric cannot lease a cell it
// cannot name.
func CellsFromJobs(jobs []campaign.Job) ([]Cell, error) {
	cells := make([]Cell, 0, len(jobs))
	for _, j := range jobs {
		key, err := j.Key()
		if err != nil {
			return nil, fmt.Errorf("fabric: keying job %s: %w", j, err)
		}
		cells = append(cells, Cell{Job: j, Key: key})
	}
	return cells, nil
}
