package benchrun

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Thresholds bounds how much a fresh run may regress against a baseline
// before Diff flags it.
type Thresholds struct {
	// TimeRatio is the allowed fractional ns/op slowdown: fresh ns/op may
	// be at most base*(1+TimeRatio). 0.25 means "25% slower still
	// passes". Wall time is machine- and load-dependent, so CI uses a
	// generous default here; allocs are the strict axis. (Default 0.25.)
	TimeRatio float64
	// AllocSlack is the allowed absolute allocs/op increase. Allocation
	// counts are deterministic for a fixed build, so the default is 0:
	// one new alloc on a hot path is a finding, not noise.
	AllocSlack float64
	// AllocRatio is the allowed fractional allocs/op increase; the
	// effective bound per benchmark is base + max(AllocSlack,
	// AllocRatio*base). Zero-alloc benchmarks are unaffected (any ratio
	// of 0 is 0 — one new alloc still trips), while alloc-heavy
	// simulator benchmarks get headroom for iteration-count amortization
	// noise (one-time setup allocations divided by a different b.N).
	// (Default 0.01.)
	AllocRatio float64
	// PerBench overrides TimeRatio for individual benchmarks (keyed by
	// the baseline's Name, e.g. "BenchmarkSimulatorThroughput" — the
	// short-iteration benchmarks are noisier than the long ones).
	PerBench map[string]float64
}

// withDefaults fills unset thresholds.
func (t Thresholds) withDefaults() Thresholds {
	if t.TimeRatio == 0 {
		t.TimeRatio = 0.25
	}
	if t.AllocRatio == 0 {
		t.AllocRatio = 0.01
	}
	return t
}

// allocBound is the allowed allocs/op for one benchmark.
func (t Thresholds) allocBound(base float64) float64 {
	slack := t.AllocSlack
	if rel := t.AllocRatio * base; rel > slack {
		slack = rel
	}
	return base + slack
}

// timeRatio returns the allowed slowdown for one benchmark.
func (t Thresholds) timeRatio(name string) float64 {
	if r, ok := t.PerBench[name]; ok {
		return r
	}
	return t.TimeRatio
}

// DiffRow is one benchmark's baseline-vs-fresh comparison.
type DiffRow struct {
	Name       string  `json:"name"`
	BaseNs     float64 `json:"base_ns_per_op"`
	FreshNs    float64 `json:"fresh_ns_per_op"`
	TimeDelta  float64 `json:"time_delta"` // fresh/base - 1 (+0.30 = 30% slower)
	BaseAllocs float64 `json:"base_allocs_per_op"`
	NewAllocs  float64 `json:"fresh_allocs_per_op"`
	Limit      float64 `json:"limit"` // the TimeRatio applied to this row
	Regressed  bool    `json:"regressed"`
	Reason     string  `json:"reason,omitempty"`
}

// DiffReport is the outcome of one baseline comparison.
type DiffReport struct {
	Rows []DiffRow `json:"rows"`
	// Missing lists baseline benchmarks absent from the fresh run — a
	// silently deleted benchmark would otherwise un-gate itself, so a
	// missing row is a regression too.
	Missing []string `json:"missing,omitempty"`
	// Added lists fresh benchmarks with no baseline row (informational:
	// they start gating once recorded into the next baseline).
	Added []string `json:"added,omitempty"`
}

// Regressed reports whether any row (or a missing benchmark) trips the
// gate.
func (d DiffReport) Regressed() bool {
	if len(d.Missing) > 0 {
		return true
	}
	for _, r := range d.Rows {
		if r.Regressed {
			return true
		}
	}
	return false
}

// Diff compares a fresh run against a committed baseline. Rows come back
// in baseline order; a benchmark is regressed when its ns/op exceeds the
// (possibly per-benchmark) time threshold or its allocs/op exceed the
// baseline by more than AllocSlack.
func Diff(base Baseline, fresh []Result, th Thresholds) DiffReport {
	th = th.withDefaults()
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	var d DiffReport
	seen := make(map[string]bool, len(base.Results))
	for _, b := range base.Results {
		seen[b.Name] = true
		f, ok := byName[b.Name]
		if !ok {
			d.Missing = append(d.Missing, b.Name)
			continue
		}
		row := DiffRow{
			Name:       b.Name,
			BaseNs:     b.NsPerOp,
			FreshNs:    f.NsPerOp,
			BaseAllocs: b.AllocsPerOp,
			NewAllocs:  f.AllocsPerOp,
			Limit:      th.timeRatio(b.Name),
		}
		if b.NsPerOp > 0 {
			row.TimeDelta = f.NsPerOp/b.NsPerOp - 1
		}
		switch {
		case row.TimeDelta > row.Limit:
			row.Regressed = true
			row.Reason = fmt.Sprintf("%.1f%% slower (limit %.0f%%)", row.TimeDelta*100, row.Limit*100)
		case f.AllocsPerOp > th.allocBound(b.AllocsPerOp):
			row.Regressed = true
			row.Reason = fmt.Sprintf("allocs/op %.0f → %.0f (bound %.0f)", b.AllocsPerOp, f.AllocsPerOp, th.allocBound(b.AllocsPerOp))
		}
		d.Rows = append(d.Rows, row)
	}
	for _, r := range fresh {
		if !seen[r.Name] {
			d.Added = append(d.Added, r.Name)
		}
	}
	sort.Strings(d.Added)
	return d
}

// Write renders the report as an aligned table with a verdict line,
// deterministic for a given report.
func (d DiffReport) Write(w io.Writer) {
	fmt.Fprintf(w, "%-34s %14s %14s %9s %9s  %s\n",
		"benchmark", "base ns/op", "fresh ns/op", "Δtime", "allocs", "verdict")
	for _, r := range d.Rows {
		verdict := "ok"
		if r.Regressed {
			verdict = "REGRESSED: " + r.Reason
		}
		alloc := fmt.Sprintf("%.0f", r.NewAllocs)
		if r.NewAllocs != r.BaseAllocs {
			alloc = fmt.Sprintf("%.0f→%.0f", r.BaseAllocs, r.NewAllocs)
		}
		fmt.Fprintf(w, "%-34s %14.1f %14.1f %+8.1f%% %9s  %s\n",
			r.Name, r.BaseNs, r.FreshNs, r.TimeDelta*100, alloc, verdict)
	}
	for _, name := range d.Missing {
		fmt.Fprintf(w, "%-34s %14s %14s %9s %9s  REGRESSED: missing from fresh run\n", name, "-", "-", "-", "-")
	}
	for _, name := range d.Added {
		fmt.Fprintf(w, "%-34s %14s %14s %9s %9s  new (no baseline row)\n", name, "-", "-", "-", "-")
	}
	if d.Regressed() {
		fmt.Fprintln(w, "verdict: REGRESSED")
	} else {
		fmt.Fprintln(w, "verdict: ok")
	}
}

// Handicap synthetically slows selected fresh results by a factor —
// the self-test hook behind `benchrun diff -handicap`: a handicapped
// diff must trip the gate, proving the gate can actually fail. Factors
// ≤ 1 leave results unchanged (a handicap never speeds anything up).
func Handicap(results []Result, factors map[string]float64) []Result {
	out := make([]Result, len(results))
	copy(out, results)
	for i := range out {
		f := factors[out[i].Name]
		if f <= 1 || math.IsNaN(f) {
			continue
		}
		out[i].NsPerOp *= f
		if out[i].NsPerOp > 0 {
			out[i].OpsPerSec = 1e9 / out[i].NsPerOp
		}
	}
	return out
}
