package campaign

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/sim"
)

// runGrid executes the grid with the given worker count against a fresh
// cache dir and returns every deterministic export surface rendered to
// bytes: the per-job CSV, the normalized summary table (text and CSV),
// and the cache's entries as canonical JSON + CSV.
func runGrid(t *testing.T, g Grid, workers int) (resultsCSV, summaryTxt, summaryCSV, entriesJSON, entriesCSV string) {
	t.Helper()
	eng := NewEngine()
	eng.Workers = workers
	eng.Reporter = NewReporter(io.Discard)
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache

	results := eng.Run(g.Jobs())
	if n := len(Failed(results)); n != 0 {
		t.Fatalf("%d jobs failed", n)
	}

	var csvBuf strings.Builder
	if err := ResultsCSV(&csvBuf, results); err != nil {
		t.Fatal(err)
	}
	table := SummaryTable(results)

	entries, err := cache.Entries()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(entries, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	var entriesBuf strings.Builder
	if err := EntriesCSV(&entriesBuf, entries); err != nil {
		t.Fatal(err)
	}
	return csvBuf.String(), table.String(), table.CSV(), string(blob), entriesBuf.String()
}

// TestExportsBitIdenticalAcrossWorkerCounts is the regression test behind
// the determinism lint: the same grid, run serially, serially again, and
// on a 4-worker pool — each against its own cold cache — must render
// byte-identical CSV, summary-table, and cache-export output. The summary
// table is the sharpest check: its normalized means are float
// accumulations, so even a map-order iteration difference in the last bit
// shows up here.
func TestExportsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	g := Grid{
		Name:         "det",
		Workloads:    []string{"gcc", "lbm"},
		Policies:     []sim.Policy{sim.NonSecure, sim.CleanupSpec},
		Seeds:        []uint64{1, 2},
		Instructions: 2_000,
	}

	type run struct{ name, resultsCSV, summaryTxt, summaryCSV, entriesJSON, entriesCSV string }
	var runs []run
	for _, r := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"serial-again", 1}, {"parallel-4", 4}} {
		a, b, c, d, e := runGrid(t, g, r.workers)
		runs = append(runs, run{r.name, a, b, c, d, e})
	}

	base := runs[0]
	if !strings.Contains(base.resultsCSV, "gcc") || len(strings.Split(strings.TrimSpace(base.resultsCSV), "\n")) != 1+len(g.Jobs()) {
		t.Fatalf("results CSV malformed:\n%s", base.resultsCSV)
	}
	for _, r := range runs[1:] {
		if r.resultsCSV != base.resultsCSV {
			t.Errorf("%s: results CSV differs from %s", r.name, base.name)
		}
		if r.summaryTxt != base.summaryTxt {
			t.Errorf("%s: summary table differs from %s:\n%s\nvs\n%s", r.name, base.name, r.summaryTxt, base.summaryTxt)
		}
		if r.summaryCSV != base.summaryCSV {
			t.Errorf("%s: summary CSV differs from %s", r.name, base.name)
		}
		if r.entriesJSON != base.entriesJSON {
			t.Errorf("%s: cache entries JSON differs from %s", r.name, base.name)
		}
		if r.entriesCSV != base.entriesCSV {
			t.Errorf("%s: cache entries CSV differs from %s", r.name, base.name)
		}
	}
}

// TestSampledJSONLBitIdentical pins the interval-sampled metrics export:
// the same instrumented cell run twice must produce byte-identical JSONL
// time series (cycle stamps, counter values, and key order).
func TestSampledJSONLBitIdentical(t *testing.T) {
	render := func() []byte {
		cfg := sim.Config{
			Policy:       sim.CleanupSpec,
			Instructions: 2_000,
			Seed:         7,
			Metrics:      &sim.Metrics{},
			SampleEvery:  200,
		}
		if _, err := sim.RunWorkload("gcc", cfg); err != nil {
			t.Fatal(err)
		}
		samples := cfg.Metrics.Samples()
		if len(samples) == 0 {
			t.Fatal("sampler recorded nothing")
		}
		var buf bytes.Buffer
		if err := metrics.WriteJSONL(&buf, samples); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first, second := render(), render()
	if !bytes.Equal(first, second) {
		t.Fatalf("JSONL export differs between identical runs:\n%s\nvs\n%s", first, second)
	}
}
