package cache

import (
	"fmt"

	"repro/internal/arch"
)

// SEFE is the paper's Side-Effect Entry (Figure 7). One SEFE rides with each
// load through the load queue and the L1/L2 MSHRs, recording the cache
// side effects the load caused so that a squash can undo exactly those
// effects and nothing else.
//
// The shaded fields in Figure 7 (IsSpec, EpochID) are filled by the
// load/store unit at issue; the rest are filled by the cache hierarchy
// during miss handling.
type SEFE struct {
	// LoadID orders loads by the time their fills were applied to the
	// cache; cleanup runs in reverse LoadID order (Section 3.4). The
	// modeled hardware field is 8 bits (Figure 7).
	LoadID uint8
	// L1Fill / L2Fill record that the load installed a new line at that
	// level (Figure 7's 1-bit fields).
	L1Fill bool
	L2Fill bool
	// L1EvictValid/L1EvictAddr record the victim evicted from the L1 by
	// the install, so it can be restored on squash. L1Way remembers the
	// exact way so restoration reverses the eviction precisely.
	L1EvictValid bool
	L1EvictAddr  arch.LineAddr
	L1EvictDirty bool
	L1EvictState arch.CohState
	L1Way        int
	// IsSpec marks a speculatively issued load (threat model: every load
	// issued before it is unsquashable).
	IsSpec bool
	// EpochID identifies the execution phase between two cleanups; a
	// response tagged with a stale epoch is dropped without a fill
	// (Section 3.3).
	EpochID uint8
}

// StorageBitsLQ is the SEFE size in an LQ or L1-MSHR entry: 3 status bits
// (isSpec, L1-Fill, L2-Fill) + 8-bit LoadID + 5-bit EpochID + 40-bit evicted
// line address, per Figure 7 and Section 6.6.
const StorageBitsLQ = 3 + 8 + 5 + arch.LineAddrBits

// StorageBitsL2 is the SEFE size in an L2-MSHR entry (no evict address).
const StorageBitsL2 = 3 + 8 + 5

// MSHREntry tracks one outstanding miss.
type MSHREntry struct {
	Line    arch.LineAddr
	ReadyAt arch.Cycle
	SEFE    SEFE
	// Waiters are the load sequence numbers merged onto this miss.
	Waiters []uint64
	// Squashed marks the entry as dropped-on-return: every waiter was
	// squashed, so the fill must not be applied (Section 3.3). Squashed
	// entries leave the line index (a fresh request to the same line
	// gets a new entry and a fresh memory request, as the paper
	// specifies) but keep consuming capacity until the data returns.
	Squashed bool
}

// MSHR models a miss status holding register file with a fixed number of
// entries. Live entries are keyed by line address; requests to the same
// line merge onto one entry. Squashed ("zombie") entries are unindexed but
// still occupy capacity until released at data return.
type MSHR struct {
	name    string
	cap     int
	entries map[arch.LineAddr]*MSHREntry
	zombies int

	// Stats counts MSHR traffic; AttachMetrics binds every field.
	Stats MSHRStats
}

// MSHRStats counts MSHR traffic. Monitoring only: counters are not
// architectural state, so a squash does not roll them back (squashed
// allocations still happened and still cost an entry).
type MSHRStats struct {
	Allocs   uint64
	Merges   uint64
	Full     uint64
	Dropped  uint64 // fills dropped because the entry was squashed
	Squashes uint64 // entries marked squashed
}

// NewMSHR creates an MSHR with capacity entries.
func NewMSHR(name string, capacity int) *MSHR {
	if capacity <= 0 {
		//simlint:allow errdiscipline -- construction-time capacity validation; a bad config is a programmer error caught before any simulation runs
		panic(fmt.Sprintf("mshr %s: capacity %d", name, capacity))
	}
	return &MSHR{name: name, cap: capacity, entries: make(map[arch.LineAddr]*MSHREntry, capacity)}
}

// Cap returns the configured capacity.
func (m *MSHR) Cap() int { return m.cap }

// Len returns the number of occupied entries, including zombies.
func (m *MSHR) Len() int { return len(m.entries) + m.zombies }

// Zombies returns the number of squashed entries awaiting their data.
func (m *MSHR) Zombies() int { return m.zombies }

// FullNow reports whether a new allocation would fail.
func (m *MSHR) FullNow() bool { return m.Len() >= m.cap }

// Lookup returns the live entry for line, if any.
func (m *MSHR) Lookup(line arch.LineAddr) (*MSHREntry, bool) {
	e, ok := m.entries[line]
	return e, ok
}

// Allocate creates an entry for line, or merges onto an existing live one.
// It returns (entry, merged, ok); ok is false when the MSHR is full.
func (m *MSHR) Allocate(line arch.LineAddr, waiter uint64) (e *MSHREntry, merged, ok bool) {
	if e, exists := m.entries[line]; exists {
		//simlint:allow hotalloc -- one waiter id per merged miss; the list is bounded by the LQ size and freed with the entry when the fill returns
		e.Waiters = append(e.Waiters, waiter)
		m.Stats.Merges++
		return e, true, true
	}
	if m.FullNow() {
		m.Stats.Full++
		return nil, false, false
	}
	//simlint:allow hotalloc -- one entry+waiter list per primary miss, bounded by MSHR capacity; amortized over the miss latency, not per cycle
	e = &MSHREntry{Line: line, Waiters: []uint64{waiter}}
	m.entries[line] = e
	m.Stats.Allocs++
	return e, false, true
}

// Release frees entry when its data returns: a live entry leaves the index,
// a zombie releases its held capacity. Safe against the index having been
// re-populated for the same line by a newer request.
func (m *MSHR) Release(e *MSHREntry) {
	if e.Squashed {
		if m.zombies > 0 {
			m.zombies--
		}
		return
	}
	if cur, ok := m.entries[e.Line]; ok && cur == e {
		delete(m.entries, e.Line)
	}
}

// SquashWaiter removes waiter from line's live entry. If no waiters remain
// the entry is squashed: removed from the index (so a retry allocates a
// fresh entry and a fresh memory request) but holding capacity until the
// in-flight data returns. It reports whether the waiter was found.
func (m *MSHR) SquashWaiter(line arch.LineAddr, waiter uint64) bool {
	e, ok := m.entries[line]
	if !ok {
		return false
	}
	for i, w := range e.Waiters {
		if w == waiter {
			e.Waiters = append(e.Waiters[:i], e.Waiters[i+1:]...)
			if len(e.Waiters) == 0 {
				e.Squashed = true
				m.Stats.Squashes++
				m.zombies++
				delete(m.entries, line)
			}
			return true
		}
	}
	return false
}

// SquashEpoch squashes every live entry whose epoch differs from keep —
// the coarse whole-MSHR variant of Section 3.3's cleanup request. The CPU
// model uses the precise per-waiter form (correct-path loads sharing an
// entry with squashed ones must keep their fill); this exists for scenarios
// that squash an entire context. It returns the number squashed.
func (m *MSHR) SquashEpoch(keep uint8) int {
	n := 0
	//simlint:ordered -- every mismatched-epoch entry is squashed independently; no cross-entry state or output depends on visit order
	for line, e := range m.entries {
		if e.SEFE.EpochID != keep {
			e.Squashed = true
			m.zombies++
			delete(m.entries, line)
			n++
		}
	}
	m.Stats.Squashes += uint64(n)
	return n
}

// Entries returns the live entries (order unspecified); tests only.
func (m *MSHR) Entries() []*MSHREntry {
	out := make([]*MSHREntry, 0, len(m.entries))
	//simlint:ordered -- test-only accessor documented as order-unspecified; callers sort or count
	for _, e := range m.entries {
		out = append(out, e)
	}
	return out
}
