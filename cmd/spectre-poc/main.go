// Command spectre-poc runs the Spectre Variant-1 proof of concept against a
// chosen policy and prints the probe-latency profile (Figure 11): under the
// non-secure baseline the secret index shows a clear latency dip; under
// CleanupSpec the dip disappears while the correct-path (benign) indices
// stay fast.
//
// Usage:
//
//	spectre-poc                        # nonsecure vs cleanupspec, 30 rounds
//	spectre-poc -policy invisispec-revised -iterations 100
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/sim"
)

func main() {
	var (
		pol        = flag.String("policy", "", "run only this policy (default: nonsecure AND cleanupspec)")
		iterations = flag.Int("iterations", 30, "attack rounds to average over (paper: 100)")
	)
	flag.Parse()

	policies := []sim.Policy{sim.NonSecure, sim.CleanupSpec}
	if *pol != "" {
		policies = []sim.Policy{sim.Policy(*pol)}
	}
	for _, p := range policies {
		res, err := sim.RunSpectre(p, *iterations)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spectre-poc:", err)
			os.Exit(1)
		}
		show(res)
	}
}

func show(r sim.SpectreResult) {
	fmt.Printf("=== %s ===\n", r.Policy)
	max := 0.0
	for _, v := range r.AvgLatency {
		if v > max {
			max = v
		}
	}
	benign := map[int]bool{}
	for _, b := range r.BenignIndices {
		benign[b] = true
	}
	for k, v := range r.AvgLatency {
		bar := strings.Repeat("#", int(v/max*50))
		tag := ""
		if k == r.Secret {
			tag = "  <-- SECRET"
		} else if benign[k] {
			tag = "  (benign)"
		}
		fmt.Printf("array2[%2d*512] %6.0f cy %s%s\n", k, v, bar, tag)
	}
	if r.Leaked {
		fmt.Printf("verdict: LEAKED — inferred secret %d (planted %d)\n\n", r.Inferred, r.Secret)
	} else {
		fmt.Printf("verdict: no leak — the secret index does not stand out\n\n")
	}
}
