package specfuzz

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/sim"
)

// Expectation records what a corpus entry's differential pair is expected
// to report under one policy — the contract a replay re-checks.
type Expectation struct {
	Policy string `json:"policy"`
	Leak   bool   `json:"leak"`
	// Channels are the expected leak channels (order-insensitive subset
	// check is deliberate: a replay must reproduce at least the recorded
	// channels).
	Channels []string `json:"channels,omitempty"`
}

// CorpusEntry is one line of the JSONL corpus format: a gadget spec, the
// hierarchy seed its verdicts were produced with, and the per-policy
// expectations. An entry is self-contained — replaying it needs nothing
// but this line and the simulator.
type CorpusEntry struct {
	Spec GadgetSpec `json:"spec"`
	Seed uint64     `json:"seed"`
	// Expect holds per-policy expectations in recorded order; policies
	// absent here are simply not checked on replay.
	Expect []Expectation `json:"expect,omitempty"`
}

// WriteCorpus streams entries as JSONL. The bytes are deterministic for a
// given entry slice (encoding/json field order is declaration order), so
// two runs that found the same gadgets produce byte-identical corpora.
func WriteCorpus(w io.Writer, entries []CorpusEntry) error {
	bw := bufio.NewWriter(w)
	for i, e := range entries {
		data, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("specfuzz: encoding corpus entry %d (%s): %w", i, e.Spec.ID, err)
		}
		if _, err := bw.Write(data); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCorpus parses a JSONL corpus. Blank lines are tolerated; anything
// else that fails to parse is an error with its line number.
func ReadCorpus(r io.Reader) ([]CorpusEntry, error) {
	var entries []CorpusEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e CorpusEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("specfuzz: corpus line %d: %w", line, err)
		}
		if err := e.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("specfuzz: corpus line %d: %w", line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("specfuzz: reading corpus: %w", err)
	}
	return entries, nil
}

// SaveCorpus writes entries to path.
func SaveCorpus(path string, entries []CorpusEntry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCorpus(f, entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCorpus reads a corpus file.
func LoadCorpus(path string) ([]CorpusEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCorpus(f)
}

// CorpusFromReport extracts the replayable corpus of a campaign: every
// effective gadget (leaks on the unprotected baseline), carrying the full
// per-policy verdict row as expectations.
func CorpusFromReport(rep Report, policies []sim.Policy) []CorpusEntry {
	var out []CorpusEntry
	for _, g := range rep.Gadgets {
		if !g.Effective(policies) {
			continue
		}
		e := CorpusEntry{Spec: g.Spec, Seed: rep.Seed}
		for _, v := range g.Verdicts {
			if v == nil {
				continue
			}
			e.Expect = append(e.Expect, Expectation{Policy: v.Policy, Leak: v.Leak, Channels: v.Channels})
		}
		out = append(out, e)
	}
	return out
}

// ReplayPolicy aggregates one policy's replay column.
type ReplayPolicy struct {
	Policy  string `json:"policy"`
	Entries int    `json:"entries"`
	Leaks   int    `json:"leaks"`
}

// ReplayReport is the outcome of re-running a corpus.
type ReplayReport struct {
	Policies []ReplayPolicy `json:"policies"`
	// Mismatches lists entries whose replay deviated from their recorded
	// expectation — the corpus contract violations.
	Mismatches []string `json:"mismatches,omitempty"`
	// Failures lists replays that errored.
	Failures []string `json:"failures,omitempty"`
}

// Leaks returns the observed leak count for a policy (-1 when the policy
// was not replayed).
func (r ReplayReport) Leaks(policy string) int {
	for _, p := range r.Policies {
		if p.Policy == policy {
			return p.Leaks
		}
	}
	return -1
}

// Replay re-runs every corpus entry under the given policies and checks
// the recorded expectations. Each entry uses its own recorded hierarchy
// seed, so a corpus replays identically regardless of what campaign loaded
// it.
func Replay(entries []CorpusEntry, policies []sim.Policy) ReplayReport {
	var rep ReplayReport
	cols := make([]ReplayPolicy, len(policies))
	for i, p := range policies {
		cols[i].Policy = string(p)
	}
	for _, e := range entries {
		expect := make(map[string]Expectation, len(e.Expect))
		for _, x := range e.Expect {
			expect[x.Policy] = x
		}
		for pi, p := range policies {
			v, err := RunPair(e.Spec, sim.Config{Policy: p, Seed: e.Seed})
			if err != nil {
				rep.Failures = append(rep.Failures, fmt.Sprintf("%s/%s: %v", e.Spec.ID, p, err))
				continue
			}
			cols[pi].Entries++
			if v.Leak {
				cols[pi].Leaks++
			}
			x, ok := expect[string(p)]
			if !ok {
				continue
			}
			if v.Leak != x.Leak {
				rep.Mismatches = append(rep.Mismatches,
					fmt.Sprintf("%s/%s: expected leak=%v, observed leak=%v", e.Spec.ID, p, x.Leak, v.Leak))
				continue
			}
			observed := make(map[string]bool, len(v.Channels))
			for _, ch := range v.Channels {
				observed[ch] = true
			}
			for _, ch := range x.Channels {
				if !observed[ch] {
					rep.Mismatches = append(rep.Mismatches,
						fmt.Sprintf("%s/%s: expected %s channel, not observed", e.Spec.ID, p, ch))
				}
			}
		}
	}
	rep.Policies = cols
	return rep
}
