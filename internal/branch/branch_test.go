package branch

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/xrand"
)

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(Config{})
	pc := arch.Addr(100)
	wrong := 0
	for i := 0; i < 200; i++ {
		ps := p.Predict(pc)
		if !ps.Taken {
			wrong++
		}
		p.Update(ps, true)
	}
	// Warmup costs up to one miss per fresh local-history pattern.
	if wrong > 15 {
		t.Fatalf("%d mispredicts on an always-taken branch", wrong)
	}
	// Once warm, it must be perfect.
	for i := 0; i < 50; i++ {
		ps := p.Predict(pc)
		if !ps.Taken {
			t.Fatal("warm always-taken branch mispredicted")
		}
		p.Update(ps, true)
	}
}

func TestLearnsAlternatingViaHistory(t *testing.T) {
	// A strict T/N/T/N pattern is perfectly predictable with history.
	p := New(Config{})
	pc := arch.Addr(7)
	wrong := 0
	for i := 0; i < 2000; i++ {
		actual := i%2 == 0
		ps := p.Predict(pc)
		if ps.Taken != actual {
			wrong++
		}
		p.Update(ps, actual)
	}
	if float64(wrong)/2000 > 0.10 {
		t.Fatalf("alternating pattern mispredict rate %d/2000", wrong)
	}
}

func TestRandomBranchNearFiftyPercent(t *testing.T) {
	p := New(Config{})
	r := xrand.New(5)
	pc := arch.Addr(9)
	wrong := 0
	const n = 20000
	for i := 0; i < n; i++ {
		actual := r.Bool(0.5)
		ps := p.Predict(pc)
		if ps.Taken != actual {
			wrong++
		}
		p.Update(ps, actual)
	}
	rate := float64(wrong) / n
	if rate < 0.40 || rate > 0.60 {
		t.Fatalf("random-branch mispredict rate %.3f, want ~0.5", rate)
	}
}

func TestCheckpointRestore(t *testing.T) {
	p := New(Config{})
	p.Predict(arch.Addr(1)) // advance GHR
	snap := p.Checkpoint()
	ghr := p.ghr
	// Wrong-path activity: predictions and RAS churn.
	p.Predict(arch.Addr(2))
	p.Predict(arch.Addr(3))
	p.Push(arch.Addr(55))
	p.Restore(snap)
	if p.ghr != ghr {
		t.Fatalf("GHR not restored: %b vs %b", p.ghr, ghr)
	}
	if p.rasSP != snap.RASsp {
		t.Fatal("RAS SP not restored")
	}
}

func TestRASCallReturnPairs(t *testing.T) {
	p := New(Config{RASEntries: 4})
	p.Push(10)
	p.Push(20)
	if got := p.Pop(); got != 20 {
		t.Fatalf("Pop = %d, want 20", got)
	}
	if got := p.Pop(); got != 10 {
		t.Fatalf("Pop = %d, want 10", got)
	}
}

func TestRASRestoreAfterWrongPathPop(t *testing.T) {
	p := New(Config{RASEntries: 4})
	p.Push(10)
	snap := p.Checkpoint()
	// Wrong path pops the entry.
	if p.Pop() != 10 {
		t.Fatal("setup")
	}
	p.Restore(snap)
	if got := p.Pop(); got != 10 {
		t.Fatalf("after restore Pop = %d, want 10", got)
	}
}

func TestBTB(t *testing.T) {
	p := New(Config{})
	if _, ok := p.BTBLookup(42); ok {
		t.Fatal("cold BTB must miss")
	}
	p.BTBUpdate(42, 1000)
	if tgt, ok := p.BTBLookup(42); !ok || tgt != 1000 {
		t.Fatalf("BTB lookup (%d,%v)", tgt, ok)
	}
	// Aliasing entry with a different tag must miss.
	alias := arch.Addr(42 + 4096)
	if _, ok := p.BTBLookup(alias); ok {
		t.Fatal("aliased tag must miss")
	}
	p.BTBUpdate(alias, 2000)
	if _, ok := p.BTBLookup(42); ok {
		t.Fatal("evicted BTB entry must miss")
	}
}

func TestGHRShiftAfterRestore(t *testing.T) {
	p := New(Config{})
	snap := p.Checkpoint()
	p.Restore(snap)
	p.ShiftGHR(true)
	if p.ghr&1 != 1 {
		t.Fatal("ShiftGHR(true) must set low bit")
	}
	p.ShiftGHR(false)
	if p.ghr&1 != 0 {
		t.Fatal("ShiftGHR(false) must clear low bit")
	}
}

func TestMispredictCounting(t *testing.T) {
	p := New(Config{})
	ps := p.Predict(arch.Addr(3))
	p.Update(ps, !ps.Taken)
	if p.Stats.Mispredict != 1 {
		t.Fatalf("stats %+v", p.Stats)
	}
}
