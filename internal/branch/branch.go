// Package branch implements the paper's front-end prediction structures
// (Table 4): a tournament direction predictor (local + gshare global + a
// choice table), a 4096-entry branch target buffer for indirect targets,
// and a 16-entry return address stack.
//
// The predictor updates global history speculatively at prediction time and
// exposes per-branch checkpoints so the CPU can restore history and RAS
// state when a mispredicted branch squashes the wrong path.
package branch

import (
	"repro/internal/arch"
)

// Config sizes the prediction structures. Zero values are replaced by the
// paper's configuration.
type Config struct {
	LocalEntries  int // local history table + local counter table
	LocalHistBits int
	GlobalEntries int // gshare counter table (power of two)
	ChoiceEntries int
	BTBEntries    int
	RASEntries    int
}

// DefaultConfig returns the configuration from the paper's Table 4.
func DefaultConfig() Config {
	return Config{
		LocalEntries:  2048,
		LocalHistBits: 11,
		GlobalEntries: 4096,
		ChoiceEntries: 4096,
		BTBEntries:    4096,
		RASEntries:    16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LocalEntries == 0 {
		c.LocalEntries = d.LocalEntries
	}
	if c.LocalHistBits == 0 {
		c.LocalHistBits = d.LocalHistBits
	}
	if c.GlobalEntries == 0 {
		c.GlobalEntries = d.GlobalEntries
	}
	if c.ChoiceEntries == 0 {
		c.ChoiceEntries = d.ChoiceEntries
	}
	if c.BTBEntries == 0 {
		c.BTBEntries = d.BTBEntries
	}
	if c.RASEntries == 0 {
		c.RASEntries = d.RASEntries
	}
	return c
}

// PredState captures everything about one prediction that the update path
// and the squash-recovery path need: the indices used (computed from the
// history *at prediction time*) and the components' votes.
type PredState struct {
	PC         arch.Addr
	GHRBefore  uint64
	LocalIdx   int
	LocalHist  uint64
	GlobalIdx  int
	ChoiceIdx  int
	LocalPred  bool
	GlobalPred bool
	UseGlobal  bool
	Taken      bool
}

// Snapshot checkpoints the speculative front-end state (global history and
// RAS) before a control instruction, for restoration on squash.
type Snapshot struct {
	GHR    uint64
	RASsp  int
	RAStop arch.Addr
}

// Stats counts predictor activity.
type Stats struct {
	Lookups    uint64
	Updates    uint64
	BTBHits    uint64
	BTBMisses  uint64
	RASPushes  uint64
	RASPops    uint64
	RASWraps   uint64
	Mispredict uint64 // maintained by Update(wasTaken != predicted)
}

type btbEntry struct {
	valid  bool
	tag    arch.Addr
	target arch.Addr
}

// Predictor is the tournament predictor + BTB + RAS.
type Predictor struct {
	cfg Config

	localHist  []uint64 // per-PC history registers
	localCtr   []uint8  // 2-bit counters indexed by local history
	globalCtr  []uint8  // 2-bit counters indexed by GHR ^ PC
	choiceCtr  []uint8  // 2-bit counters: >=2 means trust global
	ghr        uint64
	ghrMask    uint64
	localMask  uint64
	btb        []btbEntry
	ras        []arch.Addr
	rasSP      int
	globalMask int
	choiceMask int

	Stats Stats
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	p := &Predictor{
		cfg:        cfg,
		localHist:  make([]uint64, cfg.LocalEntries),
		localCtr:   make([]uint8, 1<<cfg.LocalHistBits),
		globalCtr:  make([]uint8, cfg.GlobalEntries),
		choiceCtr:  make([]uint8, cfg.ChoiceEntries),
		btb:        make([]btbEntry, cfg.BTBEntries),
		ras:        make([]arch.Addr, cfg.RASEntries),
		ghrMask:    uint64(cfg.GlobalEntries - 1),
		localMask:  uint64(1<<cfg.LocalHistBits - 1),
		globalMask: cfg.GlobalEntries - 1,
		choiceMask: cfg.ChoiceEntries - 1,
	}
	// Direction counters start weakly not-taken (gem5's saturating
	// counters likewise start at zero); the choice table starts weakly
	// toward the *local* component so a well-trained per-PC direction
	// wins until the global component proves itself in that history
	// context.
	for i := range p.localCtr {
		p.localCtr[i] = 1
	}
	for i := range p.globalCtr {
		p.globalCtr[i] = 1
	}
	for i := range p.choiceCtr {
		p.choiceCtr[i] = 1
	}
	return p
}

func taken(ctr uint8) bool { return ctr >= 2 }

func bump(ctr *uint8, t bool) {
	if t {
		if *ctr < 3 {
			*ctr++
		}
	} else if *ctr > 0 {
		*ctr--
	}
}

// Checkpoint captures the speculative front-end state.
func (p *Predictor) Checkpoint() Snapshot {
	top := arch.Addr(0)
	if p.cfg.RASEntries > 0 {
		top = p.ras[p.rasSP]
	}
	return Snapshot{GHR: p.ghr, RASsp: p.rasSP, RAStop: top}
}

// Restore rewinds the speculative front-end state to a checkpoint taken at
// the mispredicted instruction, then the caller feeds the actual outcome
// back via ShiftGHR.
func (p *Predictor) Restore(s Snapshot) {
	p.ghr = s.GHR
	p.rasSP = s.RASsp
	if p.cfg.RASEntries > 0 {
		p.ras[p.rasSP] = s.RAStop
	}
}

// ShiftGHR appends an actual branch outcome to the global history (used
// after Restore so the history reflects the resolved branch).
func (p *Predictor) ShiftGHR(t bool) {
	p.ghr <<= 1
	if t {
		p.ghr |= 1
	}
}

// Predict produces a direction prediction for the conditional branch at pc
// and speculatively updates the global history with it.
func (p *Predictor) Predict(pc arch.Addr) PredState {
	p.Stats.Lookups++
	li := int(uint64(pc) % uint64(p.cfg.LocalEntries))
	lh := p.localHist[li] & p.localMask
	gi := int((p.ghr ^ uint64(pc)) & uint64(p.globalMask))
	ci := int(p.ghr & uint64(p.choiceMask))
	ps := PredState{
		PC:         pc,
		GHRBefore:  p.ghr,
		LocalIdx:   li,
		LocalHist:  lh,
		GlobalIdx:  gi,
		ChoiceIdx:  ci,
		LocalPred:  taken(p.localCtr[lh]),
		GlobalPred: taken(p.globalCtr[gi]),
		UseGlobal:  taken(p.choiceCtr[ci]),
	}
	if ps.UseGlobal {
		ps.Taken = ps.GlobalPred
	} else {
		ps.Taken = ps.LocalPred
	}
	p.ShiftGHR(ps.Taken)
	return ps
}

// Update trains the tables with the actual outcome of a previously
// predicted branch. It is called at branch resolution.
func (p *Predictor) Update(ps PredState, actual bool) {
	p.Stats.Updates++
	if ps.Taken != actual {
		p.Stats.Mispredict++
	}
	// Choice table: train toward whichever component was right, when they
	// disagree.
	if ps.LocalPred != ps.GlobalPred {
		bump(&p.choiceCtr[ps.ChoiceIdx], ps.GlobalPred == actual)
	}
	bump(&p.globalCtr[ps.GlobalIdx], actual)
	bump(&p.localCtr[ps.LocalHist], actual)
	// Local history register advances with the actual outcome.
	h := p.localHist[ps.LocalIdx] << 1
	if actual {
		h |= 1
	}
	p.localHist[ps.LocalIdx] = h & p.localMask
}

// BTBLookup returns the predicted target for an indirect control transfer.
func (p *Predictor) BTBLookup(pc arch.Addr) (arch.Addr, bool) {
	e := &p.btb[uint64(pc)%uint64(p.cfg.BTBEntries)]
	if e.valid && e.tag == pc {
		p.Stats.BTBHits++
		return e.target, true
	}
	p.Stats.BTBMisses++
	return 0, false
}

// BTBUpdate records the resolved target of an indirect transfer.
func (p *Predictor) BTBUpdate(pc, target arch.Addr) {
	e := &p.btb[uint64(pc)%uint64(p.cfg.BTBEntries)]
	*e = btbEntry{valid: true, tag: pc, target: target}
}

// Push records a call's return address on the RAS (speculative, at fetch).
func (p *Predictor) Push(ret arch.Addr) {
	p.Stats.RASPushes++
	p.rasSP = (p.rasSP + 1) % p.cfg.RASEntries
	if p.ras[p.rasSP] != 0 {
		p.Stats.RASWraps++
	}
	p.ras[p.rasSP] = ret
}

// Pop predicts a return target from the RAS (speculative, at fetch).
func (p *Predictor) Pop() arch.Addr {
	p.Stats.RASPops++
	t := p.ras[p.rasSP]
	p.ras[p.rasSP] = 0
	p.rasSP = (p.rasSP - 1 + p.cfg.RASEntries) % p.cfg.RASEntries
	return t
}
