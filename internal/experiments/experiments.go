// Package experiments contains one runner per table and figure of the
// paper's evaluation (Section 6 plus the characterization tables earlier in
// the paper). cmd/paperbench and the repository's benchmark suite both call
// these runners; EXPERIMENTS.md records their output against the paper.
//
// Each runner returns a Report with the regenerated table (or series) and a
// short paper-vs-measured note. The runners deliberately share a memoizing
// Runner so a full paperbench pass simulates each (workload, config) pair
// once; the memo is a thin layer over the internal/campaign engine, so it
// can be backed by the same durable cache cmd/campaign uses.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/campaign"
	"repro/internal/multicore"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/sim"
)

// Options sizes the experiment runs.
type Options struct {
	// Instructions per measurement window (paper: 500M; default here
	// 150k — large enough for squash/miss statistics to converge).
	Instructions uint64
	// SpectreIterations for Figure 11 (paper: 100).
	SpectreIterations int
	// MTSteps per multithreaded workload for Figure 9.
	MTSteps int
}

// DefaultOptions returns the default experiment sizing.
func DefaultOptions() Options {
	return Options{Instructions: 150_000, SpectreIterations: 30, MTSteps: 30_000}
}

// Report is one regenerated experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as markdown (for EXPERIMENTS.md).
func (r Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "> %s\n\n", n)
	}
	return b.String()
}

// Runner memoizes simulation results across experiments. Since the
// campaign engine landed, the Runner is a thin layer over it: each run is
// keyed by the content-addressed campaign key of its fully resolved
// config (so two call sites that build the same effective configuration
// share a result, and two that differ in any simulated parameter never
// can), and pointing Engine.Cache at a directory makes the memo durable
// across processes.
type Runner struct {
	Opts Options
	// Engine executes and caches the individual runs. NewRunner attaches
	// a memory-only engine; callers may add a disk cache
	// (paperbench -cache) before the first run.
	Engine *campaign.Engine
	Quiet  bool

	memo map[string]sim.Result
	errs []error
}

// NewRunner creates a runner backed by a memory-only campaign engine.
func NewRunner(o Options) *Runner {
	return &Runner{Opts: o, Engine: campaign.NewEngine(), memo: make(map[string]sim.Result)}
}

// Errors returns the simulation failures accumulated so far. A failed
// cell no longer panics: it contributes NaN to its table rows and is
// reported here, so one bad configuration cannot kill a whole paperbench
// pass.
func (r *Runner) Errors() []error { return r.errs }

// run returns the memoized result for workload wl under policy p with an
// optional config modification. The memo key is derived from the resolved
// configuration itself, not from a caller-supplied label.
func (r *Runner) run(wl string, p sim.Policy, mod func(*sim.Config)) sim.Result {
	cfg := sim.Config{Policy: p, Instructions: r.Opts.Instructions}
	if mod != nil {
		mod(&cfg)
	}
	key, err := campaign.Key(wl, cfg)
	if err != nil {
		r.errs = append(r.errs, fmt.Errorf("%s/%s: %w", wl, p, err))
		return sim.Result{}
	}
	if res, ok := r.memo[key]; ok {
		return res
	}
	if !r.Quiet {
		fmt.Printf("  running %-10s %-22s...\n", wl, string(p))
	}
	res, _, err := r.Engine.RunOne(campaign.Job{Workload: wl, Config: cfg})
	if err != nil {
		r.errs = append(r.errs, fmt.Errorf("%s/%s: %w", wl, p, err))
		return sim.Result{}
	}
	r.memo[key] = res
	return res
}

// slowdown returns the normalized execution time of p vs the non-secure
// baseline for workload wl (NaN if either run failed).
func (r *Runner) slowdown(wl string, p sim.Policy, mod func(*sim.Config)) float64 {
	base := r.run(wl, sim.NonSecure, nil)
	res := r.run(wl, p, mod)
	if base.Cycles == 0 {
		return math.NaN()
	}
	return float64(res.Cycles) / float64(base.Cycles)
}

// workloads returns the Table 3 workload order.
func workloads() []string { return sim.Workloads() }

// Table1 regenerates Table 1: the cost of L1 random replacement and L2
// randomization on the non-secure baseline.
func (r *Runner) Table1() Report {
	t := stats.NewTable("Table 1: Impact of randomization vs LRU baseline",
		"Configuration", "Slowdown", "Paper")
	on := true
	var l1, l2, both []float64
	for _, wl := range workloads() {
		l1 = append(l1, r.slowdown(wl, sim.NonSecure, func(c *sim.Config) { c.L1RandomRepl = &on }))
		l2 = append(l2, r.slowdown(wl, sim.NonSecure, func(c *sim.Config) { c.RandomizeL2 = &on }))
		both = append(both, r.slowdown(wl, sim.NonSecure, func(c *sim.Config) {
			c.L1RandomRepl = &on
			c.RandomizeL2 = &on
		}))
	}
	t.AddRow("L1-Rand Replacement", fmt.Sprintf("%.1f%%", stats.Slowdown(stats.Geomean(l1))), "0.1%")
	t.AddRow("L2-Randomization", fmt.Sprintf("%.1f%%", stats.Slowdown(stats.Geomean(l2))), "0.4%")
	t.AddRow("Both Together", fmt.Sprintf("%.1f%%", stats.Slowdown(stats.Geomean(both))), "0.8%")
	return Report{
		ID: "table1", Title: "Randomization impact",
		Tables: []*stats.Table{t},
		Notes:  []string{"Paper: randomization alone costs <1%; the same near-free result should hold here."},
	}
}

// Table3 regenerates Table 3: measured workload characteristics against the
// paper's published targets.
func (r *Runner) Table3() Report {
	t := stats.NewTable("Table 3: Workload characteristics (measured vs paper)",
		"Workload", "Mispredict", "Paper", "L1-D Miss", "Paper")
	for _, wl := range workloads() {
		res := r.run(wl, sim.NonSecure, nil)
		p, _ := workload.ProfileByName(wl)
		t.AddRow(wl,
			fmt.Sprintf("%.1f%%", res.MispredictRate*100),
			fmt.Sprintf("%.1f%%", p.TargetMispredict*100),
			fmt.Sprintf("%.1f%%", res.L1MissRate*100),
			fmt.Sprintf("%.1f%%", p.TargetL1Miss*100))
	}
	return Report{
		ID: "table3", Title: "Workload characteristics",
		Tables: []*stats.Table{t},
		Notes: []string{
			"The synthetic workloads are calibrated to the paper's Table 3; measured rates should track the targets.",
		},
	}
}

// Table5 regenerates Table 5: cleanup statistics under CleanupSpec.
func (r *Runner) Table5() Report {
	t := stats.NewTable("Table 5: Cleanup statistics (CleanupSpec)",
		"Workload", "SquashPKI", "Loads/Squash", "NI%", "L1H%", "L2H%", "L2M%")
	for _, wl := range workloads() {
		res := r.run(wl, sim.CleanupSpec, nil)
		t.AddRow(wl,
			fmt.Sprintf("%.2f", res.SquashPKI),
			fmt.Sprintf("%.2f", res.LoadsPerSquash),
			fmt.Sprintf("%.0f", res.SquashedPctNI),
			fmt.Sprintf("%.0f", res.SquashedPctL1H),
			fmt.Sprintf("%.2f", res.SquashedPctL2H),
			fmt.Sprintf("%.2f", res.SquashedPctL2M))
	}
	return Report{
		ID: "table5", Title: "Cleanup statistics",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Paper shape: NI+L1H dominate (>95% of squashed loads need no cleanup ops); L2H/L2M are rare;",
			"memory-bound workloads (lbm, milc, libq) skew toward L2M but squash rarely.",
		},
	}
}

// Table6 regenerates Table 6: average slowdowns of the three mitigations.
func (r *Runner) Table6() Report {
	t := stats.NewTable("Table 6: Slowdown vs non-secure baseline",
		"Configuration", "Avg Slowdown", "Paper")
	var ini, rev, cs []float64
	for _, wl := range workloads() {
		ini = append(ini, r.slowdown(wl, sim.InvisiSpecInitial, nil))
		rev = append(rev, r.slowdown(wl, sim.InvisiSpecRevised, nil))
		cs = append(cs, r.slowdown(wl, sim.CleanupSpec, nil))
	}
	t.AddRow("InvisiSpec (initial estimates)", fmt.Sprintf("%.1f%%", stats.Slowdown(stats.Geomean(ini))), "67.5%")
	t.AddRow("InvisiSpec (revised)", fmt.Sprintf("%.1f%%", stats.Slowdown(stats.Geomean(rev))), "15%")
	t.AddRow("CleanupSpec", fmt.Sprintf("%.1f%%", stats.Slowdown(stats.Geomean(cs))), "5.1%")
	return Report{
		ID: "table6", Title: "Slowdown comparison (headline result)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Shape to reproduce: CleanupSpec < InvisiSpec-Revised << InvisiSpec-Initial.",
		},
	}
}

// Table6Extended is Table 6 widened with the repository's additional
// baselines (not in the paper): the delay-based mitigations of Section
// 7.3.2. Run via `paperbench -exp table6x`.
func (r *Runner) Table6Extended() Report {
	t := stats.NewTable("Table 6 (extended): every policy vs non-secure baseline",
		"Configuration", "Avg Slowdown", "Paper / source")
	rows := []struct {
		p     sim.Policy
		paper string
	}{
		{sim.InvisiSpecInitial, "67.5% (paper)"},
		{sim.InvisiSpecRevised, "15% (paper)"},
		{sim.CleanupSpec, "5.1% (paper)"},
		{sim.DelayAll, "~20%+ (NDA/SpecShield-class)"},
		{sim.DelayOnMiss, "Conditional Speculation-class"},
		{sim.ValuePredict, "~10% (Sakalis et al.)"},
	}
	for _, row := range rows {
		var xs []float64
		for _, wl := range workloads() {
			xs = append(xs, r.slowdown(wl, row.p, nil))
		}
		t.AddRow(string(row.p), fmt.Sprintf("%.1f%%", stats.Slowdown(stats.Geomean(xs))), row.paper)
	}
	return Report{
		ID: "table6x", Title: "Slowdown comparison across all implemented mitigations",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Beyond the paper's three configurations: the delay-based related-work baselines of Section 7.3.2.",
			"Expected ordering: CleanupSpec cheapest, delay-based filters in between, InvisiSpec-Initial worst.",
		},
	}
}

// Figure4 regenerates Figure 4: InvisiSpec's execution time and network
// traffic, normalized to the non-secure baseline.
func (r *Runner) Figure4() Report {
	tt := stats.NewTable("Figure 4(a): InvisiSpec-Initial normalized execution time",
		"Workload", "Normalized Time")
	tr := stats.NewTable("Figure 4(b): InvisiSpec-Initial normalized traffic (breakdown)",
		"Workload", "Total", "Regular", "Invisible", "Update")
	var times, traffics []float64
	for _, wl := range workloads() {
		base := r.run(wl, sim.NonSecure, nil)
		inv := r.run(wl, sim.InvisiSpecInitial, nil)
		nt := float64(inv.Cycles) / float64(base.Cycles)
		times = append(times, nt)
		tt.AddRow(wl, fmt.Sprintf("%.2f", nt))
		baseTotal := float64(base.Traffic.Total())
		norm := func(x uint64) float64 { return float64(x) / baseTotal }
		total := norm(inv.Traffic.Total())
		traffics = append(traffics, total)
		tr.AddRow(wl,
			fmt.Sprintf("%.2f", total),
			fmt.Sprintf("%.2f", norm(inv.Traffic.Regular+inv.Traffic.Writebacks)),
			fmt.Sprintf("%.2f", norm(inv.Traffic.Invisible)),
			fmt.Sprintf("%.2f", norm(inv.Traffic.Update)))
	}
	return Report{
		ID: "fig4", Title: "InvisiSpec overheads (execution time and traffic)",
		Tables: []*stats.Table{tt, tr},
		Notes: []string{
			fmt.Sprintf("Measured geomean time %.2fx (paper 1.675x), traffic %.2fx (paper ~1.51x).",
				stats.Geomean(times), stats.Geomean(traffics)),
			"Paper: about half the traffic is speculative (invisible) loads, a quarter update loads.",
		},
	}
}

// Figure9 regenerates Figure 9: the load breakdown by line state for the 23
// multithreaded workloads on 4 cores.
func (r *Runner) Figure9() Report {
	t := stats.NewTable("Figure 9: Loads by line state (4 cores)",
		"Workload", "SafeCache%", "SafeDRAM%", "Unsafe(Remote-E/M)%")
	var unsafe []float64
	for _, p := range workload.MTProfiles() {
		st := multicore.New(p, 4).Run(r.Opts.MTSteps)
		unsafe = append(unsafe, st.UnsafeFrac())
		t.AddRow(p.Name,
			fmt.Sprintf("%.1f", st.SafeCacheFrac()*100),
			fmt.Sprintf("%.1f", st.SafeDRAMFrac()*100),
			fmt.Sprintf("%.2f", st.UnsafeFrac()*100))
	}
	t.AddRow("AVG", "", "", fmt.Sprintf("%.2f", stats.Mean(unsafe)*100))
	return Report{
		ID: "fig9", Title: "Remote-E/M load characterization",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Measured average unsafe share %.1f%% (paper: 2.4%%); delaying these loads is cheap.",
				stats.Mean(unsafe)*100),
		},
	}
}

// Figure11 regenerates Figure 11: the Spectre V1 PoC probe latencies under
// the non-secure baseline and CleanupSpec.
func (r *Runner) Figure11() Report {
	ns, err := sim.RunSpectre(sim.NonSecure, r.Opts.SpectreIterations)
	if err != nil {
		//simlint:allow errdiscipline -- Figure 11 runs outside the campaign cell protocol and Report has no error channel; a failed Spectre PoC invalidates the whole figure
		panic(err)
	}
	cs, err := sim.RunSpectre(sim.CleanupSpec, r.Opts.SpectreIterations)
	if err != nil {
		//simlint:allow errdiscipline -- Figure 11 runs outside the campaign cell protocol and Report has no error channel; a failed Spectre PoC invalidates the whole figure
		panic(err)
	}
	t := stats.NewTable("Figure 11: Spectre V1 probe latency by array2 index (cycles)",
		"Index", "NonSecure", "CleanupSpec", "Role")
	for k := 0; k < len(ns.AvgLatency); k++ {
		role := ""
		if k == ns.Secret {
			role = "SECRET"
		}
		for _, bi := range ns.BenignIndices {
			if k == bi {
				role = "benign (trained)"
			}
		}
		if role == "" && k%8 != 0 {
			continue // keep the table readable; benign+secret always shown
		}
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", ns.AvgLatency[k]),
			fmt.Sprintf("%.0f", cs.AvgLatency[k]), role)
	}
	verdict := func(leaked bool) string {
		if leaked {
			return "LEAKED"
		}
		return "no leak"
	}
	return Report{
		ID: "fig11", Title: "Spectre V1 proof-of-concept defense",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("NonSecure: %s (inferred %d, planted %d). CleanupSpec: %s.",
				verdict(ns.Leaked), ns.Inferred, ns.Secret, verdict(cs.Leaked)),
			"Paper: CleanupSpec shows no latency dip at the secret index while benign indices stay fast.",
		},
	}
}

// Figure12 regenerates Figure 12: per-workload CleanupSpec slowdown.
func (r *Runner) Figure12() Report {
	t := stats.NewTable("Figure 12: CleanupSpec execution time (normalized)",
		"Workload", "Normalized", "Slowdown")
	var xs []float64
	for _, wl := range workloads() {
		s := r.slowdown(wl, sim.CleanupSpec, nil)
		xs = append(xs, s)
		t.AddRow(wl, fmt.Sprintf("%.3f", s), fmt.Sprintf("%+.1f%%", stats.Slowdown(s)))
	}
	g := stats.Geomean(xs)
	t.AddRow("Avg(geomean)", fmt.Sprintf("%.3f", g), fmt.Sprintf("%+.1f%%", stats.Slowdown(g)))
	return Report{
		ID: "fig12", Title: "CleanupSpec slowdown per workload",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Paper: 5.1% average; high-mispredict and high-missrate workloads (astar, bzip2, sphinx3, soplex)",
			"show the largest slowdowns while predictable memory-bound ones (lbm, milc, libq) are near zero.",
		},
	}
}

// Figure12Variance reruns the Figure 12 average under several hierarchy
// randomization seeds — a robustness check that the headline slowdown is
// not an artifact of one CEASER key or replacement stream. Run via
// `paperbench -exp fig12var` (not part of All: it triples the run count).
func (r *Runner) Figure12Variance() Report {
	t := stats.NewTable("Figure 12 (variance): CleanupSpec average slowdown by seed",
		"Seed", "Avg Slowdown")
	lo, hi := 0.0, 0.0
	for i, seed := range []uint64{1, 7, 42} {
		var xs []float64
		for _, wl := range workloads() {
			base := r.run(wl, sim.NonSecure, func(c *sim.Config) { c.Seed = seed })
			res := r.run(wl, sim.CleanupSpec, func(c *sim.Config) { c.Seed = seed })
			xs = append(xs, float64(res.Cycles)/float64(base.Cycles))
		}
		s := stats.Slowdown(stats.Geomean(xs))
		if i == 0 || s < lo {
			lo = s
		}
		if i == 0 || s > hi {
			hi = s
		}
		t.AddRow(fmt.Sprintf("%d", seed), fmt.Sprintf("%.1f%%", s))
	}
	return Report{
		ID: "fig12var", Title: "Seed sensitivity of the headline slowdown",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Spread across seeds: %.1f–%.1f%%.", lo, hi),
		},
	}
}

// Figure13 regenerates Figure 13: squash frequency.
func (r *Runner) Figure13() Report {
	t := stats.NewTable("Figure 13: Squashes per kilo-instruction (CleanupSpec)",
		"Workload", "Squash PKI")
	for _, wl := range workloads() {
		res := r.run(wl, sim.CleanupSpec, nil)
		t.AddRow(wl, fmt.Sprintf("%.2f", res.SquashPKI))
	}
	return Report{
		ID: "fig13", Title: "Squash frequency",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Shape: squash frequency falls left to right (Table 3 is ordered by mispredict rate) and",
			"workloads with more squashes typically slow down more.",
		},
	}
}

// Figure14 regenerates Figure 14: stall time per squash, split into the
// inflight-wait and actual-cleanup components.
func (r *Runner) Figure14() Report {
	t := stats.NewTable("Figure 14: Stall per squash (cycles, CleanupSpec)",
		"Workload", "InflightWait", "CleanupOps", "Total")
	for _, wl := range workloads() {
		res := r.run(wl, sim.CleanupSpec, nil)
		t.AddRow(wl,
			fmt.Sprintf("%.1f", res.WaitPerSquash),
			fmt.Sprintf("%.1f", res.CleanupPerSquash),
			fmt.Sprintf("%.1f", res.WaitPerSquash+res.CleanupPerSquash))
	}
	return Report{
		ID: "fig14", Title: "Cleanup stall breakdown",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Paper: ~25 cycles per squash on average, of which ~20 wait for in-flight correct-path loads",
			"and only ~5 are actual cleanup operations. The wait overlaps the pipeline refill (Section 2.4).",
		},
	}
}

// Figure15 regenerates Figure 15: of the squashed L1-misses, how many were
// still in flight (dropped for free) vs executed (needing cleanup ops).
func (r *Runner) Figure15() Report {
	t := stats.NewTable("Figure 15: Squashed L1-misses, inflight vs executed (CleanupSpec)",
		"Workload", "Inflight%", "Executed%")
	for _, wl := range workloads() {
		res := r.run(wl, sim.CleanupSpec, nil)
		t.AddRow(wl,
			fmt.Sprintf("%.0f", res.InflightFrac*100),
			fmt.Sprintf("%.0f", res.ExecutedFrac*100))
	}
	return Report{
		ID: "fig15", Title: "Inflight vs executed cleanup loads",
		Tables: []*stats.Table{t},
		Notes: []string{
			"Paper: ~50% of squashed L1-misses are still in flight; dropping their pending fill costs nothing.",
		},
	}
}

// Storage regenerates the Section 6.6 storage-overhead calculation.
func (r *Runner) Storage() Report {
	t := stats.NewTable("Section 6.6: SEFE storage overhead per core",
		"Component", "Entries", "Bits/entry", "Bytes")
	t.AddRow("LQ SEFE", "32", "56", fmt.Sprintf("%d", 32*56/8))
	t.AddRow("L1-MSHR SEFE", "64", "56", fmt.Sprintf("%d", 64*56/8))
	t.AddRow("L2-MSHR SEFE", "64", "16", fmt.Sprintf("%d", 64*16/8))
	t.AddRow("Total", "", "", fmt.Sprintf("%d", sim.StorageOverheadBytes()))
	return Report{
		ID: "storage", Title: "Storage overhead",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("Measured %d bytes per core; the paper promises < 1 KB.", sim.StorageOverheadBytes()),
		},
	}
}
