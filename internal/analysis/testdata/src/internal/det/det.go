// Package det is the determinism analyzer's golden input.
package det

import "sort"

// BadSum iterates a map directly: order-dependent float accumulation.
func BadSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want `range over map m: iteration order is randomized`
		total += v
	}
	return total
}

// GoodSorted uses the collect-then-sort idiom and is not flagged.
func GoodSorted(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodFiltered uses the filter-then-sort variant and is not flagged.
func GoodFiltered(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// GoodAnnotated folds values into an int — not a pure collect loop, so
// only the justified directive keeps it quiet.
func GoodAnnotated(m map[string]int) int {
	n := 0
	//simlint:ordered -- integer summation is commutative; the total is order-independent
	for _, v := range m {
		n += v
	}
	return n
}

// GoodKeyless binds neither key nor value: every iteration runs an
// identical body, so the loop is order-independent with no directive.
func GoodKeyless(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// sortKeys sorts its argument; the analyzer learns this summary.
func sortKeys(ks []string) {
	sort.Strings(ks)
}

// resort forwards to sortKeys: summaries must be transitive.
func resort(ks []string) {
	sortKeys(ks)
}

// GoodSortedInHelper sorts through a helper, not a direct sort call.
func GoodSortedInHelper(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	resort(keys)
	return keys
}

// GoodSortedThenFiltered re-slices after sorting: order is preserved.
func GoodSortedThenFiltered(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 3 {
		keys = keys[:3]
	}
	return keys
}

// BadResortedReuse collects again after the sort: the second batch is
// appended in map order and never re-sorted, so only the second loop
// must fire.
func BadResortedReuse(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for k := range m { // want `range over map m: iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}

// BadSortedOnOnePath sorts in only one branch; the merge is not provably
// sorted when the slice is finally used.
func BadSortedOnOnePath(m map[string]int, b bool) []string {
	var keys []string
	for k := range m { // want `range over map m: iteration order is randomized`
		keys = append(keys, k)
	}
	if b {
		sort.Strings(keys)
	}
	return keys
}

// BadUnsorted collects keys but never sorts them.
func BadUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `range over map m: iteration order is randomized`
		keys = append(keys, k)
	}
	return keys
}
