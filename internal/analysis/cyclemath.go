package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerCycleMath targets the classic simulator underflow bug class:
// uint64 cycle arithmetic that silently wraps. Two rules:
//
//  1. A subtraction a-b of cycle/latency values (underlying uint64,
//     cycle-named type or operand — see isCycleName) must be dominated by
//     a provable a >= b guard. Without one, a single reordering bug turns
//     a small negative difference into ~1.8e19 cycles — which then feeds
//     a watchdog, an average, or a DRAM deadline and corrupts the run
//     silently. The proof is flow-sensitive within the function: facts
//     flow out of if/for conditions (including the early-exit negation
//     `if a < b { return }`), through && short-circuits, and through
//     simple copies (`base := m.cycleBase`); they are killed when either
//     side is reassigned. This also covers the wrap-comparison variant
//     (`a-b > threshold` is the same unguarded subtraction).
//  2. Cycle values must not cross signed↔unsigned conversions: int(cycle)
//     truncates and sign-flips past 2^63, and Cycle(signed) launders a
//     negative into an enormous cycle count. Constant operands fold at
//     compile time and are exempt.
//
// Subtractions with a constant subtrahend (`now - 1`) are not flagged:
// there is no variable to guard against, and the idiom is pervasive in
// ring/index math; cycletyping already pins the representation.
//
// The proof deliberately assumes guarded operands are not mutated by
// calls between guard and use (guard-then-subtract is an adjacent idiom
// in this codebase); a call that mutates its own guard operands would
// evade it, which is the usual precision/noise trade for a lint.
var AnalyzerCycleMath = &Analyzer{
	Name: "cyclemath",
	Doc:  "require uint64 cycle subtractions to be dominated by a provable a>=b guard, and forbid signed conversions of cycle values",
	Run:  runCycleMath,
}

func runCycleMath(p *Pass) {
	rel := p.Pkg.Rel()
	if !hasPathPrefix(rel, "internal") && !hasPathPrefix(rel, "sim") {
		return
	}
	w := &cmWalker{p: p}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				if fd.Body != nil {
					w.block(fd.Body, cmEnv{})
				}
				return false
			}
			return true
		})
	}
}

// cmEnv is the set of proved ordering facts at a program point, keyed
// "big\x00small" meaning big >= small (paths per pathKey).
type cmEnv map[string]bool

func cmFact(big, small string) string { return big + "\x00" + small }

func (env cmEnv) clone() cmEnv {
	out := make(cmEnv, len(env))
	//simlint:ordered -- set copy into another set; no order-dependent state
	for k := range env {
		out[k] = true
	}
	return out
}

// with returns env extended by facts (copy-on-write).
func (env cmEnv) with(facts []string) cmEnv {
	if len(facts) == 0 {
		return env
	}
	out := env.clone()
	for _, f := range facts {
		out[f] = true
	}
	return out
}

// intersect keeps only facts proved on both joining paths.
func (env cmEnv) intersect(other cmEnv) cmEnv {
	out := make(cmEnv)
	//simlint:ordered -- set intersection into another set; no order-dependent state
	for k := range env {
		if other[k] {
			out[k] = true
		}
	}
	return out
}

// kill removes facts mentioning path (or a selector under it).
func (env cmEnv) kill(path string) {
	if path == "" {
		return
	}
	//simlint:ordered -- deletes every matching fact from a set; the surviving set is the same in any iteration order
	for k := range env {
		big, small, _ := strings.Cut(k, "\x00")
		if cmPathTouches(big, path) || cmPathTouches(small, path) {
			delete(env, k)
		}
	}
}

// killSide removes facts where path sits on the given side only: side
// "big" after the value shrank (big>=small no longer provable), side
// "small" after it grew.
func (env cmEnv) killSide(path, side string) {
	if path == "" {
		return
	}
	//simlint:ordered -- deletes every matching fact from a set; the surviving set is the same in any iteration order
	for k := range env {
		big, small, _ := strings.Cut(k, "\x00")
		comp := big
		if side == "small" {
			comp = small
		}
		if cmPathTouches(comp, path) {
			delete(env, k)
		}
	}
}

func cmPathTouches(comp, path string) bool {
	return comp == path || strings.HasPrefix(comp, path+".")
}

// pathKey canonicalizes an ident/selector chain ("m.now") or an
// argument-less call on one ("m.Now()" — accessor methods like Now are
// stable between a guard and the subtraction it dominates, the same
// no-mutation-between-guard-and-use assumption the analyzer makes for
// fields); "" for anything else (index expressions, arithmetic, calls
// with arguments).
func pathKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := pathKey(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.CallExpr:
		if len(e.Args) == 0 {
			if f := pathKey(e.Fun); f != "" {
				return f + "()"
			}
		}
	}
	return ""
}

// factsFrom returns the ordering facts that hold when cond is true.
func factsFrom(cond ast.Expr) []string {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	x, y := pathKey(b.X), pathKey(b.Y)
	switch b.Op {
	case token.LAND:
		return append(factsFrom(b.X), factsFrom(b.Y)...)
	case token.GEQ, token.GTR:
		if x != "" && y != "" {
			return []string{cmFact(x, y)}
		}
	case token.LEQ, token.LSS:
		if x != "" && y != "" {
			return []string{cmFact(y, x)}
		}
	case token.EQL:
		if x != "" && y != "" {
			return []string{cmFact(x, y), cmFact(y, x)}
		}
	}
	return nil
}

// factsFromNeg returns the facts that hold when cond is false (the
// early-exit pattern: after `if a < b { return }`, a >= b holds).
func factsFromNeg(cond ast.Expr) []string {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	x, y := pathKey(b.X), pathKey(b.Y)
	switch b.Op {
	case token.LOR: // !(a||b) => !a && !b
		return append(factsFromNeg(b.X), factsFromNeg(b.Y)...)
	case token.LSS, token.LEQ: // !(a<b) => a>=b ; !(a<=b) => a>b
		if x != "" && y != "" {
			return []string{cmFact(x, y)}
		}
	case token.GTR, token.GEQ:
		if x != "" && y != "" {
			return []string{cmFact(y, x)}
		}
	case token.NEQ: // !(a!=b) => a==b
		if x != "" && y != "" {
			return []string{cmFact(x, y), cmFact(y, x)}
		}
	}
	return nil
}

// cmWalker is the per-package statement walker: it threads a fact
// environment through each function body and checks every subtraction
// and conversion it meets against the facts in scope.
type cmWalker struct {
	p *Pass
}

// block walks a statement list; reports whether control provably leaves
// the enclosing flow (return/branch/panic) so joins can drop that arm.
func (w *cmWalker) block(b *ast.BlockStmt, env cmEnv) (cmEnv, bool) {
	if b == nil {
		return env, false
	}
	return w.stmts(b.List, env)
}

func (w *cmWalker) stmts(list []ast.Stmt, env cmEnv) (cmEnv, bool) {
	for _, s := range list {
		var term bool
		env, term = w.stmt(s, env)
		if term {
			return env, true
		}
	}
	return env, false
}

func (w *cmWalker) stmt(s ast.Stmt, env cmEnv) (cmEnv, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, env)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := w.p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					return env, true
				}
			}
		}
		return env, false

	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs, env)
		}
		for _, lhs := range s.Lhs {
			w.expr(lhs, env)
		}
		if s.Tok == token.SUB_ASSIGN && len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			w.checkSub(s.Lhs[0], s.Rhs[0], s.TokPos, env)
		}
		env = env.clone()
		for i, lhs := range s.Lhs {
			path := pathKey(lhs)
			if path == "" {
				continue
			}
			switch s.Tok {
			case token.ADD_ASSIGN: // x grew: x>=s survives, b>=x dies
				env.killSide(path, "small")
			case token.SUB_ASSIGN: // x shrank: b>=x survives, x>=s dies
				env.killSide(path, "big")
			case token.ASSIGN, token.DEFINE:
				env.kill(path)
				if len(s.Lhs) == len(s.Rhs) {
					if src := pathKey(s.Rhs[i]); src != "" && src != path {
						// Copy: the new name inherits the source's facts.
						// Inserted facts name `path` (!= src) on the copied
						// side, so they can never re-match the conditions:
						// the final set is order-independent even though the
						// range may or may not visit entries added mid-loop.
						//simlint:ordered -- inserts facts that cannot themselves match; resulting fact set is the same in any iteration order
						for k := range env {
							big, small, _ := strings.Cut(k, "\x00")
							if big == src {
								env[cmFact(path, small)] = true
							}
							if small == src {
								env[cmFact(big, path)] = true
							}
						}
						env[cmFact(path, src)] = true
						env[cmFact(src, path)] = true
					}
				}
			default:
				env.kill(path)
			}
		}
		return env, false

	case *ast.IncDecStmt:
		w.expr(s.X, env)
		env = env.clone()
		if s.Tok == token.INC {
			env.killSide(pathKey(s.X), "small")
		} else {
			env.killSide(pathKey(s.X), "big")
		}
		return env, false

	case *ast.IfStmt:
		if s.Init != nil {
			env, _ = w.stmt(s.Init, env)
		}
		w.expr(s.Cond, env)
		thenOut, thenTerm := w.block(s.Body, env.with(factsFrom(s.Cond)))
		elseEnv := env.with(factsFromNeg(s.Cond))
		elseOut, elseTerm := elseEnv, false
		if s.Else != nil {
			elseOut, elseTerm = w.stmt(s.Else, elseEnv)
		}
		switch {
		case thenTerm && elseTerm:
			return env, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return thenOut.intersect(elseOut), false
		}

	case *ast.BlockStmt:
		return w.stmts(s.List, env)

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, env)
		}
		return env, true

	case *ast.BranchStmt:
		return env, true

	case *ast.ForStmt:
		if s.Init != nil {
			env, _ = w.stmt(s.Init, env)
		}
		// Facts killed anywhere in the loop are unreliable on every
		// iteration but the first; drop them up front.
		loopEnv := env.clone()
		cmKillAssigned(loopEnv, s.Body)
		if s.Post != nil {
			cmKillAssigned(loopEnv, &ast.BlockStmt{List: []ast.Stmt{s.Post}})
		}
		if s.Cond != nil {
			w.expr(s.Cond, loopEnv)
		}
		w.block(s.Body, loopEnv.with(factsFrom(s.Cond)))
		if s.Post != nil {
			w.stmt(s.Post, loopEnv)
		}
		return loopEnv, false

	case *ast.RangeStmt:
		w.expr(s.X, env)
		loopEnv := env.clone()
		loopEnv.kill(pathKey(s.Key))
		loopEnv.kill(pathKey(s.Value))
		cmKillAssigned(loopEnv, s.Body)
		w.block(s.Body, loopEnv)
		return loopEnv, false

	case *ast.SwitchStmt:
		if s.Init != nil {
			env, _ = w.stmt(s.Init, env)
		}
		if s.Tag != nil {
			w.expr(s.Tag, env)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			caseEnv := env
			for _, e := range cc.List {
				w.expr(e, env)
			}
			if s.Tag == nil && len(cc.List) == 1 {
				caseEnv = env.with(factsFrom(cc.List[0]))
			}
			w.stmts(cc.Body, caseEnv)
		}
		out := env.clone()
		cmKillAssigned(out, s.Body)
		return out, false

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			env, _ = w.stmt(s.Init, env)
		}
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, env)
		}
		out := env.clone()
		cmKillAssigned(out, s.Body)
		return out, false

	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			commEnv := env
			if cc.Comm != nil {
				commEnv, _ = w.stmt(cc.Comm, env.clone())
			}
			w.stmts(cc.Body, commEnv)
		}
		out := env.clone()
		cmKillAssigned(out, s.Body)
		return out, false

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return env, false
		}
		env = env.clone()
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.expr(v, env)
			}
			for i, name := range vs.Names {
				env.kill(name.Name)
				if len(vs.Values) == len(vs.Names) {
					if src := pathKey(vs.Values[i]); src != "" {
						env[cmFact(name.Name, src)] = true
						env[cmFact(src, name.Name)] = true
					}
				}
			}
		}
		return env, false

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, env)

	case *ast.DeferStmt:
		w.expr(s.Call.Fun, cmEnv{})
		for _, a := range s.Call.Args {
			w.expr(a, env)
		}
		return env, false

	case *ast.GoStmt:
		w.expr(s.Call.Fun, cmEnv{})
		for _, a := range s.Call.Args {
			w.expr(a, env)
		}
		return env, false

	case *ast.SendStmt:
		w.expr(s.Chan, env)
		w.expr(s.Value, env)
		return env, false
	}
	return env, false
}

// cmKillAssigned deletes every fact whose operands any statement under
// body assigns, increments, or decrements.
func cmKillAssigned(env cmEnv, body ast.Node) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				env.kill(pathKey(lhs))
			}
		case *ast.IncDecStmt:
			env.kill(pathKey(n.X))
		case *ast.RangeStmt:
			env.kill(pathKey(n.Key))
			env.kill(pathKey(n.Value))
		}
		return true
	})
}

// expr checks every subtraction and conversion inside e against the
// facts in env, threading guard facts through && / || short-circuits.
// Function-literal bodies start from an empty environment: the literal
// may run long after the facts expire.
func (w *cmWalker) expr(e ast.Expr, env cmEnv) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			w.expr(e.X, env)
			w.expr(e.Y, env.with(factsFrom(e.X)))
		case token.LOR:
			w.expr(e.X, env)
			w.expr(e.Y, env.with(factsFromNeg(e.X)))
		case token.SUB:
			w.expr(e.X, env)
			w.expr(e.Y, env)
			w.checkSub(e.X, e.Y, e.OpPos, env)
		default:
			w.expr(e.X, env)
			w.expr(e.Y, env)
		}
	case *ast.ParenExpr:
		w.expr(e.X, env)
	case *ast.UnaryExpr:
		w.expr(e.X, env)
	case *ast.StarExpr:
		w.expr(e.X, env)
	case *ast.SelectorExpr:
		w.expr(e.X, env)
	case *ast.IndexExpr:
		w.expr(e.X, env)
		w.expr(e.Index, env)
	case *ast.IndexListExpr:
		w.expr(e.X, env)
		for _, idx := range e.Indices {
			w.expr(idx, env)
		}
	case *ast.SliceExpr:
		w.expr(e.X, env)
		w.expr(e.Low, env)
		w.expr(e.High, env)
		w.expr(e.Max, env)
	case *ast.TypeAssertExpr:
		w.expr(e.X, env)
	case *ast.KeyValueExpr:
		w.expr(e.Key, env)
		w.expr(e.Value, env)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, env)
		}
	case *ast.FuncLit:
		w.block(e.Body, cmEnv{})
	case *ast.CallExpr:
		w.checkConv(e)
		w.expr(e.Fun, env)
		for _, a := range e.Args {
			w.expr(a, env)
		}
	}
}

// checkSub reports x-y when both operands are uint64, at least one is
// cycle-typed or cycle-named, the subtrahend is not a constant, and no
// in-scope fact proves x >= y.
func (w *cmWalker) checkSub(x, y ast.Expr, pos token.Pos, env cmEnv) {
	info := w.p.Pkg.Info
	if !cmIsUint64(info.TypeOf(x)) || !cmIsUint64(info.TypeOf(y)) {
		return
	}
	if !cmIsCycleExpr(info, x) && !cmIsCycleExpr(info, y) {
		return
	}
	if tv, ok := info.Types[y]; ok && tv.Value != nil {
		return // constant subtrahend: nothing to guard against
	}
	if tv, ok := info.Types[x]; ok && tv.Value != nil {
		return // constant minuend folds with whatever guards exist
	}
	px, py := pathKey(x), pathKey(y)
	if px != "" && px == py {
		return // a - a
	}
	if px != "" && py != "" && env[cmFact(px, py)] {
		return // dominated by a proved px >= py
	}
	w.p.Reportf(pos,
		"uint64 cycle subtraction %s - %s is not dominated by a provable %s >= %s guard; if the order ever flips, unsigned wrap yields ~1.8e19 cycles — guard it, restructure as a comparison against the sum, or annotate //simlint:allow cyclemath -- <the invariant that orders them>",
		exprString(x), exprString(y), exprString(x), exprString(y))
}

// checkConv reports signed↔unsigned conversions of cycle values.
func (w *cmWalker) checkConv(call *ast.CallExpr) {
	info := w.p.Pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if atv, ok := info.Types[arg]; ok && atv.Value != nil {
		return // constant: folds (and the compiler rejects out-of-range)
	}
	dst, src := info.TypeOf(call), info.TypeOf(arg)
	if dst == nil || src == nil {
		return
	}
	switch {
	case cmIsSignedInt(dst) && cmIsUint64(src) && cmIsCycleExpr(info, arg):
		w.p.Reportf(call.Pos(),
			"cycle value %s converted to signed %s: truncates and sign-flips past 2^63; keep cycle math in uint64 (use float64 for ratios)",
			exprString(arg), types.TypeString(dst, shortQualifier))
	case cmIsUint64(dst) && cmIsCycleType(dst) && cmIsSignedInt(src):
		w.p.Reportf(call.Pos(),
			"signed %s converted to cycle type %s: a negative value wraps to ~1.8e19 cycles; derive cycle values from unsigned sources",
			types.TypeString(src, shortQualifier), types.TypeString(dst, shortQualifier))
	}
}

func cmIsUint64(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

func cmIsSignedInt(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	info := b.Info()
	return info&types.IsInteger != 0 && info&types.IsUnsigned == 0
}

// cmIsCycleType reports a named type whose name declares cycle content
// (arch.Cycle and friends).
func cmIsCycleType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && isCycleName(named.Obj().Name())
}

// cmIsCycleExpr reports whether e is cycle-flavored: its type is a
// cycle-named uint64 type, or the last component of its path/selector
// spelling passes isCycleName.
func cmIsCycleExpr(info *types.Info, e ast.Expr) bool {
	if t := info.TypeOf(e); t != nil && cmIsCycleType(t) {
		return true
	}
	return isCycleName(cmLastName(e))
}

func cmLastName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return cmLastName(e.Fun)
	case *ast.IndexExpr:
		return cmLastName(e.X)
	}
	return ""
}
