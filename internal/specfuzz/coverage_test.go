package specfuzz

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllCellsEnumerates36(t *testing.T) {
	cells := AllCells()
	if len(cells) != 36 {
		t.Fatalf("AllCells() = %d cells, want 36", len(cells))
	}
	seen := make(map[string]bool)
	for _, c := range cells {
		if seen[c] {
			t.Fatalf("duplicate cell %q", c)
		}
		seen[c] = true
	}
	if !seen["bounds-check/index/flush-reload/flush"] {
		t.Fatalf("canonical cell name missing from %v", cells[:4])
	}
}

func TestSpecCellAxes(t *testing.T) {
	s := GadgetSpec{Window: WindowPointerChase, Pattern: PatternBit, Receiver: RecvPrimeProbe, FlushBounds: false}
	if got := SpecCell(s); got != "pointer-chase/bit/prime-probe/noflush" {
		t.Fatalf("SpecCell = %q", got)
	}
	s.FlushBounds = true
	if got := SpecCell(s); got != "pointer-chase/bit/prime-probe/flush" {
		t.Fatalf("SpecCell = %q", got)
	}
}

func TestCoverageAddMergeUnexplored(t *testing.T) {
	a := make(Coverage)
	s := GadgetSpec{Window: WindowBoundsCheck, Pattern: PatternIndex, Receiver: RecvFlushReload, FlushBounds: true}
	a.Add("cleanupspec", s)
	a.Add("cleanupspec", s)
	if n := a["cleanupspec"][SpecCell(s)]; n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
	if got := a.Explored("cleanupspec"); got != 1 {
		t.Fatalf("explored = %d, want 1", got)
	}
	missing := a.Unexplored("cleanupspec")
	if len(missing) != 35 {
		t.Fatalf("unexplored = %d, want 35", len(missing))
	}
	for _, cell := range missing {
		if cell == SpecCell(s) {
			t.Fatal("explored cell listed as unexplored")
		}
	}
	// A policy with no coverage at all: everything unexplored.
	if got := len(a.Unexplored("nonsecure")); got != 36 {
		t.Fatalf("unexplored for uncovered policy = %d, want 36", got)
	}

	b := make(Coverage)
	b.Add("cleanupspec", s)
	other := s
	other.Window = WindowDoubleBranch
	b.Add("nonsecure", other)
	a.Merge(b)
	if a["cleanupspec"][SpecCell(s)] != 3 || a["nonsecure"][SpecCell(other)] != 1 {
		t.Fatalf("merge result = %v", a)
	}
}

func TestCoverageFromEntriesAndSeedCorpus(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata", "seed-corpus.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus is empty")
	}
	cov := CoverageFromEntries(entries)
	if len(cov.Policies()) == 0 {
		t.Fatal("seed corpus produced no per-policy coverage")
	}
	for _, p := range cov.Policies() {
		if cov.Explored(p) == 0 {
			t.Fatalf("policy %s: zero explored cells", p)
		}
		// The acceptance criterion: an 8-entry corpus cannot tile 36
		// cells, so at least one unexplored cell must be named.
		if len(cov.Unexplored(p)) == 0 {
			t.Fatalf("policy %s: no unexplored cells in a %d-entry corpus", p, len(entries))
		}
	}
}

func TestHeatmapDeterministicAndNamesUnexplored(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join("testdata", "seed-corpus.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cov := CoverageFromEntries(entries)
	var a, b bytes.Buffer
	cov.WriteHeatmap(&a)
	CoverageFromEntries(entries).WriteHeatmap(&b)
	if a.String() != b.String() {
		t.Fatal("heatmap not deterministic across recomputation")
	}
	out := a.String()
	if !strings.Contains(out, "cells explored") {
		t.Fatalf("heatmap missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "unexplored (") {
		t.Fatalf("heatmap names no unexplored cells:\n%s", out)
	}
	// Every policy block carries the full row set.
	for _, row := range []string{"bounds-check/index", "pointer-chase/bit", "double-branch/two-level"} {
		if !strings.Contains(out, row) {
			t.Fatalf("heatmap missing row %q:\n%s", row, out)
		}
	}
	for _, col := range []string{"flush-reload/flush", "prime-probe/noflush"} {
		if !strings.Contains(out, col) {
			t.Fatalf("heatmap missing column %q:\n%s", col, out)
		}
	}
}

func TestRunFillsReportCoverage(t *testing.T) {
	// Covered indirectly by the fuzz golden tests too, but pin the wiring
	// here: CoverageFromReport over a synthetic report counts only cells
	// with verdicts.
	rep := Report{
		Gadgets: []GadgetReport{
			{
				Spec: GadgetSpec{Window: WindowBoundsCheck, Pattern: PatternIndex, Receiver: RecvFlushReload, FlushBounds: true},
				Verdicts: []*Verdict{
					{Policy: "nonsecure", Leak: true},
					nil, // failed cell: not explored
				},
			},
		},
	}
	cov := CoverageFromReport(rep)
	if cov.Explored("nonsecure") != 1 {
		t.Fatalf("coverage = %v", cov)
	}
	if len(cov) != 1 {
		t.Fatalf("failed cell counted as coverage: %v", cov)
	}
}
