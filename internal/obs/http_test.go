package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestStatusHandlerServesJSON(t *testing.T) {
	h := StatusHandler(func() any {
		return map[string]any{"done": 3, "total": 10}
	})
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/status", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	body, _ := io.ReadAll(rr.Body)
	if !strings.Contains(string(body), `"done": 3`) {
		t.Fatalf("body = %s", body)
	}
}

func TestMetricsHandlerTextExposition(t *testing.T) {
	reg := metrics.NewRegistry()
	var hits uint64 = 42
	reg.BindCounter("cache.l1d.hits", &hits)
	reg.GaugeFunc("rob.occ", func() float64 { return 2.5 })
	h := reg.Histogram("restore.lat")
	h.Observe(3)
	h.Observe(9)

	rr := httptest.NewRecorder()
	MetricsHandler(func() metrics.Snapshot { return reg.Snapshot() }).
		ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rr.Body.String()

	for _, want := range []string{
		"cache_l1d_hits 42\n",
		"rob_occ 2.5\n",
		"restore_lat_count 2\n",
		"restore_lat_sum 12\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, `restore_lat_bucket{le=`) {
		t.Fatalf("exposition missing histogram buckets:\n%s", body)
	}
	// Deterministic: two snapshots of an unchanged registry render the
	// same bytes.
	rr2 := httptest.NewRecorder()
	MetricsHandler(func() metrics.Snapshot { return reg.Snapshot() }).
		ServeHTTP(rr2, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if body != rr2.Body.String() {
		t.Fatal("text exposition not deterministic across snapshots")
	}
}
