package fabric

import "repro/internal/campaign"

// MsgType tags a fabric protocol message.
type MsgType string

// Request types (worker → coordinator) and reply types (coordinator →
// worker). The protocol is strict request/reply over Conn.Do; every
// request is idempotent, because the transport is allowed to lose
// responses, duplicate deliveries, and replay stale requests (see
// FaultConn), and the worker's only recovery is to send again.
const (
	// MsgLeaseReq asks for work. Replies: MsgGrant (a cell and a lease),
	// MsgWait (nothing leasable right now, ask again), MsgShutdown (the
	// campaign is settled, exit).
	MsgLeaseReq MsgType = "lease-req"
	MsgGrant    MsgType = "grant"
	MsgWait     MsgType = "wait"
	MsgShutdown MsgType = "shutdown"

	// MsgRenew is the heartbeat: it extends a live lease's expiry.
	// Replies: MsgRenewAck, or MsgNack when the lease has already been
	// reclaimed (the worker keeps simulating — its eventual completion is
	// still content-valid, just stale).
	MsgRenew    MsgType = "renew"
	MsgRenewAck MsgType = "renew-ack"

	// MsgComplete reports a finished cell, carrying the checksummed cache
	// entry for successes. Replies: MsgCompleteAck (possibly flagged
	// Stale), or MsgNack when the payload fails verification — the worker
	// rebuilds the entry from its local cache and retries.
	MsgComplete    MsgType = "complete"
	MsgCompleteAck MsgType = "complete-ack"

	// MsgEntryReq asks the coordinator for another worker's cached entry
	// (the shared-namespace read path). Replies: MsgEntry on a hit,
	// MsgNack on a miss — the worker then simulates locally.
	MsgEntryReq MsgType = "entry-req"
	MsgEntry    MsgType = "entry"

	// MsgNack is the generic refusal; Reason says why. Never fatal to the
	// worker: every nack has a local fallback (retry, rebuild, simulate).
	MsgNack MsgType = "nack"
)

// Msg is the single wire envelope for every fabric exchange. One flat
// struct instead of a per-type hierarchy keeps the codec trivial and the
// JSON encoding deterministic: every field is a scalar, a pointer to a
// struct of scalars, or pre-canonicalized JSON — no map-typed fields, so
// two marshals of the same message are byte-identical (the wireenc lint
// enforces this for every struct that reaches a journal or the wire).
type Msg struct {
	Type MsgType `json:"type"`
	// Worker identifies the sender on requests (lease-req, renew,
	// complete).
	Worker string `json:"worker,omitempty"`
	// Key is the cell's content-addressed cache key.
	Key string `json:"key,omitempty"`
	// Lease is the coordinator-issued lease id the exchange refers to.
	Lease uint64 `json:"lease,omitempty"`
	// TTLTicks is the granted lease lifetime in coordinator clock ticks.
	TTLTicks uint64 `json:"ttl_ticks,omitempty"`
	// Job is the leased cell's full job spec (grant only).
	Job *campaign.Job `json:"job,omitempty"`
	// Entry is a checksummed cache entry in transit (complete, entry).
	// Both directions re-verify it before trusting a byte.
	Entry *campaign.Entry `json:"entry,omitempty"`
	// Status is the completion outcome: campaign.StatusDone / StatusFailed
	// / StatusQuarantined.
	Status string `json:"status,omitempty"`
	// Err carries a failed cell's error text.
	Err string `json:"err,omitempty"`
	// Dump is a quarantined cell's diagnostic dump path (on the worker's
	// host).
	Dump string `json:"dump,omitempty"`
	// Attempts is how many attempts the worker spent on the cell.
	//
	// Deliberately absent: the worker's wall-clock cost. Fabric messages
	// feed journals and, via completion entries, hash-derived identities;
	// keeping the envelope free of wall-clock values keeps the whole
	// protocol replayable (detertaint enforces this transitively). Wall
	// cost is observable on the worker's own span stream instead.
	Attempts int `json:"attempts,omitempty"`
	// Stale marks a complete-ack for a lease the coordinator had already
	// reclaimed: the result was still accepted (content-addressed results
	// cannot conflict), the flag is diagnostic.
	Stale bool `json:"stale,omitempty"`
	// Reason explains a nack.
	Reason string `json:"reason,omitempty"`
}
