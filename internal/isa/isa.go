// Package isa defines the tiny RISC-style instruction set the simulated
// out-of-order core executes, a functional data-memory model, and a
// label-based program builder used by the synthetic workload generator and
// the attack proof-of-concepts.
//
// The ISA is deliberately minimal — just enough to express the paper's
// workloads and the Spectre v1 PoC with real data-dependent control flow:
// ALU ops, 8-byte loads/stores, conditional branches, calls/returns,
// clflush, fences, a serializing cycle-counter read (the stand-in for
// rdtscp), and halt. PCs are instruction indices (not byte addresses).
package isa

import (
	"fmt"

	"repro/internal/arch"
)

// NumRegs is the architectural register count. Register 0 is hard-wired to
// zero, RISC-style.
const NumRegs = 32

// LinkReg is the register Call writes its return address to and Ret reads
// its target from.
const LinkReg Reg = 31

// Reg is an architectural register number.
type Reg uint8

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	OpNop Op = iota
	OpALU
	OpLoad    // rd = mem64[rs1 + imm]
	OpStore   // mem64[rs1 + imm] = rs2
	OpBranch  // if cond(rs1, rs2): pc = Target else pc+1
	OpJump    // pc = Target
	OpCall    // push(pc+1); pc = Target
	OpRet     // pc = pop()
	OpCLFlush // flush cache line at rs1 + imm (ordered, commit-time)
	OpFence   // younger loads may not issue until this commits
	OpRdCycle // rd = current cycle; serializing (executes at ROB head)
	OpHalt    // stop the program (takes effect at commit)
)

func (o Op) String() string {
	names := [...]string{"nop", "alu", "load", "store", "branch", "jump",
		"call", "ret", "clflush", "fence", "rdcycle", "halt"}
	if int(o) < len(names) {
		return names[o]
	}
	//simlint:allow hotalloc -- fallback for out-of-range ops only; every assembled op takes the table branch above
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsMem reports whether the op accesses the data cache.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore || o == OpCLFlush }

// IsCtrl reports whether the op changes control flow.
func (o Op) IsCtrl() bool {
	return o == OpBranch || o == OpJump || o == OpCall || o == OpRet
}

// ALUKind selects the ALU operation.
type ALUKind uint8

// ALU operations. Mix applies a strong 64-bit hash (xrand.Hash64); the
// workload generator uses it to synthesize well-distributed pseudo-random
// addresses with a single data-dependent instruction.
const (
	AluAdd ALUKind = iota
	AluSub
	AluAnd
	AluOr
	AluXor
	AluShl
	AluShr
	AluMul
	AluMix
)

// Latency returns the execution latency of the ALU op in cycles.
func (k ALUKind) Latency() arch.Cycle {
	if k == AluMul || k == AluMix {
		return 3
	}
	return 1
}

// Cond is a branch condition.
type Cond uint8

// Branch conditions (comparisons of rs1 against rs2).
const (
	CondEQ Cond = iota
	CondNE
	CondLTU // unsigned <
	CondGEU // unsigned >=
	CondLT  // signed <
	CondGE  // signed >=
)

// Eval evaluates the condition on two register values.
func (c Cond) Eval(a, b uint64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLTU:
		return a < b
	case CondGEU:
		return a >= b
	case CondLT:
		return int64(a) < int64(b)
	case CondGE:
		return int64(a) >= int64(b)
	}
	//simlint:allow errdiscipline,hotalloc -- exhaustive switch over a closed enum; the panic path and its Sprintf are unreachable for assembled programs
	panic(fmt.Sprintf("isa: bad cond %d", c))
}

// Inst is one decoded instruction.
type Inst struct {
	Op     Op
	Alu    ALUKind
	Cond   Cond
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	UseImm bool      // ALU second operand is Imm rather than Rs2
	Target arch.Addr // branch/jump/call target (instruction index)
}

// EvalALU computes the ALU result for source values a and b.
func (in Inst) EvalALU(a, b uint64) uint64 {
	if in.UseImm {
		b = uint64(in.Imm)
	}
	switch in.Alu {
	case AluAdd:
		return a + b
	case AluSub:
		return a - b
	case AluAnd:
		return a & b
	case AluOr:
		return a | b
	case AluXor:
		return a ^ b
	case AluShl:
		return a << (b & 63)
	case AluShr:
		return a >> (b & 63)
	case AluMul:
		return a * b
	case AluMix:
		return hash64(a + b)
	}
	//simlint:allow errdiscipline,hotalloc -- exhaustive switch over a closed enum; the panic path and its Sprintf are unreachable for assembled programs
	panic(fmt.Sprintf("isa: bad alu %d", in.Alu))
}

// hash64 is the same mix as xrand.Hash64, duplicated to keep isa a leaf
// package with respect to xrand (so either can evolve independently).
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// Program is a complete executable: code, an entry point, and initial data
// memory contents.
type Program struct {
	Name  string
	Code  []Inst
	Entry arch.Addr
	// Data holds initial memory contents (8-byte aligned addresses).
	Data map[arch.Addr]uint64
}

// Fetch returns the instruction at pc. Wrong-path fetches can run past the
// end of the code; those return Halt, which is harmless because Halt only
// takes effect at commit and a wrong-path Halt never commits.
func (p *Program) Fetch(pc arch.Addr) Inst {
	if uint64(pc) >= uint64(len(p.Code)) {
		return Inst{Op: OpHalt}
	}
	return p.Code[pc]
}

// Memory is the functional data memory: a sparse, page-organized store of
// 8-byte words. The timing model (caches, DRAM) is entirely separate; this
// holds only values.
type Memory struct {
	pages map[uint64]*[pageWords]uint64
}

const (
	pageBytes = 4096
	pageWords = pageBytes / 8
)

// NewMemory creates an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageWords]uint64)}
}

// LoadProgram initializes memory from a program's Data section.
func (m *Memory) LoadProgram(p *Program) {
	//simlint:ordered -- writes to distinct addresses commute; the resulting memory image is order-independent
	for a, v := range p.Data {
		m.Write64(a, v)
	}
}

func (m *Memory) page(a arch.Addr, create bool) (*[pageWords]uint64, uint64) {
	pn := uint64(a) / pageBytes
	pg, ok := m.pages[pn]
	if !ok {
		if !create {
			return nil, 0
		}
		//simlint:allow hotalloc -- one page on first touch of a new address range; amortized over every subsequent access to the page
		pg = new([pageWords]uint64)
		m.pages[pn] = pg
	}
	return pg, (uint64(a) % pageBytes) / 8
}

// Read64 returns the 8-byte word at a (aligned down to 8 bytes).
// Unwritten memory reads as zero.
func (m *Memory) Read64(a arch.Addr) uint64 {
	pg, idx := m.page(a, false)
	if pg == nil {
		return 0
	}
	return pg[idx]
}

// Write64 stores an 8-byte word at a (aligned down to 8 bytes).
func (m *Memory) Write64(a arch.Addr, v uint64) {
	pg, idx := m.page(a, true)
	pg[idx] = v
}
