package benchrun

import (
	"bytes"
	"strings"
	"testing"
)

func baseFor(t *testing.T) Baseline {
	t.Helper()
	return Baseline{Results: []Result{
		{Name: "BenchmarkCacheLookup", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "BenchmarkPredictor", NsPerOp: 50, AllocsPerOp: 2},
	}}
}

func TestDiffCleanRunPasses(t *testing.T) {
	fresh := []Result{
		{Name: "BenchmarkCacheLookup", NsPerOp: 110, AllocsPerOp: 0}, // +10% < 25%
		{Name: "BenchmarkPredictor", NsPerOp: 45, AllocsPerOp: 2},    // faster
	}
	d := Diff(baseFor(t), fresh, Thresholds{})
	if d.Regressed() {
		t.Fatalf("clean run flagged as regressed: %+v", d)
	}
	if len(d.Rows) != 2 || d.Rows[0].Name != "BenchmarkCacheLookup" {
		t.Fatalf("rows = %+v", d.Rows)
	}
}

func TestDiffTimeRegressionTrips(t *testing.T) {
	fresh := []Result{
		{Name: "BenchmarkCacheLookup", NsPerOp: 140, AllocsPerOp: 0}, // +40% > 25%
		{Name: "BenchmarkPredictor", NsPerOp: 50, AllocsPerOp: 2},
	}
	d := Diff(baseFor(t), fresh, Thresholds{})
	if !d.Regressed() {
		t.Fatal("40% slowdown not flagged")
	}
	if !d.Rows[0].Regressed || d.Rows[1].Regressed {
		t.Fatalf("wrong rows flagged: %+v", d.Rows)
	}
	if !strings.Contains(d.Rows[0].Reason, "slower") {
		t.Fatalf("reason = %q", d.Rows[0].Reason)
	}
}

func TestDiffAllocRegressionIsStrict(t *testing.T) {
	fresh := []Result{
		{Name: "BenchmarkCacheLookup", NsPerOp: 100, AllocsPerOp: 1}, // 0 → 1: trips
		{Name: "BenchmarkPredictor", NsPerOp: 50, AllocsPerOp: 2},
	}
	d := Diff(baseFor(t), fresh, Thresholds{})
	if !d.Regressed() || !strings.Contains(d.Rows[0].Reason, "allocs/op") {
		t.Fatalf("alloc regression not flagged: %+v", d.Rows)
	}
	// With slack it passes.
	d = Diff(baseFor(t), fresh, Thresholds{AllocSlack: 1})
	if d.Regressed() {
		t.Fatalf("alloc slack not honored: %+v", d.Rows)
	}
}

func TestDiffAllocRatioAbsorbsAmortizationNoise(t *testing.T) {
	// An alloc-heavy benchmark drifting by a handful of allocs (one-time
	// setup divided by a different b.N) must pass under the default 1%
	// ratio; a real jump must still trip.
	base := Baseline{Results: []Result{{Name: "BenchmarkSimulatorThroughput", NsPerOp: 3e7, AllocsPerOp: 339597}}}
	drift := []Result{{Name: "BenchmarkSimulatorThroughput", NsPerOp: 3e7, AllocsPerOp: 339604}}
	if d := Diff(base, drift, Thresholds{}); d.Regressed() {
		t.Fatalf("amortization drift flagged: %+v", d.Rows)
	}
	jump := []Result{{Name: "BenchmarkSimulatorThroughput", NsPerOp: 3e7, AllocsPerOp: 360000}}
	if d := Diff(base, jump, Thresholds{}); !d.Regressed() {
		t.Fatal("6% alloc jump not flagged")
	}
	// The ratio gives no headroom at zero: 0 → 1 still trips.
	zbase := Baseline{Results: []Result{{Name: "BenchmarkCacheLookup", NsPerOp: 100, AllocsPerOp: 0}}}
	one := []Result{{Name: "BenchmarkCacheLookup", NsPerOp: 100, AllocsPerOp: 1}}
	if d := Diff(zbase, one, Thresholds{}); !d.Regressed() {
		t.Fatal("zero-alloc benchmark gained an alloc without tripping")
	}
}

func TestDiffPerBenchOverride(t *testing.T) {
	fresh := []Result{
		{Name: "BenchmarkCacheLookup", NsPerOp: 140, AllocsPerOp: 0},
		{Name: "BenchmarkPredictor", NsPerOp: 50, AllocsPerOp: 2},
	}
	th := Thresholds{PerBench: map[string]float64{"BenchmarkCacheLookup": 0.50}}
	d := Diff(baseFor(t), fresh, th)
	if d.Regressed() {
		t.Fatalf("per-bench 50%% override not honored: %+v", d.Rows)
	}
	if d.Rows[0].Limit != 0.50 {
		t.Fatalf("row limit = %v", d.Rows[0].Limit)
	}
}

func TestDiffMissingBenchmarkRegresses(t *testing.T) {
	fresh := []Result{
		{Name: "BenchmarkCacheLookup", NsPerOp: 100},
		{Name: "BenchmarkNewThing", NsPerOp: 10},
	}
	d := Diff(baseFor(t), fresh, Thresholds{})
	if !d.Regressed() {
		t.Fatal("missing baseline benchmark not flagged")
	}
	if len(d.Missing) != 1 || d.Missing[0] != "BenchmarkPredictor" {
		t.Fatalf("missing = %v", d.Missing)
	}
	if len(d.Added) != 1 || d.Added[0] != "BenchmarkNewThing" {
		t.Fatalf("added = %v", d.Added)
	}
}

func TestHandicapSlowsAndTripsGate(t *testing.T) {
	fresh := []Result{
		{Name: "BenchmarkCacheLookup", NsPerOp: 100, OpsPerSec: 1e7, AllocsPerOp: 0},
		{Name: "BenchmarkPredictor", NsPerOp: 50, AllocsPerOp: 2},
	}
	slowed := Handicap(fresh, map[string]float64{"BenchmarkCacheLookup": 2})
	if slowed[0].NsPerOp != 200 || slowed[0].OpsPerSec != 5e6 {
		t.Fatalf("handicap result = %+v", slowed[0])
	}
	if fresh[0].NsPerOp != 100 {
		t.Fatal("Handicap mutated its input")
	}
	if slowed[1].NsPerOp != 50 {
		t.Fatal("handicap leaked onto an unselected benchmark")
	}
	// ≤1 factors are inert.
	same := Handicap(fresh, map[string]float64{"BenchmarkPredictor": 0.5})
	if same[1].NsPerOp != 50 {
		t.Fatal("speed-up handicap applied")
	}
	if !Diff(baseFor(t), slowed, Thresholds{}).Regressed() {
		t.Fatal("handicapped run did not trip the gate")
	}
}

func TestDiffWriteRendersVerdicts(t *testing.T) {
	fresh := []Result{
		{Name: "BenchmarkCacheLookup", NsPerOp: 140, AllocsPerOp: 0},
	}
	base := Baseline{Results: []Result{{Name: "BenchmarkCacheLookup", NsPerOp: 100}}}
	d := Diff(base, fresh, Thresholds{})
	var buf bytes.Buffer
	d.Write(&buf)
	out := buf.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "verdict: REGRESSED") {
		t.Fatalf("table:\n%s", out)
	}
	var buf2 bytes.Buffer
	Diff(base, fresh, Thresholds{}).Write(&buf2)
	if out != buf2.String() {
		t.Fatal("diff table not deterministic")
	}
}
