package analysis

import (
	"path/filepath"
	"regexp"
	"testing"
)

// wantRe extracts `// want `regex“ expectations from golden-file
// comments. The marker may ride a trailing comment on the offending line
// or be embedded in a directive comment that is itself the finding.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// TestGolden runs the whole suite over testdata/src and requires exact
// correspondence between findings and // want expectations: every finding
// must match an unused want on its own file:line, and every want must be
// consumed.
func TestGolden(t *testing.T) {
	mod, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("load testdata module: %v", err)
	}
	findings := NewRunner(mod).Run(Analyzers(), nil)

	var wants []*want
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := mod.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no // want expectations found in testdata/src")
	}

	seen := make(map[string]int)
	for _, f := range findings {
		seen[f.Analyzer]++
		matched := false
		for _, w := range wants {
			if !w.used && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}

	// Every analyzer in the suite (plus the directive pseudo-analyzer)
	// must demonstrate at least one caught violation in the golden input.
	for _, a := range Analyzers() {
		if seen[a.Name] == 0 {
			t.Errorf("analyzer %s caught nothing in testdata/src", a.Name)
		}
	}
	if seen["directive"] == 0 {
		t.Error("no malformed-directive finding in testdata/src")
	}
}

// TestRepoLintsClean loads the real module and requires the full suite to
// come back empty: every true positive is fixed and every deliberate
// exception carries a justified directive.
func TestRepoLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("load repo module: %v", err)
	}
	if mod.Path != "repro" {
		t.Fatalf("loaded module %q, want repro", mod.Path)
	}
	findings := NewRunner(mod).Run(Analyzers(), nil)
	for _, f := range findings {
		t.Errorf("repo not lint-clean: %s", f)
	}
}

// TestAnalyzerByName covers suite lookup, which the CLI's -enable/-disable
// flags and directive validation both rely on.
func TestAnalyzerByName(t *testing.T) {
	for _, a := range Analyzers() {
		got, ok := AnalyzerByName(a.Name)
		if !ok || got != a {
			t.Errorf("AnalyzerByName(%q) = %v, %v", a.Name, got, ok)
		}
	}
	if _, ok := AnalyzerByName("nope"); ok {
		t.Error("AnalyzerByName accepted an unknown name")
	}
}

// TestDirectiveSuppresses pins the directive-to-analyzer matching rules.
func TestDirectiveSuppresses(t *testing.T) {
	cases := []struct {
		d        *directive
		analyzer string
		want     bool
	}{
		{&directive{verb: "ordered"}, "determinism", true},
		{&directive{verb: "ordered"}, "errdiscipline", false},
		{&directive{verb: "allow", analyzers: []string{"errdiscipline"}}, "errdiscipline", true},
		{&directive{verb: "allow", analyzers: []string{"errdiscipline"}}, "determinism", false},
		{&directive{verb: "allow", analyzers: []string{"cachekey", "cycletyping"}}, "cycletyping", true},
	}
	for _, c := range cases {
		if got := c.d.suppresses(c.analyzer); got != c.want {
			t.Errorf("{verb:%s analyzers:%v} suppresses %s = %v, want %v", c.d.verb, c.d.analyzers, c.analyzer, got, c.want)
		}
	}
}

// TestParallelMatchesSerial requires the worker-pool driver to produce
// findings byte-identical to a serial run, for any worker count.
func TestParallelMatchesSerial(t *testing.T) {
	mod, err := Load(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("load testdata module: %v", err)
	}
	serialRunner := NewRunner(mod)
	serialRunner.Workers = 1
	serial := serialRunner.Run(Analyzers(), nil)
	for _, workers := range []int{2, 4, 16} {
		r := NewRunner(mod)
		r.Workers = workers
		got := r.Run(Analyzers(), nil)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d findings, serial has %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i].String() != serial[i].String() {
				t.Errorf("workers=%d: finding %d = %q, serial has %q", workers, i, got[i], serial[i])
			}
			if (got[i].Fix == nil) != (serial[i].Fix == nil) {
				t.Errorf("workers=%d: finding %d fix presence differs from serial", workers, i)
			}
		}
	}
}

// TestSortFindingsTieBreak pins the same-position ordering: analyzer
// name first, then message.
func TestSortFindingsTieBreak(t *testing.T) {
	mk := func(analyzer, msg string) Finding {
		f := Finding{Analyzer: analyzer, Message: msg}
		f.Pos.Filename = "x.go"
		f.Pos.Line = 10
		f.Pos.Column = 2
		return f
	}
	got := []Finding{
		mk("lockorder", "b"),
		mk("determinism", "z"),
		mk("lockorder", "a"),
		mk("determinism", "a"),
	}
	sortFindings(got)
	wantOrder := []string{
		"determinism:a", "determinism:z", "lockorder:a", "lockorder:b",
	}
	for i, f := range got {
		if key := f.Analyzer + ":" + f.Message; key != wantOrder[i] {
			t.Errorf("position %d = %s, want %s", i, key, wantOrder[i])
		}
	}
}

// TestFindingString pins the file:line:col rendering the CLI prints.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "determinism", Message: "boom"}
	f.Pos.Filename = "x.go"
	f.Pos.Line = 3
	f.Pos.Column = 7
	if got, wantStr := f.String(), "x.go:3:7: determinism: boom"; got != wantStr {
		t.Errorf("String() = %q, want %q", got, wantStr)
	}
}
