// Package trace provides a low-overhead execution trace for the simulator:
// a fixed-capacity ring of structured events the machine emits at squashes,
// memory requests, cleanups, and commits. It exists for debuggability — the
// first question about any speculative-execution simulator is "what exactly
// happened around that squash?" — and is off (nil tracer) by default.
package trace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindFetchRedirect Kind = iota
	KindLoadIssue
	KindLoadComplete
	KindLoadDropped
	KindSquash
	KindMemOrderSquash
	KindCleanupInval
	KindCleanupRestore
	KindCommit
	KindHalt
)

func (k Kind) String() string {
	names := [...]string{
		"fetch-redirect", "load-issue", "load-complete", "load-dropped",
		"squash", "mem-order-squash", "cleanup-inval", "cleanup-restore",
		"commit", "halt",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Event is one trace record. Fields beyond Cycle and Kind are
// kind-dependent; unused ones are zero.
type Event struct {
	Cycle arch.Cycle
	Kind  Kind
	Seq   uint64        // instruction sequence number
	PC    arch.Addr     // program counter
	Line  arch.LineAddr // cache line, for memory events
	Arg   uint64        // kind-specific (squashed count, latency, ...)
}

// String renders one event.
func (e Event) String() string {
	return fmt.Sprintf("%8d %-16s seq=%-6d pc=%-6v line=%-10v arg=%d",
		e.Cycle, e.Kind, e.Seq, e.PC, e.Line, e.Arg)
}

// Ring is a fixed-capacity event ring buffer. The zero value is unusable;
// call NewRing. Not safe for concurrent use (the simulator is
// single-threaded).
type Ring struct {
	buf   []Event
	next  int
	total uint64
}

// NewRing creates a ring holding the last capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit records an event, evicting the oldest once full.
func (r *Ring) Emit(e Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were emitted over the ring's lifetime.
func (r *Ring) Total() uint64 { return r.total }

// Events returns the retained events in chronological order.
func (r *Ring) Events() []Event {
	if len(r.buf) < cap(r.buf) {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, cap(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns the retained events of the given kind.
func (r *Ring) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo dumps the retained events.
func (r *Ring) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}
