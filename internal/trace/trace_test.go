package trace

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Cycle: arch.Cycle(i), Kind: KindCommit, Seq: uint64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("total %d", r.Total())
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d", len(evs))
	}
	for i, e := range evs {
		if e.Seq != uint64(6+i) {
			t.Fatalf("event %d has seq %d, want %d (chronological tail)", i, e.Seq, 6+i)
		}
	}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Seq: 1})
	r.Emit(Event{Seq: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("events %v", evs)
	}
}

func TestFilter(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Kind: KindSquash, Seq: 1})
	r.Emit(Event{Kind: KindCommit, Seq: 2})
	r.Emit(Event{Kind: KindSquash, Seq: 3})
	sq := r.Filter(KindSquash)
	if len(sq) != 2 || sq[0].Seq != 1 || sq[1].Seq != 3 {
		t.Fatalf("filtered %v", sq)
	}
}

func TestWriteTo(t *testing.T) {
	r := NewRing(4)
	r.Emit(Event{Cycle: 7, Kind: KindLoadIssue, Seq: 9, PC: 3, Line: 5, Arg: 2})
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "load-issue") || !strings.Contains(b.String(), "seq=9") {
		t.Fatalf("dump: %q", b.String())
	}
}

func TestKindStrings(t *testing.T) {
	if KindSquash.String() != "squash" || KindHalt.String() != "halt" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind must format")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRing(0)
}
