package analysis

import "go/ast"

// This file is the solver half of simlint's dataflow engine: a generic
// forward/backward worklist fixpoint solver over the CFG in cfg.go.
// Analyzers describe their lattice as a dataflow[F] value — bottom,
// entry fact, join, equality, and a per-node transfer function — and get
// back the fact holding at the start of every block. Per-node facts are
// recovered by replaying Transfer over a block's nodes (see replay).
//
// Transfer and Join must be pure: they return fresh fact values and
// never mutate their inputs, because the solver retains and compares
// facts across iterations.

// dataflow describes one dataflow problem over facts of type F.
type dataflow[F any] struct {
	// Bottom is the identity of Join: the fact for not-yet-reached code.
	Bottom func() F
	// Entry is the fact holding at the boundary block (the function
	// entry for forward problems, the exit for backward ones).
	Entry func() F
	// Join combines the facts of two incoming paths.
	Join func(a, b F) F
	// Equal reports fact equality; the fixpoint terminates when no
	// block's boundary fact changes.
	Equal func(a, b F) bool
	// Transfer applies one CFG node's effect.
	Transfer func(n ast.Node, f F) F
}

// forward solves the problem in execution order and returns the fact at
// the start of every block.
func (d dataflow[F]) forward(g *cfg) map[*block]F {
	return d.solve(g, g.entry, func(b *block) []*block { return b.preds })
}

// backward solves the problem against execution order and returns the
// fact at the end of every block (its boundary in reverse flow).
func (d dataflow[F]) backward(g *cfg) map[*block]F {
	return d.solve(g, g.exit, func(b *block) []*block { return b.succs })
}

// solve runs the worklist algorithm. boundary is the block whose in-fact
// is Entry; inputs yields the blocks whose out-facts flow into a block
// (predecessors for forward problems, successors for backward ones).
func (d dataflow[F]) solve(g *cfg, boundary *block, inputs func(*block) []*block) map[*block]F {
	in := make(map[*block]F, len(g.blocks))
	out := make(map[*block]F, len(g.blocks))
	for _, b := range g.blocks {
		in[b] = d.Bottom()
		out[b] = d.Bottom()
	}
	in[boundary] = d.Entry()

	backward := boundary == g.exit
	// Worklist seeded with every block in index order; indices are
	// assigned in construction order, so the iteration sequence — and
	// with it every intermediate fact — is deterministic.
	work := make([]*block, len(g.blocks))
	copy(work, g.blocks)
	queued := make([]bool, len(g.blocks))
	for i := range queued {
		queued[i] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.index] = false

		f := in[b]
		if b != boundary {
			f = d.Bottom()
			for _, p := range inputs(b) {
				f = d.Join(f, out[p])
			}
			in[b] = f
		}
		f = d.replay(b, f, backward)
		if d.Equal(f, out[b]) {
			continue
		}
		out[b] = f
		dests := b.succs
		if backward {
			dests = b.preds
		}
		for _, s := range dests {
			if !queued[s.index] {
				queued[s.index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// replay applies the block's node transfers to f (in reverse order for
// backward problems) and returns the resulting fact.
func (d dataflow[F]) replay(b *block, f F, backward bool) F {
	if backward {
		for i := len(b.nodes) - 1; i >= 0; i-- {
			f = d.Transfer(b.nodes[i], f)
		}
		return f
	}
	for _, n := range b.nodes {
		f = d.Transfer(n, f)
	}
	return f
}
