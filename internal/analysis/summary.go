package analysis

import (
	"go/ast"
	"go/types"
)

// This file computes the per-function summaries the interprocedural
// analyzers consume, by bottom-up fixpoint over the call graph in
// callgraph.go:
//
//   - lock summaries: the set of mutex classes a function may acquire,
//     transitively through calls, goroutine spawns, and closures it
//     builds. lockorder uses them for acquisition-order edges, for the
//     callee-reacquisition deadlock check, and for the lock-held-across-
//     spawn check; the deferunlock autofix uses them to prove a trailing
//     statement cannot re-acquire the class being deferred.
//   - guarded fields: a struct field written at least once while a mutex
//     of the same struct is provably held is treated as guarded by it
//     (the cheapest sound-enough guard inference for this codebase's
//     mu-plus-fields style).
//
// Summary domains are finite sets, updates are monotone unions, so the
// fixpoint terminates; the deterministic node order makes the result —
// and everything derived from it — byte-identical across runs.

// lockFacts is the module-wide lock model.
type lockFacts struct {
	g *callGraph
	// acquires maps a call-graph node to the mutex classes it may
	// (transitively) acquire.
	acquires map[*cgNode]map[string]bool
	// guarded maps a struct field to the mutex class guarding it.
	guarded map[*types.Var]string
}

// acquiresOf returns the classes a call expression may acquire in its
// callees (union over the interface fan-out), sorted.
func (lf *lockFacts) acquiresOf(pkg *Package, call *ast.CallExpr) []string {
	var set map[string]bool
	for _, callee := range lf.g.calleesOf(pkg, call) {
		//simlint:ordered -- set union; the result is sorted before return
		for c := range lf.acquires[callee] {
			if set == nil {
				set = make(map[string]bool)
			}
			set[c] = true
		}
	}
	if set == nil {
		return nil
	}
	return sortedBoolKeys(set)
}

// nodeAcquires returns the classes node may acquire, sorted.
func (lf *lockFacts) nodeAcquires(n *cgNode) []string {
	if n == nil || len(lf.acquires[n]) == 0 {
		return nil
	}
	return sortedBoolKeys(lf.acquires[n])
}

// lockModel builds, once per module, the acquisition summaries and the
// guarded-field map over the call graph.
func (r *Runner) lockModel(mod *Module) *lockFacts {
	r.lockOnce.Do(func() {
		g := r.callGraph(mod)
		facts := &lockFacts{
			g:        g,
			acquires: make(map[*cgNode]map[string]bool),
			guarded:  make(map[*types.Var]string),
		}

		// Direct acquisitions: Lock/RLock calls in each node's own body
		// (nested literals excluded — they are their own nodes).
		for _, n := range g.nodes {
			set := make(map[string]bool)
			walkShallow(n.body, func(m ast.Node) {
				if call, ok := m.(*ast.CallExpr); ok {
					if class, op := lockOp(n.pkg, call); op == lockAcquire {
						set[class] = true
					}
				}
			})
			if len(set) > 0 {
				facts.acquires[n] = set
			}
		}

		// Transitive closure over call, spawn, and closure edges. Spawn
		// edges are included deliberately: a goroutine the function
		// launches can acquire the class concurrently, which is exactly
		// what the ordering and held-across-spawn checks reason about.
		// Self-edges (recursion) are harmless unions.
		g.fixpoint(func(n *cgNode) bool {
			changed := false
			for _, e := range n.out {
				sub := facts.acquires[e.callee]
				if len(sub) == 0 {
					continue
				}
				set := facts.acquires[n]
				if set == nil {
					set = make(map[string]bool)
					facts.acquires[n] = set
				}
				for _, c := range sortedBoolKeys(sub) {
					if !set[c] {
						set[c] = true
						changed = true
					}
				}
			}
			return changed
		})

		// Guarded fields: dataflow over each method of a mutex-bearing
		// struct, recording fields written while a receiver mutex is
		// provably held.
		for _, n := range g.nodes {
			if n.decl == nil {
				continue
			}
			recv := receiverStruct(n.pkg, n.decl)
			if recv == nil || len(structMutexClasses(recv)) == 0 {
				continue
			}
			deriveGuards(n.pkg, n.decl, recv, facts)
		}
		r.locks = facts
	})
	return r.locks
}

// walkShallow visits every node of body except nested function literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
