package ceaser

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	ix := New(2048, 42)
	f := func(raw uint64) bool {
		v := raw & ((1 << arch.LineAddrBits) - 1)
		return ix.Decrypt(ix.Encrypt(arch.LineAddr(v))) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBijectionOnDenseRange(t *testing.T) {
	ix := New(64, 7)
	seen := make(map[uint64]arch.LineAddr)
	for i := arch.LineAddr(0); i < 1<<16; i++ {
		e := ix.Encrypt(i)
		if prev, dup := seen[e]; dup {
			t.Fatalf("collision: Encrypt(%v) == Encrypt(%v) == %#x", i, prev, e)
		}
		seen[e] = i
	}
}

func TestSetIndexInRange(t *testing.T) {
	ix := New(2048, 3)
	for i := arch.LineAddr(0); i < 10000; i++ {
		if s := ix.SetIndex(i * 131); s < 0 || s >= 2048 {
			t.Fatalf("SetIndex out of range: %d", s)
		}
	}
}

func TestSpatialDecorrelation(t *testing.T) {
	// Consecutive lines (which share a set-region under modulo indexing
	// in chunks) must be spread near-uniformly across sets.
	const sets = 256
	ix := New(sets, 11)
	counts := make([]int, sets)
	const n = sets * 64
	for i := 0; i < n; i++ {
		counts[ix.SetIndex(arch.LineAddr(i))]++
	}
	// Chi-squared-ish sanity: no set wildly over/under-loaded.
	mean := float64(n) / sets
	for s, c := range counts {
		if math.Abs(float64(c)-mean) > mean {
			t.Fatalf("set %d has %d lines, mean %.1f — not decorrelated", s, c, mean)
		}
	}
	// And consecutive lines must not land in consecutive sets.
	adjacent := 0
	for i := 0; i < 1000; i++ {
		if ix.SetIndex(arch.LineAddr(i+1)) == (ix.SetIndex(arch.LineAddr(i))+1)%sets {
			adjacent++
		}
	}
	if adjacent > 50 {
		t.Fatalf("%d/1000 consecutive lines map to consecutive sets", adjacent)
	}
}

func TestRekeyChangesMapping(t *testing.T) {
	ix := New(1024, 5)
	before := make([]int, 1000)
	for i := range before {
		before[i] = ix.SetIndex(arch.LineAddr(i))
	}
	ix.Rekey(99)
	if ix.Remaps != 1 {
		t.Fatalf("Remaps = %d", ix.Remaps)
	}
	changed := 0
	for i := range before {
		if ix.SetIndex(arch.LineAddr(i)) != before[i] {
			changed++
		}
	}
	if changed < 900 {
		t.Fatalf("only %d/1000 mappings changed after rekey", changed)
	}
}

func TestDifferentSeedsDifferentMappings(t *testing.T) {
	a, b := New(1024, 1), New(1024, 2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.SetIndex(arch.LineAddr(i)) == b.SetIndex(arch.LineAddr(i)) {
			same++
		}
	}
	// Expect ~1000/1024 random agreement rate, i.e. very few.
	if same > 30 {
		t.Fatalf("%d/1000 identical set mappings across seeds", same)
	}
}

func TestInterfaceValues(t *testing.T) {
	ix := New(16, 1)
	if ix.Name() != "ceaser" || ix.Sets() != 16 || ix.ExtraLatency() != 2 {
		t.Fatalf("interface metadata wrong: %q %d %d", ix.Name(), ix.Sets(), ix.ExtraLatency())
	}
}
